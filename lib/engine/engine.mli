(** The engine: tiered execution of JavaScript on the simulated CPU.

    Mirrors the V8 pipeline the paper describes (Fig 2): bytecode starts
    in the interpreter (Ignition), hot functions are optimized by the
    TurboFan-style compiler and run as machine code on the CPU model;
    failed speculation deoptimizes back into the interpreter, discards
    the code and recompiles with fresher feedback.  GC runs at
    safepoints and its cost is charged to the shared CPU, providing the
    compilation/GC timing noise the paper's statistical analysis
    contends with. *)

type check_config = {
  disabled_groups : Insn.check_group list;
      (** short-circuited in the graph (paper Fig 5 removal) *)
  remove_branches : bool;
      (** emit conditions but not deopt branches (paper Fig 10) *)
}

val checks_on : check_config

type config = {
  arch : Arch.t;
  cpu : Cpu.config;
  enable_baseline : bool;
      (** enable the SparkPlug-style baseline tier (paper Fig 2) *)
  tier_up_threshold : int;
  max_deopts_before_forbid : int;
  checks : check_config;
  trust_elements_kind : bool;
  turboprop : bool;
  fuse_map_checks : bool;
      (** future-work prototype (paper Section VII): fused [jschkmap]
          map checks; requires the extended ISA *)
  enable_optimizer : bool;
  sampling_period : float option;  (** cycles between PC samples *)
  seed : int;
  gc_threshold_words : int;
  heap_size : int;
}

val default_config : ?arch:Arch.t -> unit -> config

type t

val create : config -> string -> t
(** Compile source text and build a fresh VM + CPU. *)

val runtime : t -> Runtime.t
val cpu : t -> Cpu.t
val sampler : t -> Perf.sampler option
val config : t -> config

val run_main : t -> int
(** Execute the top-level script (defines globals/functions). *)

val call_global : t -> string -> int array -> int
(** Call a global function by name (the per-iteration entry point). *)

val output : t -> string
(** Accumulated [print] output. *)

val cycles : t -> float
val maybe_gc : t -> unit
(** Safepoint: collect when past the watermark (jittered). *)

val iteration_safepoint : t -> unit
(** Watermark GC plus seeded ambient system noise — the measurement
    noise the paper's statistical analysis contends with. *)

val force_gc : t -> unit

(** {1 Introspection for the experiment drivers} *)

val code_of_fid : t -> int -> Code.t option
val code_of_id : t -> int -> Code.t option

val all_codes : t -> Code.t list
(** Every code object ever produced (deopt-discarded included), for
    PC-sample attribution. *)

val graph_of_fid : t -> int -> Son.t option
(** The optimized graph as of the latest compilation. *)

val compile_now : t -> string -> (Code.t, string) result
(** Force-compile a global function by name with current feedback. *)

val tier_of_fid : t -> int -> [ `Baseline | `Optimized ] option
val deopt_counts : t -> (Insn.deopt_reason * int) list
val compile_count : t -> int
val bailout_log : t -> (string * string) list
(** Functions the optimizer refused, with reasons. *)
