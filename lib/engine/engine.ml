type check_config = {
  disabled_groups : Insn.check_group list;
  remove_branches : bool;
}

let checks_on = { disabled_groups = []; remove_branches = false }

type config = {
  arch : Arch.t;
  cpu : Cpu.config;
  enable_baseline : bool;
      (* SparkPlug-style tier between the interpreter and the optimizer *)
  tier_up_threshold : int;
  max_deopts_before_forbid : int;
  checks : check_config;
  trust_elements_kind : bool;
  turboprop : bool;
  fuse_map_checks : bool;
      (* future-work prototype: jschkmap fused map checks (needs the
         extended ISA's bailout registers) *)
  enable_optimizer : bool;
  sampling_period : float option;
  seed : int;
  gc_threshold_words : int;
  heap_size : int;
}

let default_config ?(arch = Arch.Arm64) () =
  {
    arch;
    cpu = Cpu.fast_for arch;
    enable_baseline = false;
    tier_up_threshold = 4;
    max_deopts_before_forbid = 5;
    checks = checks_on;
    trust_elements_kind = false;
    turboprop = false;
    fuse_map_checks = false;
    enable_optimizer = true;
    sampling_period = Some 211.0;
    seed = 42;
    gc_threshold_words = 4 * 1024 * 1024;
    heap_size = 8 * 1024 * 1024;
  }

type t = {
  rt : Runtime.t;
  cpu : Cpu.t;
  sampler : Perf.sampler option;
  cfg : config;
  codes_by_fid : (int, Code.t) Hashtbl.t;
  codes_by_id : (int, Code.t) Hashtbl.t;  (* never pruned: sampler data *)
  graphs_by_fid : (int, Son.t) Hashtbl.t;
  mutable machine_depth : int;
  mutable next_base_addr : int;
  mutable next_code_id : int;
  rng : Support.Rng.t;
  mutable compile_count : int;
  deopts : (Insn.deopt_reason, int ref) Hashtbl.t;
  mutable bailouts : (string * string) list;
  mutable host : Exec.host option;
  tiers : (int, [ `Baseline | `Optimized ]) Hashtbl.t;
  baseline_failed : (int, unit) Hashtbl.t;
}

let runtime t = t.rt
let cpu t = t.cpu
let sampler t = t.sampler
let config t = t.cfg
let output t = Buffer.contents t.rt.Runtime.output
let cycles t = Cpu.cycles t.cpu
let compile_count t = t.compile_count
let bailout_log t = t.bailouts

let code_of_fid t fid = Hashtbl.find_opt t.codes_by_fid fid
let code_of_id t cid = Hashtbl.find_opt t.codes_by_id cid
let graph_of_fid t fid = Hashtbl.find_opt t.graphs_by_fid fid
let all_codes t = Hashtbl.fold (fun _ c acc -> c :: acc) t.codes_by_id []

let tier_of_fid t fid = Hashtbl.find_opt t.tiers fid

let deopt_counts t =
  Hashtbl.fold (fun r c acc -> (r, !c) :: acc) t.deopts []

let note_deopt t reason =
  match Hashtbl.find_opt t.deopts reason with
  | Some c -> incr c
  | None -> Hashtbl.replace t.deopts reason (ref 1)

(* ------------------------------------------------------------------ *)
(* GC                                                                  *)
(* ------------------------------------------------------------------ *)

let run_gc t =
  let h = t.rt.Runtime.heap in
  Heap.gc h;
  (* Charge a mark-sweep cost proportional to the surviving and freed
     volumes; this is one of the paper's noise sources. *)
  let live = Heap.last_gc_live_words h and freed = Heap.last_gc_freed_words h in
  let cost = 400.0 +. (float_of_int live /. 3.0) +. (float_of_int freed /. 10.0) in
  let trace_t0 = if !Trace.on then Cpu.cycles t.cpu else 0.0 in
  Cpu.charge t.cpu ~cycles:cost
    ~instructions:(int_of_float (cost /. 1.2))
    ~code_id:Perf.gc_code_id;
  if !Trace.on then
    Trace.complete_at ~cat:"jsvm"
      ~arg:(Printf.sprintf "live=%d freed=%d" live freed)
      ~ts:trace_t0
      ~dur:(Cpu.cycles t.cpu -. trace_t0)
      "gc"

let force_gc t = run_gc t

let maybe_gc t =
  let h = t.rt.Runtime.heap in
  let jitter = Support.Rng.int t.rng (1 + (t.cfg.gc_threshold_words / 8)) in
  if Heap.words_in_use h > t.cfg.gc_threshold_words - jitter then run_gc t

(* Per-iteration safepoint: watermark GC plus ambient system noise
   (timer interrupts, kernel work).  The paper deliberately keeps such
   noise rather than pinning it away (Section IV-A); it is what the
   Bonferroni-corrected significance tests push against. *)
let iteration_safepoint t =
  maybe_gc t;
  if Support.Rng.int t.rng 100 < 6 then begin
    let cost = 150.0 +. Support.Rng.float t.rng 2500.0 in
    Cpu.charge t.cpu ~cycles:cost
      ~instructions:(int_of_float (cost *. 0.8))
      ~code_id:Perf.runtime_code_id
  end

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let codegen_consts t =
  let h = t.rt.Runtime.heap in
  let hn = Heap.alloc_heap_number h 0.0 in
  let limit_cell = Heap.global_cell h "__stack_limit" in
  Heap.set_cell_value h limit_cell (Value.smi 1);
  {
    Codegen.true_word = Heap.true_value h;
    false_word = Heap.false_value h;
    undefined_word = Heap.undefined h;
    heap_number_map_ptr = Heap.load h hn 0;
    stack_limit_cell = limit_cell;
    interrupt_builtin = Builtins.id_rt_to_boolean (* never executed *);
  }

let compile t (f : Runtime.func_rt) =
  let trace_t0 = if !Trace.on then Cpu.cycles t.cpu else 0.0 in
  let builder_cfg =
    {
      Graph_builder.arch = t.cfg.arch;
      trust_elements_kind = t.cfg.trust_elements_kind;
      turboprop = t.cfg.turboprop;
    }
  in
  match Graph_builder.build builder_cfg t.rt f with
  | exception Graph_builder.Bailout msg ->
    f.Runtime.forbid_opt <- true;
    t.bailouts <- (f.Runtime.info.Bytecode.name, msg) :: t.bailouts;
    if !Trace.on then
      Trace.instant_at ~cat:"jsvm"
        ~arg:(f.Runtime.info.Bytecode.name ^ ": " ^ msg)
        ~ts:(Cpu.cycles t.cpu) "tier-up:bailout"
  | graph ->
    if t.cfg.checks.disabled_groups <> [] then
      ignore
        (Reducer.short_circuit_checks graph ~groups:t.cfg.checks.disabled_groups);
    if Arch.has_smi_load t.cfg.arch then begin
      ignore (Reducer.fuse_smi_loads graph);
      if t.cfg.fuse_map_checks then ignore (Reducer.fuse_map_checks graph)
    end;
    ignore (Reducer.run_dce graph);
    let code_id = t.next_code_id in
    t.next_code_id <- code_id + 1;
    let base_addr = t.next_base_addr in
    let code =
      Codegen.generate ~code_id ~base_addr ~arch:t.cfg.arch
        ~remove_deopt_branches:t.cfg.checks.remove_branches
        ~consts:(codegen_consts t) graph
    in
    t.next_base_addr <- base_addr + Array.length code.Code.insns + 64;
    (* Pre-decode while we are already paying a compile pause, so the
       first optimized execution runs straight from the micro-op array. *)
    Exec.warm code;
    Hashtbl.replace t.codes_by_fid f.Runtime.info.Bytecode.fid code;
    Hashtbl.replace t.codes_by_id code_id code;
    Hashtbl.replace t.graphs_by_fid f.Runtime.info.Bytecode.fid graph;
    Hashtbl.replace t.tiers f.Runtime.info.Bytecode.fid `Optimized;
    f.Runtime.code_ref <- code_id;
    t.compile_count <- t.compile_count + 1;
    (* Compilation happens on the same core: charge it (a paper noise
       source: "non-determinism in how JIT-compilation is triggered"). *)
    let cost = 800.0 +. (25.0 *. float_of_int (Son.node_count graph)) in
    Cpu.charge t.cpu ~cycles:cost
      ~instructions:(int_of_float cost)
      ~code_id:Perf.runtime_code_id;
    if !Trace.on then
      Trace.complete_at ~cat:"jsvm" ~arg:f.Runtime.info.Bytecode.name
        ~ts:trace_t0
        ~dur:(Cpu.cycles t.cpu -. trace_t0)
        "tier-up:optimize"

let compile_baseline t (f : Runtime.func_rt) =
  let fid = f.Runtime.info.Bytecode.fid in
  let trace_t0 = if !Trace.on then Cpu.cycles t.cpu else 0.0 in
  if not (Hashtbl.mem t.baseline_failed fid) then begin
    match
      Sparkplug.compile ~code_id:t.next_code_id ~base_addr:t.next_base_addr
        ~arch:t.cfg.arch t.rt f
    with
    | exception Sparkplug.Unsupported _ -> Hashtbl.replace t.baseline_failed fid ()
    | code ->
      let code_id = t.next_code_id in
      t.next_code_id <- code_id + 1;
      t.next_base_addr <- t.next_base_addr + Array.length code.Code.insns + 64;
      Exec.warm code;
      Hashtbl.replace t.codes_by_fid fid code;
      Hashtbl.replace t.codes_by_id code_id code;
      Hashtbl.replace t.tiers fid `Baseline;
      f.Runtime.code_ref <- code_id;
      (* Baseline compilation is cheap: a single linear pass. *)
      let cost = 150.0 +. (4.0 *. float_of_int (Array.length code.Code.insns)) in
      Cpu.charge t.cpu ~cycles:cost ~instructions:(int_of_float cost)
        ~code_id:Perf.runtime_code_id;
      if !Trace.on then
        Trace.complete_at ~cat:"jsvm" ~arg:f.Runtime.info.Bytecode.name
          ~ts:trace_t0
          ~dur:(Cpu.cycles t.cpu -. trace_t0)
          "tier-up:baseline"
  end

(* ------------------------------------------------------------------ *)
(* Optimized execution and deoptimization                              *)
(* ------------------------------------------------------------------ *)

let rec execute_optimized t fid margs =
  let f = Runtime.func t.rt fid in
  let code =
    match Hashtbl.find_opt t.codes_by_fid fid with
    | Some c -> c
    | None -> invalid_arg "Engine.execute_optimized: no code"
  in
  (* Pad missing arguments with undefined (JS semantics). *)
  let want = 2 + f.Runtime.info.Bytecode.n_params in
  let args =
    if Array.length margs >= want then margs
    else begin
      let padded = Array.make want (Heap.undefined t.rt.Runtime.heap) in
      Array.blit margs 0 padded 0 (Array.length margs);
      padded
    end
  in
  t.machine_depth <- t.machine_depth + 1;
  let outcome =
    Fun.protect
      ~finally:(fun () -> t.machine_depth <- t.machine_depth - 1)
      (fun () -> Exec.run t.cpu ~host:(Option.get t.host) ~code ~args)
  in
  match outcome with
  | Exec.Done v -> v
  | Exec.Deopt { deopt_id; reason; snapshot; via_smi_ext = _ } ->
    note_deopt t reason;
    if !Trace.on then
      Trace.instant_at ~cat:"jsvm"
        ~arg:(f.Runtime.info.Bytecode.name ^ ": " ^ Insn.reason_name reason)
        ~ts:(Cpu.cycles t.cpu) "deopt";
    (* Soft deopts (compiled too soon, paper Section II-B1) are benign:
       they refresh feedback and do not count toward disabling the
       optimizer. *)
    if Insn.category_of_reason reason <> Insn.Deopt_soft then
      f.Runtime.deopt_count <- f.Runtime.deopt_count + 1;
    (* Discard the code; forbid after repeated eager-deopt storms. *)
    f.Runtime.code_ref <- -1;
    Hashtbl.remove t.codes_by_fid fid;
    if f.Runtime.deopt_count > t.cfg.max_deopts_before_forbid then
      f.Runtime.forbid_opt <- true;
    (* Charge the bailout path: frame translation + unlinking. *)
    Cpu.charge t.cpu ~cycles:600.0 ~instructions:500
      ~code_id:Perf.runtime_code_id;
    let point = code.Code.deopts.(deopt_id) in
    let h = t.rt.Runtime.heap in
    let materialize_double v = Heap.alloc_heap_number h v in
    let regs =
      Array.map (fun fv -> Exec.frame_value snapshot ~materialize_double fv)
        point.Code.frame
    in
    let acc =
      Exec.frame_value snapshot ~materialize_double point.Code.accumulator
    in
    let closure = snapshot.Exec.s_slots.(0) in
    Interpreter.resume t.rt ~fid ~closure ~regs ~acc ~pc:point.Code.bc_pc

and make_host t =
  {
    Exec.memory = Heap.memory t.rt.Runtime.heap;
    call_builtin =
      (fun b argv ->
        let this = if Array.length argv > 0 then argv.(0) else Heap.undefined t.rt.Runtime.heap in
        let args =
          if Array.length argv > 1 then Array.sub argv 1 (Array.length argv - 1)
          else [||]
        in
        Builtins.dispatch t.rt b ~this ~args);
    call_js =
      (fun fid argv ->
        let f = Runtime.func t.rt fid in
        f.Runtime.invocations <- f.Runtime.invocations + 1;
        (match t.rt.Runtime.on_invoke with
        | Some hook -> hook t.rt f
        | None -> ());
        if f.Runtime.code_ref >= 0 then execute_optimized t fid argv
        else begin
          let closure = argv.(0) and this = argv.(1) in
          let args = Array.sub argv 2 (Array.length argv - 2) in
          Interpreter.interpret_direct t.rt f ~closure ~this ~args
        end);
  }

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let create cfg source =
  let unit_ = Bcompiler.compile source in
  let rt = Runtime.create ~heap_size:cfg.heap_size ~seed:cfg.seed unit_ in
  Builtins.install_globals rt;
  Interpreter.attach rt;
  let sampler =
    Option.map
      (fun period -> Perf.create_sampler ~period ~seed:(cfg.seed + 7))
      cfg.sampling_period
  in
  let cpu = Cpu.create ?sampler cfg.cpu in
  let t =
    {
      rt;
      cpu;
      sampler;
      cfg;
      codes_by_fid = Hashtbl.create 32;
      codes_by_id = Hashtbl.create 32;
      graphs_by_fid = Hashtbl.create 32;
      machine_depth = 0;
      next_base_addr = 0x1000;
      next_code_id = 0;
      rng = Support.Rng.create (cfg.seed + 13);
      compile_count = 0;
      deopts = Hashtbl.create 16;
      bailouts = [];
      host = None;
      tiers = Hashtbl.create 32;
      baseline_failed = Hashtbl.create 8;
    }
  in
  t.host <- Some (make_host t);
  (* Point the tracing sim clock at this engine's CPU (domain-local, so
     pool workers each trace their own engine's timeline). *)
  Trace.set_sim_clock (fun () -> Cpu.cycles cpu);
  (* Interpreter and builtin cost accounting on the shared CPU. *)
  rt.Runtime.charge_interp <-
    (fun ~cycles ~instructions ->
      Cpu.charge cpu ~cycles:(float_of_int cycles)
        ~instructions:(instructions * 4)
        ~code_id:Perf.runtime_code_id);
  rt.Runtime.charge_builtin <-
    (fun ~cycles ->
      Cpu.charge cpu ~cycles:(float_of_int cycles)
        ~instructions:(max 1 (cycles * 3 / 4))
        ~code_id:Perf.builtin_code_id);
  (* Tier-up policy. *)
  if cfg.enable_optimizer || cfg.enable_baseline then begin
    (* Per-function threshold jitter: the paper notes V8's JIT triggering
       is non-deterministic and treats it as a noise source. *)
    let thresholds = Hashtbl.create 32 in
    rt.Runtime.on_invoke <-
      Some
        (fun _rt f ->
          let fid = f.Runtime.info.Bytecode.fid in
          let threshold =
            match Hashtbl.find_opt thresholds fid with
            | Some th -> th
            | None ->
              let th =
                cfg.tier_up_threshold + Support.Rng.int t.rng 3
              in
              Hashtbl.replace thresholds fid th;
              th
          in
          let tier = Hashtbl.find_opt t.tiers fid in
          if
            cfg.enable_optimizer
            && (f.Runtime.code_ref < 0 || tier = Some `Baseline)
            && (not f.Runtime.forbid_opt)
            && f.Runtime.info.Bytecode.context_slots = 0
            && f.Runtime.invocations >= threshold
          then compile t f
          else if
            cfg.enable_baseline && f.Runtime.code_ref < 0
            && (tier = None || tier = Some `Baseline)
            && f.Runtime.invocations >= 2
          then compile_baseline t f)
  end;
  rt.Runtime.call_optimized <- Some (fun fid margs -> execute_optimized t fid margs);
  (* GC at allocation failure only when no machine frame is live. *)
  Heap.set_on_full rt.Runtime.heap (fun () ->
      if t.machine_depth = 0 then begin
        run_gc t;
        true
      end
      else false);
  t

let run_main t = Interpreter.run_main t.rt

let call_global t name args =
  let h = t.rt.Runtime.heap in
  let cell = Heap.global_cell h name in
  let v = Heap.cell_value h cell in
  Interpreter.call_function_value t.rt v args

let compile_now t name =
  let h = t.rt.Runtime.heap in
  let v = Heap.cell_value h (Heap.global_cell h name) in
  if not (Heap.is_function h v) then Error (name ^ " is not a function")
  else begin
    let fid = Heap.function_id_of h v in
    if fid >= Runtime.builtin_base then Error (name ^ " is a builtin")
    else begin
      let f = Runtime.func t.rt fid in
      compile t f;
      match Hashtbl.find_opt t.codes_by_fid fid with
      | Some c -> Ok c
      | None -> (
        match t.bailouts with
        | (_, msg) :: _ -> Error msg
        | [] -> Error "compilation failed")
    end
  end
