type counters = {
  mutable instructions : int;
  mutable branches : int;
  mutable taken_branches : int;
  mutable mispredicts : int;
  mutable loads : int;
  mutable stores : int;
  mutable frontend_stall : float;
  mutable backend_stall : float;
  mutable check_instructions : int;
  mutable check_branches : int;
  check_per_group : int array;
  mutable deopt_events : int;
  mutable jit_instructions : int;
  mutable runtime_instructions : int;
}

let create_counters () =
  {
    instructions = 0;
    branches = 0;
    taken_branches = 0;
    mispredicts = 0;
    loads = 0;
    stores = 0;
    frontend_stall = 0.0;
    backend_stall = 0.0;
    check_instructions = 0;
    check_branches = 0;
    check_per_group = Array.make 6 0;
    deopt_events = 0;
    jit_instructions = 0;
    runtime_instructions = 0;
  }

let reset_counters c =
  c.instructions <- 0;
  c.branches <- 0;
  c.taken_branches <- 0;
  c.mispredicts <- 0;
  c.loads <- 0;
  c.stores <- 0;
  c.frontend_stall <- 0.0;
  c.backend_stall <- 0.0;
  c.check_instructions <- 0;
  c.check_branches <- 0;
  Array.fill c.check_per_group 0 6 0;
  c.deopt_events <- 0;
  c.jit_instructions <- 0;
  c.runtime_instructions <- 0

(* Shared check-accounting path of both executors: one retired check
   instruction, attributed to its group, optionally a deopt branch. *)
let[@inline] note_check c ~group_index ~branch =
  c.check_instructions <- c.check_instructions + 1;
  c.check_per_group.(group_index) <- c.check_per_group.(group_index) + 1;
  if branch then c.check_branches <- c.check_branches + 1

let add_counters acc c =
  acc.instructions <- acc.instructions + c.instructions;
  acc.branches <- acc.branches + c.branches;
  acc.taken_branches <- acc.taken_branches + c.taken_branches;
  acc.mispredicts <- acc.mispredicts + c.mispredicts;
  acc.loads <- acc.loads + c.loads;
  acc.stores <- acc.stores + c.stores;
  acc.frontend_stall <- acc.frontend_stall +. c.frontend_stall;
  acc.backend_stall <- acc.backend_stall +. c.backend_stall;
  acc.check_instructions <- acc.check_instructions + c.check_instructions;
  acc.check_branches <- acc.check_branches + c.check_branches;
  Array.iteri
    (fun i v -> acc.check_per_group.(i) <- acc.check_per_group.(i) + v)
    c.check_per_group;
  acc.deopt_events <- acc.deopt_events + c.deopt_events;
  acc.jit_instructions <- acc.jit_instructions + c.jit_instructions;
  acc.runtime_instructions <- acc.runtime_instructions + c.runtime_instructions

let runtime_code_id = -1
let builtin_code_id = -2
let gc_code_id = -3

(* ------------------------------------------------------------------ *)
(* Fusion / block-batching observability                               *)
(*                                                                     *)
(* These counters describe how the pre-decoded engine executed — how   *)
(* many instructions retired inside fused super-instructions, of which *)
(* peephole kind, and how many block-batched accounting charges were   *)
(* taken.  They deliberately live OUTSIDE [counters]: harness results  *)
(* marshal the [counters] record wholesale and the determinism suite   *)
(* digests them, so anything engine-specific must not be in there      *)
(* (the direct interpreter fuses nothing by definition).               *)
(* ------------------------------------------------------------------ *)

let f_check_deopt = 0
let f_cmp_bcond = 1
let f_load_untag = 2
let f_alu_alu = 3
let num_fuse_kinds = 4

let fuse_kind_name = function
  | 0 -> "check_deopt"
  | 1 -> "cmp_bcond"
  | 2 -> "load_untag"
  | 3 -> "alu_alu"
  | _ -> invalid_arg "Perf.fuse_kind_name"

type fusion = {
  mutable fused_retired : int;
  fused_by_kind : int array;
  mutable batched_blocks : int;
}

let create_fusion () =
  {
    fused_retired = 0;
    fused_by_kind = Array.make num_fuse_kinds 0;
    batched_blocks = 0;
  }

let reset_fusion f =
  f.fused_retired <- 0;
  Array.fill f.fused_by_kind 0 num_fuse_kinds 0;
  f.batched_blocks <- 0

type sampler = {
  period : float;
  mutable next : float;
  rng : Support.Rng.t;
  samples : (int, int array) Hashtbl.t;
  mutable total : int;
}

let create_sampler ~period ~seed =
  {
    period;
    next = period;
    rng = Support.Rng.create seed;
    samples = Hashtbl.create 64;
    total = 0;
  }

let sampler_reset s =
  s.next <- s.period;
  Hashtbl.reset s.samples;
  s.total <- 0

let bucket s code_id size =
  match Hashtbl.find_opt s.samples code_id with
  | Some a when Array.length a >= size -> a
  | Some a ->
    let b = Array.make size 0 in
    Array.blit a 0 b 0 (Array.length a);
    Hashtbl.replace s.samples code_id b;
    b
  | None ->
    let b = Array.make size 0 in
    Hashtbl.replace s.samples code_id b;
    b

let advance s =
  (* +/-10 % jitter keeps the sampler from phase-locking with loops. *)
  let jitter = (Support.Rng.float s.rng 0.2 -. 0.1) *. s.period in
  s.next <- s.next +. s.period +. jitter

let sampler_tick s ~now ~code_id ~pc =
  while now >= s.next do
    let b = bucket s code_id (pc + 1) in
    b.(pc) <- b.(pc) + 1;
    s.total <- s.total + 1;
    if !Trace.on && s.total land 1023 = 0 then
      Trace.counter_at ~cat:"machine" ~ts:now "sampler.samples"
        (float_of_int s.total);
    advance s
  done

let sampler_bulk s ~from ~until ~code_id =
  ignore from;
  while until > s.next do
    let b = bucket s code_id 1 in
    b.(0) <- b.(0) + 1;
    s.total <- s.total + 1;
    if !Trace.on && s.total land 1023 = 0 then
      Trace.counter_at ~cat:"machine" ~ts:s.next "sampler.samples"
        (float_of_int s.total);
    advance s
  done

let samples_for s ~code_id ~size =
  let out = Array.make size 0 in
  (match Hashtbl.find_opt s.samples code_id with
  | None -> ()
  | Some a -> Array.blit a 0 out 0 (min size (Array.length a)));
  out

let total_samples s = s.total

let samples_by_code s =
  Hashtbl.fold
    (fun code_id a acc -> (code_id, Array.fold_left ( + ) 0 a) :: acc)
    s.samples []
