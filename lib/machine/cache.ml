type t = {
  name : string;
  sets : int;
  set_mask : int;        (* sets - 1 when sets is a power of two, else -1 *)
  assoc : int;
  line_shift : int;
  hit_latency : int;
  tags : int array;      (* sets * assoc, -1 = invalid *)
  lru : int array;       (* sets * assoc, higher = more recent *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size_words ~assoc ~line_words ~hit_latency =
  let lines = size_words / line_words in
  let sets = max 1 (lines / assoc) in
  {
    name;
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    assoc;
    line_shift = log2i line_words;
    hit_latency;
    tags = Array.make (sets * assoc) (-1);
    lru = Array.make (sets * assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

(* Ways 4.. of a deep set (L2-style assoc > 4): cold continuation of
   the unrolled probe in [access]. *)
let rec find_way t base line i =
  if i >= t.assoc then -1
  else if Array.unsafe_get t.tags (base + i) = line then i
  else find_way t base line (i + 1)

(* Miss path: evict the LRU way.  Cold relative to the hit path. *)
let miss_fill t base line =
  t.misses <- t.misses + 1;
  let victim = ref 0 in
  for i = 1 to t.assoc - 1 do
    if Array.unsafe_get t.lru (base + i)
       < Array.unsafe_get t.lru (base + !victim)
    then victim := i
  done;
  Array.unsafe_set t.tags (base + !victim) line;
  Array.unsafe_set t.lru (base + !victim) t.clock;
  false

(* The hit path is loop-free (ways 0-3 unrolled, deeper sets defer to
   [find_way]) so it inlines into the executors' issue paths even
   under the classic (non-flambda) inliner, which refuses functions
   containing loops.  [base + i < sets * assoc = Array.length tags] by
   construction. *)
let[@inline] access t addr =
  let line = addr lsr t.line_shift in
  (* Power-of-two set counts (every shipped hierarchy) index with a
     mask; the division only survives for odd custom geometries. *)
  let set =
    if t.set_mask >= 0 then line land t.set_mask else line mod t.sets
  in
  let a = t.assoc in
  let base = set * a in
  t.clock <- t.clock + 1;
  let tags = t.tags in
  let i =
    if Array.unsafe_get tags base = line then 0
    else if a > 1 && Array.unsafe_get tags (base + 1) = line then 1
    else if a > 2 && Array.unsafe_get tags (base + 2) = line then 2
    else if a > 3 && Array.unsafe_get tags (base + 3) = line then 3
    else if a > 4 then find_way t base line 4
    else -1
  in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    Array.unsafe_set t.lru (base + i) t.clock;
    true
  end
  else miss_fill t base line

let hit_latency t = t.hit_latency
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

type hierarchy = { l1d : t; l1i : t; l2 : t; mem_latency : int }

let default_hierarchy () =
  {
    l1d = create ~name:"L1D" ~size_words:(32 * 1024 / 4) ~assoc:4 ~line_words:16 ~hit_latency:3;
    l1i = create ~name:"L1I" ~size_words:(32 * 1024 / 4) ~assoc:4 ~line_words:16 ~hit_latency:1;
    l2 = create ~name:"L2" ~size_words:(512 * 1024 / 4) ~assoc:8 ~line_words:16 ~hit_latency:12;
    mem_latency = 90;
  }

let small_hierarchy () =
  {
    l1d = create ~name:"L1D" ~size_words:(16 * 1024 / 4) ~assoc:2 ~line_words:16 ~hit_latency:2;
    l1i = create ~name:"L1I" ~size_words:(16 * 1024 / 4) ~assoc:2 ~line_words:16 ~hit_latency:1;
    l2 = create ~name:"L2" ~size_words:(128 * 1024 / 4) ~assoc:8 ~line_words:16 ~hit_latency:10;
    mem_latency = 110;
  }

let[@inline] data_latency h addr =
  if access h.l1d addr then h.l1d.hit_latency
  else if access h.l2 addr then h.l1d.hit_latency + h.l2.hit_latency
  else h.l1d.hit_latency + h.l2.hit_latency + h.mem_latency

let[@inline] inst_latency h addr =
  if access h.l1i addr then 0
  else if access h.l2 addr then h.l2.hit_latency
  else h.l2.hit_latency + h.mem_latency
