type t = {
  name : string;
  sets : int;
  assoc : int;
  line_shift : int;
  hit_latency : int;
  tags : int array;      (* sets * assoc, -1 = invalid *)
  lru : int array;       (* sets * assoc, higher = more recent *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size_words ~assoc ~line_words ~hit_latency =
  let lines = size_words / line_words in
  let sets = max 1 (lines / assoc) in
  {
    name;
    sets;
    assoc;
    line_shift = log2i line_words;
    hit_latency;
    tags = Array.make (sets * assoc) (-1);
    lru = Array.make (sets * assoc) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.sets in
  let base = set * t.assoc in
  t.clock <- t.clock + 1;
  let rec find i =
    if i >= t.assoc then None
    else if t.tags.(base + i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.hits <- t.hits + 1;
    t.lru.(base + i) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict LRU way. *)
    let victim = ref 0 in
    for i = 1 to t.assoc - 1 do
      if t.lru.(base + i) < t.lru.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- line;
    t.lru.(base + !victim) <- t.clock;
    false

let hit_latency t = t.hit_latency
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

type hierarchy = { l1d : t; l1i : t; l2 : t; mem_latency : int }

let default_hierarchy () =
  {
    l1d = create ~name:"L1D" ~size_words:(32 * 1024 / 4) ~assoc:4 ~line_words:16 ~hit_latency:3;
    l1i = create ~name:"L1I" ~size_words:(32 * 1024 / 4) ~assoc:4 ~line_words:16 ~hit_latency:1;
    l2 = create ~name:"L2" ~size_words:(512 * 1024 / 4) ~assoc:8 ~line_words:16 ~hit_latency:12;
    mem_latency = 90;
  }

let small_hierarchy () =
  {
    l1d = create ~name:"L1D" ~size_words:(16 * 1024 / 4) ~assoc:2 ~line_words:16 ~hit_latency:2;
    l1i = create ~name:"L1I" ~size_words:(16 * 1024 / 4) ~assoc:2 ~line_words:16 ~hit_latency:1;
    l2 = create ~name:"L2" ~size_words:(128 * 1024 / 4) ~assoc:8 ~line_words:16 ~hit_latency:10;
    mem_latency = 110;
  }

let data_latency h addr =
  if access h.l1d addr then h.l1d.hit_latency
  else if access h.l2 addr then h.l1d.hit_latency + h.l2.hit_latency
  else h.l1d.hit_latency + h.l2.hit_latency + h.mem_latency

let inst_latency h addr =
  if access h.l1i addr then 0
  else if access h.l2 addr then h.l2.hit_latency
  else h.l2.hit_latency + h.mem_latency
