(** Gshare branch direction predictor.

    The paper's Fig 10 observation — deopt branches are almost always
    predicted correctly, so removing them barely moves mispredictions —
    emerges from any history-based predictor because deopt branches are
    essentially never taken.  A gshare table captures this and also the
    secondary effect that removing branches frees table capacity for the
    remaining branches. *)

type t

val create : ?bits:int -> unit -> t
(** [bits] is the log2 table size (default 15). *)

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** Returns [true] when the prediction was correct, and trains the
    predictor. *)

val reset : t -> unit
