type insn_class =
  | C_alu
  | C_mul
  | C_div
  | C_load
  | C_store
  | C_branch
  | C_falu
  | C_fmul
  | C_fdiv
  | C_fcvt
  | C_call
  | C_nop

type config = {
  cfg_name : string;
  inorder : bool;
  width : int;
  rob_slack : float;
  mispredict_penalty : float;
  taken_bubble : float;
  lat_alu : float;
  lat_mul : float;
  lat_div : float;
  lat_falu : float;
  lat_fmul : float;
  lat_fdiv : float;
  lat_fcvt : float;
  lat_call : float;
  smi_load_extra : float;
  small_caches : bool;
}

let fast_x64 =
  {
    cfg_name = "fast-x64";
    inorder = false;
    width = 4;
    rob_slack = 48.0;
    mispredict_penalty = 16.0;
    taken_bubble = 0.3;
    lat_alu = 1.0;
    lat_mul = 3.0;
    lat_div = 22.0;
    lat_falu = 3.0;
    lat_fmul = 4.0;
    lat_fdiv = 14.0;
    lat_fcvt = 4.0;
    lat_call = 3.0;
    smi_load_extra = 0.0;
    small_caches = false;
  }

let fast_arm64 =
  {
    cfg_name = "fast-arm64";
    inorder = false;
    width = 4;
    rob_slack = 32.0;
    mispredict_penalty = 14.0;
    taken_bubble = 0.35;
    lat_alu = 1.0;
    lat_mul = 4.0;
    lat_div = 20.0;
    lat_falu = 2.0;
    lat_fmul = 4.0;
    lat_fdiv = 13.0;
    lat_fcvt = 3.0;
    lat_call = 3.0;
    smi_load_extra = 0.0;
    small_caches = false;
  }

let inorder_a55 =
  {
    fast_arm64 with
    cfg_name = "InOrder-A55";
    inorder = true;
    width = 2;
    rob_slack = 0.0;
    mispredict_penalty = 8.0;
    taken_bubble = 1.0;
    lat_div = 24.0;
    small_caches = true;
  }

let inorder_hpd =
  {
    fast_arm64 with
    cfg_name = "InOrder-HPD";
    inorder = true;
    width = 3;
    rob_slack = 0.0;
    mispredict_penalty = 10.0;
    taken_bubble = 0.7;
    small_caches = false;
  }

let o3_exynos_big =
  {
    fast_arm64 with
    cfg_name = "O3-Exynos-big";
    width = 6;
    rob_slack = 56.0;
    mispredict_penalty = 16.0;
    taken_bubble = 0.25;
  }

let o3_kpg =
  {
    fast_arm64 with
    cfg_name = "O3-KPG";
    width = 4;
    rob_slack = 40.0;
    mispredict_penalty = 14.0;
  }

let gem5_cpus = [ inorder_a55; inorder_hpd; o3_exynos_big; o3_kpg ]

let fast_for = function
  | Arch.X64 -> fast_x64
  | Arch.Arm64 | Arch.Arm64_smi_ext -> fast_arm64

(* The hot timing scalars live in an all-float record: OCaml stores
   such records flat (no per-field box), so the per-instruction
   [now <- now +. _] updates are plain double stores instead of a
   minor-heap allocation each.  The hot read-only config floats are
   copied in so the issue paths read them with one load. *)
type clock = {
  mutable now : float;
  mutable high : float;
  mutable flags_ready : float;
  mutable fuel_limit : float;  (* watchdog ceiling on [now]; infinity = off *)
  inv_width : float;
  rob_slack : float;
  mispredict_penalty : float;
  taken_bubble : float;
  clk_lat_alu : float;
}

type t = {
  cfg : config;
  hier : Cache.hierarchy;
  bp : Predictor.t;
  clk : clock;
  reg_ready : float array;
  freg_ready : float array;
  mutable last_iline : int;
  counters : Perf.counters;
  fstats : Perf.fusion;
  sampler : Perf.sampler option;
  mutable cur_code : int;   (* attribution target for the PC sampler *)
  mutable cur_pc : int;
}

let create ?sampler cfg =
  {
    cfg;
    hier =
      (if cfg.small_caches then Cache.small_hierarchy ()
       else Cache.default_hierarchy ());
    bp = Predictor.create ();
    clk =
      {
        now = 0.0;
        high = 0.0;
        flags_ready = 0.0;
        fuel_limit = infinity;
        inv_width = 1.0 /. float_of_int cfg.width;
        rob_slack = cfg.rob_slack;
        mispredict_penalty = cfg.mispredict_penalty;
        taken_bubble = cfg.taken_bubble;
        clk_lat_alu = cfg.lat_alu;
      };
    reg_ready = Array.make (Insn.num_gp_regs + 3) 0.0;
    freg_ready = Array.make Insn.num_fp_regs 0.0;
    last_iline = -1;
    counters = Perf.create_counters ();
    fstats = Perf.create_fusion ();
    sampler;
    cur_code = Perf.runtime_code_id;
    cur_pc = 0;
  }

let reset t =
  t.clk.now <- 0.0;
  t.clk.high <- 0.0;
  Array.fill t.reg_ready 0 (Array.length t.reg_ready) 0.0;
  Array.fill t.freg_ready 0 (Array.length t.freg_ready) 0.0;
  t.clk.flags_ready <- 0.0;
  t.last_iline <- -1;
  Perf.reset_counters t.counters;
  Perf.reset_fusion t.fstats

let cycles t = t.clk.high

(* Watchdog: the ceiling is an absolute point on the dispatch clock, so
   arming is a plain store and the engines' per-instruction check is a
   single float compare.  [reset] deliberately leaves it alone — it is
   enforcement policy, not timing state. *)
let arm_watchdog t ~cycles =
  t.clk.fuel_limit <- t.clk.now +. cycles;
  if !Trace.on then
    Trace.instant_at ~cat:"machine" ~ts:t.clk.high
      ~arg:(Printf.sprintf "fuel=%.0f" cycles)
      "watchdog:arm"

let disarm_watchdog t = t.clk.fuel_limit <- infinity

let watchdog_trip clk ~what =
  if !Trace.on then
    Trace.instant_at ~cat:"machine" ~ts:clk.high ~arg:what "watchdog:fire";
  Support.Fault.runaway ~what ~limit:clk.fuel_limit

let latency cfg = function
  | C_alu -> cfg.lat_alu
  | C_mul -> cfg.lat_mul
  | C_div -> cfg.lat_div
  | C_load -> 0.0 (* via cache *)
  | C_store -> 1.0
  | C_branch -> 1.0
  | C_falu -> cfg.lat_falu
  | C_fmul -> cfg.lat_fmul
  | C_fdiv -> cfg.lat_fdiv
  | C_fcvt -> cfg.lat_fcvt
  | C_call -> cfg.lat_call
  | C_nop -> 0.0

let sample t ~code_id ~pc =
  t.cur_code <- code_id;
  t.cur_pc <- pc

(* [fetch_line] lets callers that know the fetch line statically (the
   pre-decoded executor precomputes [addr lsr 4] per micro-op) skip the
   shift; [fetch] is the general entry point. *)
let[@inline] fetch_line t ~addr ~line =
  if line <> t.last_iline then begin
    t.last_iline <- line;
    let lat = Cache.inst_latency t.hier addr in
    if lat > 0 then begin
      let lat = float_of_int lat in
      t.clk.now <- t.clk.now +. lat;
      t.counters.frontend_stall <- t.counters.frontend_stall +. lat
    end
  end

let fetch t ~addr = fetch_line t ~addr ~line:(addr lsr 4)

(* Core dispatch/start logic shared by every issue variant.  Returns the
   start time of execution.  Inlined into the pre-decoded executor's
   micro-ops as well as the issue variants below. *)
let[@inline] dispatch t ~ready =
  let c = t.clk in
  let d = c.now in
  c.now <- d +. c.inv_width;
  let start = if ready > d then ready else d in
  if t.cfg.inorder then begin
    if start > c.now then begin
      t.counters.backend_stall <- t.counters.backend_stall +. (start -. c.now);
      c.now <- start
    end
  end
  else begin
    let slack = c.rob_slack in
    if start -. d > slack then begin
      let push = start -. d -. slack in
      t.counters.backend_stall <- t.counters.backend_stall +. push;
      c.now <- c.now +. push
    end
  end;
  t.counters.instructions <- t.counters.instructions + 1;
  start

(* In-order retirement: an instruction retires when it has completed
   and everything before it has retired.  The PC sampler ticks across
   each instruction's retirement window, so long-latency instructions
   (e.g. cache-miss loads) absorb proportionally many samples — the
   behavior of interrupt-driven PC sampling the paper relies on. *)
let[@inline] finish t complete =
  let retire = if complete > t.clk.high then complete else t.clk.high in
  t.clk.high <- retire;
  (match t.sampler with
  | None -> ()
  | Some s -> Perf.sampler_tick s ~now:retire ~code_id:t.cur_code ~pc:t.cur_pc);
  complete

let issue t ~cls ~ready =
  let start = dispatch t ~ready in
  finish t (start +. latency t.cfg cls)

let issue_load t ~ready ~addr =
  let start = dispatch t ~ready in
  t.counters.loads <- t.counters.loads + 1;
  let lat = float_of_int (Cache.data_latency t.hier addr) in
  finish t (start +. lat)

let issue_store t ~ready ~addr =
  let start = dispatch t ~ready in
  t.counters.stores <- t.counters.stores + 1;
  ignore (Cache.access t.hier.Cache.l1d addr);
  finish t (start +. 1.0)

let issue_branch t ~pc ~ready ~taken =
  let start = dispatch t ~ready in
  let complete = start +. 1.0 in
  t.counters.branches <- t.counters.branches + 1;
  if taken then t.counters.taken_branches <- t.counters.taken_branches + 1;
  let correct = Predictor.predict_and_update t.bp ~pc ~taken in
  if not correct then begin
    t.counters.mispredicts <- t.counters.mispredicts + 1;
    let resume = complete +. t.clk.mispredict_penalty in
    if resume > t.clk.now then begin
      t.counters.frontend_stall <-
        t.counters.frontend_stall +. (resume -. t.clk.now);
      t.clk.now <- resume
    end
  end
  else if taken then begin
    t.clk.now <- t.clk.now +. t.clk.taken_bubble;
    t.counters.frontend_stall <- t.counters.frontend_stall +. t.clk.taken_bubble
  end;
  finish t complete

let charge t ~cycles ~instructions ~code_id =
  let from = t.clk.now in
  t.clk.now <- t.clk.now +. cycles;
  if t.clk.now > t.clk.high then t.clk.high <- t.clk.now;
  t.counters.instructions <- t.counters.instructions + instructions;
  t.counters.runtime_instructions <-
    t.counters.runtime_instructions + instructions;
  match t.sampler with
  | None -> ()
  | Some s -> Perf.sampler_bulk s ~from ~until:t.clk.now ~code_id
