(* Pre-decoded threaded-code execution engine.

   [compile] lowers a [Code.t] once into a flat array of micro-op
   closures: operand indexes, effective-address components, latency
   classes, check provenance, branch targets, fetch addresses and
   cache-line numbers are all resolved at decode time, so the dispatch
   loop is a single indirect call per retired instruction instead of
   the direct interpreter's per-instruction [match] over [Insn.kind].
   Pseudo-instructions (labels, checkpoints) are compiled away and
   branch targets are remapped onto the compacted micro-op array.

   The program is cached on the code object itself
   ([Code.decode_cache]); recompilation allocates a fresh [Code.t], so
   stale programs are unreachable by construction, and the cache needs
   no cross-domain coordination because a code object belongs to
   exactly one engine (and thus one domain).

   Bit-identity contract: for any program and CPU model, this engine
   must produce exactly the same outcome, memory, timing state and
   counters as [Exec.run_direct] — it performs the same [Cpu] calls in
   the same order with the same operands.  The determinism tests
   assert digest equality of whole experiment results between the two
   engines. *)

type host = {
  memory : int array;
  call_builtin : int -> int array -> int;
  call_js : int -> int array -> int;
}

type snapshot = {
  s_regs : int array;
  s_fregs : float array;
  s_slots : int array;
  s_fslots : float array;
}

type outcome =
  | Done of int
  | Deopt of {
      deopt_id : int;
      reason : Insn.deopt_reason;
      snapshot : snapshot;
      via_smi_ext : bool;
    }

exception Machine_fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Machine_fault s)) fmt

(* Special register indexes inside the GP register file. *)
let reg_ba = Insn.num_gp_regs
let reg_pc = Insn.num_gp_regs + 1
let reg_re = Insn.num_gp_regs + 2

let sext32 x =
  let w = x land 0xFFFFFFFF in
  if w >= 0x80000000 then w - 0x100000000 else w

(* Deopt reason encoding written to REG_RE by the SMI-extension bailout
   path (paper: an 8-bit deoptimization-reason code). *)
let reason_code = function
  | Insn.Not_a_smi -> 1
  | Insn.Smi -> 2
  | Insn.Out_of_bounds -> 3
  | Insn.Wrong_map -> 4
  | Insn.Overflow -> 5
  | Insn.Lost_precision -> 6
  | Insn.Division_by_zero -> 7
  | Insn.Minus_zero -> 8
  | Insn.Not_a_number -> 9
  | Insn.Wrong_value -> 10
  | Insn.Hole -> 11
  | Insn.Insufficient_feedback -> 12

(* Mutable machine state of one activation.  Flags live inline (the
   direct engine allocates a flags record per run); register-ready
   arrays alias the CPU's own. *)
type st = {
  cpu : Cpu.t;
  clk : Cpu.clock; (* = cpu.clk, cached to save an indirection *)
  inorder : bool; (* = cpu.cfg.inorder *)
  sampler : Perf.sampler option; (* = cpu.sampler *)
  counters : Perf.counters;
  regs : int array;
  fregs : float array;
  slots : int array;
  fslots : float array;
  rr : float array;
  fr : float array;
  mem : int array;
  host : host;
  mutable scratch : int array array;
      (* per-argc call-argument buffers, allocated on first Call *)
  mutable fz : bool;
  mutable fn : bool;
  mutable fv : bool;
  mutable fc : bool;
  mutable funord : bool;
  mutable outcome : outcome;
}

(* A micro-op executes one retired instruction and returns the index of
   the next micro-op, or -1 after setting [st.outcome]. *)
type uop = st -> int

(* The compiled form: one closure per non-pseudo instruction plus flat
   side arrays of decode-time constants consumed by the dispatch loop's
   shared prologue (fetch address, instruction-cache line, original
   instruction index for sampler attribution, packed check-provenance
   descriptor). *)
type program = {
  p_name : string;
  p_code_id : int;
  p_uops : uop array;
      (* [length = micro-ops + 1]: the last slot is a sentinel that
         faults on falling off the code end, so the dispatch loop needs
         no per-instruction bounds check (every next-index is in range
         by construction). *)
  p_addrs : int array;
  p_pcs : int array;
  p_checks : int array;
      (* 0 = not a check; else (group_index + 1) lor (16 if deopt branch) *)
}

type Code.cache += Decoded of program

(* Ready times are completion timestamps: always finite, never NaN and
   never negative, so a branchy max is exactly [Float.max] without the
   boxing of a non-inlined float call. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* Register-file accesses in the hot micro-ops: every register index is
   range-checked once at decode time ([compile]'s [vreg]/[vfreg]), so
   the per-execution bounds checks are dropped. *)
let[@inline] rget st r = Array.unsafe_get st.regs r
let[@inline] rset st r (v : int) = Array.unsafe_set st.regs r v
let[@inline] tget st r : float = Array.unsafe_get st.rr r
let[@inline] tset st r (v : float) = Array.unsafe_set st.rr r v

(* Inlined issue paths: [Cpu.dispatch]/[Cpu.finish] re-expressed over
   the state cached in [st] (clock, counters, in-order bit, sampler)
   and fused with the latency class resolved at decode time, so the
   hot micro-ops pay no [Cpu.issue] call chain, no per-instruction
   latency lookup and no re-derivation through [Cpu.t].  Same
   arithmetic in the same order as [Cpu.issue]* — bit-identical timing
   and counters (enforced by the exec-determinism suite). *)
let[@inline] disp st ~ready =
  let c = st.clk in
  let d = c.Cpu.now in
  c.Cpu.now <- d +. c.Cpu.inv_width;
  let start = if ready > d then ready else d in
  if st.inorder then begin
    if start > c.Cpu.now then begin
      let cnt = st.counters in
      cnt.Perf.backend_stall <- cnt.Perf.backend_stall +. (start -. c.Cpu.now);
      c.Cpu.now <- start
    end
  end
  else begin
    let slack = c.Cpu.rob_slack in
    if start -. d > slack then begin
      let push = start -. d -. slack in
      let cnt = st.counters in
      cnt.Perf.backend_stall <- cnt.Perf.backend_stall +. push;
      c.Cpu.now <- c.Cpu.now +. push
    end
  end;
  let cnt = st.counters in
  cnt.Perf.instructions <- cnt.Perf.instructions + 1;
  start

let[@inline] fin st complete =
  let c = st.clk in
  let retire = if complete > c.Cpu.high then complete else c.Cpu.high in
  c.Cpu.high <- retire;
  (match st.sampler with
  | None -> ()
  | Some s ->
    Perf.sampler_tick s ~now:retire ~code_id:st.cpu.Cpu.cur_code
      ~pc:st.cpu.Cpu.cur_pc);
  complete

let[@inline] issue_alu st ~ready =
  let start = disp st ~ready in
  fin st (start +. st.clk.Cpu.clk_lat_alu)

let[@inline] issue_load st ~ready ~addr =
  let start = disp st ~ready in
  st.counters.Perf.loads <- st.counters.Perf.loads + 1;
  let lat = float_of_int (Cache.data_latency st.cpu.Cpu.hier addr) in
  fin st (start +. lat)

let[@inline] issue_store st ~ready ~addr =
  let start = disp st ~ready in
  st.counters.Perf.stores <- st.counters.Perf.stores + 1;
  ignore (Cache.access st.cpu.Cpu.hier.Cache.l1d addr);
  fin st (start +. 1.0)

let[@inline] issue_branch st ~pc ~ready ~taken =
  let cpu = st.cpu in
  let start = disp st ~ready in
  let complete = start +. 1.0 in
  let c = st.counters in
  c.Perf.branches <- c.Perf.branches + 1;
  if taken then c.Perf.taken_branches <- c.Perf.taken_branches + 1;
  let correct = Predictor.predict_and_update cpu.Cpu.bp ~pc ~taken in
  let clk = st.clk in
  if not correct then begin
    c.Perf.mispredicts <- c.Perf.mispredicts + 1;
    let resume = complete +. clk.Cpu.mispredict_penalty in
    if resume > clk.Cpu.now then begin
      c.Perf.frontend_stall <-
        c.Perf.frontend_stall +. (resume -. clk.Cpu.now);
      clk.Cpu.now <- resume
    end
  end
  else if taken then begin
    let bubble = clk.Cpu.taken_bubble in
    clk.Cpu.now <- clk.Cpu.now +. bubble;
    c.Perf.frontend_stall <- c.Perf.frontend_stall +. bubble
  end;
  ignore (fin st complete)

let[@inline] mem_index st name a =
  if a land 1 <> 0 then fault "%s: unaligned address %d" name a;
  let i = a asr 1 in
  if i < 0 || i >= Array.length st.mem then
    fault "%s: address %d out of range" name a;
  i

(* Second word of a two-word (float) access; [i0] has been checked. *)
let[@inline] mem_index2 st name a i0 =
  if i0 + 1 >= Array.length st.mem then
    fault "%s: address %d out of range" name (a + 2);
  i0 + 1

let[@inline] set_add_sub_flags st a b result is_sub =
  let r32 = sext32 result in
  st.fz <- r32 = 0;
  st.fn <- r32 < 0;
  st.funord <- false;
  (* Signed overflow of 32-bit add/sub. *)
  if is_sub then begin
    st.fv <- (a >= 0 && b < 0 && r32 < 0) || (a < 0 && b >= 0 && r32 >= 0);
    st.fc <- a land 0xFFFFFFFF >= b land 0xFFFFFFFF
  end
  else begin
    st.fv <- (a >= 0 && b >= 0 && r32 < 0) || (a < 0 && b < 0 && r32 >= 0);
    st.fc <- (a land 0xFFFFFFFF) + (b land 0xFFFFFFFF) > 0xFFFFFFFF
  end

let[@inline] set_logic_flags st raw =
  let r32 = sext32 raw in
  st.fz <- r32 = 0;
  st.fn <- r32 < 0;
  st.fv <- false;
  st.funord <- false

(* Decode-time specialization of the direct engine's [eval_cond]: one
   closure per static condition code, with the unordered-compare rule
   folded in (NaN compares satisfy only Ne and Vs). *)
let cond_fn c : st -> bool =
  match c with
  | Insn.Eq -> fun st -> (not st.funord) && st.fz
  | Insn.Ne -> fun st -> st.funord || not st.fz
  | Insn.Lt -> fun st -> (not st.funord) && st.fn <> st.fv
  | Insn.Ge -> fun st -> (not st.funord) && st.fn = st.fv
  | Insn.Le -> fun st -> (not st.funord) && (st.fz || st.fn <> st.fv)
  | Insn.Gt -> fun st -> (not st.funord) && (not st.fz) && st.fn = st.fv
  | Insn.Vs -> fun st -> st.funord || st.fv
  | Insn.Vc -> fun st -> (not st.funord) && not st.fv
  | Insn.Hs -> fun st -> (not st.funord) && st.fc
  | Insn.Lo -> fun st -> (not st.funord) && not st.fc

let take_snapshot st =
  {
    s_regs = Array.copy st.regs;
    s_fregs = Array.copy st.fregs;
    s_slots = Array.copy st.slots;
    s_fslots = Array.copy st.fslots;
  }

let[@inline] scratch_buf st argc =
  if Array.length st.scratch = 0 then
    st.scratch <- Array.make (Insn.num_gp_regs + 4) [||];
  let b = st.scratch.(argc) in
  if Array.length b = argc then b
  else begin
    let b = Array.make argc 0 in
    st.scratch.(argc) <- b;
    b
  end

let alu_raw op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Sdiv -> if b = 0 then 0 else a / b
  | Insn.Smod -> if b = 0 then 0 else a mod b
  | Insn.And -> a land b
  | Insn.Orr -> a lor b
  | Insn.Eor -> a lxor b
  | Insn.Lsl -> a lsl (b land 31)
  | Insn.Lsr -> (a land 0xFFFFFFFF) lsr (b land 31)
  | Insn.Asr -> a asr (b land 31)

let set_alu_flags st op a b raw =
  match op with
  | Insn.Add -> set_add_sub_flags st a b raw false
  | Insn.Sub -> set_add_sub_flags st a b raw true
  | Insn.Mul ->
    (* smulls-style: overflow when the 64-bit product does not fit in
       32 bits. *)
    let r32 = sext32 raw in
    st.fz <- r32 = 0;
    st.fn <- r32 < 0;
    st.fv <- raw <> r32;
    st.funord <- false
  | Insn.Sdiv | Insn.Smod | Insn.And | Insn.Orr | Insn.Eor | Insn.Lsl
  | Insn.Lsr | Insn.Asr ->
    set_logic_flags st raw

(* ------------------------------------------------------------------ *)
(* Decode                                                              *)
(* ------------------------------------------------------------------ *)

let compile (code : Code.t) : program =
  let insns = code.Code.insns in
  let n = Array.length insns in
  let name = code.Code.name in
  let base = code.Code.base_addr in
  let code_id = code.Code.code_id in
  let deopts = code.Code.deopts in
  (* Pseudo-instructions are compiled away: map every instruction index
     to its micro-op index (for branch-target remapping). *)
  let uop_of_insn = Array.make (n + 1) 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    uop_of_insn.(i) <- !count;
    if not (Insn.is_pseudo insns.(i).Insn.kind) then incr count
  done;
  uop_of_insn.(n) <- !count;
  let target l = uop_of_insn.(code.Code.label_index.(l)) in

  (* Operand validation, once per instruction at decode time: the
     micro-op bodies then use unchecked register-file accesses.  The
     direct interpreter would raise [Invalid_argument] on the first
     execution of such an instruction; rejecting it at decode keeps
     malformed code from executing unchecked. *)
  let n_gp = Insn.num_gp_regs + 3 in
  let vreg r =
    if r < 0 || r >= n_gp then fault "%s: bad register r%d" name r;
    r
  in
  let vfreg r =
    if r < 0 || r >= Insn.num_fp_regs then
      fault "%s: bad fp register f%d" name r;
    r
  in

  (* Effective-address and address-ready evaluation, specialized at
     decode time on the presence of an index register. *)
  let eff (a : Insn.addr) =
    let b = vreg a.Insn.base and off = a.Insn.offset in
    match a.Insn.index with
    | None -> fun st -> rget st b + off
    | Some ix ->
      let ix = vreg ix in
      let s = a.Insn.scale in
      fun st -> rget st b + (rget st ix * s) + off
  in
  let aready (a : Insn.addr) =
    let b = vreg a.Insn.base in
    match a.Insn.index with
    | None -> fun st -> tget st b
    | Some ix ->
      let ix = vreg ix in
      fun st -> fmax (tget st b) (tget st ix)
  in

  (* The body of one micro-op: the instruction's semantics with every
     operand pre-resolved.  [u] is this micro-op's own index; straight-
     line successors return [u + 1]. *)
  let body i u (k : Insn.kind) : uop =
    let next = u + 1 in
    let bpc = base + i in
    match k with
    | Insn.Label _ | Insn.Checkpoint _ ->
      assert false (* pseudo: never emitted *)
    | Insn.Nop -> fun _ -> next
    | Insn.Mov (d, Insn.Reg r) ->
      let d = vreg d and r = vreg r in
      fun st ->
        let t = issue_alu st ~ready:(tget st r) in
        rset st d (rget st r);
        tset st d t;
        next
    | Insn.Mov (d, Insn.Imm v) ->
      let d = vreg d in
      fun st ->
        let t = issue_alu st ~ready:0.0 in
        rset st d v;
        tset st d t;
        next
    | Insn.Ldr (d, a) -> (
      (* Specialized on addressing mode so the hot base+offset form
         pays no effective-address closure calls. *)
      let d = vreg d in
      match a.Insn.index with
      | None ->
        let b = vreg a.Insn.base and off = a.Insn.offset in
        fun st ->
          let ea = rget st b + off in
          let t = issue_load st ~ready:(tget st b) ~addr:ea in
          rset st d (Array.unsafe_get st.mem (mem_index st name ea));
          tset st d t;
          next
      | Some _ ->
        let ea = eff a and rdy = aready a in
        fun st ->
          let ea = ea st in
          let t = issue_load st ~ready:(rdy st) ~addr:ea in
          rset st d (Array.unsafe_get st.mem (mem_index st name ea));
          tset st d t;
          next)
    | Insn.Str (a, s) -> (
      let s = vreg s in
      match a.Insn.index with
      | None ->
        let b = vreg a.Insn.base and off = a.Insn.offset in
        fun st ->
          let ea = rget st b + off in
          let ready = fmax (tget st b) (tget st s) in
          ignore (issue_store st ~ready ~addr:ea);
          Array.unsafe_set st.mem (mem_index st name ea) (rget st s);
          next
      | Some _ ->
        let ea = eff a and rdy = aready a in
        fun st ->
          let ea = ea st in
          let ready = fmax (rdy st) (tget st s) in
          ignore (issue_store st ~ready ~addr:ea);
          Array.unsafe_set st.mem (mem_index st name ea) (rget st s);
          next)
    | Insn.Ldr_f (d, a) ->
      let d = vfreg d in
      let ea = eff a and rdy = aready a in
      fun st ->
        let ea = ea st in
        let t = issue_load st ~ready:(rdy st) ~addr:ea in
        let i0 = mem_index st name ea in
        let i1 = mem_index2 st name ea i0 in
        let lo = Int64.of_int (st.mem.(i0) land 0xFFFFFFFF) in
        let hi = Int64.of_int (st.mem.(i1) land 0xFFFFFFFF) in
        st.fregs.(d) <-
          Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32));
        st.fr.(d) <- t;
        next
    | Insn.Str_f (a, s) ->
      let s = vfreg s in
      let ea = eff a and rdy = aready a in
      fun st ->
        let ea = ea st in
        let ready = fmax (rdy st) st.fr.(s) in
        ignore (issue_store st ~ready ~addr:ea);
        let bits = Int64.bits_of_float st.fregs.(s) in
        let i0 = mem_index st name ea in
        let i1 = mem_index2 st name ea i0 in
        st.mem.(i0) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
        st.mem.(i1) <- Int64.to_int (Int64.shift_right_logical bits 32);
        next
    | Insn.Alu { op; dst; src; rhs; set_flags } -> (
      let cls =
        match op with
        | Insn.Mul -> Cpu.C_mul
        | Insn.Sdiv | Insn.Smod -> Cpu.C_div
        | _ -> Cpu.C_alu
      in
      (* Specialize the dominant flag-free add/sub forms; everything
         else shares a generic body with the operator pre-captured. *)
      let dst = vreg dst and src = vreg src in
      match (op, rhs, set_flags) with
      | Insn.Add, Insn.Imm v, false ->
        fun st ->
          let a = rget st src in
          let t = issue_alu st ~ready:(tget st src) in
          rset st dst (sext32 (a + v));
          tset st dst t;
          next
      | Insn.Add, Insn.Reg r, false ->
        let r = vreg r in
        fun st ->
          let a = rget st src and b = rget st r in
          let t = issue_alu st ~ready:(fmax (tget st src) (tget st r)) in
          rset st dst (sext32 (a + b));
          tset st dst t;
          next
      | Insn.Sub, Insn.Imm v, false ->
        fun st ->
          let a = rget st src in
          let t = issue_alu st ~ready:(tget st src) in
          rset st dst (sext32 (a - v));
          tset st dst t;
          next
      | Insn.Sub, Insn.Reg r, false ->
        let r = vreg r in
        fun st ->
          let a = rget st src and b = rget st r in
          let t = issue_alu st ~ready:(fmax (tget st src) (tget st r)) in
          rset st dst (sext32 (a - b));
          tset st dst t;
          next
      | _, Insn.Imm v, false when cls = Cpu.C_alu ->
        fun st ->
          let a = rget st src in
          let t = issue_alu st ~ready:(tget st src) in
          rset st dst (sext32 (alu_raw op a v));
          tset st dst t;
          next
      | _, Insn.Reg r, false when cls = Cpu.C_alu ->
        let r = vreg r in
        fun st ->
          let a = rget st src and b = rget st r in
          let t = issue_alu st ~ready:(fmax (tget st src) (tget st r)) in
          rset st dst (sext32 (alu_raw op a b));
          tset st dst t;
          next
      | _, Insn.Imm v, _ ->
        fun st ->
          let a = st.regs.(src) in
          let t = Cpu.issue st.cpu ~cls ~ready:st.rr.(src) in
          let raw = alu_raw op a v in
          if set_flags then set_alu_flags st op a v raw;
          st.regs.(dst) <- sext32 raw;
          st.rr.(dst) <- t;
          if set_flags then st.clk.Cpu.flags_ready <- t;
          next
      | _, Insn.Reg r, _ ->
        fun st ->
          let a = st.regs.(src) and b = st.regs.(r) in
          let t = Cpu.issue st.cpu ~cls ~ready:(fmax st.rr.(src) st.rr.(r)) in
          let raw = alu_raw op a b in
          if set_flags then set_alu_flags st op a b raw;
          st.regs.(dst) <- sext32 raw;
          st.rr.(dst) <- t;
          if set_flags then st.clk.Cpu.flags_ready <- t;
          next)
    | Insn.Alu_mem { op; dst; src; mem = a } ->
      let ea = eff a and rdy = aready a in
      fun st ->
        let ea = ea st in
        let ready = fmax st.rr.(src) (rdy st) in
        let t = Cpu.issue_load st.cpu ~ready ~addr:ea in
        let b = st.mem.(mem_index st name ea) in
        let av = st.regs.(src) in
        let raw =
          match op with
          | Insn.Add -> av + b
          | Insn.Sub -> av - b
          | Insn.And -> av land b
          | Insn.Orr -> av lor b
          | Insn.Eor -> av lxor b
          | Insn.Mul -> av * b
          | Insn.Sdiv -> if b = 0 then 0 else av / b
          | Insn.Smod -> if b = 0 then 0 else av mod b
          | Insn.Lsl | Insn.Lsr | Insn.Asr ->
            fault "%s: shift with memory operand" name
        in
        st.regs.(dst) <- sext32 raw;
        st.rr.(dst) <- t +. 1.0;
        next
    | Insn.Cmp (a, Insn.Imm v) ->
      let a = vreg a in
      fun st ->
        let av = rget st a in
        let t = issue_alu st ~ready:(tget st a) in
        set_add_sub_flags st av v (av - v) true;
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Cmp (a, Insn.Reg r) ->
      let a = vreg a and r = vreg r in
      fun st ->
        let av = rget st a and bv = rget st r in
        let t = issue_alu st ~ready:(fmax (tget st a) (tget st r)) in
        set_add_sub_flags st av bv (av - bv) true;
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Cmp_mem (a, m) ->
      let ea = eff m and rdy = aready m in
      fun st ->
        let eav = ea st in
        let ready = fmax st.rr.(a) (rdy st) in
        let t = Cpu.issue_load st.cpu ~ready ~addr:eav in
        let bv = st.mem.(mem_index st name eav) in
        let av = st.regs.(a) in
        set_add_sub_flags st av bv (av - bv) true;
        st.clk.Cpu.flags_ready <- t +. 1.0;
        next
    | Insn.Tst (a, Insn.Imm v) ->
      let a = vreg a in
      fun st ->
        let av = rget st a in
        let t = issue_alu st ~ready:(tget st a) in
        set_logic_flags st (av land v);
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Tst (a, Insn.Reg r) ->
      let a = vreg a and r = vreg r in
      fun st ->
        let av = rget st a and bv = rget st r in
        let t = issue_alu st ~ready:(fmax (tget st a) (tget st r)) in
        set_logic_flags st (av land bv);
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Fmov (d, s) ->
      fun st ->
        let t = Cpu.issue st.cpu ~cls:Cpu.C_falu ~ready:st.fr.(s) in
        st.fregs.(d) <- st.fregs.(s);
        st.fr.(d) <- t;
        next
    | Insn.Fmov_imm (d, v) ->
      fun st ->
        let t = Cpu.issue st.cpu ~cls:Cpu.C_falu ~ready:0.0 in
        st.fregs.(d) <- v;
        st.fr.(d) <- t;
        next
    | Insn.Falu { op; dst; a; b } ->
      let cls =
        match op with
        | Insn.Fadd | Insn.Fsub -> Cpu.C_falu
        | Insn.Fmul -> Cpu.C_fmul
        | Insn.Fdiv -> Cpu.C_fdiv
      in
      fun st ->
        let t = Cpu.issue st.cpu ~cls ~ready:(fmax st.fr.(a) st.fr.(b)) in
        let av = st.fregs.(a) and bv = st.fregs.(b) in
        st.fregs.(dst) <-
          (match op with
          | Insn.Fadd -> av +. bv
          | Insn.Fsub -> av -. bv
          | Insn.Fmul -> av *. bv
          | Insn.Fdiv -> av /. bv);
        st.fr.(dst) <- t;
        next
    | Insn.Fcmp (a, b) ->
      fun st ->
        let t =
          Cpu.issue st.cpu ~cls:Cpu.C_falu ~ready:(fmax st.fr.(a) st.fr.(b))
        in
        let av = st.fregs.(a) and bv = st.fregs.(b) in
        if Float.is_nan av || Float.is_nan bv then begin
          st.fz <- false;
          st.fn <- false;
          st.fv <- true;
          st.funord <- true
        end
        else begin
          st.fz <- av = bv;
          st.fn <- av < bv;
          st.fv <- false;
          st.fc <- av >= bv;
          st.funord <- false
        end;
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Scvtf (d, s) ->
      fun st ->
        let t = Cpu.issue st.cpu ~cls:Cpu.C_fcvt ~ready:st.rr.(s) in
        st.fregs.(d) <- float_of_int st.regs.(s);
        st.fr.(d) <- t;
        next
    | Insn.Fcvtzs (d, s) ->
      fun st ->
        let t = Cpu.issue st.cpu ~cls:Cpu.C_fcvt ~ready:st.fr.(s) in
        let v = st.fregs.(s) in
        st.regs.(d) <- (if Float.is_nan v then 0 else sext32 (int_of_float v));
        st.rr.(d) <- t;
        next
    | Insn.B l ->
      let tgt = target l in
      fun st ->
        ignore (issue_branch st ~pc:bpc ~ready:0.0 ~taken:true);
        tgt
    | Insn.Bcond (c, l) ->
      let tgt = target l in
      let cond = cond_fn c in
      fun st ->
        let taken = cond st in
        ignore
          (issue_branch st ~pc:bpc ~ready:st.clk.Cpu.flags_ready ~taken);
        if taken then tgt else next
    | Insn.Deopt_if (c, dp) ->
      let point = deopts.(dp) in
      let reason = point.Code.reason in
      let cond = cond_fn c in
      fun st ->
        let taken = cond st in
        ignore
          (issue_branch st ~pc:bpc ~ready:st.clk.Cpu.flags_ready ~taken);
        if taken then begin
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          st.outcome <-
            Deopt
              {
                deopt_id = dp;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = false;
              };
          -1
        end
        else next
    | Insn.Js_ldr_smi { dst; mem = a; deopt } ->
      (* Fused load + Not-a-SMI check + untagging shift (Fig 12). *)
      let dst = vreg dst in
      let ea = eff a and rdy = aready a in
      let point = deopts.(deopt) in
      let reason = point.Code.reason in
      let rcode = reason_code reason in
      fun st ->
        let ea = ea st in
        let t = issue_load st ~ready:(rdy st) ~addr:ea in
        let t = t +. st.cpu.Cpu.cfg.Cpu.smi_load_extra in
        let w = st.mem.(mem_index st name ea) in
        if w land 1 <> 0 then begin
          (* Check failed: write REG_PC / REG_RE; commit triggers the
             bailout through the handler at REG_BA. *)
          st.regs.(reg_pc) <- bpc;
          st.regs.(reg_re) <- rcode;
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          if st.regs.(reg_ba) = 0 then
            fault "%s: jsldrsmi bailout with REG_BA unset" name;
          st.outcome <-
            Deopt
              {
                deopt_id = deopt;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = true;
              };
          -1
        end
        else begin
          rset st dst (w asr 1);
          tset st dst t;
          next
        end
    | Insn.Js_chk_map { mem = a; expected; deopt } ->
      (* Future-work fused map check: load + compare in the load unit;
         branch-free bailout like jsldrsmi. *)
      let ea = eff a and rdy = aready a in
      let point = deopts.(deopt) in
      let reason = point.Code.reason in
      let rcode = reason_code reason in
      fun st ->
        let ea = ea st in
        ignore (issue_load st ~ready:(rdy st) ~addr:ea);
        let w = st.mem.(mem_index st name ea) in
        if w <> expected then begin
          st.regs.(reg_pc) <- bpc;
          st.regs.(reg_re) <- rcode;
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          if st.regs.(reg_ba) = 0 then
            fault "%s: jschkmap bailout with REG_BA unset" name;
          st.outcome <-
            Deopt
              {
                deopt_id = deopt;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = true;
              };
          -1
        end
        else next
    | Insn.Call (tgt, argc) ->
      (* All registers are caller-saved; args in r0..r(argc-1).  The
         argument window is copied into a per-activation scratch buffer
         (valid only for the duration of the call) instead of a fresh
         [Array.sub] per call. *)
      let argc =
        if argc < 0 || argc > Insn.num_gp_regs then
          fault "%s: call with %d arguments" name argc
        else argc
      in
      fun st ->
        let ready = ref st.clk.Cpu.flags_ready in
        for i = 0 to argc - 1 do
          if tget st i > !ready then ready := tget st i
        done;
        let t = Cpu.issue st.cpu ~cls:Cpu.C_call ~ready:!ready in
        (* Synchronize dispatch with the call. *)
        if t > st.clk.Cpu.now then st.clk.Cpu.now <- t;
        let args_view = scratch_buf st argc in
        Array.blit st.regs 0 args_view 0 argc;
        let res =
          match tgt with
          | Insn.Builtin b -> st.host.call_builtin b args_view
          | Insn.Js_code f -> st.host.call_js f args_view
        in
        (* A nested run re-targets the PC sampler; restore our
           attribution (the direct engine does this per instruction via
           Cpu.sample, we do it once here and once at run entry). *)
        st.cpu.Cpu.cur_code <- code_id;
        st.regs.(0) <- res;
        let after = fmax st.clk.Cpu.now t in
        st.rr.(0) <- after;
        for i = 1 to Insn.num_gp_regs - 1 do
          if tget st i > after then tset st i after
        done;
        next
    | Insn.Ret ->
      fun st ->
        ignore (issue_branch st ~pc:bpc ~ready:st.rr.(0) ~taken:true);
        st.outcome <- Done st.regs.(0);
        -1
    | Insn.Spill (slot, s) ->
      fun st ->
        ignore (Cpu.issue st.cpu ~cls:Cpu.C_store ~ready:st.rr.(s));
        st.slots.(slot) <- st.regs.(s);
        next
    | Insn.Reload (d, slot) ->
      fun st ->
        let t = Cpu.issue st.cpu ~cls:Cpu.C_load ~ready:0.0 in
        st.regs.(d) <- st.slots.(slot);
        st.rr.(d) <- t +. 2.0 (* L1-hit reload *);
        next
    | Insn.Spill_f (slot, s) ->
      fun st ->
        ignore (Cpu.issue st.cpu ~cls:Cpu.C_store ~ready:st.fr.(s));
        st.fslots.(slot) <- st.fregs.(s);
        next
    | Insn.Reload_f (d, slot) ->
      fun st ->
        let t = Cpu.issue st.cpu ~cls:Cpu.C_load ~ready:0.0 in
        st.fregs.(d) <- st.fslots.(slot);
        st.fr.(d) <- t +. 2.0;
        next
    | Insn.Msr (sp, s) ->
      let idx =
        match sp with
        | Insn.Reg_ba -> reg_ba
        | Insn.Reg_pc -> reg_pc
        | Insn.Reg_re -> reg_re
      in
      let s = vreg s in
      fun st ->
        let t = issue_alu st ~ready:(tget st s) in
        rset st idx (rget st s);
        tset st idx t;
        next
    | Insn.Mrs (d, sp) ->
      let idx =
        match sp with
        | Insn.Reg_ba -> reg_ba
        | Insn.Reg_pc -> reg_pc
        | Insn.Reg_re -> reg_re
      in
      let d = vreg d in
      fun st ->
        let t = issue_alu st ~ready:(tget st idx) in
        rset st d (rget st idx);
        tset st d t;
        next
  in

  (* One trailing sentinel slot: reachable only by falling through the
     last instruction (or branching to a trailing pseudo), where the
     direct engine faults with the same message.  The prologue runs on
     the sentinel's zero side-array entries before the fault fires;
     the fault aborts the activation, so that state is unobservable. *)
  let uops =
    Array.make (!count + 1) (fun (_ : st) ->
        fault "%s: fell off code end" name)
  in
  let addrs = Array.make (!count + 1) 0 in
  let pcs = Array.make (!count + 1) 0 in
  let checks = Array.make (!count + 1) 0 in
  for i = 0 to n - 1 do
    let insn = insns.(i) in
    let k = insn.Insn.kind in
    if not (Insn.is_pseudo k) then begin
      let u = uop_of_insn.(i) in
      uops.(u) <- body i u k;
      let addr = base + i in
      addrs.(u) <- addr;
      pcs.(u) <- i;
      (* Check provenance and deopt-branch status are static: fold the
         direct engine's per-instruction [count_check] match into one
         packed descriptor read by the dispatch loop. *)
      checks.(u) <-
        (match insn.Insn.prov with
        | Insn.Check { group; _ } ->
          let branch = match k with Insn.Deopt_if _ -> true | _ -> false in
          (Insn.group_index group + 1) lor (if branch then 16 else 0)
        | Insn.Main_line | Insn.Shared -> 0)
    end
  done;
  {
    p_name = name;
    p_code_id = code_id;
    p_uops = uops;
    p_addrs = addrs;
    p_pcs = pcs;
    p_checks = checks;
  }

let get (code : Code.t) =
  match code.Code.decode_cache with
  | Decoded p -> p
  | _ ->
    let p = compile code in
    code.Code.decode_cache <- Decoded p;
    p

let warm code = ignore (get code)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let shared_no_scratch : int array array = [||]

let run (cpu : Cpu.t) ~host ~(code : Code.t) ~args =
  let p = get code in
  let regs = Array.make (Insn.num_gp_regs + 3) 0 in
  let fregs = Array.make Insn.num_fp_regs 0.0 in
  let slots = Array.make (max 1 code.Code.gp_slots) 0 in
  let fslots = Array.make (max 1 code.Code.fp_slots) 0.0 in
  let n_args = min (Array.length args) Insn.num_arg_regs in
  Array.blit args 0 regs 0 n_args;
  let st =
    {
      cpu;
      clk = cpu.Cpu.clk;
      inorder = cpu.Cpu.cfg.Cpu.inorder;
      sampler = cpu.Cpu.sampler;
      counters = cpu.Cpu.counters;
      regs;
      fregs;
      slots;
      fslots;
      rr = cpu.Cpu.reg_ready;
      fr = cpu.Cpu.freg_ready;
      mem = host.memory;
      host;
      scratch = shared_no_scratch;
      fz = false;
      fn = false;
      fv = false;
      fc = false;
      funord = false;
      outcome = Done 0;
    }
  in
  let uops = p.p_uops in
  let addrs = p.p_addrs in
  let pcs = p.p_pcs and checks = p.p_checks in
  let counters = st.counters in
  let clk = st.clk in
  cpu.Cpu.cur_code <- p.p_code_id;
  (* Every next-index a micro-op can return is within [0, count]
     (straight-line successors and decode-resolved branch targets), and
     slot [count] holds the fell-off-code-end sentinel, so the loop
     indexes the arrays unchecked. *)
  (match cpu.Cpu.sampler with
  | Some _ ->
    let i = ref 0 in
    while !i >= 0 do
      if clk.Cpu.now > clk.Cpu.fuel_limit then
        Support.Fault.runaway ~what:code.Code.name ~limit:clk.Cpu.fuel_limit;
      let k = !i in
      (* Shared per-instruction prologue, all constants pre-resolved:
         exactly the direct engine's fetch/sample/count/check
         sequence. *)
      let addr = Array.unsafe_get addrs k in
      Cpu.fetch_line cpu ~addr ~line:(addr lsr 4);
      cpu.Cpu.cur_pc <- Array.unsafe_get pcs k;
      counters.Perf.jit_instructions <- counters.Perf.jit_instructions + 1;
      let ci = Array.unsafe_get checks k in
      if ci <> 0 then
        Perf.note_check counters
          ~group_index:((ci land 15) - 1)
          ~branch:(ci >= 16);
      i := (Array.unsafe_get uops k) st
    done
  | None ->
    (* Without a PC sampler the attribution PC is never read
       ([Cpu.finish] only consults it to tick the sampler), so the
       per-instruction [cur_pc] update is dead and skipped. *)
    let i = ref 0 in
    while !i >= 0 do
      if clk.Cpu.now > clk.Cpu.fuel_limit then
        Support.Fault.runaway ~what:code.Code.name ~limit:clk.Cpu.fuel_limit;
      let k = !i in
      let addr = Array.unsafe_get addrs k in
      Cpu.fetch_line cpu ~addr ~line:(addr lsr 4);
      counters.Perf.jit_instructions <- counters.Perf.jit_instructions + 1;
      let ci = Array.unsafe_get checks k in
      if ci <> 0 then
        Perf.note_check counters
          ~group_index:((ci land 15) - 1)
          ~branch:(ci >= 16);
      i := (Array.unsafe_get uops k) st
    done);
  st.outcome
