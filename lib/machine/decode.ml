(* Pre-decoded threaded-code execution engine with superinstruction
   fusion and block-batched accounting.

   [compile] lowers a [Code.t] once into a flat array of micro-op
   closures: operand indexes, effective-address components, latency
   classes, check provenance, branch targets, fetch addresses and
   cache-line numbers are all resolved at decode time.  A peephole
   fusion pass then pairs hot adjacent micro-ops (compare + deopt
   branch, compare + b.cond, load + untag shift — the software
   [jsldrsmi] analogue — and disjoint ALU chains) into single fused
   closures, and a batching pass precomputes each straight-line
   block's aggregate static counter cost so the dispatch loop charges
   one integer update per block instead of per instruction; only
   dynamic events (branch resolution, memory hierarchy, sampler
   windows, watchdog fuel) are modeled individually.
   Pseudo-instructions (labels, checkpoints) are compiled away and
   branch targets are remapped onto the compacted dispatch-slot array.
   VSPEC_FUSE=0 / VSPEC_BATCH=0 disable either pass.

   The program is cached on the code object itself
   ([Code.decode_cache]); recompilation allocates a fresh [Code.t], so
   stale programs are unreachable by construction, and the cache needs
   no cross-domain coordination because a code object belongs to
   exactly one engine (and thus one domain).

   Bit-identity contract: for any program and CPU model, this engine
   must produce exactly the same outcome, memory, timing state and
   counters as [Exec.run_direct] — it performs the same [Cpu] calls in
   the same order with the same operands.  The determinism tests
   assert digest equality of whole experiment results between the two
   engines. *)

type host = {
  memory : int array;
  call_builtin : int -> int array -> int;
  call_js : int -> int array -> int;
}

type snapshot = {
  s_regs : int array;
  s_fregs : float array;
  s_slots : int array;
  s_fslots : float array;
}

type outcome =
  | Done of int
  | Deopt of {
      deopt_id : int;
      reason : Insn.deopt_reason;
      snapshot : snapshot;
      via_smi_ext : bool;
    }

exception Machine_fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Machine_fault s)) fmt

(* Special register indexes inside the GP register file. *)
let reg_ba = Insn.num_gp_regs
let reg_pc = Insn.num_gp_regs + 1
let reg_re = Insn.num_gp_regs + 2

let sext32 x =
  let w = x land 0xFFFFFFFF in
  if w >= 0x80000000 then w - 0x100000000 else w

(* Deopt reason encoding written to REG_RE by the SMI-extension bailout
   path (paper: an 8-bit deoptimization-reason code). *)
let reason_code = function
  | Insn.Not_a_smi -> 1
  | Insn.Smi -> 2
  | Insn.Out_of_bounds -> 3
  | Insn.Wrong_map -> 4
  | Insn.Overflow -> 5
  | Insn.Lost_precision -> 6
  | Insn.Division_by_zero -> 7
  | Insn.Minus_zero -> 8
  | Insn.Not_a_number -> 9
  | Insn.Wrong_value -> 10
  | Insn.Hole -> 11
  | Insn.Insufficient_feedback -> 12

(* Mutable machine state of one activation.  Flags live inline (the
   direct engine allocates a flags record per run); register-ready
   arrays alias the CPU's own. *)
type st = {
  cpu : Cpu.t;
  clk : Cpu.clock; (* = cpu.clk, cached to save an indirection *)
  inorder : bool; (* = cpu.cfg.inorder *)
  sampler : Perf.sampler option; (* = cpu.sampler *)
  sampling : bool; (* = sampler <> None; read by fused micro-ops *)
  bp : Predictor.t; (* = cpu.bp, hoisted out of the per-branch path *)
  counters : Perf.counters;
  fstats : Perf.fusion;
  binc : int; (* 1 when block batching is on: blocks charged per entry *)
  regs : int array;
  fregs : float array;
  slots : int array;
  fslots : float array;
  rr : float array;
  fr : float array;
  mem : int array;
  host : host;
  mutable scratch : int array array;
      (* per-argc call-argument buffers, allocated on first Call *)
  mutable fz : bool;
  mutable fn : bool;
  mutable fv : bool;
  mutable fc : bool;
  mutable funord : bool;
  mutable outcome : outcome;
}

(* A micro-op executes one retired instruction and returns the index of
   the next micro-op, or -1 after setting [st.outcome]. *)
type uop = st -> int

(* Static integer-counter cost of a run of micro-ops.  One record per
   basic block is charged at block entry; the same shape describes the
   refund applied when a block exits early (mid-block deopt bailout or
   machine fault), so the committed counters equal the direct
   interpreter's exactly on every path.  Only order-independent integer
   counters can be batched like this: all float state (clock, stall
   accumulators) is non-associative and stays per-instruction. *)
type delta = {
  d_instr : int;
  d_jit : int;
  d_loads : int;
  d_stores : int;
  d_branches : int;
  d_chk : int;
  d_chkbr : int;
  d_groups : int array; (* length 6; the shared all-zero array if empty *)
  d_fused : int array; (* per Perf fuse kind; shared zeros if empty *)
  d_fused_retired : int;
}

let zeros6 = Array.make 6 0
let zerosf = Array.make Perf.num_fuse_kinds 0

let no_delta =
  {
    d_instr = 0;
    d_jit = 0;
    d_loads = 0;
    d_stores = 0;
    d_branches = 0;
    d_chk = 0;
    d_chkbr = 0;
    d_groups = zeros6;
    d_fused = zerosf;
    d_fused_retired = 0;
  }

(* Decode-time static coverage of one compiled program. *)
type stats = {
  st_uops : int;
  st_slots : int; (* dispatch slots = uops - fused pairs (+1 sentinel) *)
  st_blocks : int;
  st_fused : int array; (* static fused pairs per Perf fuse kind *)
}

(* The compiled form: one closure per dispatch slot (a single
   instruction or a fused pair) plus flat side arrays of decode-time
   constants consumed by the dispatch loop's shared prologue (fetch
   address or -1 when the i-cache line provably cannot have changed,
   original instruction index for sampler attribution, basic-block id
   at block-leader slots with its batched counter delta, and a
   machine-fault refund per slot). *)
type program = {
  p_name : string;
  p_code_id : int;
  p_uops : uop array;
      (* [length = slots + 1]: the last slot is a sentinel that faults
         on falling off the code end, so the dispatch loop needs no
         per-slot bounds check (every next-index is in range by
         construction). *)
  p_addrs : int array; (* fetch address, or -1 = statically elided *)
  p_pcs : int array;
  p_blocks : int array; (* block id at block-leader slots, else -1 *)
  p_deltas : delta array; (* per block id: batched static cost *)
  p_faults : delta array;
      (* per slot: refund when a Machine_fault escapes this slot *)
  p_fuse : bool;
  p_batch : bool; (* flags the program was compiled under *)
  p_stats : stats;
}

type Code.cache += Decoded of program

(* ------------------------------------------------------------------ *)
(* Engine configuration: VSPEC_FUSE / VSPEC_BATCH escape hatches       *)
(* (mirroring VSPEC_EXEC=direct) plus programmatic overrides for the   *)
(* determinism tests.  [get] recompiles when a cached program was      *)
(* built under different flags, so toggling mid-process is safe.       *)
(* ------------------------------------------------------------------ *)

let env_flag name =
  lazy
    (match Sys.getenv_opt name with
    | Some ("0" | "off" | "no" | "false") -> false
    | Some _ | None -> true)

let env_fuse = env_flag "VSPEC_FUSE"
let env_batch = env_flag "VSPEC_BATCH"
let fuse_override : bool option ref = ref None
let batch_override : bool option ref = ref None
let set_fuse o = fuse_override := o
let set_batch o = batch_override := o

let fuse_enabled () =
  match !fuse_override with Some b -> b | None -> Lazy.force env_fuse

let batch_enabled () =
  match !batch_override with Some b -> b | None -> Lazy.force env_batch

(* Ready times are completion timestamps: always finite, never NaN and
   never negative, so a branchy max is exactly [Float.max] without the
   boxing of a non-inlined float call. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* Register-file accesses in the hot micro-ops: every register index is
   range-checked once at decode time ([compile]'s [vreg]/[vfreg]), so
   the per-execution bounds checks are dropped. *)
let[@inline] rget st r = Array.unsafe_get st.regs r
let[@inline] rset st r (v : int) = Array.unsafe_set st.regs r v
let[@inline] tget st r : float = Array.unsafe_get st.rr r
let[@inline] tset st r (v : float) = Array.unsafe_set st.rr r v

(* Inlined issue paths: [Cpu.dispatch]/[Cpu.finish] re-expressed over
   the state cached in [st] (clock, counters, in-order bit, sampler)
   and fused with the latency class resolved at decode time, so the
   hot micro-ops pay no [Cpu.issue] call chain, no per-instruction
   latency lookup and no re-derivation through [Cpu.t].  Same float
   arithmetic in the same order as [Cpu.issue]* — bit-identical timing
   (enforced by the exec-determinism suite).  Unlike [Cpu.issue]*,
   these do NOT bump the static integer counters (instructions, loads,
   stores, branches): those are precomputed per basic block at decode
   time and charged once at block entry by [charge] below. *)
let[@inline] disp st ~ready =
  let c = st.clk in
  let d = c.Cpu.now in
  c.Cpu.now <- d +. c.Cpu.inv_width;
  let start = if ready > d then ready else d in
  if st.inorder then begin
    if start > c.Cpu.now then begin
      let cnt = st.counters in
      cnt.Perf.backend_stall <- cnt.Perf.backend_stall +. (start -. c.Cpu.now);
      c.Cpu.now <- start
    end
  end
  else begin
    let slack = c.Cpu.rob_slack in
    if start -. d > slack then begin
      let push = start -. d -. slack in
      let cnt = st.counters in
      cnt.Perf.backend_stall <- cnt.Perf.backend_stall +. push;
      c.Cpu.now <- c.Cpu.now +. push
    end
  end;
  start

let[@inline] fin st complete =
  let c = st.clk in
  let retire = if complete > c.Cpu.high then complete else c.Cpu.high in
  c.Cpu.high <- retire;
  (match st.sampler with
  | None -> ()
  | Some s ->
    Perf.sampler_tick s ~now:retire ~code_id:st.cpu.Cpu.cur_code
      ~pc:st.cpu.Cpu.cur_pc);
  complete

let[@inline] issue_alu st ~ready =
  let start = disp st ~ready in
  fin st (start +. st.clk.Cpu.clk_lat_alu)

(* The general-class issue: the latency table lookup [Cpu.issue] does,
   minus its retirement counting. *)
let[@inline] issue_cls st ~cls ~ready =
  let start = disp st ~ready in
  fin st (start +. Cpu.latency st.cpu.Cpu.cfg cls)

let[@inline] issue_load st ~ready ~addr =
  let start = disp st ~ready in
  let lat = float_of_int (Cache.data_latency st.cpu.Cpu.hier addr) in
  fin st (start +. lat)

let[@inline] issue_store st ~ready ~addr =
  let start = disp st ~ready in
  ignore (Cache.access st.cpu.Cpu.hier.Cache.l1d addr);
  fin st (start +. 1.0)

let[@inline] issue_branch st ~pc ~ready ~taken =
  let start = disp st ~ready in
  let complete = start +. 1.0 in
  let c = st.counters in
  if taken then c.Perf.taken_branches <- c.Perf.taken_branches + 1;
  let correct = Predictor.predict_and_update st.bp ~pc ~taken in
  let clk = st.clk in
  if not correct then begin
    c.Perf.mispredicts <- c.Perf.mispredicts + 1;
    let resume = complete +. clk.Cpu.mispredict_penalty in
    if resume > clk.Cpu.now then begin
      c.Perf.frontend_stall <-
        c.Perf.frontend_stall +. (resume -. clk.Cpu.now);
      clk.Cpu.now <- resume
    end
  end
  else if taken then begin
    let bubble = clk.Cpu.taken_bubble in
    clk.Cpu.now <- clk.Cpu.now +. bubble;
    c.Perf.frontend_stall <- c.Perf.frontend_stall +. bubble
  end;
  ignore (fin st complete)

(* Batched accounting: one static-counter update per basic-block entry
   (or per slot when batching is off — the deltas then describe single
   slots).  Integer adds only; commutes with everything the micro-op
   bodies do, so charging at entry instead of per retired instruction
   is invisible in the final counters. *)
let charge st (d : delta) =
  let c = st.counters in
  c.Perf.instructions <- c.Perf.instructions + d.d_instr;
  c.Perf.jit_instructions <- c.Perf.jit_instructions + d.d_jit;
  c.Perf.loads <- c.Perf.loads + d.d_loads;
  c.Perf.stores <- c.Perf.stores + d.d_stores;
  c.Perf.branches <- c.Perf.branches + d.d_branches;
  if d.d_chk <> 0 then begin
    c.Perf.check_instructions <- c.Perf.check_instructions + d.d_chk;
    c.Perf.check_branches <- c.Perf.check_branches + d.d_chkbr;
    let g = d.d_groups in
    if g != zeros6 then begin
      let pg = c.Perf.check_per_group in
      for gi = 0 to 5 do
        let v = Array.unsafe_get g gi in
        if v <> 0 then Array.unsafe_set pg gi (Array.unsafe_get pg gi + v)
      done
    end
  end;
  let fs = st.fstats in
  fs.Perf.batched_blocks <- fs.Perf.batched_blocks + st.binc;
  if d.d_fused_retired <> 0 then begin
    fs.Perf.fused_retired <- fs.Perf.fused_retired + d.d_fused_retired;
    let f = d.d_fused in
    let pf = fs.Perf.fused_by_kind in
    for fi = 0 to Perf.num_fuse_kinds - 1 do
      let v = Array.unsafe_get f fi in
      if v <> 0 then Array.unsafe_set pf fi (Array.unsafe_get pf fi + v)
    done
  end

(* Exact inverse of the unexecuted suffix of a block, applied on the
   cold early-exit paths (deopt bailouts, machine faults) so batched
   counters match what the direct interpreter actually retired.
   [batched_blocks] is a charge-event count, not a per-instruction
   counter, so it is deliberately not refunded. *)
let refund st (d : delta) =
  if d != no_delta then begin
    let c = st.counters in
    c.Perf.instructions <- c.Perf.instructions - d.d_instr;
    c.Perf.jit_instructions <- c.Perf.jit_instructions - d.d_jit;
    c.Perf.loads <- c.Perf.loads - d.d_loads;
    c.Perf.stores <- c.Perf.stores - d.d_stores;
    c.Perf.branches <- c.Perf.branches - d.d_branches;
    if d.d_chk <> 0 then begin
      c.Perf.check_instructions <- c.Perf.check_instructions - d.d_chk;
      c.Perf.check_branches <- c.Perf.check_branches - d.d_chkbr;
      let g = d.d_groups in
      if g != zeros6 then begin
        let pg = c.Perf.check_per_group in
        for gi = 0 to 5 do
          let v = Array.unsafe_get g gi in
          if v <> 0 then Array.unsafe_set pg gi (Array.unsafe_get pg gi - v)
        done
      end
    end;
    if d.d_fused_retired <> 0 then begin
      let fs = st.fstats in
      fs.Perf.fused_retired <- fs.Perf.fused_retired - d.d_fused_retired;
      let f = d.d_fused in
      let pf = fs.Perf.fused_by_kind in
      for fi = 0 to Perf.num_fuse_kinds - 1 do
        let v = Array.unsafe_get f fi in
        if v <> 0 then Array.unsafe_set pf fi (Array.unsafe_get pf fi - v)
      done
    end
  end

let[@inline] mem_index st name a =
  if a land 1 <> 0 then fault "%s: unaligned address %d" name a;
  let i = a asr 1 in
  if i < 0 || i >= Array.length st.mem then
    fault "%s: address %d out of range" name a;
  i

(* Second word of a two-word (float) access; [i0] has been checked. *)
let[@inline] mem_index2 st name a i0 =
  if i0 + 1 >= Array.length st.mem then
    fault "%s: address %d out of range" name (a + 2);
  i0 + 1

let[@inline] set_add_sub_flags st a b result is_sub =
  let r32 = sext32 result in
  st.fz <- r32 = 0;
  st.fn <- r32 < 0;
  st.funord <- false;
  (* Signed overflow of 32-bit add/sub. *)
  if is_sub then begin
    st.fv <- (a >= 0 && b < 0 && r32 < 0) || (a < 0 && b >= 0 && r32 >= 0);
    st.fc <- a land 0xFFFFFFFF >= b land 0xFFFFFFFF
  end
  else begin
    st.fv <- (a >= 0 && b >= 0 && r32 < 0) || (a < 0 && b < 0 && r32 >= 0);
    st.fc <- (a land 0xFFFFFFFF) + (b land 0xFFFFFFFF) > 0xFFFFFFFF
  end

let[@inline] set_logic_flags st raw =
  let r32 = sext32 raw in
  st.fz <- r32 = 0;
  st.fn <- r32 < 0;
  st.fv <- false;
  st.funord <- false

(* Decode-time specialization of the direct engine's [eval_cond]: one
   closure per static condition code, with the unordered-compare rule
   folded in (NaN compares satisfy only Ne and Vs). *)
let cond_fn c : st -> bool =
  match c with
  | Insn.Eq -> fun st -> (not st.funord) && st.fz
  | Insn.Ne -> fun st -> st.funord || not st.fz
  | Insn.Lt -> fun st -> (not st.funord) && st.fn <> st.fv
  | Insn.Ge -> fun st -> (not st.funord) && st.fn = st.fv
  | Insn.Le -> fun st -> (not st.funord) && (st.fz || st.fn <> st.fv)
  | Insn.Gt -> fun st -> (not st.funord) && (not st.fz) && st.fn = st.fv
  | Insn.Vs -> fun st -> st.funord || st.fv
  | Insn.Vc -> fun st -> (not st.funord) && not st.fv
  | Insn.Hs -> fun st -> (not st.funord) && st.fc
  | Insn.Lo -> fun st -> (not st.funord) && not st.fc

let take_snapshot st =
  {
    s_regs = Array.copy st.regs;
    s_fregs = Array.copy st.fregs;
    s_slots = Array.copy st.slots;
    s_fslots = Array.copy st.fslots;
  }

let[@inline] scratch_buf st argc =
  if Array.length st.scratch = 0 then
    st.scratch <- Array.make (Insn.num_gp_regs + 4) [||];
  let b = st.scratch.(argc) in
  if Array.length b = argc then b
  else begin
    let b = Array.make argc 0 in
    st.scratch.(argc) <- b;
    b
  end

let alu_raw op a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.Mul -> a * b
  | Insn.Sdiv -> if b = 0 then 0 else a / b
  | Insn.Smod -> if b = 0 then 0 else a mod b
  | Insn.And -> a land b
  | Insn.Orr -> a lor b
  | Insn.Eor -> a lxor b
  | Insn.Lsl -> a lsl (b land 31)
  | Insn.Lsr -> (a land 0xFFFFFFFF) lsr (b land 31)
  | Insn.Asr -> a asr (b land 31)

let set_alu_flags st op a b raw =
  match op with
  | Insn.Add -> set_add_sub_flags st a b raw false
  | Insn.Sub -> set_add_sub_flags st a b raw true
  | Insn.Mul ->
    (* smulls-style: overflow when the 64-bit product does not fit in
       32 bits. *)
    let r32 = sext32 raw in
    st.fz <- r32 = 0;
    st.fn <- r32 < 0;
    st.fv <- raw <> r32;
    st.funord <- false
  | Insn.Sdiv | Insn.Smod | Insn.And | Insn.Orr | Insn.Eor | Insn.Lsl
  | Insn.Lsr | Insn.Asr ->
    set_logic_flags st raw

(* ------------------------------------------------------------------ *)
(* Superinstruction fusion                                             *)
(* ------------------------------------------------------------------ *)

(* Single-cycle C_alu operators; Mul/Sdiv/Smod have their own latency
   classes and are never fused. *)
let simple_alu = function
  | Insn.Add | Insn.Sub | Insn.And | Insn.Orr | Insn.Eor | Insn.Lsl
  | Insn.Lsr | Insn.Asr ->
    true
  | Insn.Mul | Insn.Sdiv | Insn.Smod -> false

(* Peephole classifier: which fused micro-op (if any) covers the
   adjacent pair [k1; k2]?  Returns a [Perf] fuse-kind index or -1.
   The caller has already established that [k2] is not a branch target
   and that both instructions share an i-cache fetch line (so skipping
   the intra-pair fetch is provably a no-op).

   The patterns are the hot shapes the paper's measurements point at:
   the compare feeding a conditional deopt branch (every eager check),
   compare + conditional branch (loop back-edges and bounds checks
   lowered as branches), load + untag shift (the software analogue of
   the [jsldrsmi] extension's fused untagging), and ALU chains on
   disjoint registers (straight-line arithmetic between checks). *)
let fuse_kind_of k1 k2 =
  match (k1, k2) with
  | (Insn.Cmp _ | Insn.Tst _), Insn.Deopt_if _ -> Perf.f_check_deopt
  | (Insn.Cmp _ | Insn.Tst _), Insn.Bcond _ -> Perf.f_cmp_bcond
  | ( Insn.Ldr (d, _),
      Insn.Alu { op; dst = _; src; rhs = Insn.Imm _; set_flags = false } )
    when (op = Insn.Asr || op = Insn.Lsr) && src = d ->
    Perf.f_load_untag
  | ( Insn.Alu { op = o1; dst = d1; src = _; rhs = rhs1; set_flags = false },
      Insn.Alu { op = o2; dst = d2; src = s2; rhs = rhs2; set_flags = false } )
    when simple_alu o1 && simple_alu o2
         && (match rhs1 with Insn.Reg _ | Insn.Imm _ -> true)
         && d1 <> d2 && s2 <> d1
         && (match rhs2 with Insn.Reg r -> r <> d1 | Insn.Imm _ -> true) ->
    Perf.f_alu_alu
  | _ -> -1

(* ------------------------------------------------------------------ *)
(* Decode                                                              *)
(* ------------------------------------------------------------------ *)

let compile (code : Code.t) : program =
  let fuse = fuse_enabled () in
  let batch = batch_enabled () in
  let insns = code.Code.insns in
  let n = Array.length insns in
  let name = code.Code.name in
  let base = code.Code.base_addr in
  let code_id = code.Code.code_id in
  let deopts = code.Code.deopts in
  (* Pseudo-instructions are compiled away: map every instruction index
     to its micro-op index (for branch-target remapping). *)
  let uop_of_insn = Array.make (n + 1) 0 in
  let count = ref 0 in
  for i = 0 to n - 1 do
    uop_of_insn.(i) <- !count;
    if not (Insn.is_pseudo insns.(i).Insn.kind) then incr count
  done;
  uop_of_insn.(n) <- !count;
  let n_uops = !count in
  let insn_of_uop = Array.make (max 1 n_uops) 0 in
  for i = n - 1 downto 0 do
    if not (Insn.is_pseudo insns.(i).Insn.kind) then
      insn_of_uop.(uop_of_insn.(i)) <- i
  done;
  let utarget l = uop_of_insn.(code.Code.label_index.(l)) in
  let ku u = insns.(insn_of_uop.(u)).Insn.kind in
  let uline u = (base + insn_of_uop.(u)) lsr 4 in

  (* ---- basic-block leaders (micro-op space) ----
     A leader starts a straight-line block: entry, every branch target,
     and the fall-through successor of every block terminator (B, Bcond,
     Call, Ret).  Bcond terminates its block on purpose: loop back-edges
     are hot-taken, and ending the block there keeps the taken path free
     of batched-counter refunds.  Deopt_if / Js_ldr_smi / Js_chk_map
     stay mid-block — their exits are cold by construction and pay an
     exact refund instead.  The sentinel index [n_uops] is a leader so
     branches to trailing pseudos resolve. *)
  let leader = Array.make (n_uops + 1) false in
  leader.(0) <- true;
  leader.(n_uops) <- true;
  for u = 0 to n_uops - 1 do
    match ku u with
    | Insn.B l | Insn.Bcond (_, l) ->
      leader.(utarget l) <- true;
      leader.(u + 1) <- true
    | Insn.Call _ | Insn.Ret -> leader.(u + 1) <- true
    | _ -> ()
  done;

  (* ---- fusion pass: assign micro-ops to dispatch slots ----
     Greedy adjacent pairing within a block.  A pair never absorbs a
     leader (branches must be able to land on the second instruction)
     and never crosses an i-cache fetch line (so the intra-pair fetch
     is provably redundant). *)
  let slot_of_uop = Array.make (n_uops + 1) 0 in
  let slot_first_uop = Array.make (max 1 n_uops) 0 in
  let slot_kind = Array.make (max 1 n_uops) (-1) in
  let slot_firstb = Array.make (n_uops + 1) false in
  let n_slots = ref 0 in
  let u = ref 0 in
  while !u < n_uops do
    let s = !n_slots in
    slot_of_uop.(!u) <- s;
    slot_first_uop.(s) <- !u;
    slot_firstb.(!u) <- true;
    let fk =
      if
        fuse
        && !u + 1 < n_uops
        && (not leader.(!u + 1))
        && uline !u = uline (!u + 1)
      then fuse_kind_of (ku !u) (ku (!u + 1))
      else -1
    in
    slot_kind.(s) <- fk;
    if fk >= 0 then begin
      slot_of_uop.(!u + 1) <- s;
      u := !u + 2
    end
    else incr u;
    incr n_slots
  done;
  let n_slots = !n_slots in
  slot_of_uop.(n_uops) <- n_slots;
  slot_firstb.(n_uops) <- true;
  let starget l = slot_of_uop.(utarget l) in

  (* ---- static per-uop accounting ----
     What the direct interpreter's loop and issue paths add to the
     integer counters for one retired instruction: always one
     jit_instruction; one retired instruction unless Nop (which never
     issues); loads/stores/branches by issue path; check provenance
     from [Insn.prov].  Fused-pair coverage counters ride on the
     SECOND uop of each pair so a machine fault in the first half
     refunds the whole pair. *)
  let du_instr = Array.make (max 1 n_uops) 1 in
  let du_loads = Array.make (max 1 n_uops) 0 in
  let du_stores = Array.make (max 1 n_uops) 0 in
  let du_branches = Array.make (max 1 n_uops) 0 in
  let du_chk = Array.make (max 1 n_uops) 0 in
  let du_chkbr = Array.make (max 1 n_uops) 0 in
  let du_grp = Array.make (max 1 n_uops) (-1) in
  let du_fusedk = Array.make (max 1 n_uops) (-1) in
  for u = 0 to n_uops - 1 do
    let insn = insns.(insn_of_uop.(u)) in
    (match insn.Insn.kind with
    | Insn.Nop -> du_instr.(u) <- 0
    | Insn.Ldr _ | Insn.Ldr_f _ | Insn.Alu_mem _ | Insn.Cmp_mem _
    | Insn.Js_ldr_smi _ | Insn.Js_chk_map _ ->
      du_loads.(u) <- 1
    | Insn.Str _ | Insn.Str_f _ -> du_stores.(u) <- 1
    | Insn.B _ | Insn.Bcond _ | Insn.Deopt_if _ | Insn.Ret ->
      du_branches.(u) <- 1
    | _ -> ());
    match insn.Insn.prov with
    | Insn.Check { group; _ } ->
      du_chk.(u) <- 1;
      du_grp.(u) <- Insn.group_index group;
      (match insn.Insn.kind with
      | Insn.Deopt_if _ -> du_chkbr.(u) <- 1
      | _ -> ())
    | Insn.Main_line | Insn.Shared -> ()
  done;
  for s = 0 to n_slots - 1 do
    if slot_kind.(s) >= 0 then
      du_fusedk.(slot_first_uop.(s) + 1) <- slot_kind.(s)
  done;

  (* ---- accounting blocks and their batched deltas ----
     With batching on, an accounting block is a control-flow block;
     with batching off every slot is its own block, which keeps one
     loop shape for all four engine configurations while restoring
     per-slot charging. *)
  let block_start u = if batch then leader.(u) else slot_firstb.(u) in
  let n_blocks = ref 0 in
  for u = 0 to n_uops - 1 do
    if block_start u then incr n_blocks
  done;
  let n_blocks = !n_blocks in
  let block_lo = Array.make (max 1 n_blocks) 0 in
  let block_of_uop = Array.make (max 1 n_uops) 0 in
  let blk = ref (-1) in
  for u = 0 to n_uops - 1 do
    if block_start u then begin
      incr blk;
      block_lo.(!blk) <- u
    end;
    block_of_uop.(u) <- !blk
  done;
  let block_hi b =
    if b + 1 < n_blocks then block_lo.(b + 1) - 1 else n_uops - 1
  in
  let g_scratch = Array.make 6 0 in
  let f_scratch = Array.make Perf.num_fuse_kinds 0 in
  let p_deltas = Array.make (max 1 n_blocks) no_delta in
  for b = 0 to n_blocks - 1 do
    let lo = block_lo.(b) and hi = block_hi b in
    let ai = ref 0
    and al = ref 0
    and asr_ = ref 0
    and ab = ref 0
    and ac = ref 0
    and acb = ref 0
    and afr = ref 0 in
    Array.fill g_scratch 0 6 0;
    Array.fill f_scratch 0 Perf.num_fuse_kinds 0;
    let any_g = ref false and any_f = ref false in
    for u = lo to hi do
      ai := !ai + du_instr.(u);
      al := !al + du_loads.(u);
      asr_ := !asr_ + du_stores.(u);
      ab := !ab + du_branches.(u);
      ac := !ac + du_chk.(u);
      acb := !acb + du_chkbr.(u);
      let g = du_grp.(u) in
      if g >= 0 then begin
        g_scratch.(g) <- g_scratch.(g) + 1;
        any_g := true
      end;
      let fk = du_fusedk.(u) in
      if fk >= 0 then begin
        f_scratch.(fk) <- f_scratch.(fk) + 1;
        afr := !afr + 2;
        any_f := true
      end
    done;
    p_deltas.(b) <-
      {
        d_instr = !ai;
        d_jit = hi - lo + 1;
        d_loads = !al;
        d_stores = !asr_;
        d_branches = !ab;
        d_chk = !ac;
        d_chkbr = !acb;
        d_groups = (if !any_g then Array.copy g_scratch else zeros6);
        d_fused = (if !any_f then Array.copy f_scratch else zerosf);
        d_fused_retired = !afr;
      }
  done;

  (* ---- early-exit refunds ----
     [refund_at.(u)] is the static cost of the block suffix strictly
     AFTER micro-op [u]: exactly what the block-entry charge
     over-counted if execution leaves the block right after [u]
     retires (deopt taken) or while [u] itself executes (machine
     fault; the direct engine has fully charged the faulting
     instruction by then, since its issue precedes the memory
     access). *)
  let refund_at = Array.make (n_uops + 1) no_delta in
  for b = 0 to n_blocks - 1 do
    let lo = block_lo.(b) and hi = block_hi b in
    let ai = ref 0
    and aj = ref 0
    and al = ref 0
    and asr_ = ref 0
    and ab = ref 0
    and ac = ref 0
    and acb = ref 0
    and afr = ref 0 in
    Array.fill g_scratch 0 6 0;
    Array.fill f_scratch 0 Perf.num_fuse_kinds 0;
    let any_g = ref false and any_f = ref false in
    for u = hi downto lo do
      if !aj > 0 then
        refund_at.(u) <-
          {
            d_instr = !ai;
            d_jit = !aj;
            d_loads = !al;
            d_stores = !asr_;
            d_branches = !ab;
            d_chk = !ac;
            d_chkbr = !acb;
            d_groups = (if !any_g then Array.copy g_scratch else zeros6);
            d_fused = (if !any_f then Array.copy f_scratch else zerosf);
            d_fused_retired = !afr;
          };
      ai := !ai + du_instr.(u);
      aj := !aj + 1;
      al := !al + du_loads.(u);
      asr_ := !asr_ + du_stores.(u);
      ab := !ab + du_branches.(u);
      ac := !ac + du_chk.(u);
      acb := !acb + du_chkbr.(u);
      let g = du_grp.(u) in
      if g >= 0 then begin
        g_scratch.(g) <- g_scratch.(g) + 1;
        any_g := true
      end;
      let fk = du_fusedk.(u) in
      if fk >= 0 then begin
        f_scratch.(fk) <- f_scratch.(fk) + 1;
        afr := !afr + 2;
        any_f := true
      end
    done
  done;

  (* Operand validation, once per instruction at decode time: the
     micro-op bodies then use unchecked register-file accesses.  The
     direct interpreter would raise [Invalid_argument] on the first
     execution of such an instruction; rejecting it at decode keeps
     malformed code from executing unchecked. *)
  let n_gp = Insn.num_gp_regs + 3 in
  let vreg r =
    if r < 0 || r >= n_gp then fault "%s: bad register r%d" name r;
    r
  in
  let vfreg r =
    if r < 0 || r >= Insn.num_fp_regs then
      fault "%s: bad fp register f%d" name r;
    r
  in

  (* Effective-address and address-ready evaluation, specialized at
     decode time on the presence of an index register. *)
  let eff (a : Insn.addr) =
    let b = vreg a.Insn.base and off = a.Insn.offset in
    match a.Insn.index with
    | None -> fun st -> rget st b + off
    | Some ix ->
      let ix = vreg ix in
      let s = a.Insn.scale in
      fun st -> rget st b + (rget st ix * s) + off
  in
  let aready (a : Insn.addr) =
    let b = vreg a.Insn.base in
    match a.Insn.index with
    | None -> fun st -> tget st b
    | Some ix ->
      let ix = vreg ix in
      fun st -> fmax (tget st b) (tget st ix)
  in

  (* The body of one singleton micro-op: the instruction's semantics
     with every operand pre-resolved.  [next] is the slot-space
     fall-through successor; [rf] the early-exit refund applied when
     this micro-op leaves its block mid-way (deopt bailout paths). *)
  let body i ~next ~rf (k : Insn.kind) : uop =
    let bpc = base + i in
    match k with
    | Insn.Label _ | Insn.Checkpoint _ ->
      assert false (* pseudo: never emitted *)
    | Insn.Nop -> fun _ -> next
    | Insn.Mov (d, Insn.Reg r) ->
      let d = vreg d and r = vreg r in
      fun st ->
        let t = issue_alu st ~ready:(tget st r) in
        rset st d (rget st r);
        tset st d t;
        next
    | Insn.Mov (d, Insn.Imm v) ->
      let d = vreg d in
      fun st ->
        let t = issue_alu st ~ready:0.0 in
        rset st d v;
        tset st d t;
        next
    | Insn.Ldr (d, a) -> (
      (* Specialized on addressing mode so the hot base+offset form
         pays no effective-address closure calls. *)
      let d = vreg d in
      match a.Insn.index with
      | None ->
        let b = vreg a.Insn.base and off = a.Insn.offset in
        fun st ->
          let ea = rget st b + off in
          let t = issue_load st ~ready:(tget st b) ~addr:ea in
          rset st d (Array.unsafe_get st.mem (mem_index st name ea));
          tset st d t;
          next
      | Some _ ->
        let ea = eff a and rdy = aready a in
        fun st ->
          let ea = ea st in
          let t = issue_load st ~ready:(rdy st) ~addr:ea in
          rset st d (Array.unsafe_get st.mem (mem_index st name ea));
          tset st d t;
          next)
    | Insn.Str (a, s) -> (
      let s = vreg s in
      match a.Insn.index with
      | None ->
        let b = vreg a.Insn.base and off = a.Insn.offset in
        fun st ->
          let ea = rget st b + off in
          let ready = fmax (tget st b) (tget st s) in
          ignore (issue_store st ~ready ~addr:ea);
          Array.unsafe_set st.mem (mem_index st name ea) (rget st s);
          next
      | Some _ ->
        let ea = eff a and rdy = aready a in
        fun st ->
          let ea = ea st in
          let ready = fmax (rdy st) (tget st s) in
          ignore (issue_store st ~ready ~addr:ea);
          Array.unsafe_set st.mem (mem_index st name ea) (rget st s);
          next)
    | Insn.Ldr_f (d, a) ->
      let d = vfreg d in
      let ea = eff a and rdy = aready a in
      fun st ->
        let ea = ea st in
        let t = issue_load st ~ready:(rdy st) ~addr:ea in
        let i0 = mem_index st name ea in
        let i1 = mem_index2 st name ea i0 in
        let lo = Int64.of_int (st.mem.(i0) land 0xFFFFFFFF) in
        let hi = Int64.of_int (st.mem.(i1) land 0xFFFFFFFF) in
        st.fregs.(d) <-
          Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32));
        st.fr.(d) <- t;
        next
    | Insn.Str_f (a, s) ->
      let s = vfreg s in
      let ea = eff a and rdy = aready a in
      fun st ->
        let ea = ea st in
        let ready = fmax (rdy st) st.fr.(s) in
        ignore (issue_store st ~ready ~addr:ea);
        let bits = Int64.bits_of_float st.fregs.(s) in
        let i0 = mem_index st name ea in
        let i1 = mem_index2 st name ea i0 in
        st.mem.(i0) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
        st.mem.(i1) <- Int64.to_int (Int64.shift_right_logical bits 32);
        next
    | Insn.Alu { op; dst; src; rhs; set_flags } -> (
      let cls =
        match op with
        | Insn.Mul -> Cpu.C_mul
        | Insn.Sdiv | Insn.Smod -> Cpu.C_div
        | _ -> Cpu.C_alu
      in
      (* Specialize the dominant flag-free add/sub forms; everything
         else shares a generic body with the operator pre-captured. *)
      let dst = vreg dst and src = vreg src in
      match (op, rhs, set_flags) with
      | Insn.Add, Insn.Imm v, false ->
        fun st ->
          let a = rget st src in
          let t = issue_alu st ~ready:(tget st src) in
          rset st dst (sext32 (a + v));
          tset st dst t;
          next
      | Insn.Add, Insn.Reg r, false ->
        let r = vreg r in
        fun st ->
          let a = rget st src and b = rget st r in
          let t = issue_alu st ~ready:(fmax (tget st src) (tget st r)) in
          rset st dst (sext32 (a + b));
          tset st dst t;
          next
      | Insn.Sub, Insn.Imm v, false ->
        fun st ->
          let a = rget st src in
          let t = issue_alu st ~ready:(tget st src) in
          rset st dst (sext32 (a - v));
          tset st dst t;
          next
      | Insn.Sub, Insn.Reg r, false ->
        let r = vreg r in
        fun st ->
          let a = rget st src and b = rget st r in
          let t = issue_alu st ~ready:(fmax (tget st src) (tget st r)) in
          rset st dst (sext32 (a - b));
          tset st dst t;
          next
      | _, Insn.Imm v, false when cls = Cpu.C_alu ->
        fun st ->
          let a = rget st src in
          let t = issue_alu st ~ready:(tget st src) in
          rset st dst (sext32 (alu_raw op a v));
          tset st dst t;
          next
      | _, Insn.Reg r, false when cls = Cpu.C_alu ->
        let r = vreg r in
        fun st ->
          let a = rget st src and b = rget st r in
          let t = issue_alu st ~ready:(fmax (tget st src) (tget st r)) in
          rset st dst (sext32 (alu_raw op a b));
          tset st dst t;
          next
      | _, Insn.Imm v, _ ->
        fun st ->
          let a = st.regs.(src) in
          let t = issue_cls st ~cls ~ready:st.rr.(src) in
          let raw = alu_raw op a v in
          if set_flags then set_alu_flags st op a v raw;
          st.regs.(dst) <- sext32 raw;
          st.rr.(dst) <- t;
          if set_flags then st.clk.Cpu.flags_ready <- t;
          next
      | _, Insn.Reg r, _ ->
        fun st ->
          let a = st.regs.(src) and b = st.regs.(r) in
          let t = issue_cls st ~cls ~ready:(fmax st.rr.(src) st.rr.(r)) in
          let raw = alu_raw op a b in
          if set_flags then set_alu_flags st op a b raw;
          st.regs.(dst) <- sext32 raw;
          st.rr.(dst) <- t;
          if set_flags then st.clk.Cpu.flags_ready <- t;
          next)
    | Insn.Alu_mem { op; dst; src; mem = a } ->
      let ea = eff a and rdy = aready a in
      fun st ->
        let ea = ea st in
        let ready = fmax st.rr.(src) (rdy st) in
        let t = issue_load st ~ready ~addr:ea in
        let b = st.mem.(mem_index st name ea) in
        let av = st.regs.(src) in
        let raw =
          match op with
          | Insn.Add -> av + b
          | Insn.Sub -> av - b
          | Insn.And -> av land b
          | Insn.Orr -> av lor b
          | Insn.Eor -> av lxor b
          | Insn.Mul -> av * b
          | Insn.Sdiv -> if b = 0 then 0 else av / b
          | Insn.Smod -> if b = 0 then 0 else av mod b
          | Insn.Lsl | Insn.Lsr | Insn.Asr ->
            fault "%s: shift with memory operand" name
        in
        st.regs.(dst) <- sext32 raw;
        st.rr.(dst) <- t +. 1.0;
        next
    | Insn.Cmp (a, Insn.Imm v) ->
      let a = vreg a in
      fun st ->
        let av = rget st a in
        let t = issue_alu st ~ready:(tget st a) in
        set_add_sub_flags st av v (av - v) true;
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Cmp (a, Insn.Reg r) ->
      let a = vreg a and r = vreg r in
      fun st ->
        let av = rget st a and bv = rget st r in
        let t = issue_alu st ~ready:(fmax (tget st a) (tget st r)) in
        set_add_sub_flags st av bv (av - bv) true;
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Cmp_mem (a, m) ->
      let ea = eff m and rdy = aready m in
      fun st ->
        let eav = ea st in
        let ready = fmax st.rr.(a) (rdy st) in
        let t = issue_load st ~ready ~addr:eav in
        let bv = st.mem.(mem_index st name eav) in
        let av = st.regs.(a) in
        set_add_sub_flags st av bv (av - bv) true;
        st.clk.Cpu.flags_ready <- t +. 1.0;
        next
    | Insn.Tst (a, Insn.Imm v) ->
      let a = vreg a in
      fun st ->
        let av = rget st a in
        let t = issue_alu st ~ready:(tget st a) in
        set_logic_flags st (av land v);
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Tst (a, Insn.Reg r) ->
      let a = vreg a and r = vreg r in
      fun st ->
        let av = rget st a and bv = rget st r in
        let t = issue_alu st ~ready:(fmax (tget st a) (tget st r)) in
        set_logic_flags st (av land bv);
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Fmov (d, s) ->
      fun st ->
        let t = issue_cls st ~cls:Cpu.C_falu ~ready:st.fr.(s) in
        st.fregs.(d) <- st.fregs.(s);
        st.fr.(d) <- t;
        next
    | Insn.Fmov_imm (d, v) ->
      fun st ->
        let t = issue_cls st ~cls:Cpu.C_falu ~ready:0.0 in
        st.fregs.(d) <- v;
        st.fr.(d) <- t;
        next
    | Insn.Falu { op; dst; a; b } ->
      let cls =
        match op with
        | Insn.Fadd | Insn.Fsub -> Cpu.C_falu
        | Insn.Fmul -> Cpu.C_fmul
        | Insn.Fdiv -> Cpu.C_fdiv
      in
      fun st ->
        let t = issue_cls st ~cls ~ready:(fmax st.fr.(a) st.fr.(b)) in
        let av = st.fregs.(a) and bv = st.fregs.(b) in
        st.fregs.(dst) <-
          (match op with
          | Insn.Fadd -> av +. bv
          | Insn.Fsub -> av -. bv
          | Insn.Fmul -> av *. bv
          | Insn.Fdiv -> av /. bv);
        st.fr.(dst) <- t;
        next
    | Insn.Fcmp (a, b) ->
      fun st ->
        let t =
          issue_cls st ~cls:Cpu.C_falu ~ready:(fmax st.fr.(a) st.fr.(b))
        in
        let av = st.fregs.(a) and bv = st.fregs.(b) in
        if Float.is_nan av || Float.is_nan bv then begin
          st.fz <- false;
          st.fn <- false;
          st.fv <- true;
          st.funord <- true
        end
        else begin
          st.fz <- av = bv;
          st.fn <- av < bv;
          st.fv <- false;
          st.fc <- av >= bv;
          st.funord <- false
        end;
        st.clk.Cpu.flags_ready <- t;
        next
    | Insn.Scvtf (d, s) ->
      fun st ->
        let t = issue_cls st ~cls:Cpu.C_fcvt ~ready:st.rr.(s) in
        st.fregs.(d) <- float_of_int st.regs.(s);
        st.fr.(d) <- t;
        next
    | Insn.Fcvtzs (d, s) ->
      fun st ->
        let t = issue_cls st ~cls:Cpu.C_fcvt ~ready:st.fr.(s) in
        let v = st.fregs.(s) in
        st.regs.(d) <- (if Float.is_nan v then 0 else sext32 (int_of_float v));
        st.rr.(d) <- t;
        next
    | Insn.B l ->
      let tgt = starget l in
      fun st ->
        ignore (issue_branch st ~pc:bpc ~ready:0.0 ~taken:true);
        tgt
    | Insn.Bcond (c, l) ->
      let tgt = starget l in
      let cond = cond_fn c in
      fun st ->
        let taken = cond st in
        ignore
          (issue_branch st ~pc:bpc ~ready:st.clk.Cpu.flags_ready ~taken);
        if taken then tgt else next
    | Insn.Deopt_if (c, dp) ->
      let point = deopts.(dp) in
      let reason = point.Code.reason in
      let cond = cond_fn c in
      fun st ->
        let taken = cond st in
        ignore
          (issue_branch st ~pc:bpc ~ready:st.clk.Cpu.flags_ready ~taken);
        if taken then begin
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          refund st rf;
          st.outcome <-
            Deopt
              {
                deopt_id = dp;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = false;
              };
          -1
        end
        else next
    | Insn.Js_ldr_smi { dst; mem = a; deopt } ->
      (* Fused load + Not-a-SMI check + untagging shift (Fig 12). *)
      let dst = vreg dst in
      let ea = eff a and rdy = aready a in
      let point = deopts.(deopt) in
      let reason = point.Code.reason in
      let rcode = reason_code reason in
      fun st ->
        let ea = ea st in
        let t = issue_load st ~ready:(rdy st) ~addr:ea in
        let t = t +. st.cpu.Cpu.cfg.Cpu.smi_load_extra in
        let w = st.mem.(mem_index st name ea) in
        if w land 1 <> 0 then begin
          (* Check failed: write REG_PC / REG_RE; commit triggers the
             bailout through the handler at REG_BA. *)
          st.regs.(reg_pc) <- bpc;
          st.regs.(reg_re) <- rcode;
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          if st.regs.(reg_ba) = 0 then
            fault "%s: jsldrsmi bailout with REG_BA unset" name;
          refund st rf;
          st.outcome <-
            Deopt
              {
                deopt_id = deopt;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = true;
              };
          -1
        end
        else begin
          rset st dst (w asr 1);
          tset st dst t;
          next
        end
    | Insn.Js_chk_map { mem = a; expected; deopt } ->
      (* Future-work fused map check: load + compare in the load unit;
         branch-free bailout like jsldrsmi. *)
      let ea = eff a and rdy = aready a in
      let point = deopts.(deopt) in
      let reason = point.Code.reason in
      let rcode = reason_code reason in
      fun st ->
        let ea = ea st in
        ignore (issue_load st ~ready:(rdy st) ~addr:ea);
        let w = st.mem.(mem_index st name ea) in
        if w <> expected then begin
          st.regs.(reg_pc) <- bpc;
          st.regs.(reg_re) <- rcode;
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          if st.regs.(reg_ba) = 0 then
            fault "%s: jschkmap bailout with REG_BA unset" name;
          refund st rf;
          st.outcome <-
            Deopt
              {
                deopt_id = deopt;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = true;
              };
          -1
        end
        else next
    | Insn.Call (tgt, argc) ->
      (* All registers are caller-saved; args in r0..r(argc-1).  The
         argument window is copied into a per-activation scratch buffer
         (valid only for the duration of the call) instead of a fresh
         [Array.sub] per call. *)
      let argc =
        if argc < 0 || argc > Insn.num_gp_regs then
          fault "%s: call with %d arguments" name argc
        else argc
      in
      fun st ->
        let ready = ref st.clk.Cpu.flags_ready in
        for i = 0 to argc - 1 do
          if tget st i > !ready then ready := tget st i
        done;
        let t = issue_cls st ~cls:Cpu.C_call ~ready:!ready in
        (* Synchronize dispatch with the call. *)
        if t > st.clk.Cpu.now then st.clk.Cpu.now <- t;
        let args_view = scratch_buf st argc in
        Array.blit st.regs 0 args_view 0 argc;
        let res =
          match tgt with
          | Insn.Builtin b -> st.host.call_builtin b args_view
          | Insn.Js_code f -> st.host.call_js f args_view
        in
        (* A nested run re-targets the PC sampler; restore our
           attribution (the direct engine does this per instruction via
           Cpu.sample, we do it once here and once at run entry). *)
        st.cpu.Cpu.cur_code <- code_id;
        st.regs.(0) <- res;
        let after = fmax st.clk.Cpu.now t in
        st.rr.(0) <- after;
        for i = 1 to Insn.num_gp_regs - 1 do
          if tget st i > after then tset st i after
        done;
        next
    | Insn.Ret ->
      fun st ->
        ignore (issue_branch st ~pc:bpc ~ready:st.rr.(0) ~taken:true);
        st.outcome <- Done st.regs.(0);
        -1
    | Insn.Spill (slot, s) ->
      fun st ->
        ignore (issue_cls st ~cls:Cpu.C_store ~ready:st.rr.(s));
        st.slots.(slot) <- st.regs.(s);
        next
    | Insn.Reload (d, slot) ->
      fun st ->
        let t = issue_cls st ~cls:Cpu.C_load ~ready:0.0 in
        st.regs.(d) <- st.slots.(slot);
        st.rr.(d) <- t +. 2.0 (* L1-hit reload *);
        next
    | Insn.Spill_f (slot, s) ->
      fun st ->
        ignore (issue_cls st ~cls:Cpu.C_store ~ready:st.fr.(s));
        st.fslots.(slot) <- st.fregs.(s);
        next
    | Insn.Reload_f (d, slot) ->
      fun st ->
        let t = issue_cls st ~cls:Cpu.C_load ~ready:0.0 in
        st.fregs.(d) <- st.fslots.(slot);
        st.fr.(d) <- t +. 2.0;
        next
    | Insn.Msr (sp, s) ->
      let idx =
        match sp with
        | Insn.Reg_ba -> reg_ba
        | Insn.Reg_pc -> reg_pc
        | Insn.Reg_re -> reg_re
      in
      let s = vreg s in
      fun st ->
        let t = issue_alu st ~ready:(tget st s) in
        rset st idx (rget st s);
        tset st idx t;
        next
    | Insn.Mrs (d, sp) ->
      let idx =
        match sp with
        | Insn.Reg_ba -> reg_ba
        | Insn.Reg_pc -> reg_pc
        | Insn.Reg_re -> reg_re
      in
      let d = vreg d in
      fun st ->
        let t = issue_alu st ~ready:(tget st idx) in
        rset st d (rget st idx);
        tset st d t;
        next
  in

  (* ---- fused micro-op builders ----
     Each fused closure executes both instructions' semantics and both
     issue paths in exactly the direct interpreter's order; the only
     per-instruction prologue work between the halves is the sampler's
     attribution PC (the intra-pair fetch is statically a no-op, and
     counters are batched).  [pc2]/[bpc2] are the second instruction's
     sampler pc and branch address. *)
  let fused_cmp_branch s u1 =
    let u2 = u1 + 1 in
    let i2 = insn_of_uop.(u2) in
    let next = s + 1 in
    let pc2 = i2 in
    let bpc2 = base + i2 in
    let is_tst, a, rhs =
      match ku u1 with
      | Insn.Cmp (a, rhs) -> (false, a, rhs)
      | Insn.Tst (a, rhs) -> (true, a, rhs)
      | _ -> assert false
    in
    let a = vreg a in
    let b_reg, b_imm =
      match rhs with Insn.Reg r -> (vreg r, 0) | Insn.Imm v -> (-1, v)
    in
    match ku u2 with
    | Insn.Deopt_if (c, dp) ->
      let cond = cond_fn c in
      let point = deopts.(dp) in
      let reason = point.Code.reason in
      let rf = refund_at.(u2) in
      fun st ->
        let av = rget st a in
        let bv = if b_reg >= 0 then rget st b_reg else b_imm in
        let ready =
          if b_reg >= 0 then fmax (tget st a) (tget st b_reg) else tget st a
        in
        let t = issue_alu st ~ready in
        if is_tst then set_logic_flags st (av land bv)
        else set_add_sub_flags st av bv (av - bv) true;
        st.clk.Cpu.flags_ready <- t;
        if st.sampling then st.cpu.Cpu.cur_pc <- pc2;
        let taken = cond st in
        issue_branch st ~pc:bpc2 ~ready:t ~taken;
        if taken then begin
          st.counters.Perf.deopt_events <- st.counters.Perf.deopt_events + 1;
          refund st rf;
          st.outcome <-
            Deopt
              {
                deopt_id = dp;
                reason;
                snapshot = take_snapshot st;
                via_smi_ext = false;
              };
          -1
        end
        else next
    | Insn.Bcond (c, l) ->
      let tgt = starget l in
      let cond = cond_fn c in
      fun st ->
        let av = rget st a in
        let bv = if b_reg >= 0 then rget st b_reg else b_imm in
        let ready =
          if b_reg >= 0 then fmax (tget st a) (tget st b_reg) else tget st a
        in
        let t = issue_alu st ~ready in
        if is_tst then set_logic_flags st (av land bv)
        else set_add_sub_flags st av bv (av - bv) true;
        st.clk.Cpu.flags_ready <- t;
        if st.sampling then st.cpu.Cpu.cur_pc <- pc2;
        let taken = cond st in
        issue_branch st ~pc:bpc2 ~ready:t ~taken;
        if taken then tgt else next
    | _ -> assert false
  in
  let fused_ldr_untag s u1 =
    let u2 = u1 + 1 in
    let next = s + 1 in
    let pc2 = insn_of_uop.(u2) in
    let d, am =
      match ku u1 with Insn.Ldr (d, a) -> (vreg d, a) | _ -> assert false
    in
    let op2, dst2, v2 =
      match ku u2 with
      | Insn.Alu { op; dst; src = _; rhs = Insn.Imm v; set_flags = _ } ->
        (op, vreg dst, v)
      | _ -> assert false
    in
    match am.Insn.index with
    | None ->
      let b = vreg am.Insn.base and off = am.Insn.offset in
      fun st ->
        let ea = rget st b + off in
        let t = issue_load st ~ready:(tget st b) ~addr:ea in
        let w = Array.unsafe_get st.mem (mem_index st name ea) in
        rset st d w;
        tset st d t;
        if st.sampling then st.cpu.Cpu.cur_pc <- pc2;
        let t2 = issue_alu st ~ready:t in
        rset st dst2 (sext32 (alu_raw op2 w v2));
        tset st dst2 t2;
        next
    | Some _ ->
      let ea = eff am and rdy = aready am in
      fun st ->
        let eav = ea st in
        let t = issue_load st ~ready:(rdy st) ~addr:eav in
        let w = Array.unsafe_get st.mem (mem_index st name eav) in
        rset st d w;
        tset st d t;
        if st.sampling then st.cpu.Cpu.cur_pc <- pc2;
        let t2 = issue_alu st ~ready:t in
        rset st dst2 (sext32 (alu_raw op2 w v2));
        tset st dst2 t2;
        next
  in
  let fused_alu_alu s u1 =
    let u2 = u1 + 1 in
    let next = s + 1 in
    let pc2 = insn_of_uop.(u2) in
    let dec u =
      match ku u with
      | Insn.Alu { op; dst; src; rhs; set_flags = _ } ->
        let r, v =
          match rhs with Insn.Reg r -> (vreg r, 0) | Insn.Imm v -> (-1, v)
        in
        (op, vreg dst, vreg src, r, v)
      | _ -> assert false
    in
    let o1, d1, s1, r1, v1 = dec u1 in
    let o2, d2, s2, r2, v2 = dec u2 in
    fun st ->
      let a1 = rget st s1 in
      let b1 = if r1 >= 0 then rget st r1 else v1 in
      let ready1 =
        if r1 >= 0 then fmax (tget st s1) (tget st r1) else tget st s1
      in
      let t1 = issue_alu st ~ready:ready1 in
      rset st d1 (sext32 (alu_raw o1 a1 b1));
      tset st d1 t1;
      if st.sampling then st.cpu.Cpu.cur_pc <- pc2;
      let a2 = rget st s2 in
      let b2 = if r2 >= 0 then rget st r2 else v2 in
      let ready2 =
        if r2 >= 0 then fmax (tget st s2) (tget st r2) else tget st s2
      in
      let t2 = issue_alu st ~ready:ready2 in
      rset st d2 (sext32 (alu_raw o2 a2 b2));
      tset st d2 t2;
      next
  in

  (* Kinds whose body can raise [Machine_fault] partway through (memory
     access after issue).  For slots led by one of these, the fault
     refund covers the suffix INCLUDING the fused partner; otherwise a
     fault can only escape after the whole slot's semantics, so the
     refund is the suffix after the slot. *)
  let fault_capable u =
    match ku u with
    | Insn.Ldr _ | Insn.Str _ | Insn.Ldr_f _ | Insn.Str_f _ | Insn.Alu_mem _
    | Insn.Cmp_mem _ | Insn.Js_ldr_smi _ | Insn.Js_chk_map _ ->
      true
    | _ -> false
  in

  (* One trailing sentinel slot: reachable only by falling through the
     last instruction (or branching to a trailing pseudo), where the
     direct engine faults with the same message.  Its side-array
     entries (-1) skip the whole prologue, so no state is touched
     before the fault fires — same as the direct engine's bounds
     check. *)
  let sentinel (_ : st) : int = fault "%s: fell off code end" name in
  let uops = Array.make (n_slots + 1) sentinel in
  let addrs = Array.make (n_slots + 1) (-1) in
  let pcs = Array.make (n_slots + 1) 0 in
  let blocks = Array.make (n_slots + 1) (-1) in
  let faults = Array.make (n_slots + 1) no_delta in
  let fused_static = Array.make Perf.num_fuse_kinds 0 in
  for s = 0 to n_slots - 1 do
    let u1 = slot_first_uop.(s) in
    let fk = slot_kind.(s) in
    let i1 = insn_of_uop.(u1) in
    pcs.(s) <- i1;
    (* Fetch is dynamic at control-flow block leaders (the predecessor
       is unknown: branch, call return, or a nested activation may
       have moved the fetch line).  Mid-block, the predecessor is
       always the previous micro-op, so a same-line fetch is provably
       the [last_iline] no-op and is elided at decode time. *)
    if leader.(u1) || uline u1 <> uline (u1 - 1) then addrs.(s) <- base + i1;
    if block_start u1 then blocks.(s) <- block_of_uop.(u1);
    let last_u = if fk >= 0 then u1 + 1 else u1 in
    faults.(s) <- refund_at.(if fault_capable u1 then u1 else last_u);
    if fk >= 0 then begin
      fused_static.(fk) <- fused_static.(fk) + 1;
      uops.(s) <-
        (if fk = Perf.f_load_untag then fused_ldr_untag s u1
         else if fk = Perf.f_alu_alu then fused_alu_alu s u1
         else fused_cmp_branch s u1)
    end
    else uops.(s) <- body i1 ~next:(s + 1) ~rf:refund_at.(u1) (ku u1)
  done;
  {
    p_name = name;
    p_code_id = code_id;
    p_uops = uops;
    p_addrs = addrs;
    p_pcs = pcs;
    p_blocks = blocks;
    p_deltas;
    p_faults = faults;
    p_fuse = fuse;
    p_batch = batch;
    p_stats =
      {
        st_uops = n_uops;
        st_slots = n_slots;
        st_blocks = n_blocks;
        st_fused = fused_static;
      };
  }

let get (code : Code.t) =
  let fuse = fuse_enabled () in
  let batch = batch_enabled () in
  match code.Code.decode_cache with
  | Decoded p when p.p_fuse = fuse && p.p_batch = batch -> p
  | _ ->
    let p = compile code in
    code.Code.decode_cache <- Decoded p;
    if !Trace.on then begin
      let st = p.p_stats in
      Trace.instant_wall ~cat:"machine"
        ~arg:
          (Printf.sprintf "uops=%d slots=%d blocks=%d fused=%d fuse=%b batch=%b"
             st.st_uops st.st_slots st.st_blocks
             (Array.fold_left ( + ) 0 st.st_fused)
             fuse batch)
        ("decode:" ^ code.Code.name)
    end;
    p

let warm code = ignore (get code)
let stats p = p.p_stats

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let shared_no_scratch : int array array = [||]

let run (cpu : Cpu.t) ~host ~(code : Code.t) ~args =
  let p = get code in
  let regs = Array.make (Insn.num_gp_regs + 3) 0 in
  let fregs = Array.make Insn.num_fp_regs 0.0 in
  let slots = Array.make (max 1 code.Code.gp_slots) 0 in
  let fslots = Array.make (max 1 code.Code.fp_slots) 0.0 in
  let n_args = min (Array.length args) Insn.num_arg_regs in
  Array.blit args 0 regs 0 n_args;
  let st =
    {
      cpu;
      clk = cpu.Cpu.clk;
      inorder = cpu.Cpu.cfg.Cpu.inorder;
      sampler = cpu.Cpu.sampler;
      sampling = cpu.Cpu.sampler <> None;
      bp = cpu.Cpu.bp;
      counters = cpu.Cpu.counters;
      fstats = cpu.Cpu.fstats;
      binc = (if p.p_batch then 1 else 0);
      regs;
      fregs;
      slots;
      fslots;
      rr = cpu.Cpu.reg_ready;
      fr = cpu.Cpu.freg_ready;
      mem = host.memory;
      host;
      scratch = shared_no_scratch;
      fz = false;
      fn = false;
      fv = false;
      fc = false;
      funord = false;
      outcome = Done 0;
    }
  in
  let uops = p.p_uops in
  let addrs = p.p_addrs in
  let pcs = p.p_pcs in
  let blocks = p.p_blocks and deltas = p.p_deltas and faults = p.p_faults in
  let clk = st.clk in
  cpu.Cpu.cur_code <- p.p_code_id;
  (* Every next-index a micro-op can return is within [0, slots]
     (straight-line successors and decode-resolved branch targets), and
     the last slot holds the fell-off-code-end sentinel, so the loop
     indexes the arrays unchecked.

     Per-slot prologue: at an accounting-block leader, check watchdog
     fuel and take the block's batched counter charge; then the fetch
     (elided at decode time when the line provably cannot have
     changed), the sampler attribution pc, and the indirect call.
     Integer counters (jit_instructions, check accounting, retirement
     counts) are inside the batched charge — the direct engine's
     per-instruction order is recovered because integer adds commute
     and all float work stays per-instruction inside the micro-ops.

     Every loop in the code crosses a block leader (each back-edge
     targets one), so the fuel check still runs at least once per
     iteration; a mid-block exhaustion is detected at the next block
     entry, bounding overshoot by one straight-line block.

     A [Machine_fault] escaping a micro-op has already charged its own
     retirement (issue precedes the memory access, as in the direct
     engine) but not its block suffix: the handler applies the
     faulting slot's precomputed refund, restoring exact counter
     agreement, and re-raises. *)
  let i = ref 0 in
  (try
     match cpu.Cpu.sampler with
     | Some _ ->
       while !i >= 0 do
         let k = !i in
         let b = Array.unsafe_get blocks k in
         if b >= 0 then begin
           if clk.Cpu.now > clk.Cpu.fuel_limit then
             Cpu.watchdog_trip clk ~what:code.Code.name;
           charge st (Array.unsafe_get deltas b)
         end;
         let addr = Array.unsafe_get addrs k in
         if addr >= 0 then Cpu.fetch_line cpu ~addr ~line:(addr lsr 4);
         cpu.Cpu.cur_pc <- Array.unsafe_get pcs k;
         i := (Array.unsafe_get uops k) st
       done
     | None ->
       (* Without a PC sampler the attribution PC is never read
          ([Cpu.finish] only consults it to tick the sampler), so the
          per-slot [cur_pc] update is dead and skipped. *)
       while !i >= 0 do
         let k = !i in
         let b = Array.unsafe_get blocks k in
         if b >= 0 then begin
           if clk.Cpu.now > clk.Cpu.fuel_limit then
             Cpu.watchdog_trip clk ~what:code.Code.name;
           charge st (Array.unsafe_get deltas b)
         end;
         let addr = Array.unsafe_get addrs k in
         if addr >= 0 then Cpu.fetch_line cpu ~addr ~line:(addr lsr 4);
         i := (Array.unsafe_get uops k) st
       done
   with Machine_fault _ as e ->
     refund st (Array.unsafe_get faults !i);
     raise e);
  st.outcome
