(** Hardware event counters and the PC sampler.

    The counters mirror what the paper collects with [perf]: retired
    instructions, branches, mispredictions, cycles, frontend/backend
    stall cycles (Fig 10), plus ground-truth check-instruction counts the
    real hardware could not report.  The sampler implements the paper's
    first estimation method (Section III-A): sample the committed PC at a
    fixed cycle period and attribute samples to instructions. *)

type counters = {
  mutable instructions : int;
  mutable branches : int;
  mutable taken_branches : int;
  mutable mispredicts : int;
  mutable loads : int;
  mutable stores : int;
  mutable frontend_stall : float;
  mutable backend_stall : float;
  mutable check_instructions : int;  (** ground truth, committed *)
  mutable check_branches : int;      (** committed deopt branches *)
  check_per_group : int array;       (** committed check instructions,
                                         indexed by {!Insn.group_index} *)
  mutable deopt_events : int;
  mutable jit_instructions : int;    (** retired inside JIT code *)
  mutable runtime_instructions : int;  (** interpreter/builtin/GC estimate *)
}

val create_counters : unit -> counters
val reset_counters : counters -> unit
val add_counters : counters -> counters -> unit
(** [add_counters acc c] accumulates [c] into [acc]. *)

val note_check : counters -> group_index:int -> branch:bool -> unit
(** Account one committed check instruction to its group; [branch]
    marks it as a deopt branch.  Shared by both executors so their
    counter streams stay bit-identical. *)

(** {1 Special code ids for non-JIT execution} *)

val runtime_code_id : int
val builtin_code_id : int
val gc_code_id : int

(** {1 Fusion / block-batching observability}

    Coverage counters for the pre-decoded engine's superinstruction
    fusion and block-batched accounting.  Kept outside {!counters} on
    purpose: harness results marshal the whole [counters] record and the
    determinism suite digests them, so engine-specific statistics there
    would break the direct-vs-decoded bit-identity contract. *)

val f_check_deopt : int
(** cmp/tst + conditional deopt branch *)

val f_cmp_bcond : int
(** cmp/tst + [b.cond] *)

val f_load_untag : int
(** load + untag shift (software [jsldrsmi]) *)

val f_alu_alu : int
(** ALU + ALU on disjoint registers *)

val num_fuse_kinds : int
val fuse_kind_name : int -> string

type fusion = {
  mutable fused_retired : int;
      (** dynamic instructions retired inside fused micro-ops *)
  fused_by_kind : int array;  (** fused-pair executions per kind *)
  mutable batched_blocks : int;
      (** block-granular accounting charges taken (0 when batching off) *)
}

val create_fusion : unit -> fusion
val reset_fusion : fusion -> unit

type sampler

val create_sampler : period:float -> seed:int -> sampler
val sampler_reset : sampler -> unit

val sampler_tick : sampler -> now:float -> code_id:int -> pc:int -> unit
(** Record a sample for every sampling point passed since the previous
    tick, attributing them to [(code_id, pc)]. *)

val sampler_bulk : sampler -> from:float -> until:float -> code_id:int -> unit
(** Attribute all sampling points in [\[from, until)] to [(code_id, 0)]
    — used for interpreter/builtin/GC regions that are not simulated
    instruction by instruction. *)

val samples_for : sampler -> code_id:int -> size:int -> int array
(** Per-instruction sample counts for a code object (zeros if never
    sampled). *)

val total_samples : sampler -> int
val samples_by_code : sampler -> (int * int) list
(** [(code_id, samples)] pairs, all code ids seen. *)
