(** Set-associative LRU cache model (word-addressed).

    Used for the L1I/L1D/L2 hierarchy of the detailed CPU models and
    for the load-latency component of the fast model. *)

type t

val create :
  name:string -> size_words:int -> assoc:int -> line_words:int ->
  hit_latency:int -> t

val access : t -> int -> bool
(** [access t addr] returns [true] on hit and updates LRU/fill state. *)

val hit_latency : t -> int
val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit

type hierarchy = {
  l1d : t;
  l1i : t;
  l2 : t;
  mem_latency : int;
}

val default_hierarchy : unit -> hierarchy
val small_hierarchy : unit -> hierarchy
(** Smaller caches for the little in-order cores. *)

val data_latency : hierarchy -> int -> int
(** Latency in cycles of a data access at the given word address. *)

val inst_latency : hierarchy -> int -> int
(** Latency of an instruction fetch at the given word address. *)
