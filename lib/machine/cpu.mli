(** CPU timing models (the gem5-equivalent substrate).

    An interval-style model: instructions dispatch at a bounded width,
    start when their operands are ready (out-of-order cores may run
    ahead of the dispatch pointer up to a ROB-slack window; in-order
    cores stall), and complete after a class latency — loads consult the
    cache hierarchy, branches the gshare predictor.  This reproduces the
    effects the paper leans on: rarely-taken predicted branches are
    nearly free, condition computations serialize with their consumers,
    RISC vs CISC instruction-count differences translate into frontend
    pressure, and the fused [jsldrsmi] removes ALU latency from the
    critical path (its untagging shift happens inside the load unit,
    Fig 12). *)

type insn_class =
  | C_alu
  | C_mul
  | C_div
  | C_load
  | C_store
  | C_branch
  | C_falu
  | C_fmul
  | C_fdiv
  | C_fcvt
  | C_call
  | C_nop

type config = {
  cfg_name : string;
  inorder : bool;
  width : int;                (** dispatch width, instructions / cycle *)
  rob_slack : float;          (** O3 lookahead window, cycles *)
  mispredict_penalty : float;
  taken_bubble : float;       (** fetch-redirect bubble of a taken branch *)
  lat_alu : float;
  lat_mul : float;
  lat_div : float;
  lat_falu : float;
  lat_fmul : float;
  lat_fdiv : float;
  lat_fcvt : float;
  lat_call : float;
  smi_load_extra : float;     (** extra latency of [jsldrsmi] over [ldr] *)
  small_caches : bool;
}

(** {1 Named configurations} *)

val fast_x64 : config
(** "Real hardware" tier for the characterization experiments: a
    Xeon-class wide O3 core. *)

val fast_arm64 : config
(** Kunpeng-920-class O3 core, ARM64 latencies (FP add 2x int add, as
    the paper notes for Cortex-A76-class cores). *)

val inorder_a55 : config
val inorder_hpd : config
val o3_exynos_big : config
val o3_kpg : config

val gem5_cpus : config list
(** The four cores used by the ISA-extension experiments (Fig 13/14). *)

val fast_for : Arch.t -> config

(** {1 Timing state} *)

(** Hot timing scalars, kept in an all-float record so they are stored
    flat: mutating [now]/[high]/[flags_ready] is a plain double store
    with no boxing — these fields are written for every simulated
    instruction.  The trailing fields are copies of the hot [config]
    floats, readable with a single load in the issue paths. *)
type clock = {
  mutable now : float;          (** dispatch pointer, cycles *)
  mutable high : float;         (** max completion time = elapsed cycles *)
  mutable flags_ready : float;
  mutable fuel_limit : float;
      (** watchdog ceiling on [now]; the executors raise
          [Support.Fault.Fault (Runaway _)] when exceeded.  [infinity]
          (the default) disarms the watchdog. *)
  inv_width : float;
  rob_slack : float;
  mispredict_penalty : float;
  taken_bubble : float;
  clk_lat_alu : float;
}

type t = {
  cfg : config;
  hier : Cache.hierarchy;
  bp : Predictor.t;
  clk : clock;
  reg_ready : float array;      (** GP regs + specials *)
  freg_ready : float array;
  mutable last_iline : int;
  counters : Perf.counters;
  fstats : Perf.fusion;
      (** fusion/batching coverage of the pre-decoded engine; stays
          all-zero under the direct interpreter.  Not part of digested
          results (see {!Perf.fusion}). *)
  sampler : Perf.sampler option;
  mutable cur_code : int;   (** attribution target for the PC sampler *)
  mutable cur_pc : int;
}

val create : ?sampler:Perf.sampler -> config -> t
val reset : t -> unit
(** Clears timing state and counters but keeps cache/predictor warmth. *)

val cycles : t -> float

val arm_watchdog : t -> cycles:float -> unit
(** Set the watchdog fuel ceiling to [cycles] simulated cycles from the
    current dispatch point.  Both execution engines check it once per
    retired instruction and raise [Support.Fault.Fault (Runaway _)]
    when it is exceeded, so a non-terminating code object cannot hang
    its domain.  Arming is cheap; re-arm per benchmark call. *)

val disarm_watchdog : t -> unit

val watchdog_trip : clock -> what:string -> 'a
(** Shared watchdog-expiry path for both execution engines: emits a
    ["watchdog:fire"] trace instant (when tracing is on) and raises
    [Support.Fault.Fault (Runaway _)].  Never returns. *)

val latency : config -> insn_class -> float
(** Static class latency used by {!issue}.  Exposed so the pre-decoded
    executor's local (non-counting) issue paths can reproduce {!issue}'s
    float arithmetic exactly while batching the integer retirement
    counters per basic block. *)

(** {1 Per-instruction hooks (called by the executor)} *)

val fetch : t -> addr:int -> unit
(** Instruction-cache charge when the fetch line changes. *)

val fetch_line : t -> addr:int -> line:int -> unit
(** [fetch] with the fetch line ([addr lsr 4]) precomputed by the
    caller; behavior is identical. *)

val issue : t -> cls:insn_class -> ready:float -> float
(** Dispatch + execute one instruction whose operands are ready at
    [ready]; returns its completion time.  Counts it as retired. *)

val dispatch : t -> ready:float -> float
(** The dispatch/start half of {!issue}: advance the dispatch pointer,
    charge backend stalls, count the instruction as retired; returns the
    execution start time.  Exposed (inlined) so the pre-decoded executor
    can fuse it with a latency resolved at decode time. *)

val finish : t -> float -> float
(** The completion half of {!issue}: in-order retirement bookkeeping and
    PC-sampler ticks; returns its argument. *)

val issue_load : t -> ready:float -> addr:int -> float
val issue_store : t -> ready:float -> addr:int -> float

val issue_branch : t -> pc:int -> ready:float -> taken:bool -> float
(** Returns completion; applies misprediction or taken-branch frontend
    penalties. *)

val charge : t -> cycles:float -> instructions:int -> code_id:int -> unit
(** Bulk cost of non-JIT execution (interpreter, builtins, GC): advances
    time, counts instructions, and lets the sampler attribute the region
    to [code_id]. *)

val sample : t -> code_id:int -> pc:int -> unit
(** Set the sampler's attribution target for the next issue (the
    sampler ticks at issue-start time inside {!issue}). *)
