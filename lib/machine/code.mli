(** Executable code objects produced by the JIT backends.

    A code object is an assembled instruction array with resolved branch
    labels, a deoptimization-point table describing how to rebuild the
    interpreter frame at each check (paper: TurboFan checkpoints), and a
    pseudo base address used by the instruction cache and the PC
    sampler. *)

(** Where an interpreter-visible value lives in machine state when a
    deopt point is reached. *)
type frame_value =
  | Fv_reg of int        (** tagged word in a GP register *)
  | Fv_reg32 of int      (** untagged SMI payload in a GP register *)
  | Fv_freg of int       (** unboxed double in an FP register *)
  | Fv_slot of int       (** tagged word in a spill slot *)
  | Fv_slot32 of int     (** untagged SMI payload in a spill slot *)
  | Fv_fslot of int      (** unboxed double in an FP spill slot *)
  | Fv_const of int      (** known tagged constant *)
  | Fv_fconst of float   (** known double constant (boxed on rebuild) *)
  | Fv_dead              (** value not live at this point *)

type deopt_point = {
  dp_id : int;
  reason : Insn.deopt_reason;
  bc_pc : int;                 (** bytecode offset to resume at *)
  frame : frame_value array;   (** interpreter register file image *)
  accumulator : frame_value;
}

type cache = ..
(** Extension point for per-code-object caches ({!Decode} adds its
    pre-decoded program as a constructor).  A recompile allocates a
    fresh [t], so cached artifacts can never outlive their code. *)

type cache += Not_decoded

type t = {
  code_id : int;
  name : string;
  arch : Arch.t;
  insns : Insn.t array;
  label_index : int array;     (** label id -> instruction index *)
  deopts : deopt_point array;
  gp_slots : int;              (** spill frame size, tagged words *)
  fp_slots : int;
  base_addr : int;             (** pseudo code address, word units *)
  mutable decode_cache : cache;
}

val assemble :
  code_id:int -> name:string -> arch:Arch.t -> deopts:deopt_point array ->
  gp_slots:int -> fp_slots:int -> base_addr:int -> Insn.t list -> t
(** Resolves [Label] pseudo-instructions into the [label_index] table.
    Raises [Invalid_argument] on branches to unknown labels. *)

val real_instructions : t -> int
(** Number of non-pseudo instructions (what a CPU would retire). *)

val static_check_instructions : t -> int
(** Non-pseudo instructions whose provenance is [Check _]. *)

val listing : ?samples:int array -> t -> string
(** Annotated assembly listing; with [samples], prefixes each line with
    its PC-sample count (paper Fig 3). *)
