type deopt_reason =
  | Not_a_smi
  | Smi
  | Out_of_bounds
  | Wrong_map
  | Overflow
  | Lost_precision
  | Division_by_zero
  | Minus_zero
  | Not_a_number
  | Wrong_value
  | Hole
  | Insufficient_feedback

type check_group = G_type | G_smi | G_not_smi | G_boundary | G_arith | G_other

type deopt_category = Deopt_eager | Deopt_lazy | Deopt_soft

let group_of_reason = function
  | Not_a_smi -> G_not_smi
  | Smi -> G_smi
  | Out_of_bounds -> G_boundary
  | Wrong_map | Not_a_number -> G_type
  | Overflow | Lost_precision | Division_by_zero | Minus_zero -> G_arith
  | Wrong_value | Hole | Insufficient_feedback -> G_other

let category_of_reason = function
  | Insufficient_feedback -> Deopt_soft
  | Not_a_smi | Smi | Out_of_bounds | Wrong_map | Overflow | Lost_precision
  | Division_by_zero | Minus_zero | Not_a_number | Wrong_value | Hole ->
    Deopt_eager

let reason_name = function
  | Not_a_smi -> "not-a-smi"
  | Smi -> "smi"
  | Out_of_bounds -> "out-of-bounds"
  | Wrong_map -> "wrong-map"
  | Overflow -> "overflow"
  | Lost_precision -> "lost-precision"
  | Division_by_zero -> "division-by-zero"
  | Minus_zero -> "minus-zero"
  | Not_a_number -> "not-a-number"
  | Wrong_value -> "wrong-value"
  | Hole -> "hole"
  | Insufficient_feedback -> "insufficient-feedback"

let group_name = function
  | G_type -> "Type"
  | G_smi -> "SMI"
  | G_not_smi -> "Not-a-SMI"
  | G_boundary -> "Boundary"
  | G_arith -> "Arithmetic"
  | G_other -> "Other"

let all_groups = [ G_type; G_smi; G_not_smi; G_boundary; G_arith; G_other ]

let group_index = function
  | G_type -> 0
  | G_smi -> 1
  | G_not_smi -> 2
  | G_boundary -> 3
  | G_arith -> 4
  | G_other -> 5

type check_role = Role_condition | Role_branch

type provenance =
  | Main_line
  | Check of { group : check_group; role : check_role }
  | Shared

type reg = int
type freg = int

let num_gp_regs = 18
let num_fp_regs = 12
let num_arg_regs = 8

type operand = Reg of reg | Imm of int

type addr = {
  base : reg;
  index : reg option;
  scale : int;
  offset : int;
  unscaled : bool;
}

let mk_addr ?index ?(scale = 1) ?(offset = 0) ?(unscaled = false) base =
  { base; index; scale; offset; unscaled }

type alu_op = Add | Sub | Mul | Sdiv | Smod | And | Orr | Eor | Lsl | Lsr | Asr

type cond = Eq | Ne | Lt | Le | Gt | Ge | Vs | Vc | Hs | Lo

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Vs -> Vc
  | Vc -> Vs
  | Hs -> Lo
  | Lo -> Hs

type falu_op = Fadd | Fsub | Fmul | Fdiv

type call_target = Builtin of int | Js_code of int

type special_reg = Reg_ba | Reg_pc | Reg_re

type kind =
  | Mov of reg * operand
  | Ldr of reg * addr
  | Str of addr * reg
  | Ldr_f of freg * addr
  | Str_f of addr * freg
  | Alu of { op : alu_op; dst : reg; src : reg; rhs : operand; set_flags : bool }
  | Alu_mem of { op : alu_op; dst : reg; src : reg; mem : addr }
  | Cmp of reg * operand
  | Cmp_mem of reg * addr
  | Tst of reg * operand
  | Fmov of freg * freg
  | Fmov_imm of freg * float
  | Falu of { op : falu_op; dst : freg; a : freg; b : freg }
  | Fcmp of freg * freg
  | Scvtf of freg * reg
  | Fcvtzs of reg * freg
  | B of int
  | Bcond of cond * int
  | Deopt_if of cond * int
  | Checkpoint of int
  | Call of call_target * int
  | Ret
  | Spill of int * reg
  | Reload of reg * int
  | Spill_f of int * freg
  | Reload_f of freg * int
  | Js_ldr_smi of { dst : reg; mem : addr; deopt : int }
  | Js_chk_map of { mem : addr; expected : int; deopt : int }
  | Msr of special_reg * reg
  | Mrs of reg * special_reg
  | Label of int
  | Nop

type t = { kind : kind; prov : provenance; comment : string }

let make ?(prov = Main_line) ?(comment = "") kind = { kind; prov; comment }

let is_pseudo = function
  | Label _ | Checkpoint _ -> true
  | _ -> false

let addr_reads a =
  match a.index with None -> [ a.base ] | Some i -> [ a.base; i ]

let operand_reads = function Reg r -> [ r ] | Imm _ -> []

let reads = function
  | Mov (_, rhs) -> operand_reads rhs
  | Ldr (_, a) | Ldr_f (_, a) -> addr_reads a
  | Str (a, r) -> r :: addr_reads a
  | Str_f (a, _) -> addr_reads a
  | Alu { src; rhs; _ } -> src :: operand_reads rhs
  | Alu_mem { src; mem; _ } -> src :: addr_reads mem
  | Cmp (r, rhs) -> r :: operand_reads rhs
  | Cmp_mem (r, a) -> r :: addr_reads a
  | Tst (r, rhs) -> r :: operand_reads rhs
  | Scvtf (_, r) -> [ r ]
  | Spill (_, r) -> [ r ]
  | Msr (_, r) -> [ r ]
  | Js_ldr_smi { mem; _ } -> addr_reads mem
  | Js_chk_map { mem; _ } -> addr_reads mem
  | Fmov _ | Fmov_imm _ | Falu _ | Fcmp _ | Fcvtzs _ | B _ | Bcond _
  | Deopt_if _ | Checkpoint _ | Call _ | Ret | Reload _ | Spill_f _
  | Reload_f _ | Mrs _ | Label _ | Nop ->
    []

let writes = function
  | Mov (d, _) | Ldr (d, _) | Reload (d, _) | Fcvtzs (d, _) | Mrs (d, _) -> [ d ]
  | Alu { dst; _ } | Alu_mem { dst; _ } -> [ dst ]
  | Js_ldr_smi { dst; _ } -> [ dst ]
  | Call _ -> [ 0 ] (* result in r0 *)
  | Str _ | Str_f _ | Ldr_f _ | Cmp _ | Cmp_mem _ | Tst _ | Fmov _ | Fmov_imm _
  | Falu _ | Fcmp _ | Scvtf _ | B _ | Bcond _ | Deopt_if _ | Checkpoint _
  | Ret | Spill _ | Spill_f _ | Reload_f _ | Msr _ | Label _ | Nop
  | Js_chk_map _ ->
    []

let freads = function
  | Str_f (_, f) | Fmov (_, f) | Fcvtzs (_, f) -> [ f ]
  | Falu { a; b; _ } -> [ a; b ]
  | Fcmp (a, b) -> [ a; b ]
  | Spill_f (_, f) -> [ f ]
  | Mov _ | Ldr _ | Str _ | Ldr_f _ | Alu _ | Alu_mem _ | Cmp _ | Cmp_mem _
  | Tst _ | Fmov_imm _ | Scvtf _ | B _ | Bcond _ | Deopt_if _ | Checkpoint _
  | Call _ | Ret | Spill _ | Reload _ | Reload_f _ | Js_ldr_smi _
  | Js_chk_map _ | Msr _ | Mrs _ | Label _ | Nop ->
    []

let fwrites = function
  | Ldr_f (f, _) | Fmov (f, _) | Fmov_imm (f, _) | Scvtf (f, _) | Reload_f (f, _)
    ->
    [ f ]
  | Falu { dst; _ } -> [ dst ]
  | Mov _ | Ldr _ | Str _ | Str_f _ | Alu _ | Alu_mem _ | Cmp _ | Cmp_mem _
  | Tst _ | Fcmp _ | Fcvtzs _ | B _ | Bcond _ | Deopt_if _ | Checkpoint _
  | Call _ | Ret | Spill _ | Reload _ | Spill_f _ | Js_ldr_smi _
  | Js_chk_map _ | Msr _ | Mrs _ | Label _ | Nop ->
    []

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let reg_str arch r =
  match arch with
  | Arch.X64 -> Printf.sprintf "r%d" r
  | Arch.Arm64 | Arch.Arm64_smi_ext -> Printf.sprintf "w%d" r

let freg_str arch f =
  match arch with
  | Arch.X64 -> Printf.sprintf "xmm%d" f
  | Arch.Arm64 | Arch.Arm64_smi_ext -> Printf.sprintf "d%d" f

let operand_str arch = function
  | Reg r -> reg_str arch r
  | Imm i -> Printf.sprintf "#%d" i

let addr_str arch a =
  let base = reg_str arch a.base in
  let idx =
    match a.index with
    | None -> ""
    | Some i ->
      if a.scale = 1 then Printf.sprintf ", %s" (reg_str arch i)
      else Printf.sprintf ", %s lsl #%d" (reg_str arch i) (a.scale / 2)
  in
  let off = if a.offset = 0 then "" else Printf.sprintf ", #%d" a.offset in
  Printf.sprintf "[%s%s%s]" base idx off

let cond_str = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Vs -> "vs"
  | Vc -> "vc"
  | Hs -> "hs"
  | Lo -> "lo"

let alu_str = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Smod -> "smod"
  | And -> "and"
  | Orr -> "orr"
  | Eor -> "eor"
  | Lsl -> "lsl"
  | Lsr -> "lsr"
  | Asr -> "asr"

let falu_str = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let special_str = function
  | Reg_ba -> "REG_BA"
  | Reg_pc -> "REG_PC"
  | Reg_re -> "REG_RE"

let kind_to_string arch k =
  let r = reg_str arch and f = freg_str arch in
  let op = operand_str arch and mem = addr_str arch in
  match k with
  | Mov (d, rhs) -> Printf.sprintf "mov %s, %s" (r d) (op rhs)
  | Ldr (d, a) -> Printf.sprintf "ldr %s, %s" (r d) (mem a)
  | Str (a, s) -> Printf.sprintf "str %s, %s" (r s) (mem a)
  | Ldr_f (d, a) -> Printf.sprintf "ldr %s, %s" (f d) (mem a)
  | Str_f (a, s) -> Printf.sprintf "str %s, %s" (f s) (mem a)
  | Alu { op = o; dst; src; rhs; set_flags } ->
    Printf.sprintf "%s%s %s, %s, %s" (alu_str o)
      (if set_flags then "s" else "")
      (r dst) (r src) (op rhs)
  | Alu_mem { op = o; dst; src; mem = m } ->
    Printf.sprintf "%s %s, %s, %s" (alu_str o) (r dst) (r src) (mem m)
  | Cmp (a, rhs) -> Printf.sprintf "cmp %s, %s" (r a) (op rhs)
  | Cmp_mem (a, m) -> Printf.sprintf "cmp %s, %s" (r a) (mem m)
  | Tst (a, rhs) -> Printf.sprintf "tst %s, %s" (r a) (op rhs)
  | Fmov (d, s) -> Printf.sprintf "fmov %s, %s" (f d) (f s)
  | Fmov_imm (d, v) -> Printf.sprintf "fmov %s, #%g" (f d) v
  | Falu { op = o; dst; a; b } ->
    Printf.sprintf "%s %s, %s, %s" (falu_str o) (f dst) (f a) (f b)
  | Fcmp (a, b) -> Printf.sprintf "fcmp %s, %s" (f a) (f b)
  | Scvtf (d, s) -> Printf.sprintf "scvtf %s, %s" (f d) (r s)
  | Fcvtzs (d, s) -> Printf.sprintf "fcvtzs %s, %s" (r d) (f s)
  | B l -> Printf.sprintf "b L%d" l
  | Bcond (c, l) -> Printf.sprintf "b.%s L%d" (cond_str c) l
  | Deopt_if (c, d) -> Printf.sprintf "b.%s deopt_%d" (cond_str c) d
  | Checkpoint d -> Printf.sprintf ";; checkpoint %d" d
  | Call (Builtin b, argc) -> Printf.sprintf "bl builtin_%d (argc=%d)" b argc
  | Call (Js_code fid, argc) -> Printf.sprintf "bl js_fn_%d (argc=%d)" fid argc
  | Ret -> "ret"
  | Spill (slot, s) -> Printf.sprintf "str %s, [sp, #%d]" (r s) slot
  | Reload (d, slot) -> Printf.sprintf "ldr %s, [sp, #%d]" (r d) slot
  | Spill_f (slot, s) -> Printf.sprintf "str %s, [sp, #%d]" (f s) slot
  | Reload_f (d, slot) -> Printf.sprintf "ldr %s, [sp, #%d]" (f d) slot
  | Js_ldr_smi { dst; mem = m; deopt } ->
    Printf.sprintf "%s %s, %s       ; deopt_%d"
      (if m.unscaled then "jsldursmi" else "jsldrsmi")
      (r dst) (mem m) deopt
  | Js_chk_map { mem = m; expected; deopt } ->
    Printf.sprintf "jschkmap %s, #%d   ; deopt_%d" (mem m) expected deopt
  | Msr (s, src) -> Printf.sprintf "msr %s, %s" (special_str s) (r src)
  | Mrs (d, s) -> Printf.sprintf "mrs %s, %s" (r d) (special_str s)
  | Label l -> Printf.sprintf "L%d:" l
  | Nop -> "nop"

let to_string arch t =
  let body = kind_to_string arch t.kind in
  let prov =
    match t.prov with
    | Main_line -> ""
    | Shared -> "  ; <shared>"
    | Check { group; role } ->
      Printf.sprintf "  ; <check:%s:%s>" (group_name group)
        (match role with Role_condition -> "cond" | Role_branch -> "branch")
  in
  let comment = if t.comment = "" then "" else "  ; " ^ t.comment in
  body ^ prov ^ comment
