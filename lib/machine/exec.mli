(** Functional + timed execution of JIT code objects.

    The executor interprets a {!Code.t} over the host's tagged-word
    memory while driving a {!Cpu.t} timing model instruction by
    instruction.  Machine addresses are in half-word units so that a
    tagged pointer (2*index+1) can be used directly as a base register
    with the tag absorbed into the displacement, exactly like V8's
    compressed-pointer addressing; the executor converts to word indexes
    internally.

    Calls leave the machine world through the host callbacks: builtins
    and JS-to-JS calls are dispatched by the embedding engine, which may
    recursively run compiled code or fall back to its interpreter.  All
    registers are caller-saved; arguments arrive in r0..r5 and the
    result returns in r0.

    Two interchangeable engines implement these semantics:

    - the {b pre-decoded threaded-code engine} ({!Decode}, the
      default): each code object is compiled once into a flat array of
      micro-op closures driven by an accumulator-style dispatch loop;
    - the {b direct interpreter} ({!run_direct}): matches on
      [Insn.kind] per retired instruction; kept as the executable
      specification.

    The two are bit-identical — same outcomes, memory, cycle counts and
    counters — which the exec-determinism test suite enforces by digest
    comparison.  Select with the [VSPEC_EXEC] environment variable
    ([decoded], the default, or [direct]) or programmatically with
    {!set_engine}. *)

type host = Decode.host = {
  memory : int array;
  call_builtin : int -> int array -> int;
      (** [call_builtin id args] with [args] = r0..r(argc-1); must
          charge its own cost on the shared CPU; returns the tagged
          result.  The [args] array is only valid for the duration of
          the call — both engines reuse a scratch buffer across
          calls. *)
  call_js : int -> int array -> int;
      (** [call_js function_id args]; same contract. *)
}

type snapshot = Decode.snapshot = {
  s_regs : int array;
  s_fregs : float array;
  s_slots : int array;
  s_fslots : float array;
}

type outcome = Decode.outcome =
  | Done of int                    (** tagged return value (r0) *)
  | Deopt of {
      deopt_id : int;
      reason : Insn.deopt_reason;
      snapshot : snapshot;
      via_smi_ext : bool;          (** bailout through REG_BA/REG_RE *)
    }

exception Machine_fault of string
(** Unaligned access, out-of-range address, or executing past the end of
    the code object — always a JIT bug, never a user-program error.
    Alias of {!Decode.Machine_fault}: both engines raise the same
    exception with the same messages. *)

val run : Cpu.t -> host:host -> code:Code.t -> args:int array -> outcome
(** Execute with the currently selected engine (see {!current_engine}). *)

val run_direct : Cpu.t -> host:host -> code:Code.t -> args:int array -> outcome
(** The direct interpreter, always available regardless of the selected
    engine — reference semantics for differential testing and
    benchmarking. *)

(** {1 Engine selection} *)

type engine_kind = Direct | Decoded

val current_engine : unit -> engine_kind
(** The engine {!run} dispatches to: the {!set_engine} override if any,
    else [VSPEC_EXEC] ([decoded] when unset). *)

val set_engine : engine_kind option -> unit
(** Override (or, with [None], un-override) the environment selection —
    used by tests and benchmarks to compare engines in-process. *)

val warm : Code.t -> unit
(** Pre-decode a code object if the decoded engine is active (no-op
    otherwise); called by the engine at JIT-compile time so first
    execution does not pay the decode. *)

val frame_value :
  snapshot -> materialize_double:(float -> int) -> Code.frame_value -> int
(** Resolve a deopt-point frame value against a snapshot; unboxed
    doubles are re-boxed through [materialize_double]. *)
