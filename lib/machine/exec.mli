(** Functional + timed execution of JIT code objects.

    The executor interprets a {!Code.t} over the host's tagged-word
    memory while driving a {!Cpu.t} timing model instruction by
    instruction.  Machine addresses are in half-word units so that a
    tagged pointer (2*index+1) can be used directly as a base register
    with the tag absorbed into the displacement, exactly like V8's
    compressed-pointer addressing; the executor converts to word indexes
    internally.

    Calls leave the machine world through the host callbacks: builtins
    and JS-to-JS calls are dispatched by the embedding engine, which may
    recursively run compiled code or fall back to its interpreter.  All
    registers are caller-saved; arguments arrive in r0..r5 and the
    result returns in r0. *)

type host = {
  memory : int array;
  call_builtin : int -> int array -> int;
      (** [call_builtin id args] with [args] = r0..r5; must charge its
          own cost on the shared CPU; returns the tagged result. *)
  call_js : int -> int array -> int;
      (** [call_js function_id args]; same contract. *)
}

type snapshot = {
  s_regs : int array;
  s_fregs : float array;
  s_slots : int array;
  s_fslots : float array;
}

type outcome =
  | Done of int                    (** tagged return value (r0) *)
  | Deopt of {
      deopt_id : int;
      reason : Insn.deopt_reason;
      snapshot : snapshot;
      via_smi_ext : bool;          (** bailout through REG_BA/REG_RE *)
    }

exception Machine_fault of string
(** Unaligned access, out-of-range address, or executing past the end of
    the code object — always a JIT bug, never a user-program error. *)

val run : Cpu.t -> host:host -> code:Code.t -> args:int array -> outcome

val frame_value :
  snapshot -> materialize_double:(float -> int) -> Code.frame_value -> int
(** Resolve a deopt-point frame value against a snapshot; unboxed
    doubles are re-boxed through [materialize_double]. *)
