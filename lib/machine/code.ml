type frame_value =
  | Fv_reg of int
  | Fv_reg32 of int
  | Fv_freg of int
  | Fv_slot of int
  | Fv_slot32 of int
  | Fv_fslot of int
  | Fv_const of int
  | Fv_fconst of float
  | Fv_dead

type deopt_point = {
  dp_id : int;
  reason : Insn.deopt_reason;
  bc_pc : int;
  frame : frame_value array;
  accumulator : frame_value;
}

(* Extension point for per-code-object caches.  The decoder hangs its
   pre-decoded micro-op program here ([Decode.Decoded]); keying the
   cache on the code object itself means a recompile (which always
   allocates a fresh [t]) can never see a stale program. *)
type cache = ..
type cache += Not_decoded

type t = {
  code_id : int;
  name : string;
  arch : Arch.t;
  insns : Insn.t array;
  label_index : int array;
  deopts : deopt_point array;
  gp_slots : int;
  fp_slots : int;
  base_addr : int;
  mutable decode_cache : cache;
}

let assemble ~code_id ~name ~arch ~deopts ~gp_slots ~fp_slots ~base_addr insns =
  let insns = Array.of_list insns in
  let max_label =
    Array.fold_left
      (fun acc i ->
        match i.Insn.kind with
        | Insn.Label l | Insn.B l | Insn.Bcond (_, l) -> max acc l
        | _ -> acc)
      (-1) insns
  in
  let label_index = Array.make (max_label + 1) (-1) in
  Array.iteri
    (fun idx i ->
      match i.Insn.kind with
      | Insn.Label l -> label_index.(l) <- idx
      | _ -> ())
    insns;
  Array.iter
    (fun i ->
      match i.Insn.kind with
      | Insn.B l | Insn.Bcond (_, l) ->
        if l > max_label || label_index.(l) < 0 then
          invalid_arg (Printf.sprintf "Code.assemble(%s): unknown label L%d" name l)
      | _ -> ())
    insns;
  { code_id; name; arch; insns; label_index; deopts; gp_slots; fp_slots;
    base_addr; decode_cache = Not_decoded }

let real_instructions t =
  Array.fold_left
    (fun acc i -> if Insn.is_pseudo i.Insn.kind then acc else acc + 1)
    0 t.insns

let static_check_instructions t =
  Array.fold_left
    (fun acc i ->
      match (Insn.is_pseudo i.Insn.kind, i.Insn.prov) with
      | false, Insn.Check _ -> acc + 1
      | _ -> acc)
    0 t.insns

let listing ?samples t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf ";; code %s (%s), %d instructions, %d deopt points\n" t.name
       (Arch.name t.arch) (real_instructions t)
       (Array.length t.deopts));
  Array.iteri
    (fun idx i ->
      let prefix =
        match samples with
        | None -> Printf.sprintf "%4d: " idx
        | Some s ->
          let n = if idx < Array.length s then s.(idx) else 0 in
          Printf.sprintf "%6d | %4d: " n idx
      in
      let indent = match i.Insn.kind with Insn.Label _ -> "" | _ -> "  " in
      Buffer.add_string buf (prefix ^ indent ^ Insn.to_string t.arch i ^ "\n"))
    t.insns;
  Buffer.contents buf
