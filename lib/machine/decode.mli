(** Pre-decoded threaded-code execution engine.

    [compile] lowers a {!Code.t} once into a flat array of micro-op
    closures with every operand pre-resolved at decode time: register
    indexes, effective-address components, immediate values, latency
    class, fetch address and instruction-cache line, check provenance
    (group index and deopt-branch flag), deopt-point metadata, and
    branch targets remapped onto the pseudo-free micro-op array.  The
    dispatch loop in {!run} then retires one instruction per indirect
    call — an accumulator-threaded loop in which each micro-op returns
    the index of its successor — instead of re-matching on
    [Insn.kind] every iteration as [Exec.run_direct] does.

    {b Bit-identity contract.}  For any code object, CPU model and
    host, [run] produces exactly the same {!outcome}, memory contents,
    timing state and {!Perf.counters} as the direct interpreter: both
    engines perform the same [Cpu] calls in the same order with the
    same arguments, so cycle counts, sampler attributions, cache and
    predictor state are reproduced bit for bit.  The determinism test
    suite asserts digest equality of whole experiment results between
    the two engines.

    Compiled programs are cached on the code object itself
    ({!Code.decode_cache}).  Recompilation builds a fresh [Code.t], so
    stale programs are unreachable by construction; a code object is
    owned by one engine (hence one domain), so the cache needs no
    locking. *)

(** {1 Execution-model types}

    These are the canonical definitions; {!Exec} re-exports them under
    the historical names so existing call sites compile unchanged. *)

type host = {
  memory : int array;
  call_builtin : int -> int array -> int;
      (** [call_builtin id args] with [args] = r0..r(argc-1); must
          charge its own cost on the shared CPU; returns the tagged
          result.  The [args] array is only valid for the duration of
          the call — the executor reuses the buffer. *)
  call_js : int -> int array -> int;  (** [call_js function_id args];
          same contract. *)
}

type snapshot = {
  s_regs : int array;
  s_fregs : float array;
  s_slots : int array;
  s_fslots : float array;
}

type outcome =
  | Done of int  (** tagged return value (r0) *)
  | Deopt of {
      deopt_id : int;
      reason : Insn.deopt_reason;
      snapshot : snapshot;
      via_smi_ext : bool;  (** bailout through REG_BA/REG_RE *)
    }

exception Machine_fault of string
(** Unaligned access, out-of-range address, or executing past the end
    of the code object — always a JIT bug, never a user-program
    error. *)

val fault : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Machine_fault} with a formatted message. *)

(** {1 Shared helpers} *)

val reg_ba : int
val reg_pc : int
val reg_re : int
(** Special register indexes inside the GP register file. *)

val sext32 : int -> int
val reason_code : Insn.deopt_reason -> int

(** {1 Decoding} *)

type program
(** A compiled code object: the flat dispatch-slot array (singleton or
    fused micro-ops) plus per-block batched counter deltas. *)

type Code.cache += Decoded of program

val compile : Code.t -> program
(** Decode unconditionally (does not consult or fill the cache), under
    the currently effective fuse/batch flags. *)

val get : Code.t -> program
(** Cached decode: compile on first use, then reuse via
    [Code.decode_cache].  A cached program compiled under different
    fuse/batch flags than the currently effective ones is discarded
    and recompiled, so toggling the escape hatches mid-process cannot
    serve a stale program shape. *)

val warm : Code.t -> unit
(** Populate the decode cache eagerly (used at JIT-compile time so the
    first execution does not pay the decode). *)

(** {1 Fusion and block batching}

    The fusion pass peepholes hot adjacent micro-op pairs into single
    fused closures (compare + conditional deopt branch, compare +
    [b.cond], load + untag shift — the software [jsldrsmi] analogue —
    and ALU + ALU on disjoint registers); the batching pass charges
    each straight-line block's static integer counters once at block
    entry, with exact decode-time refunds on cold early exits (deopt
    bailouts, machine faults) so counters stay bit-identical to the
    direct interpreter on every path.  Both default on; the
    [VSPEC_FUSE=0] / [VSPEC_BATCH=0] environment knobs or the
    programmatic overrides below disable them independently. *)

val set_fuse : bool option -> unit
(** Override the [VSPEC_FUSE] environment setting for this process
    ([None] = back to the environment).  Used by the determinism tests
    to digest-compare all four engine configurations. *)

val set_batch : bool option -> unit
(** Override [VSPEC_BATCH]; same contract as {!set_fuse}. *)

val fuse_enabled : unit -> bool
val batch_enabled : unit -> bool

(** Decode-time static coverage of one compiled program. *)
type stats = {
  st_uops : int;  (** micro-ops (non-pseudo instructions) *)
  st_slots : int;  (** dispatch slots = micro-ops − fused pairs *)
  st_blocks : int;  (** accounting blocks ( = slots when batching off) *)
  st_fused : int array;  (** static fused pairs per {!Perf} fuse kind *)
}

val stats : program -> stats

(** {1 Execution} *)

val run : Cpu.t -> host:host -> code:Code.t -> args:int array -> outcome
(** Execute through the pre-decoded program; observationally identical
    to [Exec.run_direct]. *)
