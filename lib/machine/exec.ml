(* Execution front end: selects between the pre-decoded threaded-code
   engine (Decode, the default) and the direct interpreter below, which
   is kept as the executable specification of the machine semantics.
   The two must stay bit-identical — see the exec-determinism tests. *)

type host = Decode.host = {
  memory : int array;
  call_builtin : int -> int array -> int;
  call_js : int -> int array -> int;
}

type snapshot = Decode.snapshot = {
  s_regs : int array;
  s_fregs : float array;
  s_slots : int array;
  s_fslots : float array;
}

type outcome = Decode.outcome =
  | Done of int
  | Deopt of {
      deopt_id : int;
      reason : Insn.deopt_reason;
      snapshot : snapshot;
      via_smi_ext : bool;
    }

exception Machine_fault = Decode.Machine_fault

let fault = Decode.fault

(* Special register indexes inside the GP register file. *)
let reg_ba = Decode.reg_ba
let reg_pc = Decode.reg_pc
let reg_re = Decode.reg_re
let sext32 = Decode.sext32
let reason_code = Decode.reason_code

type flags = {
  mutable fz : bool;
  mutable fn : bool;
  mutable fv : bool;
  mutable fc : bool;      (* carry: for sub, unsigned a >= b *)
  mutable funord : bool;  (* last fcmp was unordered (NaN) *)
}

let run_direct (cpu : Cpu.t) ~host ~(code : Code.t) ~args =
  let regs = Array.make (Insn.num_gp_regs + 3) 0 in
  let fregs = Array.make Insn.num_fp_regs 0.0 in
  let slots = Array.make (max 1 code.Code.gp_slots) 0 in
  let fslots = Array.make (max 1 code.Code.fp_slots) 0.0 in
  let n_args = min (Array.length args) Insn.num_arg_regs in
  Array.blit args 0 regs 0 n_args;
  let mem = host.memory in
  let insns = code.Code.insns in
  let n_insns = Array.length insns in
  let base = code.Code.base_addr in
  let code_id = code.Code.code_id in
  let flags = { fz = false; fn = false; fv = false; fc = false; funord = false } in
  let rr = cpu.Cpu.reg_ready and fr = cpu.Cpu.freg_ready in
  let counters = cpu.Cpu.counters in
  (* Per-argc call-argument buffers, allocated on first use; the host
     callbacks only read the argument window for the duration of the
     call, so the buffers can be reused across calls. *)
  let scratch = ref [||] in
  let scratch_buf argc =
    if Array.length !scratch = 0 then
      scratch := Array.make (Insn.num_gp_regs + 4) [||];
    let s = !scratch in
    let b = s.(argc) in
    if Array.length b = argc then b
    else begin
      let b = Array.make argc 0 in
      s.(argc) <- b;
      b
    end
  in

  let mem_index a =
    if a land 1 <> 0 then fault "%s: unaligned address %d" code.Code.name a;
    let i = a asr 1 in
    if i < 0 || i >= Array.length mem then
      fault "%s: address %d out of range" code.Code.name a;
    i
  in
  (* Second word of a two-word (float) access; [i0] has been checked. *)
  let mem_index2 a i0 =
    if i0 + 1 >= Array.length mem then
      fault "%s: address %d out of range" code.Code.name (a + 2);
    i0 + 1
  in
  let eff_addr (a : Insn.addr) =
    let base = regs.(a.Insn.base) in
    let idx =
      match a.Insn.index with
      | None -> 0
      | Some r -> regs.(r) * a.Insn.scale
    in
    base + idx + a.Insn.offset
  in
  let addr_ready (a : Insn.addr) =
    match a.Insn.index with
    | None -> rr.(a.Insn.base)
    | Some r -> Float.max rr.(a.Insn.base) rr.(r)
  in
  let operand_value = function Insn.Reg r -> regs.(r) | Insn.Imm i -> i in
  let operand_ready = function Insn.Reg r -> rr.(r) | Insn.Imm _ -> 0.0 in
  let set_add_sub_flags a b result is_sub =
    let r32 = sext32 result in
    flags.fz <- r32 = 0;
    flags.fn <- r32 < 0;
    flags.funord <- false;
    (* Signed overflow of 32-bit add/sub. *)
    if is_sub then begin
      flags.fv <- (a >= 0 && b < 0 && r32 < 0) || (a < 0 && b >= 0 && r32 >= 0);
      flags.fc <- a land 0xFFFFFFFF >= b land 0xFFFFFFFF
    end
    else begin
      flags.fv <- (a >= 0 && b >= 0 && r32 < 0) || (a < 0 && b < 0 && r32 >= 0);
      flags.fc <- (a land 0xFFFFFFFF) + (b land 0xFFFFFFFF) > 0xFFFFFFFF
    end
  in
  let eval_cond c =
    if flags.funord then begin
      (* Unordered float compare: only Ne and Vs hold (NaN-safe). *)
      match c with
      | Insn.Ne | Insn.Vs -> true
      | Insn.Eq | Insn.Lt | Insn.Le | Insn.Gt | Insn.Ge | Insn.Vc | Insn.Hs
      | Insn.Lo ->
        false
    end
    else begin
      match c with
      | Insn.Eq -> flags.fz
      | Insn.Ne -> not flags.fz
      | Insn.Lt -> flags.fn <> flags.fv
      | Insn.Ge -> flags.fn = flags.fv
      | Insn.Le -> flags.fz || flags.fn <> flags.fv
      | Insn.Gt -> (not flags.fz) && flags.fn = flags.fv
      | Insn.Vs -> flags.fv
      | Insn.Vc -> not flags.fv
      | Insn.Hs -> flags.fc
      | Insn.Lo -> not flags.fc
    end
  in
  let take_snapshot () =
    {
      s_regs = Array.copy regs;
      s_fregs = Array.copy fregs;
      s_slots = Array.copy slots;
      s_fslots = Array.copy fslots;
    }
  in
  let count_check (i : Insn.t) branch =
    match i.Insn.prov with
    | Insn.Check { group; _ } ->
      Perf.note_check counters ~group_index:(Insn.group_index group) ~branch
    | Insn.Main_line | Insn.Shared -> ()
  in

  let pc = ref 0 in
  let result = ref None in
  let clk = cpu.Cpu.clk in
  (try
     while !result = None do
       if clk.Cpu.now > clk.Cpu.fuel_limit then
         Cpu.watchdog_trip clk ~what:code.Code.name;
       if !pc >= n_insns then fault "%s: fell off code end" code.Code.name;
       let i = insns.(!pc) in
       let k = i.Insn.kind in
       if not (Insn.is_pseudo k) then begin
         Cpu.fetch cpu ~addr:(base + !pc);
         Cpu.sample cpu ~code_id ~pc:!pc;
         counters.Perf.jit_instructions <- counters.Perf.jit_instructions + 1;
         count_check i
           (match k with Insn.Deopt_if _ -> true | _ -> false)
       end;
       let next = ref (!pc + 1) in
       (match k with
       | Insn.Label _ | Insn.Checkpoint _ | Insn.Nop -> ()
       | Insn.Mov (d, rhs) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_alu ~ready:(operand_ready rhs) in
         regs.(d) <- operand_value rhs;
         rr.(d) <- t
       | Insn.Ldr (d, a) ->
         let ea = eff_addr a in
         let t = Cpu.issue_load cpu ~ready:(addr_ready a) ~addr:ea in
         regs.(d) <- mem.(mem_index ea);
         rr.(d) <- t
       | Insn.Str (a, s) ->
         let ea = eff_addr a in
         let ready = Float.max (addr_ready a) rr.(s) in
         ignore (Cpu.issue_store cpu ~ready ~addr:ea);
         mem.(mem_index ea) <- regs.(s)
       | Insn.Ldr_f (d, a) ->
         let ea = eff_addr a in
         let t = Cpu.issue_load cpu ~ready:(addr_ready a) ~addr:ea in
         let i0 = mem_index ea in
         let i1 = mem_index2 ea i0 in
         let lo = Int64.of_int (mem.(i0) land 0xFFFFFFFF) in
         let hi = Int64.of_int (mem.(i1) land 0xFFFFFFFF) in
         fregs.(d) <- Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32));
         fr.(d) <- t
       | Insn.Str_f (a, s) ->
         let ea = eff_addr a in
         let ready = Float.max (addr_ready a) fr.(s) in
         ignore (Cpu.issue_store cpu ~ready ~addr:ea);
         let bits = Int64.bits_of_float fregs.(s) in
         let i0 = mem_index ea in
         let i1 = mem_index2 ea i0 in
         mem.(i0) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
         mem.(i1) <- Int64.to_int (Int64.shift_right_logical bits 32)
       | Insn.Alu { op; dst; src; rhs; set_flags } ->
         let a = regs.(src) and b = operand_value rhs in
         let ready = Float.max rr.(src) (operand_ready rhs) in
         let cls =
           match op with
           | Insn.Mul -> Cpu.C_mul
           | Insn.Sdiv | Insn.Smod -> Cpu.C_div
           | _ -> Cpu.C_alu
         in
         let t = Cpu.issue cpu ~cls ~ready in
         let raw =
           match op with
           | Insn.Add -> a + b
           | Insn.Sub -> a - b
           | Insn.Mul -> a * b
           | Insn.Sdiv -> if b = 0 then 0 else a / b
           | Insn.Smod -> if b = 0 then 0 else a mod b
           | Insn.And -> a land b
           | Insn.Orr -> a lor b
           | Insn.Eor -> a lxor b
           | Insn.Lsl -> a lsl (b land 31)
           | Insn.Lsr -> (a land 0xFFFFFFFF) lsr (b land 31)
           | Insn.Asr -> a asr (b land 31)
         in
         if set_flags then begin
           match op with
           | Insn.Add -> set_add_sub_flags a b raw false
           | Insn.Sub -> set_add_sub_flags a b raw true
           | Insn.Mul ->
             (* smulls-style: overflow when the 64-bit product does not
                fit in 32 bits. *)
             let r32 = sext32 raw in
             flags.fz <- r32 = 0;
             flags.fn <- r32 < 0;
             flags.fv <- raw <> r32;
             flags.funord <- false
           | _ ->
             let r32 = sext32 raw in
             flags.fz <- r32 = 0;
             flags.fn <- r32 < 0;
             flags.fv <- false;
             flags.funord <- false
         end;
         regs.(dst) <- sext32 raw;
         rr.(dst) <- t;
         if set_flags then cpu.Cpu.clk.Cpu.flags_ready <- t
       | Insn.Alu_mem { op; dst; src; mem = a } ->
         let ea = eff_addr a in
         let ready = Float.max rr.(src) (addr_ready a) in
         let t = Cpu.issue_load cpu ~ready ~addr:ea in
         let b = mem.(mem_index ea) in
         let av = regs.(src) in
         let raw =
           match op with
           | Insn.Add -> av + b
           | Insn.Sub -> av - b
           | Insn.And -> av land b
           | Insn.Orr -> av lor b
           | Insn.Eor -> av lxor b
           | Insn.Mul -> av * b
           | Insn.Sdiv -> if b = 0 then 0 else av / b
           | Insn.Smod -> if b = 0 then 0 else av mod b
           | Insn.Lsl | Insn.Lsr | Insn.Asr ->
             fault "%s: shift with memory operand" code.Code.name
         in
         regs.(dst) <- sext32 raw;
         rr.(dst) <- t +. 1.0
       | Insn.Cmp (a, rhs) ->
         let av = regs.(a) and bv = operand_value rhs in
         let ready = Float.max rr.(a) (operand_ready rhs) in
         let t = Cpu.issue cpu ~cls:Cpu.C_alu ~ready in
         set_add_sub_flags av bv (av - bv) true;
         cpu.Cpu.clk.Cpu.flags_ready <- t
       | Insn.Cmp_mem (a, m) ->
         let ea = eff_addr m in
         let ready = Float.max rr.(a) (addr_ready m) in
         let t = Cpu.issue_load cpu ~ready ~addr:ea in
         let bv = mem.(mem_index ea) in
         let av = regs.(a) in
         set_add_sub_flags av bv (av - bv) true;
         cpu.Cpu.clk.Cpu.flags_ready <- t +. 1.0
       | Insn.Tst (a, rhs) ->
         let av = regs.(a) and bv = operand_value rhs in
         let ready = Float.max rr.(a) (operand_ready rhs) in
         let t = Cpu.issue cpu ~cls:Cpu.C_alu ~ready in
         let r = sext32 (av land bv) in
         flags.fz <- r = 0;
         flags.fn <- r < 0;
         flags.fv <- false;
         flags.funord <- false;
         cpu.Cpu.clk.Cpu.flags_ready <- t
       | Insn.Fmov (d, s) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_falu ~ready:fr.(s) in
         fregs.(d) <- fregs.(s);
         fr.(d) <- t
       | Insn.Fmov_imm (d, v) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_falu ~ready:0.0 in
         fregs.(d) <- v;
         fr.(d) <- t
       | Insn.Falu { op; dst; a; b } ->
         let ready = Float.max fr.(a) fr.(b) in
         let cls =
           match op with
           | Insn.Fadd | Insn.Fsub -> Cpu.C_falu
           | Insn.Fmul -> Cpu.C_fmul
           | Insn.Fdiv -> Cpu.C_fdiv
         in
         let t = Cpu.issue cpu ~cls ~ready in
         let av = fregs.(a) and bv = fregs.(b) in
         fregs.(dst) <-
           (match op with
           | Insn.Fadd -> av +. bv
           | Insn.Fsub -> av -. bv
           | Insn.Fmul -> av *. bv
           | Insn.Fdiv -> av /. bv);
         fr.(dst) <- t
       | Insn.Fcmp (a, b) ->
         let ready = Float.max fr.(a) fr.(b) in
         let t = Cpu.issue cpu ~cls:Cpu.C_falu ~ready in
         let av = fregs.(a) and bv = fregs.(b) in
         if Float.is_nan av || Float.is_nan bv then begin
           flags.fz <- false;
           flags.fn <- false;
           flags.fv <- true;
           flags.funord <- true
         end
         else begin
           flags.fz <- av = bv;
           flags.fn <- av < bv;
           flags.fv <- false;
           flags.fc <- av >= bv;
           flags.funord <- false
         end;
         cpu.Cpu.clk.Cpu.flags_ready <- t
       | Insn.Scvtf (d, s) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_fcvt ~ready:rr.(s) in
         fregs.(d) <- float_of_int regs.(s);
         fr.(d) <- t
       | Insn.Fcvtzs (d, s) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_fcvt ~ready:fr.(s) in
         let v = fregs.(s) in
         regs.(d) <- (if Float.is_nan v then 0 else sext32 (int_of_float v));
         rr.(d) <- t
       | Insn.B l ->
         ignore
           (Cpu.issue_branch cpu ~pc:(base + !pc) ~ready:0.0 ~taken:true);
         next := code.Code.label_index.(l)
       | Insn.Bcond (c, l) ->
         let taken = eval_cond c in
         ignore
           (Cpu.issue_branch cpu ~pc:(base + !pc)
              ~ready:cpu.Cpu.clk.Cpu.flags_ready ~taken);
         if taken then next := code.Code.label_index.(l)
       | Insn.Deopt_if (c, dp) ->
         let taken = eval_cond c in
         ignore
           (Cpu.issue_branch cpu ~pc:(base + !pc)
              ~ready:cpu.Cpu.clk.Cpu.flags_ready ~taken);
         if taken then begin
           let point = code.Code.deopts.(dp) in
           counters.Perf.deopt_events <- counters.Perf.deopt_events + 1;
           result :=
             Some
               (Deopt
                  {
                    deopt_id = dp;
                    reason = point.Code.reason;
                    snapshot = take_snapshot ();
                    via_smi_ext = false;
                  })
         end
       | Insn.Js_ldr_smi { dst; mem = a; deopt } ->
         (* Fused load + Not-a-SMI check + untagging shift (Fig 12).
            The check and shift run in the load unit, in parallel. *)
         let ea = eff_addr a in
         let t =
           Cpu.issue_load cpu ~ready:(addr_ready a) ~addr:ea
         in
         let t = t +. cpu.Cpu.cfg.Cpu.smi_load_extra in
         let w = mem.(mem_index ea) in
         if w land 1 <> 0 then begin
           (* Check failed: write REG_PC / REG_RE; commit triggers the
              bailout through the handler at REG_BA. *)
           let point = code.Code.deopts.(deopt) in
           regs.(reg_pc) <- base + !pc;
           regs.(reg_re) <- reason_code point.Code.reason;
           counters.Perf.deopt_events <- counters.Perf.deopt_events + 1;
           if regs.(reg_ba) = 0 then
             fault "%s: jsldrsmi bailout with REG_BA unset" code.Code.name;
           result :=
             Some
               (Deopt
                  {
                    deopt_id = deopt;
                    reason = point.Code.reason;
                    snapshot = take_snapshot ();
                    via_smi_ext = true;
                  })
         end
         else begin
           regs.(dst) <- w asr 1;
           rr.(dst) <- t
         end
       | Insn.Js_chk_map { mem = a; expected; deopt } ->
         (* Future-work fused map check: load + compare in the load
            unit; branch-free bailout like jsldrsmi. *)
         let ea = eff_addr a in
         ignore (Cpu.issue_load cpu ~ready:(addr_ready a) ~addr:ea);
         let w = mem.(mem_index ea) in
         if w <> expected then begin
           let point = code.Code.deopts.(deopt) in
           regs.(reg_pc) <- base + !pc;
           regs.(reg_re) <- reason_code point.Code.reason;
           counters.Perf.deopt_events <- counters.Perf.deopt_events + 1;
           if regs.(reg_ba) = 0 then
             fault "%s: jschkmap bailout with REG_BA unset" code.Code.name;
           result :=
             Some
               (Deopt
                  {
                    deopt_id = deopt;
                    reason = point.Code.reason;
                    snapshot = take_snapshot ();
                    via_smi_ext = true;
                  })
         end
       | Insn.Call (target, argc) ->
         (* All registers are caller-saved; args in r0..r(argc-1). *)
         let ready =
           let r = ref cpu.Cpu.clk.Cpu.flags_ready in
           for i = 0 to argc - 1 do
             if rr.(i) > !r then r := rr.(i)
           done;
           !r
         in
         let t = Cpu.issue cpu ~cls:Cpu.C_call ~ready in
         (* Synchronize dispatch with the call. *)
         if t > cpu.Cpu.clk.Cpu.now then cpu.Cpu.clk.Cpu.now <- t;
         let args_view = scratch_buf argc in
         Array.blit regs 0 args_view 0 argc;
         let res =
           match target with
           | Insn.Builtin b -> host.call_builtin b args_view
           | Insn.Js_code f -> host.call_js f args_view
         in
         regs.(0) <- res;
         let after = Float.max cpu.Cpu.clk.Cpu.now t in
         rr.(0) <- after;
         for i = 1 to Insn.num_gp_regs - 1 do
           rr.(i) <- Float.min rr.(i) after
         done
       | Insn.Ret ->
         ignore
           (Cpu.issue_branch cpu ~pc:(base + !pc) ~ready:rr.(0) ~taken:true);
         result := Some (Done regs.(0))
       | Insn.Spill (slot, s) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_store ~ready:rr.(s) in
         ignore t;
         slots.(slot) <- regs.(s)
       | Insn.Reload (d, slot) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_load ~ready:0.0 in
         regs.(d) <- slots.(slot);
         rr.(d) <- t +. 2.0 (* L1-hit reload *)
       | Insn.Spill_f (slot, s) ->
         ignore (Cpu.issue cpu ~cls:Cpu.C_store ~ready:fr.(s));
         fslots.(slot) <- fregs.(s)
       | Insn.Reload_f (d, slot) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_load ~ready:0.0 in
         fregs.(d) <- fslots.(slot);
         fr.(d) <- t +. 2.0
       | Insn.Msr (sp, s) ->
         let t = Cpu.issue cpu ~cls:Cpu.C_alu ~ready:rr.(s) in
         let idx =
           match sp with
           | Insn.Reg_ba -> reg_ba
           | Insn.Reg_pc -> reg_pc
           | Insn.Reg_re -> reg_re
         in
         regs.(idx) <- regs.(s);
         rr.(idx) <- t
       | Insn.Mrs (d, sp) ->
         let idx =
           match sp with
           | Insn.Reg_ba -> reg_ba
           | Insn.Reg_pc -> reg_pc
           | Insn.Reg_re -> reg_re
         in
         let t = Cpu.issue cpu ~cls:Cpu.C_alu ~ready:rr.(idx) in
         regs.(d) <- regs.(idx);
         rr.(d) <- t);
       pc := !next
     done
   with Machine_fault _ as e -> raise e);
  match !result with
  | Some r -> r
  | None -> fault "%s: executor loop exited without result" code.Code.name

(* ------------------------------------------------------------------ *)
(* Engine selection                                                    *)
(* ------------------------------------------------------------------ *)

type engine_kind = Direct | Decoded

let env_engine =
  lazy
    (match Sys.getenv_opt "VSPEC_EXEC" with
    | None | Some "" | Some "decoded" -> Decoded
    | Some "direct" -> Direct
    | Some other ->
      invalid_arg
        (Printf.sprintf "VSPEC_EXEC=%s: expected \"decoded\" or \"direct\""
           other))

let engine_override : engine_kind option ref = ref None
let set_engine k = engine_override := k

let current_engine () =
  match !engine_override with
  | Some k -> k
  | None -> Lazy.force env_engine

let run cpu ~host ~code ~args =
  match current_engine () with
  | Decoded -> Decode.run cpu ~host ~code ~args
  | Direct -> run_direct cpu ~host ~code ~args

let warm code =
  match current_engine () with
  | Decoded -> Decode.warm code
  | Direct -> ()

let frame_value snapshot ~materialize_double = function
  | Code.Fv_reg r -> snapshot.s_regs.(r)
  | Code.Fv_reg32 r -> snapshot.s_regs.(r) lsl 1
  | Code.Fv_freg f -> materialize_double snapshot.s_fregs.(f)
  | Code.Fv_slot s -> snapshot.s_slots.(s)
  | Code.Fv_slot32 s -> snapshot.s_slots.(s) lsl 1
  | Code.Fv_fslot s -> materialize_double snapshot.s_fslots.(s)
  | Code.Fv_const c -> c
  | Code.Fv_fconst f -> materialize_double f
  | Code.Fv_dead -> 0
