(** Target architecture flavors.

    The paper compares V8 output on a CISC ISA (X64) and a RISC ISA
    (ARM64).  The relevant difference for deoptimization checks is how
    many instructions a check needs: X64 folds memory operands into
    [cmp]/ALU instructions while ARM64 needs a separate load, and X64
    fuses test+branch patterns more tightly (paper Section III-A uses a
    1-instruction check window on X64 and 2 on ARM64). *)

type t =
  | X64
  | Arm64
  | Arm64_smi_ext
      (** ARM64 with the paper's six [jsldrsmi]/[jsldursmi] load
          instructions and the [REG_BA]/[REG_PC]/[REG_RE] special
          registers (Section V). *)

val all : t list
val name : t -> string
val of_name : string -> t option

val can_fold_memory_operand : t -> bool
(** True on X64: ALU and compare instructions may take a memory
    operand, so e.g. a boundary check is [cmp reg, \[mem\]; jae] instead
    of [ldr; cmp; b.hs]. *)

val has_smi_load : t -> bool
(** True when the [jsldrsmi] extension is available. *)

val check_window : t -> int
(** The PC-sampling attribution window the paper uses: the number of
    instructions before a deopt branch considered part of the check
    (1 on X64, 2 on ARM64). *)

val base_isa : t -> t
(** [base_isa Arm64_smi_ext = Arm64]; identity otherwise. *)
