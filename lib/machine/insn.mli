(** Machine instructions emitted by the JIT backends.

    One macro-instruction set covers both architecture flavors; the code
    generator only emits forms that are legal for its target (memory
    operands in ALU/compare instructions exist only on X64, the
    [Js_ldr_smi] family only on [Arm64_smi_ext]).

    Every instruction carries {e provenance}: whether it belongs to a
    deoptimization check (and which one), to main-line code, or to both.
    V8 loses this information during lowering (paper Section III-B); we
    keep it as ground truth so the paper's PC-window attribution
    heuristic can be validated against an oracle. *)

(** {1 Deoptimization taxonomy (paper Section II-B)} *)

type deopt_reason =
  | Not_a_smi          (** value expected to be an SMI was a heap pointer *)
  | Smi                (** value expected to be a heap object was an SMI *)
  | Out_of_bounds      (** array index outside the backing store *)
  | Wrong_map          (** object's hidden class differs from speculation *)
  | Overflow           (** SMI arithmetic left the 31-bit range *)
  | Lost_precision     (** division result not representable as SMI *)
  | Division_by_zero
  | Minus_zero         (** SMI result would be -0 *)
  | Not_a_number       (** heap object expected to be a HeapNumber was not *)
  | Wrong_value        (** call target or constant differs from speculation *)
  | Hole               (** read of an array hole / uninitialized element *)
  | Insufficient_feedback  (** deopt-soft: compiled before feedback existed *)

type check_group =
  | G_type       (** map checks and other type-shape checks *)
  | G_smi        (** checks that a value is a heap object (reason [Smi]) *)
  | G_not_smi    (** checks that a value is an SMI (reason [Not_a_smi]) *)
  | G_boundary
  | G_arith      (** overflow, lost precision, division by zero, -0 *)
  | G_other

type deopt_category = Deopt_eager | Deopt_lazy | Deopt_soft

val group_of_reason : deopt_reason -> check_group
val category_of_reason : deopt_reason -> deopt_category
val reason_name : deopt_reason -> string
val group_name : check_group -> string
val all_groups : check_group list
val group_index : check_group -> int
(** Stable 0..5 index (for counter arrays). *)

type check_role =
  | Role_condition  (** computes the boolean the deopt branch tests *)
  | Role_branch     (** the conditional deopt branch itself *)

type provenance =
  | Main_line
  | Check of { group : check_group; role : check_role }
  | Shared  (** feeds both a check and main-line code; not pure overhead *)

(** {1 Instruction forms} *)

type reg = int
(** General-purpose register index, 0..{!num_gp_regs}-1. *)

type freg = int
(** Floating-point register index, 0..{!num_fp_regs}-1. *)

val num_gp_regs : int
val num_fp_regs : int
val num_arg_regs : int
(** Calling convention: r0 = callee closure, r1 = this, r2.. = arguments;
    result in r0.  All registers are caller-saved. *)

type operand = Reg of reg | Imm of int

type addr = {
  base : reg;
  index : reg option;
  scale : int;      (** words per index step: 1 for tagged arrays, 2 for doubles *)
  offset : int;     (** word offset *)
  unscaled : bool;  (** ARM64 [ldur] flavor (register-offset with no scaling) *)
}

val mk_addr : ?index:reg -> ?scale:int -> ?offset:int -> ?unscaled:bool -> reg -> addr

type alu_op =
  | Add | Sub | Mul | Sdiv | Smod
  | And | Orr | Eor
  | Lsl | Lsr | Asr

type cond = Eq | Ne | Lt | Le | Gt | Ge | Vs (** overflow set *) | Vc | Hs (** unsigned >= *) | Lo (** unsigned < *)

val negate_cond : cond -> cond

type falu_op = Fadd | Fsub | Fmul | Fdiv

type call_target =
  | Builtin of int      (** builtin id, dispatched by the host *)
  | Js_code of int      (** function id, dispatched by the host *)

type special_reg = Reg_ba | Reg_pc | Reg_re

type kind =
  | Mov of reg * operand
  | Ldr of reg * addr                       (** tagged/int 32-bit word load *)
  | Str of addr * reg
  | Ldr_f of freg * addr                    (** double load (two words) *)
  | Str_f of addr * freg
  | Alu of { op : alu_op; dst : reg; src : reg; rhs : operand; set_flags : bool }
  | Alu_mem of { op : alu_op; dst : reg; src : reg; mem : addr }  (** X64 only *)
  | Cmp of reg * operand
  | Cmp_mem of reg * addr                   (** X64 only *)
  | Tst of reg * operand
  | Fmov of freg * freg
  | Fmov_imm of freg * float
  | Falu of { op : falu_op; dst : freg; a : freg; b : freg }
  | Fcmp of freg * freg
  | Scvtf of freg * reg                     (** int -> double *)
  | Fcvtzs of reg * freg                    (** double -> int, truncating *)
  | B of int                                (** unconditional, label id *)
  | Bcond of cond * int
  | Deopt_if of cond * int                  (** deopt branch; operand is deopt-point id *)
  | Checkpoint of int                       (** zero-cost marker of a deopt point *)
  | Call of call_target * int  (** argument registers r0..r(argc-1) are live *)
  | Ret
  | Spill of int * reg                      (** frame slot <- reg *)
  | Reload of reg * int
  | Spill_f of int * freg
  | Reload_f of freg * int
  | Js_ldr_smi of { dst : reg; mem : addr; deopt : int }
      (** the paper's fused SMI load: load word, verify LSB=0, untag;
          on failure write [REG_PC]/[REG_RE] and take the bailout path *)
  | Js_chk_map of { mem : addr; expected : int; deopt : int }
      (** prototype of the paper's future work (Section VII): a fused
          map-check load — load the map word and compare against the
          expected map, bailing out branch-free through [REG_BA] on
          mismatch *)
  | Msr of special_reg * reg
  | Mrs of reg * special_reg
  | Label of int                            (** pseudo; removed at assembly *)
  | Nop

type t = {
  kind : kind;
  prov : provenance;
  comment : string;
}

val make : ?prov:provenance -> ?comment:string -> kind -> t

val is_pseudo : kind -> bool
(** Labels and checkpoints occupy no code space and retire no uop. *)

val reads : kind -> reg list
val writes : kind -> reg list
val freads : kind -> freg list
val fwrites : kind -> freg list

val to_string : Arch.t -> t -> string
(** Arch-flavored assembly syntax, e.g. [tst w3, #0x1] on ARM64 vs
    [test r3, 1] on X64. *)
