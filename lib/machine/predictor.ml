type t = {
  mask : int;
  counters : Bytes.t;  (* 2-bit saturating counters *)
  mutable ghr : int;
}

let create ?(bits = 15) () =
  let size = 1 lsl bits in
  { mask = size - 1; counters = Bytes.make size '\002'; ghr = 0 }

let predict_and_update t ~pc ~taken =
  let idx = (pc lxor t.ghr) land t.mask in
  let c = Char.code (Bytes.unsafe_get t.counters idx) in
  let predicted_taken = c >= 2 in
  let c' =
    if taken then min 3 (c + 1)
    else max 0 (c - 1)
  in
  Bytes.unsafe_set t.counters idx (Char.unsafe_chr c');
  t.ghr <- ((t.ghr lsl 1) lor (if taken then 1 else 0)) land t.mask;
  predicted_taken = taken

let reset t =
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\002';
  t.ghr <- 0
