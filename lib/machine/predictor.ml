type t = {
  mask : int;
  counters : Bytes.t;  (* 2-bit saturating counters *)
  mutable ghr : int;
}

let create ?(bits = 15) () =
  let size = 1 lsl bits in
  { mask = size - 1; counters = Bytes.make size '\002'; ghr = 0 }

(* Per-branch hot path: one table load, one store, int-only arithmetic.
   The table size is a power of two so indexing is a pow2 mask (no mod),
   and the 2-bit saturation is written out with int compares — [min]/
   [max] here would go through the polymorphic compare primitives, a
   function call per retired branch. *)
let[@inline] predict_and_update t ~pc ~taken =
  let idx = (pc lxor t.ghr) land t.mask in
  let c = Char.code (Bytes.unsafe_get t.counters idx) in
  let predicted_taken = c >= 2 in
  let c' =
    if taken then (if c >= 3 then 3 else c + 1)
    else if c <= 0 then 0
    else c - 1
  in
  Bytes.unsafe_set t.counters idx (Char.unsafe_chr c');
  t.ghr <- ((t.ghr lsl 1) lor (if taken then 1 else 0)) land t.mask;
  predicted_taken = taken

let reset t =
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\002';
  t.ghr <- 0
