type t = X64 | Arm64 | Arm64_smi_ext

let all = [ X64; Arm64; Arm64_smi_ext ]

let name = function
  | X64 -> "x64"
  | Arm64 -> "arm64"
  | Arm64_smi_ext -> "arm64+smi"

let of_name = function
  | "x64" -> Some X64
  | "arm64" -> Some Arm64
  | "arm64+smi" | "arm64-smi-ext" -> Some Arm64_smi_ext
  | _ -> None

let can_fold_memory_operand = function
  | X64 -> true
  | Arm64 | Arm64_smi_ext -> false

let has_smi_load = function
  | Arm64_smi_ext -> true
  | X64 | Arm64 -> false

let check_window = function
  | X64 -> 1
  | Arm64 | Arm64_smi_ext -> 2

let base_isa = function
  | Arm64_smi_ext -> Arm64
  | (X64 | Arm64) as a -> a
