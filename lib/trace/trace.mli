(** [Vspec.Trace]: the deterministic tracing and profile-export subsystem.

    A process-wide, preallocated ring-buffer event sink with a
    span/instant/counter/sample API, stamped in one of two clock
    domains:

    - {b Sim} — the simulated CPU clock (cycles).  Simulated-time events
      are deterministic: the same run produces the same timeline, so
      traces are reproducible artifacts.  The sim clock is read through
      a per-domain reader registered by [Engine.create]
      ({!set_sim_clock}), or passed explicitly ([_at] variants) by
      machine-layer call sites that already hold the clock.
    - {b Wall} — host wall-clock microseconds since {!enable}, for
      host-side work (parsing, compilation phases, pool jobs, figure
      drivers) that has no simulated duration.

    Tracing is zero-cost when off: every emitter begins with a single
    load-and-branch on {!on}, and hot call sites guard argument
    construction behind [if !Trace.on].  Emission never touches
    simulation state (no counters, no RNG draws, no charges), so
    digested results are bit-identical with tracing on, off, or with a
    wrapped ring buffer — asserted by [test/test_trace.ml].

    Exporters ({!render} / {!write}):
    - {b Chrome} trace-event JSON ([.json]) — loadable in Perfetto or
      [chrome://tracing]; sim and wall domains render as two processes,
      layers ([jsvm], [turbofan], [machine], [experiments], [support])
      as named threads.
    - {b Folded} collapsed-stack format ([.folded]) — one
      ["frame;frame;frame count"] line per stack, the input format of
      [flamegraph.pl] / speedscope; fed by {!sample} events carrying the
      PC sampler's per-check attribution.
    - {b Csv} counter timelines ([.csv]) — [ts,domain,category,name,value]
      rows plus a per-series quartile summary footer
      (via [Support.Stats]). *)

type domain = Sim | Wall
type kind = Span | Instant | Counter | Sample

type event = {
  ev_kind : kind;
  ev_dom : domain;
  ev_cat : string;   (** layer lane: "jsvm", "turbofan", "machine", ... *)
  ev_name : string;
  ev_arg : string;   (** free-form detail; [""] = none *)
  ev_ts : float;     (** sim cycles, or wall microseconds since enable *)
  ev_dur : float;    (** spans only *)
  ev_value : float;  (** counters and samples *)
}

val on : bool ref
(** The fast-path flag.  Read-only for instrumentation sites
    ([if !Trace.on then ...]); toggled by {!enable} / {!disable}. *)

val active : unit -> bool

(** {1 Lifecycle} *)

val default_capacity : int
(** 65536 events; override with [VSPEC_TRACE_BUF] or [?capacity]. *)

val enable : ?capacity:int -> unit -> unit
(** Allocate the ring buffer (capacity from [?capacity], else
    [VSPEC_TRACE_BUF], else {!default_capacity}; clamped to >= 16) and
    start recording.  No output path is set: use {!write} or {!events}
    to consume the ring. *)

val disable : unit -> unit
(** Stop recording and drop the ring and any configured output path. *)

val configure : ?capacity:int -> path:string -> unit -> (unit, string) result
(** [enable] plus an output path for {!finalize}.  The path is probed
    for writability immediately so a bad [--trace] destination fails
    with a clear message up front; on [Error] tracing stays disabled. *)

val setup : ?path:string -> unit -> (bool, string) result
(** Binary entry point: resolve the trace destination from [?path]
    (the [--trace] flag) falling back to [VSPEC_TRACE]; unset means
    tracing stays off ([Ok false]).  On success registers an [at_exit]
    hook that writes the trace (reporting the path and event count on
    stderr), so every exit path of a CLI flushes it.  [Error] carries a
    one-line degradation message — callers print it and continue
    untraced, mirroring [Support.Fault]'s containment style. *)

val finalize : unit -> ((string * int) option, string) result
(** Write the ring to the configured path (format from the extension)
    and disable tracing.  [Ok (Some (path, events))] on a write,
    [Ok None] when no path was configured (idempotent). *)

(** {1 Clock domains} *)

val set_sim_clock : (unit -> float) -> unit
(** Register the simulated-clock reader for the current OCaml domain
    (domain-local, so pool workers each trace their own engine).
    [Engine.create] points this at its CPU. *)

val sim_now : unit -> float
(** Current simulated time via the registered reader (0.0 default). *)

val wall_now : unit -> float
(** Host microseconds since {!enable}. *)

(** {1 Emitters}

    All emitters are no-ops when tracing is off and never raise.
    [_at] variants take an explicit sim timestamp (for call sites that
    already hold the CPU clock); the rest read {!sim_now} or
    {!wall_now}. *)

val instant : ?arg:string -> cat:string -> string -> unit
val instant_at : ?arg:string -> cat:string -> ts:float -> string -> unit
val instant_wall : ?arg:string -> cat:string -> string -> unit

val counter : cat:string -> string -> float -> unit
val counter_at : cat:string -> ts:float -> string -> float -> unit
val counter_wall : cat:string -> string -> float -> unit

val complete_at : ?arg:string -> cat:string -> ts:float -> dur:float -> string -> unit
(** A finished sim-domain span (begin [ts], length [dur] cycles). *)

val complete_wall_at :
  ?arg:string -> cat:string -> ts:float -> dur:float -> string -> unit

val span : ?arg:string -> cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a sim-domain span (emitted on return or
    exception).  When tracing is off, just runs the thunk. *)

val span_wall : ?arg:string -> cat:string -> string -> (unit -> 'a) -> 'a

val sample : stack:string -> int -> unit
(** A folded-stack sample: [stack] is a [';']-joined frame list, the
    count is merged per stack by the folded exporter. *)

(** {1 Introspection (tests, exporters)} *)

val events : unit -> event list
(** Ring contents in recording order (oldest surviving event first). *)

val emitted : unit -> int
(** Total events ever emitted, including overwritten ones. *)

val dropped : unit -> int
(** Events overwritten by ring wrap ([emitted - live]). *)

val capacity : unit -> int

(** {1 Export} *)

type format = Chrome | Folded | Csv

val format_of_path : string -> format
(** [.folded] -> Folded, [.csv] -> Csv, anything else -> Chrome. *)

val render : format -> Buffer.t -> unit
val write : path:string -> (int, string) result
(** Render to [path] (format from extension); [Ok events_written]. *)
