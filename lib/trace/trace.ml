type domain = Sim | Wall
type kind = Span | Instant | Counter | Sample

type event = {
  ev_kind : kind;
  ev_dom : domain;
  ev_cat : string;
  ev_name : string;
  ev_arg : string;
  ev_ts : float;
  ev_dur : float;
  ev_value : float;
}

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(*                                                                     *)
(* Struct-of-arrays, fully preallocated at [enable] time: recording an *)
(* event is a handful of array stores under the mutex (caller-supplied *)
(* strings are stored by reference).  On overflow the oldest events    *)
(* are overwritten — a trace is a sliding window over the run's tail,  *)
(* like a kernel trace ring.                                           *)
(* ------------------------------------------------------------------ *)

type ring = {
  cap : int;
  r_meta : int array; (* kind lor (dom lsl 2) *)
  r_cat : string array;
  r_name : string array;
  r_arg : string array;
  r_ts : float array;
  r_dur : float array;
  r_value : float array;
  mutable next : int;  (* next write slot *)
  mutable total : int; (* events ever emitted *)
}

let on = ref false
let mu = Mutex.create ()
let ring : ring option ref = ref None
let out_path : string option ref = ref None
let wall0 = ref (Unix.gettimeofday ())

let active () = !on

let default_capacity = 65536

let capacity_from_env () =
  match Sys.getenv_opt "VSPEC_TRACE_BUF" with
  | None | Some "" -> default_capacity
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n -> max 16 n
    | None -> default_capacity)

let make_ring cap =
  {
    cap;
    r_meta = Array.make cap 0;
    r_cat = Array.make cap "";
    r_name = Array.make cap "";
    r_arg = Array.make cap "";
    r_ts = Array.make cap 0.0;
    r_dur = Array.make cap 0.0;
    r_value = Array.make cap 0.0;
    next = 0;
    total = 0;
  }

let enable ?capacity () =
  let cap =
    match capacity with Some c -> max 16 c | None -> capacity_from_env ()
  in
  Mutex.lock mu;
  ring := Some (make_ring cap);
  out_path := None;
  wall0 := Unix.gettimeofday ();
  Mutex.unlock mu;
  on := true

let disable () =
  on := false;
  Mutex.lock mu;
  ring := None;
  out_path := None;
  Mutex.unlock mu

(* ------------------------------------------------------------------ *)
(* Clock domains                                                       *)
(* ------------------------------------------------------------------ *)

(* The simulated-clock reader is domain-local: pool workers each run
   their own engine, and each registers its own CPU here. *)
let sim_clock_key : (unit -> float) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun () -> 0.0)

let set_sim_clock f = Domain.DLS.set sim_clock_key f
let sim_now () = (Domain.DLS.get sim_clock_key) ()
let wall_now () = (Unix.gettimeofday () -. !wall0) *. 1e6

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let kind_code = function Span -> 0 | Instant -> 1 | Counter -> 2 | Sample -> 3
let kind_of_code = function
  | 0 -> Span
  | 1 -> Instant
  | 2 -> Counter
  | _ -> Sample

let emit ~kind ~dom ~cat ~name ~arg ~ts ~dur ~value =
  if !on then begin
    Mutex.lock mu;
    (match !ring with
    | None -> ()
    | Some r ->
      let i = r.next in
      r.r_meta.(i) <-
        kind_code kind lor (match dom with Sim -> 0 | Wall -> 4);
      r.r_cat.(i) <- cat;
      r.r_name.(i) <- name;
      r.r_arg.(i) <- arg;
      r.r_ts.(i) <- ts;
      r.r_dur.(i) <- dur;
      r.r_value.(i) <- value;
      r.next <- (if i + 1 = r.cap then 0 else i + 1);
      r.total <- r.total + 1);
    Mutex.unlock mu
  end

let instant_at ?(arg = "") ~cat ~ts name =
  emit ~kind:Instant ~dom:Sim ~cat ~name ~arg ~ts ~dur:0.0 ~value:0.0

let instant ?(arg = "") ~cat name =
  if !on then instant_at ~arg ~cat ~ts:(sim_now ()) name

let instant_wall ?(arg = "") ~cat name =
  if !on then
    emit ~kind:Instant ~dom:Wall ~cat ~name ~arg ~ts:(wall_now ()) ~dur:0.0
      ~value:0.0

let counter_at ~cat ~ts name value =
  emit ~kind:Counter ~dom:Sim ~cat ~name ~arg:"" ~ts ~dur:0.0 ~value

let counter ~cat name value =
  if !on then counter_at ~cat ~ts:(sim_now ()) name value

let counter_wall ~cat name value =
  if !on then
    emit ~kind:Counter ~dom:Wall ~cat ~name ~arg:"" ~ts:(wall_now ()) ~dur:0.0
      ~value

let complete_at ?(arg = "") ~cat ~ts ~dur name =
  emit ~kind:Span ~dom:Sim ~cat ~name ~arg ~ts ~dur ~value:0.0

let complete_wall_at ?(arg = "") ~cat ~ts ~dur name =
  emit ~kind:Span ~dom:Wall ~cat ~name ~arg ~ts ~dur ~value:0.0

let span ?(arg = "") ~cat name f =
  if not !on then f ()
  else begin
    let t0 = sim_now () in
    Fun.protect
      ~finally:(fun () ->
        complete_at ~arg ~cat ~ts:t0 ~dur:(sim_now () -. t0) name)
      f
  end

let span_wall ?(arg = "") ~cat name f =
  if not !on then f ()
  else begin
    let t0 = wall_now () in
    Fun.protect
      ~finally:(fun () ->
        complete_wall_at ~arg ~cat ~ts:t0 ~dur:(wall_now () -. t0) name)
      f
  end

let sample ~stack count =
  if !on then
    emit ~kind:Sample ~dom:Wall ~cat:"samples" ~name:stack ~arg:"" ~ts:0.0
      ~dur:0.0 ~value:(float_of_int count)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let event_of r i =
  let m = r.r_meta.(i) in
  {
    ev_kind = kind_of_code (m land 3);
    ev_dom = (if m land 4 = 0 then Sim else Wall);
    ev_cat = r.r_cat.(i);
    ev_name = r.r_name.(i);
    ev_arg = r.r_arg.(i);
    ev_ts = r.r_ts.(i);
    ev_dur = r.r_dur.(i);
    ev_value = r.r_value.(i);
  }

(* Oldest surviving event first: when wrapped, the slot about to be
   overwritten ([next]) is the oldest. *)
let events_locked r =
  let live = min r.total r.cap in
  let first = if r.total <= r.cap then 0 else r.next in
  List.init live (fun k -> event_of r ((first + k) mod r.cap))

let with_ring f =
  Mutex.lock mu;
  let v = match !ring with None -> None | Some r -> Some (f r) in
  Mutex.unlock mu;
  v

let events () = Option.value ~default:[] (with_ring events_locked)
let emitted () = Option.value ~default:0 (with_ring (fun r -> r.total))
let capacity () = Option.value ~default:0 (with_ring (fun r -> r.cap))

let dropped () =
  Option.value ~default:0 (with_ring (fun r -> max 0 (r.total - r.cap)))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

type format = Chrome | Folded | Csv

let format_of_path path =
  if Filename.check_suffix path ".folded" then Folded
  else if Filename.check_suffix path ".csv" then Csv
  else Chrome

(* Layer lanes: stable thread ids so Perfetto shows one named track per
   architectural layer in each clock-domain process. *)
let lanes =
  [ ("jsvm", 1); ("turbofan", 2); ("machine", 3); ("experiments", 4);
    ("support", 5) ]

let lane_of_cat cat =
  match List.assoc_opt cat lanes with Some l -> l | None -> 6

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pid_of_dom = function Sim -> 0 | Wall -> 1

(* Chrome trace-event JSON (the "JSON array format"): metadata rows
   name the two clock-domain processes and the per-layer threads, then
   one row per event — "X" complete spans, "i" instants, "C" counters.
   Sim timestamps are cycles rendered as microseconds (1 cycle = 1 us),
   so Perfetto's timeline is the simulated clock. *)
let render_chrome buf evs =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"simulated clock (1 cycle = 1us)\"}},\n";
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"wall clock\"}},\n";
  List.iter
    (fun (cat, lane) ->
      List.iter
        (fun pid ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%S}},\n"
               pid lane cat))
        [ 0; 1 ])
    (lanes @ [ ("misc", 6) ]);
  let first = ref true in
  List.iter
    (fun e ->
      if e.ev_kind <> Sample then begin
        if not !first then Buffer.add_string buf ",\n";
        first := false;
        let common =
          Printf.sprintf "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"cat\":\"%s\""
            (pid_of_dom e.ev_dom)
            (lane_of_cat e.ev_cat)
            e.ev_ts (json_escape e.ev_name) (json_escape e.ev_cat)
        in
        match e.ev_kind with
        | Span ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ph\":\"X\",%s,\"dur\":%.3f,\"args\":{\"detail\":\"%s\"}}"
               common e.ev_dur (json_escape e.ev_arg))
        | Instant ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{\"detail\":\"%s\"}}"
               common (json_escape e.ev_arg))
        | Counter ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ph\":\"C\",%s,\"args\":{\"value\":%g}}" common
               e.ev_value)
        | Sample -> ()
      end)
    evs;
  Buffer.add_string buf "\n]}\n"

(* Collapsed-stack ("folded") format: sample events merged per stack,
   sorted for determinism — pipe into flamegraph.pl or speedscope. *)
let render_folded buf evs =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.ev_kind = Sample then begin
        let c = try Hashtbl.find tbl e.ev_name with Not_found -> 0 in
        Hashtbl.replace tbl e.ev_name (c + int_of_float e.ev_value)
      end)
    evs;
  let stacks = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.iter
    (fun (stack, count) ->
      Buffer.add_string buf (Printf.sprintf "%s %d\n" stack count))
    (List.sort compare stacks)

(* Counter-timeline CSV: one row per counter event, then a per-series
   distribution footer (n / min / quartiles / max via Support.Stats). *)
let render_csv buf evs =
  Buffer.add_string buf "ts,domain,category,name,value\n";
  let series : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.ev_kind = Counter then begin
        Buffer.add_string buf
          (Printf.sprintf "%.3f,%s,%s,%s,%g\n" e.ev_ts
             (match e.ev_dom with Sim -> "sim" | Wall -> "wall")
             e.ev_cat e.ev_name e.ev_value);
        let key = e.ev_cat ^ "/" ^ e.ev_name in
        match Hashtbl.find_opt series key with
        | Some l -> l := e.ev_value :: !l
        | None -> Hashtbl.add series key (ref [ e.ev_value ])
      end)
    evs;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) series [] in
  List.iter
    (fun key ->
      let xs = Array.of_list (List.rev !(Hashtbl.find series key)) in
      let q1, q2, q3 = Support.Stats.quartiles xs in
      let lo, hi = Support.Stats.min_max xs in
      Buffer.add_string buf
        (Printf.sprintf
           "# summary,%s,n=%d,min=%g,q1=%g,median=%g,q3=%g,max=%g\n" key
           (Array.length xs) lo q1 q2 q3 hi))
    (List.sort compare names)

let render fmt buf =
  let evs = events () in
  match fmt with
  | Chrome -> render_chrome buf evs
  | Folded -> render_folded buf evs
  | Csv -> render_csv buf evs

let write ~path =
  let n = min (emitted ()) (max 1 (capacity ())) in
  let buf = Buffer.create 4096 in
  render (format_of_path path) buf;
  match open_out_bin path with
  | exception Sys_error msg ->
    Error (Printf.sprintf "trace not written to %S: %s" path msg)
  | oc ->
    Buffer.output_buffer oc buf;
    close_out oc;
    Ok n

(* ------------------------------------------------------------------ *)
(* Configuration and binary entry points                               *)
(* ------------------------------------------------------------------ *)

let configure ?capacity ~path () =
  (* Probe writability up front so a bad --trace destination is a
     one-line error at startup, not a lost trace at exit. *)
  match open_out_bin path with
  | exception Sys_error msg ->
    Error
      (Printf.sprintf "trace path %S is not writable (%s); tracing disabled"
         path msg)
  | oc ->
    close_out_noerr oc;
    enable ?capacity ();
    Mutex.lock mu;
    out_path := Some path;
    Mutex.unlock mu;
    Ok ()

let finalize () =
  Mutex.lock mu;
  let path = !out_path in
  out_path := None;
  Mutex.unlock mu;
  match path with
  | None -> Ok None
  | Some path -> (
    let r = write ~path in
    disable ();
    match r with Ok n -> Ok (Some (path, n)) | Error m -> Error m)

let setup ?path () =
  let path =
    match path with
    | Some _ -> path
    | None -> (
      match Sys.getenv_opt "VSPEC_TRACE" with
      | None | Some "" -> None
      | Some p -> Some p)
  in
  match path with
  | None -> Ok false
  | Some path -> (
    match configure ~path () with
    | Error msg -> Error msg
    | Ok () ->
      at_exit (fun () ->
          match finalize () with
          | Ok (Some (p, n)) ->
            Printf.eprintf "[vspec] trace: %d events -> %s\n%!" n p
          | Ok None -> ()
          | Error msg -> Printf.eprintf "vspec: warning: %s\n%!" msg);
      Ok true)
