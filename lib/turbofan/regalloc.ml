type location =
  | L_reg of int
  | L_freg of int
  | L_slot of int
  | L_fslot of int
  | L_const of int
  | L_fconst of float
  | L_none

type t = { loc : location array; gp_slots : int; fp_slots : int }

let first_scratch = 15
let num_alloc_gp = 15
let num_alloc_fp = 10

type interval = {
  node : int;
  start : int;
  mutable stop : int;
  is_float : bool;
}

let allocate (g : Son.t) =
  let n = g.Son.n_nodes in
  let pos = Array.make n (-1) in
  let term_pos = Array.make g.Son.n_blocks 0 in
  let counter = ref 1 in
  (* Parameters define at position 0. *)
  for i = 0 to n - 1 do
    match (Son.node g i).Son.op with
    | Son.N_param _ -> pos.(i) <- 0
    | _ -> ()
  done;
  for b = 0 to g.Son.n_blocks - 1 do
    List.iter
      (fun i ->
        pos.(i) <- !counter;
        incr counter)
      (Son.block g b).Son.body;
    term_pos.(b) <- !counter;
    incr counter
  done;

  let is_const i =
    match (Son.node g i).Son.op with
    | Son.N_const _ | Son.N_fconst _ -> true
    | _ -> false
  in
  let live = Array.make n false in
  let stop = Array.make n (-1) in
  let start = Array.make n max_int in
  let use v p =
    if v >= 0 && not (is_const v) && pos.(v) >= 0 then begin
      live.(v) <- true;
      if p > stop.(v) then stop.(v) <- p
    end
  in
  (* A phi's location is written at every predecessor end, possibly far
     before the phi's own position: its interval must start there. *)
  let write_at v p = if p < start.(v) then start.(v) <- p in
  (* Defs are "used" at their own position so unused-but-effectful nodes
     get empty intervals. *)
  for b = 0 to g.Son.n_blocks - 1 do
    let blk = Son.block g b in
    List.iter
      (fun i ->
        let nd = Son.node g i in
        let p = pos.(i) in
        (match nd.Son.op with
        | Son.N_phi ->
          (* Inputs are consumed, and the phi's own location written, at
             the end of each predecessor. *)
          List.iteri
            (fun k pred ->
              let tp = term_pos.(pred) in
              if k < Array.length nd.Son.inputs then use nd.Son.inputs.(k) tp;
              use i tp;
              write_at i tp)
            blk.Son.preds
        | _ -> Array.iter (fun v -> use v p) nd.Son.inputs);
        (match nd.Son.fs with
        | None -> ()
        | Some fs ->
          Array.iter (fun v -> use v p) fs.Son.fs_regs;
          use fs.Son.fs_acc p))
      blk.Son.body;
    match blk.Son.term with
    | Son.T_branch { cond; _ } ->
      (* The branch re-emits the compare from its operands AFTER the phi
         moves of this block's successors; extend past the phi-write
         position so a phi cannot reuse an operand's register. *)
      Array.iter (fun v -> use v (term_pos.(b) + 1)) (Son.node g cond).Son.inputs
    | Son.T_return v -> use v (term_pos.(b) + 1)
    | Son.T_none | Son.T_goto _ -> ()
  done;

  (* Call positions for the crossing test. *)
  let calls = ref [] in
  for b = 0 to g.Son.n_blocks - 1 do
    List.iter
      (fun i ->
        match (Son.node g i).Son.op with
        | Son.N_call_builtin _ | Son.N_call_js _ -> calls := pos.(i) :: !calls
        | _ -> ())
      (Son.block g b).Son.body
  done;
  let calls = Array.of_list (List.sort compare !calls) in
  let crosses_call s e =
    (* any call position p with s < p < e *)
    let rec bs lo hi =
      if lo >= hi then false
      else begin
        let mid = (lo + hi) / 2 in
        if calls.(mid) <= s then bs (mid + 1) hi
        else calls.(mid) < e || bs lo mid
      end
    in
    bs 0 (Array.length calls)
  in

  let loc = Array.make n L_none in
  (* Constants are rematerialized. *)
  for i = 0 to n - 1 do
    match (Son.node g i).Son.op with
    | Son.N_const c -> loc.(i) <- L_const c
    | Son.N_fconst f -> loc.(i) <- L_fconst f
    | _ -> ()
  done;

  let intervals = ref [] in
  for i = 0 to n - 1 do
    if live.(i) && not (is_const i) then begin
      let nd = Son.node g i in
      (* Nodes that produce no value never need a location. *)
      match nd.Son.op with
      | Son.N_store _ | Son.N_check _ | Son.N_soft_deopt _ -> ()
      | _ ->
        let s0 = min pos.(i) start.(i) in
        intervals :=
          { node = i; start = s0; stop = max stop.(i) pos.(i);
            is_float = nd.Son.kind = Son.K_float }
          :: !intervals
    end
  done;
  let intervals =
    List.sort (fun a b -> compare (a.start, a.node) (b.start, b.node)) !intervals
  in

  let next_slot = ref 3 (* slot 0 = closure, 1-2 = saved fp/lr *) in
  let next_fslot = ref 0 in
  let fresh_slot is_float =
    if is_float then begin
      let s = !next_fslot in
      incr next_fslot;
      L_fslot s
    end
    else begin
      let s = !next_slot in
      incr next_slot;
      L_slot s
    end
  in

  (* Two independent scans (GP / FP). *)
  let scan ~is_float ~num_regs =
    let active : interval array = Array.make num_regs { node = -1; start = 0; stop = -1; is_float } in
    let reg_of = Hashtbl.create 32 in
    List.iter
      (fun itv ->
        if itv.is_float = is_float then begin
          if crosses_call itv.start itv.stop then
            loc.(itv.node) <- fresh_slot is_float
          else begin
            (* Find a register whose active interval has expired. *)
            let found = ref (-1) in
            for r = 0 to num_regs - 1 do
              if !found < 0 && active.(r).stop <= itv.start then found := r
            done;
            if !found >= 0 then begin
              active.(!found) <- itv;
              Hashtbl.replace reg_of itv.node !found;
              loc.(itv.node) <- (if is_float then L_freg !found else L_reg !found)
            end
            else begin
              (* Spill the active interval with the furthest end, or the
                 current one. *)
              let victim = ref 0 in
              for r = 1 to num_regs - 1 do
                if active.(r).stop > active.(!victim).stop then victim := r
              done;
              if active.(!victim).stop > itv.stop then begin
                let v = active.(!victim) in
                loc.(v.node) <- fresh_slot is_float;
                Hashtbl.remove reg_of v.node;
                active.(!victim) <- itv;
                Hashtbl.replace reg_of itv.node !victim;
                loc.(itv.node) <-
                  (if is_float then L_freg !victim else L_reg !victim)
              end
              else loc.(itv.node) <- fresh_slot is_float
            end
          end
        end)
      intervals
  in
  scan ~is_float:false ~num_regs:num_alloc_gp;
  scan ~is_float:true ~num_regs:num_alloc_fp;
  { loc; gp_slots = !next_slot; fp_slots = !next_fslot }
