(** The optimizing compiler's graph IR.

    A sea-of-nodes-inspired SSA graph, linearized into basic blocks:
    nodes are pure or effectful operations connected by value edges;
    deoptimization checks are first-class {!N_check} nodes that carry
    their own frame state (the checkpoint captured when they were
    created, paper Section II-B1).  Because checks own both their
    condition and their frame state, short-circuiting a check (paper
    Fig 5) makes its condition computation — including ancestor loads
    such as the array length of a bounds check — dead, and
    {!dead_code_elimination} removes the whole slice. *)

type value_kind =
  | K_tagged   (** a tagged word (SMI or pointer) *)
  | K_float    (** unboxed float64 *)
  | K_int32    (** untagged machine integer *)
  | K_bool     (** comparison result *)

(** How a check/branch condition is computed. *)
type cmp_kind =
  | C_tst_imm of int        (** inputs [a]: flags from a AND imm *)
  | C_cmp_imm of int        (** inputs [a]: flags from a - imm *)
  | C_cmp_reg               (** inputs [a; b] *)
  | C_cmp_mem of int        (** inputs [a; base]: X64-folded a - [base+off] *)
  | C_fcmp                  (** inputs [a; b] floats *)
  | C_always                (** soft deopt: unconditional *)

type mem_kind = M_tagged | M_float

type frame_state = {
  fs_bc_pc : int;
  fs_regs : int array;   (** node id per interpreter register; -1 = dead *)
  fs_acc : int;          (** node id or -1 *)
}

type op =
  | N_param of int                    (** machine argument index *)
  | N_const of int                    (** tagged constant *)
  | N_fconst of float
  | N_int_binop of Insn.alu_op        (** untagged 32-bit *)
  | N_smi_add_checked                 (** tagged + tagged, deopt on overflow *)
  | N_smi_sub_checked
  | N_smi_mul_checked                 (** includes the -0 deopt *)
  | N_smi_div_checked                 (** div-by-zero / lost-precision deopts *)
  | N_smi_mod_checked
  | N_smi_untag
  | N_smi_tag
  | N_smi_tag_checked                 (** deopt on overflow *)
  | N_float_binop of Insn.falu_op
  | N_int_to_float
  | N_float_to_int                    (** truncating float64 -> int32 *)
  | N_to_float                        (** tagged number -> float64, map-checked *)
  | N_cmp of { ckind : cmp_kind; cond : Insn.cond }  (** boolean value *)
  | N_load of { offset : int; scale : int; kind : mem_kind }
      (** inputs [base] or [base; index] *)
  | N_store of { offset : int; scale : int; kind : mem_kind }
      (** inputs [base; value] or [base; index; value] *)
  | N_check of { reason : Insn.deopt_reason; ckind : cmp_kind; cond : Insn.cond }
      (** condition TRUE means the speculation failed: deoptimize *)
  | N_soft_deopt of Insn.deopt_reason
  | N_js_ldr_smi of { offset : int; scale : int }
      (** fused load + Not-a-SMI check + untag (the ISA extension);
          result is K_int32 *)
  | N_js_chk_map of { offset : int; expected : int }
      (** future-work prototype: fused map-word load + compare with
          branch-free bailout (paper Section VII) *)
  | N_call_builtin of { builtin : int; argc : int }
  | N_call_js of { target : int option; argc : int }
      (** inputs [closure; this; args...] *)
  | N_stack_check
      (** V8's interrupt/stack guard, emitted at function entry and loop
          back-edges: a limit-cell load, compare, and taken branch over a
          never-executed runtime call (main-line work, not a deopt
          check) *)
  | N_phi

type node = {
  nid : int;
  mutable op : op;
  mutable inputs : int array;
  mutable fs : frame_state option;   (** checks and deopts only *)
  mutable kind : value_kind;
  mutable block : int;
}

type terminator =
  | T_none
  | T_goto of int
  | T_branch of { cond : int; if_true : int; if_false : int }
  | T_return of int

type block = {
  bid : int;
  mutable body : int list;           (** node ids in execution order *)
  mutable term : terminator;
  mutable preds : int list;
  mutable is_loop_header : bool;
}

type t = {
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable blocks : block array;
  mutable n_blocks : int;
  fname : string;
}

val create : string -> t
val new_block : t -> block
val node : t -> int -> node
val block : t -> int -> block

val add_node :
  t -> block -> ?fs:frame_state -> ?kind:value_kind -> op -> int array -> int
(** Appends to the block body and returns the node id. *)

val add_floating : t -> ?kind:value_kind -> op -> int array -> int
(** A node not in any block yet (phis are placed explicitly). *)

val prepend_phi : t -> block -> int -> unit
val set_term : t -> block -> terminator -> unit

val seal : t -> unit
(** Block bodies are accumulated in reverse; [seal] puts every block
    into execution order.  Must be called once, after graph building and
    before any pass reads block bodies. *)

val is_effectful : op -> bool
(** Effectful nodes are DCE roots: stores, calls, checks, deopts. *)

val check_group_of : node -> Insn.check_group option

val dead_code_elimination : t -> int
(** Removes nodes not reachable from the roots; returns the number of
    nodes removed. *)

val node_count : t -> int
(** Live nodes (after DCE bookkeeping). *)

val to_string : t -> string
(** Human-readable graph dump. *)
