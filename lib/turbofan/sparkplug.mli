(** SparkPlug-style baseline compiler (paper Section I-A).

    A non-optimizing single-pass translation from bytecode to machine
    code: interpreter registers live in frame slots, the accumulator in
    a frame slot, and every semantic operation goes through the generic
    runtime builtins.  No speculation, no type feedback, no
    deoptimization checks — the code can never deopt, only run slower
    than TurboFan output.  Like the real SparkPlug, it mostly removes
    interpreter dispatch overhead. *)

exception Unsupported of string

val compile :
  code_id:int ->
  base_addr:int ->
  arch:Arch.t ->
  Runtime.t ->
  Runtime.func_rt ->
  Code.t
(** Raises {!Unsupported} for shapes the baseline does not handle
    (e.g. calls with more arguments than the generic call builtin can
    take). *)
