(** Linear-scan register allocation over graph nodes.

    Virtual registers are SSA node ids.  Live intervals run from the
    defining position to the last use, where uses include instruction
    inputs, frame-state references (deopt metadata keeps values alive,
    as in TurboFan), phi inputs (used at the end of the corresponding
    predecessor), phi writes (a phi's location is written at every
    predecessor end), and terminator operands.

    All registers are caller-saved, so any interval crossing a call
    lives in a spill slot.  Constants are rematerialized at use and
    never allocated.  r15-r17 and d10-d11 are reserved as scratch. *)

type location =
  | L_reg of int
  | L_freg of int
  | L_slot of int
  | L_fslot of int
  | L_const of int
  | L_fconst of float
  | L_none

type t = {
  loc : location array;         (** node id -> location *)
  gp_slots : int;               (** spill frame size (slot 0 = closure) *)
  fp_slots : int;
}

val first_scratch : int (* = 15 *)
val num_alloc_gp : int  (* = 15: r0..r14 *)
val num_alloc_fp : int  (* = 10: d0..d9 *)

val allocate : Son.t -> t
