type env_consts = {
  true_word : int;
  false_word : int;
  undefined_word : int;
  heap_number_map_ptr : int;
  stack_limit_cell : int;   (* tagged pointer to the interrupt cell *)
  interrupt_builtin : int;
}

(* Scratch registers reserved by the allocator. *)
let sc0 = Regalloc.first_scratch (* 15 *)
let sc1 = Regalloc.first_scratch + 1
let sc2 = Regalloc.first_scratch + 2
let fsc0 = Regalloc.num_alloc_fp (* d10 *)
let fsc1 = Regalloc.num_alloc_fp + 1

type e = {
  g : Son.t;
  alloc : Regalloc.t;
  arch : Arch.t;
  remove_deopt_branches : bool;
  consts : env_consts;
  mutable out : Insn.t list;      (* reversed *)
  mutable next_label : int;
  mutable deopts : Code.deopt_point list;  (* reversed *)
  mutable n_deopts : int;
  mutable default_prov : Insn.provenance;
      (* applied to instructions emitted without explicit provenance;
         set while emitting nodes that only feed checks *)
}

let emit e ?prov ?comment kind =
  let prov = match prov with Some p -> Some p | None ->
    (match e.default_prov with Insn.Main_line -> None | p -> Some p)
  in
  e.out <- Insn.make ?prov ?comment kind :: e.out

let fresh_label e =
  let l = e.next_label in
  e.next_label <- l + 1;
  l

let loc_of e n = e.alloc.Regalloc.loc.(n)

(* Materialize a GP value into a register (using [sc] when it is not
   already in one). *)
let gp e loc sc =
  match loc with
  | Regalloc.L_reg r -> r
  | Regalloc.L_slot s ->
    emit e (Insn.Reload (sc, s));
    sc
  | Regalloc.L_const c ->
    emit e (Insn.Mov (sc, Insn.Imm c));
    sc
  | Regalloc.L_none | Regalloc.L_freg _ | Regalloc.L_fslot _
  | Regalloc.L_fconst _ ->
    invalid_arg "Codegen.gp: not a GP location"

let fp e loc sc =
  match loc with
  | Regalloc.L_freg f -> f
  | Regalloc.L_fslot s ->
    emit e (Insn.Reload_f (sc, s));
    sc
  | Regalloc.L_fconst v ->
    emit e (Insn.Fmov_imm (sc, v));
    sc
  | Regalloc.L_none | Regalloc.L_reg _ | Regalloc.L_slot _ | Regalloc.L_const _
    ->
    invalid_arg "Codegen.fp: not an FP location"

let input e n i = (Son.node e.g n).Son.inputs.(i)
let gpi e n i sc = gp e (loc_of e (input e n i)) sc
let fpi e n i sc = fp e (loc_of e (input e n i)) sc

(* Right-hand operands that are small constants become immediates. *)
let imm_fits c = c >= -4096 && c <= 4095

let operand_i e n i sc =
  match loc_of e (input e n i) with
  | Regalloc.L_const c when imm_fits c -> Insn.Imm c
  | loc -> Insn.Reg (gp e loc sc)

(* Run [k dst] with the destination register of node [n], spilling
   afterwards if the node lives in a slot. *)
let def_gp e n k =
  match loc_of e n with
  | Regalloc.L_reg r -> k r
  | Regalloc.L_slot s ->
    k sc2;
    emit e (Insn.Spill (s, sc2))
  | Regalloc.L_none -> k sc2 (* value unused; effect may still matter *)
  | _ -> invalid_arg "Codegen.def_gp: FP location"

let def_fp e n k =
  match loc_of e n with
  | Regalloc.L_freg f -> k f
  | Regalloc.L_fslot s ->
    k fsc0;
    emit e (Insn.Spill_f (s, fsc0))
  | Regalloc.L_none -> k fsc0
  | _ -> invalid_arg "Codegen.def_fp: GP location"

(* ------------------------------------------------------------------ *)
(* Deopt points                                                        *)
(* ------------------------------------------------------------------ *)

let rec frame_value e n =
  if n < 0 then Code.Fv_dead
  else frame_value_live e n

and frame_value_live e n =
  let kind = (Son.node e.g n).Son.kind in
  match (loc_of e n, kind) with
  | Regalloc.L_reg r, Son.K_int32 -> Code.Fv_reg32 r
  | Regalloc.L_reg r, _ -> Code.Fv_reg r
  | Regalloc.L_slot s, Son.K_int32 -> Code.Fv_slot32 s
  | Regalloc.L_slot s, _ -> Code.Fv_slot s
  | Regalloc.L_freg f, _ -> Code.Fv_freg f
  | Regalloc.L_fslot s, _ -> Code.Fv_fslot s
  | Regalloc.L_const c, _ -> Code.Fv_const c
  | Regalloc.L_fconst v, _ -> Code.Fv_fconst v
  | Regalloc.L_none, _ -> Code.Fv_dead

let new_deopt e reason (fs : Son.frame_state) =
  let dp_id = e.n_deopts in
  e.n_deopts <- dp_id + 1;
  let point =
    {
      Code.dp_id;
      reason;
      bc_pc = fs.Son.fs_bc_pc;
      frame = Array.map (fun v -> frame_value e v) fs.Son.fs_regs;
      accumulator = frame_value e fs.Son.fs_acc;
    }
  in
  e.deopts <- point :: e.deopts;
  dp_id

let check_prov group role = Insn.Check { group; role }

(* Emit the deopt branch for a check (respecting branch-removal mode). *)
let emit_deopt_branch e ~cond ~reason ~fs =
  let group = Insn.group_of_reason reason in
  if e.remove_deopt_branches then ()
  else begin
    let dp = new_deopt e reason fs in
    emit e ~prov:(check_prov group Insn.Role_branch) (Insn.Deopt_if (cond, dp))
  end

(* ------------------------------------------------------------------ *)
(* Condition emission (shared by checks, compares and branches)        *)
(* ------------------------------------------------------------------ *)

let emit_condition e ?prov n =
  let nd = Son.node e.g n in
  let ckind, _cond =
    match nd.Son.op with
    | Son.N_cmp { ckind; cond } -> (ckind, cond)
    | Son.N_check { ckind; cond; _ } -> (ckind, cond)
    | _ -> invalid_arg "Codegen.emit_condition: not a condition node"
  in
  match ckind with
  | Son.C_tst_imm imm ->
    let a = gpi e n 0 sc0 in
    emit e ?prov (Insn.Tst (a, Insn.Imm imm))
  | Son.C_cmp_imm imm ->
    let a = gpi e n 0 sc0 in
    emit e ?prov (Insn.Cmp (a, Insn.Imm imm))
  | Son.C_cmp_reg ->
    let a = gpi e n 0 sc0 in
    let b = operand_i e n 1 sc1 in
    emit e ?prov (Insn.Cmp (a, b))
  | Son.C_cmp_mem offset ->
    let a = gpi e n 0 sc0 in
    let base = gpi e n 1 sc1 in
    emit e ?prov (Insn.Cmp_mem (a, Insn.mk_addr ~offset base))
  | Son.C_fcmp ->
    let a = fpi e n 0 fsc0 in
    let b = fpi e n 1 fsc1 in
    emit e ?prov (Insn.Fcmp (a, b))
  | Son.C_always ->
    emit e ?prov (Insn.Cmp (sc0, Insn.Reg sc0))

(* ------------------------------------------------------------------ *)
(* Parallel moves                                                      *)
(* ------------------------------------------------------------------ *)

type move = { src : Regalloc.location; dst : Regalloc.location }

let is_gp_loc = function
  | Regalloc.L_reg _ | Regalloc.L_slot _ | Regalloc.L_const _ -> true
  | _ -> false

let emit_single_move e { src; dst } =
  if src = dst then ()
  else begin
    match (dst, src) with
    | Regalloc.L_reg d, Regalloc.L_reg s -> emit e (Insn.Mov (d, Insn.Reg s))
    | Regalloc.L_reg d, Regalloc.L_const c -> emit e (Insn.Mov (d, Insn.Imm c))
    | Regalloc.L_reg d, Regalloc.L_slot s -> emit e (Insn.Reload (d, s))
    | Regalloc.L_slot d, Regalloc.L_reg s -> emit e (Insn.Spill (d, s))
    | Regalloc.L_slot d, Regalloc.L_const c ->
      emit e (Insn.Mov (sc0, Insn.Imm c));
      emit e (Insn.Spill (d, sc0))
    | Regalloc.L_slot d, Regalloc.L_slot s ->
      emit e (Insn.Reload (sc0, s));
      emit e (Insn.Spill (d, sc0))
    | Regalloc.L_freg d, Regalloc.L_freg s -> emit e (Insn.Fmov (d, s))
    | Regalloc.L_freg d, Regalloc.L_fconst v -> emit e (Insn.Fmov_imm (d, v))
    | Regalloc.L_freg d, Regalloc.L_fslot s -> emit e (Insn.Reload_f (d, s))
    | Regalloc.L_fslot d, Regalloc.L_freg s -> emit e (Insn.Spill_f (d, s))
    | Regalloc.L_fslot d, Regalloc.L_fconst v ->
      emit e (Insn.Fmov_imm (fsc0, v));
      emit e (Insn.Spill_f (d, fsc0))
    | Regalloc.L_fslot d, Regalloc.L_fslot s ->
      emit e (Insn.Reload_f (fsc0, s));
      emit e (Insn.Spill_f (d, fsc0))
    | _ -> invalid_arg "Codegen.emit_single_move: kind mismatch"
  end

(* Standard parallel-move resolution: repeatedly emit moves whose
   destination is not the source of a pending move; break register
   cycles through a scratch. *)
let parallel_moves e moves =
  let pending = ref (List.filter (fun m -> m.src <> m.dst) moves) in
  let blocked m =
    List.exists (fun other -> other.src = m.dst) !pending
  in
  let progress = ref true in
  while !pending <> [] do
    if !progress then begin
      progress := false;
      let ready, rest = List.partition (fun m -> not (blocked m)) !pending in
      if ready <> [] then begin
        List.iter (emit_single_move e) ready;
        pending := rest;
        progress := true
      end
      else begin
        (* Cycle: all remaining moves are register-to-register within a
           permutation.  Free one source via scratch. *)
        match !pending with
        | m :: rest ->
          let scratch_loc =
            if is_gp_loc m.src then Regalloc.L_reg sc1 else Regalloc.L_freg fsc1
          in
          emit_single_move e { src = m.src; dst = scratch_loc };
          pending :=
            { src = scratch_loc; dst = m.dst }
            :: List.map
                 (fun o -> if o.src = m.src then { o with src = scratch_loc } else o)
                 rest;
          progress := true
        | [] -> ()
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Node emission                                                       *)
(* ------------------------------------------------------------------ *)

let mem_operand e n ~base_idx ~offset ~scale ~sc_base ~sc_index =
  let base = gpi e n base_idx sc_base in
  let nd = Son.node e.g n in
  if Array.length nd.Son.inputs > base_idx + 1 && scale > 0 then begin
    let index_node = input e n (base_idx + 1) in
    let index = gpi e n (base_idx + 1) sc_index in
    (* Tagged SMI indexes carry a factor of two; an untagged (fused
       jsldrsmi) index doubles the scale instead. *)
    let scale =
      if (Son.node e.g index_node).Son.kind = Son.K_int32 then 2 * scale
      else scale
    in
    Insn.mk_addr ~index ~scale ~offset base
  end
  else Insn.mk_addr ~offset base

let emit_node e n =
  let nd = Son.node e.g n in
  match nd.Son.op with
  | Son.N_param _ | Son.N_const _ | Son.N_fconst _ | Son.N_phi -> ()
  | Son.N_int_binop op ->
    let a = gpi e n 0 sc0 in
    let b = operand_i e n 1 sc1 in
    def_gp e n (fun dst ->
        emit e (Insn.Alu { op; dst; src = a; rhs = b; set_flags = false }))
  | Son.N_smi_add_checked | Son.N_smi_sub_checked ->
    let op = if nd.Son.op = Son.N_smi_add_checked then Insn.Add else Insn.Sub in
    let a = gpi e n 0 sc0 in
    let b = operand_i e n 1 sc1 in
    def_gp e n (fun dst ->
        emit e (Insn.Alu { op; dst; src = a; rhs = b; set_flags = true }));
    emit_deopt_branch e ~cond:Insn.Vs ~reason:Insn.Overflow
      ~fs:(Option.get nd.Son.fs)
  | Son.N_smi_mul_checked ->
    let fs = Option.get nd.Son.fs in
    (* Copy operands to scratches: the -0 check reads them after the
       destination (which may alias an operand) is written. *)
    let a = gpi e n 0 sc0 in
    if a <> sc0 then emit e (Insn.Mov (sc0, Insn.Reg a));
    let b = gpi e n 1 sc1 in
    if b <> sc1 then emit e (Insn.Mov (sc1, Insn.Reg b));
    (* A raw (already untagged) multiplicand — e.g. from a fused SMI
       load — skips the untagging shift entirely. *)
    let raw0 = (Son.node e.g (input e n 0)).Son.kind = Son.K_int32 in
    if raw0 then emit e (Insn.Mov (sc2, Insn.Reg sc0))
    else
      emit e
        (Insn.Alu { op = Insn.Asr; dst = sc2; src = sc0; rhs = Insn.Imm 1;
                    set_flags = false });
    def_gp e n (fun dst ->
        emit e
          (Insn.Alu { op = Insn.Mul; dst; src = sc2; rhs = Insn.Reg sc1;
                      set_flags = true });
        emit_deopt_branch e ~cond:Insn.Vs ~reason:Insn.Overflow ~fs;
        (* -0: if the result is zero and either operand negative, deopt. *)
        let ok = fresh_label e in
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Cmp (dst, Insn.Imm 0));
        emit e (Insn.Bcond (Insn.Ne, ok));
        (* Write the sign test into sc0, never the result register. *)
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Alu { op = Insn.Orr; dst = sc0; src = sc0; rhs = Insn.Reg sc1;
                      set_flags = true });
        emit_deopt_branch e ~cond:Insn.Lt ~reason:Insn.Minus_zero ~fs;
        emit e (Insn.Label ok))
  | Son.N_smi_div_checked ->
    let fs = Option.get nd.Son.fs in
    let a = gpi e n 0 sc0 in
    if a <> sc0 then emit e (Insn.Mov (sc0, Insn.Reg a));
    let b = gpi e n 1 sc1 in
    if b <> sc1 then emit e (Insn.Mov (sc1, Insn.Reg b));
    emit e
      ~prov:(check_prov Insn.G_arith Insn.Role_condition)
      (Insn.Cmp (sc1, Insn.Imm 0));
    emit_deopt_branch e ~cond:Insn.Eq ~reason:Insn.Division_by_zero ~fs;
    (* Untag both (a raw dividend skips its shift), divide, verify there
       was no remainder. *)
    if (Son.node e.g (input e n 0)).Son.kind <> Son.K_int32 then
      emit e (Insn.Alu { op = Insn.Asr; dst = sc0; src = sc0; rhs = Insn.Imm 1; set_flags = false });
    emit e (Insn.Alu { op = Insn.Asr; dst = sc1; src = sc1; rhs = Insn.Imm 1; set_flags = false });
    emit e (Insn.Alu { op = Insn.Sdiv; dst = sc2; src = sc0; rhs = Insn.Reg sc1; set_flags = false });
    (* remainder = a - q*b *)
    def_gp e n (fun dst ->
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Alu { op = Insn.Mul; dst = sc1; src = sc2; rhs = Insn.Reg sc1; set_flags = false });
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Cmp (sc1, Insn.Reg sc0));
        emit_deopt_branch e ~cond:Insn.Ne ~reason:Insn.Lost_precision ~fs;
        (* -0: q = 0 with negative dividend. *)
        let ok = fresh_label e in
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Cmp (sc2, Insn.Imm 0));
        emit e (Insn.Bcond (Insn.Ne, ok));
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Cmp (sc0, Insn.Imm 0));
        emit_deopt_branch e ~cond:Insn.Lt ~reason:Insn.Minus_zero ~fs;
        emit e (Insn.Label ok);
        (* Retag with overflow check. *)
        emit e (Insn.Alu { op = Insn.Add; dst; src = sc2; rhs = Insn.Reg sc2; set_flags = true });
        emit_deopt_branch e ~cond:Insn.Vs ~reason:Insn.Overflow ~fs)
  | Son.N_smi_mod_checked ->
    let fs = Option.get nd.Son.fs in
    let a = gpi e n 0 sc0 in
    if a <> sc0 then emit e (Insn.Mov (sc0, Insn.Reg a));
    let b = gpi e n 1 sc1 in
    if b <> sc1 then emit e (Insn.Mov (sc1, Insn.Reg b));
    emit e
      ~prov:(check_prov Insn.G_arith Insn.Role_condition)
      (Insn.Cmp (sc1, Insn.Imm 0));
    emit_deopt_branch e ~cond:Insn.Eq ~reason:Insn.Division_by_zero
      ~fs;
    if (Son.node e.g (input e n 0)).Son.kind <> Son.K_int32 then
      emit e (Insn.Alu { op = Insn.Asr; dst = sc0; src = sc0; rhs = Insn.Imm 1; set_flags = false });
    emit e (Insn.Alu { op = Insn.Asr; dst = sc1; src = sc1; rhs = Insn.Imm 1; set_flags = false });
    def_gp e n (fun dst ->
        emit e (Insn.Alu { op = Insn.Smod; dst = sc2; src = sc0; rhs = Insn.Reg sc1; set_flags = false });
        (* -0: zero result from a negative dividend. *)
        let ok = fresh_label e in
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Cmp (sc2, Insn.Imm 0));
        emit e (Insn.Bcond (Insn.Ne, ok));
        emit e
          ~prov:(check_prov Insn.G_arith Insn.Role_condition)
          (Insn.Cmp (sc0, Insn.Imm 0));
        emit_deopt_branch e ~cond:Insn.Lt ~reason:Insn.Minus_zero ~fs;
        emit e (Insn.Label ok);
        emit e (Insn.Alu { op = Insn.Lsl; dst; src = sc2; rhs = Insn.Imm 1; set_flags = false }))
  | Son.N_smi_untag ->
    let a = gpi e n 0 sc0 in
    def_gp e n (fun dst ->
        emit e (Insn.Alu { op = Insn.Asr; dst; src = a; rhs = Insn.Imm 1; set_flags = false }))
  | Son.N_smi_tag ->
    let a = gpi e n 0 sc0 in
    def_gp e n (fun dst ->
        emit e (Insn.Alu { op = Insn.Lsl; dst; src = a; rhs = Insn.Imm 1; set_flags = false }))
  | Son.N_smi_tag_checked ->
    let a = gpi e n 0 sc0 in
    def_gp e n (fun dst ->
        emit e (Insn.Alu { op = Insn.Add; dst; src = a; rhs = Insn.Reg a; set_flags = true }));
    emit_deopt_branch e ~cond:Insn.Vs ~reason:Insn.Overflow
      ~fs:(Option.get nd.Son.fs)
  | Son.N_float_binop op ->
    let a = fpi e n 0 fsc0 in
    let b = fpi e n 1 fsc1 in
    def_fp e n (fun dst -> emit e (Insn.Falu { op; dst; a; b }))
  | Son.N_int_to_float ->
    let a = gpi e n 0 sc0 in
    def_fp e n (fun dst -> emit e (Insn.Scvtf (dst, a)))
  | Son.N_float_to_int ->
    let a = fpi e n 0 fsc0 in
    def_gp e n (fun dst -> emit e (Insn.Fcvtzs (dst, a)))
  | Son.N_to_float ->
    (* tagged number -> float64 with an SMI fast path and a map-checked
       heap-number slow path (paper: Type check). *)
    let fs = Option.get nd.Son.fs in
    let a = gpi e n 0 sc0 in
    if a <> sc0 then emit e (Insn.Mov (sc0, Insn.Reg a));
    let heap_path = fresh_label e in
    let done_l = fresh_label e in
    def_fp e n (fun dst ->
        emit e (Insn.Tst (sc0, Insn.Imm 1));
        emit e (Insn.Bcond (Insn.Ne, heap_path));
        emit e (Insn.Alu { op = Insn.Asr; dst = sc1; src = sc0; rhs = Insn.Imm 1; set_flags = false });
        emit e (Insn.Scvtf (dst, sc1));
        emit e (Insn.B done_l);
        emit e (Insn.Label heap_path);
        (if Arch.can_fold_memory_operand e.arch then begin
           emit e
             ~prov:(check_prov Insn.G_type Insn.Role_condition)
             (Insn.Mov (sc1, Insn.Imm e.consts.heap_number_map_ptr));
           emit e
             ~prov:(check_prov Insn.G_type Insn.Role_condition)
             (Insn.Cmp_mem (sc1, Insn.mk_addr ~offset:(-1) sc0))
         end
         else begin
           emit e
             ~prov:(check_prov Insn.G_type Insn.Role_condition)
             (Insn.Ldr (sc1, Insn.mk_addr ~offset:(-1) sc0));
           emit e
             ~prov:(check_prov Insn.G_type Insn.Role_condition)
             (Insn.Mov (sc2, Insn.Imm e.consts.heap_number_map_ptr));
           emit e
             ~prov:(check_prov Insn.G_type Insn.Role_condition)
             (Insn.Cmp (sc1, Insn.Reg sc2))
         end);
        emit_deopt_branch e ~cond:Insn.Ne ~reason:Insn.Not_a_number ~fs;
        emit e (Insn.Ldr_f (dst, Insn.mk_addr ~offset:1 sc0));
        emit e (Insn.Label done_l))
  | Son.N_cmp { cond; _ } ->
    (* Materialized as a boolean oddball; branches re-emit the condition
       themselves. *)
    if loc_of e n <> Regalloc.L_none then begin
      emit_condition e n;
      let done_l = fresh_label e in
      def_gp e n (fun dst ->
          emit e (Insn.Mov (dst, Insn.Imm e.consts.true_word));
          emit e (Insn.Bcond (cond, done_l));
          emit e (Insn.Mov (dst, Insn.Imm e.consts.false_word));
          emit e (Insn.Label done_l))
    end
  | Son.N_load { offset; scale; kind } -> (
    if loc_of e n = Regalloc.L_none then ()
    else begin
      let addr = mem_operand e n ~base_idx:0 ~offset ~scale ~sc_base:sc0 ~sc_index:sc1 in
      match kind with
      | Son.M_tagged -> def_gp e n (fun dst -> emit e (Insn.Ldr (dst, addr)))
      | Son.M_float -> def_fp e n (fun dst -> emit e (Insn.Ldr_f (dst, addr)))
    end)
  | Son.N_store { offset; scale; kind } -> (
    let n_inputs = Array.length nd.Son.inputs in
    let value_idx = n_inputs - 1 in
    match kind with
    | Son.M_tagged ->
      let addr =
        if n_inputs = 3 then
          mem_operand e n ~base_idx:0 ~offset ~scale ~sc_base:sc0 ~sc_index:sc1
        else begin
          let base = gpi e n 0 sc0 in
          Insn.mk_addr ~offset base
        end
      in
      let v = gp e (loc_of e (input e n value_idx)) sc2 in
      emit e (Insn.Str (addr, v));
      (* Generational write barrier on stores that may write a pointer
         (elided when the value is statically an SMI, as in V8). *)
      let value_static_smi =
        match (Son.node e.g (input e n value_idx)).Son.op with
        | Son.N_const c -> c land 1 = 0
        | Son.N_smi_add_checked | Son.N_smi_sub_checked
        | Son.N_smi_mul_checked | Son.N_smi_div_checked
        | Son.N_smi_mod_checked | Son.N_smi_tag | Son.N_smi_tag_checked ->
          true
        | _ -> false
      in
      if not value_static_smi then begin
        let skip = fresh_label e in
        emit e ~comment:"write barrier"
          (Insn.Mov (sc2, Insn.Imm e.consts.stack_limit_cell));
        emit e (Insn.Ldr (sc2, Insn.mk_addr ~offset:1 sc2));
        emit e (Insn.Tst (sc2, Insn.Imm 1));
        emit e (Insn.Bcond (Insn.Eq, skip));
        emit e (Insn.Call (Insn.Builtin e.consts.interrupt_builtin, 1));
        emit e (Insn.Label skip)
      end
    | Son.M_float ->
      let addr =
        if n_inputs = 3 then
          mem_operand e n ~base_idx:0 ~offset ~scale ~sc_base:sc0 ~sc_index:sc1
        else begin
          let base = gpi e n 0 sc0 in
          Insn.mk_addr ~offset base
        end
      in
      let v = fp e (loc_of e (input e n value_idx)) fsc0 in
      emit e (Insn.Str_f (addr, v)))
  | Son.N_check { reason; cond; _ } ->
    let group = Insn.group_of_reason reason in
    emit_condition e ~prov:(check_prov group Insn.Role_condition) n;
    emit_deopt_branch e ~cond ~reason ~fs:(Option.get nd.Son.fs)
  | Son.N_soft_deopt reason ->
    let group = Insn.group_of_reason reason in
    emit e ~prov:(check_prov group Insn.Role_condition)
      (Insn.Cmp (sc0, Insn.Reg sc0));
    emit_deopt_branch e ~cond:Insn.Eq ~reason ~fs:(Option.get nd.Son.fs)
  | Son.N_js_ldr_smi { offset; scale } ->
    (* The ISA extension: load + Not-a-SMI check + untag in one
       instruction; bailout is branch-free through REG_BA/REG_RE. *)
    let fs = Option.get nd.Son.fs in
    let dp = new_deopt e Insn.Not_a_smi fs in
    let addr = mem_operand e n ~base_idx:0 ~offset ~scale ~sc_base:sc0 ~sc_index:sc1 in
    def_gp e n (fun dst ->
        emit e
          ~prov:(check_prov Insn.G_not_smi Insn.Role_condition)
          (Insn.Js_ldr_smi { dst; mem = addr; deopt = dp }))
  | Son.N_js_chk_map { offset; expected } ->
    let fs = Option.get nd.Son.fs in
    let dp = new_deopt e Insn.Wrong_map fs in
    let base = gpi e n 0 sc0 in
    emit e
      ~prov:(check_prov Insn.G_type Insn.Role_condition)
      (Insn.Js_chk_map { mem = Insn.mk_addr ~offset base; expected; deopt = dp })
  | Son.N_call_builtin { builtin; argc } ->
    let moves =
      List.init argc (fun i ->
          { src = loc_of e (input e n i); dst = Regalloc.L_reg i })
    in
    parallel_moves e moves;
    emit e (Insn.Call (Insn.Builtin builtin, argc));
    if loc_of e n <> Regalloc.L_none then
      parallel_moves e [ { src = Regalloc.L_reg 0; dst = loc_of e n } ]
  | Son.N_stack_check ->
    (* ldr limit; cmp; branch over the (never-executed) interrupt call. *)
    let ok = fresh_label e in
    emit e ~comment:"stack check" (Insn.Mov (sc0, Insn.Imm e.consts.stack_limit_cell));
    emit e (Insn.Ldr (sc0, Insn.mk_addr ~offset:1 sc0));
    emit e (Insn.Cmp (sc0, Insn.Imm 0));
    emit e (Insn.Bcond (Insn.Ne, ok));
    emit e (Insn.Call (Insn.Builtin e.consts.interrupt_builtin, 1));
    emit e (Insn.Label ok)
  | Son.N_call_js { target; argc } -> (
    match target with
    | None -> invalid_arg "Codegen: dynamic JS call must go through rt_call"
    | Some fid ->
      let moves =
        List.init argc (fun i ->
            { src = loc_of e (input e n i); dst = Regalloc.L_reg i })
      in
      parallel_moves e moves;
      emit e (Insn.Call (Insn.Js_code fid, argc));
      if loc_of e n <> Regalloc.L_none then
        parallel_moves e [ { src = Regalloc.L_reg 0; dst = loc_of e n } ])

(* ------------------------------------------------------------------ *)
(* Blocks, phi moves, terminators                                      *)
(* ------------------------------------------------------------------ *)

let phis_of e b =
  List.filter
    (fun i -> match (Son.node e.g i).Son.op with Son.N_phi -> true | _ -> false)
    (Son.block e.g b).Son.body

let successors (blk : Son.block) =
  match blk.Son.term with
  | Son.T_goto t -> [ t ]
  | Son.T_branch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Son.T_return _ | Son.T_none -> []

let emit_phi_moves e b =
  let blk = Son.block e.g b in
  let moves = ref [] in
  List.iter
    (fun s ->
      let sblk = Son.block e.g s in
      (* Index of b among s's preds; b may appear more than once. *)
      List.iteri
        (fun k p ->
          if p = b then
            List.iter
              (fun phi ->
                let phin = Son.node e.g phi in
                if k < Array.length phin.Son.inputs then begin
                  let v = phin.Son.inputs.(k) in
                  if v >= 0 && loc_of e phi <> Regalloc.L_none then
                    moves := { src = loc_of e v; dst = loc_of e phi } :: !moves
                end)
              (phis_of e s))
        sblk.Son.preds)
    (List.sort_uniq compare (successors blk));
  (* Deduplicate identical moves from duplicate edges. *)
  parallel_moves e (List.sort_uniq compare !moves)

let emit_terminator e b ~next_block =
  let blk = Son.block e.g b in
  match blk.Son.term with
  | Son.T_none -> ()
  | Son.T_goto t -> if Some t <> next_block then emit e (Insn.B t)
  | Son.T_return v ->
    parallel_moves e [ { src = loc_of e v; dst = Regalloc.L_reg 0 } ];
    (* Epilogue: restore the frame registers. *)
    emit e ~comment:"pop fp" (Insn.Reload (sc0, 1));
    emit e ~comment:"pop lr" (Insn.Reload (sc1, 2));
    emit e Insn.Ret
  | Son.T_branch { cond; if_true; if_false } ->
    let cond_node = Son.node e.g cond in
    let c =
      match cond_node.Son.op with
      | Son.N_cmp { cond = c; _ } -> c
      | _ -> invalid_arg "Codegen: branch on non-compare node"
    in
    emit_condition e cond;
    if Some if_false = next_block then emit e (Insn.Bcond (c, if_true))
    else if Some if_true = next_block then
      emit e (Insn.Bcond (Insn.negate_cond c, if_false))
    else begin
      emit e (Insn.Bcond (c, if_true));
      emit e (Insn.B if_false)
    end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* Nodes whose every (transitive) value consumer is a check: the array
   length feeding a bounds check, the map load feeding a map compare.
   Their instructions carry check provenance — the ground truth the
   paper's sampling window approximates. *)
let check_only_nodes g =
  let n = g.Son.n_nodes in
  let value_users = Array.make n [] in
  for b = 0 to g.Son.n_blocks - 1 do
    let blk = Son.block g b in
    List.iter
      (fun i ->
        Array.iter
          (fun v -> if v >= 0 then value_users.(v) <- i :: value_users.(v))
          (Son.node g i).Son.inputs)
      blk.Son.body;
    match blk.Son.term with
    | Son.T_branch { cond; _ } -> value_users.(cond) <- -1 :: value_users.(cond)
    | Son.T_return v -> value_users.(v) <- -1 :: value_users.(v)
    | Son.T_none | Son.T_goto _ -> ()
  done;
  let group = Array.make n None in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if group.(i) = None then begin
        let nd = Son.node g i in
        let pure =
          match nd.Son.op with
          | Son.N_load _ | Son.N_int_binop _ | Son.N_smi_untag | Son.N_smi_tag
          | Son.N_cmp _ ->
            true
          | _ -> false
        in
        if pure && value_users.(i) <> [] then begin
          let groups =
            List.filter_map
              (fun u ->
                if u < 0 then Some None (* terminator: main line *)
                else begin
                  match (Son.node g u).Son.op with
                  | Son.N_check { reason; _ } ->
                    Some (Some (Insn.group_of_reason reason))
                  | _ -> Some group.(u)
                end)
              value_users.(i)
          in
          match groups with
          | first :: rest
            when first <> None && List.for_all (( = ) first) rest ->
            group.(i) <- first;
            changed := true
          | _ -> ()
        end
      end
    done
  done;
  group

let generate ~code_id ~base_addr ~arch ~remove_deopt_branches ~consts g =
  Trace.span_wall ~cat:"turbofan" ~arg:g.Son.fname "codegen" @@ fun () ->
  let alloc = Regalloc.allocate g in
  let check_only = check_only_nodes g in
  let e =
    { g; alloc; arch; remove_deopt_branches; consts; out = []; next_label = g.Son.n_blocks;
      deopts = []; n_deopts = 0; default_prov = Insn.Main_line }
  in
  (* Prologue: save the frame registers (V8 pushes fp/lr and loads the
     frame marker), spill the closure (deopt metadata needs it), and on
     the extended ISA set up the bailout-handler register. *)
  emit e ~comment:"push fp" (Insn.Spill (1, sc0));
  emit e ~comment:"push lr" (Insn.Spill (2, sc1));
  emit e ~comment:"mov fp, sp" (Insn.Mov (sc0, Insn.Reg sc1));
  emit e ~comment:"closure" (Insn.Spill (0, 0));
  if Arch.has_smi_load arch then begin
    emit e ~comment:"bailout handler" (Insn.Mov (sc0, Insn.Imm base_addr));
    emit e (Insn.Msr (Insn.Reg_ba, sc0))
  end;
  let param_moves = ref [] in
  for i = 0 to g.Son.n_nodes - 1 do
    match (Son.node e.g i).Son.op with
    | Son.N_param p when loc_of e i <> Regalloc.L_none ->
      param_moves := { src = Regalloc.L_reg p; dst = loc_of e i } :: !param_moves
    | _ -> ()
  done;
  parallel_moves e !param_moves;
  for b = 0 to g.Son.n_blocks - 1 do
    emit e (Insn.Label b);
    List.iter
      (fun n ->
        (match check_only.(n) with
        | Some grp ->
          e.default_prov <- Insn.Check { group = grp; role = Insn.Role_condition }
        | None -> e.default_prov <- Insn.Main_line);
        emit_node e n;
        e.default_prov <- Insn.Main_line)
      (Son.block e.g b).Son.body;
    emit_phi_moves e b;
    let next_block = if b + 1 < g.Son.n_blocks then Some (b + 1) else None in
    emit_terminator e b ~next_block
  done;
  Code.assemble ~code_id ~name:g.Son.fname ~arch
    ~deopts:(Array.of_list (List.rev e.deopts))
    ~gp_slots:alloc.Regalloc.gp_slots ~fp_slots:alloc.Regalloc.fp_slots
    ~base_addr (List.rev e.out)
