type config = { arch : Arch.t; trust_elements_kind : bool; turboprop : bool }

let default_config arch = { arch; trust_elements_kind = false; turboprop = false }

exception Bailout of string

let bailout fmt = Printf.ksprintf (fun m -> raise (Bailout m)) fmt

(* Facts proven about an SSA value on the current path (TurboFan's
   redundant-check elimination). *)
type fact = { mutable f_smi : bool; mutable f_heap : bool; mutable f_map : int option }

type env = {
  e_regs : int array;
  mutable e_acc : int;
  mutable e_facts : (int, fact) Hashtbl.t;
  mutable e_float : (int, int) Hashtbl.t;  (* tagged node -> float version *)
}

type st = {
  cfg : config;
  rt : Runtime.t;
  f : Runtime.func_rt;
  g : Son.t;
  consts : (int, int) Hashtbl.t;
  fconsts : (float, int) Hashtbl.t;
  mutable ctx_node : int;  (* lazily created: closure's context *)
  checked : (int, fact) Hashtbl.t;
      (* facts established by an actual emitted check on the node; used
         to decide which loop facts are safe to hoist *)
}

let heap st = st.rt.Runtime.heap

(* ------------------------------------------------------------------ *)
(* Constants and parameters                                            *)
(* ------------------------------------------------------------------ *)

let const st v =
  match Hashtbl.find_opt st.consts v with
  | Some n -> n
  | None ->
    let n = Son.add_floating st.g (Son.N_const v) [||] in
    Hashtbl.replace st.consts v n;
    n

let fconst st v =
  match Hashtbl.find_opt st.fconsts v with
  | Some n -> n
  | None ->
    let n = Son.add_floating st.g (Son.N_fconst v) [||] in
    Hashtbl.replace st.fconsts v n;
    n

let undef st = const st (Heap.undefined (heap st))
let smi_const st v = const st (Value.smi v)

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)
(* ------------------------------------------------------------------ *)

let fresh_fact () = { f_smi = false; f_heap = false; f_map = None }

let get_fact env n = Hashtbl.find_opt env.e_facts n

let fact_of env n =
  match Hashtbl.find_opt env.e_facts n with
  | Some f -> f
  | None ->
    let f = fresh_fact () in
    Hashtbl.replace env.e_facts n f;
    f

let record_fact st env n update =
  if not st.cfg.turboprop then update (fact_of env n)

let record_checked st n update =
  let f =
    match Hashtbl.find_opt st.checked n with
    | Some f -> f
    | None ->
      let f = fresh_fact () in
      Hashtbl.replace st.checked n f;
      f
  in
  update f

let statically_smi st n =
  match (Son.node st.g n).Son.op with
  | Son.N_const c -> Value.is_smi c
  | Son.N_smi_add_checked | Son.N_smi_sub_checked | Son.N_smi_mul_checked
  | Son.N_smi_div_checked | Son.N_smi_mod_checked | Son.N_smi_tag
  | Son.N_smi_tag_checked ->
    true
  | _ -> false

let known_smi st env n =
  statically_smi st n
  || (not st.cfg.turboprop
     && match get_fact env n with Some f -> f.f_smi | None -> false)

let known_heap st env n =
  (match (Son.node st.g n).Son.op with
  | Son.N_const c -> Value.is_pointer c
  | _ -> false)
  || (not st.cfg.turboprop
     && match get_fact env n with Some f -> f.f_heap | None -> false)

let known_map st env n =
  match (Son.node st.g n).Son.op with
  | Son.N_const c when Value.is_pointer c ->
    Some (Heap.map_of (heap st) c).Heap.map_id
  | _ ->
    if st.cfg.turboprop then None
    else begin
      match get_fact env n with Some f -> f.f_map | None -> None
    end

(* ------------------------------------------------------------------ *)
(* Core emission helpers                                               *)
(* ------------------------------------------------------------------ *)

let addr_off field = (2 * field) - 1

let kind_of st n = (Son.node st.g n).Son.kind

let load_field st blk ?(kind = Son.M_tagged) base field =
  Son.add_node st.g blk (Son.N_load { offset = addr_off field; scale = 0; kind })
    [| base |]

let store_field st blk ?(kind = Son.M_tagged) base field v =
  ignore
    (Son.add_node st.g blk
       (Son.N_store { offset = addr_off field; scale = 0; kind })
       [| base; v |])

let ensure_smi st env blk fs n =
  if not (known_smi st env n) then begin
    ignore
      (Son.add_node st.g blk ~fs
         (Son.N_check
            { reason = Insn.Not_a_smi; ckind = Son.C_tst_imm 1; cond = Insn.Ne })
         [| n |]);
    record_fact st env n (fun f -> f.f_smi <- true);
    record_checked st n (fun f -> f.f_smi <- true)
  end

let ensure_heap st env blk fs n =
  if not (known_heap st env n) then begin
    ignore
      (Son.add_node st.g blk ~fs
         (Son.N_check
            { reason = Insn.Smi; ckind = Son.C_tst_imm 1; cond = Insn.Eq })
         [| n |]);
    record_fact st env n (fun f -> f.f_heap <- true);
    record_checked st n (fun f -> f.f_heap <- true)
  end

let check_map st env blk fs n map_id =
  if known_map st env n <> Some map_id then begin
    ensure_heap st env blk fs n;
    let map_ptr = (Heap.map_info_by_id (heap st) map_id).Heap.map_ptr in
    if Arch.can_fold_memory_operand st.cfg.arch then
      ignore
        (Son.add_node st.g blk ~fs
           (Son.N_check
              { reason = Insn.Wrong_map; ckind = Son.C_cmp_mem (addr_off 0);
                cond = Insn.Ne })
           [| const st map_ptr; n |])
    else begin
      let m = load_field st blk n 0 in
      ignore
        (Son.add_node st.g blk ~fs
           (Son.N_check
              { reason = Insn.Wrong_map; ckind = Son.C_cmp_reg; cond = Insn.Ne })
           [| m; const st map_ptr |])
    end;
    record_fact st env n (fun f ->
        f.f_heap <- true;
        f.f_map <- Some map_id);
    record_checked st n (fun f ->
        f.f_heap <- true;
        f.f_map <- Some map_id)
  end

(* Instance-type check: load map, load its instance_type field, compare.
   Used for primitive-method receivers where several maps share a type. *)
let check_instance_type st env blk fs n itype =
  ensure_heap st env blk fs n;
  let m = load_field st blk n 0 in
  let it = load_field st blk m 2 in
  ignore
    (Son.add_node st.g blk ~fs
       (Son.N_check
          { reason = Insn.Wrong_map; ckind = Son.C_cmp_reg; cond = Insn.Ne })
       [| it; smi_const st (Heap.instance_type_code itype) |])

let call_builtin st blk b args =
  Son.add_node st.g blk
    (Son.N_call_builtin { builtin = b; argc = Array.length args })
    args

(* Boxing a float: inline allocation (builtin with low charged cost)
   followed by a raw payload store. *)
let box_float st blk fnode =
  let ptr = call_builtin st blk Builtins.id_rt_alloc_number [| undef st |] in
  store_field st blk ~kind:Son.M_float ptr 1 fnode;
  ptr

let to_tagged st blk n =
  match kind_of st n with
  | Son.K_tagged | Son.K_bool -> n
  | Son.K_float -> box_float st blk n
  | Son.K_int32 -> Son.add_node st.g blk Son.N_smi_tag [| n |]

(* Tagged-or-int32 value as a tagged SMI, emitting checks as needed. *)
let to_smi_tagged st env blk fs n =
  match kind_of st n with
  | Son.K_int32 -> Son.add_node st.g blk Son.N_smi_tag [| n |]
  | Son.K_bool -> bailout "boolean used in SMI arithmetic"
  | Son.K_float -> bailout "internal: float reached SMI path"
  | Son.K_tagged ->
    ensure_smi st env blk fs n;
    n

let to_int32 st env blk fs n =
  match kind_of st n with
  | Son.K_int32 -> n
  | Son.K_tagged ->
    ensure_smi st env blk fs n;
    Son.add_node st.g blk Son.N_smi_untag [| n |]
  | Son.K_float -> Son.add_node st.g blk Son.N_float_to_int [| n |]
  | Son.K_bool -> bailout "boolean in integer arithmetic"

(* Per-domain: compiles run concurrently under the experiment pool, and
   a shared slot would thrash between domains' heaps (the heap identity
   check keeps it correct either way). *)
let hn_map_cache : (Heap.t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let heap_number_map_id st =
  (* The heap-number map id is stable; fetch it once via a probe value. *)
  let cache = Domain.DLS.get hn_map_cache in
  match !cache with
  | Some (h, id) when h == heap st -> id
  | _ ->
    let h = heap st in
    let id = Heap.map_id_of_map_ptr h (Heap.load h (Heap.alloc_heap_number h 0.0) 0) in
    cache := Some (h, id);
    id

let to_float st env blk fs n =
  match Hashtbl.find_opt env.e_float n with
  | Some f -> f
  | None ->
    let result =
      match kind_of st n with
      | Son.K_float -> n
      | Son.K_int32 -> Son.add_node st.g blk Son.N_int_to_float [| n |]
      | Son.K_bool -> bailout "boolean in float arithmetic"
      | Son.K_tagged ->
        if known_smi st env n then begin
          let u = Son.add_node st.g blk Son.N_smi_untag [| n |] in
          Son.add_node st.g blk Son.N_int_to_float [| u |]
        end
        else begin
          match known_map st env n with
          | Some m when m = heap_number_map_id st ->
            load_field st blk ~kind:Son.M_float n 1
          | _ -> Son.add_node st.g blk ~fs Son.N_to_float [| n |]
        end
    in
    Hashtbl.replace env.e_float n result;
    result

(* ------------------------------------------------------------------ *)
(* Frame states                                                        *)
(* ------------------------------------------------------------------ *)

(* Bytecode liveness (live-in per pc, registers + accumulator): dead
   values are dropped from frame states, which both shrinks deopt
   metadata and — as in V8 — shortens live ranges considerably. *)
let compute_liveness (code : Bytecode.op array) n_regs =
  let n = Array.length code in
  let acc_idx = n_regs in
  let live = Array.init n (fun _ -> Bytes.make (n_regs + 1) '\000') in
  let succs pc =
    match code.(pc) with
    | Bytecode.Jump t -> [ t ]
    | Bytecode.Jump_if_false t | Bytecode.Jump_if_true t -> [ pc + 1; t ]
    | Bytecode.Return -> []
    | _ -> if pc + 1 < n then [ pc + 1 ] else []
  in
  let reads pc =
    match code.(pc) with
    | Bytecode.Ldar r -> [ r ]
    | Bytecode.Star _ -> [ acc_idx ]
    | Bytecode.Mov (_, s) -> [ s ]
    | Bytecode.Sta_global _ | Bytecode.Sta_context _ -> [ acc_idx ]
    | Bytecode.Binop (_, r, _) | Bytecode.Test (_, r, _) -> [ r; acc_idx ]
    | Bytecode.Neg_acc _ | Bytecode.Bitnot_acc _ | Bytecode.Not_acc
    | Bytecode.Typeof_acc | Bytecode.Jump_if_false _ | Bytecode.Jump_if_true _
    | Bytecode.Return ->
      [ acc_idx ]
    | Bytecode.Get_named (r, _, _) -> [ r ]
    | Bytecode.Set_named (r, _, _) -> [ r; acc_idx ]
    | Bytecode.Get_keyed (r, _) -> [ r; acc_idx ]
    | Bytecode.Set_keyed (r, k, _) -> [ r; k; acc_idx ]
    | Bytecode.Call (c, first, cnt, _) -> c :: List.init cnt (fun i -> first + i)
    | Bytecode.Call_method (o, _, first, cnt, _) ->
      o :: List.init cnt (fun i -> first + i)
    | Bytecode.Construct (c, first, cnt, _) ->
      c :: List.init cnt (fun i -> first + i)
    | Bytecode.Lda_zero | Bytecode.Lda_smi _ | Bytecode.Lda_const _
    | Bytecode.Lda_undefined | Bytecode.Lda_null | Bytecode.Lda_true
    | Bytecode.Lda_false | Bytecode.Lda_global _ | Bytecode.Lda_context _
    | Bytecode.Create_array _ | Bytecode.Create_object
    | Bytecode.Create_closure _ | Bytecode.Jump _ ->
      []
  in
  let writes pc =
    match code.(pc) with
    | Bytecode.Star r -> [ r ]
    | Bytecode.Mov (d, _) -> [ d ]
    | Bytecode.Lda_zero | Bytecode.Lda_smi _ | Bytecode.Lda_const _
    | Bytecode.Lda_undefined | Bytecode.Lda_null | Bytecode.Lda_true
    | Bytecode.Lda_false | Bytecode.Ldar _ | Bytecode.Lda_global _
    | Bytecode.Lda_context _ | Bytecode.Binop _ | Bytecode.Test _
    | Bytecode.Neg_acc _ | Bytecode.Bitnot_acc _ | Bytecode.Not_acc
    | Bytecode.Typeof_acc | Bytecode.Get_named _ | Bytecode.Get_keyed _
    | Bytecode.Create_array _ | Bytecode.Create_object
    | Bytecode.Create_closure _ | Bytecode.Call _ | Bytecode.Call_method _
    | Bytecode.Construct _ ->
      [ acc_idx ]
    | Bytecode.Sta_global _ | Bytecode.Sta_context _ | Bytecode.Set_named _
    | Bytecode.Set_keyed _ | Bytecode.Jump _ | Bytecode.Jump_if_false _
    | Bytecode.Jump_if_true _ | Bytecode.Return ->
      []
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 200 do
    changed := false;
    incr rounds;
    for pc = n - 1 downto 0 do
      let cur = live.(pc) in
      (* out = union of successors' live-in *)
      let out = Bytes.make (n_regs + 1) '\000' in
      List.iter
        (fun s ->
          if s < n then
            for k = 0 to n_regs do
              if Bytes.get live.(s) k <> '\000' then Bytes.set out k '\001'
            done)
        (succs pc);
      List.iter (fun k -> if k <= n_regs then Bytes.set out k '\000') (writes pc);
      List.iter (fun k -> if k <= n_regs then Bytes.set out k '\001') (reads pc);
      if out <> cur then begin
        live.(pc) <- out;
        changed := true
      end
    done
  done;
  live

let capture_fs (liveness : Bytes.t array) n_regs (env : env) pc :
    Son.frame_state =
  let lv = liveness.(pc) in
  {
    Son.fs_bc_pc = pc;
    fs_regs =
      Array.init (Array.length env.e_regs) (fun r ->
          if Bytes.get lv r <> '\000' then env.e_regs.(r) else -1);
    fs_acc = (if Bytes.get lv n_regs <> '\000' then env.e_acc else -1);
  }

(* ------------------------------------------------------------------ *)
(* CFG pre-pass                                                        *)
(* ------------------------------------------------------------------ *)

type cfg_info = {
  starts : bool array;
  block_index : int array;     (* pc -> block idx (dense over starts), -1 *)
  block_pcs : int array;       (* block idx -> start pc *)
  succs : int list array;      (* block idx -> successor block idxs *)
  n_cblocks : int;
  reachable : bool array;
}

let compute_cfg (code : Bytecode.op array) =
  let n = Array.length code in
  let starts = Array.make (n + 1) false in
  starts.(0) <- true;
  Array.iteri
    (fun i op ->
      match op with
      | Bytecode.Jump t | Bytecode.Jump_if_false t | Bytecode.Jump_if_true t ->
        if t <= n then starts.(t) <- true;
        if i + 1 <= n then starts.(i + 1) <- true
      | Bytecode.Return -> if i + 1 <= n then starts.(i + 1) <- true
      | _ -> ())
    code;
  let block_index = Array.make (n + 1) (-1) in
  let pcs = ref [] in
  let count = ref 0 in
  for pc = 0 to n - 1 do
    if starts.(pc) then begin
      block_index.(pc) <- !count;
      pcs := pc :: !pcs;
      incr count
    end
  done;
  let block_pcs = Array.of_list (List.rev !pcs) in
  let n_cblocks = !count in
  let succs = Array.make n_cblocks [] in
  for b = 0 to n_cblocks - 1 do
    let start = block_pcs.(b) in
    let stop = if b + 1 < n_cblocks then block_pcs.(b + 1) else n in
    (* Find the terminator: the last op of the range. *)
    let last = stop - 1 in
    let s =
      match code.(last) with
      | Bytecode.Jump t -> [ block_index.(t) ]
      | Bytecode.Jump_if_false t | Bytecode.Jump_if_true t ->
        [ block_index.(last + 1); block_index.(t) ]
      | Bytecode.Return -> []
      | _ -> if stop < n then [ block_index.(stop) ] else []
    in
    ignore start;
    succs.(b) <- s
  done;
  let reachable = Array.make n_cblocks false in
  let q = Queue.create () in
  Queue.add 0 q;
  reachable.(0) <- true;
  while not (Queue.is_empty q) do
    let b = Queue.pop q in
    List.iter
      (fun s ->
        if not reachable.(s) then begin
          reachable.(s) <- true;
          Queue.add s q
        end)
      succs.(b)
  done;
  { starts; block_index; block_pcs; succs; n_cblocks; reachable }

(* ------------------------------------------------------------------ *)
(* Environment merging                                                 *)
(* ------------------------------------------------------------------ *)

let copy_env (e : env) =
  {
    e_regs = Array.copy e.e_regs;
    e_acc = e.e_acc;
    e_facts = Hashtbl.copy e.e_facts;
    e_float = Hashtbl.copy e.e_float;
  }

let empty_tables (e : env) =
  { e with e_facts = Hashtbl.create 16; e_float = Hashtbl.create 8 }

let intersect_facts tables =
  match tables with
  | [] -> Hashtbl.create 16
  | first :: rest ->
    let out = Hashtbl.create 16 in
    Hashtbl.iter
      (fun n (f : fact) ->
        let combined =
          List.fold_left
            (fun acc tbl ->
              match acc with
              | None -> None
              | Some (a : fact) -> (
                match Hashtbl.find_opt tbl n with
                | None -> None
                | Some (b : fact) ->
                  Some
                    {
                      f_smi = a.f_smi && b.f_smi;
                      f_heap = a.f_heap && b.f_heap;
                      f_map = (if a.f_map = b.f_map then a.f_map else None);
                    }))
            (Some { f_smi = f.f_smi; f_heap = f.f_heap; f_map = f.f_map })
            rest
        in
        match combined with
        | Some c when c.f_smi || c.f_heap || c.f_map <> None ->
          Hashtbl.replace out n c
        | _ -> ())
      first;
    out

(* Unify the value kind of phi inputs; conversion code is appended to the
   predecessor block (before its terminator is emitted by codegen). *)
let convert_in_block st (blk : Son.block) n target =
  let k = kind_of st n in
  if k = target then n
  else begin
    match (k, target) with
    | Son.K_float, Son.K_tagged -> box_float st blk n
    | Son.K_int32, Son.K_tagged -> Son.add_node st.g blk Son.N_smi_tag [| n |]
    | Son.K_bool, Son.K_tagged -> n (* bools materialize as oddballs *)
    | Son.K_int32, Son.K_float -> Son.add_node st.g blk Son.N_int_to_float [| n |]
    | _ -> bailout "unsupported phi kind unification"
  end

let unify_kind kinds =
  let norm = function Son.K_bool -> Son.K_tagged | k -> k in
  match kinds with
  | [] -> Son.K_tagged
  | k :: rest ->
    List.fold_left
      (fun acc k -> if norm k = norm acc then acc else Son.K_tagged)
      (norm k) (List.map norm rest)

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

type pending_phi = { phi : int; slot : int (* reg index, -1 = acc *) }

(* Loop-invariant facts about a loop-header phi slot, discovered by the
   first build pass and seeded into the second.  Seeding a fact hoists
   the corresponding check out of the loop: the second pass places guard
   checks on the loop-entry edges (and on any backedge whose incoming
   value no longer carries the fact) instead of re-checking every
   iteration — TurboFan's loop-invariant check elimination. *)
type seed = { s_smi : bool; s_heap : bool; s_map : int option }

let build_pass cfg rt (f : Runtime.func_rt)
    ~(seeds : (int * int, seed) Hashtbl.t) ~record_seeds =
  let info = f.Runtime.info in
  if info.Bytecode.context_slots > 0 then
    bailout "function allocates a context";
  if info.Bytecode.n_params > Insn.num_arg_regs - 2 then
    bailout "too many parameters";
  let code = info.Bytecode.code in
  let fvec = f.Runtime.feedback in
  let consts_tagged = Runtime.materialize_consts rt f in
  let g = Son.create info.Bytecode.name in
  let st =
    { cfg; rt; f; g; consts = Hashtbl.create 32; fconsts = Hashtbl.create 8;
      ctx_node = -1; checked = Hashtbl.create 32 }
  in
  let h = heap st in
  let liveness = compute_liveness code info.Bytecode.n_regs in
  let cfg_info = compute_cfg code in
  let n_cb = cfg_info.n_cblocks in
  (* Son blocks mirror CFG blocks 1:1 (same indexes). *)
  let blocks = Array.init n_cb (fun _ -> Son.new_block g) in
  (* Predecessors in deterministic order. *)
  for b = 0 to n_cb - 1 do
    if cfg_info.reachable.(b) then
      List.iter
        (fun s ->
          if cfg_info.reachable.(s) then begin
            let sb = blocks.(s) in
            sb.Son.preds <- sb.Son.preds @ [ b ]
          end)
        cfg_info.succs.(b)
  done;
  let is_loop_header = Array.make n_cb false in
  for b = 0 to n_cb - 1 do
    if cfg_info.reachable.(b) then begin
      List.iter (fun p -> if p >= b then is_loop_header.(b) <- true)
        blocks.(b).Son.preds;
      blocks.(b).Son.is_loop_header <- is_loop_header.(b)
    end
  done;

  let exit_envs : env option array = Array.make n_cb None in
  let pending : pending_phi list array = Array.make n_cb [] in

  (* Entry environment for block 0. *)
  let entry_env () =
    let u = undef st in
    let regs = Array.make info.Bytecode.n_regs u in
    regs.(0) <- Son.add_floating g (Son.N_param 1) [||] (* this *);
    for i = 0 to info.Bytecode.n_params - 1 do
      regs.(1 + i) <- Son.add_floating g (Son.N_param (2 + i)) [||]
    done;
    { e_regs = regs; e_acc = u; e_facts = Hashtbl.create 16;
      e_float = Hashtbl.create 8 }
  in

  let ctx_node blk =
    if st.ctx_node >= 0 then st.ctx_node
    else begin
      let closure = Son.add_floating g (Son.N_param 0) [||] in
      let c = load_field st blk closure Heap.function_context_field in
      st.ctx_node <- c;
      c
    end
  in

  (* Compute the entry env of block b from predecessors. *)
  let entry_env_of b =
    let blk = blocks.(b) in
    let preds = blk.Son.preds in
    let forward = List.filter (fun p -> p < b) preds in
    let n_preds = List.length preds in
    match (preds, is_loop_header.(b)) with
    | [], false -> if b = 0 then Some (entry_env ()) else None
    | [ p ], false -> Option.map copy_env exit_envs.(p)
    | _, false ->
      (* All preds are forward and processed. *)
      let envs =
        List.map
          (fun p ->
            match exit_envs.(p) with
            | Some e -> (p, e)
            | None -> bailout "internal: forward pred unprocessed")
          preds
      in
      let facts =
        if st.cfg.turboprop then Hashtbl.create 4
        else intersect_facts (List.map (fun (_, e) -> e.e_facts) envs)
      in
      let merge_value slot values =
        let distinct = List.sort_uniq compare (List.map snd values) in
        match distinct with
        | [ v ] -> v
        | _ ->
          let target = unify_kind (List.map (fun (_, v) -> kind_of st v) values) in
          let inputs =
            List.map
              (fun (p, v) -> convert_in_block st blocks.(p) v target)
              values
          in
          let phi =
            Son.add_floating g ~kind:target Son.N_phi (Array.of_list inputs)
          in
          Son.prepend_phi g blk phi;
          ignore slot;
          (* The phi inherits facts common to every input. *)
          if (not st.cfg.turboprop) && target = Son.K_tagged then begin
            let all pred = List.for_all (fun ((p, v) : int * int) ->
                match exit_envs.(p) with
                | Some pe -> pred pe v
                | None -> false)
                values
            in
            let f_smi = all (fun pe v -> known_smi st pe v) in
            let f_heap = all (fun pe v -> known_heap st pe v) in
            let maps =
              List.map
                (fun (p, v) ->
                  match exit_envs.(p) with
                  | Some pe -> known_map st pe v
                  | None -> None)
                values
            in
            let f_map =
              match maps with
              | (Some m) :: rest when List.for_all (( = ) (Some m)) rest ->
                Some m
              | _ -> None
            in
            if f_smi || f_heap || f_map <> None then
              Hashtbl.replace facts phi { f_smi; f_heap = f_heap || f_map <> None; f_map }
          end;
          phi
      in
      let regs =
        Array.init info.Bytecode.n_regs (fun r ->
            merge_value r (List.map (fun (p, e) -> (p, e.e_regs.(r))) envs))
      in
      let acc = merge_value (-1) (List.map (fun (p, e) -> (p, e.e_acc)) envs) in
      Some { e_regs = regs; e_acc = acc; e_facts = facts; e_float = Hashtbl.create 8 }
    | _, true ->
      (* Loop header: phis for everything; backedge inputs patched when
         the backedge predecessors finish. *)
      let fwd_envs =
        List.filter_map (fun p -> Option.map (fun e -> (p, e)) exit_envs.(p)) forward
      in
      if fwd_envs = [] then None
      else begin
        let mk_phi slot =
          let values =
            List.map
              (fun (p, (e : env)) ->
                (p, if slot < 0 then e.e_acc else e.e_regs.(slot)))
              fwd_envs
          in
          let target = unify_kind (List.map (fun (_, v) -> kind_of st v) values) in
          let inputs = Array.make n_preds (-1) in
          List.iteri
            (fun i p ->
              match List.assoc_opt p values with
              | Some v when p < b ->
                inputs.(i) <- convert_in_block st blocks.(p) v target
              | _ -> ())
            preds;
          (* Fill backedge slots with the first forward input for now. *)
          let first_fwd =
            let rec find i = if inputs.(i) >= 0 then inputs.(i) else find (i + 1) in
            find 0
          in
          Array.iteri (fun i v -> if v < 0 then inputs.(i) <- first_fwd) inputs;
          let phi = Son.add_floating g ~kind:target Son.N_phi inputs in
          Son.prepend_phi g blk phi;
          pending.(b) <- { phi; slot } :: pending.(b);
          phi
        in
        let regs = Array.init info.Bytecode.n_regs (fun r -> mk_phi r) in
        let acc = mk_phi (-1) in
        let env =
          { e_regs = regs; e_acc = acc; e_facts = Hashtbl.create 16;
            e_float = Hashtbl.create 8 }
        in
        (* Second pass: seed loop-invariant facts onto the phis and
           guard them on the loop-entry edges. *)
        if (not record_seeds) && not st.cfg.turboprop then begin
          let header_pc = cfg_info.block_pcs.(b) in
          List.iter
            (fun { phi; slot } ->
              match Hashtbl.find_opt seeds (b, slot) with
              | None -> ()
              | Some sd ->
                if kind_of st phi = Son.K_tagged
                   && (sd.s_smi || sd.s_heap || sd.s_map <> None)
                then begin
                  (* Entry guards in each forward predecessor. *)
                  List.iter
                    (fun (p, (pe : env)) ->
                      let v = if slot < 0 then pe.e_acc else pe.e_regs.(slot) in
                      let fs = capture_fs liveness info.Bytecode.n_regs pe header_pc in
                      if sd.s_smi then ensure_smi st pe blocks.(p) fs v;
                      (match sd.s_map with
                      | Some m -> check_map st pe blocks.(p) fs v m
                      | None ->
                        if sd.s_heap then ensure_heap st pe blocks.(p) fs v))
                    fwd_envs;
                  Hashtbl.replace env.e_facts phi
                    { f_smi = sd.s_smi; f_heap = sd.s_heap || sd.s_map <> None;
                      f_map = sd.s_map }
                end)
            pending.(b)
        end;
        Some env
      end
  in

  (* Patch loop-header phis once a backedge predecessor [p] has an exit
     env. *)
  let patch_backedges p =
    match exit_envs.(p) with
    | None -> ()
    | Some e ->
      List.iter
        (fun header ->
          if header <= p && cfg_info.reachable.(header) && is_loop_header.(header)
          then begin
            let hblk = blocks.(header) in
            let positions =
              List.mapi (fun i q -> (i, q)) hblk.Son.preds
              |> List.filter (fun (_, q) -> q = p)
              |> List.map fst
            in
            if positions <> [] then
              List.iter
                (fun { phi; slot } ->
                  let v = if slot < 0 then e.e_acc else e.e_regs.(slot) in
                  let phi_node = Son.node g phi in
                  (if record_seeds && phi_node.Son.kind = Son.K_tagged then begin
                     (* Only facts the loop body actually speculated on
                        (an emitted check against the phi) are safe to
                        hoist; intersect with what this backedge
                        provides. *)
                     let wanted =
                       match Hashtbl.find_opt st.checked phi with
                       | Some f -> f
                       | None -> fresh_fact ()
                     in
                     let here =
                       { s_smi = wanted.f_smi && known_smi st e v;
                         s_heap = wanted.f_heap && known_heap st e v;
                         s_map =
                           (match wanted.f_map with
                           | Some m when known_map st e v = Some m -> Some m
                           | _ -> None) }
                     in
                     match Hashtbl.find_opt seeds (header, slot) with
                     | None -> Hashtbl.replace seeds (header, slot) here
                     | Some prev ->
                       Hashtbl.replace seeds (header, slot)
                         { s_smi = prev.s_smi && here.s_smi;
                           s_heap = prev.s_heap && here.s_heap;
                           s_map =
                             (if prev.s_map = here.s_map then prev.s_map
                              else None) }
                   end
                   else if (not record_seeds) && not st.cfg.turboprop then begin
                     (* Guard any seeded fact this backedge value has lost. *)
                     match Hashtbl.find_opt seeds (header, slot) with
                     | None -> ()
                     | Some sd ->
                       let header_pc = cfg_info.block_pcs.(header) in
                       let fs = capture_fs liveness info.Bytecode.n_regs e header_pc in
                       if sd.s_smi then ensure_smi st e blocks.(p) fs v;
                       (match sd.s_map with
                       | Some m -> check_map st e blocks.(p) fs v m
                       | None ->
                         if sd.s_heap then ensure_heap st e blocks.(p) fs v)
                   end);
                  let v' = convert_in_block st blocks.(p) v phi_node.Son.kind in
                  List.iter (fun pos -> phi_node.Son.inputs.(pos) <- v') positions)
                pending.(header)
          end)
        cfg_info.succs.(p)
  in
  (* ---------------------------------------------------------------- *)
  (* Per-op lowering                                                    *)
  (* ---------------------------------------------------------------- *)
  let uninit slot = Feedback.is_uninitialized fvec slot in
  let soft_deopt env blk fs =
    ignore
      (Son.add_node g blk ~fs (Son.N_soft_deopt Insn.Insufficient_feedback) [||]);
    env.e_acc <- undef st
  in
  let name_of_const c =
    match info.Bytecode.consts.(c) with
    | Bytecode.C_str s -> s
    | Bytecode.C_num _ -> bailout "numeric constant used as property name"
  in

  let lower_arith env blk fs op a b slot =
    match Feedback.binop_type fvec slot with
    | Feedback.Ot_none ->
      soft_deopt env blk fs;
      env.e_acc
    | Feedback.Ot_smi
      when kind_of st a <> Son.K_float && kind_of st b <> Son.K_float -> (
      let at = to_smi_tagged st env blk fs a in
      let bt = to_smi_tagged st env blk fs b in
      match op with
      | Ast.Add -> Son.add_node g blk ~fs Son.N_smi_add_checked [| at; bt |]
      | Ast.Sub -> Son.add_node g blk ~fs Son.N_smi_sub_checked [| at; bt |]
      | Ast.Mul -> Son.add_node g blk ~fs Son.N_smi_mul_checked [| at; bt |]
      | Ast.Div -> Son.add_node g blk ~fs Son.N_smi_div_checked [| at; bt |]
      | Ast.Mod -> Son.add_node g blk ~fs Son.N_smi_mod_checked [| at; bt |]
      | _ -> bailout "internal: lower_arith on non-arith op")
    | Feedback.Ot_smi | Feedback.Ot_number ->
      let fa = to_float st env blk fs a in
      let fb = to_float st env blk fs b in
      let fop =
        match op with
        | Ast.Add -> Insn.Fadd
        | Ast.Sub -> Insn.Fsub
        | Ast.Mul -> Insn.Fmul
        | Ast.Div -> Insn.Fdiv
        | Ast.Mod -> Insn.Fadd (* handled below *)
        | _ -> bailout "internal: lower_arith on non-arith op"
      in
      if op = Ast.Mod then
        (* Float modulo has no machine instruction: runtime call. *)
        call_builtin st blk Builtins.id_rt_binop
          [| undef st; smi_const st (Builtins.binop_code op);
             to_tagged st blk a; to_tagged st blk b |]
      else Son.add_node g blk (Son.N_float_binop fop) [| fa; fb |]
    | Feedback.Ot_string | Feedback.Ot_any ->
      call_builtin st blk Builtins.id_rt_binop
        [| undef st; smi_const st (Builtins.binop_code op);
           to_tagged st blk a; to_tagged st blk b |]
  in

  let lower_bitop env blk fs op a b slot =
    match Feedback.binop_type fvec slot with
    | Feedback.Ot_none ->
      soft_deopt env blk fs;
      env.e_acc
    | Feedback.Ot_smi | Feedback.Ot_number ->
      let ai = to_int32 st env blk fs a in
      let bi = to_int32 st env blk fs b in
      let alu =
        match op with
        | Ast.Bit_and -> Insn.And
        | Ast.Bit_or -> Insn.Orr
        | Ast.Bit_xor -> Insn.Eor
        | Ast.Shl -> Insn.Lsl
        | Ast.Shr -> Insn.Asr
        | Ast.Ushr -> Insn.Lsr
        | _ -> bailout "internal: lower_bitop on non-bit op"
      in
      let r = Son.add_node g blk (Son.N_int_binop alu) [| ai; bi |] in
      (match op with
      | Ast.Shl | Ast.Ushr ->
        Son.add_node g blk ~fs Son.N_smi_tag_checked [| r |]
      | _ -> Son.add_node g blk Son.N_smi_tag [| r |])
    | Feedback.Ot_string | Feedback.Ot_any ->
      call_builtin st blk Builtins.id_rt_binop
        [| undef st; smi_const st (Builtins.binop_code op);
           to_tagged st blk a; to_tagged st blk b |]
  in

  let cond_of_cmp (op : Ast.binop) =
    match op with
    | Ast.Lt -> Insn.Lt
    | Ast.Le -> Insn.Le
    | Ast.Gt -> Insn.Gt
    | Ast.Ge -> Insn.Ge
    | Ast.Eq | Ast.Strict_eq -> Insn.Eq
    | Ast.Neq | Ast.Strict_neq -> Insn.Ne
    | _ -> bailout "internal: cond_of_cmp"
  in

  let lower_test env blk fs op a b slot =
    let generic () =
      call_builtin st blk Builtins.id_rt_compare
        [| undef st; smi_const st (Builtins.binop_code op);
           to_tagged st blk a; to_tagged st blk b |]
    in
    match Feedback.compare_type fvec slot with
    | Feedback.Ot_none ->
      soft_deopt env blk fs;
      env.e_acc
    | Feedback.Ot_smi
      when kind_of st a <> Son.K_float && kind_of st b <> Son.K_float ->
      let at = to_smi_tagged st env blk fs a in
      let bt = to_smi_tagged st env blk fs b in
      Son.add_node g blk
        (Son.N_cmp { ckind = Son.C_cmp_reg; cond = cond_of_cmp op })
        [| at; bt |]
    | Feedback.Ot_smi | Feedback.Ot_number -> (
      match op with
      | Ast.Eq | Ast.Neq | Ast.Strict_eq | Ast.Strict_neq | Ast.Lt | Ast.Le
      | Ast.Gt | Ast.Ge ->
        let fa = to_float st env blk fs a in
        let fb = to_float st env blk fs b in
        Son.add_node g blk
          (Son.N_cmp { ckind = Son.C_fcmp; cond = cond_of_cmp op })
          [| fa; fb |]
      | _ -> generic ())
    | Feedback.Ot_string | Feedback.Ot_any -> generic ()
  in

  (* Branch condition: a compare node suitable for flag fusion. *)
  let branch_cond env blk _fs v =
    match kind_of st v with
    | Son.K_bool -> v
    | Son.K_int32 ->
      Son.add_node g blk (Son.N_cmp { ckind = Son.C_cmp_imm 0; cond = Insn.Ne })
        [| v |]
    | Son.K_tagged when known_smi st env v ->
      Son.add_node g blk (Son.N_cmp { ckind = Son.C_cmp_imm 0; cond = Insn.Ne })
        [| v |]
    | Son.K_tagged | Son.K_float ->
      let tv = to_tagged st blk v in
      let b = call_builtin st blk Builtins.id_rt_to_boolean [| undef st; tv |] in
      Son.add_node g blk (Son.N_cmp { ckind = Son.C_cmp_reg; cond = Insn.Ne })
        [| b; const st (Heap.false_value h) |]
  in

  (* Property-slot load below a verified map. *)
  let load_prop_slot blk obj (minfo : Heap.map_info) slot =
    match minfo.Heap.itype with
    | Heap.It_array ->
      let props = load_field st blk obj Heap.array_props_field in
      load_field st blk props (Heap.elements_header + slot)
    | _ ->
      if slot < Heap.inline_slots then
        load_field st blk obj (Heap.object_inline_base + slot)
      else begin
        let props = load_field st blk obj Heap.object_props_field in
        load_field st blk props (Heap.elements_header + slot - Heap.inline_slots)
      end
  in

  let lower_get_named env blk fs obj name slot =
    if uninit slot then begin
      soft_deopt env blk fs;
      env.e_acc
    end
    else begin
      match Feedback.prop_entries fvec slot with
      | Some [ (map_id, site) ] -> (
        let minfo = Heap.map_info_by_id h map_id in
        check_map st env blk fs obj map_id;
        match site with
        | Feedback.Own s -> load_prop_slot blk obj minfo s
        | Feedback.Proto { holder; slot = s } ->
          let holder_node = const st holder in
          load_prop_slot blk holder_node (Heap.map_of h holder) s
        | Feedback.Length ->
          let l = load_field st blk obj Heap.array_length_field in
          record_fact st env l (fun f -> f.f_smi <- true);
          l
        | Feedback.Transition _ -> bailout "transition site on a load")
      | Some _ | None ->
        (* Polymorphic or megamorphic: generic runtime path. *)
        call_builtin st blk Builtins.id_rt_get_named
          [| undef st; to_tagged st blk obj; const st (Heap.intern h name) |]
    end
  in

  let generic_set_named blk obj name v =
    ignore
      (call_builtin st blk Builtins.id_rt_set_named
         [| undef st; to_tagged st blk obj; const st (Heap.intern h name);
            to_tagged st blk v |])
  in

  let lower_set_named env blk fs obj name slot v =
    if uninit slot then soft_deopt env blk fs
    else begin
      match Feedback.prop_entries fvec slot with
      | Some [ (map_id, Feedback.Own s) ]
        when (Heap.map_info_by_id h map_id).Heap.itype <> Heap.It_array
             && s < Heap.inline_slots ->
        check_map st env blk fs obj map_id;
        store_field st blk obj (Heap.object_inline_base + s) (to_tagged st blk v)
      | Some [ (old_map, Feedback.Transition { new_map; slot = s }) ]
        when (Heap.map_info_by_id h new_map).Heap.itype <> Heap.It_array
             && s < Heap.inline_slots ->
        check_map st env blk fs obj old_map;
        let new_ptr = (Heap.map_info_by_id h new_map).Heap.map_ptr in
        store_field st blk obj 0 (const st new_ptr);
        store_field st blk obj (Heap.object_inline_base + s) (to_tagged st blk v);
        record_fact st env obj (fun f -> f.f_map <- Some new_map)
      | Some _ | None -> generic_set_named blk obj name v
    end
  in

  let bounds_check env blk fs obj key =
    if Arch.can_fold_memory_operand st.cfg.arch then
      ignore
        (Son.add_node g blk ~fs
           (Son.N_check
              { reason = Insn.Out_of_bounds;
                ckind = Son.C_cmp_mem (addr_off Heap.array_length_field);
                cond = Insn.Hs })
           [| key; obj |])
    else begin
      let len = load_field st blk obj Heap.array_length_field in
      ignore
        (Son.add_node g blk ~fs
           (Son.N_check
              { reason = Insn.Out_of_bounds; ckind = Son.C_cmp_reg;
                cond = Insn.Hs })
           [| key; len |]);
      record_fact st env len (fun f -> f.f_smi <- true)
    end
  in

  let lower_get_keyed env blk fs obj key slot =
    if uninit slot then begin
      soft_deopt env blk fs;
      env.e_acc
    end
    else begin
      match Feedback.elem_info fvec slot with
      | Some ([ map_id ], true) -> (
        let minfo = Heap.map_info_by_id h map_id in
        match minfo.Heap.elements_kind with
        | None ->
          call_builtin st blk Builtins.id_rt_get_keyed
            [| undef st; to_tagged st blk obj; to_tagged st blk key |]
        | Some ek ->
          let key = to_smi_tagged st env blk fs key in
          check_map st env blk fs obj map_id;
          bounds_check env blk fs obj key;
          let elements = load_field st blk obj Heap.array_elements_field in
          (match ek with
          | Heap.Packed_smi ->
            let v =
              Son.add_node g blk
                (Son.N_load
                   { offset = addr_off Heap.elements_header; scale = 1;
                     kind = Son.M_tagged })
                [| elements; key |]
            in
            if st.cfg.trust_elements_kind then
              record_fact st env v (fun f -> f.f_smi <- true);
            v
          | Heap.Packed_double ->
            Son.add_node g blk
              (Son.N_load
                 { offset = addr_off Heap.elements_header; scale = 2;
                   kind = Son.M_float })
              [| elements; key |]
          | Heap.Packed_tagged ->
            Son.add_node g blk
              (Son.N_load
                 { offset = addr_off Heap.elements_header; scale = 1;
                   kind = Son.M_tagged })
              [| elements; key |]))
      | Some _ | None ->
        call_builtin st blk Builtins.id_rt_get_keyed
          [| undef st; to_tagged st blk obj; to_tagged st blk key |]
    end
  in

  let lower_set_keyed env blk fs obj key v slot =
    let generic () =
      ignore
        (call_builtin st blk Builtins.id_rt_set_keyed
           [| undef st; to_tagged st blk obj; to_tagged st blk key;
              to_tagged st blk v |])
    in
    if uninit slot then soft_deopt env blk fs
    else begin
      match Feedback.elem_info fvec slot with
      | Some ([ map_id ], true) -> (
        let minfo = Heap.map_info_by_id h map_id in
        match minfo.Heap.elements_kind with
        | None -> generic ()
        | Some ek ->
          let key = to_smi_tagged st env blk fs key in
          check_map st env blk fs obj map_id;
          bounds_check env blk fs obj key;
          let elements = load_field st blk obj Heap.array_elements_field in
          (match ek with
          | Heap.Packed_smi ->
            let vt = to_smi_tagged st env blk fs v in
            ignore
              (Son.add_node g blk
                 (Son.N_store
                    { offset = addr_off Heap.elements_header; scale = 1;
                      kind = Son.M_tagged })
                 [| elements; key; vt |])
          | Heap.Packed_double ->
            let fv = to_float st env blk fs v in
            ignore
              (Son.add_node g blk
                 (Son.N_store
                    { offset = addr_off Heap.elements_header; scale = 2;
                      kind = Son.M_float })
                 [| elements; key; fv |])
          | Heap.Packed_tagged ->
            ignore
              (Son.add_node g blk
                 (Son.N_store
                    { offset = addr_off Heap.elements_header; scale = 1;
                      kind = Son.M_tagged })
                 [| elements; key; to_tagged st blk v |])))
      | Some _ | None -> generic ()
    end
  in

  let js_args env first n = Array.init n (fun i -> env.e_regs.(first + i)) in

  let check_callee_fid env blk fs callee fid =
    check_map st env blk fs callee (Heap.function_map_id h);
    let id_node = load_field st blk callee Heap.function_id_field in
    ignore
      (Son.add_node g blk ~fs
         (Son.N_check
            { reason = Insn.Wrong_value; ckind = Son.C_cmp_reg; cond = Insn.Ne })
         [| id_node; smi_const st fid |])
  in

  let generic_call blk callee this args =
    if Array.length args > 5 then bailout "too many arguments for generic call";
    let inputs =
      Array.concat
        [ [| undef st; to_tagged st blk callee; this |];
          Array.map (fun a -> to_tagged st blk a) args ]
    in
    call_builtin st blk Builtins.id_rt_call inputs
  in

  let lower_call env blk fs callee this args slot =
    if uninit slot then begin
      soft_deopt env blk fs;
      env.e_acc
    end
    else begin
      match Feedback.call_target fvec slot with
      | Some (fid, _) when fid >= Runtime.builtin_base ->
        (* Direct builtin call; verify the callee function identity. *)
        check_callee_fid env blk fs callee fid;
        let inputs =
          Array.concat
            [ [| this |]; Array.map (fun a -> to_tagged st blk a) args ]
        in
        if Array.length inputs > Insn.num_arg_regs then
          bailout "too many builtin arguments";
        call_builtin st blk (fid - Runtime.builtin_base) inputs
      | Some (fid, _) ->
        check_callee_fid env blk fs callee fid;
        let inputs =
          Array.concat
            [ [| to_tagged st blk callee; this |];
              Array.map (fun a -> to_tagged st blk a) args ]
        in
        if Array.length inputs > Insn.num_arg_regs then
          bailout "too many call arguments";
        Son.add_node g blk
          (Son.N_call_js { target = Some fid; argc = Array.length inputs })
          inputs
      | None -> generic_call blk callee this args
    end
  in

  let lower_call_method env blk fs recv name args load_slot =
    let call_slot = load_slot + 1 in
    let generic () =
      if Array.length args > 5 then bailout "too many method arguments";
      let inputs =
        Array.concat
          [ [| undef st; to_tagged st blk recv; const st (Heap.intern h name) |];
            Array.map (fun a -> to_tagged st blk a) args ]
      in
      call_builtin st blk Builtins.id_rt_call_method inputs
    in
    match Feedback.call_target fvec call_slot with
    | Some (fid, fobj) when fid >= Runtime.builtin_base -> (
      let b = fid - Runtime.builtin_base in
      let is_string_m = Builtins.string_method name = Some b in
      let is_array_m = Builtins.array_method name = Some b in
      if is_string_m || is_array_m then begin
        check_instance_type st env blk fs recv
          (if is_string_m then Heap.It_string else Heap.It_array);
        let inputs =
          Array.concat
            [ [| to_tagged st blk recv |];
              Array.map (fun a -> to_tagged st blk a) args ]
        in
        if Array.length inputs > Insn.num_arg_regs then
          bailout "too many builtin arguments";
        call_builtin st blk b inputs
      end
      else begin
        match Feedback.prop_entries fvec load_slot with
        | Some [ (_, _) ] ->
          let m = lower_get_named env blk fs recv name load_slot in
          ignore fobj;
          ignore m;
          let inputs =
            Array.concat
              [ [| to_tagged st blk recv |];
                Array.map (fun a -> to_tagged st blk a) args ]
          in
          (* Guard the loaded method's identity before calling direct. *)
          ignore
            (Son.add_node g blk ~fs
               (Son.N_check
                  { reason = Insn.Wrong_value; ckind = Son.C_cmp_reg;
                    cond = Insn.Ne })
               [| m; const st fobj |]);
          if Array.length inputs > Insn.num_arg_regs then
            bailout "too many builtin arguments";
          call_builtin st blk b inputs
        | _ -> generic ()
      end)
    | Some (fid, fobj) -> (
      match Feedback.prop_entries fvec load_slot with
      | Some [ (_, _) ] ->
        let m = lower_get_named env blk fs recv name load_slot in
        ignore
          (Son.add_node g blk ~fs
             (Son.N_check
                { reason = Insn.Wrong_value; ckind = Son.C_cmp_reg;
                  cond = Insn.Ne })
             [| m; const st fobj |]);
        let inputs =
          Array.concat
            [ [| m; to_tagged st blk recv |];
              Array.map (fun a -> to_tagged st blk a) args ]
        in
        if Array.length inputs > Insn.num_arg_regs then
          bailout "too many call arguments";
        Son.add_node g blk
          (Son.N_call_js { target = Some fid; argc = Array.length inputs })
          inputs
      | _ -> generic ())
    | None ->
      if uninit call_slot then begin
        soft_deopt env blk fs;
        env.e_acc
      end
      else generic ()
  in

  (* ---------------------------------------------------------------- *)
  (* Block processing                                                   *)
  (* ---------------------------------------------------------------- *)
  let n_ops = Array.length code in
  for b = 0 to n_cb - 1 do
    if cfg_info.reachable.(b) then begin
      match entry_env_of b with
      | None -> ()
      | Some env ->
        let blk = blocks.(b) in
        (* V8 places interrupt/stack checks at function entry and at
           loop back-edges. *)
        if b = 0 || is_loop_header.(b) then
          ignore (Son.add_node g blk Son.N_stack_check [||]);
        let start = cfg_info.block_pcs.(b) in
        let stop = if b + 1 < n_cb then cfg_info.block_pcs.(b + 1) else n_ops in
        let terminated = ref false in
        let pc = ref start in
        while not !terminated && !pc < stop do
          let op = code.(!pc) in
          let fs = capture_fs liveness info.Bytecode.n_regs env !pc in
          (match op with
          | Bytecode.Lda_zero -> env.e_acc <- smi_const st 0
          | Bytecode.Lda_smi v -> env.e_acc <- smi_const st v
          | Bytecode.Lda_const i -> env.e_acc <- const st consts_tagged.(i)
          | Bytecode.Lda_undefined -> env.e_acc <- undef st
          | Bytecode.Lda_null -> env.e_acc <- const st (Heap.null_value h)
          | Bytecode.Lda_true -> env.e_acc <- const st (Heap.true_value h)
          | Bytecode.Lda_false -> env.e_acc <- const st (Heap.false_value h)
          | Bytecode.Ldar r -> env.e_acc <- env.e_regs.(r)
          | Bytecode.Star r -> env.e_regs.(r) <- env.e_acc
          | Bytecode.Mov (d, s) -> env.e_regs.(d) <- env.e_regs.(s)
          | Bytecode.Lda_global c ->
            let cell = Heap.global_cell h (name_of_const c) in
            env.e_acc <- load_field st blk (const st cell) 1
          | Bytecode.Sta_global c ->
            let cell = Heap.global_cell h (name_of_const c) in
            store_field st blk (const st cell) 1 (to_tagged st blk env.e_acc)
          | Bytecode.Lda_context (depth, slot) ->
            let c = ref (ctx_node blk) in
            for _ = 1 to depth do
              c := load_field st blk !c Heap.context_parent_field
            done;
            env.e_acc <- load_field st blk !c (Heap.context_slots_field + slot)
          | Bytecode.Sta_context (depth, slot) ->
            let c = ref (ctx_node blk) in
            for _ = 1 to depth do
              c := load_field st blk !c Heap.context_parent_field
            done;
            store_field st blk !c (Heap.context_slots_field + slot)
              (to_tagged st blk env.e_acc)
          | Bytecode.Binop (bop, r, slot) -> (
            let a = env.e_regs.(r) and bv = env.e_acc in
            match bop with
            | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
              env.e_acc <- lower_arith env blk fs bop a bv slot
            | Ast.Bit_and | Ast.Bit_or | Ast.Bit_xor | Ast.Shl | Ast.Shr
            | Ast.Ushr ->
              env.e_acc <- lower_bitop env blk fs bop a bv slot
            | _ -> bailout "unexpected binop")
          | Bytecode.Test (bop, r, slot) ->
            env.e_acc <- lower_test env blk fs bop env.e_regs.(r) env.e_acc slot
          | Bytecode.Neg_acc slot -> (
            match Feedback.binop_type fvec slot with
            | Feedback.Ot_none -> soft_deopt env blk fs
            | Feedback.Ot_smi when kind_of st env.e_acc <> Son.K_float ->
              let v = to_smi_tagged st env blk fs env.e_acc in
              (* Negating zero must produce -0: deopt. *)
              ignore
                (Son.add_node g blk ~fs
                   (Son.N_check
                      { reason = Insn.Minus_zero; ckind = Son.C_cmp_imm 0;
                        cond = Insn.Eq })
                   [| v |]);
              env.e_acc <-
                Son.add_node g blk ~fs Son.N_smi_sub_checked
                  [| smi_const st 0; v |]
            | _ ->
              let fv = to_float st env blk fs env.e_acc in
              env.e_acc <-
                Son.add_node g blk (Son.N_float_binop Insn.Fmul)
                  [| fv; fconst st (-1.0) |])
          | Bytecode.Bitnot_acc slot -> (
            match Feedback.binop_type fvec slot with
            | Feedback.Ot_none -> soft_deopt env blk fs
            | _ ->
              let ai = to_int32 st env blk fs env.e_acc in
              let r =
                Son.add_node g blk (Son.N_int_binop Insn.Eor)
                  [| ai; smi_const st (-1) |]
              in
              (* xor with an untagged -1: inputs must be raw; use a raw
                 constant through untag of smi const. *)
              ignore r;
              let minus1 =
                Son.add_node g blk Son.N_smi_untag [| smi_const st (-1) |]
              in
              let r =
                Son.add_node g blk (Son.N_int_binop Insn.Eor) [| ai; minus1 |]
              in
              env.e_acc <- Son.add_node g blk Son.N_smi_tag [| r |])
          | Bytecode.Not_acc ->
            let c = branch_cond env blk fs env.e_acc in
            let cn = Son.node g c in
            let inverted =
              match cn.Son.op with
              | Son.N_cmp { ckind; cond } ->
                Son.add_node g blk
                  (Son.N_cmp { ckind; cond = Insn.negate_cond cond })
                  (Array.copy cn.Son.inputs)
              | _ -> bailout "internal: branch_cond returned non-cmp"
            in
            env.e_acc <- inverted
          | Bytecode.Typeof_acc ->
            env.e_acc <-
              call_builtin st blk Builtins.id_rt_typeof
                [| undef st; to_tagged st blk env.e_acc |]
          | Bytecode.Get_named (r, c, slot) ->
            env.e_acc <-
              lower_get_named env blk fs env.e_regs.(r) (name_of_const c) slot
          | Bytecode.Set_named (r, c, slot) ->
            lower_set_named env blk fs env.e_regs.(r) (name_of_const c) slot
              env.e_acc
          | Bytecode.Get_keyed (r, slot) ->
            env.e_acc <- lower_get_keyed env blk fs env.e_regs.(r) env.e_acc slot
          | Bytecode.Set_keyed (r, k, slot) ->
            lower_set_keyed env blk fs env.e_regs.(r) env.e_regs.(k) env.e_acc
              slot
          | Bytecode.Create_array cap ->
            env.e_acc <-
              call_builtin st blk Builtins.id_rt_create_array
                [| undef st; smi_const st cap |]
          | Bytecode.Create_object ->
            env.e_acc <-
              call_builtin st blk Builtins.id_rt_create_object [| undef st |]
          | Bytecode.Create_closure fid ->
            env.e_acc <-
              call_builtin st blk Builtins.id_rt_create_closure
                [| undef st; smi_const st fid; ctx_node blk |]
          | Bytecode.Call (callee_r, first, n, slot) ->
            env.e_acc <-
              lower_call env blk fs env.e_regs.(callee_r) (undef st)
                (js_args env first n) slot
          | Bytecode.Call_method (recv_r, name_c, first, n, slot) ->
            env.e_acc <-
              lower_call_method env blk fs env.e_regs.(recv_r)
                (name_of_const name_c) (js_args env first n) slot
          | Bytecode.Construct (callee_r, first, n, slot) ->
            if uninit slot then soft_deopt env blk fs
            else begin
              let args = js_args env first n in
              if Array.length args > 5 then bailout "too many constructor args";
              let inputs =
                Array.concat
                  [ [| undef st; to_tagged st blk env.e_regs.(callee_r) |];
                    Array.map (fun a -> to_tagged st blk a) args ]
              in
              env.e_acc <- call_builtin st blk Builtins.id_rt_construct inputs
            end
          | Bytecode.Jump t ->
            Son.set_term g blk (Son.T_goto cfg_info.block_index.(t));
            terminated := true
          | Bytecode.Jump_if_false t ->
            let c = branch_cond env blk fs env.e_acc in
            Son.set_term g blk
              (Son.T_branch
                 { cond = c; if_true = cfg_info.block_index.(!pc + 1);
                   if_false = cfg_info.block_index.(t) });
            terminated := true
          | Bytecode.Jump_if_true t ->
            let c = branch_cond env blk fs env.e_acc in
            Son.set_term g blk
              (Son.T_branch
                 { cond = c; if_true = cfg_info.block_index.(t);
                   if_false = cfg_info.block_index.(!pc + 1) });
            terminated := true
          | Bytecode.Return ->
            Son.set_term g blk (Son.T_return (to_tagged st blk env.e_acc));
            terminated := true);
          incr pc
        done;
        if not !terminated then begin
          (* Fallthrough. *)
          if b + 1 < n_cb then Son.set_term g blk (Son.T_goto (b + 1))
          else bailout "internal: function fell off the end"
        end;
        exit_envs.(b) <- Some env;
        patch_backedges b
    end
  done;
  ignore empty_tables;
  Son.seal g;
  g

(* Two passes: the first discovers loop-invariant facts, the second
   builds the real graph with hoisted (seeded + edge-guarded) checks. *)
let build cfg rt f =
  Trace.span_wall ~cat:"turbofan" ~arg:f.Runtime.info.Bytecode.name
    "graph-build" (fun () ->
      let seeds = Hashtbl.create 32 in
      if not cfg.turboprop then
        ignore (build_pass cfg rt f ~seeds ~record_seeds:true);
      build_pass cfg rt f ~seeds ~record_seeds:false)
