type value_kind = K_tagged | K_float | K_int32 | K_bool

type cmp_kind =
  | C_tst_imm of int
  | C_cmp_imm of int
  | C_cmp_reg
  | C_cmp_mem of int
  | C_fcmp
  | C_always

type mem_kind = M_tagged | M_float

type frame_state = { fs_bc_pc : int; fs_regs : int array; fs_acc : int }

type op =
  | N_param of int
  | N_const of int
  | N_fconst of float
  | N_int_binop of Insn.alu_op
  | N_smi_add_checked
  | N_smi_sub_checked
  | N_smi_mul_checked
  | N_smi_div_checked
  | N_smi_mod_checked
  | N_smi_untag
  | N_smi_tag
  | N_smi_tag_checked
  | N_float_binop of Insn.falu_op
  | N_int_to_float
  | N_float_to_int
  | N_to_float
  | N_cmp of { ckind : cmp_kind; cond : Insn.cond }
  | N_load of { offset : int; scale : int; kind : mem_kind }
  | N_store of { offset : int; scale : int; kind : mem_kind }
  | N_check of { reason : Insn.deopt_reason; ckind : cmp_kind; cond : Insn.cond }
  | N_soft_deopt of Insn.deopt_reason
  | N_js_ldr_smi of { offset : int; scale : int }
  | N_js_chk_map of { offset : int; expected : int }
  | N_call_builtin of { builtin : int; argc : int }
  | N_call_js of { target : int option; argc : int }
  | N_stack_check
  | N_phi

type node = {
  nid : int;
  mutable op : op;
  mutable inputs : int array;
  mutable fs : frame_state option;
  mutable kind : value_kind;
  mutable block : int;
}

type terminator =
  | T_none
  | T_goto of int
  | T_branch of { cond : int; if_true : int; if_false : int }
  | T_return of int

type block = {
  bid : int;
  mutable body : int list;
  mutable term : terminator;
  mutable preds : int list;
  mutable is_loop_header : bool;
}

type t = {
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable blocks : block array;
  mutable n_blocks : int;
  fname : string;
}

let dummy_node =
  { nid = -1; op = N_phi; inputs = [||]; fs = None; kind = K_tagged; block = -1 }

let dummy_block =
  { bid = -1; body = []; term = T_none; preds = []; is_loop_header = false }

let create fname =
  { nodes = Array.make 64 dummy_node; n_nodes = 0; blocks = Array.make 8 dummy_block;
    n_blocks = 0; fname }

let node t i = t.nodes.(i)
let block t i = t.blocks.(i)

let new_block t =
  if t.n_blocks >= Array.length t.blocks then begin
    let bigger = Array.make (2 * Array.length t.blocks) dummy_block in
    Array.blit t.blocks 0 bigger 0 t.n_blocks;
    t.blocks <- bigger
  end;
  let b =
    { bid = t.n_blocks; body = []; term = T_none; preds = []; is_loop_header = false }
  in
  t.blocks.(t.n_blocks) <- b;
  t.n_blocks <- t.n_blocks + 1;
  b

let push_node t n =
  if t.n_nodes >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) dummy_node in
    Array.blit t.nodes 0 bigger 0 t.n_nodes;
    t.nodes <- bigger
  end;
  t.nodes.(t.n_nodes) <- n;
  t.n_nodes <- t.n_nodes + 1;
  n.nid

let default_kind = function
  | N_param _ | N_const _ | N_smi_add_checked | N_smi_sub_checked
  | N_smi_mul_checked | N_smi_div_checked | N_smi_mod_checked | N_smi_tag
  | N_smi_tag_checked | N_call_builtin _ | N_call_js _ | N_phi ->
    K_tagged
  | N_stack_check -> K_tagged
  | N_fconst _ | N_float_binop _ | N_int_to_float | N_to_float -> K_float
  | N_int_binop _ | N_smi_untag | N_float_to_int | N_js_ldr_smi _ -> K_int32
  | N_js_chk_map _ -> K_tagged (* no value *)
  | N_cmp _ -> K_bool
  | N_load { kind = M_float; _ } -> K_float
  | N_load _ -> K_tagged
  | N_store _ | N_check _ | N_soft_deopt _ -> K_tagged (* no value *)

let add_node t (b : block) ?fs ?kind op inputs =
  let n =
    { nid = t.n_nodes; op; inputs; fs;
      kind = (match kind with Some k -> k | None -> default_kind op);
      block = b.bid }
  in
  let id = push_node t n in
  b.body <- id :: b.body;  (* reversed; finalized by [seal_body] *)
  id

(* Body lists are built reversed; normalize lazily. *)
let seal t =
  for i = 0 to t.n_blocks - 1 do
    t.blocks.(i).body <- List.rev t.blocks.(i).body
  done

let add_floating t ?kind op inputs =
  let n =
    { nid = t.n_nodes; op; inputs; fs = None;
      kind = (match kind with Some k -> k | None -> default_kind op);
      block = -1 }
  in
  push_node t n

let prepend_phi t (b : block) nid =
  (node t nid).block <- b.bid;
  (* body is reversed during construction: appending keeps the phi at
     the sealed-list head only if added before anything else; instead we
     append at the logical front by putting it at the end of the
     reversed list. *)
  b.body <- b.body @ [ nid ]

let set_term _t (b : block) term = b.term <- term

let is_effectful = function
  | N_store _ | N_check _ | N_soft_deopt _ | N_call_builtin _ | N_call_js _
  | N_stack_check | N_js_chk_map _ ->
    true
  | N_param _ | N_const _ | N_fconst _ | N_int_binop _ | N_smi_add_checked
  | N_smi_sub_checked | N_smi_mul_checked | N_smi_div_checked
  | N_smi_mod_checked | N_smi_untag | N_smi_tag | N_smi_tag_checked
  | N_float_binop _ | N_int_to_float | N_float_to_int | N_to_float | N_cmp _
  | N_load _ | N_js_ldr_smi _ | N_phi ->
    false

let check_group_of n =
  match n.op with
  | N_check { reason; _ } | N_soft_deopt reason ->
    Some (Insn.group_of_reason reason)
  | N_js_ldr_smi _ -> Some Insn.G_not_smi
  | N_js_chk_map _ -> Some Insn.G_type
  | _ -> None

let dead_code_elimination t =
  let marked = Array.make t.n_nodes false in
  let work = Stack.create () in
  let mark i =
    if i >= 0 && not marked.(i) then begin
      marked.(i) <- true;
      Stack.push i work
    end
  in
  for b = 0 to t.n_blocks - 1 do
    let blk = t.blocks.(b) in
    List.iter
      (fun i -> if is_effectful (node t i).op then mark i)
      blk.body;
    (match blk.term with
    | T_none | T_goto _ -> ()
    | T_branch { cond; _ } -> mark cond
    | T_return v -> mark v)
  done;
  while not (Stack.is_empty work) do
    let i = Stack.pop work in
    let n = node t i in
    Array.iter mark n.inputs;
    match n.fs with
    | None -> ()
    | Some fs ->
      Array.iter mark fs.fs_regs;
      mark fs.fs_acc
  done;
  let removed = ref 0 in
  for b = 0 to t.n_blocks - 1 do
    let blk = t.blocks.(b) in
    let keep, drop = List.partition (fun i -> marked.(i)) blk.body in
    removed := !removed + List.length drop;
    blk.body <- keep
  done;
  !removed

let node_count t =
  let c = ref 0 in
  for b = 0 to t.n_blocks - 1 do
    c := !c + List.length t.blocks.(b).body
  done;
  !c

let op_name = function
  | N_param i -> Printf.sprintf "Parameter[%d]" i
  | N_const c -> Printf.sprintf "Constant[%d]" c
  | N_fconst f -> Printf.sprintf "Float64Constant[%g]" f
  | N_int_binop op -> Printf.sprintf "Int32%s" (String.capitalize_ascii
      (match op with
      | Insn.Add -> "add" | Insn.Sub -> "sub" | Insn.Mul -> "mul"
      | Insn.Sdiv -> "div" | Insn.Smod -> "mod" | Insn.And -> "and"
      | Insn.Orr -> "or" | Insn.Eor -> "xor" | Insn.Lsl -> "shl"
      | Insn.Lsr -> "shr" | Insn.Asr -> "sar"))
  | N_smi_add_checked -> "CheckedSmiAdd"
  | N_smi_sub_checked -> "CheckedSmiSub"
  | N_smi_mul_checked -> "CheckedSmiMul"
  | N_smi_div_checked -> "CheckedSmiDiv"
  | N_smi_mod_checked -> "CheckedSmiMod"
  | N_smi_untag -> "SmiUntag"
  | N_smi_tag -> "SmiTag"
  | N_smi_tag_checked -> "CheckedSmiTag"
  | N_float_binop op ->
    (match op with
    | Insn.Fadd -> "Float64Add" | Insn.Fsub -> "Float64Sub"
    | Insn.Fmul -> "Float64Mul" | Insn.Fdiv -> "Float64Div")
  | N_int_to_float -> "ChangeInt32ToFloat64"
  | N_float_to_int -> "TruncateFloat64ToInt32"
  | N_to_float -> "CheckedTaggedToFloat64"
  | N_cmp _ -> "Compare"
  | N_load { kind = M_float; _ } -> "LoadFloat64"
  | N_load _ -> "LoadTagged"
  | N_store { kind = M_float; _ } -> "StoreFloat64"
  | N_store _ -> "StoreTagged"
  | N_check { reason; _ } ->
    Printf.sprintf "Check[%s]" (Insn.reason_name reason)
  | N_soft_deopt reason ->
    Printf.sprintf "SoftDeopt[%s]" (Insn.reason_name reason)
  | N_js_ldr_smi _ -> "JsLdrSmi"
  | N_js_chk_map _ -> "JsChkMap"
  | N_call_builtin { builtin; _ } -> Printf.sprintf "CallBuiltin[%d]" builtin
  | N_call_js { target = Some f; _ } -> Printf.sprintf "CallJS[f%d]" f
  | N_call_js { target = None; _ } -> "CallJS[dyn]"
  | N_stack_check -> "StackCheck"
  | N_phi -> "Phi"

let to_string t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf ";; graph of %s: %d nodes, %d blocks\n"
                           t.fname (node_count t) t.n_blocks);
  for b = 0 to t.n_blocks - 1 do
    let blk = t.blocks.(b) in
    Buffer.add_string buf
      (Printf.sprintf "B%d%s (preds: %s):\n" b
         (if blk.is_loop_header then " [loop]" else "")
         (String.concat "," (List.map string_of_int blk.preds)));
    List.iter
      (fun i ->
        let n = node t i in
        Buffer.add_string buf
          (Printf.sprintf "  n%d = %s(%s)\n" i (op_name n.op)
             (String.concat ", "
                (Array.to_list (Array.map (Printf.sprintf "n%d") n.inputs)))))
      blk.body;
    (match blk.term with
    | T_none -> ()
    | T_goto b' -> Buffer.add_string buf (Printf.sprintf "  goto B%d\n" b')
    | T_branch { cond; if_true; if_false } ->
      Buffer.add_string buf
        (Printf.sprintf "  branch n%d ? B%d : B%d\n" cond if_true if_false)
    | T_return v -> Buffer.add_string buf (Printf.sprintf "  return n%d\n" v))
  done;
  Buffer.contents buf
