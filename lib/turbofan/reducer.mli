(** Graph reductions.

    [short_circuit_checks] implements the paper's check-removal
    methodology (Fig 5): checks of the selected groups are
    short-circuited so they and every ancestor node used only by them
    become dead and are removed by DCE — e.g. removing a bounds check
    also removes its array-length load.

    [fuse_smi_loads] implements the compiler side of the ISA extension
    (Section V): a tagged load whose only consumers are a Not-a-SMI
    check and an untagging shift is replaced by a single [jsldrsmi]
    node. *)

type stats = {
  checks_removed : int;
  nodes_dce_removed : int;
}

val short_circuit_checks : Son.t -> groups:Insn.check_group list -> stats
(** Removes eager checks whose group is in [groups], then runs
    dead-code elimination.  Soft deopts are never removed: they are
    control transfers to the interpreter, not verifications. *)

val fuse_smi_loads : Son.t -> int
(** Returns the number of load/check/untag triples fused into
    [jsldrsmi] nodes.  Only meaningful on [Arm64_smi_ext]. *)

val fuse_map_checks : Son.t -> int
(** Future-work prototype (paper Section VII): map-word loads whose
    only consumer is a Wrong-Map check become single fused
    [jschkmap] instructions with branch-free bailout. *)

val run_dce : Son.t -> int
