exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

(* Frame layout: slot 0 = closure, 1-2 = saved fp/lr, 3.. = interpreter
   registers, then the accumulator, then the context. *)
let reg_slot r = 3 + r

let compile ~code_id ~base_addr ~arch rt (f : Runtime.func_rt) =
  let info = f.Runtime.info in
  let h = rt.Runtime.heap in
  let consts = Runtime.materialize_consts rt f in
  let n_regs = info.Bytecode.n_regs in
  let acc_slot = 3 + n_regs in
  let ctx_slot = acc_slot + 1 in
  let undef = Heap.undefined h in
  let false_w = Heap.false_value h in
  let true_w = Heap.true_value h in
  let out = ref [] in
  let emit ?comment k = out := Insn.make ?comment k :: !out in
  let next_label = ref (Array.length info.Bytecode.code) in
  let fresh_label () =
    let l = !next_label in
    incr next_label;
    l
  in
  let load_reg dst r = emit (Insn.Reload (dst, reg_slot r)) in
  let load_acc dst = emit (Insn.Reload (dst, acc_slot)) in
  let store_acc src = emit (Insn.Spill (acc_slot, src)) in
  let name_of c =
    match info.Bytecode.consts.(c) with
    | Bytecode.C_str s -> Heap.intern h s
    | Bytecode.C_num _ -> unsupported "numeric constant as name"
  in
  (* Generic builtin call: moves already-placed argument registers are
     the caller's job; this emits the call and stores r0 to acc. *)
  let call_builtin b argc =
    emit (Insn.Call (Insn.Builtin b, argc));
    store_acc 0
  in
  let binop_call code lhs_reg =
    (* rt_binop(this=undef, opcode, lhs, acc) *)
    load_reg 2 lhs_reg;
    load_acc 3;
    emit (Insn.Mov (0, Insn.Imm undef));
    emit (Insn.Mov (1, Insn.Imm (Value.smi code)));
    call_builtin Builtins.id_rt_binop 4
  in
  let to_boolean_acc () =
    load_acc 1;
    emit (Insn.Mov (0, Insn.Imm undef));
    emit (Insn.Call (Insn.Builtin Builtins.id_rt_to_boolean, 2))
    (* result left in r0, deliberately not stored *)
  in
  let context_chain dst depth =
    emit (Insn.Reload (dst, ctx_slot));
    for _ = 1 to depth do
      emit (Insn.Ldr (dst, Insn.mk_addr ~offset:((2 * Heap.context_parent_field) - 1) dst))
    done
  in

  (* ---------------- Prologue ---------------- *)
  emit ~comment:"push fp" (Insn.Spill (1, 15));
  emit ~comment:"push lr" (Insn.Spill (2, 16));
  emit ~comment:"closure" (Insn.Spill (0, 0));
  (* Parameters: machine args r1 = this, r2.. = params. *)
  emit (Insn.Spill (reg_slot 0, 1));
  for i = 0 to info.Bytecode.n_params - 1 do
    emit (Insn.Spill (reg_slot (1 + i), 2 + i))
  done;
  emit (Insn.Mov (1, Insn.Imm undef));
  for r = 1 + info.Bytecode.n_params to n_regs - 1 do
    emit (Insn.Spill (reg_slot r, 1))
  done;
  emit (Insn.Spill (acc_slot, 1));
  (* Context: the closure's context, or a fresh one when this function
     allocates slots for captured locals. *)
  emit (Insn.Ldr (1, Insn.mk_addr ~offset:((2 * Heap.function_context_field) - 1) 0));
  if info.Bytecode.context_slots > 0 then begin
    emit (Insn.Mov (2, Insn.Imm (Value.smi info.Bytecode.context_slots)));
    emit (Insn.Mov (0, Insn.Imm undef));
    (* rt_create_context(this=undef, parent, slots) -- parent already in r1 *)
    emit (Insn.Call (Insn.Builtin Builtins.id_rt_create_context, 3));
    emit (Insn.Spill (ctx_slot, 0))
  end
  else emit (Insn.Spill (ctx_slot, 1));

  (* ---------------- Body ---------------- *)
  Array.iteri
    (fun pc op ->
      emit (Insn.Label pc);
      match op with
      | Bytecode.Lda_zero ->
        emit (Insn.Mov (0, Insn.Imm (Value.smi 0)));
        store_acc 0
      | Bytecode.Lda_smi n ->
        emit (Insn.Mov (0, Insn.Imm (Value.smi n)));
        store_acc 0
      | Bytecode.Lda_const i ->
        emit (Insn.Mov (0, Insn.Imm consts.(i)));
        store_acc 0
      | Bytecode.Lda_undefined ->
        emit (Insn.Mov (0, Insn.Imm undef));
        store_acc 0
      | Bytecode.Lda_null ->
        emit (Insn.Mov (0, Insn.Imm (Heap.null_value h)));
        store_acc 0
      | Bytecode.Lda_true ->
        emit (Insn.Mov (0, Insn.Imm true_w));
        store_acc 0
      | Bytecode.Lda_false ->
        emit (Insn.Mov (0, Insn.Imm false_w));
        store_acc 0
      | Bytecode.Ldar r ->
        load_reg 0 r;
        store_acc 0
      | Bytecode.Star r ->
        load_acc 0;
        emit (Insn.Spill (reg_slot r, 0))
      | Bytecode.Mov (d, s) ->
        load_reg 0 s;
        emit (Insn.Spill (reg_slot d, 0))
      | Bytecode.Lda_global c -> (
        match info.Bytecode.consts.(c) with
        | Bytecode.C_str name ->
          let cell = Heap.global_cell h name in
          emit (Insn.Mov (1, Insn.Imm cell));
          emit (Insn.Ldr (0, Insn.mk_addr ~offset:1 1));
          store_acc 0
        | Bytecode.C_num _ -> unsupported "numeric global name")
      | Bytecode.Sta_global c -> (
        match info.Bytecode.consts.(c) with
        | Bytecode.C_str name ->
          let cell = Heap.global_cell h name in
          emit (Insn.Mov (1, Insn.Imm cell));
          load_acc 0;
          emit (Insn.Str (Insn.mk_addr ~offset:1 1, 0))
        | Bytecode.C_num _ -> unsupported "numeric global name")
      | Bytecode.Lda_context (depth, slot) ->
        context_chain 1 depth;
        emit
          (Insn.Ldr
             (0, Insn.mk_addr ~offset:((2 * (Heap.context_slots_field + slot)) - 1) 1));
        store_acc 0
      | Bytecode.Sta_context (depth, slot) ->
        context_chain 1 depth;
        load_acc 0;
        emit
          (Insn.Str
             (Insn.mk_addr ~offset:((2 * (Heap.context_slots_field + slot)) - 1) 1, 0))
      | Bytecode.Binop (op, r, _) -> binop_call (Builtins.binop_code op) r
      | Bytecode.Test (op, r, _) ->
        load_reg 2 r;
        load_acc 3;
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Mov (1, Insn.Imm (Value.smi (Builtins.binop_code op))));
        call_builtin Builtins.id_rt_compare 4
      | Bytecode.Neg_acc _ ->
        (* -x as x * -1 (preserves -0 semantics). *)
        load_acc 2;
        emit (Insn.Mov (3, Insn.Imm (Value.smi (-1))));
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Mov (1, Insn.Imm (Value.smi (Builtins.binop_code Ast.Mul))));
        call_builtin Builtins.id_rt_binop 4
      | Bytecode.Bitnot_acc _ ->
        load_acc 2;
        emit (Insn.Mov (3, Insn.Imm (Value.smi (-1))));
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Mov (1, Insn.Imm (Value.smi (Builtins.binop_code Ast.Bit_xor))));
        call_builtin Builtins.id_rt_binop 4
      | Bytecode.Not_acc ->
        to_boolean_acc ();
        let l = fresh_label () in
        emit (Insn.Cmp (0, Insn.Imm false_w));
        emit (Insn.Mov (0, Insn.Imm true_w));
        emit (Insn.Bcond (Insn.Eq, l));
        emit (Insn.Mov (0, Insn.Imm false_w));
        emit (Insn.Label l);
        store_acc 0
      | Bytecode.Typeof_acc ->
        load_acc 1;
        emit (Insn.Mov (0, Insn.Imm undef));
        call_builtin Builtins.id_rt_typeof 2
      | Bytecode.Jump t -> emit (Insn.B t)
      | Bytecode.Jump_if_false t ->
        to_boolean_acc ();
        emit (Insn.Cmp (0, Insn.Imm false_w));
        emit (Insn.Bcond (Insn.Eq, t))
      | Bytecode.Jump_if_true t ->
        to_boolean_acc ();
        emit (Insn.Cmp (0, Insn.Imm false_w));
        emit (Insn.Bcond (Insn.Ne, t))
      | Bytecode.Get_named (r, c, _) ->
        load_reg 1 r;
        emit (Insn.Mov (2, Insn.Imm (name_of c)));
        emit (Insn.Mov (0, Insn.Imm undef));
        call_builtin Builtins.id_rt_get_named 3
      | Bytecode.Set_named (r, c, _) ->
        load_reg 1 r;
        emit (Insn.Mov (2, Insn.Imm (name_of c)));
        load_acc 3;
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Call (Insn.Builtin Builtins.id_rt_set_named, 4))
      | Bytecode.Get_keyed (r, _) ->
        load_reg 1 r;
        load_acc 2;
        emit (Insn.Mov (0, Insn.Imm undef));
        call_builtin Builtins.id_rt_get_keyed 3
      | Bytecode.Set_keyed (r, k, _) ->
        load_reg 1 r;
        load_reg 2 k;
        load_acc 3;
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Call (Insn.Builtin Builtins.id_rt_set_keyed, 4))
      | Bytecode.Create_array cap ->
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Mov (1, Insn.Imm (Value.smi cap)));
        call_builtin Builtins.id_rt_create_array 2
      | Bytecode.Create_object ->
        emit (Insn.Mov (0, Insn.Imm undef));
        call_builtin Builtins.id_rt_create_object 1
      | Bytecode.Create_closure fid ->
        emit (Insn.Mov (0, Insn.Imm undef));
        emit (Insn.Mov (1, Insn.Imm (Value.smi fid)));
        emit (Insn.Reload (2, ctx_slot));
        call_builtin Builtins.id_rt_create_closure 3
      | Bytecode.Call (callee, first, n, _) ->
        if n > 5 then unsupported "too many call arguments for the baseline";
        (* rt_call(this=undef, callee, receiver=undef, args...) *)
        emit (Insn.Mov (0, Insn.Imm undef));
        load_reg 1 callee;
        emit (Insn.Mov (2, Insn.Imm undef));
        for i = 0 to n - 1 do
          load_reg (3 + i) (first + i)
        done;
        call_builtin Builtins.id_rt_call (3 + n)
      | Bytecode.Call_method (recv, c, first, n, _) ->
        if n > 5 then unsupported "too many method arguments for the baseline";
        (* rt_call_method(this=undef, recv, name, args...) *)
        emit (Insn.Mov (0, Insn.Imm undef));
        load_reg 1 recv;
        emit (Insn.Mov (2, Insn.Imm (name_of c)));
        for i = 0 to n - 1 do
          load_reg (3 + i) (first + i)
        done;
        call_builtin Builtins.id_rt_call_method (3 + n)
      | Bytecode.Construct (callee, first, n, _) ->
        if n > 5 then unsupported "too many constructor arguments for the baseline";
        emit (Insn.Mov (0, Insn.Imm undef));
        load_reg 1 callee;
        for i = 0 to n - 1 do
          load_reg (2 + i) (first + i)
        done;
        call_builtin Builtins.id_rt_construct (2 + n)
      | Bytecode.Return ->
        load_acc 0;
        emit ~comment:"pop fp" (Insn.Reload (15, 1));
        emit ~comment:"pop lr" (Insn.Reload (16, 2));
        emit Insn.Ret)
    info.Bytecode.code;
  Code.assemble ~code_id ~name:(info.Bytecode.name ^ "~baseline") ~arch
    ~deopts:[||] ~gp_slots:(ctx_slot + 1) ~fp_slots:0 ~base_addr
    (List.rev !out)
