(** Machine-code generation from the graph IR.

    Expands composite nodes into arch-specific instruction sequences:
    X64 folds memory operands into compare instructions (one-instruction
    checks), ARM64 emits separate loads (two-instruction checks), and
    [Arm64_smi_ext] lowers fused [N_js_ldr_smi] nodes to the paper's
    single-instruction SMI loads with a branch-free bailout prologue
    ([adrp/add/msr REG_BA], Fig 11).

    Every instruction carries provenance: check conditions, deopt
    branches, or main-line code — the ground truth against which the
    paper's sampling window heuristic is evaluated.

    [remove_deopt_branches] implements the paper's Fig 10 experiment:
    condition computations are emitted but the conditional deopt
    branches are not. *)

type env_consts = {
  true_word : int;
  false_word : int;
  undefined_word : int;
  heap_number_map_ptr : int;
  stack_limit_cell : int;   (** tagged pointer to the interrupt cell *)
  interrupt_builtin : int;
}

val generate :
  code_id:int ->
  base_addr:int ->
  arch:Arch.t ->
  remove_deopt_branches:bool ->
  consts:env_consts ->
  Son.t ->
  Code.t
