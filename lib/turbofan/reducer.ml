type stats = { checks_removed : int; nodes_dce_removed : int }

let run_dce = Son.dead_code_elimination

let short_circuit_checks (g : Son.t) ~groups =
  let removed = ref 0 in
  for b = 0 to g.Son.n_blocks - 1 do
    let blk = Son.block g b in
    blk.Son.body <-
      List.filter
        (fun i ->
          let n = Son.node g i in
          match Son.check_group_of n with
          | Some grp when List.mem grp groups -> (
            match n.Son.op with
            | Son.N_check _ ->
              incr removed;
              false
            (* Soft deopts are control flow, not verifications: removing
               one would let an unlowered site run with a bogus value. *)
            | _ -> true)
          | _ -> true)
        blk.Son.body
  done;
  let dce = if !removed > 0 then Son.dead_code_elimination g else 0 in
  if !Trace.on then
    Trace.instant_wall ~cat:"turbofan"
      ~arg:(Printf.sprintf "%s removed=%d dce=%d" g.Son.fname !removed dce)
      "reduce:short-circuit";
  { checks_removed = !removed; nodes_dce_removed = dce }

(* Value-use map: node -> consumers (via inputs) and fs-consumers. *)
let build_uses (g : Son.t) =
  let uses = Array.make g.Son.n_nodes [] in
  let fs_uses = Array.make g.Son.n_nodes [] in
  for b = 0 to g.Son.n_blocks - 1 do
    List.iter
      (fun i ->
        let n = Son.node g i in
        Array.iter (fun inp -> if inp >= 0 then uses.(inp) <- i :: uses.(inp))
          n.Son.inputs;
        match n.Son.fs with
        | None -> ()
        | Some fs ->
          Array.iter
            (fun v -> if v >= 0 then fs_uses.(v) <- i :: fs_uses.(v))
            fs.Son.fs_regs;
          if fs.Son.fs_acc >= 0 then
            fs_uses.(fs.Son.fs_acc) <- i :: fs_uses.(fs.Son.fs_acc))
      (Son.block g b).Son.body;
    (* Terminators also consume values. *)
    match (Son.block g b).Son.term with
    | Son.T_branch { cond; _ } -> uses.(cond) <- -1 :: uses.(cond)
    | Son.T_return v -> uses.(v) <- -1 :: uses.(v)
    | Son.T_none | Son.T_goto _ -> ()
  done;
  (uses, fs_uses)

let fuse_smi_loads (g : Son.t) =
  let uses, fs_uses = build_uses g in
  let fused = ref 0 in
  (* Rewrite every terminator/return use of [old] to [fresh]. *)
  let rewrite_terms old fresh =
    for bb = 0 to g.Son.n_blocks - 1 do
      let blk = Son.block g bb in
      match blk.Son.term with
      | Son.T_branch { cond; if_true; if_false } when cond = old ->
        blk.Son.term <- Son.T_branch { cond = fresh; if_true; if_false }
      | Son.T_return v when v = old -> blk.Son.term <- Son.T_return fresh
      | _ -> ()
    done
  in
  let rewrite_value_use user old fresh =
    if user >= 0 then begin
      let un = Son.node g user in
      Array.iteri (fun k inp -> if inp = old then un.Son.inputs.(k) <- fresh)
        un.Son.inputs
    end
  in
  let rewrite_fs_use user old fresh =
    let un = Son.node g user in
    match un.Son.fs with
    | None -> ()
    | Some fs ->
      Array.iteri (fun k v -> if v = old then fs.Son.fs_regs.(k) <- fresh)
        fs.Son.fs_regs;
      if fs.Son.fs_acc = old then un.Son.fs <- Some { fs with Son.fs_acc = fresh }
  in
  for b = 0 to g.Son.n_blocks - 1 do
    let blk = Son.block g b in
    (* Iterate over a snapshot: we splice nodes into the body. *)
    List.iter
      (fun i ->
        let n = Son.node g i in
        match n.Son.op with
        | Son.N_load { offset; scale; kind = Son.M_tagged } -> (
          let consumers = List.filter (fun u -> u >= 0) uses.(i) in
          let checks, others =
            List.partition
              (fun u ->
                match (Son.node g u).Son.op with
                | Son.N_check { reason = Insn.Not_a_smi; _ } ->
                  (Son.node g u).Son.inputs = [| i |]
                | _ -> false)
              consumers
          in
          match checks with
          | [ check ] ->
            let check_node = Son.node g check in
            (* The load becomes the fused instruction (untagged result). *)
            n.Son.op <- Son.N_js_ldr_smi { offset; scale };
            n.Son.kind <- Son.K_int32;
            n.Son.fs <- check_node.Son.fs;
            incr fused;
            (* Drop the check node. *)
            check_node.Son.op <- Son.N_phi;
            let cb = Son.block g check_node.Son.block in
            cb.Son.body <- List.filter (fun x -> x <> check) cb.Son.body;
            (* Untag consumers read the raw value directly; checked
               multiplies take one raw operand for free (their internal
               untag disappears); everything else goes through an
               explicit re-tag. *)
            let retag = ref (-1) in
            let get_retag () =
              if !retag >= 0 then !retag
              else begin
                let t = Son.add_floating g ~kind:Son.K_tagged Son.N_smi_tag [| i |] in
                (* Place it right after the load in the same block. *)
                let rec insert_after = function
                  | [] -> [ t ]
                  | x :: rest when x = i -> x :: t :: rest
                  | x :: rest -> x :: insert_after rest
                in
                blk.Son.body <- insert_after blk.Son.body;
                (Son.node g t).Son.block <- b;
                retag := t;
                t
              end
            in
            List.iter
              (fun u ->
                let un = Son.node g u in
                match un.Son.op with
                | Son.N_smi_untag when un.Son.inputs = [| i |] ->
                  (* Alias: forward the raw value. *)
                  List.iter (fun user -> rewrite_value_use user u i) uses.(u);
                  List.iter (fun user -> rewrite_fs_use user u i) fs_uses.(u);
                  rewrite_terms u i;
                  un.Son.op <- Son.N_phi;
                  let ub = Son.block g un.Son.block in
                  ub.Son.body <- List.filter (fun x -> x <> u) ub.Son.body
                | Son.N_load _ when Array.length un.Son.inputs >= 2
                                    && un.Son.inputs.(1) = i
                                    && un.Son.inputs.(0) <> i ->
                  (* Raw index: codegen doubles the scale instead of
                     re-tagging on the address critical path. *)
                  ()
                | Son.N_store _ when Array.length un.Son.inputs = 3
                                     && un.Son.inputs.(1) = i
                                     && un.Son.inputs.(0) <> i
                                     && un.Son.inputs.(2) <> i ->
                  ()
                | Son.N_smi_mul_checked
                | Son.N_smi_div_checked
                | Son.N_smi_mod_checked ->
                  (* Codegen handles a raw first operand; make sure the
                     raw value sits in slot 0 (mul is commutative; for
                     div/mod only the dividend may be raw). *)
                  let can_swap = un.Son.op = Son.N_smi_mul_checked in
                  let slot0_raw () =
                    (Son.node g un.Son.inputs.(0)).Son.kind = Son.K_int32
                  in
                  if un.Son.inputs.(0) = i then begin
                    (* Slot 0 takes the raw value; a raw slot 1 would be
                       misread as tagged. *)
                    if (Son.node g un.Son.inputs.(1)).Son.kind = Son.K_int32
                    then ()
                    (* both handled below when the other load fuses *)
                  end
                  else if un.Son.inputs.(1) = i && can_swap && not (slot0_raw ())
                  then begin
                    un.Son.inputs.(1) <- un.Son.inputs.(0);
                    un.Son.inputs.(0) <- i
                  end
                  else rewrite_value_use u i (get_retag ())
                | _ -> rewrite_value_use u i (get_retag ()))
              others;
            (* Frame states referencing the load keep the raw value: the
               deopt machinery re-tags int32 frame values. *)
            ()
          | _ -> ())
        | _ -> ())
      blk.Son.body
  done;
  if !fused > 0 then ignore (Son.dead_code_elimination g);
  if !Trace.on && !fused > 0 then
    Trace.instant_wall ~cat:"turbofan"
      ~arg:(Printf.sprintf "%s fused=%d" g.Son.fname !fused)
      "reduce:fuse-smi-loads";
  !fused

let fuse_map_checks (g : Son.t) =
  let uses, _ = build_uses g in
  let fused = ref 0 in
  for b = 0 to g.Son.n_blocks - 1 do
    List.iter
      (fun i ->
        let n = Son.node g i in
        match n.Son.op with
        | Son.N_load { offset = -1; scale = 0; kind = Son.M_tagged } -> (
          (* A map-word load (field 0). Fusable when its only consumer
             is a Wrong-Map compare against a constant. *)
          match List.filter (fun u -> u >= 0) uses.(i) with
          | [ check ] -> (
            let cn = Son.node g check in
            match cn.Son.op with
            | Son.N_check
                { reason = Insn.Wrong_map; ckind = Son.C_cmp_reg; _ }
              when Array.length cn.Son.inputs = 2 && cn.Son.inputs.(0) = i -> (
              match (Son.node g cn.Son.inputs.(1)).Son.op with
              | Son.N_const expected ->
                n.Son.op <- Son.N_js_chk_map { offset = -1; expected };
                n.Son.fs <- cn.Son.fs;
                incr fused;
                cn.Son.op <- Son.N_phi;
                let cb = Son.block g cn.Son.block in
                cb.Son.body <- List.filter (fun x -> x <> check) cb.Son.body
              | _ -> ())
            | _ -> ())
          | _ -> ())
        | _ -> ())
      (Son.block g b).Son.body
  done;
  if !fused > 0 then ignore (Son.dead_code_elimination g);
  if !Trace.on && !fused > 0 then
    Trace.instant_wall ~cat:"turbofan"
      ~arg:(Printf.sprintf "%s fused=%d" g.Son.fname !fused)
      "reduce:fuse-map-checks";
  !fused
