(** Bytecode + type feedback to graph IR (TurboFan's graph builder and
    speculative lowering, fused).

    The builder abstractly interprets the bytecode, mapping interpreter
    registers to SSA nodes, and lowers each operation according to its
    feedback: SMI feedback yields checked SMI arithmetic with
    [Not-a-SMI]/[Overflow] checks, Number feedback yields unboxed float
    operations behind [CheckedTaggedToFloat64], monomorphic property
    feedback yields map-checked field loads, and so on.  Every check
    captures the frame state of the most recent checkpoint so that the
    engine can rebuild the interpreter frame on deoptimization.

    A simple fact lattice (per SSA value: known-SMI / known-heap-object /
    known-map) performs TurboFan's redundant-check elimination; facts
    propagate through single-predecessor edges, intersect at merges, and
    reset at loop headers (pessimistic, sound).  [turboprop] mode skips
    the lattice entirely — more checks, faster compile — mirroring the
    reduced-pass mid-tier compiler. *)

type config = {
  arch : Arch.t;
  trust_elements_kind : bool;
      (** When true, loads from PACKED_SMI arrays are typed as SMI and
          downstream Not-a-SMI checks disappear (ablation; default false
          reproduces the paper's Fig 3 code shape). *)
  turboprop : bool;
}

val default_config : Arch.t -> config

exception Bailout of string
(** The function uses a pattern the optimizing compiler does not
    support (e.g. too many call arguments); it stays interpreted. *)

val build : config -> Runtime.t -> Runtime.func_rt -> Son.t
