(** The bytecode interpreter (Ignition stand-in).

    Executes bytecode over the tagged-word heap while recording type
    feedback, and charges an approximate per-handler cycle cost through
    [Runtime.charge_interp].  Functions whose [code_ref] is set are
    dispatched to the engine's optimized code instead; when that code
    deoptimizes, the engine rebuilds an interpreter frame and continues
    through {!resume}. *)

val attach : Runtime.t -> unit
(** Install [reenter_js] so builtins can call back into JS. *)

val run_main : Runtime.t -> int
(** Execute the top-level script; returns its completion value. *)

val call_closure : Runtime.t -> closure:int -> this:int -> args:int array -> int
(** Call a function object: dispatches to a builtin, optimized code, or
    the interpreter; bumps invocation counts and fires the tier-up
    hook. *)

val call_function_value : Runtime.t -> int -> int array -> int
(** Convenience: call with [this = undefined]. *)

val interpret_direct :
  Runtime.t -> Runtime.func_rt -> closure:int -> this:int ->
  args:int array -> int
(** Interpret a frame without re-running the dispatch logic
    (invocation counting, tier-up, optimized-code lookup) — used by the
    engine when machine code calls a not-yet-compiled function. *)

val resume :
  Runtime.t -> fid:int -> closure:int -> regs:int array -> acc:int ->
  pc:int -> int
(** Continue a function in the interpreter from bytecode offset [pc]
    with a materialized frame — the deoptimization (bailout) entry
    point. *)
