type t = int

let smi_tag_bits = 1
let smi_min = -(1 lsl 30)
let smi_max = (1 lsl 30) - 1

let is_smi v = v land 1 = 0
let is_pointer v = v land 1 = 1

let smi_fits v = v >= smi_min && v <= smi_max

let smi v =
  if not (smi_fits v) then invalid_arg (Printf.sprintf "Value.smi: %d out of range" v);
  v lsl 1

let smi_value v =
  assert (is_smi v);
  v asr 1

let pointer idx =
  assert (idx >= 0);
  (idx lsl 1) lor 1

let pointer_index v =
  assert (is_pointer v);
  v asr 1

let zero = 0
let one = 2
