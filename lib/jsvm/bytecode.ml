type op =
  | Lda_zero
  | Lda_smi of int
  | Lda_const of int
  | Lda_undefined
  | Lda_null
  | Lda_true
  | Lda_false
  | Ldar of int
  | Star of int
  | Mov of int * int
  | Lda_global of int
  | Sta_global of int
  | Lda_context of int * int
  | Sta_context of int * int
  | Binop of Ast.binop * int * int
  | Test of Ast.binop * int * int
  | Neg_acc of int
  | Bitnot_acc of int
  | Not_acc
  | Typeof_acc
  | Jump of int
  | Jump_if_false of int
  | Jump_if_true of int
  | Get_named of int * int * int
  | Set_named of int * int * int
  | Get_keyed of int * int
  | Set_keyed of int * int * int
  | Create_array of int
  | Create_object
  | Create_closure of int
  | Call of int * int * int * int
  | Call_method of int * int * int * int * int
  | Construct of int * int * int * int
  | Return

type const = C_num of float | C_str of string

type func_info = {
  fid : int;
  name : string;
  n_params : int;
  mutable n_regs : int;
  mutable code : op array;
  mutable consts : const array;
  mutable n_feedback : int;
  mutable context_slots : int;
  source : Ast.func;
}

let this_reg = 0
let param_reg i = 1 + i

let const_str f i =
  match f.consts.(i) with
  | C_num v -> Printf.sprintf "%g" v
  | C_str s -> Printf.sprintf "%S" s

let op_to_string f = function
  | Lda_zero -> "LdaZero"
  | Lda_smi n -> Printf.sprintf "LdaSmi [%d]" n
  | Lda_const i -> Printf.sprintf "LdaConstant %s" (const_str f i)
  | Lda_undefined -> "LdaUndefined"
  | Lda_null -> "LdaNull"
  | Lda_true -> "LdaTrue"
  | Lda_false -> "LdaFalse"
  | Ldar r -> Printf.sprintf "Ldar r%d" r
  | Star r -> Printf.sprintf "Star r%d" r
  | Mov (d, s) -> Printf.sprintf "Mov r%d, r%d" d s
  | Lda_global i -> Printf.sprintf "LdaGlobal %s" (const_str f i)
  | Sta_global i -> Printf.sprintf "StaGlobal %s" (const_str f i)
  | Lda_context (d, s) -> Printf.sprintf "LdaContextSlot depth=%d slot=%d" d s
  | Sta_context (d, s) -> Printf.sprintf "StaContextSlot depth=%d slot=%d" d s
  | Binop (op, r, fb) ->
    Printf.sprintf "%s r%d, [%d]" (Ast.binop_str op) r fb
  | Test (op, r, fb) ->
    Printf.sprintf "Test%s r%d, [%d]" (Ast.binop_str op) r fb
  | Neg_acc fb -> Printf.sprintf "Negate [%d]" fb
  | Bitnot_acc fb -> Printf.sprintf "BitwiseNot [%d]" fb
  | Not_acc -> "LogicalNot"
  | Typeof_acc -> "TypeOf"
  | Jump t -> Printf.sprintf "Jump @%d" t
  | Jump_if_false t -> Printf.sprintf "JumpIfFalse @%d" t
  | Jump_if_true t -> Printf.sprintf "JumpIfTrue @%d" t
  | Get_named (r, c, fb) ->
    Printf.sprintf "GetNamedProperty r%d, %s, [%d]" r (const_str f c) fb
  | Set_named (r, c, fb) ->
    Printf.sprintf "SetNamedProperty r%d, %s, [%d]" r (const_str f c) fb
  | Get_keyed (r, fb) -> Printf.sprintf "GetKeyedProperty r%d, [%d]" r fb
  | Set_keyed (r, k, fb) -> Printf.sprintf "SetKeyedProperty r%d, r%d, [%d]" r k fb
  | Create_array cap -> Printf.sprintf "CreateArrayLiteral cap=%d" cap
  | Create_object -> "CreateObjectLiteral"
  | Create_closure fid -> Printf.sprintf "CreateClosure f%d" fid
  | Call (c, a, n, fb) -> Printf.sprintf "CallAnyReceiver r%d, r%d-r%d, [%d]" c a (a + n - 1) fb
  | Call_method (o, m, a, n, fb) ->
    Printf.sprintf "CallProperty r%d.%s, r%d-r%d, [%d]" o (const_str f m) a (a + n - 1) fb
  | Construct (c, a, n, fb) ->
    Printf.sprintf "Construct r%d, r%d-r%d, [%d]" c a (a + n - 1) fb
  | Return -> "Return"

let disassemble f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf ";; function %s: %d params, %d regs, %d feedback slots\n"
       f.name f.n_params f.n_regs f.n_feedback);
  Array.iteri
    (fun i op ->
      Buffer.add_string buf (Printf.sprintf "%4d: %s\n" i (op_to_string f op)))
    f.code;
  Buffer.contents buf

(* Rough Ignition handler costs in cycles, dominated by dispatch and
   (for ICs) the feedback-vector lookup. *)
let interp_cost = function
  | Lda_zero | Lda_smi _ | Lda_undefined | Lda_null | Lda_true | Lda_false -> 6
  | Lda_const _ | Ldar _ | Star _ | Mov (_, _) -> 6
  | Lda_global _ | Sta_global _ -> 12
  | Lda_context _ | Sta_context _ -> 10
  | Binop _ -> 18
  | Test _ -> 16
  | Neg_acc _ | Bitnot_acc _ | Not_acc | Typeof_acc -> 10
  | Jump _ | Jump_if_false _ | Jump_if_true _ -> 8
  | Get_named _ -> 26
  | Set_named _ -> 30
  | Get_keyed _ -> 24
  | Set_keyed _ -> 28
  | Create_array _ | Create_object -> 40
  | Create_closure _ -> 30
  | Call _ | Call_method _ | Construct _ -> 40
  | Return -> 10

let is_feedback_site = function
  | Binop (_, _, fb)
  | Test (_, _, fb)
  | Neg_acc fb
  | Bitnot_acc fb
  | Get_named (_, _, fb)
  | Set_named (_, _, fb)
  | Get_keyed (_, fb)
  | Set_keyed (_, _, fb)
  | Call (_, _, _, fb)
  | Call_method (_, _, _, _, fb)
  | Construct (_, _, _, fb) ->
    Some fb
  | Lda_zero | Lda_smi _ | Lda_const _ | Lda_undefined | Lda_null | Lda_true
  | Lda_false | Ldar _ | Star _ | Mov _ | Lda_global _ | Sta_global _
  | Lda_context _ | Sta_context _ | Not_acc | Typeof_acc | Jump _
  | Jump_if_false _ | Jump_if_true _ | Create_array _ | Create_object
  | Create_closure _ | Return ->
    None
