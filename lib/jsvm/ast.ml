type position = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge
  | Eq | Neq | Strict_eq | Strict_neq
  | Bit_and | Bit_or | Bit_xor
  | Shl | Shr | Ushr
  | Logical_and | Logical_or

type unop = Neg | Plus | Not | Bit_not | Typeof

type expr =
  | Number of float
  | String of string
  | Bool of bool
  | Null
  | Undefined
  | Ident of string
  | This
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Function_expr of func
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of target * expr
  | Compound_assign of binop * target * expr
  | Update of { op_add : bool; prefix : bool; target : target }
  | Conditional of expr * expr * expr
  | Call of expr * expr list
  | Method_call of expr * string * expr list
  | New of expr * expr list
  | Member of expr * string
  | Index of expr * expr

and target =
  | T_ident of string
  | T_member of expr * string
  | T_index of expr * expr

and func = { fname : string option; params : string list; body : stmt list }

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | Func_decl of func
  | Return of expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Break
  | Continue
  | Block of stmt list

type program = stmt list

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Neq -> "!="
  | Strict_eq -> "==="
  | Strict_neq -> "!=="
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Bit_xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ushr -> ">>>"
  | Logical_and -> "&&"
  | Logical_or -> "||"

let rec expr_to_string = function
  | Number f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | String s -> Printf.sprintf "%S" s
  | Bool b -> string_of_bool b
  | Null -> "null"
  | Undefined -> "undefined"
  | Ident s -> s
  | This -> "this"
  | Array_lit es -> "[" ^ String.concat ", " (List.map expr_to_string es) ^ "]"
  | Object_lit fields ->
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> k ^ ": " ^ expr_to_string v) fields)
    ^ "}"
  | Function_expr f ->
    Printf.sprintf "function %s(%s){...}"
      (Option.value ~default:"" f.fname)
      (String.concat ", " f.params)
  | Unary (op, e) ->
    let s = match op with
      | Neg -> "-" | Plus -> "+" | Not -> "!" | Bit_not -> "~" | Typeof -> "typeof "
    in
    s ^ expr_to_string e
  | Binary (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op) (expr_to_string b)
  | Assign (t, e) -> Printf.sprintf "%s = %s" (target_to_string t) (expr_to_string e)
  | Compound_assign (op, t, e) ->
    Printf.sprintf "%s %s= %s" (target_to_string t) (binop_str op) (expr_to_string e)
  | Update { op_add; prefix; target } ->
    let op = if op_add then "++" else "--" in
    if prefix then op ^ target_to_string target else target_to_string target ^ op
  | Conditional (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
      (expr_to_string b)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" (expr_to_string f)
      (String.concat ", " (List.map expr_to_string args))
  | Method_call (o, m, args) ->
    Printf.sprintf "%s.%s(%s)" (expr_to_string o) m
      (String.concat ", " (List.map expr_to_string args))
  | New (f, args) ->
    Printf.sprintf "new %s(%s)" (expr_to_string f)
      (String.concat ", " (List.map expr_to_string args))
  | Member (o, f) -> expr_to_string o ^ "." ^ f
  | Index (o, i) -> Printf.sprintf "%s[%s]" (expr_to_string o) (expr_to_string i)

and target_to_string = function
  | T_ident s -> s
  | T_member (o, f) -> expr_to_string o ^ "." ^ f
  | T_index (o, i) -> Printf.sprintf "%s[%s]" (expr_to_string o) (expr_to_string i)
