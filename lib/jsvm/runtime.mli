(** Shared VM runtime state: heap, function table, tiering hooks.

    The runtime deliberately knows nothing about the JIT or the CPU
    simulator; the embedding engine installs hooks for cost accounting,
    optimized-code dispatch, and tier-up decisions. *)

val builtin_base : int
(** Function ids at or above this value denote builtins. *)

type func_rt = {
  info : Bytecode.func_info;
  mutable feedback : Feedback.vector;
  mutable const_values : int array;   (** materialized tagged constants *)
  mutable invocations : int;
  mutable code_ref : int;             (** engine code id; -1 = not compiled *)
  mutable deopt_count : int;
  mutable forbid_opt : bool;          (** too many deopts: stay in interpreter *)
  mutable initial_map : int option;   (** map for [new F()] instances *)
}

type t = {
  heap : Heap.t;
  funcs : func_rt array;
  main : int;
  (* Engine hooks. *)
  mutable charge_interp : cycles:int -> instructions:int -> unit;
  mutable charge_builtin : cycles:int -> unit;
  mutable call_optimized : (int -> int array -> int) option;
      (** [f fid args] with machine convention args = closure :: this ::
          user args; returns the tagged result. *)
  mutable on_invoke : (t -> func_rt -> unit) option;
  mutable reenter_js : int -> int -> int array -> int;
      (** [reenter_js closure this args] lets builtins call back into JS
          (installed by the interpreter). *)
  mutable construct_hook : int -> int array -> int;
      (** [construct_hook callee args]: [new callee(...args)] without
          feedback recording (installed by the interpreter; used by the
          JIT's generic construct path). *)
  (* GC rooting. *)
  mutable active_frames : frame list;
  (* Side tables. *)
  mutable regexes : Regex.compiled array;
  mutable n_regexes : int;
  mutable output : Buffer.t;  (** print() target *)
  rng : Support.Rng.t;        (** Math.random *)
}

and frame = { f_regs : int array; mutable f_acc : int }

val create : ?heap_size:int -> ?seed:int -> Bcompiler.unit_ -> t
(** Builds the runtime, materializes constants lazily, installs default
    (no-op) hooks, and registers GC root providers for frames, constant
    pools and builtin globals. *)

val func : t -> int -> func_rt
val materialize_consts : t -> func_rt -> int array

val add_regex : t -> Regex.compiled -> int
val get_regex : t -> int -> Regex.compiled

val push_frame : t -> frame -> unit
val pop_frame : t -> unit

val reset_feedback : t -> unit
(** Clear all feedback vectors, invocation counts and compiled-code
    references (used between experiment configurations). *)
