exception Js_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Js_error m)) fmt

(* Builtin ids (relative to Runtime.builtin_base). *)
let id_print = 0
let id_math_floor = 1
let id_math_ceil = 2
let id_math_sqrt = 3
let id_math_abs = 4
let id_math_min = 5
let id_math_max = 6
let id_math_pow = 7
let id_math_sin = 8
let id_math_cos = 9
let id_math_exp = 10
let id_math_log = 11
let id_math_round = 12
let id_math_random = 13
let id_math_atan2 = 14
let id_math_tan = 15
let id_math_asin = 16
let id_math_acos = 17
let id_math_log2 = 18
let id_array_push = 20
let id_array_pop = 21
let id_array_join = 22
let id_array_index_of = 23
let id_array_slice = 24
let id_array_concat = 25
let id_array_reverse = 26
let id_str_char_code_at = 30
let id_str_char_at = 31
let id_str_index_of = 32
let id_str_substring = 33
let id_str_split = 34
let id_str_to_upper = 35
let id_str_to_lower = 36
let id_string_from_char_code = 37
let id_str_trim = 38
let id_str_repeat = 39
let id_parse_int = 40
let id_parse_float = 41
let id_is_nan = 42
let id_rx_test = 50
let id_rx_exec = 51
let id_regexp_ctor = 52
let id_array_ctor = 53

(* Runtime-call builtins (V8 "runtime functions"): generic fallbacks the
   optimizing compiler emits when feedback is megamorphic or a fast path
   does not apply.  Ids 100+; argument 0 is always `this`-like. *)
let id_rt_binop = 100      (* (op smi, a, b) *)
let id_rt_compare = 101    (* (op smi, a, b) *)
let id_rt_to_boolean = 102
let id_rt_typeof = 103
let id_rt_get_named = 104  (* (obj, name string) *)
let id_rt_set_named = 105  (* (obj, name string, v) *)
let id_rt_get_keyed = 106
let id_rt_set_keyed = 107
let id_rt_call = 108       (* (callee, this, args...) *)
let id_rt_construct = 109  (* (callee, args...) *)
let id_rt_alloc_number = 110
let id_rt_create_array = 111
let id_rt_create_object = 112
let id_rt_create_closure = 113  (* (fid smi, ctx) *)
let id_rt_create_context = 114  (* (parent ctx, slot count smi) *)
let id_rt_call_method = 115     (* (recv, name string, args...) *)

(* Binop/compare codes shared with the JIT backend. *)
let binop_code : Ast.binop -> int = function
  | Ast.Add -> 0
  | Ast.Sub -> 1
  | Ast.Mul -> 2
  | Ast.Div -> 3
  | Ast.Mod -> 4
  | Ast.Bit_and -> 5
  | Ast.Bit_or -> 6
  | Ast.Bit_xor -> 7
  | Ast.Shl -> 8
  | Ast.Shr -> 9
  | Ast.Ushr -> 10
  | Ast.Lt -> 11
  | Ast.Le -> 12
  | Ast.Gt -> 13
  | Ast.Ge -> 14
  | Ast.Eq -> 15
  | Ast.Neq -> 16
  | Ast.Strict_eq -> 17
  | Ast.Strict_neq -> 18
  | Ast.Logical_and | Ast.Logical_or -> invalid_arg "binop_code: logical"

let binop_of_code = function
  | 0 -> Ast.Add
  | 1 -> Ast.Sub
  | 2 -> Ast.Mul
  | 3 -> Ast.Div
  | 4 -> Ast.Mod
  | 5 -> Ast.Bit_and
  | 6 -> Ast.Bit_or
  | 7 -> Ast.Bit_xor
  | 8 -> Ast.Shl
  | 9 -> Ast.Shr
  | 10 -> Ast.Ushr
  | 11 -> Ast.Lt
  | 12 -> Ast.Le
  | 13 -> Ast.Gt
  | 14 -> Ast.Ge
  | 15 -> Ast.Eq
  | 16 -> Ast.Neq
  | 17 -> Ast.Strict_eq
  | 18 -> Ast.Strict_neq
  | n -> invalid_arg (Printf.sprintf "binop_of_code: %d" n)

let name_of = function
  | 0 -> "print"
  | 1 -> "Math.floor"
  | 2 -> "Math.ceil"
  | 3 -> "Math.sqrt"
  | 4 -> "Math.abs"
  | 5 -> "Math.min"
  | 6 -> "Math.max"
  | 7 -> "Math.pow"
  | 8 -> "Math.sin"
  | 9 -> "Math.cos"
  | 10 -> "Math.exp"
  | 11 -> "Math.log"
  | 12 -> "Math.round"
  | 13 -> "Math.random"
  | 14 -> "Math.atan2"
  | 15 -> "Math.tan"
  | 16 -> "Math.asin"
  | 17 -> "Math.acos"
  | 18 -> "Math.log2"
  | 25 -> "Array.prototype.concat"
  | 26 -> "Array.prototype.reverse"
  | 38 -> "String.prototype.trim"
  | 39 -> "String.prototype.repeat"
  | 20 -> "Array.prototype.push"
  | 21 -> "Array.prototype.pop"
  | 22 -> "Array.prototype.join"
  | 23 -> "Array.prototype.indexOf"
  | 24 -> "Array.prototype.slice"
  | 30 -> "String.prototype.charCodeAt"
  | 31 -> "String.prototype.charAt"
  | 32 -> "String.prototype.indexOf"
  | 33 -> "String.prototype.substring"
  | 34 -> "String.prototype.split"
  | 35 -> "String.prototype.toUpperCase"
  | 36 -> "String.prototype.toLowerCase"
  | 37 -> "String.fromCharCode"
  | 40 -> "parseInt"
  | 41 -> "parseFloat"
  | 42 -> "isNaN"
  | 50 -> "RegExp.prototype.test"
  | 51 -> "RegExp.prototype.exec"
  | 52 -> "RegExp"
  | 53 -> "Array"
  | n -> Printf.sprintf "builtin_%d" n

let string_method = function
  | "charCodeAt" -> Some id_str_char_code_at
  | "charAt" -> Some id_str_char_at
  | "indexOf" -> Some id_str_index_of
  | "substring" -> Some id_str_substring
  | "split" -> Some id_str_split
  | "toUpperCase" -> Some id_str_to_upper
  | "toLowerCase" -> Some id_str_to_lower
  | "trim" -> Some id_str_trim
  | "repeat" -> Some id_str_repeat
  | _ -> None

let array_method = function
  | "push" -> Some id_array_push
  | "pop" -> Some id_array_pop
  | "join" -> Some id_array_join
  | "indexOf" -> Some id_array_index_of
  | "slice" -> Some id_array_slice
  | "concat" -> Some id_array_concat
  | "reverse" -> Some id_array_reverse
  | _ -> None

let arg args i h = if i < Array.length args then args.(i) else Heap.undefined h

let num (rt : Runtime.t) args i = Conv.to_number rt.Runtime.heap (arg args i rt.Runtime.heap)

let math1 rt args ~cost f =
  rt.Runtime.charge_builtin ~cycles:cost;
  Heap.number rt.Runtime.heap (f (num rt args 0))

let math2 rt args ~cost f =
  rt.Runtime.charge_builtin ~cycles:cost;
  Heap.number rt.Runtime.heap (f (num rt args 0) (num rt args 1))

let js_floor f = Float.of_int (int_of_float (floor f))

(* ---------------- Regex helpers ---------------- *)

let regex_of_instance (rt : Runtime.t) this =
  let h = rt.Runtime.heap in
  match Heap.get_property h this "__rx" with
  | Some v when Value.is_smi v -> Runtime.get_regex rt (Value.smi_value v)
  | _ -> err "receiver is not a RegExp"

let regexp_proto (rt : Runtime.t) =
  let h = rt.Runtime.heap in
  let cell = Heap.global_cell h "__RegExp_proto" in
  let v = Heap.cell_value h cell in
  if v <> Heap.undefined h then v
  else begin
    let proto = Heap.alloc_empty_object h in
    Heap.set_property h proto "test"
      (Heap.alloc_function h
         ~function_id:(Runtime.builtin_base + id_rx_test)
         ~context:(Heap.undefined h));
    Heap.set_property h proto "exec"
      (Heap.alloc_function h
         ~function_id:(Runtime.builtin_base + id_rx_exec)
         ~context:(Heap.undefined h));
    Heap.set_cell_value h cell proto;
    proto
  end

let regexp_map (rt : Runtime.t) =
  let h = rt.Runtime.heap in
  let cell = Heap.global_cell h "__RegExp_map" in
  let v = Heap.cell_value h cell in
  if v <> Heap.undefined h then Value.smi_value v
  else begin
    let map_id = Heap.new_object_map h ~prototype:(regexp_proto rt) in
    Heap.set_cell_value h cell (Value.smi map_id);
    map_id
  end

(* ---------------- Dispatch ---------------- *)

let rec dispatch (rt : Runtime.t) id ~this ~args =
  let h = rt.Runtime.heap in
  let charge c = rt.Runtime.charge_builtin ~cycles:c in
  match id with
  | 0 (* print *) ->
    let parts = Array.to_list (Array.map (Conv.to_js_string h) args) in
    Buffer.add_string rt.Runtime.output (String.concat " " parts);
    Buffer.add_char rt.Runtime.output '\n';
    charge 200;
    Heap.undefined h
  | 1 -> math1 rt args ~cost:25 js_floor
  | 2 -> math1 rt args ~cost:25 (fun f -> Float.of_int (int_of_float (ceil f)))
  | 3 -> math1 rt args ~cost:30 sqrt
  | 4 -> math1 rt args ~cost:15 Float.abs
  | 5 -> math2 rt args ~cost:20 Float.min
  | 6 -> math2 rt args ~cost:20 Float.max
  | 7 -> math2 rt args ~cost:60 Float.pow
  | 8 -> math1 rt args ~cost:60 sin
  | 9 -> math1 rt args ~cost:60 cos
  | 10 -> math1 rt args ~cost:60 exp
  | 11 -> math1 rt args ~cost:60 log
  | 12 -> math1 rt args ~cost:25 Float.round
  | 13 ->
    charge 30;
    Heap.number h (Support.Rng.float rt.Runtime.rng 1.0)
  | 14 -> math2 rt args ~cost:70 Float.atan2
  | 15 -> math1 rt args ~cost:70 tan
  | 16 -> math1 rt args ~cost:70 asin
  | 17 -> math1 rt args ~cost:70 acos
  | 18 -> math1 rt args ~cost:60 (fun x -> log x /. log 2.0)
  | 20 (* push *) ->
    charge 35;
    Array.iter (fun v -> Heap.array_push h this v) args;
    Value.smi (Heap.array_length h this)
  | 21 (* pop *) ->
    charge 30;
    Heap.array_pop h this
  | 22 (* join *) ->
    let sep =
      if Array.length args > 0 && args.(0) <> Heap.undefined h then
        Conv.to_js_string h args.(0)
      else ","
    in
    let n = Heap.array_length h this in
    let buf = Buffer.create (n * 4) in
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string buf sep;
      let e = Heap.array_get h this i in
      if e <> Heap.undefined h && e <> Heap.null_value h then
        Buffer.add_string buf (Conv.to_js_string h e)
    done;
    charge (40 + (12 * Buffer.length buf));
    Heap.alloc_string h (Buffer.contents buf)
  | 23 (* array indexOf *) ->
    let needle = arg args 0 h in
    let n = Heap.array_length h this in
    let rec go i =
      if i >= n then -1
      else if Conv.strict_equal h (Heap.array_get h this i) needle then i
      else go (i + 1)
    in
    let r = go 0 in
    charge (30 + (6 * if r < 0 then n else r + 1));
    Value.smi r
  | 24 (* slice *) ->
    let n = Heap.array_length h this in
    let from = if Array.length args > 0 then int_of_float (num rt args 0) else 0 in
    let til = if Array.length args > 1 then int_of_float (num rt args 1) else n in
    let norm x = if x < 0 then max 0 (n + x) else min x n in
    let from = norm from and til = norm til in
    let len = max 0 (til - from) in
    let kind = Heap.array_elements_kind h this in
    let out = Heap.alloc_array h kind ~capacity:(max 1 len) in
    for i = 0 to len - 1 do
      Heap.array_set h out i (Heap.array_get h this (from + i))
    done;
    charge (40 + (8 * len));
    out
  | 25 (* concat *) ->
    let n1 = Heap.array_length h this in
    let other = arg args 0 h in
    let n2 =
      if Value.is_pointer other && Heap.instance_type_of h other = Heap.It_array
      then Heap.array_length h other
      else -1
    in
    if n2 < 0 then err "Array.concat expects an array argument"
    else begin
      let out = Heap.alloc_array h Heap.Packed_smi ~capacity:(max 1 (n1 + n2)) in
      for i = 0 to n1 - 1 do
        Heap.array_set h out i (Heap.array_get h this i)
      done;
      for j = 0 to n2 - 1 do
        Heap.array_set h out (n1 + j) (Heap.array_get h other j)
      done;
      charge (40 + (8 * (n1 + n2)));
      out
    end
  | 26 (* reverse, in place like JS *) ->
    let n = Heap.array_length h this in
    let i = ref 0 and j = ref (n - 1) in
    while !i < !j do
      let a = Heap.array_get h this !i and b = Heap.array_get h this !j in
      Heap.array_set h this !i b;
      Heap.array_set h this !j a;
      incr i;
      decr j
    done;
    charge (30 + (6 * n));
    this
  | 30 (* charCodeAt *) ->
    charge 20;
    let i = int_of_float (num rt args 0) in
    if i < 0 || i >= Heap.string_length h this then Heap.alloc_heap_number h Float.nan
    else Value.smi (Heap.string_char_code h this i)
  | 31 (* charAt *) ->
    charge 30;
    let i = int_of_float (num rt args 0) in
    if i < 0 || i >= Heap.string_length h this then Heap.intern h ""
    else Heap.alloc_string h (String.make 1 (Char.chr (Heap.string_char_code h this i land 0xFF)))
  | 32 (* string indexOf *) ->
    let s = Heap.string_value h this in
    let needle = Conv.to_js_string h (arg args 0 h) in
    let from = if Array.length args > 1 then int_of_float (num rt args 1) else 0 in
    let n = String.length s and m = String.length needle in
    let rec go i =
      if i + m > n then -1
      else if String.sub s i m = needle then i
      else go (i + 1)
    in
    let r = if m = 0 then min from n else go (max 0 from) in
    charge (30 + (4 * n));
    Value.smi r
  | 33 (* substring *) ->
    let s = Heap.string_value h this in
    let n = String.length s in
    let a = int_of_float (num rt args 0) in
    let b = if Array.length args > 1 then int_of_float (num rt args 1) else n in
    let clamp x = max 0 (min x n) in
    let a = clamp a and b = clamp b in
    let lo = min a b and hi = max a b in
    charge (30 + (4 * (hi - lo)));
    Heap.alloc_string h (String.sub s lo (hi - lo))
  | 34 (* split *) ->
    let s = Heap.string_value h this in
    let sep = Conv.to_js_string h (arg args 0 h) in
    let parts =
      if sep = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
      else String.split_on_char sep.[0] s (* single-char separators only *)
    in
    let out = Heap.alloc_array h Heap.Packed_tagged ~capacity:(List.length parts) in
    List.iteri (fun i p -> Heap.array_set h out i (Heap.alloc_string h p)) parts;
    charge (50 + (10 * String.length s));
    out
  | 35 (* toUpperCase *) ->
    let s = Heap.string_value h this in
    charge (30 + (4 * String.length s));
    Heap.alloc_string h (String.uppercase_ascii s)
  | 36 (* toLowerCase *) ->
    let s = Heap.string_value h this in
    charge (30 + (4 * String.length s));
    Heap.alloc_string h (String.lowercase_ascii s)
  | 37 (* String.fromCharCode *) ->
    charge (25 + (5 * Array.length args));
    Heap.alloc_string h
      (String.init (Array.length args) (fun i ->
           Char.chr (int_of_float (num rt args i) land 0xFF)))
  | 38 (* trim *) ->
    let s = Heap.string_value h this in
    charge (25 + (2 * String.length s));
    Heap.alloc_string h (String.trim s)
  | 39 (* repeat *) ->
    let s = Heap.string_value h this in
    let n = max 0 (int_of_float (num rt args 0)) in
    if n * String.length s > 100000 then err "repeat result too large";
    let b = Buffer.create (n * String.length s) in
    for _ = 1 to n do
      Buffer.add_string b s
    done;
    charge (30 + (3 * Buffer.length b));
    Heap.alloc_string h (Buffer.contents b)
  | 40 (* parseInt *) ->
    charge 60;
    let s = String.trim (Conv.to_js_string h (arg args 0 h)) in
    let radix =
      if Array.length args > 1 then int_of_float (num rt args 1) else 10
    in
    let parse_with_radix s radix =
      let sign, s =
        if String.length s > 0 && s.[0] = '-' then (-1, String.sub s 1 (String.length s - 1))
        else if String.length s > 0 && s.[0] = '+' then (1, String.sub s 1 (String.length s - 1))
        else (1, s)
      in
      let digit c =
        if c >= '0' && c <= '9' then Some (Char.code c - 48)
        else if c >= 'a' && c <= 'z' then Some (Char.code c - 87)
        else if c >= 'A' && c <= 'Z' then Some (Char.code c - 55)
        else None
      in
      let rec go i acc any =
        if i >= String.length s then if any then Some (float_of_int (sign * acc)) else None
        else begin
          match digit s.[i] with
          | Some d when d < radix -> go (i + 1) ((acc * radix) + d) true
          | _ -> if any then Some (float_of_int (sign * acc)) else None
        end
      in
      go 0 0 false
    in
    (match parse_with_radix s (if radix = 0 then 10 else radix) with
    | Some f -> Heap.number h f
    | None -> Heap.alloc_heap_number h Float.nan)
  | 41 (* parseFloat *) ->
    charge 60;
    let s = String.trim (Conv.to_js_string h (arg args 0 h)) in
    (* Longest numeric prefix. *)
    let n = String.length s in
    let rec best i =
      if i > n then None
      else begin
        match float_of_string_opt (String.sub s 0 i) with
        | Some f -> (
          match best (i + 1) with Some g -> Some g | None -> Some f)
        | None -> best (i + 1)
      end
    in
    (match best 1 with
    | Some f -> Heap.number h f
    | None -> Heap.alloc_heap_number h Float.nan)
  | 42 (* isNaN *) ->
    charge 20;
    Heap.bool_value h (Float.is_nan (num rt args 0))
  | 50 (* rx.test *) ->
    let rx = regex_of_instance rt this in
    let s = Conv.to_js_string h (arg args 0 h) in
    let r = Regex.test rx s in
    charge (100 + (2 * Regex.steps_of_last_exec rx));
    Heap.bool_value h r
  | 51 (* rx.exec *) ->
    let rx = regex_of_instance rt this in
    let s = Conv.to_js_string h (arg args 0 h) in
    (match Regex.exec rx s 0 with
    | None ->
      charge (100 + (2 * Regex.steps_of_last_exec rx));
      Heap.null_value h
    | Some m ->
      let ncaps = Array.length m.Regex.captures in
      let out = Heap.alloc_array h Heap.Packed_tagged ~capacity:(1 + ncaps) in
      Heap.array_set h out 0
        (Heap.alloc_string h (String.sub s m.Regex.m_start (m.Regex.m_end - m.Regex.m_start)));
      Array.iteri
        (fun i cap ->
          if i > 0 then
            match cap with
            | Some (a, b) ->
              Heap.array_set h out i (Heap.alloc_string h (String.sub s a (b - a)))
            | None -> Heap.array_set h out i (Heap.undefined h))
        m.Regex.captures;
      Heap.set_property h out "index" (Value.smi m.Regex.m_start);
      charge (150 + (2 * Regex.steps_of_last_exec rx));
      out)
  | 100 (* rt_binop *) ->
    charge 13;
    let op = binop_of_code (Value.smi_value (arg args 0 h)) in
    let a = arg args 1 h and b = arg args 2 h in
    generic_binop rt op a b
  | 101 (* rt_compare *) ->
    charge 11;
    let op = binop_of_code (Value.smi_value (arg args 0 h)) in
    let a = arg args 1 h and b = arg args 2 h in
    generic_compare rt op a b
  | 102 (* rt_to_boolean *) ->
    charge 7;
    Heap.bool_value h (Conv.to_boolean h (arg args 0 h))
  | 103 (* rt_typeof *) ->
    charge 10;
    Heap.intern h (Conv.typeof_string h (arg args 0 h))
  | 104 (* rt_get_named *) ->
    charge 19;
    let obj = arg args 0 h in
    let name = Conv.to_js_string h (arg args 1 h) in
    generic_get_named rt obj name
  | 105 (* rt_set_named *) ->
    charge 23;
    let obj = arg args 0 h in
    let name = Conv.to_js_string h (arg args 1 h) in
    if Value.is_smi obj then err "cannot set property '%s' of a number" name;
    Heap.set_property h obj name (arg args 2 h);
    Heap.undefined h
  | 106 (* rt_get_keyed *) ->
    charge 17;
    generic_get_keyed rt (arg args 0 h) (arg args 1 h)
  | 107 (* rt_set_keyed *) ->
    charge 21;
    generic_set_keyed rt (arg args 0 h) (arg args 1 h) (arg args 2 h);
    Heap.undefined h
  | 108 (* rt_call *) ->
    charge 22;
    let callee = arg args 0 h and this2 = arg args 1 h in
    let rest = if Array.length args > 2 then Array.sub args 2 (Array.length args - 2) else [||] in
    rt.Runtime.reenter_js callee this2 rest
  | 109 (* rt_construct *) ->
    charge 30;
    let callee = arg args 0 h in
    let rest = if Array.length args > 1 then Array.sub args 1 (Array.length args - 1) else [||] in
    rt.Runtime.construct_hook callee rest
  | 110 (* rt_alloc_number: inline-allocation cost, not a real call *) ->
    charge 8;
    Heap.alloc_heap_number h 0.0
  | 111 (* rt_create_array *) ->
    charge 30;
    let cap = Value.smi_value (arg args 0 h) in
    Heap.alloc_array h Heap.Packed_smi ~capacity:(max 1 cap)
  | 112 (* rt_create_object *) ->
    charge 28;
    Heap.alloc_empty_object h
  | 113 (* rt_create_closure *) ->
    charge 22;
    let fid = Value.smi_value (arg args 0 h) in
    Heap.alloc_function h ~function_id:fid ~context:(arg args 1 h)
  | 114 (* rt_create_context *) ->
    charge 25;
    let parent = arg args 0 h in
    let slots = Value.smi_value (arg args 1 h) in
    Heap.alloc_context h ~parent ~slots
  | 115 (* rt_call_method: receiver-type dispatch like the interpreter *) ->
    charge 26;
    let recv = arg args 0 h in
    let name = Conv.to_js_string h (arg args 1 h) in
    let rest =
      if Array.length args > 2 then Array.sub args 2 (Array.length args - 2)
      else [||]
    in
    if Value.is_smi recv then err "cannot call method '%s' on a number" name
    else begin
      match Heap.instance_type_of h recv with
      | Heap.It_string -> (
        match string_method name with
        | Some b -> dispatch rt b ~this:recv ~args:rest
        | None -> err "string has no method '%s'" name)
      | Heap.It_array -> (
        match array_method name with
        | Some b -> dispatch rt b ~this:recv ~args:rest
        | None -> (
          match Heap.get_property h recv name with
          | Some m -> rt.Runtime.reenter_js m recv rest
          | None -> err "undefined is not a function"))
      | Heap.It_object | Heap.It_function -> (
        match Heap.get_property h recv name with
        | Some m -> rt.Runtime.reenter_js m recv rest
        | None -> err "undefined is not a function")
      | _ -> err "cannot call method '%s' on %s" name (Conv.typeof_string h recv)
    end
  | id -> err "unknown builtin %d (%s)" id (name_of id)

(* Feedback-free semantics for the generic paths; must agree with the
   interpreter's feedback-recording versions. *)
and generic_binop rt op a b =
  let h = rt.Runtime.heap in
  match op with
  | Ast.Add ->
    if Heap.is_number h a && Heap.is_number h b then
      Heap.number h (Heap.number_value h a +. Heap.number_value h b)
    else begin
      let s = Conv.to_js_string h a ^ Conv.to_js_string h b in
      rt.Runtime.charge_builtin ~cycles:(30 + (4 * String.length s));
      Heap.alloc_string h s
    end
  | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
    let x = Conv.to_number h a and y = Conv.to_number h b in
    Heap.number h
      (match op with
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | _ -> Float.rem x y)
  | Ast.Bit_and | Ast.Bit_or | Ast.Bit_xor | Ast.Shl | Ast.Shr | Ast.Ushr ->
    let to_i32 v =
      let f = Conv.to_number h v in
      if Float.is_nan f || Float.abs f = Float.infinity then 0
      else begin
        let m = Float.rem (Float.trunc f) 4294967296.0 in
        let w = Int64.to_int (Int64.of_float m) land 0xFFFFFFFF in
        if w >= 0x80000000 then w - 0x100000000 else w
      end
    in
    let x = to_i32 a and y = to_i32 b in
    let r =
      match op with
      | Ast.Bit_and -> x land y
      | Ast.Bit_or -> x lor y
      | Ast.Bit_xor -> x lxor y
      | Ast.Shl ->
        let w = (x lsl (y land 31)) land 0xFFFFFFFF in
        if w >= 0x80000000 then w - 0x100000000 else w
      | Ast.Shr -> x asr (y land 31)
      | _ -> (x land 0xFFFFFFFF) lsr (y land 31)
    in
    Heap.number h (float_of_int r)
  | _ -> err "rt_binop: unexpected operator"

and generic_compare rt op a b =
  let h = rt.Runtime.heap in
  let bool_v = Heap.bool_value h in
  match op with
  | Ast.Eq -> bool_v (Conv.loose_equal h a b)
  | Ast.Neq -> bool_v (not (Conv.loose_equal h a b))
  | Ast.Strict_eq -> bool_v (Conv.strict_equal h a b)
  | Ast.Strict_neq -> bool_v (not (Conv.strict_equal h a b))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    if Heap.is_string h a && Heap.is_string h b then begin
      let x = Heap.string_value h a and y = Heap.string_value h b in
      bool_v
        (match op with
        | Ast.Lt -> x < y
        | Ast.Le -> x <= y
        | Ast.Gt -> x > y
        | _ -> x >= y)
    end
    else begin
      let x = Conv.to_number h a and y = Conv.to_number h b in
      bool_v
        (match op with
        | Ast.Lt -> x < y
        | Ast.Le -> x <= y
        | Ast.Gt -> x > y
        | _ -> x >= y)
    end
  | _ -> err "rt_compare: unexpected operator"

and generic_get_named rt obj name =
  let h = rt.Runtime.heap in
  if Value.is_smi obj then err "cannot read property '%s' of a number" name;
  match Heap.instance_type_of h obj with
  | Heap.It_array when name = "length" -> Value.smi (Heap.array_length h obj)
  | Heap.It_string when name = "length" -> Value.smi (Heap.string_length h obj)
  | Heap.It_function when name = "prototype" -> Heap.function_prototype h obj
  | Heap.It_object | Heap.It_array | Heap.It_function -> (
    match Heap.get_property h obj name with
    | Some v -> v
    | None -> Heap.undefined h)
  | _ -> err "cannot read property '%s' of %s" name (Conv.typeof_string h obj)

and generic_get_keyed rt obj key =
  let h = rt.Runtime.heap in
  if Value.is_pointer obj && Heap.instance_type_of h obj = Heap.It_array
     && Value.is_smi key
  then Heap.array_get h obj (Value.smi_value key)
  else if Value.is_pointer obj && Heap.instance_type_of h obj = Heap.It_string
          && Value.is_smi key
  then begin
    let i = Value.smi_value key in
    if i >= 0 && i < Heap.string_length h obj then
      Heap.alloc_string h
        (String.make 1 (Char.chr (Heap.string_char_code h obj i land 0xFF)))
    else Heap.undefined h
  end
  else if Value.is_pointer obj then generic_get_named rt obj (Conv.to_js_string h key)
  else err "cannot index %s" (Conv.typeof_string h obj)

and generic_set_keyed rt obj key v =
  let h = rt.Runtime.heap in
  if Value.is_pointer obj && Heap.instance_type_of h obj = Heap.It_array
     && Value.is_smi key
  then begin
    let i = Value.smi_value key in
    let len = Heap.array_length h obj in
    if i >= 0 && i <= len then Heap.array_set h obj i v
    else err "sparse array write at index %d (length %d)" i len
  end
  else if Value.is_pointer obj then
    Heap.set_property h obj (Conv.to_js_string h key) v
  else err "cannot index-assign %s" (Conv.typeof_string h obj)

let id_regexp_ctor = id_regexp_ctor
let id_array_ctor = id_array_ctor

let construct_builtin (rt : Runtime.t) id ~args =
  let h = rt.Runtime.heap in
  if id = id_regexp_ctor then begin
    let pattern = Conv.to_js_string h (arg args 0 h) in
    let rx =
      try Regex.compile pattern
      with Regex.Regex_error m -> err "invalid RegExp /%s/: %s" pattern m
    in
    let rx_id = Runtime.add_regex rt rx in
    rt.Runtime.charge_builtin ~cycles:(200 + (20 * String.length pattern));
    let obj = Heap.alloc_object h ~map_id:(regexp_map rt) in
    Heap.set_property h obj "__rx" (Value.smi rx_id);
    Heap.set_property h obj "source" (Heap.alloc_string h pattern);
    Heap.set_property h obj "lastIndex" (Value.smi 0);
    obj
  end
  else if id = id_array_ctor then begin
    rt.Runtime.charge_builtin ~cycles:60;
    match args with
    | [| n |] when Value.is_smi n ->
      let len = Value.smi_value n in
      let arr = Heap.alloc_array h Heap.Packed_smi ~capacity:(max 1 len) in
      for i = 0 to len - 1 do
        Heap.array_set h arr i Value.zero
      done;
      arr
    | _ ->
      let arr = Heap.alloc_array h Heap.Packed_smi ~capacity:(max 1 (Array.length args)) in
      Array.iteri (fun i v -> Heap.array_set h arr i v) args;
      arr
  end
  else err "builtin %s is not a constructor" (name_of id)

let mk_builtin_fn (rt : Runtime.t) id =
  Heap.alloc_function rt.Runtime.heap ~function_id:(Runtime.builtin_base + id)
    ~context:(Heap.undefined rt.Runtime.heap)

let install_globals (rt : Runtime.t) =
  let h = rt.Runtime.heap in
  let set_global name v = Heap.set_cell_value h (Heap.global_cell h name) v in
  set_global "print" (mk_builtin_fn rt id_print);
  set_global "parseInt" (mk_builtin_fn rt id_parse_int);
  set_global "parseFloat" (mk_builtin_fn rt id_parse_float);
  set_global "isNaN" (mk_builtin_fn rt id_is_nan);
  set_global "RegExp" (mk_builtin_fn rt id_regexp_ctor);
  set_global "Array" (mk_builtin_fn rt id_array_ctor);
  let math = Heap.alloc_empty_object h in
  let set_math name id = Heap.set_property h math name (mk_builtin_fn rt id) in
  set_math "floor" id_math_floor;
  set_math "ceil" id_math_ceil;
  set_math "sqrt" id_math_sqrt;
  set_math "abs" id_math_abs;
  set_math "min" id_math_min;
  set_math "max" id_math_max;
  set_math "pow" id_math_pow;
  set_math "sin" id_math_sin;
  set_math "cos" id_math_cos;
  set_math "exp" id_math_exp;
  set_math "log" id_math_log;
  set_math "round" id_math_round;
  set_math "random" id_math_random;
  set_math "atan2" id_math_atan2;
  set_math "tan" id_math_tan;
  set_math "asin" id_math_asin;
  set_math "acos" id_math_acos;
  set_math "log2" id_math_log2;
  Heap.set_property h math "PI" (Heap.alloc_heap_number h Float.pi);
  Heap.set_property h math "E" (Heap.alloc_heap_number h (exp 1.0));
  set_global "Math" math;
  let string_ns = Heap.alloc_empty_object h in
  Heap.set_property h string_ns "fromCharCode" (mk_builtin_fn rt id_string_from_char_code);
  set_global "String" string_ns
