type operand_type = Ot_none | Ot_smi | Ot_number | Ot_string | Ot_any

let join_operand a b =
  match (a, b) with
  | Ot_none, x | x, Ot_none -> x
  | Ot_smi, Ot_smi -> Ot_smi
  | (Ot_smi | Ot_number), (Ot_smi | Ot_number) -> Ot_number
  | Ot_string, Ot_string -> Ot_string
  | _ -> Ot_any

type prop_site =
  | Own of int
  | Proto of { holder : int; slot : int }
  | Transition of { new_map : int; slot : int }
  | Length

type slot =
  | Sl_binop of operand_type ref
  | Sl_compare of operand_type ref
  | Sl_prop of {
      mutable entries : (int * prop_site) list;
      mutable megamorphic : bool;
    }
  | Sl_elem of {
      mutable maps : int list;
      mutable smi_index : bool;
      mutable megamorphic : bool;
    }
  | Sl_call of { mutable targets : (int * int) list; mutable megamorphic : bool }

type vector = slot array

let max_polymorphic = 4

let create (f : Bytecode.func_info) =
  let v =
    Array.init f.Bytecode.n_feedback (fun _ -> Sl_binop (ref Ot_none))
  in
  Array.iter
    (fun op ->
      match Bytecode.is_feedback_site op with
      | None -> ()
      | Some fb ->
        let slot =
          match op with
          | Bytecode.Binop _ | Bytecode.Neg_acc _ | Bytecode.Bitnot_acc _ ->
            Sl_binop (ref Ot_none)
          | Bytecode.Test _ -> Sl_compare (ref Ot_none)
          | Bytecode.Get_named _ | Bytecode.Set_named _ ->
            Sl_prop { entries = []; megamorphic = false }
          | Bytecode.Get_keyed _ | Bytecode.Set_keyed _ ->
            Sl_elem { maps = []; smi_index = true; megamorphic = false }
          | Bytecode.Call _ | Bytecode.Construct _ ->
            Sl_call { targets = []; megamorphic = false }
          | Bytecode.Call_method _ ->
            (* Two consecutive slots: the method load, then the call. *)
            v.(fb + 1) <- Sl_call { targets = []; megamorphic = false };
            Sl_prop { entries = []; megamorphic = false }
          | _ -> Sl_binop (ref Ot_none)
        in
        v.(fb) <- slot)
    f.Bytecode.code;
  v

let record_binop v i ot =
  match v.(i) with
  | Sl_binop r -> r := join_operand !r ot
  | _ -> invalid_arg "Feedback.record_binop: wrong slot kind"

let record_compare v i ot =
  match v.(i) with
  | Sl_compare r -> r := join_operand !r ot
  | _ -> invalid_arg "Feedback.record_compare: wrong slot kind"

let record_prop v i ~map_id site =
  match v.(i) with
  | Sl_prop p ->
    if not p.megamorphic then begin
      match List.assoc_opt map_id p.entries with
      | Some existing when existing = site -> ()
      | Some _ ->
        (* Same map resolving differently (e.g. transition then own):
           update in place. *)
        p.entries <- (map_id, site) :: List.remove_assoc map_id p.entries
      | None ->
        if List.length p.entries >= max_polymorphic then begin
          p.megamorphic <- true;
          if !Trace.on then
            Trace.instant ~cat:"jsvm" ~arg:(Printf.sprintf "slot=%d" i)
              "ic:prop->megamorphic"
        end
        else begin
          p.entries <- (map_id, site) :: p.entries;
          if !Trace.on then
            Trace.instant ~cat:"jsvm"
              ~arg:(Printf.sprintf "slot=%d maps=%d" i (List.length p.entries))
              "ic:prop-transition"
        end
    end
  | _ -> invalid_arg "Feedback.record_prop: wrong slot kind"

let record_elem v i ~map_id ~smi_index =
  match v.(i) with
  | Sl_elem e ->
    if not e.megamorphic then begin
      if not (List.mem map_id e.maps) then begin
        if List.length e.maps >= max_polymorphic then begin
          e.megamorphic <- true;
          if !Trace.on then
            Trace.instant ~cat:"jsvm" ~arg:(Printf.sprintf "slot=%d" i)
              "ic:elem->megamorphic"
        end
        else begin
          e.maps <- map_id :: e.maps;
          if !Trace.on then
            Trace.instant ~cat:"jsvm"
              ~arg:(Printf.sprintf "slot=%d maps=%d" i (List.length e.maps))
              "ic:elem-transition"
        end
      end;
      if not smi_index then e.smi_index <- false
    end
  | _ -> invalid_arg "Feedback.record_elem: wrong slot kind"

let record_call v i ~target ~target_obj =
  match v.(i) with
  | Sl_call c ->
    if not c.megamorphic && not (List.mem_assoc target c.targets) then begin
      if List.length c.targets >= 2 then begin
        c.megamorphic <- true;
        if !Trace.on then
          Trace.instant ~cat:"jsvm" ~arg:(Printf.sprintf "slot=%d" i)
            "ic:call->megamorphic"
      end
      else begin
        c.targets <- (target, target_obj) :: c.targets;
        if !Trace.on then
          Trace.instant ~cat:"jsvm"
            ~arg:(Printf.sprintf "slot=%d targets=%d" i (List.length c.targets))
            "ic:call-transition"
      end
    end
  | _ -> invalid_arg "Feedback.record_call: wrong slot kind"

let mark_megamorphic v i =
  match v.(i) with
  | Sl_binop r | Sl_compare r -> r := Ot_any
  | Sl_prop p -> p.megamorphic <- true
  | Sl_elem e -> e.megamorphic <- true
  | Sl_call c -> c.megamorphic <- true

let binop_type v i =
  match v.(i) with
  | Sl_binop r -> !r
  | _ -> Ot_any

let compare_type v i =
  match v.(i) with
  | Sl_compare r -> !r
  | _ -> Ot_any

let prop_entries v i =
  match v.(i) with
  | Sl_prop { entries = []; _ } -> None
  | Sl_prop { megamorphic = true; _ } -> None
  | Sl_prop { entries; _ } -> Some entries
  | _ -> None

let elem_info v i =
  match v.(i) with
  | Sl_elem { maps = []; _ } -> None
  | Sl_elem { megamorphic = true; _ } -> None
  | Sl_elem { maps; smi_index; _ } -> Some (maps, smi_index)
  | _ -> None

let call_target v i =
  match v.(i) with
  | Sl_call { targets = [ t ]; megamorphic = false } -> Some t
  | _ -> None

let is_uninitialized v i =
  match v.(i) with
  | Sl_binop r | Sl_compare r -> !r = Ot_none
  | Sl_prop { entries; megamorphic } -> entries = [] && not megamorphic
  | Sl_elem { maps; megamorphic; _ } -> maps = [] && not megamorphic
  | Sl_call { targets; megamorphic } -> targets = [] && not megamorphic
