open Ast

exception Compile_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

type unit_ = { functions : Bytecode.func_info array; main : int }

(* ------------------------------------------------------------------ *)
(* Free-variable analysis (which locals must live in contexts)         *)
(* ------------------------------------------------------------------ *)

module StringSet = Set.Make (String)

(* Names declared directly in a function body: params, vars, nested
   function declarations. *)
let declared_names (params : string list) (body : stmt list) =
  let acc = ref (StringSet.of_list params) in
  let add n = acc := StringSet.add n !acc in
  let rec stmt = function
    | Var_decl ds -> List.iter (fun (n, _) -> add n) ds
    | Func_decl f -> Option.iter add f.fname
    | If (_, a, b) ->
      List.iter stmt a;
      List.iter stmt b
    | While (_, b) | Do_while (b, _) -> List.iter stmt b
    | For (init, _, _, b) ->
      Option.iter stmt init;
      List.iter stmt b
    | Block b -> List.iter stmt b
    | Expr_stmt _ | Return _ | Break | Continue -> ()
  in
  List.iter stmt body;
  !acc

(* All identifiers referenced in a function, including inside nested
   functions, minus names the nested functions bind themselves. *)
let rec referenced_free (params : string list) (body : stmt list) =
  let bound = declared_names params body in
  let acc = ref StringSet.empty in
  let use n = if not (StringSet.mem n bound) then acc := StringSet.add n !acc in
  let rec expr = function
    | Ident n -> use n
    | Number _ | String _ | Bool _ | Null | Undefined | This -> ()
    | Array_lit es -> List.iter expr es
    | Object_lit fs -> List.iter (fun (_, e) -> expr e) fs
    | Function_expr f ->
      StringSet.iter use (referenced_free f.params f.body)
    | Unary (_, e) -> expr e
    | Binary (_, a, b) ->
      expr a;
      expr b
    | Assign (t, e) ->
      target t;
      expr e
    | Compound_assign (_, t, e) ->
      target t;
      expr e
    | Update { target = t; _ } -> target t
    | Conditional (c, a, b) ->
      expr c;
      expr a;
      expr b
    | Call (f, args) ->
      expr f;
      List.iter expr args
    | Method_call (o, _, args) ->
      expr o;
      List.iter expr args
    | New (f, args) ->
      expr f;
      List.iter expr args
    | Member (o, _) -> expr o
    | Index (o, i) ->
      expr o;
      expr i
  and target = function
    | T_ident n -> use n
    | T_member (o, _) -> expr o
    | T_index (o, i) ->
      expr o;
      expr i
  in
  let rec stmt = function
    | Expr_stmt e -> expr e
    | Var_decl ds -> List.iter (fun (_, init) -> Option.iter expr init) ds
    | Func_decl f -> StringSet.iter use (referenced_free f.params f.body)
    | Return e -> Option.iter expr e
    | If (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | While (c, b) ->
      expr c;
      List.iter stmt b
    | Do_while (b, c) ->
      List.iter stmt b;
      expr c
    | For (init, cond, step, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      Option.iter expr step;
      List.iter stmt b
    | Break | Continue -> ()
    | Block b -> List.iter stmt b
  in
  List.iter stmt body;
  !acc

(* Locals of (params, body) captured by directly or indirectly nested
   functions. *)
let captured_locals (params : string list) (body : stmt list) =
  let locals = declared_names params body in
  let acc = ref StringSet.empty in
  let note_child (f : func) =
    let free = referenced_free f.params f.body in
    acc := StringSet.union !acc (StringSet.inter free locals)
  in
  let rec expr = function
    | Function_expr f -> note_child f
    | Ident _ | Number _ | String _ | Bool _ | Null | Undefined | This -> ()
    | Array_lit es -> List.iter expr es
    | Object_lit fs -> List.iter (fun (_, e) -> expr e) fs
    | Unary (_, e) -> expr e
    | Binary (_, a, b) ->
      expr a;
      expr b
    | Assign (t, e) ->
      target t;
      expr e
    | Compound_assign (_, t, e) ->
      target t;
      expr e
    | Update { target = t; _ } -> target t
    | Conditional (c, a, b) ->
      expr c;
      expr a;
      expr b
    | Call (f, args) ->
      expr f;
      List.iter expr args
    | Method_call (o, _, args) ->
      expr o;
      List.iter expr args
    | New (f, args) ->
      expr f;
      List.iter expr args
    | Member (o, _) -> expr o
    | Index (o, i) ->
      expr o;
      expr i
  and target = function
    | T_ident _ -> ()
    | T_member (o, _) -> expr o
    | T_index (o, i) ->
      expr o;
      expr i
  in
  let rec stmt = function
    | Expr_stmt e -> expr e
    | Var_decl ds -> List.iter (fun (_, init) -> Option.iter expr init) ds
    | Func_decl f -> note_child f
    | Return e -> Option.iter expr e
    | If (c, a, b) ->
      expr c;
      List.iter stmt a;
      List.iter stmt b
    | While (c, b) ->
      expr c;
      List.iter stmt b
    | Do_while (b, c) ->
      List.iter stmt b;
      expr c
    | For (init, cond, step, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      Option.iter expr step;
      List.iter stmt b
    | Break | Continue -> ()
    | Block b -> List.iter stmt b
  in
  List.iter stmt body;
  !acc

(* ------------------------------------------------------------------ *)
(* Compilation state                                                   *)
(* ------------------------------------------------------------------ *)

type binding = B_local of int | B_context of int (* depth from use site *) * int

type scope = {
  bindings : (string, binding) Hashtbl.t;
  has_context : bool;
  parent : scope option;
}

type fn_state = {
  mutable ops : Bytecode.op array;
  mutable n_ops : int;
  mutable consts : Bytecode.const list;  (* reversed *)
  mutable n_consts : int;
  const_index : (Bytecode.const, int) Hashtbl.t;
  mutable next_reg : int;
  mutable max_reg : int;
  mutable next_fb : int;
  scope : scope;
  is_toplevel : bool;
  mutable break_patches : int list list;   (* stack of patch lists *)
  mutable continue_targets : int list;     (* stack; -1 = patch later *)
  mutable continue_patches : int list list;
}

type unit_state = {
  mutable funcs : Bytecode.func_info list;  (* reversed *)
  mutable n_funcs : int;
}

let emit st op =
  if st.n_ops >= Array.length st.ops then begin
    let bigger = Array.make (max 32 (2 * Array.length st.ops)) Bytecode.Return in
    Array.blit st.ops 0 bigger 0 st.n_ops;
    st.ops <- bigger
  end;
  st.ops.(st.n_ops) <- op;
  st.n_ops <- st.n_ops + 1;
  st.n_ops - 1

(* Emit a jump with a dummy target; returns position for patching. *)
let emit_jump st mk = emit st (mk (-1))

let here st = st.n_ops

let patch st pos target =
  match st.ops.(pos) with
  | Bytecode.Jump _ -> st.ops.(pos) <- Bytecode.Jump target
  | Bytecode.Jump_if_false _ -> st.ops.(pos) <- Bytecode.Jump_if_false target
  | Bytecode.Jump_if_true _ -> st.ops.(pos) <- Bytecode.Jump_if_true target
  | _ -> fail "patch: not a jump at %d" pos

let const st c =
  match Hashtbl.find_opt st.const_index c with
  | Some i -> i
  | None ->
    st.consts <- c :: st.consts;
    let i = st.n_consts in
    st.n_consts <- st.n_consts + 1;
    Hashtbl.replace st.const_index c i;
    i

let name_const st n = const st (Bytecode.C_str n)

let fb st =
  let i = st.next_fb in
  st.next_fb <- st.next_fb + 1;
  i

let alloc_temp st =
  let r = st.next_reg in
  st.next_reg <- st.next_reg + 1;
  if st.next_reg > st.max_reg then st.max_reg <- st.next_reg;
  r

let save_temps st = st.next_reg
let restore_temps st mark = st.next_reg <- mark

(* Resolve a name against the scope chain.  [depth_acc] counts the
   context hops crossed before reaching the binding's scope: the current
   function's own context (if any) counts when the binding is in an
   enclosing scope, because the runtime walks parent pointers from the
   innermost context. *)
let lookup st name =
  let rec go scope ~first ~depth_acc =
    match Hashtbl.find_opt scope.bindings name with
    | Some (B_local r) when first -> Some (B_local r)
    | Some (B_local _) ->
      (* A register of an enclosing function is not addressable; the
         capture analysis should have promoted it to a context slot. *)
      fail "internal: captured local %s not context-allocated" name
    | Some (B_context (_, slot)) -> Some (B_context (depth_acc, slot))
    | None ->
      (match scope.parent with
      | None -> None
      | Some p ->
        let depth_acc = if scope.has_context then depth_acc + 1 else depth_acc in
        go p ~first:false ~depth_acc)
  in
  go st.scope ~first:true ~depth_acc:0

(* ------------------------------------------------------------------ *)
(* Expression / statement compilation                                  *)
(* ------------------------------------------------------------------ *)

let rec compile_function (u : unit_state) ~name ~(params : string list)
    ~(body : stmt list) ~(parent_scope : scope option) ~is_toplevel :
    Bytecode.func_info =
  let fid = u.n_funcs in
  u.n_funcs <- u.n_funcs + 1;
  (* Reserve the slot so nested functions get later ids. *)
  let placeholder : Bytecode.func_info =
    {
      fid;
      name;
      n_params = List.length params;
      n_regs = 0;
      code = [||];
      consts = [||];
      n_feedback = 0;
      context_slots = 0;
      source = { fname = Some name; params; body };
    }
  in
  u.funcs <- placeholder :: u.funcs;

  let captured = if is_toplevel then StringSet.empty else captured_locals params body in
  let has_context = not (StringSet.is_empty captured) in
  let scope =
    { bindings = Hashtbl.create 16; has_context; parent = parent_scope }
  in
  let st =
    {
      ops = [||];
      n_ops = 0;
      consts = [];
      n_consts = 0;
      const_index = Hashtbl.create 16;
      next_reg = 0;
      max_reg = 0;
      next_fb = 0;
      scope;
      is_toplevel;
      break_patches = [];
      continue_targets = [];
      continue_patches = [];
    }
  in
  (* Register layout: r0 = this, r1..rn = params, then locals, temps. *)
  st.next_reg <- 1 + List.length params;
  st.max_reg <- st.next_reg;
  let ctx_slot = ref 0 in
  let bind_name n default_reg =
    if StringSet.mem n captured then begin
      let slot = !ctx_slot in
      incr ctx_slot;
      Hashtbl.replace scope.bindings n (B_context (0, slot));
      slot
    end
    else begin
      Hashtbl.replace scope.bindings n (B_local default_reg);
      -1
    end
  in
  if not is_toplevel then begin
    (* Params. *)
    List.iteri
      (fun i p ->
        let slot = bind_name p (Bytecode.param_reg i) in
        if slot >= 0 then begin
          (* Copy captured param into its context slot at entry. *)
          ignore (emit st (Bytecode.Ldar (Bytecode.param_reg i)));
          ignore (emit st (Bytecode.Sta_context (0, slot)))
        end)
      params;
    (* Hoisted vars and function declarations become locals. *)
    let decls = declared_names [] body in
    StringSet.iter
      (fun n ->
        if not (List.mem n params) then begin
          let r = st.next_reg in
          let slot = bind_name n r in
          if slot < 0 then begin
            st.next_reg <- st.next_reg + 1;
            if st.next_reg > st.max_reg then st.max_reg <- st.next_reg
          end
        end)
      decls
  end;
  (* Hoist function declarations (compile and bind before the body). *)
  List.iter
    (fun s ->
      match s with
      | Func_decl f ->
        let fname = Option.get f.fname in
        let child =
          compile_function u ~name:fname ~params:f.params ~body:f.body
            ~parent_scope:(Some scope) ~is_toplevel:false
        in
        ignore (emit st (Bytecode.Create_closure child.Bytecode.fid));
        store_ident st fname
      | _ -> ())
    body;
  List.iter (fun s -> compile_stmt u st s) body;
  ignore (emit st Bytecode.Lda_undefined);
  ignore (emit st Bytecode.Return);
  placeholder.Bytecode.n_regs <- st.max_reg;
  placeholder.Bytecode.code <- Array.sub st.ops 0 st.n_ops;
  placeholder.Bytecode.consts <- Array.of_list (List.rev st.consts);
  placeholder.Bytecode.n_feedback <- st.next_fb;
  placeholder.Bytecode.context_slots <- !ctx_slot;
  placeholder

and store_ident st name =
  (* Store accumulator into a name. *)
  if st.is_toplevel then ignore (emit st (Bytecode.Sta_global (name_const st name)))
  else begin
    match lookup st name with
    | Some (B_local r) -> ignore (emit st (Bytecode.Star r))
    | Some (B_context (d, s)) -> ignore (emit st (Bytecode.Sta_context (d, s)))
    | None -> ignore (emit st (Bytecode.Sta_global (name_const st name)))
  end

and load_ident st name =
  if st.is_toplevel then ignore (emit st (Bytecode.Lda_global (name_const st name)))
  else begin
    match lookup st name with
    | Some (B_local r) -> ignore (emit st (Bytecode.Ldar r))
    | Some (B_context (d, s)) -> ignore (emit st (Bytecode.Lda_context (d, s)))
    | None -> ignore (emit st (Bytecode.Lda_global (name_const st name)))
  end

and compile_expr u st (e : expr) : unit =
  match e with
  | Number f ->
    if Float.is_integer f && Float.abs f <= 1073741823.0 then begin
      let n = int_of_float f in
      if n = 0 then ignore (emit st Bytecode.Lda_zero)
      else ignore (emit st (Bytecode.Lda_smi n))
    end
    else ignore (emit st (Bytecode.Lda_const (const st (Bytecode.C_num f))))
  | String s -> ignore (emit st (Bytecode.Lda_const (const st (Bytecode.C_str s))))
  | Bool true -> ignore (emit st Bytecode.Lda_true)
  | Bool false -> ignore (emit st Bytecode.Lda_false)
  | Null -> ignore (emit st Bytecode.Lda_null)
  | Undefined -> ignore (emit st Bytecode.Lda_undefined)
  | Ident n -> load_ident st n
  | This -> ignore (emit st (Bytecode.Ldar Bytecode.this_reg))
  | Array_lit es ->
    let mark = save_temps st in
    let arr = alloc_temp st in
    ignore (emit st (Bytecode.Create_array (List.length es)));
    ignore (emit st (Bytecode.Star arr));
    let key = alloc_temp st in
    List.iteri
      (fun i el ->
        ignore (emit st (Bytecode.Lda_smi i));
        ignore (emit st (Bytecode.Star key));
        compile_expr u st el;
        ignore (emit st (Bytecode.Set_keyed (arr, key, fb st))))
      es;
    ignore (emit st (Bytecode.Ldar arr));
    restore_temps st mark
  | Object_lit fields ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    ignore (emit st Bytecode.Create_object);
    ignore (emit st (Bytecode.Star obj));
    List.iter
      (fun (k, v) ->
        compile_expr u st v;
        ignore (emit st (Bytecode.Set_named (obj, name_const st k, fb st))))
      fields;
    ignore (emit st (Bytecode.Ldar obj));
    restore_temps st mark
  | Function_expr f ->
    let child =
      compile_function u
        ~name:(Option.value ~default:"<anonymous>" f.fname)
        ~params:f.params ~body:f.body ~parent_scope:(Some st.scope)
        ~is_toplevel:false
    in
    ignore (emit st (Bytecode.Create_closure child.Bytecode.fid))
  | Unary (op, e) -> (
    compile_expr u st e;
    match op with
    | Neg -> ignore (emit st (Bytecode.Neg_acc (fb st)))
    | Plus -> () (* ToNumber: our subset only applies + to numbers *)
    | Not -> ignore (emit st Bytecode.Not_acc)
    | Bit_not -> ignore (emit st (Bytecode.Bitnot_acc (fb st)))
    | Typeof -> ignore (emit st Bytecode.Typeof_acc))
  | Binary (Logical_and, a, b) ->
    compile_expr u st a;
    let j = emit_jump st (fun t -> Bytecode.Jump_if_false t) in
    compile_expr u st b;
    patch st j (here st)
  | Binary (Logical_or, a, b) ->
    compile_expr u st a;
    let j = emit_jump st (fun t -> Bytecode.Jump_if_true t) in
    compile_expr u st b;
    patch st j (here st)
  | Binary (op, a, b) ->
    let mark = save_temps st in
    let lhs = alloc_temp st in
    compile_expr u st a;
    ignore (emit st (Bytecode.Star lhs));
    compile_expr u st b;
    (match op with
    | Lt | Le | Gt | Ge | Eq | Neq | Strict_eq | Strict_neq ->
      ignore (emit st (Bytecode.Test (op, lhs, fb st)))
    | _ -> ignore (emit st (Bytecode.Binop (op, lhs, fb st))));
    restore_temps st mark
  | Assign (t, e) -> compile_assign u st t (fun () -> compile_expr u st e)
  | Compound_assign (op, t, e) ->
    compile_read_modify u st t (fun old_reg ->
        compile_expr u st e;
        ignore (emit st (Bytecode.Binop (op, old_reg, fb st))))
  | Update { op_add; prefix; target = t } ->
    let op = if op_add then Add else Sub in
    if prefix then
      compile_read_modify u st t (fun old_reg ->
          ignore (emit st (Bytecode.Lda_smi 1));
          ignore (emit st (Bytecode.Binop (op, old_reg, fb st))))
    else begin
      (* Postfix: result is the old value. *)
      let mark = save_temps st in
      let old_v = alloc_temp st in
      compile_read_modify u st t (fun old_reg ->
          ignore (emit st (Bytecode.Ldar old_reg));
          ignore (emit st (Bytecode.Star old_v));
          ignore (emit st (Bytecode.Lda_smi 1));
          ignore (emit st (Bytecode.Binop (op, old_reg, fb st))));
      ignore (emit st (Bytecode.Ldar old_v));
      restore_temps st mark
    end
  | Conditional (c, a, b) ->
    compile_expr u st c;
    let jf = emit_jump st (fun t -> Bytecode.Jump_if_false t) in
    compile_expr u st a;
    let jend = emit_jump st (fun t -> Bytecode.Jump t) in
    patch st jf (here st);
    compile_expr u st b;
    patch st jend (here st)
  | Call (Member (o, m), args) | Method_call (o, m, args) ->
    let mark = save_temps st in
    let recv = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star recv));
    let first = compile_args u st args in
    (* Two feedback slots: method load, then call target. *)
    let load_slot = fb st in
    ignore (fb st);
    ignore
      (emit st
         (Bytecode.Call_method (recv, name_const st m, first, List.length args, load_slot)));
    restore_temps st mark
  | Call (f, args) ->
    let mark = save_temps st in
    let callee = alloc_temp st in
    compile_expr u st f;
    ignore (emit st (Bytecode.Star callee));
    let first = compile_args u st args in
    ignore (emit st (Bytecode.Call (callee, first, List.length args, fb st)));
    restore_temps st mark
  | New (f, args) ->
    let mark = save_temps st in
    let callee = alloc_temp st in
    compile_expr u st f;
    ignore (emit st (Bytecode.Star callee));
    let first = compile_args u st args in
    ignore (emit st (Bytecode.Construct (callee, first, List.length args, fb st)));
    restore_temps st mark
  | Member (o, f) ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star obj));
    ignore (emit st (Bytecode.Get_named (obj, name_const st f, fb st)));
    restore_temps st mark
  | Index (o, i) ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star obj));
    compile_expr u st i;
    ignore (emit st (Bytecode.Get_keyed (obj, fb st)));
    restore_temps st mark

(* Evaluate args into consecutive temps; returns the first register (or
   0 when there are no arguments). *)
and compile_args u st args =
  match args with
  | [] -> 0
  | _ ->
    let regs = List.map (fun _ -> alloc_temp st) args in
    (* Temps from alloc_temp are consecutive. *)
    List.iter2
      (fun a r ->
        compile_expr u st a;
        ignore (emit st (Bytecode.Star r)))
      args regs;
    List.hd regs

and compile_assign u st t rhs =
  match t with
  | T_ident n ->
    rhs ();
    store_ident st n
  | T_member (o, f) ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star obj));
    rhs ();
    ignore (emit st (Bytecode.Set_named (obj, name_const st f, fb st)));
    restore_temps st mark
  | T_index (o, i) ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    let key = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star obj));
    compile_expr u st i;
    ignore (emit st (Bytecode.Star key));
    rhs ();
    ignore (emit st (Bytecode.Set_keyed (obj, key, fb st)));
    restore_temps st mark

(* Read target into a temp, run [modify old_reg] (which must leave the
   new value in acc), then write back.  Used by compound assignment and
   update expressions. *)
and compile_read_modify u st t modify =
  match t with
  | T_ident n ->
    let mark = save_temps st in
    let old_v = alloc_temp st in
    load_ident st n;
    ignore (emit st (Bytecode.Star old_v));
    modify old_v;
    store_ident st n;
    restore_temps st mark
  | T_member (o, f) ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    let old_v = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star obj));
    ignore (emit st (Bytecode.Get_named (obj, name_const st f, fb st)));
    ignore (emit st (Bytecode.Star old_v));
    modify old_v;
    ignore (emit st (Bytecode.Set_named (obj, name_const st f, fb st)));
    restore_temps st mark
  | T_index (o, i) ->
    let mark = save_temps st in
    let obj = alloc_temp st in
    let key = alloc_temp st in
    let old_v = alloc_temp st in
    compile_expr u st o;
    ignore (emit st (Bytecode.Star obj));
    compile_expr u st i;
    ignore (emit st (Bytecode.Star key));
    ignore (emit st (Bytecode.Ldar key));
    ignore (emit st (Bytecode.Get_keyed (obj, fb st)));
    ignore (emit st (Bytecode.Star old_v));
    modify old_v;
    ignore (emit st (Bytecode.Set_keyed (obj, key, fb st)));
    restore_temps st mark

and compile_stmt u st (s : stmt) : unit =
  match s with
  | Expr_stmt e -> compile_expr u st e
  | Var_decl ds ->
    List.iter
      (fun (n, init) ->
        match init with
        | None -> ()
        | Some e ->
          compile_expr u st e;
          store_ident st n)
      ds
  | Func_decl _ -> () (* hoisted in compile_function *)
  | Return None ->
    ignore (emit st Bytecode.Lda_undefined);
    ignore (emit st Bytecode.Return)
  | Return (Some e) ->
    compile_expr u st e;
    ignore (emit st Bytecode.Return)
  | If (c, a, b) ->
    compile_expr u st c;
    let jf = emit_jump st (fun t -> Bytecode.Jump_if_false t) in
    List.iter (compile_stmt u st) a;
    if b = [] then patch st jf (here st)
    else begin
      let jend = emit_jump st (fun t -> Bytecode.Jump t) in
      patch st jf (here st);
      List.iter (compile_stmt u st) b;
      patch st jend (here st)
    end
  | While (c, body) ->
    let top = here st in
    compile_expr u st c;
    let jexit = emit_jump st (fun t -> Bytecode.Jump_if_false t) in
    enter_loop st;
    List.iter (compile_stmt u st) body;
    ignore (emit st (Bytecode.Jump top));
    patch st jexit (here st);
    exit_loop st ~break_target:(here st) ~continue_target:top
  | Do_while (body, c) ->
    let top = here st in
    enter_loop st;
    List.iter (compile_stmt u st) body;
    let cont = here st in
    compile_expr u st c;
    let jloop = emit_jump st (fun t -> Bytecode.Jump_if_true t) in
    patch st jloop top;
    exit_loop st ~break_target:(here st) ~continue_target:cont
  | For (init, cond, step, body) ->
    Option.iter (compile_stmt u st) init;
    let top = here st in
    let jexit =
      match cond with
      | None -> None
      | Some c ->
        compile_expr u st c;
        Some (emit_jump st (fun t -> Bytecode.Jump_if_false t))
    in
    enter_loop st;
    List.iter (compile_stmt u st) body;
    let cont = here st in
    Option.iter (fun e -> compile_expr u st e) step;
    ignore (emit st (Bytecode.Jump top));
    Option.iter (fun j -> patch st j (here st)) jexit;
    exit_loop st ~break_target:(here st) ~continue_target:cont
  | Break -> (
    match st.break_patches with
    | _ :: _ ->
      let j = emit_jump st (fun t -> Bytecode.Jump t) in
      st.break_patches <-
        (j :: List.hd st.break_patches) :: List.tl st.break_patches
    | [] -> fail "break outside loop")
  | Continue -> (
    match st.continue_patches with
    | _ :: _ ->
      let j = emit_jump st (fun t -> Bytecode.Jump t) in
      st.continue_patches <-
        (j :: List.hd st.continue_patches) :: List.tl st.continue_patches
    | [] -> fail "continue outside loop")
  | Block body -> List.iter (compile_stmt u st) body

and enter_loop st =
  st.break_patches <- [] :: st.break_patches;
  st.continue_patches <- [] :: st.continue_patches

and exit_loop st ~break_target ~continue_target =
  (match st.break_patches with
  | ps :: rest ->
    List.iter (fun p -> patch st p break_target) ps;
    st.break_patches <- rest
  | [] -> fail "internal: loop stack underflow");
  match st.continue_patches with
  | ps :: rest ->
    List.iter (fun p -> patch st p continue_target) ps;
    st.continue_patches <- rest
  | [] -> fail "internal: loop stack underflow"

let compile_program (prog : Ast.program) =
  let u = { funcs = []; n_funcs = 0 } in
  let main =
    compile_function u ~name:"<main>" ~params:[] ~body:prog ~parent_scope:None
      ~is_toplevel:true
  in
  let arr = Array.of_list (List.rev u.funcs) in
  Array.sort (fun a b -> compare a.Bytecode.fid b.Bytecode.fid) arr;
  { functions = arr; main = main.Bytecode.fid }

let compile src =
  Trace.span_wall ~cat:"jsvm"
    ~arg:(Printf.sprintf "%d bytes" (String.length src))
    "parse" (fun () -> compile_program (Parser.parse src))
