exception Js_error = Builtins.Js_error

let err fmt = Printf.ksprintf (fun m -> raise (Js_error m)) fmt

(* JS ToInt32. *)
let to_int32 f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then 0
  else begin
    let t = Float.trunc f in
    let m = Float.rem t 4294967296.0 in
    let i = Int64.to_int (Int64.of_float m) in
    let w = i land 0xFFFFFFFF in
    if w >= 0x80000000 then w - 0x100000000 else w
  end

let ot_of h v =
  if Value.is_smi v then Feedback.Ot_smi
  else begin
    match Heap.instance_type_of h v with
    | Heap.It_heap_number -> Feedback.Ot_number
    | Heap.It_string -> Feedback.Ot_string
    | _ -> Feedback.Ot_any
  end

let const_name (f : Runtime.func_rt) i =
  match f.info.Bytecode.consts.(i) with
  | Bytecode.C_str s -> s
  | Bytecode.C_num _ -> err "internal: numeric constant used as name"

(* ------------------------------------------------------------------ *)
(* Arithmetic with feedback                                            *)
(* ------------------------------------------------------------------ *)

let smi_mul_fits a b =
  let p = a * b in
  Value.smi_fits p && not (p = 0 && (a < 0 || b < 0))

let arith rt fvec slot (op : Ast.binop) a b =
  let h = rt.Runtime.heap in
  let record t = Feedback.record_binop fvec slot t in
  if Value.is_smi a && Value.is_smi b then begin
    let x = Value.smi_value a and y = Value.smi_value b in
    match op with
    | Ast.Add ->
      let r = x + y in
      if Value.smi_fits r then begin
        record Feedback.Ot_smi;
        Value.smi r
      end
      else begin
        record Feedback.Ot_number;
        Heap.alloc_heap_number h (float_of_int r)
      end
    | Ast.Sub ->
      let r = x - y in
      if Value.smi_fits r then begin
        record Feedback.Ot_smi;
        Value.smi r
      end
      else begin
        record Feedback.Ot_number;
        Heap.alloc_heap_number h (float_of_int r)
      end
    | Ast.Mul ->
      if smi_mul_fits x y then begin
        record Feedback.Ot_smi;
        Value.smi (x * y)
      end
      else begin
        record Feedback.Ot_number;
        Heap.number h (float_of_int x *. float_of_int y)
      end
    | Ast.Div ->
      if y <> 0 && x mod y = 0 && not (x = 0 && y < 0) && Value.smi_fits (x / y)
      then begin
        record Feedback.Ot_smi;
        Value.smi (x / y)
      end
      else begin
        record Feedback.Ot_number;
        Heap.number h (float_of_int x /. float_of_int y)
      end
    | Ast.Mod ->
      if y <> 0 && not (x mod y = 0 && x < 0) then begin
        (* Negative zero results must be doubles. *)
        record Feedback.Ot_smi;
        Value.smi (x mod y)
      end
      else begin
        record Feedback.Ot_number;
        Heap.number h (Float.rem (float_of_int x) (float_of_int y))
      end
    | _ -> err "internal: arith on non-arith op"
  end
  else if Heap.is_number h a && Heap.is_number h b then begin
    record Feedback.Ot_number;
    let x = Heap.number_value h a and y = Heap.number_value h b in
    let r =
      match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Mod -> Float.rem x y
      | _ -> err "internal: arith on non-arith op"
    in
    Heap.number h r
  end
  else if op = Ast.Add && (Heap.is_string h a || Heap.is_string h b) then begin
    record
      (if Heap.is_string h a && Heap.is_string h b then Feedback.Ot_string
       else Feedback.Ot_any);
    let s = Conv.to_js_string h a ^ Conv.to_js_string h b in
    rt.Runtime.charge_builtin ~cycles:(30 + (4 * String.length s));
    Heap.alloc_string h s
  end
  else if op = Ast.Add then begin
    (* Object/array coercion: both sides become strings. *)
    record Feedback.Ot_any;
    let s = Conv.to_js_string h a ^ Conv.to_js_string h b in
    rt.Runtime.charge_builtin ~cycles:(40 + (4 * String.length s));
    Heap.alloc_string h s
  end
  else begin
    record Feedback.Ot_any;
    let x = Conv.to_number h a and y = Conv.to_number h b in
    let r =
      match op with
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Mod -> Float.rem x y
      | _ -> err "internal: arith fallthrough"
    in
    Heap.number h r
  end

let bitwise rt fvec slot (op : Ast.binop) a b =
  let h = rt.Runtime.heap in
  let both_smi = Value.is_smi a && Value.is_smi b in
  let x = to_int32 (Conv.to_number h a) and y = to_int32 (Conv.to_number h b) in
  let r =
    match op with
    | Ast.Bit_and -> x land y
    | Ast.Bit_or -> x lor y
    | Ast.Bit_xor -> x lxor y
    | Ast.Shl ->
      let w = (x lsl (y land 31)) land 0xFFFFFFFF in
      if w >= 0x80000000 then w - 0x100000000 else w
    | Ast.Shr -> x asr (y land 31)
    | Ast.Ushr ->
      let u = (x land 0xFFFFFFFF) lsr (y land 31) in
      u
    | _ -> err "internal: bitwise on non-bit op"
  in
  let fits = Value.smi_fits r in
  Feedback.record_binop fvec slot
    (if both_smi && fits then Feedback.Ot_smi
     else if Heap.is_number h a && Heap.is_number h b then Feedback.Ot_number
     else Feedback.Ot_any);
  if fits then Value.smi r else Heap.alloc_heap_number h (float_of_int r)

let compare_vals rt fvec slot (op : Ast.binop) a b =
  let h = rt.Runtime.heap in
  let record t = Feedback.record_compare fvec slot t in
  let bool_v = Heap.bool_value h in
  match op with
  | Ast.Eq -> record (Feedback.join_operand (ot_of h a) (ot_of h b));
    bool_v (Conv.loose_equal h a b)
  | Ast.Neq ->
    record (Feedback.join_operand (ot_of h a) (ot_of h b));
    bool_v (not (Conv.loose_equal h a b))
  | Ast.Strict_eq ->
    record (Feedback.join_operand (ot_of h a) (ot_of h b));
    bool_v (Conv.strict_equal h a b)
  | Ast.Strict_neq ->
    record (Feedback.join_operand (ot_of h a) (ot_of h b));
    bool_v (not (Conv.strict_equal h a b))
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    if Value.is_smi a && Value.is_smi b then begin
      record Feedback.Ot_smi;
      let x = Value.smi_value a and y = Value.smi_value b in
      bool_v
        (match op with
        | Ast.Lt -> x < y
        | Ast.Le -> x <= y
        | Ast.Gt -> x > y
        | Ast.Ge -> x >= y
        | _ -> assert false)
    end
    else if Heap.is_string h a && Heap.is_string h b then begin
      record Feedback.Ot_string;
      let x = Heap.string_value h a and y = Heap.string_value h b in
      rt.Runtime.charge_builtin ~cycles:(20 + min (String.length x) (String.length y));
      bool_v
        (match op with
        | Ast.Lt -> x < y
        | Ast.Le -> x <= y
        | Ast.Gt -> x > y
        | Ast.Ge -> x >= y
        | _ -> assert false)
    end
    else begin
      record
        (if Heap.is_number h a && Heap.is_number h b then Feedback.Ot_number
         else Feedback.Ot_any);
      let x = Conv.to_number h a and y = Conv.to_number h b in
      bool_v
        (match op with
        | Ast.Lt -> x < y
        | Ast.Le -> x <= y
        | Ast.Gt -> x > y
        | Ast.Ge -> x >= y
        | _ -> assert false)
    end
  | _ -> err "internal: compare on non-compare op"

(* ------------------------------------------------------------------ *)
(* Property access with feedback                                       *)
(* ------------------------------------------------------------------ *)

let get_named rt fvec slot obj name =
  let h = rt.Runtime.heap in
  if Value.is_smi obj then err "cannot read property '%s' of a number" name
  else begin
    match Heap.instance_type_of h obj with
    | Heap.It_object | Heap.It_array -> (
      let info = Heap.map_of h obj in
      if name = "length" && info.Heap.itype = Heap.It_array then begin
        Feedback.record_prop fvec slot ~map_id:info.Heap.map_id Feedback.Length;
        Value.smi (Heap.array_length h obj)
      end
      else begin
        match Heap.own_slot info name with
        | Some s ->
          Feedback.record_prop fvec slot ~map_id:info.Heap.map_id (Feedback.Own s);
          Heap.load_slot h obj s
        | None ->
          (* Prototype chain walk. *)
          let rec walk holder =
            if holder = Heap.undefined h || holder = 0 then None
            else begin
              let hinfo = Heap.map_of h holder in
              match Heap.own_slot hinfo name with
              | Some s -> Some (holder, s)
              | None -> walk hinfo.Heap.prototype
            end
          in
          (match walk info.Heap.prototype with
          | Some (holder, s) ->
            Feedback.record_prop fvec slot ~map_id:info.Heap.map_id
              (Feedback.Proto { holder; slot = s });
            Heap.load_slot h holder s
          | None ->
            Feedback.mark_megamorphic fvec slot;
            Heap.undefined h)
      end)
    | Heap.It_string ->
      if name = "length" then begin
        let info = Heap.map_of h obj in
        Feedback.record_prop fvec slot ~map_id:info.Heap.map_id Feedback.Length;
        Value.smi (Heap.string_length h obj)
      end
      else begin
        Feedback.mark_megamorphic fvec slot;
        Heap.undefined h
      end
    | Heap.It_function ->
      if name = "prototype" then Heap.function_prototype h obj
      else begin
        match Heap.get_property h obj name with
        | Some v -> v
        | None -> Heap.undefined h
      end
    | Heap.It_heap_number -> err "cannot read property '%s' of a number" name
    | Heap.It_oddball -> err "cannot read property '%s' of %s" name (Conv.to_js_string h obj)
    | _ -> err "cannot read property '%s'" name
  end

let set_named rt fvec slot obj name v =
  let h = rt.Runtime.heap in
  if Value.is_smi obj then err "cannot set property '%s' of a number" name
  else begin
    match Heap.instance_type_of h obj with
    | Heap.It_object | Heap.It_array -> (
      let info = Heap.map_of h obj in
      match Heap.own_slot info name with
      | Some s ->
        Feedback.record_prop fvec slot ~map_id:info.Heap.map_id (Feedback.Own s);
        Heap.store_slot h obj s v
      | None ->
        let old_map = info.Heap.map_id in
        Heap.set_property h obj name v;
        let new_info = Heap.map_of h obj in
        let s =
          match Heap.own_slot new_info name with
          | Some s -> s
          | None -> err "internal: property %s vanished after store" name
        in
        Feedback.record_prop fvec slot ~map_id:old_map
          (Feedback.Transition { new_map = new_info.Heap.map_id; slot = s }))
    | Heap.It_function -> Heap.set_property h obj name v
    | _ -> err "cannot set property '%s'" name
  end

let get_keyed rt fvec slot obj key =
  let h = rt.Runtime.heap in
  if Value.is_pointer obj && Heap.instance_type_of h obj = Heap.It_array
     && Value.is_smi key
  then begin
    let info = Heap.map_of h obj in
    let i = Value.smi_value key in
    if i >= 0 && i < Heap.array_length h obj then begin
      Feedback.record_elem fvec slot ~map_id:info.Heap.map_id ~smi_index:true;
      Heap.array_get h obj i
    end
    else begin
      (* OOB reads leave the fast path for good. *)
      Feedback.mark_megamorphic fvec slot;
      Heap.undefined h
    end
  end
  else if Value.is_pointer obj && Heap.instance_type_of h obj = Heap.It_string
          && Value.is_smi key
  then begin
    Feedback.mark_megamorphic fvec slot;
    let i = Value.smi_value key in
    if i >= 0 && i < Heap.string_length h obj then begin
      rt.Runtime.charge_builtin ~cycles:30;
      Heap.alloc_string h
        (String.make 1 (Char.chr (Heap.string_char_code h obj i land 0xFF)))
    end
    else Heap.undefined h
  end
  else if Value.is_pointer obj
          && (Heap.instance_type_of h obj = Heap.It_object
             || Heap.instance_type_of h obj = Heap.It_array)
  then begin
    Feedback.mark_megamorphic fvec slot;
    let name = Conv.to_js_string h key in
    match Heap.get_property h obj name with
    | Some v -> v
    | None -> Heap.undefined h
  end
  else err "cannot index %s" (Conv.typeof_string h obj)

let set_keyed rt fvec slot obj key v =
  let h = rt.Runtime.heap in
  if Value.is_pointer obj && Heap.instance_type_of h obj = Heap.It_array
     && Value.is_smi key
  then begin
    let i = Value.smi_value key in
    let len = Heap.array_length h obj in
    if i >= 0 && i <= len then begin
      Heap.array_set h obj i v;
      (* Record the post-transition map: that's the steady state. *)
      let info = Heap.map_of h obj in
      Feedback.record_elem fvec slot ~map_id:info.Heap.map_id ~smi_index:true
    end
    else err "sparse array write at index %d (length %d)" i len
  end
  else if Value.is_pointer obj
          && (Heap.instance_type_of h obj = Heap.It_object
             || Heap.instance_type_of h obj = Heap.It_array)
  then begin
    Feedback.mark_megamorphic fvec slot;
    Heap.set_property h obj (Conv.to_js_string h key) v
  end
  else err "cannot index-assign %s" (Conv.typeof_string h obj)

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let rec call_closure rt ~closure ~this ~args =
  let h = rt.Runtime.heap in
  if not (Heap.is_function h closure) then
    err "%s is not a function" (Conv.to_js_string h closure);
  let fid = Heap.function_id_of h closure in
  if fid >= Runtime.builtin_base then
    Builtins.dispatch rt (fid - Runtime.builtin_base) ~this ~args
  else begin
    let f = Runtime.func rt fid in
    f.Runtime.invocations <- f.Runtime.invocations + 1;
    (match rt.Runtime.on_invoke with Some hook -> hook rt f | None -> ());
    match rt.Runtime.call_optimized with
    | Some call when f.Runtime.code_ref >= 0 ->
      let margs = Array.make (2 + Array.length args) 0 in
      margs.(0) <- closure;
      margs.(1) <- this;
      Array.blit args 0 margs 2 (Array.length args);
      call fid margs
    | _ -> interpret rt f ~closure ~this ~args
  end

and interpret rt (f : Runtime.func_rt) ~closure ~this ~args =
  let h = rt.Runtime.heap in
  let info = f.Runtime.info in
  let u = Heap.undefined h in
  (* Two extra rooting slots at the end: closure and context. *)
  let regs = Array.make (info.Bytecode.n_regs + 2) u in
  regs.(0) <- this;
  let n_copy = min info.Bytecode.n_params (Array.length args) in
  Array.blit args 0 regs 1 n_copy;
  regs.(info.Bytecode.n_regs) <- closure;
  let parent_ctx = Heap.function_context h closure in
  let ctx =
    if info.Bytecode.context_slots > 0 then
      Heap.alloc_context h ~parent:parent_ctx ~slots:info.Bytecode.context_slots
    else parent_ctx
  in
  regs.(info.Bytecode.n_regs + 1) <- ctx;
  run_loop rt f ~regs ~ctx ~acc:u ~pc:0

and resume rt ~fid ~closure ~regs ~acc ~pc =
  let f = Runtime.func rt fid in
  let info = f.Runtime.info in
  let h = rt.Runtime.heap in
  let full = Array.make (info.Bytecode.n_regs + 2) (Heap.undefined h) in
  Array.blit regs 0 full 0 (min (Array.length regs) info.Bytecode.n_regs);
  full.(info.Bytecode.n_regs) <- closure;
  let ctx = Heap.function_context h closure in
  full.(info.Bytecode.n_regs + 1) <- ctx;
  run_loop rt f ~regs:full ~ctx ~acc ~pc

and call_function_value rt callee args =
  call_closure rt ~closure:callee ~this:(Heap.undefined rt.Runtime.heap) ~args

and run_loop rt (f : Runtime.func_rt) ~regs ~ctx ~acc ~pc =
  let h = rt.Runtime.heap in
  let info = f.Runtime.info in
  let fvec = f.Runtime.feedback in
  let consts = Runtime.materialize_consts rt f in
  let code = info.Bytecode.code in
  let frame = { Runtime.f_regs = regs; f_acc = acc } in
  Runtime.push_frame rt frame;
  let cost = ref 0 and nops = ref 0 in
  let flush () =
    if !nops > 0 then begin
      rt.Runtime.charge_interp ~cycles:!cost ~instructions:!nops;
      cost := 0;
      nops := 0
    end
  in
  let acc = ref acc in
  let pc = ref pc in
  let result = ref None in
  (try
     while !result = None do
       let op = code.(!pc) in
       cost := !cost + Bytecode.interp_cost op;
       incr nops;
       frame.Runtime.f_acc <- !acc;
       let next = ref (!pc + 1) in
       (match op with
       | Bytecode.Lda_zero -> acc := Value.zero
       | Bytecode.Lda_smi n -> acc := Value.smi n
       | Bytecode.Lda_const i -> acc := consts.(i)
       | Bytecode.Lda_undefined -> acc := Heap.undefined h
       | Bytecode.Lda_null -> acc := Heap.null_value h
       | Bytecode.Lda_true -> acc := Heap.true_value h
       | Bytecode.Lda_false -> acc := Heap.false_value h
       | Bytecode.Ldar r -> acc := regs.(r)
       | Bytecode.Star r -> regs.(r) <- !acc
       | Bytecode.Mov (d, s) -> regs.(d) <- regs.(s)
       | Bytecode.Lda_global c ->
         let cell = Heap.global_cell h (const_name f c) in
         acc := Heap.cell_value h cell
       | Bytecode.Sta_global c ->
         let cell = Heap.global_cell h (const_name f c) in
         Heap.set_cell_value h cell !acc
       | Bytecode.Lda_context (depth, slot) ->
         let rec walk c d = if d = 0 then c else walk (Heap.context_parent h c) (d - 1) in
         acc := Heap.context_get h (walk ctx depth) slot
       | Bytecode.Sta_context (depth, slot) ->
         let rec walk c d = if d = 0 then c else walk (Heap.context_parent h c) (d - 1) in
         Heap.context_set h (walk ctx depth) slot !acc
       | Bytecode.Binop (op, r, slot) -> (
         let a = regs.(r) and b = !acc in
         match op with
         | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
           acc := arith rt fvec slot op a b
         | Ast.Bit_and | Ast.Bit_or | Ast.Bit_xor | Ast.Shl | Ast.Shr | Ast.Ushr
           ->
           acc := bitwise rt fvec slot op a b
         | _ -> err "internal: unexpected binop")
       | Bytecode.Test (op, r, slot) ->
         acc := compare_vals rt fvec slot op regs.(r) !acc
       | Bytecode.Neg_acc slot ->
         let v = !acc in
         if Value.is_smi v && Value.smi_value v <> 0
            && Value.smi_fits (-Value.smi_value v)
         then begin
           Feedback.record_binop fvec slot Feedback.Ot_smi;
           acc := Value.smi (-Value.smi_value v)
         end
         else begin
           Feedback.record_binop fvec slot
             (if Heap.is_number h v then Feedback.Ot_number else Feedback.Ot_any);
           acc := Heap.number h (-.Conv.to_number h v)
         end
       | Bytecode.Bitnot_acc slot ->
         let v = !acc in
         let r = lnot (to_int32 (Conv.to_number h v)) in
         let r = if r land 0xFFFFFFFF >= 0x80000000 then (r land 0xFFFFFFFF) - 0x100000000 else r land 0xFFFFFFFF in
         Feedback.record_binop fvec slot
           (if Value.is_smi v && Value.smi_fits r then Feedback.Ot_smi
            else Feedback.Ot_number);
         acc := (if Value.smi_fits r then Value.smi r else Heap.alloc_heap_number h (float_of_int r))
       | Bytecode.Not_acc ->
         acc := Heap.bool_value h (not (Conv.to_boolean h !acc))
       | Bytecode.Typeof_acc ->
         acc := Heap.intern h (Conv.typeof_string h !acc)
       | Bytecode.Jump t -> next := t
       | Bytecode.Jump_if_false t -> if not (Conv.to_boolean h !acc) then next := t
       | Bytecode.Jump_if_true t -> if Conv.to_boolean h !acc then next := t
       | Bytecode.Get_named (r, c, slot) ->
         acc := get_named rt fvec slot regs.(r) (const_name f c)
       | Bytecode.Set_named (r, c, slot) ->
         set_named rt fvec slot regs.(r) (const_name f c) !acc
       | Bytecode.Get_keyed (r, slot) ->
         acc := get_keyed rt fvec slot regs.(r) !acc
       | Bytecode.Set_keyed (r, k, slot) ->
         set_keyed rt fvec slot regs.(r) regs.(k) !acc
       | Bytecode.Create_array cap ->
         acc := Heap.alloc_array h Heap.Packed_smi ~capacity:(max 1 cap)
       | Bytecode.Create_object -> acc := Heap.alloc_empty_object h
       | Bytecode.Create_closure fid ->
         acc := Heap.alloc_function h ~function_id:fid ~context:ctx
       | Bytecode.Call (callee_r, first, n, slot) ->
         flush ();
         let callee = regs.(callee_r) in
         let args = Array.sub regs first n in
         record_call_target rt fvec slot callee;
         acc := call_closure rt ~closure:callee ~this:(Heap.undefined h) ~args
       | Bytecode.Call_method (recv_r, name_c, first, n, slot) ->
         flush ();
         let recv = regs.(recv_r) in
         let name = const_name f name_c in
         let args = Array.sub regs first n in
         acc := call_method rt fvec slot recv name args
       | Bytecode.Construct (callee_r, first, n, slot) ->
         flush ();
         let callee = regs.(callee_r) in
         let args = Array.sub regs first n in
         acc := construct rt fvec slot callee args
       | Bytecode.Return ->
         flush ();
         result := Some !acc);
       pc := !next
     done
   with e ->
     Runtime.pop_frame rt;
     raise e);
  Runtime.pop_frame rt;
  flush ();
  match !result with Some v -> v | None -> assert false

and record_call_target rt fvec slot callee =
  let h = rt.Runtime.heap in
  if Heap.is_function h callee then
    Feedback.record_call fvec slot ~target:(Heap.function_id_of h callee)
      ~target_obj:callee

and call_method rt fvec slot recv name args =
  let h = rt.Runtime.heap in
  let call_slot = slot + 1 in
  if Value.is_smi recv then err "cannot call method '%s' on a number" name
  else begin
    match Heap.instance_type_of h recv with
    | Heap.It_string -> (
      match Builtins.string_method name with
      | Some b ->
        Feedback.record_call fvec call_slot ~target:(Runtime.builtin_base + b)
          ~target_obj:0;
        Builtins.dispatch rt b ~this:recv ~args
      | None -> err "string has no method '%s'" name)
    | Heap.It_array -> (
      match Builtins.array_method name with
      | Some b ->
        Feedback.record_call fvec call_slot ~target:(Runtime.builtin_base + b)
          ~target_obj:0;
        Builtins.dispatch rt b ~this:recv ~args
      | None ->
        (* Named property holding a function (e.g. on exec results). *)
        let m = get_named rt fvec slot recv name in
        record_call_target rt fvec call_slot m;
        call_closure rt ~closure:m ~this:recv ~args)
    | Heap.It_object | Heap.It_function ->
      let m = get_named rt fvec slot recv name in
      record_call_target rt fvec call_slot m;
      call_closure rt ~closure:m ~this:recv ~args
    | _ -> err "cannot call method '%s' on %s" name (Conv.typeof_string h recv)
  end

and construct rt fvec slot callee args =
  let h = rt.Runtime.heap in
  if not (Heap.is_function h callee) then
    err "%s is not a constructor" (Conv.to_js_string h callee);
  let fid = Heap.function_id_of h callee in
  Feedback.record_call fvec slot ~target:fid ~target_obj:callee;
  construct_no_feedback rt callee args

and construct_no_feedback rt callee args =
  let h = rt.Runtime.heap in
  if not (Heap.is_function h callee) then
    err "%s is not a constructor" (Conv.to_js_string h callee);
  let fid = Heap.function_id_of h callee in
  if fid >= Runtime.builtin_base then
    Builtins.construct_builtin rt (fid - Runtime.builtin_base) ~args
  else begin
    let f = Runtime.func rt fid in
    let map_id =
      match f.Runtime.initial_map with
      | Some m -> m
      | None ->
        let proto = Heap.function_prototype h callee in
        let m = Heap.new_object_map h ~prototype:proto in
        f.Runtime.initial_map <- Some m;
        m
    in
    let this = Heap.alloc_object h ~map_id in
    let r = call_closure rt ~closure:callee ~this ~args in
    if
      Value.is_pointer r
      && (Heap.instance_type_of h r = Heap.It_object
         || Heap.instance_type_of h r = Heap.It_array)
    then r
    else this
  end

let interpret_direct rt f ~closure ~this ~args = interpret rt f ~closure ~this ~args

let attach rt =
  rt.Runtime.reenter_js <-
    (fun closure this args -> call_closure rt ~closure ~this ~args);
  rt.Runtime.construct_hook <-
    (fun callee args -> construct_no_feedback rt callee args)

let run_main rt =
  attach rt;
  let h = rt.Runtime.heap in
  let f = Runtime.func rt rt.Runtime.main in
  f.Runtime.invocations <- f.Runtime.invocations + 1;
  let closure =
    Heap.alloc_function h ~function_id:rt.Runtime.main ~context:(Heap.undefined h)
  in
  interpret rt f ~closure ~this:(Heap.undefined h) ~args:[||]
