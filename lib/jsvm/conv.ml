let to_boolean h v =
  if Value.is_smi v then Value.smi_value v <> 0
  else begin
    match Heap.is_truthy_oddball h v with
    | Some b -> b
    | None -> (
      match Heap.instance_type_of h v with
      | Heap.It_oddball -> false (* undefined, null, hole *)
      | Heap.It_heap_number ->
        let f = Heap.heap_number_value h v in
        f <> 0.0 && not (Float.is_nan f)
      | Heap.It_string -> Heap.string_length h v > 0
      | _ -> true)
  end

let parse_number s =
  let s = String.trim s in
  if s = "" then 0.0
  else begin
    match float_of_string_opt s with
    | Some f -> f
    | None -> (
      (* Hex literals. *)
      match int_of_string_opt s with
      | Some i -> float_of_int i
      | None -> Float.nan)
  end

let to_number h v =
  if Value.is_smi v then float_of_int (Value.smi_value v)
  else if v = Heap.true_value h then 1.0
  else if v = Heap.false_value h then 0.0
  else if v = Heap.null_value h then 0.0
  else begin
    match Heap.instance_type_of h v with
    | Heap.It_heap_number -> Heap.heap_number_value h v
    | Heap.It_string -> parse_number (Heap.string_value h v)
    | _ -> Float.nan
  end

let number_to_string f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e21 then
    Printf.sprintf "%.0f" f
  else begin
    (* Shortest representation that round-trips at %.12g precision. *)
    let s = Printf.sprintf "%.12g" f in
    s
  end

let rec to_js_string h v =
  if Value.is_smi v then string_of_int (Value.smi_value v)
  else if v = Heap.undefined h then "undefined"
  else if v = Heap.null_value h then "null"
  else if v = Heap.true_value h then "true"
  else if v = Heap.false_value h then "false"
  else begin
    match Heap.instance_type_of h v with
    | Heap.It_heap_number -> number_to_string (Heap.heap_number_value h v)
    | Heap.It_string -> Heap.string_value h v
    | Heap.It_array ->
      let n = Heap.array_length h v in
      let buf = Buffer.create (n * 4) in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char buf ',';
        let e = Heap.array_get h v i in
        if e <> Heap.undefined h && e <> Heap.null_value h then
          Buffer.add_string buf (to_js_string h e)
      done;
      Buffer.contents buf
    | Heap.It_function -> "function"
    | _ -> "[object Object]"
  end

let typeof_string h v =
  if Value.is_smi v then "number"
  else if v = Heap.undefined h then "undefined"
  else if v = Heap.null_value h then "object"
  else if v = Heap.true_value h || v = Heap.false_value h then "boolean"
  else begin
    match Heap.instance_type_of h v with
    | Heap.It_heap_number -> "number"
    | Heap.It_string -> "string"
    | Heap.It_function -> "function"
    | _ -> "object"
  end

let string_equal h a b =
  a = b
  ||
  (Heap.string_length h a = Heap.string_length h b
  &&
  let n = Heap.string_length h a in
  let rec go i =
    i >= n || (Heap.string_char_code h a i = Heap.string_char_code h b i && go (i + 1))
  in
  go 0)

let strict_equal h a b =
  if a = b then
    (* Same SMI or same pointer; NaN heap numbers are still physically
       equal pointers, which JS would call unequal. *)
    not
      (Value.is_pointer a
      && Heap.instance_type_of h a = Heap.It_heap_number
      && Float.is_nan (Heap.heap_number_value h a))
  else if Value.is_smi a || Value.is_smi b then
    (* SMI vs heap number. *)
    Heap.is_number h a && Heap.is_number h b
    && Heap.number_value h a = Heap.number_value h b
  else begin
    match (Heap.instance_type_of h a, Heap.instance_type_of h b) with
    | Heap.It_heap_number, Heap.It_heap_number ->
      Heap.heap_number_value h a = Heap.heap_number_value h b
    | Heap.It_string, Heap.It_string -> string_equal h a b
    | _ -> false
  end

let loose_equal h a b =
  if strict_equal h a b then true
  else begin
    let u = Heap.undefined h and n = Heap.null_value h in
    if (a = u && b = n) || (a = n && b = u) then true
    else begin
      let num_a = Heap.is_number h a and num_b = Heap.is_number h b in
      let str_a = Heap.is_string h a and str_b = Heap.is_string h b in
      let bool_a = a = Heap.true_value h || a = Heap.false_value h in
      let bool_b = b = Heap.true_value h || b = Heap.false_value h in
      if (num_a && str_b) || (str_a && num_b) || bool_a || bool_b then
        to_number h a = to_number h b
      else false
    end
  end
