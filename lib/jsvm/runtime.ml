let builtin_base = 0x100000

type func_rt = {
  info : Bytecode.func_info;
  mutable feedback : Feedback.vector;
  mutable const_values : int array;
  mutable invocations : int;
  mutable code_ref : int;
  mutable deopt_count : int;
  mutable forbid_opt : bool;
  mutable initial_map : int option;
}

type t = {
  heap : Heap.t;
  funcs : func_rt array;
  main : int;
  mutable charge_interp : cycles:int -> instructions:int -> unit;
  mutable charge_builtin : cycles:int -> unit;
  mutable call_optimized : (int -> int array -> int) option;
  mutable on_invoke : (t -> func_rt -> unit) option;
  mutable reenter_js : int -> int -> int array -> int;
  mutable construct_hook : int -> int array -> int;
  mutable active_frames : frame list;
  mutable regexes : Regex.compiled array;
  mutable n_regexes : int;
  mutable output : Buffer.t;
  rng : Support.Rng.t;
}

and frame = { f_regs : int array; mutable f_acc : int }

let func t fid = t.funcs.(fid)

let materialize_consts t (f : func_rt) =
  if Array.length f.const_values = Array.length f.info.Bytecode.consts then
    f.const_values
  else begin
    let vals =
      Array.map
        (function
          | Bytecode.C_num v -> Heap.number t.heap v
          | Bytecode.C_str s -> Heap.intern t.heap s)
        f.info.Bytecode.consts
    in
    f.const_values <- vals;
    vals
  end

let create ?(heap_size = 8 * 1024 * 1024) ?(seed = 42) (u : Bcompiler.unit_) =
  let heap = Heap.create ~size_words:heap_size () in
  let funcs =
    Array.map
      (fun info ->
        {
          info;
          feedback = Feedback.create info;
          const_values = [||];
          invocations = 0;
          code_ref = -1;
          deopt_count = 0;
          forbid_opt = false;
          initial_map = None;
        })
      u.Bcompiler.functions
  in
  let t =
    {
      heap;
      funcs;
      main = u.Bcompiler.main;
      charge_interp = (fun ~cycles:_ ~instructions:_ -> ());
      charge_builtin = (fun ~cycles:_ -> ());
      call_optimized = None;
      on_invoke = None;
      reenter_js =
        (fun _ _ _ -> invalid_arg "Runtime.reenter_js: interpreter not attached");
      construct_hook =
        (fun _ _ -> invalid_arg "Runtime.construct_hook: interpreter not attached");
      active_frames = [];
      regexes = [||];
      n_regexes = 0;
      output = Buffer.create 256;
      rng = Support.Rng.create seed;
    }
  in
  Heap.add_root_provider heap (fun () ->
      let roots = ref [] in
      List.iter
        (fun fr ->
          roots := fr.f_acc :: !roots;
          Array.iter (fun v -> roots := v :: !roots) fr.f_regs)
        t.active_frames;
      Array.iter
        (fun f ->
          Array.iter (fun v -> roots := v :: !roots) f.const_values;
          (* Feedback vectors hold prototype holders and call targets. *)
          Array.iter
            (fun slot ->
              match slot with
              | Feedback.Sl_prop { entries; _ } ->
                List.iter
                  (fun (_, site) ->
                    match site with
                    | Feedback.Proto { holder; _ } -> roots := holder :: !roots
                    | Feedback.Own _ | Feedback.Transition _ | Feedback.Length ->
                      ())
                  entries
              | Feedback.Sl_call { targets; _ } ->
                List.iter (fun (_, obj) -> roots := obj :: !roots) targets
              | Feedback.Sl_binop _ | Feedback.Sl_compare _ | Feedback.Sl_elem _
                ->
                ())
            f.feedback)
        t.funcs;
      !roots);
  t

let add_regex t rx =
  if t.n_regexes >= Array.length t.regexes then begin
    let bigger = Array.make (max 8 (2 * Array.length t.regexes)) rx in
    Array.blit t.regexes 0 bigger 0 t.n_regexes;
    t.regexes <- bigger
  end;
  t.regexes.(t.n_regexes) <- rx;
  t.n_regexes <- t.n_regexes + 1;
  t.n_regexes - 1

let get_regex t i = t.regexes.(i)

let push_frame t fr = t.active_frames <- fr :: t.active_frames

let pop_frame t =
  match t.active_frames with
  | _ :: rest -> t.active_frames <- rest
  | [] -> invalid_arg "Runtime.pop_frame: empty frame stack"

let reset_feedback t =
  Array.iter
    (fun f ->
      f.feedback <- Feedback.create f.info;
      f.invocations <- 0;
      f.code_ref <- -1;
      f.deopt_count <- 0;
      f.forbid_opt <- false)
    t.funcs
