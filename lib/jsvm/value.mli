(** Tagged 32-bit word values (V8 compressed-pointer scheme).

    The least-significant bit is the tag: cleared means the upper 31
    bits are a signed Small Integer (SMI), set means the word is a
    pointer (2 * heap-word-index + 1).  SMI range is [-2^30, 2^30) by
    default; the engine can also be configured for 32-bit SMIs
    (paper Section II-B3) in which case the payload uses the full word
    and overflow checks move accordingly. *)

type t = int
(** A tagged word, stored sign-extended in an OCaml int. *)

val smi_tag_bits : int
val smi_min : int
val smi_max : int
(** Inclusive bounds of the 31-bit SMI payload. *)

val is_smi : t -> bool
val is_pointer : t -> bool

val smi : int -> t
(** [smi v] tags [v]. Raises [Invalid_argument] out of range. *)

val smi_fits : int -> bool
val smi_value : t -> int
(** Untag; undefined on pointers (asserts in debug). *)

val pointer : int -> t
(** [pointer idx] tags a heap word index. *)

val pointer_index : t -> int

val zero : t
val one : t
