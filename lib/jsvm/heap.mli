(** The VM heap: a flat array of tagged 32-bit words.

    Layouts mirror V8's compressed heap.  Every object starts with a
    tagged pointer to its {e map} (hidden class).  Maps describe object
    shape — property-name-to-slot assignments, the prototype, and for
    arrays the elements kind — and evolve through transitions when
    properties are added, exactly the mechanism the paper's Wrong-Map
    checks protect.

    Object layouts (word offsets from the object base):
    - Map:             [meta-map][map_id][instance_type]
    - Oddball:         [map][kind]
    - HeapNumber:      [map][bits_lo][bits_hi]
    - String:          [map][length][hash][char0 (SMI)]...
    - FixedArray:      [map][capacity][e0]...
    - FixedDoubleArray:[map][capacity][lo0][hi0]...
    - JSObject:        [map][props_ptr][in0]..[in5]   (6 inline slots)
    - JSArray:         [map][length][elements_ptr]
    - JSFunction:      [map][function_id][context_ptr][prototype_ptr]
    - Context:         [map][slot_count][parent_ptr][s0]...

    Garbage collection is non-moving mark-sweep over an object registry,
    so machine code and interpreter frames can hold raw tagged pointers
    across collections.  The heap never collects on its own: allocation
    calls [on_full] when space runs out, and the embedding engine
    decides whether a collection is safe (no machine frames live). *)

type instance_type =
  | It_map
  | It_oddball
  | It_heap_number
  | It_string
  | It_fixed_array
  | It_fixed_double_array
  | It_object
  | It_array
  | It_function
  | It_context

type elements_kind = Packed_smi | Packed_double | Packed_tagged

type map_info = {
  map_id : int;
  map_ptr : int;                        (** tagged pointer to the map object *)
  itype : instance_type;
  mutable props : (string * int) list;  (** name -> slot, insertion order *)
  mutable transitions : (string * int) list;  (** name -> map_id *)
  mutable prototype : int;              (** tagged pointer or undefined *)
  elements_kind : elements_kind option;
}

type t

exception Out_of_memory

val create : ?size_words:int -> unit -> t
val memory : t -> int array

val set_on_full : t -> (unit -> bool) -> unit
(** Called when allocation fails; return [true] if space was freed
    (e.g. by running {!gc}) and the allocation should be retried. *)

(** {1 Singletons} *)

val undefined : t -> int
val null_value : t -> int
val true_value : t -> int
val false_value : t -> int
val the_hole : t -> int
val bool_value : t -> bool -> int
val is_truthy_oddball : t -> int -> bool option
(** [Some b] if the pointer is the true/false oddball. *)

(** {1 Raw field access} *)

val load : t -> int -> int -> int
(** [load t ptr k] reads field [k] of the object at tagged [ptr]. *)

val store : t -> int -> int -> int -> unit
val map_of : t -> int -> map_info
val instance_type_of : t -> int -> instance_type
val map_info_by_id : t -> int -> map_info
val map_id_of_map_ptr : t -> int -> int
val instance_type_code : instance_type -> int
(** The SMI payload stored in a map object's instance-type field. *)

(** {1 Layout constants (shared with the JIT backends)} *)

val object_props_field : int (* = 1 *)
val object_inline_base : int (* = 2 *)
val inline_slots : int (* = 6 *)
val array_length_field : int (* = 1 *)
val array_elements_field : int (* = 2 *)
val array_props_field : int (* = 3 *)
val elements_header : int (* = 2 *)
val string_length_field : int (* = 1 *)
val string_chars_field : int (* = 3 *)
val heap_number_payload : int (* = 1 *)
val function_id_field : int (* = 1 *)
val function_context_field : int (* = 2 *)
val function_prototype_field : int (* = 3 *)
val context_parent_field : int (* = 2 *)
val context_slots_field : int (* = 3 *)

(** {1 Numbers} *)

val alloc_heap_number : t -> float -> int
val heap_number_value : t -> int -> float
val set_heap_number : t -> int -> float -> unit
val number_value : t -> int -> float
(** SMI or HeapNumber to float; raises [Invalid_argument] otherwise. *)

val is_number : t -> int -> bool
val number : t -> float -> int
(** Tag as SMI when integral and in range, else allocate a HeapNumber. *)

(** {1 Strings} *)

val alloc_string : t -> string -> int
val intern : t -> string -> int
val string_value : t -> int -> string
val is_string : t -> int -> bool
val string_length : t -> int -> int
val string_char_code : t -> int -> int -> int

(** {1 Objects and hidden classes} *)

val empty_object_map_id : t -> int
val new_object_map : t -> prototype:int -> int
(** Fresh root map for a constructor's instances. *)

val alloc_object : t -> map_id:int -> int
val alloc_empty_object : t -> int
val own_slot : map_info -> string -> int option
val get_own_property : t -> int -> string -> int option
val get_property : t -> int -> string -> int option
(** Follows the prototype chain. *)

val set_property : t -> int -> string -> int -> unit
(** Adds via map transition when the property is new. *)

val load_slot : t -> int -> int -> int
(** [load_slot t obj slot] reads property slot [slot] (inline or
    out-of-line). *)

val store_slot : t -> int -> int -> int -> unit

(** {1 Arrays} *)

val smi_array_map_id : t -> int
val double_array_map_id : t -> int
val tagged_array_map_id : t -> int
val alloc_array : t -> elements_kind -> capacity:int -> int
val array_length : t -> int -> int
val array_elements_kind : t -> int -> elements_kind
val array_get : t -> int -> int -> int
(** Boxes doubles from double-kind backing stores. Out-of-range reads
    return undefined. *)

val array_get_double : t -> int -> int -> float
(** Fast path for double-kind arrays. *)

val array_set : t -> int -> int -> int -> unit
(** Handles elements-kind transitions and growth; index must be
    <= length (dense arrays only). *)

val array_set_double : t -> int -> int -> float -> unit
val array_push : t -> int -> int -> unit
val array_pop : t -> int -> int

(** {1 Functions, contexts, globals} *)

val function_map_id : t -> int
val alloc_function : t -> function_id:int -> context:int -> int
val function_id_of : t -> int -> int
val is_function : t -> int -> bool
val function_context : t -> int -> int
val function_prototype : t -> int -> int
(** Lazily creates the prototype object. *)

val alloc_context : t -> parent:int -> slots:int -> int
val context_parent : t -> int -> int
val context_get : t -> int -> int -> int
val context_set : t -> int -> int -> int -> unit

val global_cell : t -> string -> int
(** Property-cell pointer for a global; created on demand holding
    undefined.  Layout: [map][value]. *)

val cell_value : t -> int -> int
val set_cell_value : t -> int -> int -> unit
val global_exists : t -> string -> bool

(** {1 Garbage collection} *)

val add_root_provider : t -> (unit -> int list) -> unit
val gc : t -> unit
val gc_count : t -> int
val last_gc_live_words : t -> int
val last_gc_freed_words : t -> int
val words_in_use : t -> int
val size_words : t -> int
val object_size : t -> int -> int
(** Size in words of the object at a tagged pointer (testing aid). *)
