(** Builtin functions (V8's Torque-compiled builtins stand-in).

    Builtins execute natively and charge their cost in bulk on the
    engine's CPU model through [Runtime.charge_builtin] — mirroring V8,
    where builtin execution happens outside JIT-compiled code and
    therefore contributes no deoptimization checks (the paper uses this
    to explain the low check overhead of string and regex benchmarks). *)

exception Js_error of string

val dispatch : Runtime.t -> int -> this:int -> args:int array -> int
(** [dispatch rt builtin_id ~this ~args] runs builtin [builtin_id]
    (relative id, without {!Runtime.builtin_base}). *)

val name_of : int -> string

val string_method : string -> int option
(** Builtin id implementing a method of primitive strings. *)

val array_method : string -> int option

val id_regexp_ctor : int
val id_array_ctor : int

(** {1 Runtime-call builtins used by the optimizing compiler} *)

val id_rt_binop : int
val id_rt_compare : int
val id_rt_to_boolean : int
val id_rt_typeof : int
val id_rt_get_named : int
val id_rt_set_named : int
val id_rt_get_keyed : int
val id_rt_set_keyed : int
val id_rt_call : int
val id_rt_construct : int
val id_rt_alloc_number : int
val id_rt_create_array : int
val id_rt_create_object : int
val id_rt_create_closure : int
val id_rt_create_context : int
val id_rt_call_method : int

val binop_code : Ast.binop -> int
(** Operator encoding passed as the first argument of [rt_binop] /
    [rt_compare]. *)

val binop_of_code : int -> Ast.binop

val install_globals : Runtime.t -> unit
(** Creates the global environment: [print], [Math], [String],
    [RegExp], [Array], [parseInt], [parseFloat], [isNaN]. *)

val construct_builtin : Runtime.t -> int -> args:int array -> int
(** [new] on a builtin constructor (RegExp, Array). *)
