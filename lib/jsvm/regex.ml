exception Regex_error of string

type node =
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Start_anchor
  | End_anchor
  | Group of int * node list          (* capture index, alternatives-free body *)
  | Alt of node list list             (* alternatives, each a sequence *)
  | Repeat of { node : node; min : int; max : int option; greedy : bool }

type compiled = {
  src : string;
  body : node list;
  n_groups : int;
  mutable last_steps : int;
}

let source c = c.src

(* ---------------- Parsing ---------------- *)

type pstate = { pat : string; mutable pos : int; mutable groups : int }

let peek st = if st.pos < String.length st.pat then Some st.pat.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let fail fmt = Printf.ksprintf (fun m -> raise (Regex_error m)) fmt

let parse_escape st =
  match peek st with
  | None -> fail "dangling backslash"
  | Some c ->
    advance st;
    (match c with
    | 'd' -> Class { negated = false; ranges = [ ('0', '9') ] }
    | 'D' -> Class { negated = true; ranges = [ ('0', '9') ] }
    | 'w' ->
      Class
        { negated = false;
          ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ] }
    | 'W' ->
      Class
        { negated = true;
          ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ] }
    | 's' ->
      Class
        { negated = false;
          ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ] }
    | 'S' ->
      Class
        { negated = true;
          ranges = [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ] }
    | 'n' -> Char '\n'
    | 't' -> Char '\t'
    | 'r' -> Char '\r'
    | c -> Char c)

let parse_class st =
  let negated = peek st = Some '^' in
  if negated then advance st;
  let ranges = ref [] in
  let rec go () =
    match peek st with
    | None -> fail "unterminated character class"
    | Some ']' -> advance st
    | Some '\\' ->
      advance st;
      (match parse_escape st with
      | Char c -> ranges := (c, c) :: !ranges
      | Class { negated = false; ranges = rs } -> ranges := rs @ !ranges
      | _ -> fail "unsupported escape in class");
      go ()
    | Some c ->
      advance st;
      if peek st = Some '-' && st.pos + 1 < String.length st.pat && st.pat.[st.pos + 1] <> ']'
      then begin
        advance st;
        match peek st with
        | Some hi ->
          advance st;
          ranges := (c, hi) :: !ranges;
          go ()
        | None -> fail "unterminated range"
      end
      else begin
        ranges := (c, c) :: !ranges;
        go ()
      end
  in
  go ();
  Class { negated; ranges = !ranges }

let parse_int st =
  let start = st.pos in
  while (match peek st with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then None
  else Some (int_of_string (String.sub st.pat start (st.pos - start)))

let rec parse_alternatives st =
  let first = parse_sequence st in
  if peek st = Some '|' then begin
    let alts = ref [ first ] in
    while peek st = Some '|' do
      advance st;
      alts := parse_sequence st :: !alts
    done;
    [ Alt (List.rev !alts) ]
  end
  else first

and parse_sequence st =
  let out = ref [] in
  let rec go () =
    match peek st with
    | None | Some '|' | Some ')' -> ()
    | Some _ ->
      let atom = parse_atom st in
      let atom = parse_quantifier st atom in
      out := atom :: !out;
      go ()
  in
  go ();
  List.rev !out

and parse_atom st =
  match peek st with
  | Some '(' ->
    advance st;
    (* (?: ...) non-capturing *)
    let capture =
      if peek st = Some '?' then begin
        advance st;
        if peek st = Some ':' then begin
          advance st;
          false
        end
        else fail "unsupported group modifier"
      end
      else true
    in
    let idx =
      if capture then begin
        st.groups <- st.groups + 1;
        st.groups
      end
      else 0
    in
    let body = parse_alternatives st in
    if peek st <> Some ')' then fail "unterminated group";
    advance st;
    if capture then Group (idx, body) else Group (0, body)
  | Some '[' ->
    advance st;
    parse_class st
  | Some '\\' ->
    advance st;
    parse_escape st
  | Some '.' ->
    advance st;
    Any
  | Some '^' ->
    advance st;
    Start_anchor
  | Some '$' ->
    advance st;
    End_anchor
  | Some (('*' | '+' | '?') as c) -> fail "dangling quantifier '%c'" c
  | Some c ->
    advance st;
    Char c
  | None -> fail "expected atom"

and parse_quantifier st atom =
  let quantified min max =
    advance st;
    let greedy =
      if peek st = Some '?' then begin
        advance st;
        false
      end
      else true
    in
    Repeat { node = atom; min; max; greedy }
  in
  match peek st with
  | Some '*' -> quantified 0 None
  | Some '+' -> quantified 1 None
  | Some '?' -> quantified 0 (Some 1)
  | Some '{' ->
    advance st;
    let m = match parse_int st with Some m -> m | None -> fail "bad {m,n}" in
    let max =
      if peek st = Some ',' then begin
        advance st;
        parse_int st
      end
      else Some m
    in
    if peek st <> Some '}' then fail "unterminated {m,n}";
    advance st;
    let greedy =
      if peek st = Some '?' then begin
        advance st;
        false
      end
      else true
    in
    Repeat { node = atom; min = m; max; greedy }
  | _ -> atom

let compile pat =
  let st = { pat; pos = 0; groups = 0 } in
  let body = parse_alternatives st in
  if st.pos <> String.length pat then fail "trailing characters in pattern";
  { src = pat; body; n_groups = st.groups; last_steps = 0 }

(* ---------------- Matching ---------------- *)

type match_result = {
  m_start : int;
  m_end : int;
  captures : (int * int) option array;
}

let class_match negated ranges c =
  let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
  inside <> negated

(* Backtracking bail-out budget.  Exhausting it is a watchdog event
   (the search will not terminate in useful time), so it goes through
   the structured fault taxonomy rather than the parse-error exception;
   the harness and pool layers classify and contain it like any other
   runaway simulation. *)
let default_step_limit = 2_000_000

let env_step_limit =
  lazy
    (match Sys.getenv_opt "VSPEC_REGEX_STEPS" with
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> n
      | _ -> default_step_limit)
    | None -> default_step_limit)

let limit_override = ref None
let set_step_limit n = limit_override := if n > 0 then Some n else None
let step_limit () =
  match !limit_override with Some n -> n | None -> Lazy.force env_step_limit

(* CPS backtracking matcher. *)
let exec re s from =
  let n = String.length s in
  let caps = Array.make (re.n_groups + 1) None in
  let steps = ref 0 in
  let limit = step_limit () in
  let rec match_seq nodes i (k : int -> bool) =
    incr steps;
    if !steps > limit then
      Support.Fault.runaway ~what:("regex:" ^ re.src)
        ~limit:(float_of_int limit);
    match nodes with
    | [] -> k i
    | node :: rest -> match_node node i (fun j -> match_seq rest j k)
  and match_node node i k =
    match node with
    | Char c -> i < n && s.[i] = c && k (i + 1)
    | Any -> i < n && s.[i] <> '\n' && k (i + 1)
    | Class { negated; ranges } -> i < n && class_match negated ranges s.[i] && k (i + 1)
    | Start_anchor -> i = 0 && k i
    | End_anchor -> i = n && k i
    | Group (0, body) -> match_seq body i k
    | Group (g, body) ->
      let saved = caps.(g) in
      match_seq body i (fun j ->
          caps.(g) <- Some (i, j);
          k j || begin
            caps.(g) <- saved;
            false
          end)
    | Alt alternatives ->
      List.exists (fun alt -> match_seq alt i k) alternatives
    | Repeat { node; min; max; greedy } ->
      let max_v = Option.value max ~default:max_int in
      let rec try_more count i =
        if greedy then
          (count < max_v
          && match_node node i (fun j -> j > i && try_more (count + 1) j))
          || (count >= min && k i)
        else
          (count >= min && k i)
          || (count < max_v
             && match_node node i (fun j -> j > i && try_more (count + 1) j))
      in
      try_more 0 i
  in
  let result = ref None in
  let start = ref (max 0 from) in
  while !result = None && !start <= n do
    Array.fill caps 0 (Array.length caps) None;
    let i0 = !start in
    if match_seq re.body i0 (fun j ->
           result := Some (i0, j);
           true)
    then ()
    else incr start
  done;
  re.last_steps <- !steps;
  match !result with
  | None -> None
  | Some (i0, j) -> Some { m_start = i0; m_end = j; captures = Array.copy caps }

let test re s = exec re s 0 <> None

let steps_of_last_exec re = re.last_steps
