(** Bytecode compiler: AST to Ignition-style bytecode.

    Performs var/function hoisting, resolves identifiers to parameter or
    local registers, context slots (for locals captured by nested
    closures), or global property cells, and allocates one feedback slot
    per speculation site. *)

type unit_ = {
  functions : Bytecode.func_info array;  (** index = function id *)
  main : int;                            (** fid of the top-level script *)
}

exception Compile_error of string

val compile_program : Ast.program -> unit_
val compile : string -> unit_
(** Parse + compile source text. *)
