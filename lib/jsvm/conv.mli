(** ECMAScript abstract-operation subset: coercions and comparisons
    shared by the interpreter and the builtins. *)

val to_boolean : Heap.t -> int -> bool
val to_number : Heap.t -> int -> float
(** undefined -> NaN, null -> 0, booleans -> 0/1, strings parsed
    (empty string -> 0), objects -> NaN (no valueOf in the subset). *)

val number_to_string : float -> string
val to_js_string : Heap.t -> int -> string
(** Arrays join with ","; plain objects render "[object Object]". *)

val typeof_string : Heap.t -> int -> string
val string_equal : Heap.t -> int -> int -> bool
val strict_equal : Heap.t -> int -> int -> bool
val loose_equal : Heap.t -> int -> int -> bool
