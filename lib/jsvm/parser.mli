(** Recursive-descent parser for the JavaScript subset. *)

exception Parse_error of string

val parse : string -> Ast.program
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) with a line-annotated
    message. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (testing aid). *)
