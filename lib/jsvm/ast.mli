(** Abstract syntax of the JavaScript subset.

    Covers the language features the workload suite exercises: numbers,
    strings, arrays, objects with prototype-based methods, closures,
    constructors via [new], the full expression operator set, and the
    usual control flow.  Omitted (documented in DESIGN.md): exceptions,
    getters/setters, generators, [for-in]/[for-of], [with]. *)

type position = { line : int; col : int }

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge
  | Eq | Neq | Strict_eq | Strict_neq
  | Bit_and | Bit_or | Bit_xor
  | Shl | Shr | Ushr
  | Logical_and | Logical_or

type unop = Neg | Plus | Not | Bit_not | Typeof

type expr =
  | Number of float
  | String of string
  | Bool of bool
  | Null
  | Undefined
  | Ident of string
  | This
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Function_expr of func
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of target * expr
  | Compound_assign of binop * target * expr
  | Update of { op_add : bool; prefix : bool; target : target }
  | Conditional of expr * expr * expr
  | Call of expr * expr list
  | Method_call of expr * string * expr list
  | New of expr * expr list
  | Member of expr * string
  | Index of expr * expr

and target =
  | T_ident of string
  | T_member of expr * string
  | T_index of expr * expr

and func = {
  fname : string option;
  params : string list;
  body : stmt list;
}

and stmt =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | Func_decl of func
  | Return of expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of stmt option * expr option * expr option * stmt list
  | Break
  | Continue
  | Block of stmt list

type program = stmt list

val expr_to_string : expr -> string
(** Compact debugging rendering. *)

val binop_str : binop -> string
