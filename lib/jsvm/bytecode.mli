(** Ignition-style register/accumulator bytecode.

    Binary and compare operations follow V8's convention: the left
    operand is in a register, the right operand and the result in the
    accumulator.  Sites that benefit from type feedback carry a feedback
    slot index into the function's {!Feedback.vector}. *)

type op =
  | Lda_zero
  | Lda_smi of int
  | Lda_const of int                   (** constant-pool index *)
  | Lda_undefined
  | Lda_null
  | Lda_true
  | Lda_false
  | Ldar of int                        (** acc <- reg *)
  | Star of int                        (** reg <- acc *)
  | Mov of int * int                   (** dst <- src *)
  | Lda_global of int                  (** name constant index *)
  | Sta_global of int
  | Lda_context of int * int           (** depth, slot *)
  | Sta_context of int * int
  | Binop of Ast.binop * int * int     (** op, lhs reg, feedback slot *)
  | Test of Ast.binop * int * int      (** comparison; lhs reg, feedback slot *)
  | Neg_acc of int                     (** feedback slot *)
  | Bitnot_acc of int
  | Not_acc
  | Typeof_acc
  | Jump of int                        (** absolute bytecode index *)
  | Jump_if_false of int
  | Jump_if_true of int
  | Get_named of int * int * int       (** obj reg, name const, feedback slot *)
  | Set_named of int * int * int
  | Get_keyed of int * int             (** obj reg (key in acc), feedback slot *)
  | Set_keyed of int * int * int       (** obj reg, key reg (value in acc), fb *)
  | Create_array of int                (** capacity hint *)
  | Create_object
  | Create_closure of int              (** function id *)
  | Call of int * int * int * int      (** callee reg, first arg reg, argc, fb *)
  | Call_method of int * int * int * int * int
      (** receiver reg, name const, first arg reg, argc, fb *)
  | Construct of int * int * int * int (** callee reg, first arg reg, argc, fb *)
  | Return

type const = C_num of float | C_str of string

type func_info = {
  fid : int;
  name : string;
  n_params : int;
  mutable n_regs : int;        (** includes this (r0) and params *)
  mutable code : op array;
  mutable consts : const array;
  mutable n_feedback : int;
  mutable context_slots : int; (** locals captured by inner closures *)
  source : Ast.func;
}

val this_reg : int (* = 0 *)
val param_reg : int -> int
(** Register of the i-th parameter (0-based) = 1 + i. *)

val op_to_string : func_info -> op -> string
val disassemble : func_info -> string

val interp_cost : op -> int
(** Approximate interpreter cycles per bytecode (dispatch + handler);
    used by the engine's interpreter cost model. *)

val is_feedback_site : op -> int option
(** The feedback slot the op consumes, if any. *)
