(** Type-feedback vectors collected by the interpreter.

    Each feedback slot starts uninitialized, becomes monomorphic on
    first use, widens to polymorphic on conflicting observations, and
    saturates at megamorphic — the lattice TurboFan consumes to decide
    which speculative fast path (and hence which deoptimization checks)
    to emit. *)

type operand_type =
  | Ot_none          (** uninitialized: no execution reached the site *)
  | Ot_smi
  | Ot_number        (** at least one heap-number operand *)
  | Ot_string
  | Ot_any

val join_operand : operand_type -> operand_type -> operand_type

(** Where a named property was found for a given receiver map. *)
type prop_site =
  | Own of int                           (** own slot index *)
  | Proto of { holder : int; slot : int }  (** found on the prototype chain *)
  | Transition of { new_map : int; slot : int }  (** store adding a property *)
  | Length                               (** array/string .length *)

type slot =
  | Sl_binop of operand_type ref
  | Sl_compare of operand_type ref
  | Sl_prop of {
      mutable entries : (int * prop_site) list;  (** receiver map id -> site *)
      mutable megamorphic : bool;
    }
  | Sl_elem of {
      mutable maps : int list;          (** receiver (array) map ids seen *)
      mutable smi_index : bool;         (** all keys so far were SMIs *)
      mutable megamorphic : bool;
    }
  | Sl_call of {
      mutable targets : (int * int) list;
          (** (function id, function object pointer) *)
      mutable megamorphic : bool;
    }

type vector = slot array

val create : Bytecode.func_info -> vector
(** Slot kinds are inferred from the bytecode's feedback sites. *)

val record_binop : vector -> int -> operand_type -> unit
val record_compare : vector -> int -> operand_type -> unit
val record_prop : vector -> int -> map_id:int -> prop_site -> unit
val record_elem : vector -> int -> map_id:int -> smi_index:bool -> unit
val record_call : vector -> int -> target:int -> target_obj:int -> unit
val mark_megamorphic : vector -> int -> unit
(** Force a slot to the generic state (e.g. after an out-of-bounds
    access or a non-SMI key). *)

val binop_type : vector -> int -> operand_type
val compare_type : vector -> int -> operand_type
val prop_entries : vector -> int -> (int * prop_site) list option
(** [None] when megamorphic or uninitialized. *)

val elem_info : vector -> int -> (int list * bool) option
val call_target : vector -> int -> (int * int) option
(** The unique observed (fid, function object) target, if monomorphic. *)

val is_uninitialized : vector -> int -> bool

val max_polymorphic : int
(** Entries beyond this count make a property site megamorphic (4, as
    in V8). *)
