(** Backtracking regular-expression engine (the "Irregexp" substitute).

    The paper notes that regex benchmarks show almost no check overhead
    because their work happens inside V8's regex engine rather than in
    JIT-compiled code; this module plays that role — regex matching is a
    builtin whose cost is charged in bulk, outside JIT code.

    Supported syntax: literals, [.], character classes with ranges and
    negation, escapes (\d \D \w \W \s \S and punctuation), anchors ^ $,
    quantifiers * + ? {m} {m,} {m,n} (greedy and lazy), alternation,
    capturing groups. *)

type compiled

exception Regex_error of string

val compile : string -> compiled
val source : compiled -> string

type match_result = {
  m_start : int;
  m_end : int;
  captures : (int * int) option array;  (** group i -> (start, end) *)
}

val exec : compiled -> string -> int -> match_result option
(** [exec re s from] finds the first match at or after [from]. *)

val test : compiled -> string -> bool

val steps_of_last_exec : compiled -> int
(** Backtracking steps the most recent search took (cost accounting). *)
