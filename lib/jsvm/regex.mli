(** Backtracking regular-expression engine (the "Irregexp" substitute).

    The paper notes that regex benchmarks show almost no check overhead
    because their work happens inside V8's regex engine rather than in
    JIT-compiled code; this module plays that role — regex matching is a
    builtin whose cost is charged in bulk, outside JIT code.

    Supported syntax: literals, [.], character classes with ranges and
    negation, escapes (\d \D \w \W \s \S and punctuation), anchors ^ $,
    quantifiers * + ? {m} {m,} {m,n} (greedy and lazy), alternation,
    capturing groups. *)

type compiled

exception Regex_error of string

val compile : string -> compiled
val source : compiled -> string

type match_result = {
  m_start : int;
  m_end : int;
  captures : (int * int) option array;  (** group i -> (start, end) *)
}

val exec : compiled -> string -> int -> match_result option
(** [exec re s from] finds the first match at or after [from].

    A search that exceeds the backtracking step budget raises
    [Support.Fault.Fault (Runaway _)] (a typed watchdog event, handled
    by the experiment fault-containment layer) — pathological patterns
    cannot hang a worker domain.  [Regex_error] is reserved for parse
    errors from {!compile}. *)

val step_limit : unit -> int
(** Current backtracking budget: {!set_step_limit} override if any,
    else [VSPEC_REGEX_STEPS] (default 2,000,000). *)

val set_step_limit : int -> unit
(** Override the budget ([n <= 0] clears the override).  For tests. *)

val test : compiled -> string -> bool

val steps_of_last_exec : compiled -> int
(** Backtracking steps the most recent search took (cost accounting). *)
