type instance_type =
  | It_map
  | It_oddball
  | It_heap_number
  | It_string
  | It_fixed_array
  | It_fixed_double_array
  | It_object
  | It_array
  | It_function
  | It_context

type elements_kind = Packed_smi | Packed_double | Packed_tagged

type map_info = {
  map_id : int;
  map_ptr : int;
  itype : instance_type;
  mutable props : (string * int) list;
  mutable transitions : (string * int) list;
  mutable prototype : int;
  elements_kind : elements_kind option;
}

exception Out_of_memory

type t = {
  mem : int array;
  size : int;
  mutable bump : int;
  mutable free_list : (int * int) list;  (* (index, size), address-ordered *)
  mutable objects : int list;            (* registry of live object indexes *)
  mutable maps : map_info array;         (* map_id -> info, grown by doubling *)
  mutable n_maps : int;
  map_ptr_to_id : (int, int) Hashtbl.t;
  interned : (string, int) Hashtbl.t;
  globals : (string, int) Hashtbl.t;     (* name -> cell ptr *)
  mutable root_providers : (unit -> int list) list;
  mutable on_full : unit -> bool;
  mutable gc_count : int;
  mutable last_live : int;
  mutable last_freed : int;
  mutable words_used : int;
  (* Bootstrapped singletons; 0 until [boot] runs. *)
  mutable undef : int;
  mutable nul : int;
  mutable tru : int;
  mutable fals : int;
  mutable hole : int;
  (* Core map ids. *)
  mutable meta_map : int;
  mutable oddball_map : int;
  mutable heap_number_map : int;
  mutable string_map : int;
  mutable fixed_array_map : int;
  mutable fixed_double_array_map : int;
  mutable empty_object_map : int;
  mutable smi_array_map : int;
  mutable double_array_map : int;
  mutable tagged_array_map : int;
  mutable function_map : int;
  mutable context_map : int;
  mutable cell_map : int;
}

(* ---------------- Layout constants ---------------- *)

let object_props_field = 1
let object_inline_base = 2
let inline_slots = 6
let array_length_field = 1
let array_elements_field = 2
let array_props_field = 3
let array_words = 4
let elements_header = 2
let string_length_field = 1
let string_chars_field = 3
let heap_number_payload = 1
let function_id_field = 1
let function_context_field = 2
let function_prototype_field = 3
let context_parent_field = 2
let context_slots_field = 3

let object_words = 2 + inline_slots

(* ---------------- Raw allocation ---------------- *)

let take_from_free_list t size =
  let rec go acc = function
    | [] -> None
    | (idx, sz) :: rest when sz >= size ->
      let remainder = if sz > size then [ (idx + size, sz - size) ] else [] in
      t.free_list <- List.rev_append acc (remainder @ rest);
      Some idx
    | hd :: rest -> go (hd :: acc) rest
  in
  go [] t.free_list

let rec alloc_raw t size =
  assert (size > 0);
  match take_from_free_list t size with
  | Some idx ->
    t.objects <- idx :: t.objects;
    t.words_used <- t.words_used + size;
    idx
  | None ->
    if t.bump + size <= t.size then begin
      let idx = t.bump in
      t.bump <- t.bump + size;
      t.objects <- idx :: t.objects;
      t.words_used <- t.words_used + size;
      idx
    end
    else if t.on_full () then alloc_raw t size
    else raise Out_of_memory

(* ---------------- Map registry ---------------- *)

let instance_type_code = function
  | It_map -> 0
  | It_oddball -> 1
  | It_heap_number -> 2
  | It_string -> 3
  | It_fixed_array -> 4
  | It_fixed_double_array -> 5
  | It_object -> 6
  | It_array -> 7
  | It_function -> 8
  | It_context -> 9

let register_map t ~itype ~prototype ~elements_kind =
  let idx = alloc_raw t 3 in
  let map_ptr = Value.pointer idx in
  let map_id = t.n_maps in
  let info =
    { map_id; map_ptr; itype; props = []; transitions = []; prototype;
      elements_kind }
  in
  if t.n_maps >= Array.length t.maps then begin
    let bigger = Array.make (max 16 (2 * Array.length t.maps)) info in
    Array.blit t.maps 0 bigger 0 t.n_maps;
    t.maps <- bigger
  end;
  t.maps.(t.n_maps) <- info;
  t.n_maps <- t.n_maps + 1;
  Hashtbl.replace t.map_ptr_to_id idx map_id;
  (* The meta-map points to itself; at boot time meta_map is being
     created so its ptr is this very object. *)
  let meta_ptr =
    if t.n_maps = 1 then map_ptr else t.maps.(t.meta_map).map_ptr
  in
  t.mem.(idx) <- meta_ptr;
  t.mem.(idx + 1) <- Value.smi map_id;
  t.mem.(idx + 2) <- Value.smi (instance_type_code itype);
  map_id

let map_info_by_id t id = t.maps.(id)
let map_id_of_map_ptr t ptr = Hashtbl.find t.map_ptr_to_id (Value.pointer_index ptr)

let map_of t ptr =
  let idx = Value.pointer_index ptr in
  let map_ptr = t.mem.(idx) in
  t.maps.(Hashtbl.find t.map_ptr_to_id (Value.pointer_index map_ptr))

let instance_type_of t ptr = (map_of t ptr).itype

(* ---------------- Object allocation helpers ---------------- *)

let alloc_with_map t map_id size =
  let idx = alloc_raw t size in
  t.mem.(idx) <- t.maps.(map_id).map_ptr;
  idx

let alloc_oddball t kind =
  let idx = alloc_with_map t t.oddball_map 2 in
  t.mem.(idx + 1) <- Value.smi kind;
  Value.pointer idx

(* ---------------- Creation / boot ---------------- *)

let create ?(size_words = 8 * 1024 * 1024) () =
  let t =
    {
      mem = Array.make size_words 0;
      size = size_words;
      bump = 8; (* keep low addresses unused so address 0 is never valid *)
      free_list = [];
      objects = [];
      maps = [||];
      n_maps = 0;
      map_ptr_to_id = Hashtbl.create 64;
      interned = Hashtbl.create 256;
      globals = Hashtbl.create 64;
      root_providers = [];
      on_full = (fun () -> false);
      gc_count = 0;
      last_live = 0;
      last_freed = 0;
      words_used = 0;
      undef = 0;
      nul = 0;
      tru = 0;
      fals = 0;
      hole = 0;
      meta_map = 0;
      oddball_map = 0;
      heap_number_map = 0;
      string_map = 0;
      fixed_array_map = 0;
      fixed_double_array_map = 0;
      empty_object_map = 0;
      smi_array_map = 0;
      double_array_map = 0;
      tagged_array_map = 0;
      function_map = 0;
      context_map = 0;
      cell_map = 0;
    }
  in
  (* Boot order matters: the meta map must exist before oddballs, and
     oddballs (undefined) before maps that use it as prototype. *)
  t.meta_map <- register_map t ~itype:It_map ~prototype:0 ~elements_kind:None;
  t.oddball_map <- register_map t ~itype:It_oddball ~prototype:0 ~elements_kind:None;
  t.undef <- alloc_oddball t 0;
  t.nul <- alloc_oddball t 1;
  t.tru <- alloc_oddball t 2;
  t.fals <- alloc_oddball t 3;
  t.hole <- alloc_oddball t 4;
  let u = t.undef in
  t.heap_number_map <- register_map t ~itype:It_heap_number ~prototype:u ~elements_kind:None;
  t.string_map <- register_map t ~itype:It_string ~prototype:u ~elements_kind:None;
  t.fixed_array_map <- register_map t ~itype:It_fixed_array ~prototype:u ~elements_kind:None;
  t.fixed_double_array_map <-
    register_map t ~itype:It_fixed_double_array ~prototype:u ~elements_kind:None;
  t.empty_object_map <- register_map t ~itype:It_object ~prototype:u ~elements_kind:None;
  t.smi_array_map <-
    register_map t ~itype:It_array ~prototype:u ~elements_kind:(Some Packed_smi);
  t.double_array_map <-
    register_map t ~itype:It_array ~prototype:u ~elements_kind:(Some Packed_double);
  t.tagged_array_map <-
    register_map t ~itype:It_array ~prototype:u ~elements_kind:(Some Packed_tagged);
  t.function_map <- register_map t ~itype:It_function ~prototype:u ~elements_kind:None;
  t.context_map <- register_map t ~itype:It_context ~prototype:u ~elements_kind:None;
  t.cell_map <- register_map t ~itype:It_fixed_array ~prototype:u ~elements_kind:None;
  t

let memory t = t.mem
let set_on_full t f = t.on_full <- f

let undefined t = t.undef
let null_value t = t.nul
let true_value t = t.tru
let false_value t = t.fals
let the_hole t = t.hole
let bool_value t b = if b then t.tru else t.fals

let is_truthy_oddball t v =
  if v = t.tru then Some true else if v = t.fals then Some false else None

(* ---------------- Field access ---------------- *)

let load t ptr k = t.mem.(Value.pointer_index ptr + k)
let store t ptr k v = t.mem.(Value.pointer_index ptr + k) <- v

(* ---------------- Numbers ---------------- *)

let alloc_heap_number t v =
  let idx = alloc_with_map t t.heap_number_map 3 in
  let bits = Int64.bits_of_float v in
  t.mem.(idx + 1) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  t.mem.(idx + 2) <- Int64.to_int (Int64.shift_right_logical bits 32);
  Value.pointer idx

let heap_number_value t ptr =
  let idx = Value.pointer_index ptr in
  let lo = Int64.of_int (t.mem.(idx + 1) land 0xFFFFFFFF) in
  let hi = Int64.of_int (t.mem.(idx + 2) land 0xFFFFFFFF) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let set_heap_number t ptr v =
  let idx = Value.pointer_index ptr in
  let bits = Int64.bits_of_float v in
  t.mem.(idx + 1) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  t.mem.(idx + 2) <- Int64.to_int (Int64.shift_right_logical bits 32)

let is_number t v =
  Value.is_smi v || instance_type_of t v = It_heap_number

let number_value t v =
  if Value.is_smi v then float_of_int (Value.smi_value v)
  else if instance_type_of t v = It_heap_number then heap_number_value t v
  else invalid_arg "Heap.number_value: not a number"

let number t f =
  if Float.is_integer f && Float.abs f <= 1073741823.0 && not (f = 0.0 && 1.0 /. f < 0.0)
  then Value.smi (int_of_float f)
  else alloc_heap_number t f

(* ---------------- Strings ---------------- *)

let alloc_string t s =
  let n = String.length s in
  let idx = alloc_with_map t t.string_map (string_chars_field + n) in
  t.mem.(idx + string_length_field) <- Value.smi n;
  t.mem.(idx + 2) <- Value.smi (Hashtbl.hash s land 0x3FFFFFF);
  for i = 0 to n - 1 do
    t.mem.(idx + string_chars_field + i) <- Value.smi (Char.code s.[i])
  done;
  Value.pointer idx

let intern t s =
  match Hashtbl.find_opt t.interned s with
  | Some p -> p
  | None ->
    let p = alloc_string t s in
    Hashtbl.replace t.interned s p;
    p

let is_string t v = Value.is_pointer v && instance_type_of t v = It_string

let string_length t ptr = Value.smi_value (load t ptr string_length_field)

let string_char_code t ptr i =
  Value.smi_value (load t ptr (string_chars_field + i))

let string_value t ptr =
  let n = string_length t ptr in
  String.init n (fun i -> Char.chr (string_char_code t ptr i land 0xFF))

(* ---------------- Objects and hidden classes ---------------- *)

let empty_object_map_id t = t.empty_object_map

let new_object_map t ~prototype =
  register_map t ~itype:It_object ~prototype ~elements_kind:None

let alloc_object t ~map_id =
  let idx = alloc_with_map t map_id object_words in
  t.mem.(idx + object_props_field) <- t.undef;
  for i = 0 to inline_slots - 1 do
    t.mem.(idx + object_inline_base + i) <- t.undef
  done;
  Value.pointer idx

let alloc_empty_object t = alloc_object t ~map_id:t.empty_object_map

let own_slot (info : map_info) name = List.assoc_opt name info.props

let alloc_fixed_array t capacity init =
  let idx = alloc_with_map t t.fixed_array_map (elements_header + capacity) in
  t.mem.(idx + 1) <- Value.smi capacity;
  for i = 0 to capacity - 1 do
    t.mem.(idx + elements_header + i) <- init
  done;
  Value.pointer idx

(* Arrays keep every named property out-of-line (their fixed fields are
   length and elements); plain objects use 6 inline slots first. *)
let slot_location t obj slot =
  match (map_of t obj).itype with
  | It_array -> `Out_of_line (array_props_field, slot)
  | _ ->
    if slot < inline_slots then `Inline (object_inline_base + slot)
    else `Out_of_line (object_props_field, slot - inline_slots)

let load_slot t obj slot =
  match slot_location t obj slot with
  | `Inline field -> load t obj field
  | `Out_of_line (props_field, idx) ->
    let props = load t obj props_field in
    load t props (elements_header + idx)

let store_slot t obj slot v =
  match slot_location t obj slot with
  | `Inline field -> store t obj field v
  | `Out_of_line (props_field, idx) ->
    let props = load t obj props_field in
    store t props (elements_header + idx) v

let get_own_property t obj name =
  match own_slot (map_of t obj) name with
  | None -> None
  | Some slot -> Some (load_slot t obj slot)

let rec get_property t obj name =
  match get_own_property t obj name with
  | Some v -> Some v
  | None ->
    let proto = (map_of t obj).prototype in
    if proto = t.undef || proto = 0 then None
    else get_property t proto name

let transition_map t info name =
  match List.assoc_opt name info.transitions with
  | Some id -> id
  | None ->
    let slot = List.length info.props in
    let id =
      register_map t ~itype:info.itype ~prototype:info.prototype
        ~elements_kind:info.elements_kind
    in
    let fresh = t.maps.(id) in
    fresh.props <- info.props @ [ (name, slot) ];
    info.transitions <- (name, id) :: info.transitions;
    id

let grow_props t obj ~props_field needed =
  let current = load t obj props_field in
  let current_cap =
    if current = t.undef then 0
    else Value.smi_value (load t current 1)
  in
  if needed > current_cap then begin
    let cap = max 4 (max needed (2 * current_cap)) in
    let fresh = alloc_fixed_array t cap t.undef in
    for i = 0 to current_cap - 1 do
      store t fresh (elements_header + i) (load t current (elements_header + i))
    done;
    store t obj props_field fresh
  end

let set_property t obj name v =
  let info = map_of t obj in
  match own_slot info name with
  | Some slot -> store_slot t obj slot v
  | None ->
    let new_map = transition_map t info name in
    let slot = List.length info.props in
    (match (info.itype, slot) with
    | It_array, _ -> grow_props t obj ~props_field:array_props_field (slot + 1)
    | _, slot when slot >= inline_slots ->
      grow_props t obj ~props_field:object_props_field (slot - inline_slots + 1)
    | _ -> ());
    store t obj 0 t.maps.(new_map).map_ptr;
    store_slot t obj slot v

(* ---------------- Arrays ---------------- *)

let smi_array_map_id t = t.smi_array_map
let double_array_map_id t = t.double_array_map
let tagged_array_map_id t = t.tagged_array_map

let alloc_double_elements t capacity =
  let idx =
    alloc_with_map t t.fixed_double_array_map (elements_header + (2 * capacity))
  in
  t.mem.(idx + 1) <- Value.smi capacity;
  for i = 0 to capacity - 1 do
    (* 0.0 bits *)
    t.mem.(idx + elements_header + (2 * i)) <- 0;
    t.mem.(idx + elements_header + (2 * i) + 1) <- 0
  done;
  Value.pointer idx

let alloc_array t kind ~capacity =
  let capacity = max 1 capacity in
  let map_id =
    match kind with
    | Packed_smi -> t.smi_array_map
    | Packed_double -> t.double_array_map
    | Packed_tagged -> t.tagged_array_map
  in
  let elements =
    match kind with
    | Packed_double -> alloc_double_elements t capacity
    | Packed_smi | Packed_tagged -> alloc_fixed_array t capacity Value.zero
  in
  let idx = alloc_with_map t map_id array_words in
  t.mem.(idx + array_length_field) <- Value.smi 0;
  t.mem.(idx + array_elements_field) <- elements;
  t.mem.(idx + array_props_field) <- t.undef;
  Value.pointer idx

let array_length t arr = Value.smi_value (load t arr array_length_field)

let array_elements_kind t arr =
  match (map_of t arr).elements_kind with
  | Some k -> k
  | None -> invalid_arg "Heap.array_elements_kind: not an array"

let elements_capacity t elements = Value.smi_value (load t elements 1)

let read_double_element t elements i =
  let idx = Value.pointer_index elements + elements_header + (2 * i) in
  let lo = Int64.of_int (t.mem.(idx) land 0xFFFFFFFF) in
  let hi = Int64.of_int (t.mem.(idx + 1) land 0xFFFFFFFF) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let write_double_element t elements i v =
  let idx = Value.pointer_index elements + elements_header + (2 * i) in
  let bits = Int64.bits_of_float v in
  t.mem.(idx) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  t.mem.(idx + 1) <- Int64.to_int (Int64.shift_right_logical bits 32)

let array_get t arr i =
  let len = array_length t arr in
  if i < 0 || i >= len then t.undef
  else begin
    let elements = load t arr array_elements_field in
    match array_elements_kind t arr with
    | Packed_smi | Packed_tagged -> load t elements (elements_header + i)
    | Packed_double ->
      let v = read_double_element t elements i in
      number t v
  end

let array_get_double t arr i =
  let elements = load t arr array_elements_field in
  read_double_element t elements i

(* Transition the backing store to a new kind, converting elements. *)
let transition_array t arr target_kind =
  let len = array_length t arr in
  let old_kind = array_elements_kind t arr in
  let old_elements = load t arr array_elements_field in
  let capacity = max 1 (elements_capacity t old_elements) in
  (match (old_kind, target_kind) with
  | Packed_smi, Packed_double ->
    let fresh = alloc_double_elements t capacity in
    for i = 0 to len - 1 do
      write_double_element t fresh i
        (float_of_int (Value.smi_value (load t old_elements (elements_header + i))))
    done;
    store t arr array_elements_field fresh;
    store t arr 0 t.maps.(t.double_array_map).map_ptr
  | Packed_smi, Packed_tagged ->
    store t arr 0 t.maps.(t.tagged_array_map).map_ptr
  | Packed_double, Packed_tagged ->
    let fresh = alloc_fixed_array t capacity t.undef in
    for i = 0 to len - 1 do
      store t fresh (elements_header + i) (number t (read_double_element t old_elements i))
    done;
    store t arr array_elements_field fresh;
    store t arr 0 t.maps.(t.tagged_array_map).map_ptr
  | _ -> invalid_arg "Heap.transition_array: invalid transition");
  ignore old_kind

let ensure_capacity t arr needed =
  let elements = load t arr array_elements_field in
  let capacity = elements_capacity t elements in
  if needed > capacity then begin
    let cap = max needed (2 * capacity) in
    let len = array_length t arr in
    match array_elements_kind t arr with
    | Packed_double ->
      let fresh = alloc_double_elements t cap in
      for i = 0 to len - 1 do
        write_double_element t fresh i (read_double_element t elements i)
      done;
      store t arr array_elements_field fresh
    | Packed_smi | Packed_tagged ->
      let fresh = alloc_fixed_array t cap Value.zero in
      for i = 0 to len - 1 do
        store t fresh (elements_header + i) (load t elements (elements_header + i))
      done;
      store t arr array_elements_field fresh
  end

let rec array_set t arr i v =
  let len = array_length t arr in
  if i < 0 || i > len then
    invalid_arg (Printf.sprintf "Heap.array_set: sparse write at %d (len %d)" i len);
  let kind = array_elements_kind t arr in
  let fits_kind =
    match kind with
    | Packed_smi -> Value.is_smi v
    | Packed_double -> is_number t v
    | Packed_tagged -> true
  in
  if not fits_kind then begin
    let target =
      match kind with
      | Packed_smi -> if is_number t v then Packed_double else Packed_tagged
      | Packed_double -> Packed_tagged
      | Packed_tagged -> assert false
    in
    transition_array t arr target;
    array_set t arr i v
  end
  else begin
    ensure_capacity t arr (i + 1);
    if i = len then store t arr array_length_field (Value.smi (len + 1));
    let elements = load t arr array_elements_field in
    match kind with
    | Packed_smi | Packed_tagged -> store t elements (elements_header + i) v
    | Packed_double -> write_double_element t elements i (number_value t v)
  end

let array_set_double t arr i v =
  match array_elements_kind t arr with
  | Packed_double ->
    let len = array_length t arr in
    ensure_capacity t arr (i + 1);
    if i = len then store t arr array_length_field (Value.smi (len + 1));
    let elements = load t arr array_elements_field in
    write_double_element t elements i v
  | Packed_smi | Packed_tagged -> array_set t arr i (number t v)

let array_push t arr v = array_set t arr (array_length t arr) v

let array_pop t arr =
  let len = array_length t arr in
  if len = 0 then t.undef
  else begin
    let v = array_get t arr (len - 1) in
    store t arr array_length_field (Value.smi (len - 1));
    v
  end

(* ---------------- Functions and contexts ---------------- *)

let function_map_id t = t.function_map

let alloc_function t ~function_id ~context =
  let idx = alloc_with_map t t.function_map 4 in
  t.mem.(idx + function_id_field) <- Value.smi function_id;
  t.mem.(idx + function_context_field) <- context;
  t.mem.(idx + function_prototype_field) <- t.undef;
  Value.pointer idx

let is_function t v = Value.is_pointer v && instance_type_of t v = It_function
let function_id_of t f = Value.smi_value (load t f function_id_field)
let function_context t f = load t f function_context_field

let function_prototype t f =
  let p = load t f function_prototype_field in
  if p <> t.undef then p
  else begin
    let proto = alloc_empty_object t in
    store t f function_prototype_field proto;
    proto
  end

let alloc_context t ~parent ~slots =
  let idx = alloc_with_map t t.context_map (context_slots_field + slots) in
  t.mem.(idx + 1) <- Value.smi slots;
  t.mem.(idx + context_parent_field) <- parent;
  for i = 0 to slots - 1 do
    t.mem.(idx + context_slots_field + i) <- t.undef
  done;
  Value.pointer idx

let context_parent t c = load t c context_parent_field
let context_get t c i = load t c (context_slots_field + i)
let context_set t c i v = store t c (context_slots_field + i) v

(* ---------------- Globals (property cells) ---------------- *)

let global_cell t name =
  match Hashtbl.find_opt t.globals name with
  | Some c -> c
  | None ->
    let idx = alloc_with_map t t.cell_map 2 in
    t.mem.(idx + 1) <- t.undef;
    let ptr = Value.pointer idx in
    Hashtbl.replace t.globals name ptr;
    ptr

let cell_value t c = load t c 1
let set_cell_value t c v = store t c 1 v
let global_exists t name = Hashtbl.mem t.globals name

(* ---------------- Garbage collection ---------------- *)

let object_size_at t idx =
  let map_ptr = t.mem.(idx) in
  let info = t.maps.(Hashtbl.find t.map_ptr_to_id (Value.pointer_index map_ptr)) in
  match info.itype with
  | It_map -> 3
  | It_oddball -> 2
  | It_heap_number -> 3
  | It_string -> string_chars_field + Value.smi_value (t.mem.(idx + string_length_field))
  | It_fixed_array ->
    if info.map_id = t.cell_map then 2
    else elements_header + Value.smi_value t.mem.(idx + 1)
  | It_fixed_double_array -> elements_header + (2 * Value.smi_value t.mem.(idx + 1))
  | It_object -> object_words
  | It_array -> array_words
  | It_function -> 4
  | It_context -> context_slots_field + Value.smi_value t.mem.(idx + 1)

let object_size t ptr = object_size_at t (Value.pointer_index ptr)

(* Which fields of an object hold tagged words (candidates for marking).
   SMIs are tagged too and are skipped by the marker naturally. *)
let scan_fields t idx f =
  let map_ptr = t.mem.(idx) in
  f map_ptr;
  let info = t.maps.(Hashtbl.find t.map_ptr_to_id (Value.pointer_index map_ptr)) in
  match info.itype with
  | It_map | It_oddball | It_heap_number -> ()
  | It_string -> () (* chars are SMIs *)
  | It_fixed_double_array -> () (* raw payload *)
  | It_fixed_array ->
    let n = if info.map_id = t.cell_map then 1 else
      Value.smi_value t.mem.(idx + 1) + 1 (* capacity word is an SMI; harmless *)
    in
    for k = 1 to n do
      f t.mem.(idx + k)
    done
  | It_object ->
    for k = 1 to object_words - 1 do
      f t.mem.(idx + k)
    done
  | It_array ->
    f t.mem.(idx + array_elements_field);
    f t.mem.(idx + array_props_field)
  | It_function ->
    f t.mem.(idx + function_context_field);
    f t.mem.(idx + function_prototype_field)
  | It_context ->
    let n = Value.smi_value t.mem.(idx + 1) in
    f t.mem.(idx + context_parent_field);
    for k = 0 to n - 1 do
      f t.mem.(idx + context_slots_field + k)
    done

let add_root_provider t p = t.root_providers <- p :: t.root_providers

let gc t =
  let marked = Hashtbl.create (List.length t.objects) in
  let stack = Stack.create () in
  let push v =
    if Value.is_pointer v && v <> 0 then begin
      let idx = Value.pointer_index v in
      if not (Hashtbl.mem marked idx) then begin
        Hashtbl.replace marked idx ();
        Stack.push idx stack
      end
    end
  in
  (* Roots: singletons, maps, interned strings, global cells + their
     values, engine-provided roots. *)
  push t.undef;
  push t.nul;
  push t.tru;
  push t.fals;
  push t.hole;
  for i = 0 to t.n_maps - 1 do
    push t.maps.(i).map_ptr;
    push t.maps.(i).prototype
  done;
  Hashtbl.iter (fun _ p -> push p) t.interned;
  Hashtbl.iter (fun _ c -> push c) t.globals;
  List.iter (fun provider -> List.iter push (provider ())) t.root_providers;
  while not (Stack.is_empty stack) do
    let idx = Stack.pop stack in
    scan_fields t idx push
  done;
  (* Sweep: rebuild the registry and the free list. *)
  let live = ref [] and live_words = ref 0 and freed = ref 0 in
  let free_ranges = ref [] in
  List.iter
    (fun idx ->
      let size = object_size_at t idx in
      if Hashtbl.mem marked idx then begin
        live := idx :: !live;
        live_words := !live_words + size
      end
      else begin
        freed := !freed + size;
        free_ranges := (idx, size) :: !free_ranges
      end)
    t.objects;
  (* Coalesce adjacent free ranges (address order). *)
  let sorted = List.sort compare !free_ranges in
  let coalesced =
    List.fold_left
      (fun acc (idx, size) ->
        match acc with
        | (pidx, psize) :: rest when pidx + psize = idx ->
          (pidx, psize + size) :: rest
        | _ -> (idx, size) :: acc)
      [] sorted
  in
  t.free_list <- List.rev coalesced;
  t.objects <- !live;
  t.words_used <- !live_words;
  t.gc_count <- t.gc_count + 1;
  t.last_live <- !live_words;
  t.last_freed <- !freed

let gc_count t = t.gc_count
let last_gc_live_words t = t.last_live
let last_gc_freed_words t = t.last_freed
let words_in_use t = t.words_used
let size_words t = t.size
