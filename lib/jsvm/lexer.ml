type token =
  | Tnum of float
  | Tstr of string
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

type located = { tok : token; line : int; col : int }

exception Lex_error of string

let keywords =
  [ "var"; "let"; "const"; "function"; "return"; "if"; "else"; "while"; "do";
    "for"; "break"; "continue"; "true"; "false"; "null"; "undefined"; "new";
    "typeof"; "this" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

(* Multi-character punctuators, longest first. *)
let punctuators =
  [ ">>>="; "==="; "!=="; ">>>"; "<<="; ">>="; "&&"; "||"; "=="; "!="; "<=";
    ">="; "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<";
    ">>"; "{"; "}"; "("; ")"; "["; "]"; ";"; ","; "."; "?"; ":"; "="; "+";
    "-"; "*"; "/"; "%"; "<"; ">"; "!"; "~"; "&"; "|"; "^" ]

let token_to_string = function
  | Tnum f -> Printf.sprintf "number %g" f
  | Tstr s -> Printf.sprintf "string %S" s
  | Tident s -> Printf.sprintf "identifier %s" s
  | Tkeyword s -> Printf.sprintf "keyword %s" s
  | Tpunct s -> Printf.sprintf "'%s'" s
  | Teof -> "<eof>"

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let line_start = ref 0 in
  let error fmt =
    Printf.ksprintf
      (fun m -> raise (Lex_error (Printf.sprintf "line %d: %s" !line m)))
      fmt
  in
  let emit tok col = tokens := { tok; line = !line; col } :: !tokens in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n do
    let c = src.[!pos] in
    let col = !pos - !line_start + 1 in
    if c = '\n' then begin
      incr line;
      incr pos;
      line_start := !pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then begin
          incr line;
          line_start := !pos + 1
        end;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then error "unterminated block comment"
    end
    else if is_digit c || (c = '.' && match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        while
          !pos < n
          && (is_digit src.[!pos]
             || (src.[!pos] >= 'a' && src.[!pos] <= 'f')
             || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))
        do
          incr pos
        done;
        let s = String.sub src start (!pos - start) in
        emit (Tnum (float_of_int (int_of_string s))) col
      end
      else begin
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        if !pos < n && src.[!pos] = '.' then begin
          incr pos;
          while !pos < n && is_digit src.[!pos] do
            incr pos
          done
        end;
        if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
          while !pos < n && is_digit src.[!pos] do
            incr pos
          done
        end;
        let s = String.sub src start (!pos - start) in
        emit (Tnum (float_of_string s)) col
      end
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let s = String.sub src start (!pos - start) in
      if List.mem s keywords then emit (Tkeyword s) col else emit (Tident s) col
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = quote then begin
          closed := true;
          incr pos
        end
        else if d = '\\' then begin
          (match peek 1 with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '\'' -> Buffer.add_char buf '\''
          | Some '"' -> Buffer.add_char buf '"'
          | Some '0' -> Buffer.add_char buf '\000'
          | Some other -> Buffer.add_char buf other
          | None -> error "dangling escape");
          pos := !pos + 2
        end
        else if d = '\n' then error "newline in string literal"
        else begin
          Buffer.add_char buf d;
          incr pos
        end
      done;
      if not !closed then error "unterminated string literal";
      emit (Tstr (Buffer.contents buf)) col
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !pos + l <= n && String.sub src !pos l = p)
          punctuators
      in
      match matched with
      | Some p ->
        pos := !pos + String.length p;
        emit (Tpunct p) col
      | None -> error "unexpected character %C" c
    end
  done;
  tokens := { tok = Teof; line = !line; col = 0 } :: !tokens;
  Array.of_list (List.rev !tokens)
