open Ast

exception Parse_error of string

type state = { toks : Lexer.located array; mutable i : int }

let error st fmt =
  let { Lexer.tok; line; _ } = st.toks.(st.i) in
  Printf.ksprintf
    (fun m ->
      raise
        (Parse_error
           (Printf.sprintf "line %d: %s (at %s)" line m (Lexer.token_to_string tok))))
    fmt

let peek st = st.toks.(st.i).Lexer.tok
let advance st = st.i <- st.i + 1

let accept_punct st p =
  match peek st with
  | Lexer.Tpunct q when q = p ->
    advance st;
    true
  | _ -> false

let expect_punct st p =
  if not (accept_punct st p) then error st "expected '%s'" p

let accept_keyword st k =
  match peek st with
  | Lexer.Tkeyword q when q = k ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.Tident s ->
    advance st;
    s
  | _ -> error st "expected identifier"

(* Binary operator precedence (higher binds tighter). *)
let binop_of_punct = function
  | "||" -> Some (Logical_or, 1)
  | "&&" -> Some (Logical_and, 2)
  | "|" -> Some (Bit_or, 3)
  | "^" -> Some (Bit_xor, 4)
  | "&" -> Some (Bit_and, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Neq, 6)
  | "===" -> Some (Strict_eq, 6)
  | "!==" -> Some (Strict_neq, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | ">>>" -> Some (Ushr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | _ -> None

let compound_of_punct = function
  | "+=" -> Some Add
  | "-=" -> Some Sub
  | "*=" -> Some Mul
  | "/=" -> Some Div
  | "%=" -> Some Mod
  | "&=" -> Some Bit_and
  | "|=" -> Some Bit_or
  | "^=" -> Some Bit_xor
  | "<<=" -> Some Shl
  | ">>=" -> Some Shr
  | ">>>=" -> Some Ushr
  | _ -> None

let target_of_expr st = function
  | Ident s -> T_ident s
  | Member (o, f) -> T_member (o, f)
  | Index (o, i) -> T_index (o, i)
  | _ -> error st "invalid assignment target"

let rec parse_expr st = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  match peek st with
  | Lexer.Tpunct "=" ->
    advance st;
    let rhs = parse_assignment st in
    Assign (target_of_expr st lhs, rhs)
  | Lexer.Tpunct p -> (
    match compound_of_punct p with
    | Some op ->
      advance st;
      let rhs = parse_assignment st in
      Compound_assign (op, target_of_expr st lhs, rhs)
    | None -> lhs)
  | _ -> lhs

and parse_conditional st =
  let cond = parse_binary st 1 in
  if accept_punct st "?" then begin
    let a = parse_assignment st in
    expect_punct st ":";
    let b = parse_assignment st in
    Conditional (cond, a, b)
  end
  else cond

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | Lexer.Tpunct p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Binary (op, !lhs, rhs)
      | _ -> continue_loop := false)
    | _ -> continue_loop := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.Tpunct "-" ->
    advance st;
    Unary (Neg, parse_unary st)
  | Lexer.Tpunct "+" ->
    advance st;
    Unary (Plus, parse_unary st)
  | Lexer.Tpunct "!" ->
    advance st;
    Unary (Not, parse_unary st)
  | Lexer.Tpunct "~" ->
    advance st;
    Unary (Bit_not, parse_unary st)
  | Lexer.Tkeyword "typeof" ->
    advance st;
    Unary (Typeof, parse_unary st)
  | Lexer.Tpunct "++" ->
    advance st;
    let e = parse_unary st in
    Update { op_add = true; prefix = true; target = target_of_expr st e }
  | Lexer.Tpunct "--" ->
    advance st;
    let e = parse_unary st in
    Update { op_add = false; prefix = true; target = target_of_expr st e }
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_call_member st in
  match peek st with
  | Lexer.Tpunct "++" ->
    advance st;
    Update { op_add = true; prefix = false; target = target_of_expr st e }
  | Lexer.Tpunct "--" ->
    advance st;
    Update { op_add = false; prefix = false; target = target_of_expr st e }
  | _ -> e

and parse_call_member st =
  let e = ref (parse_primary st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | Lexer.Tpunct "." ->
      advance st;
      let name = expect_ident st in
      if peek st = Lexer.Tpunct "(" then begin
        advance st;
        let args = parse_args st in
        e := Method_call (!e, name, args)
      end
      else e := Member (!e, name)
    | Lexer.Tpunct "[" ->
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      e := Index (!e, idx)
    | Lexer.Tpunct "(" ->
      advance st;
      let args = parse_args st in
      e := Call (!e, args)
    | _ -> continue_loop := false
  done;
  !e

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let a = parse_assignment st in
      if accept_punct st "," then go (a :: acc)
      else begin
        expect_punct st ")";
        List.rev (a :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match peek st with
  | Lexer.Tnum f ->
    advance st;
    Number f
  | Lexer.Tstr s ->
    advance st;
    String s
  | Lexer.Tident s ->
    advance st;
    Ident s
  | Lexer.Tkeyword "true" ->
    advance st;
    Bool true
  | Lexer.Tkeyword "false" ->
    advance st;
    Bool false
  | Lexer.Tkeyword "null" ->
    advance st;
    Null
  | Lexer.Tkeyword "undefined" ->
    advance st;
    Undefined
  | Lexer.Tkeyword "this" ->
    advance st;
    This
  | Lexer.Tkeyword "new" ->
    advance st;
    let callee = parse_new_callee st in
    let args = if accept_punct st "(" then parse_args st else [] in
    New (callee, args)
  | Lexer.Tkeyword "function" ->
    advance st;
    Function_expr (parse_function_rest st)
  | Lexer.Tpunct "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Lexer.Tpunct "[" ->
    advance st;
    if accept_punct st "]" then Array_lit []
    else begin
      let rec go acc =
        let e = parse_assignment st in
        if accept_punct st "," then
          if peek st = Lexer.Tpunct "]" then begin
            advance st;
            List.rev (e :: acc)
          end
          else go (e :: acc)
        else begin
          expect_punct st "]";
          List.rev (e :: acc)
        end
      in
      Array_lit (go [])
    end
  | Lexer.Tpunct "{" ->
    advance st;
    if accept_punct st "}" then Object_lit []
    else begin
      let rec go acc =
        let key =
          match peek st with
          | Lexer.Tident s | Lexer.Tkeyword s ->
            advance st;
            s
          | Lexer.Tstr s ->
            advance st;
            s
          | Lexer.Tnum f ->
            advance st;
            if Float.is_integer f then string_of_int (int_of_float f)
            else string_of_float f
          | _ -> error st "expected property name"
        in
        expect_punct st ":";
        let v = parse_assignment st in
        if accept_punct st "," then
          if peek st = Lexer.Tpunct "}" then begin
            advance st;
            List.rev ((key, v) :: acc)
          end
          else go ((key, v) :: acc)
        else begin
          expect_punct st "}";
          List.rev ((key, v) :: acc)
        end
      in
      Object_lit (go [])
    end
  | _ -> error st "unexpected token"

and parse_new_callee st =
  (* new F(...) / new ns.F(...): member chain without calls/indexing. *)
  let e = ref (Ident (expect_ident st)) in
  while peek st = Lexer.Tpunct "." do
    advance st;
    e := Member (!e, expect_ident st)
  done;
  !e

and parse_function_rest st =
  let fname =
    match peek st with
    | Lexer.Tident s ->
      advance st;
      Some s
    | _ -> None
  in
  expect_punct st "(";
  let params =
    if accept_punct st ")" then []
    else begin
      let rec go acc =
        let p = expect_ident st in
        if accept_punct st "," then go (p :: acc)
        else begin
          expect_punct st ")";
          List.rev (p :: acc)
        end
      in
      go []
    end
  in
  expect_punct st "{";
  let body = parse_stmts_until st "}" in
  { fname; params; body }

and parse_stmts_until st closer =
  let rec go acc =
    if accept_punct st closer then List.rev acc
    else if peek st = Lexer.Teof then error st "unexpected end of input"
    else go (parse_stmt st :: acc)
  in
  go []

and parse_var_decl st =
  let rec go acc =
    let name = expect_ident st in
    let init = if accept_punct st "=" then Some (parse_assignment st) else None in
    if accept_punct st "," then go ((name, init) :: acc)
    else List.rev ((name, init) :: acc)
  in
  Var_decl (go [])

and parse_stmt st =
  match peek st with
  | Lexer.Tkeyword ("var" | "let" | "const") ->
    advance st;
    let d = parse_var_decl st in
    ignore (accept_punct st ";");
    d
  | Lexer.Tkeyword "function" ->
    advance st;
    let f = parse_function_rest st in
    if f.fname = None then error st "function declaration needs a name";
    Func_decl f
  | Lexer.Tkeyword "return" ->
    advance st;
    if accept_punct st ";" then Return None
    else if peek st = Lexer.Tpunct "}" then Return None
    else begin
      let e = parse_expr st in
      ignore (accept_punct st ";");
      Return (Some e)
    end
  | Lexer.Tkeyword "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    let then_b = parse_block_or_single st in
    let else_b =
      if accept_keyword st "else" then
        if peek st = Lexer.Tkeyword "if" then [ parse_stmt st ]
        else parse_block_or_single st
      else []
    in
    If (cond, then_b, else_b)
  | Lexer.Tkeyword "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    While (cond, parse_block_or_single st)
  | Lexer.Tkeyword "do" ->
    advance st;
    let body = parse_block_or_single st in
    if not (accept_keyword st "while") then error st "expected 'while'";
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    ignore (accept_punct st ";");
    Do_while (body, cond)
  | Lexer.Tkeyword "for" ->
    advance st;
    expect_punct st "(";
    let init =
      if accept_punct st ";" then None
      else begin
        let s =
          match peek st with
          | Lexer.Tkeyword ("var" | "let" | "const") ->
            advance st;
            parse_var_decl st
          | _ -> Expr_stmt (parse_expr st)
        in
        expect_punct st ";";
        Some s
      end
    in
    let cond = if accept_punct st ";" then None
      else begin
        let e = parse_expr st in
        expect_punct st ";";
        Some e
      end
    in
    let step = if accept_punct st ")" then None
      else begin
        let e = parse_expr st in
        expect_punct st ")";
        Some e
      end
    in
    For (init, cond, step, parse_block_or_single st)
  | Lexer.Tkeyword "break" ->
    advance st;
    ignore (accept_punct st ";");
    Break
  | Lexer.Tkeyword "continue" ->
    advance st;
    ignore (accept_punct st ";");
    Continue
  | Lexer.Tpunct "{" ->
    advance st;
    Block (parse_stmts_until st "}")
  | Lexer.Tpunct ";" ->
    advance st;
    Block []
  | _ ->
    let e = parse_expr st in
    ignore (accept_punct st ";");
    Expr_stmt e

and parse_block_or_single st =
  if accept_punct st "{" then parse_stmts_until st "}" else [ parse_stmt st ]

let parse src =
  let st = { toks = Lexer.tokenize src; i = 0 } in
  let rec go acc =
    if peek st = Lexer.Teof then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

let parse_expression src =
  let st = { toks = Lexer.tokenize src; i = 0 } in
  let e = parse_expr st in
  if peek st <> Lexer.Teof then error st "trailing tokens after expression";
  e
