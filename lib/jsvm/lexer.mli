(** Hand-written lexer for the JavaScript subset. *)

type token =
  | Tnum of float
  | Tstr of string
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

type located = { tok : token; line : int; col : int }

exception Lex_error of string

val tokenize : string -> located array
(** Raises {!Lex_error} with a line-annotated message on bad input. *)

val token_to_string : token -> string
