(* Object-oriented benchmarks: property-heavy workloads where the
   paper's Type (map) checks dominate — analogs of Richards (RICH),
   Splay (SPL), DeltaBlue (DELT) and Raytrace (RAY). *)

let richards = {|
// Simplified Richards: a round-robin scheduler of task objects with
// per-kind behavior dispatched through prototype methods.
function Packet(kind, datum) { this.kind = kind; this.datum = datum; this.link = null; }
function Task(id, priority) {
  this.id = id;
  this.priority = priority;
  this.queue = null;
  this.state = 0;
  this.work_done = 0;
}
Task.prototype.enqueue = function(p) {
  p.link = null;
  if (this.queue == null) this.queue = p;
  else {
    var q = this.queue;
    while (q.link != null) q = q.link;
    q.link = p;
  }
};
Task.prototype.dequeue = function() {
  var p = this.queue;
  if (p != null) this.queue = p.link;
  return p;
};
Task.prototype.run = function(sched) {
  var p = this.dequeue();
  if (p == null) return;
  this.work_done = this.work_done + p.datum;
  this.state = (this.state + p.kind) % 7;
  var target = (this.id + 1) % sched.tasks.length;
  sched.tasks[target].enqueue(new Packet((p.kind + 1) % 3, (p.datum * 7 + 1) % 1000));
};
function Scheduler() { this.tasks = []; }
Scheduler.prototype.schedule = function(rounds) {
  for (var r = 0; r < rounds; r++) {
    for (var i = 0; i < this.tasks.length; i++) this.tasks[i].run(this);
  }
};
function bench() {
  var sched = new Scheduler();
  for (var i = 0; i < 4; i++) sched.tasks.push(new Task(i, i % 3));
  for (var j = 0; j < 4; j++) sched.tasks[j].enqueue(new Packet(j % 3, j * 11 + 1));
  sched.schedule(30);
  var chk = 0;
  for (var k = 0; k < 4; k++) {
    chk = (chk + sched.tasks[k].work_done * 13 + sched.tasks[k].state) % 1000003;
  }
  return chk;
}
|}

let splay = {|
// Splay-tree insert/find (pointer chasing through object fields).
function Node(key, value) { this.key = key; this.value = value; this.left = null; this.right = null; }
var root = null;
function insert(key, value) {
  if (root == null) { root = new Node(key, value); return; }
  splay(key);
  if (root.key == key) return;
  var node = new Node(key, value);
  if (key > root.key) {
    node.left = root; node.right = root.right; root.right = null;
  } else {
    node.right = root; node.left = root.left; root.left = null;
  }
  root = node;
}
function splay(key) {
  var dummy = new Node(0, 0);
  var left = dummy; var right = dummy;
  var current = root;
  var done = false;
  while (!done) {
    if (key < current.key) {
      if (current.left == null) done = true;
      else {
        if (key < current.left.key) {
          var tmp = current.left;
          current.left = tmp.right;
          tmp.right = current;
          current = tmp;
          if (current.left == null) { done = true; }
        }
        if (!done) { right.left = current; right = current; current = current.left; }
      }
    } else if (key > current.key) {
      if (current.right == null) done = true;
      else {
        if (key > current.right.key) {
          var tmp2 = current.right;
          current.right = tmp2.left;
          tmp2.left = current;
          current = tmp2;
          if (current.right == null) { done = true; }
        }
        if (!done) { left.right = current; left = current; current = current.right; }
      }
    } else done = true;
  }
  left.right = current.left;
  right.left = current.right;
  current.left = dummy.right;
  current.right = dummy.left;
  root = current;
}
function find(key) {
  if (root == null) return null;
  splay(key);
  if (root.key == key) return root;
  return null;
}
function bench() {
  root = null;
  var s = 5;
  for (var i = 0; i < 60; i++) {
    s = (s * 131 + 7) % 1021;
    insert(s, i);
  }
  var chk = 0;
  s = 5;
  for (var j = 0; j < 60; j++) {
    s = (s * 131 + 7) % 1021;
    var n = find(s);
    if (n != null) chk = (chk + n.value) % 1000003;
  }
  return chk;
}
|}

let deltablue = {|
// DeltaBlue-flavored constraint propagation: a chain of scaled
// variables re-planned each iteration.
function Variable(value) { this.value = value; this.stay = false; }
function ScaleConstraint(src, dst, scale, offset) {
  this.src = src; this.dst = dst; this.scale = scale; this.offset = offset;
}
ScaleConstraint.prototype.execute = function() {
  this.dst.value = (this.src.value * this.scale + this.offset) % 100003;
};
var vars = [];
var constraints = [];
(function() {
  for (var i = 0; i < 12; i++) vars.push(new Variable(i * 3 + 1));
  for (var j = 0; j + 1 < 12; j++) {
    constraints.push(new ScaleConstraint(vars[j], vars[j + 1], 2 + (j % 3), j));
  }
})();
function propagate() {
  for (var i = 0; i < constraints.length; i++) constraints[i].execute();
}
function bench() {
  vars[0].value = 17;
  for (var r = 0; r < 20; r++) propagate();
  var chk = 0;
  for (var i = 0; i < vars.length; i++) chk = (chk + vars[i].value) % 1000003;
  return chk;
}
|}

let raytrace = {|
// Tiny sphere raytracer (objects + float math + method dispatch).
function V3(x, y, z) { this.x = x; this.y = y; this.z = z; }
V3.prototype.dot = function(o) { return this.x * o.x + this.y * o.y + this.z * o.z; };
V3.prototype.sub = function(o) { return new V3(this.x - o.x, this.y - o.y, this.z - o.z); };
function Sphere(cx, cy, cz, r, shade) {
  this.center = new V3(cx, cy, cz);
  this.radius = r;
  this.shade = shade;
}
Sphere.prototype.intersect = function(orig, dir) {
  var oc = orig.sub(this.center);
  var b = 2.0 * oc.dot(dir);
  var c = oc.dot(oc) - this.radius * this.radius;
  var disc = b * b - 4.0 * c;
  if (disc < 0.0) return -1.0;
  var t = (-b - Math.sqrt(disc)) * 0.5;
  if (t > 0.001) return t;
  return -1.0;
}
var scene = [];
(function() {
  scene.push(new Sphere(0.0, 0.0, 5.0, 1.0, 50));
  scene.push(new Sphere(1.5, 0.5, 6.0, 0.8, 120));
  scene.push(new Sphere(-1.5, -0.5, 4.5, 0.6, 200));
})();
function trace(px, py) {
  var orig = new V3(0.0, 0.0, 0.0);
  var len = Math.sqrt(px * px + py * py + 1.0);
  var dir = new V3(px / len, py / len, 1.0 / len);
  var best = 1e9;
  var shade = 0;
  for (var i = 0; i < scene.length; i++) {
    var t = scene[i].intersect(orig, dir);
    if (t > 0.0 && t < best) { best = t; shade = scene[i].shade; }
  }
  return shade;
}
function bench() {
  var chk = 0;
  for (var y = 0; y < 10; y++) {
    for (var x = 0; x < 10; x++) {
      chk = (chk + trace(-0.5 + x * 0.1, -0.5 + y * 0.1)) % 1000003;
    }
  }
  return chk;
}
|}

let tree_churn = {|
// Binary tree allocation and traversal (GC pressure, like splay's
// memory behavior in the paper's suite).
function TNode(depth) {
  this.depth = depth;
  if (depth > 0) {
    this.left = new TNode(depth - 1);
    this.right = new TNode(depth - 1);
  } else {
    this.left = null;
    this.right = null;
  }
}
function check_tree(node) {
  if (node.left == null) return 1;
  return 1 + check_tree(node.left) + check_tree(node.right);
}
function bench() {
  var chk = 0;
  for (var r = 0; r < 3; r++) {
    var t = new TNode(5);
    chk = (chk + check_tree(t)) % 1000003;
  }
  return chk;
}
|}

let all =
  [
    ("RICH", "Richards-style task scheduler", richards);
    ("SPL", "splay tree insert/find", splay);
    ("DELT", "DeltaBlue-style constraint propagation", deltablue);
    ("RAY", "sphere raytracer (objects + floats)", raytrace);
    ("TREE", "binary tree allocation churn", tree_churn);
  ]
