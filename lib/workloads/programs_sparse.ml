(* The paper's six custom sparse linear-algebra kernels (Section II-C):
   CSR SpMV in three element types (double, large integer, SMI), sparse
   matrix-matrix product, dense matmul, im2col, dot product.  Matrix
   generation is deterministic (linear congruential), so results are
   reproducible checksums. *)

let csr_setup = {|
var N = 64;
var NNZ_PER_ROW = 8;
var row_ptr = [];
var col_idx = [];
function lcg_make(seed) {
  var s = seed;
  return function() { s = (s * 1103515245 + 12345) & 0x3FFFFFF; return s; };
}
function build_structure() {
  var rnd = lcg_make(7);
  var k = 0;
  for (var i = 0; i < N; i++) {
    row_ptr.push(k);
    for (var j = 0; j < NNZ_PER_ROW; j++) {
      col_idx.push(rnd() % N);
      k++;
    }
  }
  row_ptr.push(k);
}
build_structure();
|}

let spmv_body = {|
function spmv(rp, ci, vals, x, y, n) {
  for (var i = 0; i < n; i++) {
    var sum = 0;
    var lo = rp[i];
    var hi = rp[i + 1];
    for (var k = lo; k < hi; k++) {
      sum = sum + vals[k] * x[ci[k]];
    }
    y[i] = sum;
  }
}
|}

let spmv_csr_smi =
  csr_setup ^ spmv_body
  ^ {|
var vals = [];
var x = [];
var y = [];
(function() {
  var rnd = lcg_make(13);
  for (var k = 0; k < col_idx.length; k++) vals.push((rnd() % 1000) - 500);
  for (var i = 0; i < N; i++) { x.push((i * 7) % 100); y.push(0); }
})();
function bench() {
  spmv(row_ptr, col_idx, vals, x, y, N);
  var chk = 0;
  for (var i = 0; i < N; i++) chk = (chk + y[i]) % 1000003;
  return chk;
}
|}

let spmv_csr_int =
  csr_setup ^ spmv_body
  ^ {|
var vals = [];
var x = [];
var y = [];
(function() {
  var rnd = lcg_make(13);
  // Values beyond the 31-bit SMI range: stored as heap numbers.
  for (var k = 0; k < col_idx.length; k++) vals.push((rnd() % 1000) * 4194304 + 1073741824);
  for (var i = 0; i < N; i++) { x.push((i % 10) + 1); y.push(0); }
})();
function bench() {
  spmv(row_ptr, col_idx, vals, x, y, N);
  var chk = 0;
  for (var i = 0; i < N; i++) chk = (chk + y[i] % 97) % 1000003;
  return chk;
}
|}

let spmv_csr_float =
  csr_setup ^ spmv_body
  ^ {|
var vals = [];
var x = [];
var y = [];
(function() {
  var rnd = lcg_make(13);
  for (var k = 0; k < col_idx.length; k++) vals.push((rnd() % 1000) * 0.25 - 125.0);
  for (var i = 0; i < N; i++) { x.push(i * 0.5); y.push(0.0); }
})();
function bench() {
  spmv(row_ptr, col_idx, vals, x, y, N);
  var chk = 0.0;
  for (var i = 0; i < N; i++) chk = chk + y[i];
  return Math.floor(chk);
}
|}

let spmm = {|
// Sparse (CSR) times dense-ish sparse: C = A * B on small SMI matrices.
var N = 24;
function lcg_make(seed) {
  var s = seed;
  return function() { s = (s * 1103515245 + 12345) & 0x3FFFFFF; return s; };
}
var a_rp = []; var a_ci = []; var a_v = [];
var b_rp = []; var b_ci = []; var b_v = [];
function build(rp, ci, v, seed, nnz) {
  var rnd = lcg_make(seed);
  var k = 0;
  for (var i = 0; i < N; i++) {
    rp.push(k);
    for (var j = 0; j < nnz; j++) {
      ci.push(rnd() % N);
      v.push((rnd() % 200) - 100);
      k++;
    }
  }
  rp.push(k);
}
build(a_rp, a_ci, a_v, 3, 5);
build(b_rp, b_ci, b_v, 11, 5);
var acc = [];
for (var i = 0; i < N; i++) acc.push(0);
function spmm_row(i) {
  for (var t = 0; t < N; t++) acc[t] = 0;
  for (var ka = a_rp[i]; ka < a_rp[i + 1]; ka++) {
    var j = a_ci[ka];
    var av = a_v[ka];
    for (var kb = b_rp[j]; kb < b_rp[j + 1]; kb++) {
      acc[b_ci[kb]] = acc[b_ci[kb]] + av * b_v[kb];
    }
  }
  var s = 0;
  for (var t2 = 0; t2 < N; t2++) s = (s + acc[t2]) % 1000003;
  return s;
}
function bench() {
  var chk = 0;
  for (var i = 0; i < N; i++) chk = (chk + spmm_row(i)) % 1000003;
  return chk;
}
|}

let mmul = {|
// Dense SMI matrix multiply (paper: mmul).
var N = 14;
var A = []; var B = []; var C = [];
(function() {
  for (var i = 0; i < N * N; i++) {
    A.push((i * 7) % 19 - 9);
    B.push((i * 13) % 23 - 11);
    C.push(0);
  }
})();
function mmul() {
  for (var i = 0; i < N; i++) {
    for (var j = 0; j < N; j++) {
      var s = 0;
      for (var k = 0; k < N; k++) {
        s = s + A[i * N + k] * B[k * N + j];
      }
      C[i * N + j] = s;
    }
  }
}
function bench() {
  mmul();
  var chk = 0;
  for (var i = 0; i < N * N; i++) chk = (chk + C[i]) % 1000003;
  return chk;
}
|}

let im2col = {|
// im2col transform on an SMI image (paper: IM2COL).
var H = 16; var W = 16; var K = 3;
var img = [];
var cols = [];
(function() {
  for (var i = 0; i < H * W; i++) img.push((i * 31) % 256);
  var out_h = H - K + 1;
  var out_w = W - K + 1;
  for (var i2 = 0; i2 < K * K * out_h * out_w; i2++) cols.push(0);
})();
function im2col() {
  var out_h = H - K + 1;
  var out_w = W - K + 1;
  var p = 0;
  for (var ky = 0; ky < K; ky++) {
    for (var kx = 0; kx < K; kx++) {
      for (var y = 0; y < out_h; y++) {
        for (var x = 0; x < out_w; x++) {
          cols[p] = img[(y + ky) * W + (x + kx)];
          p = p + 1;
        }
      }
    }
  }
}
function bench() {
  im2col();
  var chk = 0;
  for (var i = 0; i < cols.length; i++) chk = (chk + cols[i] * (i % 7 + 1)) % 1000003;
  return chk;
}
|}

let dp = {|
// SMI dot product (paper: DP) -- the flagship jsldrsmi workload.
var N = 1200;
var xs = []; var ys = [];
(function() {
  for (var i = 0; i < N; i++) {
    xs.push((i * 7) % 100 - 50);
    ys.push((i * 13) % 100 - 50);
  }
})();
function dot(a, b, n) {
  var s = 0;
  for (var i = 0; i < n; i++) s = s + a[i] * b[i];
  return s % 16777213;
}
function bench() { return dot(xs, ys, N); }
|}

let all =
  [
    ("SPMV-CSR-SMI", "CSR sparse matrix-vector product on SMI values", spmv_csr_smi);
    ("SPMV-CSR-INT", "CSR SpMV on large (heap-number) integers", spmv_csr_int);
    ("SPMV-CSR-FLOAT", "CSR SpMV on doubles", spmv_csr_float);
    ("SPMM", "sparse matrix-matrix product (SMI)", spmm);
    ("MMUL", "dense SMI matrix multiply", mmul);
    ("IM2COL", "image-to-column transform (SMI indexing)", im2col);
    ("DP", "SMI dot product", dp);
  ]
