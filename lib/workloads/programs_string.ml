(* String-manipulation benchmarks.  Most of their time goes into
   builtins (concatenation, search, case conversion), which is why the
   paper measures low check overheads for this category. *)

let strcat = {|
// Repeated concatenation and length checks.
var pieces = [];
(function() {
  for (var i = 0; i < 16; i++) pieces.push("piece" + i + "-");
})();
function build() {
  var out = "";
  for (var i = 0; i < pieces.length; i++) {
    out = out + pieces[i];
    if (out.length > 400) out = out.substring(0, 100);
  }
  return out;
}
function bench() {
  var s = "";
  for (var r = 0; r < 6; r++) s = build() + s.substring(0, 10);
  return s.length;
}
|}

let b64 = {|
// Base64 encoding via charCodeAt / fromCharCode and bit twiddling.
var alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
var payload = "";
(function() {
  for (var i = 0; i < 8; i++) payload = payload + "The quick brown fox #" + i + ". ";
})();
function encode(s) {
  var out = "";
  var i = 0;
  while (i + 2 < s.length) {
    var x = (s.charCodeAt(i) << 16) | (s.charCodeAt(i + 1) << 8) | s.charCodeAt(i + 2);
    out = out + alphabet.charAt((x >> 18) & 63) + alphabet.charAt((x >> 12) & 63)
        + alphabet.charAt((x >> 6) & 63) + alphabet.charAt(x & 63);
    i = i + 3;
  }
  return out;
}
function bench() {
  var e = encode(payload);
  var chk = 0;
  for (var i = 0; i < e.length; i++) chk = (chk + e.charCodeAt(i) * (i % 5 + 1)) % 1000003;
  return chk;
}
|}

let tagcloud = {|
// Split text into words, count frequencies in an object map, join.
var text = "";
(function() {
  var ws = "alpha beta gamma delta alpha beta epsilon zeta alpha eta theta beta";
  for (var i = 0; i < 4; i++) text = text + ws + " ";
})();
function bench() {
  var words = text.split(" ");
  var counts = {};
  var uniq = [];
  for (var i = 0; i < words.length; i++) {
    var word = words[i];
    if (word.length > 0) {
      var c = counts[word];
      if (c == undefined) { counts[word] = 1; uniq.push(word); }
      else counts[word] = c + 1;
    }
  }
  var chk = 0;
  for (var j = 0; j < uniq.length; j++) {
    chk = (chk + counts[uniq[j]] * uniq[j].length) % 100003;
  }
  return chk + uniq.join(",").length;
}
|}

let strsearch = {|
// Scanning with indexOf and substring extraction.
var haystack = "";
(function() {
  for (var i = 0; i < 12; i++) {
    haystack = haystack + "lorem ipsum dolor sit amet needle" + (i % 3) + " consectetur ";
  }
})();
function bench() {
  var chk = 0;
  var from = 0;
  var found = haystack.indexOf("needle", from);
  while (found >= 0) {
    chk = (chk + found) % 1000003;
    var tail = haystack.substring(found + 6, found + 7);
    chk = (chk + tail.charCodeAt(0)) % 1000003;
    from = found + 1;
    found = haystack.indexOf("needle", from);
  }
  return chk;
}
|}

let all =
  [
    ("STRCAT", "string building by concatenation", strcat);
    ("B64", "base64 encoding (charCodeAt + bitops)", b64);
    ("TAG", "word frequency tag cloud (split + object map)", tagcloud);
    ("STRSRCH", "substring scanning with indexOf", strsearch);
  ]
