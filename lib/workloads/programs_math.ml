(* Mathematical benchmarks (JetStream2-style: float kernels, stencils),
   including analogs of navier-stokes (NS) and gaussian-blur (BLUR). *)

let ns = {|
// Simplified 2D diffusion step (navier-stokes core loop shape).
var GN = 18;
var SZ = (GN + 2) * (GN + 2);
var u = []; var u0 = [];
(function() {
  for (var i = 0; i < SZ; i++) {
    u.push(0.0);
    u0.push(((i * 37) % 100) * 0.01);
  }
})();
function lin_solve(x, x0, a, c, n) {
  for (var k = 0; k < 4; k++) {
    for (var j = 1; j <= n; j++) {
      for (var i = 1; i <= n; i++) {
        var idx = i + (n + 2) * j;
        x[idx] = (x0[idx] + a * (x[idx - 1] + x[idx + 1] + x[idx - (n + 2)] + x[idx + (n + 2)])) / c;
      }
    }
  }
}
function bench() {
  lin_solve(u, u0, 0.3, 2.2, GN);
  var chk = 0.0;
  for (var i = 0; i < SZ; i++) chk = chk + u[i];
  return Math.floor(chk * 1000);
}
|}

let fft = {|
// Iterative radix-2 FFT on 64 points.
var FN = 64;
var re = []; var im = [];
(function() {
  for (var i = 0; i < FN; i++) {
    re.push(Math.sin(i * 0.7) * 10.0);
    im.push(0.0);
  }
})();
function reverse_bits(x, bits) {
  var y = 0;
  for (var i = 0; i < bits; i++) {
    y = (y << 1) | (x & 1);
    x = x >> 1;
  }
  return y;
}
function fft(rex, imx, n) {
  var bits = 6;
  for (var i = 0; i < n; i++) {
    var j = reverse_bits(i, bits);
    if (j > i) {
      var tr = rex[i]; rex[i] = rex[j]; rex[j] = tr;
      var ti = imx[i]; imx[i] = imx[j]; imx[j] = ti;
    }
  }
  for (var size = 2; size <= n; size = size * 2) {
    var half = size >> 1;
    var step = 6.283185307179586 / size;
    for (var base = 0; base < n; base = base + size) {
      for (var k = 0; k < half; k++) {
        var ang = step * k;
        var wr = Math.cos(ang);
        var wi = -Math.sin(ang);
        var i1 = base + k;
        var i2 = i1 + half;
        var xr = rex[i2] * wr - imx[i2] * wi;
        var xi = rex[i2] * wi + imx[i2] * wr;
        rex[i2] = rex[i1] - xr;
        imx[i2] = imx[i1] - xi;
        rex[i1] = rex[i1] + xr;
        imx[i1] = imx[i1] + xi;
      }
    }
  }
}
function bench() {
  fft(re, im, FN);
  var chk = 0.0;
  for (var i = 0; i < FN; i++) chk = chk + re[i] * re[i] + im[i] * im[i];
  return Math.floor(chk);
}
|}

let nbody = {|
// Planar n-body step with object-based bodies (floats + properties).
function Body(x, y, vx, vy, m) {
  this.x = x; this.y = y; this.vx = vx; this.vy = vy; this.m = m;
}
var bodies = [];
(function() {
  for (var i = 0; i < 6; i++) {
    bodies.push(new Body(i * 1.5, 6.0 - i, 0.01 * i, -0.02 * i, 1.0 + i * 0.3));
  }
})();
function advance(dt) {
  var n = bodies.length;
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x;
      var dy = bi.y - bj.y;
      var d2 = dx * dx + dy * dy + 0.01;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx = bi.vx - dx * bj.m * mag;
      bi.vy = bi.vy - dy * bj.m * mag;
      bj.vx = bj.vx + dx * bi.m * mag;
      bj.vy = bj.vy + dy * bi.m * mag;
    }
  }
  for (var k = 0; k < n; k++) {
    var b = bodies[k];
    b.x = b.x + dt * b.vx;
    b.y = b.y + dt * b.vy;
  }
}
function bench() {
  for (var s = 0; s < 12; s++) advance(0.01);
  var chk = 0.0;
  for (var i = 0; i < bodies.length; i++) {
    chk = chk + bodies[i].x * 3.0 + bodies[i].vy;
  }
  return Math.floor(chk * 100000);
}
|}

let mandel = {|
// Mandelbrot escape iterations over a small grid (float-heavy).
function mandel_point(cr, ci, limit) {
  var zr = 0.0; var zi = 0.0;
  var i = 0;
  while (i < limit && zr * zr + zi * zi < 4.0) {
    var t = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = t;
    i++;
  }
  return i;
}
function bench() {
  var chk = 0;
  for (var y = 0; y < 12; y++) {
    for (var x = 0; x < 12; x++) {
      chk = (chk + mandel_point(-2.0 + x * 0.22, -1.2 + y * 0.2, 40)) % 1000003;
    }
  }
  return chk;
}
|}

let prime = {|
// Sieve of Eratosthenes (SMI arrays, boundary checks).
var LIMIT = 1500;
var sieve = [];
(function() { for (var i = 0; i <= LIMIT; i++) sieve.push(0); })();
function count_primes(n) {
  for (var i = 0; i <= n; i++) sieve[i] = 1;
  sieve[0] = 0; sieve[1] = 0;
  for (var p = 2; p * p <= n; p++) {
    if (sieve[p] == 1) {
      for (var q = p * p; q <= n; q = q + p) sieve[q] = 0;
    }
  }
  var c = 0;
  for (var k = 2; k <= n; k++) c = c + sieve[k];
  return c;
}
function bench() { return count_primes(LIMIT); }
|}

let blur = {|
// 3x3 gaussian blur on a float image (paper: BLUR).
var BW = 24; var BH = 24;
var src_img = []; var dst_img = [];
(function() {
  for (var i = 0; i < BW * BH; i++) {
    src_img.push(((i * 53) % 256) * 1.0);
    dst_img.push(0.0);
  }
})();
function blur() {
  for (var y = 1; y < BH - 1; y++) {
    for (var x = 1; x < BW - 1; x++) {
      var i = y * BW + x;
      var s = src_img[i] * 0.25
        + (src_img[i - 1] + src_img[i + 1] + src_img[i - BW] + src_img[i + BW]) * 0.125
        + (src_img[i - BW - 1] + src_img[i - BW + 1] + src_img[i + BW - 1] + src_img[i + BW + 1]) * 0.0625;
      dst_img[i] = s;
    }
  }
}
function bench() {
  blur();
  var chk = 0.0;
  for (var i = 0; i < BW * BH; i++) chk = chk + dst_img[i];
  return Math.floor(chk);
}
|}

let all =
  [
    ("NS", "navier-stokes-style linear solver (floats)", ns);
    ("FFT", "radix-2 FFT on 64 points", fft);
    ("NBODY", "n-body step (float properties on objects)", nbody);
    ("MANDEL", "mandelbrot escape iterations", mandel);
    ("PRIME", "sieve of Eratosthenes (SMI)", prime);
    ("BLUR", "gaussian blur on a float image", blur);
  ]
