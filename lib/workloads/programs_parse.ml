(* Regular-expression and language-parsing benchmarks.  Regex work runs
   inside the engine's regex builtin ("Irregexp"), so these show almost
   no deopt-check overhead — one of the paper's category findings.
   MICL is the Multi-Inspector-Code-Load analog: repeated parsing of
   synthesized structured text. *)

let regex_match = {|
var re_date = new RegExp("(\\d+)-(\\d+)-(\\d+)");
var re_word = new RegExp("[a-z]+[0-9]+");
var lines = [];
(function() {
  for (var i = 0; i < 10; i++) {
    lines.push("entry" + i + " on 2021-0" + (i % 9 + 1) + "-1" + (i % 9) + " tag" + i);
    lines.push("no match here at all " + i);
  }
})();
function bench() {
  var chk = 0;
  for (var i = 0; i < lines.length; i++) {
    if (re_date.test(lines[i])) chk = chk + 1;
    if (re_word.test(lines[i])) chk = chk + 2;
  }
  return chk;
}
|}

let regex_dna = {|
var motifs = [];
var seq = "";
(function() {
  motifs.push(new RegExp("agggtaaa|tttaccct"));
  motifs.push(new RegExp("[cgt]gggtaaa|tttaccc[acg]"));
  motifs.push(new RegExp("aggg[acg]aaa|ttt[cgt]ccct"));
  var bases = "acgt";
  var s = 7;
  for (var i = 0; i < 240; i++) {
    s = (s * 131 + 17) % 1021;
    seq = seq + bases.charAt(s % 4);
  }
  seq = seq + "agggtaaa" + seq.substring(0, 40) + "tttaccct";
})();
function bench() {
  var chk = 0;
  for (var m = 0; m < motifs.length; m++) {
    var r = motifs[m].exec(seq);
    if (r != null) chk = (chk + r.index + r[0].length) % 100003;
  }
  return chk;
}
|}

let micl = {|
// Multi-Inspector-Code-Load analog: parse synthesized JSON-ish records
// character by character (parsing + string slicing + object churn).
var doc = "";
(function() {
  for (var i = 0; i < 10; i++) {
    doc = doc + "{id:" + i + ",name:rec" + i + ",val:" + (i * 37 % 100) + "};";
  }
})();
function parse_records(s) {
  var out = [];
  var i = 0;
  var n = s.length;
  while (i < n) {
    if (s.charAt(i) == "{") {
      var rec = {};
      i++;
      while (i < n && s.charAt(i) != "}") {
        var key_start = i;
        while (s.charAt(i) != ":") i++;
        var key = s.substring(key_start, i);
        i++;
        var val_start = i;
        while (i < n && s.charAt(i) != "," && s.charAt(i) != "}") i++;
        var raw = s.substring(val_start, i);
        var num = parseInt(raw, 10);
        if (isNaN(num)) rec[key] = raw;
        else rec[key] = num;
        if (s.charAt(i) == ",") i++;
      }
      out.push(rec);
    }
    i++;
  }
  return out;
}
function bench() {
  var recs = parse_records(doc);
  var chk = 0;
  for (var i = 0; i < recs.length; i++) {
    chk = (chk + recs[i].id * 3 + recs[i].val + recs[i].name.length) % 1000003;
  }
  return chk;
}
|}

let lexer = {|
// Tokenizer + recursive-descent evaluator for arithmetic expressions.
var exprs = [];
(function() {
  for (var i = 1; i < 7; i++) {
    exprs.push("1+2*" + i + "-(3+" + i + ")*2+10/" + i);
  }
})();
function Lexer(src) { this.src = src; this.pos = 0; }
Lexer.prototype.peek = function() {
  if (this.pos >= this.src.length) return -1;
  return this.src.charCodeAt(this.pos);
};
Lexer.prototype.next = function() { var c = this.peek(); this.pos++; return c; };
function parse_expr(lx) {
  var v = parse_term(lx);
  var c = lx.peek();
  while (c == 43 || c == 45) {
    lx.next();
    var r = parse_term(lx);
    if (c == 43) v = v + r; else v = v - r;
    c = lx.peek();
  }
  return v;
}
function parse_term(lx) {
  var v = parse_atom(lx);
  var c = lx.peek();
  while (c == 42 || c == 47) {
    lx.next();
    var r = parse_atom(lx);
    if (c == 42) v = v * r; else v = v / r;
    c = lx.peek();
  }
  return v;
}
function parse_atom(lx) {
  var c = lx.peek();
  if (c == 40) {
    lx.next();
    var v = parse_expr(lx);
    lx.next();
    return v;
  }
  var num = 0;
  while (c >= 48 && c <= 57) {
    num = num * 10 + (c - 48);
    lx.next();
    c = lx.peek();
  }
  return num;
}
function bench() {
  var chk = 0.0;
  for (var i = 0; i < exprs.length; i++) {
    chk = chk + parse_expr(new Lexer(exprs[i]));
  }
  return Math.floor(chk * 100);
}
|}

let csv = {|
// CSV splitting and numeric column aggregation.
var csv_text = "";
(function() {
  for (var r = 0; r < 14; r++) {
    csv_text = csv_text + "row" + r + "," + (r * 13 % 50) + "," + (r * 7 % 31) + "," + (r % 2) + "\n";
  }
})();
function bench() {
  var rows = csv_text.split("\n");
  var total = 0;
  for (var i = 0; i < rows.length; i++) {
    if (rows[i].length > 0) {
      var cols = rows[i].split(",");
      total = (total + parseInt(cols[1], 10) * 2 + parseInt(cols[2], 10)) % 1000003;
    }
  }
  return total;
}
|}

let all_regex =
  [
    ("REGEX", "pattern tests over log lines", regex_match);
    ("REGDNA", "DNA motif matching with exec", regex_dna);
  ]

let all_parse =
  [
    ("MICL", "multi-inspector-code-load analog (record parsing)", micl);
    ("LEX", "expression tokenizer + evaluator", lexer);
    ("CSV", "CSV split and aggregate", csv);
  ]
