(** The benchmark suite: a JetStream2-inspired collection grouped by
    the paper's categories (Section II-C), plus the six custom sparse
    linear-algebra kernels.

    Every benchmark is a self-contained program in the engine's JS
    subset: top-level setup code plus a [bench()] function that performs
    one iteration and returns a deterministic checksum. *)

type category =
  | Math
  | Crypto
  | String_ops
  | Regex_ops
  | Parse
  | Objects
  | Sparse

type benchmark = {
  id : string;
  category : category;
  description : string;
  source : string;
}

val all : benchmark list
val by_id : string -> benchmark option
val by_category : category -> benchmark list
val categories : category list
val category_name : category -> string

val smi_kernels : string list
(** The SMI-heavy subset used for the ISA-extension experiments
    (paper Fig 13/14): SPMV, MMUL, IM2COL, SPMM, BLUR, AES2, HASH, DP. *)
