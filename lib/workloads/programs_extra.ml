(* Additional JetStream2-flavored benchmarks rounding out the suite:
   more math, string and object workloads so each category aggregates
   over several programs (the paper's suite has 51). *)

let tridiag = {|
// Thomas algorithm for a tridiagonal system (floats).
var TN = 48;
var ta = []; var tb = []; var tc = []; var td = [];
var cp = []; var dp = []; var xs = [];
(function() {
  for (var i = 0; i < TN; i++) {
    ta.push(i == 0 ? 0.0 : -1.0);
    tb.push(4.0 + (i % 3) * 0.5);
    tc.push(i == TN - 1 ? 0.0 : -1.0);
    td.push(1.0 + (i % 7) * 0.25);
    cp.push(0.0); dp.push(0.0); xs.push(0.0);
  }
})();
function solve() {
  cp[0] = tc[0] / tb[0];
  dp[0] = td[0] / tb[0];
  for (var i = 1; i < TN; i++) {
    var m = tb[i] - ta[i] * cp[i - 1];
    cp[i] = tc[i] / m;
    dp[i] = (td[i] - ta[i] * dp[i - 1]) / m;
  }
  xs[TN - 1] = dp[TN - 1];
  for (var j = TN - 2; j >= 0; j--) {
    xs[j] = dp[j] - cp[j] * xs[j + 1];
  }
}
function bench() {
  solve();
  var chk = 0.0;
  for (var i = 0; i < TN; i++) chk = chk + xs[i] * (i + 1);
  return Math.floor(chk * 10000);
}
|}

let kmeans = {|
// One k-means assignment+update step in 2D (floats + int indices).
var KP = 60; var KC = 4;
var px = []; var py = []; var cx = []; var cy = []; var assign = [];
(function() {
  var s = 11;
  for (var i = 0; i < KP; i++) {
    s = (s * 131 + 7) % 1021;
    px.push(s * 0.01);
    s = (s * 131 + 7) % 1021;
    py.push(s * 0.01);
    assign.push(0);
  }
  for (var c = 0; c < KC; c++) { cx.push(c * 2.5); cy.push(10.0 - c * 2.5); }
})();
function step() {
  for (var i = 0; i < KP; i++) {
    var best = 0;
    var bestd = 1e18;
    for (var c = 0; c < KC; c++) {
      var dx = px[i] - cx[c];
      var dy = py[i] - cy[c];
      var d = dx * dx + dy * dy;
      if (d < bestd) { bestd = d; best = c; }
    }
    assign[i] = best;
  }
  for (var c2 = 0; c2 < KC; c2++) {
    var sx = 0.0; var sy = 0.0; var n = 0;
    for (var j = 0; j < KP; j++) {
      if (assign[j] == c2) { sx = sx + px[j]; sy = sy + py[j]; n = n + 1; }
    }
    if (n > 0) { cx[c2] = sx / n; cy[c2] = sy / n; }
  }
}
function bench() {
  step();
  var chk = 0;
  for (var i = 0; i < KP; i++) chk = (chk + assign[i] * (i + 3)) % 100003;
  return chk;
}
|}

let editdist = {|
// Levenshtein distance over short words (string + 2D-as-1D array).
var words = [];
(function() {
  var base = ["kitten", "sitting", "flaw", "lawn", "intention", "execution",
              "saturday", "sunday"];
  for (var i = 0; i < base.length; i++) words.push(base[i]);
})();
var dmat = [];
(function() { for (var i = 0; i < 400; i++) dmat.push(0); })();
function lev(a, b) {
  var n = a.length; var m = b.length;
  var w = m + 1;
  for (var j = 0; j <= m; j++) dmat[j] = j;
  for (var i = 1; i <= n; i++) {
    dmat[i * w] = i;
    for (var j2 = 1; j2 <= m; j2++) {
      var cost = a.charCodeAt(i - 1) == b.charCodeAt(j2 - 1) ? 0 : 1;
      var del = dmat[(i - 1) * w + j2] + 1;
      var ins = dmat[i * w + j2 - 1] + 1;
      var sub = dmat[(i - 1) * w + j2 - 1] + cost;
      var best = del;
      if (ins < best) best = ins;
      if (sub < best) best = sub;
      dmat[i * w + j2] = best;
    }
  }
  return dmat[n * w + m];
}
function bench() {
  var chk = 0;
  for (var i = 0; i + 1 < words.length; i = i + 2) {
    chk = (chk + lev(words[i], words[i + 1]) * (i + 1)) % 100003;
  }
  return chk;
}
|}

let linklist = {|
// Singly-linked-list churn: build, reverse, sum (pointer-heavy objects).
function Cons(v, next) { this.v = v; this.next = next; }
function build(n) {
  var head = null;
  for (var i = 0; i < n; i++) head = new Cons((i * 7) % 97, head);
  return head;
}
function reverse(list) {
  var out = null;
  while (list != null) {
    out = new Cons(list.v, out);
    list = list.next;
  }
  return out;
}
function total(list) {
  var s = 0;
  while (list != null) { s = s + list.v; list = list.next; }
  return s;
}
function bench() {
  var l = build(80);
  var r = reverse(l);
  return total(l) * 3 + total(r);
}
|}

let statemach = {|
// Table-driven state machine over a string (keyed loads + charCodeAt).
var trans = [];
(function() {
  // 8 states x 4 input classes.
  for (var i = 0; i < 32; i++) trans.push((i * 5 + 3) % 8);
})();
var tape = "";
(function() {
  var s = 3;
  var alpha = "abcd";
  for (var i = 0; i < 160; i++) {
    s = (s * 131 + 17) % 1021;
    tape = tape + alpha.charAt(s % 4);
  }
})();
function run() {
  var state = 0;
  var visits = 0;
  for (var i = 0; i < tape.length; i++) {
    var cls = tape.charCodeAt(i) - 97;
    state = trans[state * 4 + cls];
    if (state == 5) visits = visits + 1;
  }
  return state * 1000 + visits;
}
function bench() { return run(); }
|}

let ini_parse = {|
// INI-style key=value parser (string scanning + object population).
var ini = "";
(function() {
  for (var s = 0; s < 4; s++) {
    ini = ini + "[section" + s + "]\n";
    for (var k = 0; k < 5; k++) {
      ini = ini + "key" + k + "=" + (s * 17 + k * 3) + "\n";
    }
  }
})();
function parse(text) {
  var lines = text.split("\n");
  var sections = [];
  var current = null;
  for (var i = 0; i < lines.length; i++) {
    var line = lines[i];
    if (line.length == 0) continue;
    if (line.charAt(0) == "[") {
      current = { name: line.substring(1, line.length - 1), count: 0, sum: 0 };
      sections.push(current);
    } else {
      var eq = line.indexOf("=");
      if (eq > 0 && current != null) {
        current.count = current.count + 1;
        current.sum = current.sum + parseInt(line.substring(eq + 1, line.length), 10);
      }
    }
  }
  return sections;
}
function bench() {
  var secs = parse(ini);
  var chk = 0;
  for (var i = 0; i < secs.length; i++) {
    chk = (chk + secs[i].sum * (i + 1) + secs[i].count + secs[i].name.length) % 100003;
  }
  return chk;
}
|}

let all_math = [
  ("TRIDIAG", "Thomas algorithm on a tridiagonal system", tridiag);
  ("KMEANS", "k-means assignment/update step", kmeans);
]

let all_string = [ ("EDIST", "Levenshtein distance over words", editdist) ]

let all_objects = [
  ("LIST", "linked-list build/reverse/sum churn", linklist);
  ("FSM", "table-driven state machine over a string", statemach);
]

let all_parse = [ ("INI", "INI-style key=value parser", ini_parse) ]
