(* Cryptography benchmarks: bit-mixing rounds, table-based AES-like
   substitution, and string hashing — the paper's CRYP/AES2/HASH
   analogs.  These are overflow-check and SMI-heavy. *)

let cryp = {|
// SHA1-style word mixing over a message schedule (bitops on SMIs,
// values kept in 24-bit range so overflow checks rarely fire).
var w = [];
(function() { for (var i = 0; i < 80; i++) w.push((i * 0x9E37) & 0xFFFFFF); })();
function rotl(x, n) { return ((x << n) | (x >>> (24 - n))) & 0xFFFFFF; }
function rounds() {
  for (var i = 16; i < 80; i++) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  var a = 0x674523; var b = 0xEFCDAB; var c = 0x98BADC; var d = 0x103254; var e = 0xC3D2E1;
  for (var t = 0; t < 80; t++) {
    var f = 0;
    if (t < 20) f = (b & c) | ((~b) & d);
    else if (t < 40) f = b ^ c ^ d;
    else if (t < 60) f = (b & c) | (b & d) | (c & d);
    else f = b ^ c ^ d;
    var tmp = (rotl(a, 5) + f + e + w[t] + 0x5A8279) & 0xFFFFFF;
    e = d; d = c; c = rotl(b, 6); b = a; a = tmp;
  }
  return (a + b + c + d + e) & 0xFFFFFF;
}
function bench() {
  var chk = 0;
  for (var r = 0; r < 4; r++) chk = (chk ^ rounds()) & 0xFFFFFF;
  return chk;
}
|}

let aes2 = {|
// AES-like SubBytes/ShiftRows/AddRoundKey on a 16-byte state with a
// computed S-box (table lookups: keyed loads with SMI indices).
var sbox = [];
(function() {
  for (var i = 0; i < 256; i++) sbox.push(((i * 7 + 99) ^ (i >> 3)) & 0xFF);
})();
var state = [];
var key = [];
(function() {
  for (var i = 0; i < 16; i++) { state.push((i * 17) & 0xFF); key.push((i * 29 + 5) & 0xFF); }
})();
function round() {
  for (var i = 0; i < 16; i++) state[i] = sbox[state[i]];
  var t1 = state[1]; state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t1;
  var t2 = state[2]; state[2] = state[10]; state[10] = t2;
  var t6 = state[6]; state[6] = state[14]; state[14] = t6;
  var t3 = state[3]; state[3] = state[15]; state[15] = state[11]; state[11] = state[7]; state[7] = t3;
  for (var j = 0; j < 16; j++) state[j] = (state[j] ^ key[j]) & 0xFF;
}
function bench() {
  for (var r = 0; r < 60; r++) round();
  var chk = 0;
  for (var i = 0; i < 16; i++) chk = (chk * 31 + state[i]) % 1000003;
  return chk;
}
|}

let hash = {|
// djb2/FNV-style hashing of strings (paper: HASH).
var words = [];
(function() {
  var base = "abcdefghijklmnopqrstuvwxyz";
  for (var i = 0; i < 24; i++) {
    words.push(base.substring(i % 13, 13 + (i % 13)) + i);
  }
})();
function djb2(s) {
  var h = 5381;
  for (var i = 0; i < s.length; i++) h = ((h * 33) + s.charCodeAt(i)) & 0xFFFFFF;
  return h;
}
function fnv(s) {
  var h = 0x811C9D;
  for (var i = 0; i < s.length; i++) h = ((h ^ s.charCodeAt(i)) * 0x193) & 0xFFFFFF;
  return h;
}
function bench() {
  var chk = 0;
  for (var i = 0; i < words.length; i++) {
    chk = (chk + djb2(words[i]) + fnv(words[i])) & 0xFFFFFF;
  }
  return chk;
}
|}

let chacha_ish = {|
// ChaCha-style quarter rounds on a 16-word SMI state (24-bit lanes).
var st = [];
(function() { for (var i = 0; i < 16; i++) st.push((i * 0x1357 + 11) & 0xFFFFFF); })();
function rot(x, n) { return ((x << n) | (x >>> (24 - n))) & 0xFFFFFF; }
function quarter(a, b, c, d) {
  st[a] = (st[a] + st[b]) & 0xFFFFFF; st[d] = rot(st[d] ^ st[a], 13);
  st[c] = (st[c] + st[d]) & 0xFFFFFF; st[b] = rot(st[b] ^ st[c], 9);
  st[a] = (st[a] + st[b]) & 0xFFFFFF; st[d] = rot(st[d] ^ st[a], 5);
  st[c] = (st[c] + st[d]) & 0xFFFFFF; st[b] = rot(st[b] ^ st[c], 3);
}
function bench() {
  for (var r = 0; r < 12; r++) {
    quarter(0, 4, 8, 12); quarter(1, 5, 9, 13);
    quarter(2, 6, 10, 14); quarter(3, 7, 11, 15);
    quarter(0, 5, 10, 15); quarter(1, 6, 11, 12);
    quarter(2, 7, 8, 13); quarter(3, 4, 9, 14);
  }
  var chk = 0;
  for (var i = 0; i < 16; i++) chk = (chk ^ st[i]) & 0xFFFFFF;
  return chk;
}
|}

let all =
  [
    ("CRYP", "SHA1-style word mixing rounds", cryp);
    ("AES2", "AES-like substitution rounds (table lookups)", aes2);
    ("HASH", "djb2 + FNV string hashing", hash);
    ("CHA", "ChaCha-style quarter rounds", chacha_ish);
  ]
