type category = Math | Crypto | String_ops | Regex_ops | Parse | Objects | Sparse

type benchmark = {
  id : string;
  category : category;
  description : string;
  source : string;
}

let categories = [ Math; Crypto; String_ops; Regex_ops; Parse; Objects; Sparse ]

let category_name = function
  | Math -> "math"
  | Crypto -> "crypto"
  | String_ops -> "string"
  | Regex_ops -> "regex"
  | Parse -> "parse"
  | Objects -> "objects"
  | Sparse -> "sparse"

let of_list category entries =
  List.map
    (fun (id, description, source) -> { id; category; description; source })
    entries

let all =
  of_list Math (Programs_math.all @ Programs_extra.all_math)
  @ of_list Crypto Programs_crypto.all
  @ of_list String_ops (Programs_string.all @ Programs_extra.all_string)
  @ of_list Regex_ops Programs_parse.all_regex
  @ of_list Parse (Programs_parse.all_parse @ Programs_extra.all_parse)
  @ of_list Objects (Programs_objects.all @ Programs_extra.all_objects)
  @ of_list Sparse Programs_sparse.all

let by_id id = List.find_opt (fun b -> b.id = id) all

let by_category c = List.filter (fun b -> b.category = c) all

let smi_kernels =
  [ "SPMV-CSR-SMI"; "MMUL"; "IM2COL"; "SPMM"; "BLUR"; "AES2"; "HASH"; "DP" ]
