let flowchart =
  {|
   JavaScript source
        |
        v  (parser)
   +-----------+   type feedback    +--------------------------+
   | bytecode  | -----------------> | TurboFan-style optimizer |
   +-----------+                    |  graph IR (+ checks)     |
        |                           |  reductions, DCE         |
        v                           |  regalloc, codegen       |
   interpreter  <---- deopt ------  +--------------------------+
   (Ignition)        (bailout)            |
        |                                 v
        |                           machine code on the
        +----- hot-function ---->   simulated CPU (X64 / ARM64
              tier-up               / ARM64+jsldrsmi)
|}

let sample_source =
  {|
function dot(a, b, n) {
  var s = 0;
  for (var i = 0; i < n; i++) s = s + a[i] * b[i];
  return s;
}
var xs = [1, 2, 3, 4, 5, 6, 7, 8];
function bench() { return dot(xs, xs, 8) % 16777213; }
|}

let fig2 () =
  Support.Table.section "Fig 2: compilation pipeline and code representations";
  print_string flowchart;
  Common.degraded "fig2" @@ fun () ->
  let config = Common.config_for ~arch:Arch.Arm64 ~seed:1 Common.V_normal in
  let eng = Engine.create config sample_source in
  Harness.watchdog eng ~calls:21;
  let _ = Engine.run_main eng in
  for _ = 1 to 20 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let rt = Engine.runtime eng in
  let h = rt.Runtime.heap in
  let v = Heap.cell_value h (Heap.global_cell h "dot") in
  if Heap.is_function h v then begin
    let fid = Heap.function_id_of h v in
    let f = Runtime.func rt fid in
    print_endline "\n=== representation 1: bytecode (interpreter tier) ===";
    print_string (Bytecode.disassemble f.Runtime.info);
    print_endline "=== representation 2: optimizer graph IR ===";
    (match Engine.graph_of_fid eng fid with
    | Some g -> print_string (Turbofan.Son.to_string g)
    | None -> print_endline "(not compiled)");
    print_endline "=== representation 3: machine code ===";
    match Engine.code_of_fid eng fid with
    | Some code -> print_string (Code.listing code)
    | None -> print_endline "(not compiled)"
  end
