(** ISA-extension experiments (paper Section V).

    - [fig11]: code listings of the SMI dot-product kernel on plain
      ARM64 and with [jsldrsmi] — fused loads, fewer explicit checks,
      the [REG_BA] bailout prologue.
    - [fig12]: the load-unit datapath semantics, demonstrated by
      executing the fused instruction on both check outcomes.
    - [fig13]: speedups of the extended ISA on the SMI-heavy kernels
      across the four detailed CPU models (paper: mean ~3 %, up to
      ~10 %, ~4 % fewer retired instructions).
    - [fig14]: execution-time distributions (quartiles over repetitions)
      for default vs extended ISA. *)

val fig11 : unit -> unit
val fig12 : unit -> unit
val fig13 : unit -> unit
val fig14 : unit -> unit
