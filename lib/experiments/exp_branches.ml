let pct_change a b = if a = 0.0 then 0.0 else 100.0 *. ((b -. a) /. a)

let fig10 () =
  Plan.run
    (List.concat_map
       (fun arch ->
         List.concat_map
           (fun b ->
             [ Plan.calibration_cell ~arch b;
               Plan.cell ~arch ~seed:1 Common.V_normal b;
               Plan.cell ~arch ~seed:1 Common.V_no_branches b ])
           (Common.suite ()))
       [ Arch.X64; Arch.Arm64 ]);
  Support.Table.section
    "Fig 10: relative change of HW metrics after removing only check branches";
  List.iter
    (fun arch ->
      let t =
        Support.Table.create
          ~title:(Printf.sprintf "%s (negative = reduction)" (Arch.name arch))
          ~columns:
            [ "category"; "instructions"; "branches"; "mispredicts"; "cycles";
              "frontend-stall share"; "speedup" ]
      in
      List.iter
        (fun cat ->
          let benches =
            List.filter
              (fun (b : Workloads.Suite.benchmark) ->
                b.Workloads.Suite.category = cat)
              (Common.suite ())
          in
          if benches <> [] then begin
            let acc = Array.make 6 0.0 in
            let used = ref 0 in
            List.iter
              (fun b ->
                try
                (* Branch removal is only meaningful when no check would
                   have fired AND the checksum is intact: a divergent
                   run can be arbitrarily (and meaninglessly) fast. *)
                let _, fired = Common.removable_groups ~arch b in
                let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
                let r2 = Common.run_cached ~arch ~seed:1 Common.V_no_branches b in
                let intact =
                  fired = [] && r1.Harness.error = None
                  && r2.Harness.error = None
                  && r1.Harness.checksum = r2.Harness.checksum
                in
                if intact then begin
                incr used;
                let c1 = r1.Harness.counters and c2 = r2.Harness.counters in
                let fi = float_of_int in
                acc.(0) <-
                  acc.(0)
                  +. pct_change (fi c1.Perf.instructions) (fi c2.Perf.instructions);
                acc.(1) <-
                  acc.(1) +. pct_change (fi c1.Perf.branches) (fi c2.Perf.branches);
                acc.(2) <-
                  acc.(2)
                  +. pct_change (fi c1.Perf.mispredicts) (fi c2.Perf.mispredicts);
                acc.(3) <-
                  acc.(3)
                  +. pct_change r1.Harness.total_cycles r2.Harness.total_cycles;
                let share r =
                  r.Harness.counters.Perf.frontend_stall /. r.Harness.total_cycles
                in
                acc.(4) <- acc.(4) +. (100.0 *. (share r2 -. share r1));
                acc.(5) <-
                  acc.(5) +. (r1.Harness.total_cycles /. r2.Harness.total_cycles)
                end
                with Support.Fault.Fault _ ->
                  (* Failed cells count like diverged ones: excluded. *)
                  ())
              benches;
            let n = float_of_int (max 1 !used) in
            Support.Table.add_row t
              [ Workloads.Suite.category_name cat;
                Printf.sprintf "%+.1f%%" (acc.(0) /. n);
                Printf.sprintf "%+.1f%%" (acc.(1) /. n);
                Printf.sprintf "%+.1f%%" (acc.(2) /. n);
                Printf.sprintf "%+.1f%%" (acc.(3) /. n);
                Printf.sprintf "%+.1f pp" (acc.(4) /. n);
                Support.Table.fmt_speedup (acc.(5) /. n) ]
          end)
        Workloads.Suite.categories;
      Support.Table.print t)
    [ Arch.X64; Arch.Arm64 ];
  print_endline
    "(paper: ~-5% instructions, ~-20% branches, only -2..-5% mispredicts,\n\
    \ 1-2% speedup; on X64 frontend-stall share increases.  Benchmarks\n\
    \ whose checks fire, or whose checksum diverges without the deopt\n\
    \ branches, are excluded -- removal would change their behavior.)"
