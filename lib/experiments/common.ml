type variant =
  | V_normal
  | V_no_checks of Insn.check_group list
  | V_no_branches
  | V_interp_only
  | V_smi_ext
  | V_trust_elements
  | V_turboprop

let variant_name = function
  | V_normal -> "normal"
  | V_no_checks gs ->
    "no-checks:"
    ^ String.concat "+" (List.map Insn.group_name gs)
  | V_no_branches -> "no-branches"
  | V_interp_only -> "interp"
  | V_smi_ext -> "smi-ext"
  | V_trust_elements -> "trust-elements"
  | V_turboprop -> "turboprop"

let config_for ?cpu ~arch ~seed variant =
  let base = Engine.default_config ~arch () in
  let base =
    match cpu with Some c -> { base with Engine.cpu = c } | None -> base
  in
  let base = { base with Engine.seed } in
  match variant with
  | V_normal -> base
  | V_no_checks groups ->
    { base with
      Engine.checks = { Engine.disabled_groups = groups; remove_branches = false } }
  | V_no_branches ->
    { base with
      Engine.checks = { Engine.disabled_groups = []; remove_branches = true } }
  | V_interp_only -> { base with Engine.enable_optimizer = false }
  | V_smi_ext -> { base with Engine.arch = Arch.Arm64_smi_ext }
  | V_trust_elements -> { base with Engine.trust_elements_kind = true }
  | V_turboprop -> { base with Engine.turboprop = true }

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i when i > 0 -> i | _ -> default)
  | None -> default

let iterations () = env_int "VSPEC_ITERS" 200
let repetitions () = env_int "VSPEC_REPS" 5

let cache : (string, Harness.result) Hashtbl.t = Hashtbl.create 64

let run_cached ?cpu ?iterations:iters ~arch ~seed variant bench =
  let iters = match iters with Some i -> i | None -> iterations () in
  let cpu_name =
    match cpu with Some c -> c.Cpu.cfg_name | None -> "default"
  in
  let key =
    Printf.sprintf "%s|%s|%s|%d|%d|%s" bench.Workloads.Suite.id
      (Arch.name arch) (variant_name variant) seed iters cpu_name
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let config = config_for ?cpu ~arch ~seed variant in
    let r = Harness.run ~iterations:iters ~config bench in
    Hashtbl.replace cache key r;
    r

let calib_cache : (string, Insn.check_group list * Insn.check_group list) Hashtbl.t =
  Hashtbl.create 64

let removable_groups ~arch bench =
  let key = bench.Workloads.Suite.id ^ "|" ^ Arch.name arch in
  match Hashtbl.find_opt calib_cache key with
  | Some r -> r
  | None ->
    let config = config_for ~arch ~seed:1 V_normal in
    let r = Harness.calibrate_removable ~iterations:60 ~config bench in
    Hashtbl.replace calib_cache key r;
    r

let ref_cache : (string, float) Hashtbl.t = Hashtbl.create 64

let reference_checksum bench =
  match Hashtbl.find_opt ref_cache bench.Workloads.Suite.id with
  | Some v -> v
  | None ->
    let r =
      run_cached ~iterations:3 ~arch:Arch.Arm64 ~seed:1 V_interp_only bench
    in
    Hashtbl.replace ref_cache bench.Workloads.Suite.id r.Harness.checksum;
    r.Harness.checksum

let suite () =
  match Sys.getenv_opt "VSPEC_BENCH" with
  | None | Some "" -> Workloads.Suite.all
  | Some ids ->
    let wanted = String.split_on_char ',' ids in
    List.filter
      (fun (b : Workloads.Suite.benchmark) ->
        List.mem b.Workloads.Suite.id wanted)
      Workloads.Suite.all
