type variant =
  | V_normal
  | V_no_checks of Insn.check_group list
  | V_no_branches
  | V_interp_only
  | V_baseline
  | V_smi_ext
  | V_trust_elements
  | V_turboprop
  | V_fuse_maps

let variant_name = function
  | V_normal -> "normal"
  | V_no_checks gs ->
    "no-checks:"
    ^ String.concat "+" (List.map Insn.group_name gs)
  | V_no_branches -> "no-branches"
  | V_interp_only -> "interp"
  | V_baseline -> "baseline"
  | V_smi_ext -> "smi-ext"
  | V_trust_elements -> "trust-elements"
  | V_turboprop -> "turboprop"
  | V_fuse_maps -> "fuse-maps"

let config_for ?cpu ~arch ~seed variant =
  let base = Engine.default_config ~arch () in
  let base =
    match cpu with Some c -> { base with Engine.cpu = c } | None -> base
  in
  let base = { base with Engine.seed } in
  match variant with
  | V_normal -> base
  | V_no_checks groups ->
    { base with
      Engine.checks = { Engine.disabled_groups = groups; remove_branches = false } }
  | V_no_branches ->
    { base with
      Engine.checks = { Engine.disabled_groups = []; remove_branches = true } }
  | V_interp_only -> { base with Engine.enable_optimizer = false }
  | V_baseline ->
    { base with Engine.enable_optimizer = false; enable_baseline = true }
  | V_smi_ext -> { base with Engine.arch = Arch.Arm64_smi_ext }
  | V_trust_elements -> { base with Engine.trust_elements_kind = true }
  | V_turboprop -> { base with Engine.turboprop = true }
  | V_fuse_maps ->
    { base with Engine.arch = Arch.Arm64_smi_ext; fuse_map_checks = true }

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i when i > 0 -> i | _ -> default)
  | None -> default

let iterations () = env_int "VSPEC_ITERS" 200
let repetitions () = env_int "VSPEC_REPS" 5

(* ------------------------------------------------------------------ *)
(* Persistent on-disk result cache                                     *)
(* ------------------------------------------------------------------ *)

(* Results are keyed by a digest of benchmark id + source + the full
   engine config + iteration count + [cache_version].  Bump
   [cache_version] whenever simulation semantics change (engine,
   machine model, harness measurement) so stale entries can never leak
   into new runs; changing VSPEC_ITERS / seeds / variants changes the
   key by construction. *)
let cache_version = "vspec-cache-v1"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Probe the directory for real writability rather than trusting mode
   bits: overlay mounts, read-only bind mounts and mid-path regular
   files all fail here in ways [Unix.access] can misreport. *)
let resolve_cache_dir dir =
  match
    mkdir_p dir;
    Sys.is_directory dir
  with
  | exception Unix.Unix_error (e, _, _) ->
    ( None,
      Some
        (Printf.sprintf "cannot create cache dir %S (%s); caching disabled"
           dir (Unix.error_message e)) )
  | exception Sys_error msg ->
    (None, Some (Printf.sprintf "cache dir %S: %s; caching disabled" dir msg))
  | false ->
    ( None,
      Some
        (Printf.sprintf "cache path %S is not a directory; caching disabled"
           dir) )
  | true -> (
    let probe =
      Filename.concat dir (Printf.sprintf ".probe.%d" (Unix.getpid ()))
    in
    match open_out_bin probe with
    | exception Sys_error msg ->
      ( None,
        Some
          (Printf.sprintf "cache dir %S is not writable (%s); caching disabled"
             dir msg) )
    | oc ->
      close_out_noerr oc;
      (try Sys.remove probe with Sys_error _ -> ());
      (Some dir, None))

(* The resolved cache directory is memoized per VSPEC_CACHE_DIR value
   (not once per process) so tests can repoint it; an unusable
   directory degrades to cache-off with a single warning per value
   rather than aborting the suite. *)
let disk_dir_mu = Mutex.create ()
let disk_dir_cache : (string, string option) Hashtbl.t = Hashtbl.create 4

let disk_dir () =
  let env = Sys.getenv_opt "VSPEC_CACHE_DIR" in
  let key = match env with Some v -> "env:" ^ v | None -> "<unset>" in
  Mutex.lock disk_dir_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock disk_dir_mu)
    (fun () ->
      match Hashtbl.find_opt disk_dir_cache key with
      | Some dir -> dir
      | None ->
        let dir, warning =
          match env with
          | Some ("" | "off" | "none" | "0") -> (None, None)
          | Some dir -> resolve_cache_dir dir
          | None ->
            (* Default next to the build artifacts when run from the
               project root; disabled elsewhere (e.g. sandboxed test
               runs). *)
            if (try Sys.is_directory "_build" with Sys_error _ -> false)
            then resolve_cache_dir (Filename.concat "_build" ".vspec-cache")
            else (None, None)
        in
        (match warning with
        | Some w -> Printf.eprintf "vspec: warning: %s\n%!" w
        | None -> ());
        Hashtbl.add disk_dir_cache key dir;
        dir)

let digest_key ~kind ~(config : Engine.config) ~iters
    (bench : Workloads.Suite.benchmark) =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ cache_version; kind; bench.Workloads.Suite.id;
            bench.Workloads.Suite.source;
            Marshal.to_string config [];
            string_of_int iters ]))

let disk_path ~kind ~config ~iters bench =
  match disk_dir () with
  | None -> None
  | Some dir ->
    Some (Filename.concat dir (digest_key ~kind ~config ~iters bench ^ ".bin"))

(* A cache entry that fails to unmarshal is moved aside as
   [<digest>.corrupt] so the next run does not trip over it again; the
   event lands in the ledger as a recovered note. *)
let quarantine path reason =
  let dst =
    (if Filename.check_suffix path ".bin" then Filename.chop_suffix path ".bin"
     else path)
    ^ ".corrupt"
  in
  (* A concurrent process may have renamed or replaced it already;
     losing that race is fine. *)
  (try Sys.rename path dst with Sys_error _ -> ());
  Trace.instant_wall ~cat:"support" ~arg:path "cache:quarantine";
  Support.Fault.Ledger.note ~cell:path
    (Support.Fault.Cache_corrupt { path; reason })

(* Cross-process safety: loads tolerate missing/corrupt files (they
   just recompute); stores write to a pid-unique temp file and rename,
   so concurrent writers of the same key atomically race to an intact
   file.  Only the exceptions a damaged file can actually produce are
   treated as corruption ([End_of_file], [Failure] from Marshal,
   [Sys_error] from open) — anything else (Out_of_memory,
   Stack_overflow, Fault) must propagate. *)
let disk_load : 'a. kind:string -> config:Engine.config -> iters:int ->
    attempt:int -> Workloads.Suite.benchmark -> 'a option =
 fun ~kind ~config ~iters ~attempt bench ->
  match disk_path ~kind ~config ~iters bench with
  | None -> None
  | Some path ->
    if !Trace.on then begin
      (* A warm disk cache would satisfy every cell without simulating,
         leaving the trace empty of engine events; traced runs always
         simulate (and refresh the cache on the way out). *)
      Trace.instant_wall ~cat:"experiments" ~arg:path "cache:bypass";
      None
    end
    else if not (Sys.file_exists path) then None
    else begin
      match
        Support.Fault.Inject.fires ~site:Support.Fault.Inject.Cache_read
          ~key:path ~attempt
      with
      | Some err ->
        (* An injected read fault is handled like a corrupt entry —
           note it and recompute — except the (healthy) file stays. *)
        Support.Fault.Ledger.note ~cell:path err;
        None
      | None -> (
        match open_in_bin path with
        | exception Sys_error _ -> None
        | ic -> (
          match Marshal.from_channel ic with
          | v ->
            close_in_noerr ic;
            Trace.instant_wall ~cat:"experiments" ~arg:path "cache:hit";
            Some v
          | exception (End_of_file | Failure _) ->
            close_in_noerr ic;
            quarantine path "corrupt or truncated marshal payload";
            None))
    end

let disk_store ~kind ~config ~iters ~attempt bench v =
  match disk_path ~kind ~config ~iters bench with
  | None -> ()
  | Some path -> (
    match
      Support.Fault.Inject.fires ~site:Support.Fault.Inject.Cache_write
        ~key:path ~attempt
    with
    | Some err ->
      (* Persisting is best-effort; an injected write fault just skips
         it (the result is already computed and correct). *)
      Support.Fault.Ledger.note ~cell:path err
    | None -> (
      try
        let tmp =
          Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
            (Domain.self () :> int)
        in
        let oc = open_out_bin tmp in
        Marshal.to_channel oc v [];
        close_out oc;
        Sys.rename tmp path;
        Trace.instant_wall ~cat:"experiments" ~arg:path "cache:store"
      with Sys_error _ -> ()))

(* ------------------------------------------------------------------ *)
(* Domain-safe memo tables                                             *)
(* ------------------------------------------------------------------ *)

let cache : (string, Harness.result) Support.Pool.Memo.t =
  Support.Pool.Memo.create 64

let calib_cache :
    (string, Insn.check_group list * Insn.check_group list) Support.Pool.Memo.t =
  Support.Pool.Memo.create 64

let ref_cache : (string, float) Support.Pool.Memo.t = Support.Pool.Memo.create 64

let simulations = Atomic.make 0
let disk_hits = Atomic.make 0

let cache_stats () = (Atomic.get simulations, Atomic.get disk_hits)

(* Negative cache: a cell that permanently failed fails fast on every
   later read instead of re-running its (deterministically failing)
   simulation; the single entry also makes ledger recording
   idempotent.  Cleared with the memo tables. *)
let failed_mu = Mutex.create ()
let failed : (string, Support.Fault.error * int) Hashtbl.t = Hashtbl.create 16

let record_failure key err attempts =
  Mutex.lock failed_mu;
  let fresh = not (Hashtbl.mem failed key) in
  if fresh then Hashtbl.add failed key (err, attempts);
  Mutex.unlock failed_mu;
  if fresh then begin
    if !Trace.on then
      Trace.instant_wall ~cat:"support"
        ~arg:
          (Printf.sprintf "%s cell=%s attempts=%d" (Support.Fault.class_name err)
             key attempts)
        "fault";
    Support.Fault.Ledger.record ~attempts ~cell:key err
  end

let failure_for key =
  Mutex.lock failed_mu;
  let r = Hashtbl.find_opt failed key in
  Mutex.unlock failed_mu;
  r

let clear_memo () =
  Support.Pool.Memo.clear cache;
  Support.Pool.Memo.clear calib_cache;
  Support.Pool.Memo.clear ref_cache;
  Mutex.lock failed_mu;
  Hashtbl.reset failed;
  Mutex.unlock failed_mu;
  Atomic.set simulations 0;
  Atomic.set disk_hits 0

(* ------------------------------------------------------------------ *)
(* Guarded cell execution                                              *)
(* ------------------------------------------------------------------ *)

let verify_enabled =
  lazy
    (match Sys.getenv_opt "VSPEC_VERIFY" with
    | Some ("1" | "on" | "true" | "yes") -> true
    | _ -> false)

(* [run_result] is the one entry point that actually simulates: it
   checks the negative cache, then computes under single-flight memo
   semantics with the full containment stack — fault injection at the
   [sim] site, bounded retries for transient classes, optional checksum
   verification, ledger recording.  A producer that fails records the
   failure *before* raising so the memo waiters that get promoted find
   the negative-cache entry and fail fast instead of re-simulating. *)
let rec run_result ?cpu ?iterations:iters ~arch ~seed variant bench =
  let iters = match iters with Some i -> i | None -> iterations () in
  let cpu_name =
    match cpu with Some c -> c.Cpu.cfg_name | None -> "default"
  in
  let key =
    Printf.sprintf "%s|%s|%s|%d|%d|%s" bench.Workloads.Suite.id
      (Arch.name arch) (variant_name variant) seed iters cpu_name
  in
  match failure_for key with
  | Some (err, _) -> Error err
  | None -> (
    try
      Ok
        (Support.Pool.Memo.find_or_compute cache key (fun () ->
             match failure_for key with
             | Some (err, _) -> raise (Support.Fault.Fault err)
             | None -> (
               let config = config_for ?cpu ~arch ~seed variant in
               match
                 Support.Fault.guard
                   ~inject:(Support.Fault.Inject.Sim, key)
                   (fun ~attempt ->
                     match disk_load ~kind:"run" ~config ~iters ~attempt bench with
                     | Some (r : Harness.result) ->
                       Atomic.incr disk_hits;
                       r
                     | None ->
                       Atomic.incr simulations;
                       let r = Harness.run ~iterations:iters ~config bench in
                       verify variant ~cell:key r bench;
                       disk_store ~kind:"run" ~config ~iters ~attempt bench r;
                       r)
               with
               | Ok r -> r
               | Error (err, attempts) ->
                 record_failure key err attempts;
                 raise (Support.Fault.Fault err))))
    with Support.Fault.Fault err ->
      record_failure key err 1;
      Error err)

(* Checksum verification (opt-in via VSPEC_VERIFY) compares a run
   against the interpreter-only reference.  Only configurations that
   preserve semantics are checkable — check-removal and
   element-trusting variants are *expected* to diverge (paper Fig 10),
   and the reference cell itself (V_interp_only) must never verify
   against itself or the memo producer would deadlock on re-entry. *)
and verify variant ~cell (r : Harness.result) bench =
  let checkable =
    match variant with
    | V_normal | V_baseline | V_turboprop -> true
    | V_no_checks _ | V_no_branches | V_interp_only | V_smi_ext
    | V_trust_elements | V_fuse_maps -> false
  in
  if checkable && Lazy.force verify_enabled && r.Harness.error = None then begin
    let expected = reference_checksum bench in
    let got = r.Harness.checksum in
    let same = (Float.is_nan expected && Float.is_nan got) || expected = got in
    if not same then
      raise
        (Support.Fault.Fault
           (Support.Fault.Checksum_mismatch { cell; expected; got }))
  end

and reference_checksum bench =
  Support.Pool.Memo.find_or_compute ref_cache bench.Workloads.Suite.id
    (fun () ->
      match
        run_result ~iterations:3 ~arch:Arch.Arm64 ~seed:1 V_interp_only bench
      with
      | Ok r -> r.Harness.checksum
      | Error err -> raise (Support.Fault.Fault err))

let run_cached ?cpu ?iterations ~arch ~seed variant bench =
  match run_result ?cpu ?iterations ~arch ~seed variant bench with
  | Ok r -> r
  | Error err -> raise (Support.Fault.Fault err)

let removable_groups_result ~arch bench =
  let key = bench.Workloads.Suite.id ^ "|" ^ Arch.name arch in
  match failure_for key with
  | Some (err, _) -> Error err
  | None -> (
    try
      Ok
        (Support.Pool.Memo.find_or_compute calib_cache key (fun () ->
             match failure_for key with
             | Some (err, _) -> raise (Support.Fault.Fault err)
             | None -> (
               let config = config_for ~arch ~seed:1 V_normal in
               let iters = 60 in
               match
                 Support.Fault.guard
                   ~inject:(Support.Fault.Inject.Sim, key)
                   (fun ~attempt ->
                     match
                       disk_load ~kind:"calib" ~config ~iters ~attempt bench
                     with
                     | Some
                         (r :
                           Insn.check_group list * Insn.check_group list) ->
                       Atomic.incr disk_hits;
                       r
                     | None ->
                       Atomic.incr simulations;
                       let r =
                         Harness.calibrate_removable ~iterations:iters ~config
                           bench
                       in
                       disk_store ~kind:"calib" ~config ~iters ~attempt bench r;
                       r)
               with
               | Ok r -> r
               | Error (err, attempts) ->
                 record_failure key err attempts;
                 raise (Support.Fault.Fault err))))
    with Support.Fault.Fault err ->
      record_failure key err 1;
      Error err)

let removable_groups ~arch bench =
  match removable_groups_result ~arch bench with
  | Ok r -> r
  | Error err -> raise (Support.Fault.Fault err)

(* Graceful degradation wrapper for figure drivers that touch the
   engine directly (outside run_cached): a fault degrades the figure —
   printed inline and ledgered — instead of killing the process. *)
let degraded name f =
  try f ()
  with Support.Fault.Fault err ->
    Printf.printf "  (%s degraded: %s)\n" name (Support.Fault.describe err);
    Support.Fault.Ledger.record ~cell:name err

let suite () =
  match Sys.getenv_opt "VSPEC_BENCH" with
  | None | Some "" -> Workloads.Suite.all
  | Some ids ->
    let wanted = String.split_on_char ',' ids in
    List.filter
      (fun (b : Workloads.Suite.benchmark) ->
        List.mem b.Workloads.Suite.id wanted)
      Workloads.Suite.all
