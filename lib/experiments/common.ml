type variant =
  | V_normal
  | V_no_checks of Insn.check_group list
  | V_no_branches
  | V_interp_only
  | V_baseline
  | V_smi_ext
  | V_trust_elements
  | V_turboprop
  | V_fuse_maps

let variant_name = function
  | V_normal -> "normal"
  | V_no_checks gs ->
    "no-checks:"
    ^ String.concat "+" (List.map Insn.group_name gs)
  | V_no_branches -> "no-branches"
  | V_interp_only -> "interp"
  | V_baseline -> "baseline"
  | V_smi_ext -> "smi-ext"
  | V_trust_elements -> "trust-elements"
  | V_turboprop -> "turboprop"
  | V_fuse_maps -> "fuse-maps"

let config_for ?cpu ~arch ~seed variant =
  let base = Engine.default_config ~arch () in
  let base =
    match cpu with Some c -> { base with Engine.cpu = c } | None -> base
  in
  let base = { base with Engine.seed } in
  match variant with
  | V_normal -> base
  | V_no_checks groups ->
    { base with
      Engine.checks = { Engine.disabled_groups = groups; remove_branches = false } }
  | V_no_branches ->
    { base with
      Engine.checks = { Engine.disabled_groups = []; remove_branches = true } }
  | V_interp_only -> { base with Engine.enable_optimizer = false }
  | V_baseline ->
    { base with Engine.enable_optimizer = false; enable_baseline = true }
  | V_smi_ext -> { base with Engine.arch = Arch.Arm64_smi_ext }
  | V_trust_elements -> { base with Engine.trust_elements_kind = true }
  | V_turboprop -> { base with Engine.turboprop = true }
  | V_fuse_maps ->
    { base with Engine.arch = Arch.Arm64_smi_ext; fuse_map_checks = true }

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i when i > 0 -> i | _ -> default)
  | None -> default

let iterations () = env_int "VSPEC_ITERS" 200
let repetitions () = env_int "VSPEC_REPS" 5

(* ------------------------------------------------------------------ *)
(* Persistent on-disk result cache                                     *)
(* ------------------------------------------------------------------ *)

(* Results are keyed by a digest of benchmark id + source + the full
   engine config + iteration count + [cache_version].  Bump
   [cache_version] whenever simulation semantics change (engine,
   machine model, harness measurement) so stale entries can never leak
   into new runs; changing VSPEC_ITERS / seeds / variants changes the
   key by construction. *)
let cache_version = "vspec-cache-v1"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let disk_dir =
  lazy
    (let resolve dir =
       try
         mkdir_p dir;
         if Sys.is_directory dir then Some dir else None
       with _ -> None
     in
     match Sys.getenv_opt "VSPEC_CACHE_DIR" with
     | Some ("" | "off" | "none" | "0") -> None
     | Some dir -> resolve dir
     | None ->
       (* Default next to the build artifacts when run from the project
          root; disabled elsewhere (e.g. sandboxed test runs). *)
       if (try Sys.is_directory "_build" with _ -> false) then
         resolve (Filename.concat "_build" ".vspec-cache")
       else None)

let digest_key ~kind ~(config : Engine.config) ~iters
    (bench : Workloads.Suite.benchmark) =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ cache_version; kind; bench.Workloads.Suite.id;
            bench.Workloads.Suite.source;
            Marshal.to_string config [];
            string_of_int iters ]))

let disk_path ~kind ~config ~iters bench =
  match Lazy.force disk_dir with
  | None -> None
  | Some dir ->
    Some (Filename.concat dir (digest_key ~kind ~config ~iters bench ^ ".bin"))

(* Cross-process safety: loads tolerate missing/corrupt files (they
   just recompute); stores write to a pid-unique temp file and rename,
   so concurrent writers of the same key atomically race to an intact
   file. *)
let disk_load : 'a. kind:string -> config:Engine.config -> iters:int ->
    Workloads.Suite.benchmark -> 'a option =
 fun ~kind ~config ~iters bench ->
  match disk_path ~kind ~config ~iters bench with
  | None -> None
  | Some path ->
    if not (Sys.file_exists path) then None
    else begin
      match open_in_bin path with
      | exception _ -> None
      | ic ->
        let v = try Some (Marshal.from_channel ic) with _ -> None in
        close_in_noerr ic;
        v
    end

let disk_store ~kind ~config ~iters bench v =
  match disk_path ~kind ~config ~iters bench with
  | None -> ()
  | Some path ->
    (try
       let tmp =
         Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
           (Domain.self () :> int)
       in
       let oc = open_out_bin tmp in
       Marshal.to_channel oc v [];
       close_out oc;
       Sys.rename tmp path
     with _ -> ())

(* ------------------------------------------------------------------ *)
(* Domain-safe memo tables                                             *)
(* ------------------------------------------------------------------ *)

let cache : (string, Harness.result) Support.Pool.Memo.t =
  Support.Pool.Memo.create 64

let calib_cache :
    (string, Insn.check_group list * Insn.check_group list) Support.Pool.Memo.t =
  Support.Pool.Memo.create 64

let ref_cache : (string, float) Support.Pool.Memo.t = Support.Pool.Memo.create 64

let simulations = Atomic.make 0
let disk_hits = Atomic.make 0

let cache_stats () = (Atomic.get simulations, Atomic.get disk_hits)

let clear_memo () =
  Support.Pool.Memo.clear cache;
  Support.Pool.Memo.clear calib_cache;
  Support.Pool.Memo.clear ref_cache;
  Atomic.set simulations 0;
  Atomic.set disk_hits 0

let run_cached ?cpu ?iterations:iters ~arch ~seed variant bench =
  let iters = match iters with Some i -> i | None -> iterations () in
  let cpu_name =
    match cpu with Some c -> c.Cpu.cfg_name | None -> "default"
  in
  let key =
    Printf.sprintf "%s|%s|%s|%d|%d|%s" bench.Workloads.Suite.id
      (Arch.name arch) (variant_name variant) seed iters cpu_name
  in
  Support.Pool.Memo.find_or_compute cache key (fun () ->
      let config = config_for ?cpu ~arch ~seed variant in
      match disk_load ~kind:"run" ~config ~iters bench with
      | Some (r : Harness.result) ->
        Atomic.incr disk_hits;
        r
      | None ->
        Atomic.incr simulations;
        let r = Harness.run ~iterations:iters ~config bench in
        disk_store ~kind:"run" ~config ~iters bench r;
        r)

let removable_groups ~arch bench =
  let key = bench.Workloads.Suite.id ^ "|" ^ Arch.name arch in
  Support.Pool.Memo.find_or_compute calib_cache key (fun () ->
      let config = config_for ~arch ~seed:1 V_normal in
      let iters = 60 in
      match disk_load ~kind:"calib" ~config ~iters bench with
      | Some (r : Insn.check_group list * Insn.check_group list) ->
        Atomic.incr disk_hits;
        r
      | None ->
        Atomic.incr simulations;
        let r = Harness.calibrate_removable ~iterations:iters ~config bench in
        disk_store ~kind:"calib" ~config ~iters bench r;
        r)

let reference_checksum bench =
  Support.Pool.Memo.find_or_compute ref_cache bench.Workloads.Suite.id
    (fun () ->
      let r =
        run_cached ~iterations:3 ~arch:Arch.Arm64 ~seed:1 V_interp_only bench
      in
      r.Harness.checksum)

let suite () =
  match Sys.getenv_opt "VSPEC_BENCH" with
  | None | Some "" -> Workloads.Suite.all
  | Some ids ->
    let wanted = String.split_on_char ',' ids in
    List.filter
      (fun (b : Workloads.Suite.benchmark) ->
        List.mem b.Workloads.Suite.id wanted)
      Workloads.Suite.all
