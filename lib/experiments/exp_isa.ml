let smi_benches () =
  List.filter
    (fun (b : Workloads.Suite.benchmark) ->
      List.mem b.Workloads.Suite.id Workloads.Suite.smi_kernels)
    (Common.suite ())

let gem5_iters () = max 30 (Common.iterations () / 3)

let fig11 () =
  Support.Table.section
    "Fig 11: SMI kernel code, default ARM64 vs jsldrsmi extension";
  match Workloads.Suite.by_id "DP" with
  | None -> print_endline "benchmark missing"
  | Some b ->
    Common.degraded "fig11" @@ fun () ->
    let listing arch =
      let config = Common.config_for ~arch ~seed:1 Common.V_normal in
      let eng = Engine.create config b.Workloads.Suite.source in
      Harness.watchdog eng ~calls:31;
      let _ = Engine.run_main eng in
      for _ = 1 to 30 do
        ignore (Engine.call_global eng "bench" [||])
      done;
      Engine.compile_now eng "dot"
    in
    (match (listing Arch.Arm64, listing Arch.Arm64_smi_ext) with
    | Ok c1, Ok c2 ->
      let stats (c : Code.t) =
        let branches = ref 0 and smi_loads = ref 0 in
        Array.iter
          (fun i ->
            match i.Insn.kind with
            | Insn.Bcond _ | Insn.Deopt_if _ | Insn.B _ -> incr branches
            | Insn.Js_ldr_smi _ -> incr smi_loads
            | _ -> ())
          c.Code.insns;
        (Code.real_instructions c, Code.static_check_instructions c, !branches, !smi_loads)
      in
      let i1, k1, br1, _ = stats c1 in
      let i2, k2, br2, f2 = stats c2 in
      Printf.printf "--- default ARM64: %d instructions, %d check instructions, %d branches\n"
        i1 k1 br1;
      print_string (Code.listing c1);
      Printf.printf
        "\n--- ARM64 + jsldrsmi: %d instructions, %d check instructions, %d branches, %d fused SMI loads\n"
        i2 k2 br2 f2;
      print_string (Code.listing c2)
    | Error m, _ | _, Error m -> print_endline ("compile failed: " ^ m))

let fig12 () =
  Support.Table.section "Fig 12: jsldrsmi load-unit datapath semantics";
  print_endline
    {|The fused load's data path (paper Fig 12), as implemented by the
machine executor (Exec.run, Js_ldr_smi case):

    word <- memory[base + index*scale + offset]
    parallel:
      untagged <- word >> 1          (untagging shift, in the load unit)
      fail     <- word & 1           (Not-a-SMI check)
    if fail:
      REG_PC <- pc of this load      (identifies the failed check)
      REG_RE <- reason code (1 = Not-a-SMI)
      commit triggers the bailout through the handler in REG_BA
    else:
      rd <- untagged

No explicit test or branch instruction is emitted; the prologue sets
REG_BA once per function (mov+msr, Fig 11).  The check costs no extra
latency: the shift and tag test happen alongside the cache access.|};
  (* Demonstrate both outcomes through the engine: an SMI-speculated
     load that encounters a heap number deoptimizes through REG_RE. *)
  let src =
    {|
function pick(a, i) { return a[i] + 1; }
var xs = [1, 2, 3, 4];
function bench() {
  var s = 0;
  for (var i = 0; i < 4; i++) s = s + pick(xs, i);
  return s;
}
|}
  in
  Common.degraded "fig12" @@ fun () ->
  let config = Common.config_for ~arch:Arch.Arm64 ~seed:1 Common.V_smi_ext in
  let eng = Engine.create config src in
  Harness.watchdog eng ~calls:24;
  let _ = Engine.run_main eng in
  for _ = 1 to 20 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let h = (Engine.runtime eng).Runtime.heap in
  let before = Engine.call_global eng "bench" [||] in
  (* Poison the array with a heap number: the fused load's check fails
     and execution bails out through REG_BA. *)
  let xs = Heap.cell_value h (Heap.global_cell h "xs") in
  Heap.array_set h xs 2 (Heap.alloc_heap_number h 3.0);
  let after = Engine.call_global eng "bench" [||] in
  Printf.printf
    "\nfast path result: %s; after poisoning xs[2] with a heap number: %s\n"
    (Conv.to_js_string h before) (Conv.to_js_string h after);
  List.iter
    (fun (r, n) -> Printf.printf "deopt %s: %d\n" (Insn.reason_name r) n)
    (Engine.deopt_counts eng)

(* The full (bench x cpu x rep x ISA) cell set behind fig13/fig14. *)
let isa_cells () =
  let iters = gem5_iters () in
  List.concat_map
    (fun b ->
      List.concat_map
        (fun cpu ->
          List.concat_map
            (fun rep ->
              let seed = 100 + rep in
              [ Plan.cell ~cpu ~iters ~arch:Arch.Arm64 ~seed Common.V_normal b;
                Plan.cell ~cpu ~iters ~arch:Arch.Arm64 ~seed Common.V_smi_ext b ])
            (List.init (Common.repetitions ()) Fun.id))
        Cpu.gem5_cpus)
    (smi_benches ())

(* Per (bench, cpu): arrays of per-rep total cycles for both ISAs and
   retired-instruction counts. *)
let isa_runs b cpu =
  let reps = Common.repetitions () in
  let iters = gem5_iters () in
  let base = Array.make reps 0.0 in
  let ext = Array.make reps 0.0 in
  let base_instr = ref 0 and ext_instr = ref 0 in
  for rep = 0 to reps - 1 do
    let seed = 100 + rep in
    let r1 =
      Common.run_cached ~cpu ~iterations:iters ~arch:Arch.Arm64 ~seed
        Common.V_normal b
    in
    let r2 =
      Common.run_cached ~cpu ~iterations:iters ~arch:Arch.Arm64 ~seed
        Common.V_smi_ext b
    in
    base.(rep) <- r1.Harness.total_cycles;
    ext.(rep) <- r2.Harness.total_cycles;
    base_instr := !base_instr + r1.Harness.counters.Perf.instructions;
    ext_instr := !ext_instr + r2.Harness.counters.Perf.instructions
  done;
  (base, ext, !base_instr, !ext_instr)

let fig13 () =
  Plan.run (isa_cells ());
  Support.Table.section
    "Fig 13: extended-ISA speedups on SMI kernels, per CPU model";
  let cpus = Cpu.gem5_cpus in
  let t =
    Support.Table.create
      ~title:"speedup of jsldrsmi over default ARM64 (total cycles)"
      ~columns:
        ("benchmark"
        :: List.map (fun (c : Cpu.config) -> c.Cpu.cfg_name) cpus
        @ [ "instr delta" ])
  in
  let all_speedups = ref [] in
  let instr_deltas = ref [] in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      (* Compute every cpu column before touching the accumulators so a
         failed cell cannot leave a half-filled row behind. *)
      match List.map (fun cpu -> isa_runs b cpu) cpus with
      | exception Support.Fault.Fault err ->
        Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
          ~reason:(Support.Fault.class_name err)
      | runs ->
        let row =
          List.map
            (fun (base, ext, _, _) ->
              let sp = Support.Stats.mean base /. Support.Stats.mean ext in
              all_speedups := sp :: !all_speedups;
              Support.Table.fmt_speedup sp)
            runs
        in
        let delta =
          match List.rev runs with
          | (_, _, bi, ei) :: _ ->
            100.0 *. (float_of_int ei /. float_of_int bi -. 1.0)
          | [] -> 0.0
        in
        instr_deltas := delta :: !instr_deltas;
        Support.Table.add_row t
          ((b.Workloads.Suite.id :: row) @ [ Printf.sprintf "%+.1f%%" delta ]))
    (smi_benches ());
  Support.Table.print t;
  let sps = Array.of_list !all_speedups in
  if Array.length sps > 0 then begin
    let _, mx = Support.Stats.min_max sps in
    Printf.printf
      "mean speedup %.1f%%, max %.1f%% (paper: mean ~3%%, up to ~10%%)\n"
      (100.0 *. (Support.Stats.geomean sps -. 1.0))
      (100.0 *. (mx -. 1.0));
    let deltas = Array.of_list !instr_deltas in
    Printf.printf "mean retired-instruction change %.1f%% (paper: ~-4%%)\n"
      (Support.Stats.mean deltas)
  end

let fig14 () =
  Plan.run (isa_cells ());
  Support.Table.section
    "Fig 14: execution-time distributions, default vs extended ISA";
  let cpus = Cpu.gem5_cpus in
  let t =
    Support.Table.create
      ~title:"total-cycle quartiles across repetitions (q1 / median / q3, millions)"
      ~columns:[ "benchmark"; "cpu"; "default ISA"; "smi-extended ISA"; "median delta" ]
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      List.iter
        (fun cpu ->
          match isa_runs b cpu with
          | exception Support.Fault.Fault err ->
            Support.Table.add_missing_row t
              ~label:(b.Workloads.Suite.id ^ " " ^ cpu.Cpu.cfg_name)
              ~reason:(Support.Fault.class_name err)
          | base, ext, _, _ ->
            let fmt xs =
              let q1, m, q3 = Support.Stats.quartiles xs in
              Printf.sprintf "%.3f / %.3f / %.3f" (q1 /. 1e6) (m /. 1e6)
                (q3 /. 1e6)
            in
            let _, m1, _ = Support.Stats.quartiles base in
            let _, m2, _ = Support.Stats.quartiles ext in
            Support.Table.add_row t
              [ b.Workloads.Suite.id; cpu.Cpu.cfg_name; fmt base; fmt ext;
                Printf.sprintf "%+.1f%%" (100.0 *. (m2 /. m1 -. 1.0)) ])
        cpus)
    (smi_benches ());
  Support.Table.print t
