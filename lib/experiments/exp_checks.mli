(** Check-characterization experiments.

    - [fig1]: deoptimization checks per 100 instructions across the
      suite on X64 and ARM64 (paper Fig 1: ~4/100 with little variance;
      see EXPERIMENTS.md for the expected scale difference).
    - [fig3]: annotated machine-code listing of the hottest compiled
      function of SPMV-CSR-SMI with per-instruction PC-sample counts.
    - [fig4]: per-check-type frequency and sampled-overhead breakdown on
      both ISAs.
    - [fig5]: Sea-of-Nodes check short-circuiting — node counts before
      and after, per removed group (dead ancestors included). *)

val fig1 : unit -> unit
val fig3 : unit -> unit
val fig4 : unit -> unit
val fig5 : unit -> unit
