type spec =
  | S_variant of Common.variant
  | S_removal  (** V_no_checks of the calibrated removable set *)
  | S_calibration_only

type cell = {
  c_bench : Workloads.Suite.benchmark;
  c_arch : Arch.t;
  c_spec : spec;
  c_seed : int;
  c_iters : int option;
  c_cpu : Cpu.config option;
}

let cell ?cpu ?iters ~arch ~seed variant bench =
  { c_bench = bench; c_arch = arch; c_spec = S_variant variant; c_seed = seed;
    c_iters = iters; c_cpu = cpu }

let removal_cell ?cpu ?iters ~arch ~seed bench =
  { c_bench = bench; c_arch = arch; c_spec = S_removal; c_seed = seed;
    c_iters = iters; c_cpu = cpu }

let calibration_cell ~arch bench =
  { c_bench = bench; c_arch = arch; c_spec = S_calibration_only; c_seed = 1;
    c_iters = None; c_cpu = None }

let needs_calibration c =
  match c.c_spec with
  | S_removal | S_calibration_only -> true
  | S_variant _ -> false

let run_spec c variant =
  match
    Common.run_result ?cpu:c.c_cpu ?iterations:c.c_iters ~arch:c.c_arch
      ~seed:c.c_seed variant c.c_bench
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let execute c =
  match c.c_spec with
  | S_calibration_only -> Ok ()
  | S_variant v -> run_spec c v
  | S_removal -> (
    (* A failed calibration short-circuits the removal run: its variant
       cannot even be named. *)
    match Common.removable_groups_result ~arch:c.c_arch c.c_bench with
    | Error e -> Error e
    | Ok (removable, _) -> run_spec c (Common.V_no_checks removable))

let run ?jobs cells =
  (* Stage 1: calibrations — removal cells cannot know their variant
     until the (bench, arch) calibration exists, and running it inside
     the fan-out would serialize every removal cell of one benchmark
     behind a single-flight entry. *)
  let calib =
    List.sort_uniq compare
      (List.filter_map
         (fun c ->
           if needs_calibration c then
             Some (c.c_bench.Workloads.Suite.id, c.c_arch)
           else None)
         cells)
  in
  let by_id id = List.find (fun c -> c.c_bench.Workloads.Suite.id = id) cells in
  (* Failed cells are already ledgered and negative-cached by Common;
     the plan's job is only to keep every *other* cell running, so the
     per-job results are dropped here and surface when the driver body
     re-reads the caches. *)
  Trace.span_wall ~cat:"experiments"
    ~arg:(Printf.sprintf "%d cells" (List.length calib))
    "plan:calibrate" (fun () ->
      ignore
        (Support.Pool.map_result ?jobs
           (fun (id, arch) ->
             Trace.span_wall ~cat:"support"
               ~arg:(id ^ "@" ^ Arch.name arch)
               "pool:job" (fun () ->
                 match
                   Common.removable_groups_result ~arch (by_id id).c_bench
                 with
                 | Ok _ | Error _ -> ()))
           calib));
  (* Stage 2: everything else. *)
  let rest = List.filter (fun c -> c.c_spec <> S_calibration_only) cells in
  Trace.span_wall ~cat:"experiments"
    ~arg:(Printf.sprintf "%d cells" (List.length rest))
    "plan:cells" (fun () ->
      ignore
        (Support.Pool.map_result ?jobs
           (fun c ->
             Trace.span_wall ~cat:"support"
               ~arg:
                 (c.c_bench.Workloads.Suite.id ^ "@" ^ Arch.name c.c_arch)
               "pool:job" (fun () -> ignore (execute c)))
           rest))

let result ?cpu ?iters ~arch ~seed variant bench =
  Common.run_cached ?cpu ?iterations:iters ~arch ~seed variant bench
