type spec =
  | S_variant of Common.variant
  | S_removal  (** V_no_checks of the calibrated removable set *)
  | S_calibration_only

type cell = {
  c_bench : Workloads.Suite.benchmark;
  c_arch : Arch.t;
  c_spec : spec;
  c_seed : int;
  c_iters : int option;
  c_cpu : Cpu.config option;
}

let cell ?cpu ?iters ~arch ~seed variant bench =
  { c_bench = bench; c_arch = arch; c_spec = S_variant variant; c_seed = seed;
    c_iters = iters; c_cpu = cpu }

let removal_cell ?cpu ?iters ~arch ~seed bench =
  { c_bench = bench; c_arch = arch; c_spec = S_removal; c_seed = seed;
    c_iters = iters; c_cpu = cpu }

let calibration_cell ~arch bench =
  { c_bench = bench; c_arch = arch; c_spec = S_calibration_only; c_seed = 1;
    c_iters = None; c_cpu = None }

let needs_calibration c =
  match c.c_spec with
  | S_removal | S_calibration_only -> true
  | S_variant _ -> false

let execute c =
  match c.c_spec with
  | S_calibration_only -> ()
  | S_variant v ->
    ignore
      (Common.run_cached ?cpu:c.c_cpu ?iterations:c.c_iters ~arch:c.c_arch
         ~seed:c.c_seed v c.c_bench)
  | S_removal ->
    let removable, _ = Common.removable_groups ~arch:c.c_arch c.c_bench in
    ignore
      (Common.run_cached ?cpu:c.c_cpu ?iterations:c.c_iters ~arch:c.c_arch
         ~seed:c.c_seed (Common.V_no_checks removable) c.c_bench)

let run ?jobs cells =
  (* Stage 1: calibrations — removal cells cannot know their variant
     until the (bench, arch) calibration exists, and running it inside
     the fan-out would serialize every removal cell of one benchmark
     behind a single-flight entry. *)
  let calib =
    List.sort_uniq compare
      (List.filter_map
         (fun c ->
           if needs_calibration c then
             Some (c.c_bench.Workloads.Suite.id, c.c_arch)
           else None)
         cells)
  in
  let by_id id = List.find (fun c -> c.c_bench.Workloads.Suite.id = id) cells in
  Support.Pool.iter ?jobs
    (fun (id, arch) ->
      ignore (Common.removable_groups ~arch (by_id id).c_bench))
    calib;
  (* Stage 2: everything else. *)
  Support.Pool.iter ?jobs execute
    (List.filter (fun c -> c.c_spec <> S_calibration_only) cells)

let result ?cpu ?iters ~arch ~seed variant bench =
  Common.run_cached ?cpu ?iterations:iters ~arch ~seed variant bench
