(** Job plans: drivers declare their full simulation cell set up front;
    the plan fans the cells out across a {!Support.Pool} of domains.

    Every cell is an independent, fully seeded, deterministic
    simulation, so execution order does not matter: a parallel plan
    only *warms* the single-flight memo caches in {!Common}; the driver
    body then reads the same caches sequentially and produces output
    bit-identical to a sequential run.

    Removal cells ([V_no_checks] of whatever calibration finds
    removable) depend on the calibration result for their (bench, arch)
    pair, so {!run} executes in two stages: first all required
    calibrations in parallel, then all remaining cells in parallel. *)

type cell

val cell :
  ?cpu:Cpu.config -> ?iters:int -> arch:Arch.t -> seed:int ->
  Common.variant -> Workloads.Suite.benchmark -> cell
(** One simulation with an explicit variant (maps to
    {!Common.run_cached}). *)

val removal_cell :
  ?cpu:Cpu.config -> ?iters:int -> arch:Arch.t -> seed:int ->
  Workloads.Suite.benchmark -> cell
(** A [V_no_checks] run of whatever {!Common.removable_groups} reports
    removable for this (bench, arch); schedules the calibration as a
    dependency stage. *)

val calibration_cell : arch:Arch.t -> Workloads.Suite.benchmark -> cell
(** Calibration only (for drivers that need the fired-group list but
    no removal run). *)

val run : ?jobs:int -> cell list -> unit
(** Execute the plan: calibration stage, then simulation stage, each
    fanned out over the pool ([jobs] defaults to
    {!Support.Pool.default_jobs}).  All results land in the {!Common}
    caches; nothing is returned.  Duplicate cells cost nothing (the
    memo tables single-flight them).

    Fault containment: a failing cell never aborts the plan — the
    fan-out uses {!Support.Pool.map_result}, so every other cell still
    runs; the failure is ledgered and negative-cached by {!Common} and
    surfaces (as a missing figure cell) when the driver body re-reads
    the caches. *)

val result :
  ?cpu:Cpu.config -> ?iters:int -> arch:Arch.t -> seed:int ->
  Common.variant -> Workloads.Suite.benchmark -> Harness.result
(** Convenience re-read of a planned cell ({!Common.run_cached}). *)
