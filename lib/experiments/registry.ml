type entry = { id : string; title : string; run : unit -> unit }

let all =
  [
    { id = "fig1"; title = "checks per 100 instructions"; run = Exp_checks.fig1 };
    { id = "fig2"; title = "compilation pipeline + code representations";
      run = Exp_pipeline.fig2 };
    { id = "fig3"; title = "annotated listing with PC samples"; run = Exp_checks.fig3 };
    { id = "fig4"; title = "check-type frequency and overhead breakdown";
      run = Exp_checks.fig4 };
    { id = "fig5"; title = "graph check short-circuiting"; run = Exp_checks.fig5 };
    { id = "fig6"; title = "per-iteration time, checks vs removed";
      run = Exp_removal.fig6 };
    { id = "fig7"; title = "per-benchmark speedups with CIs and significance";
      run = Exp_removal.fig7 };
    { id = "fig8"; title = "speedups by category"; run = Exp_removal.fig8 };
    { id = "fig9"; title = "correlation of the two estimators"; run = Exp_removal.fig9 };
    { id = "fig10"; title = "branch-only removal HW metrics"; run = Exp_branches.fig10 };
    { id = "fig11"; title = "jsldrsmi code listings"; run = Exp_isa.fig11 };
    { id = "fig12"; title = "jsldrsmi datapath semantics"; run = Exp_isa.fig12 };
    { id = "fig13"; title = "extended-ISA speedups per CPU model"; run = Exp_isa.fig13 };
    { id = "fig14"; title = "execution-time distributions per ISA"; run = Exp_isa.fig14 };
    { id = "tiers"; title = "tier ablation (interp/baseline/turboprop/turbofan)";
      run = Exp_tiers.tiers };
    { id = "ablate-elements"; title = "element-load re-check ablation";
      run = Exp_ablation.elements };
    { id = "futurework"; title = "fused map checks (paper's Section VII sketch)";
      run = Exp_future.futurework };
    { id = "summary"; title = "paper-vs-measured headline table"; run = Summary.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_timed e = Timing.timed e.id e.run

(* The future-work prototype is beyond the paper's evaluation: runnable
   explicitly, excluded from the default full run. *)
let run_all () =
  List.iter (fun e -> if e.id <> "futurework" then run_timed e) all;
  Timing.write_report ()
