(** Benchmark measurement harness.

    Runs one benchmark under one engine configuration for N iterations
    and collects everything the paper's figures need: per-iteration
    cycle counts, hardware counters, ground-truth and window-heuristic
    PC-sample attribution (Section III-A), deoptimization events, and a
    result checksum for correctness validation.

    [calibrate_removable] implements the paper's leftover-check
    procedure (Section III-B2): check groups whose deoptimizations
    actually fire in a normal run must stay; everything else can be
    short-circuited without altering behavior. *)

type result = {
  bench : Workloads.Suite.benchmark;
  arch : Arch.t;
  iterations : int;
  checksum : float;
  error : string option;            (** machine fault / JS error, if any *)
  iter_cycles : float array;        (** per-iteration elapsed cycles *)
  iter_deopts : int array;          (** deopt events per iteration *)
  counters : Perf.counters;         (** totals over the whole run *)
  total_cycles : float;
  jit_samples : int;                (** PC samples landing in JIT code *)
  total_samples : int;
  window_check_samples : int array; (** per check group (paper heuristic) *)
  truth_check_samples : int array;  (** per check group (provenance) *)
  static_checks : int;              (** static check instructions, final codes *)
  static_insns : int;
  compiles : int;
  gc_runs : int;
}

val run :
  ?iterations:int -> config:Engine.config ->
  Workloads.Suite.benchmark -> result
(** Default 300 iterations.  Simulation-level faults (machine faults,
    JS errors, divergences) are reported in [error]; the only exception
    that escapes is [Support.Fault.Fault] — watchdog trips and injected
    faults are containment events owned by the experiment layer. *)

val calibrate_removable :
  ?iterations:int -> config:Engine.config ->
  Workloads.Suite.benchmark -> Insn.check_group list * Insn.check_group list
(** [(removable, leftover)] — groups safe to remove vs groups whose
    checks fired during a normal run.  Raises [Support.Fault.Fault] on
    watchdog trip, like {!run}. *)

val max_cycles_per_call : unit -> float
(** Watchdog cycle budget per engine entry (setup or one benchmark
    call): [VSPEC_MAX_CYCLES] if set ("0"/"off"/"none"/"" disables),
    default 2e8. *)

val watchdog : Engine.t -> calls:int -> unit
(** Arm the engine's CPU watchdog with [calls] call budgets from now.
    Figure drivers that drive an engine directly (outside {!run}) use
    this so runaway code objects still trip [Support.Fault.Runaway]. *)

val overhead_window : result -> float
(** Fraction of JIT-code samples attributed to checks by the window
    heuristic. *)

val overhead_truth : result -> float
val checks_per_100 : result -> float
(** Dynamic check instructions per 100 retired JIT instructions. *)

val group_window_share : result -> Insn.check_group -> float
val group_freq_per_100 : result -> Insn.check_group -> float

val steady_state_cycles : result -> float
(** Mean cycles per iteration over the last third of the run. *)

val with_seed : Engine.config -> int -> Engine.config

val check_window_map : Code.t -> int array
(** Per-instruction check-group index (-1 = main line) under the arch
    window heuristic; depends only on the code object, so callers
    attributing several sample batches against one code object should
    compute it once and pass it to {!attribute_code}. *)

val attribute_code :
  code:Code.t -> samples:int array -> window_acc:int array ->
  truth_acc:int array -> int
(** The Section III-A estimator in isolation: attributes per-instruction
    PC samples to check groups via the arch window heuristic
    ([window_acc]) and via instruction provenance ([truth_acc]); returns
    the total samples on the code object.  Exposed for testing.
    Equivalent to {!attribute_code_with} over a fresh
    [check_window_map]. *)

val attribute_code_with :
  window_map:int array -> code:Code.t -> samples:int array ->
  window_acc:int array -> truth_acc:int array -> int
(** Attribution against a precomputed {!check_window_map}, so the
    per-code back-walk is not redone per sample batch. *)
