let run () =
  let suite = Common.suite () in
  let arch = Arch.Arm64 in
  Plan.run
    (List.concat_map
       (fun b ->
         [ Plan.cell ~arch ~seed:1 Common.V_normal b;
           Plan.removal_cell ~arch ~seed:1 b;
           Plan.cell ~arch ~seed:1 Common.V_no_branches b ])
       suite);
  Support.Table.section "Summary: paper claims vs this reproduction";
  let t =
    Support.Table.create ~title:"headline numbers"
      ~columns:[ "claim"; "paper"; "measured"; "where" ]
  in

  (* Checks per 100 instructions. *)
  let freqs =
    List.map
      (fun b ->
        Harness.checks_per_100 (Common.run_cached ~arch ~seed:1 Common.V_normal b))
      suite
    |> Array.of_list
  in
  Support.Table.add_row t
    [ "checks per 100 instructions (dynamic)"; "4-5";
      Printf.sprintf "%.1f" (Support.Stats.mean freqs); "fig1" ];

  (* Mean check overhead via removal. *)
  let diffs =
    List.map
      (fun b ->
        let removable, _ = Common.removable_groups ~arch b in
        let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
        let r2 =
          Common.run_cached ~arch ~seed:1 (Common.V_no_checks removable) b
        in
        1.0 -. (r2.Harness.total_cycles /. r1.Harness.total_cycles))
      suite
    |> Array.of_list
  in
  Support.Table.add_row t
    [ "mean check overhead (removal method)"; "8%";
      Support.Table.fmt_pct (Support.Stats.mean diffs); "fig6/7" ];

  (* Sampling-method overhead. *)
  let ovhs =
    List.map
      (fun b ->
        Harness.overhead_window
          (Common.run_cached ~arch ~seed:1 Common.V_normal b))
      suite
    |> Array.of_list
  in
  Support.Table.add_row t
    [ "mean check overhead (PC sampling)"; "5-7%";
      Support.Table.fmt_pct (Support.Stats.mean ovhs); "fig4" ];

  (* Branch-only removal. *)
  let br_deltas, sp_deltas =
    List.split
      (List.filter_map
         (fun b ->
           let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
           let r2 = Common.run_cached ~arch ~seed:1 Common.V_no_branches b in
           (* Branch removal alters semantics on deopting benchmarks;
              skip runs that diverged (the paper's Fig 10 caveat). *)
           let _, fired = Common.removable_groups ~arch b in
           if
             fired <> [] || r1.Harness.error <> None
             || r2.Harness.error <> None
             || r1.Harness.checksum <> r2.Harness.checksum
           then None
           else begin
             let br =
               100.0
               *. (float_of_int r2.Harness.counters.Perf.branches
                   /. float_of_int (max 1 r1.Harness.counters.Perf.branches)
                  -. 1.0)
             in
             Some (br, r1.Harness.total_cycles /. r2.Harness.total_cycles)
           end)
         suite)
  in
  let fmt_or_na f xs =
    match xs with [] -> "n/a (all runs diverged)" | _ -> f (Array.of_list xs)
  in
  Support.Table.add_row t
    [ "branch reduction from removing deopt branches"; "-20%";
      fmt_or_na
        (fun a -> Printf.sprintf "%+.1f%%" (Support.Stats.mean a))
        br_deltas;
      "fig10" ];
  Support.Table.add_row t
    [ "speedup from removing deopt branches only"; "1-2%";
      fmt_or_na
        (fun a ->
          Printf.sprintf "%+.1f%%" (100.0 *. (Support.Stats.mean a -. 1.0)))
        sp_deltas;
      "fig10" ];

  (* Deopts rare and early. *)
  let early = ref 0 and total = ref 0 in
  List.iter
    (fun b ->
      let r = Common.run_cached ~arch ~seed:1 Common.V_normal b in
      Array.iteri
        (fun i d ->
          total := !total + d;
          if i < 10 then early := !early + d)
        r.Harness.iter_deopts)
    suite;
  Support.Table.add_row t
    [ "deopt events in the first 10 iterations"; "most";
      (if !total = 0 then "no deopts"
       else Printf.sprintf "%d/%d" !early !total);
      "fig6" ];

  (* Interpreter vs steady-state. *)
  let ratios =
    List.filter_map
      (fun b ->
        let r = Common.run_cached ~arch ~seed:1 Common.V_normal b in
        let steady = Harness.steady_state_cycles r in
        if steady > 0.0 && Array.length r.Harness.iter_cycles > 0 then
          Some (r.Harness.iter_cycles.(0) /. steady)
        else None)
      suite
    |> Array.of_list
  in
  Support.Table.add_row t
    [ "first iteration (interpreted) vs steady state"; "2.5x";
      Printf.sprintf "%.1fx" (Support.Stats.mean ratios); "fig6" ];
  Support.Table.print t;
  print_endline
    "See EXPERIMENTS.md for the scale discussion: the subset engine's\n\
     compiled code has less main-line ballast than real V8, so absolute\n\
     check densities/overheads run higher while orderings and contrasts\n\
     (categories, ISAs, methods) reproduce the paper's shape."
