let run () =
  let suite = Common.suite () in
  let arch = Arch.Arm64 in
  Plan.run
    (List.concat_map
       (fun b ->
         [ Plan.cell ~arch ~seed:1 Common.V_normal b;
           Plan.removal_cell ~arch ~seed:1 b;
           Plan.cell ~arch ~seed:1 Common.V_no_branches b ])
       suite);
  Support.Table.section "Summary: paper claims vs this reproduction";
  let t =
    Support.Table.create ~title:"headline numbers"
      ~columns:[ "claim"; "paper"; "measured"; "where" ]
  in

  (* Permanently failed cells drop out of every aggregate below; a
     metric whose inputs all failed reads n/a instead of killing the
     whole summary. *)
  let safe f = List.filter_map (fun b -> try Some (f b) with Support.Fault.Fault _ -> None) suite in
  let fmt_or_na f xs =
    match xs with [] -> "n/a (all cells failed)" | _ -> f (Array.of_list xs)
  in

  (* Checks per 100 instructions. *)
  let freqs =
    safe (fun b ->
        Harness.checks_per_100 (Common.run_cached ~arch ~seed:1 Common.V_normal b))
  in
  Support.Table.add_row t
    [ "checks per 100 instructions (dynamic)"; "4-5";
      fmt_or_na (fun a -> Printf.sprintf "%.1f" (Support.Stats.mean a)) freqs;
      "fig1" ];

  (* Mean check overhead via removal. *)
  let diffs =
    safe (fun b ->
        let removable, _ = Common.removable_groups ~arch b in
        let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
        let r2 =
          Common.run_cached ~arch ~seed:1 (Common.V_no_checks removable) b
        in
        1.0 -. (r2.Harness.total_cycles /. r1.Harness.total_cycles))
  in
  Support.Table.add_row t
    [ "mean check overhead (removal method)"; "8%";
      fmt_or_na (fun a -> Support.Table.fmt_pct (Support.Stats.mean a)) diffs;
      "fig6/7" ];

  (* Sampling-method overhead. *)
  let ovhs =
    safe (fun b ->
        Harness.overhead_window
          (Common.run_cached ~arch ~seed:1 Common.V_normal b))
  in
  Support.Table.add_row t
    [ "mean check overhead (PC sampling)"; "5-7%";
      fmt_or_na (fun a -> Support.Table.fmt_pct (Support.Stats.mean a)) ovhs;
      "fig4" ];

  (* Branch-only removal. *)
  let br_deltas, sp_deltas =
    List.split
      (List.filter_map
         (fun b ->
           try
             let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
             let r2 = Common.run_cached ~arch ~seed:1 Common.V_no_branches b in
             (* Branch removal alters semantics on deopting benchmarks;
                skip runs that diverged (the paper's Fig 10 caveat). *)
             let _, fired = Common.removable_groups ~arch b in
             if
               fired <> [] || r1.Harness.error <> None
               || r2.Harness.error <> None
               || r1.Harness.checksum <> r2.Harness.checksum
             then None
             else begin
               let br =
                 100.0
                 *. (float_of_int r2.Harness.counters.Perf.branches
                     /. float_of_int (max 1 r1.Harness.counters.Perf.branches)
                    -. 1.0)
               in
               Some (br, r1.Harness.total_cycles /. r2.Harness.total_cycles)
             end
           with Support.Fault.Fault _ -> None)
         suite)
  in
  Support.Table.add_row t
    [ "branch reduction from removing deopt branches"; "-20%";
      fmt_or_na
        (fun a -> Printf.sprintf "%+.1f%%" (Support.Stats.mean a))
        br_deltas;
      "fig10" ];
  Support.Table.add_row t
    [ "speedup from removing deopt branches only"; "1-2%";
      fmt_or_na
        (fun a ->
          Printf.sprintf "%+.1f%%" (100.0 *. (Support.Stats.mean a -. 1.0)))
        sp_deltas;
      "fig10" ];

  (* Deopts rare and early. *)
  let early = ref 0 and total = ref 0 in
  List.iter
    (fun b ->
      match Common.run_cached ~arch ~seed:1 Common.V_normal b with
      | exception Support.Fault.Fault _ -> ()
      | r ->
        Array.iteri
          (fun i d ->
            total := !total + d;
            if i < 10 then early := !early + d)
          r.Harness.iter_deopts)
    suite;
  Support.Table.add_row t
    [ "deopt events in the first 10 iterations"; "most";
      (if !total = 0 then "no deopts"
       else Printf.sprintf "%d/%d" !early !total);
      "fig6" ];

  (* Interpreter vs steady-state. *)
  let ratios =
    List.filter_map
      (fun b ->
        try
          let r = Common.run_cached ~arch ~seed:1 Common.V_normal b in
          let steady = Harness.steady_state_cycles r in
          if steady > 0.0 && Array.length r.Harness.iter_cycles > 0 then
            Some (r.Harness.iter_cycles.(0) /. steady)
          else None
        with Support.Fault.Fault _ -> None)
      suite
  in
  Support.Table.add_row t
    [ "first iteration (interpreted) vs steady state"; "2.5x";
      fmt_or_na
        (fun a -> Printf.sprintf "%.1fx" (Support.Stats.mean a))
        ratios;
      "fig6" ];
  Support.Table.print t;
  print_endline
    "See EXPERIMENTS.md for the scale discussion: the subset engine's\n\
     compiled code has less main-line ballast than real V8, so absolute\n\
     check densities/overheads run higher while orderings and contrasts\n\
     (categories, ISAs, methods) reproduce the paper's shape."
