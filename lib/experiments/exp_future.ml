let target (b : Workloads.Suite.benchmark) =
  b.Workloads.Suite.category = Workloads.Suite.Objects
  || b.Workloads.Suite.category = Workloads.Suite.Sparse

let futurework () =
  let iters = max 40 (Common.iterations () / 4) in
  Plan.run
    (List.concat_map
       (fun b ->
         if target b then
           [ Plan.cell ~cpu:Cpu.o3_kpg ~iters ~arch:Arch.Arm64 ~seed:1
               Common.V_smi_ext b;
             Plan.cell ~cpu:Cpu.o3_kpg ~iters ~arch:Arch.Arm64 ~seed:1
               Common.V_fuse_maps b ]
         else [])
       (Common.suite ()));
  Support.Table.section
    "Future work (paper Section VII): fused map checks (jschkmap) on top of jsldrsmi";
  let t =
    Support.Table.create
      ~title:"object-heavy benchmarks, extended ISA, O3-KPG"
      ~columns:
        [ "benchmark"; "cycles (smi ext)"; "cycles (+map fuse)"; "speedup";
          "instr delta" ]
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      if target b then begin
        let run variant =
          Common.run_cached ~cpu:Cpu.o3_kpg ~iterations:iters ~arch:Arch.Arm64
            ~seed:1 variant b
        in
        match (run Common.V_smi_ext, run Common.V_fuse_maps) with
        | exception Support.Fault.Fault err ->
          Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
            ~reason:(Support.Fault.class_name err)
        | base, fused ->
        if base.Harness.error = None && fused.Harness.error = None
           && base.Harness.checksum = fused.Harness.checksum
        then begin
          let s1 = Harness.steady_state_cycles base in
          let s2 = Harness.steady_state_cycles fused in
          let i1 = base.Harness.counters.Perf.instructions in
          let i2 = fused.Harness.counters.Perf.instructions in
          Support.Table.add_row t
            [ b.Workloads.Suite.id;
              Printf.sprintf "%.0f" s1;
              Printf.sprintf "%.0f" s2;
              Support.Table.fmt_speedup (s1 /. s2);
              Printf.sprintf "%+.1f%%"
                (100.0 *. (float_of_int i2 /. float_of_int i1 -. 1.0)) ]
        end
      end)
    (Common.suite ());
  Support.Table.print t;
  print_endline
    "(This prototype goes beyond the paper's evaluated proposal; it\n\
    \ implements the generalization the conclusion sketches.  The\n\
    \ correctness of the fused check's bailout is covered by the test\n\
    \ suite.)"
