(** Self-timing for the experiment suite: wall-clock per figure plus
    the suite total, written to [BENCH_suite.json] (override the path
    with [VSPEC_BENCH_OUT]; set it to [off] to skip the file) so the
    perf trajectory is tracked across PRs.

    Progress lines (figure, seconds, jobs, fresh simulations vs disk
    hits) go to stderr so stdout stays bit-identical across cold/warm
    and sequential/parallel runs. *)

val timed : string -> (unit -> unit) -> unit
(** [timed figure f] runs [f], records its wall-clock, and logs a
    one-line summary to stderr. *)

val write_report : unit -> unit
(** Write all recordings so far as JSON:
    [{"jobs": n, "total_seconds": s, "figures": [{"figure", "seconds",
    "jobs"}, ...]}].  No-op if nothing was recorded. *)

val reset : unit -> unit
