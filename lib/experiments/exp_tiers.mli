(** Tier ablation (beyond the paper's evaluation, motivated by its
    Fig 2 pipeline): interpreter-only vs SparkPlug-style baseline vs the
    optimizing compiler vs the reduced-pass mid-tier (TurboProp), plus
    the check-hoisting ablation. *)

val tiers : unit -> unit
