type speedups = {
  s_bench : Workloads.Suite.benchmark;
  s_removal : float array;
  s_sampling : float;
  s_leftover : bool;
  s_sig : Support.Stats.significance;
}

let archs = [ Arch.X64; Arch.Arm64 ]

(* The per-(bench, seed) cell set behind [speedups_for]: calibration is
   a dependency stage (Plan schedules it first), then normal + removal
   runs for every repetition seed. *)
let speedup_cells ~arch (b : Workloads.Suite.benchmark) =
  List.concat_map
    (fun rep ->
      let seed = rep + 1 in
      [ Plan.cell ~arch ~seed Common.V_normal b;
        Plan.removal_cell ~arch ~seed b ])
    (List.init (Common.repetitions ()) Fun.id)

let all_speedup_cells () =
  List.concat_map
    (fun arch -> List.concat_map (speedup_cells ~arch) (Common.suite ()))
    archs

let speedup_cache : (string, speedups) Hashtbl.t = Hashtbl.create 64

let speedups_for ~arch (b : Workloads.Suite.benchmark) =
  let key = b.Workloads.Suite.id ^ "@" ^ Arch.name arch in
  match Hashtbl.find_opt speedup_cache key with
  | Some s -> s
  | None ->
    let removable, fired = Common.removable_groups ~arch b in
    let reps = Common.repetitions () in
    let with_checks = Array.make reps 0.0 in
    let without = Array.make reps 0.0 in
    let overheads = Array.make reps 0.0 in
    for rep = 0 to reps - 1 do
      let seed = rep + 1 in
      let r1 = Common.run_cached ~arch ~seed Common.V_normal b in
      let r2 = Common.run_cached ~arch ~seed (Common.V_no_checks removable) b in
      with_checks.(rep) <- r1.Harness.total_cycles;
      without.(rep) <- r2.Harness.total_cycles;
      overheads.(rep) <- Harness.overhead_window r1
    done;
    let removal = Array.map2 (fun a bb -> a /. bb) with_checks without in
    let sampling = 1.0 /. (1.0 -. Support.Stats.mean overheads) in
    let s_sig =
      Support.Stats.practical_significance ~alpha:0.05
        ~tests:(List.length (Common.suite ()))
        ~min_effect:0.02 ~baseline:with_checks ~variant:without
    in
    let s =
      {
        s_bench = b;
        s_removal = removal;
        s_sampling = sampling;
        s_leftover = fired <> [];
        s_sig;
      }
    in
    Hashtbl.replace speedup_cache key s;
    s

let fig6 () =
  let arch = Arch.Arm64 in
  Plan.run
    (List.concat_map
       (fun b ->
         [ Plan.cell ~arch ~seed:1 Common.V_normal b;
           Plan.removal_cell ~arch ~seed:1 b ])
       (Common.suite ()));
  Support.Table.section
    "Fig 6: relative per-iteration time, with checks vs removed (ARM64)";
  let t =
    Support.Table.create
      ~title:
        "relative steady-state time; (*) marks leftover checks kept for correctness"
      ~columns:
        [ "benchmark"; "time diff"; "deopt events (iteration#)"; "interp/steady";
          "checks left" ]
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      match
        let removable, fired = Common.removable_groups ~arch b in
        let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
        let r2 =
          Common.run_cached ~arch ~seed:1 (Common.V_no_checks removable) b
        in
        (fired, r1, r2)
      with
      | exception Support.Fault.Fault err ->
        Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
          ~reason:(Support.Fault.class_name err)
      | fired, r1, r2 ->
      let steady1 = Harness.steady_state_cycles r1 in
      let steady2 = Harness.steady_state_cycles r2 in
      let diff = if steady1 > 0.0 then 1.0 -. (steady2 /. steady1) else 0.0 in
      let deopt_iters =
        let out = ref [] in
        Array.iteri
          (fun i d -> if d > 0 then out := Printf.sprintf "%d(x%d)" i d :: !out)
          r1.Harness.iter_deopts;
        List.rev !out
      in
      let deopt_str =
        match deopt_iters with
        | [] -> "-"
        | l when List.length l <= 6 -> String.concat " " l
        | l ->
          String.concat " " (List.filteri (fun i _ -> i < 6) l)
          ^ Printf.sprintf " (+%d more)" (List.length l - 6)
      in
      let interp_ratio =
        if steady1 > 0.0 && Array.length r1.Harness.iter_cycles > 0 then
          r1.Harness.iter_cycles.(0) /. steady1
        else 0.0
      in
      Support.Table.add_row t
        [ b.Workloads.Suite.id ^ (if fired <> [] then " *" else "");
          Printf.sprintf "%.1f%%" (100.0 *. diff);
          deopt_str;
          Printf.sprintf "%.1fx" interp_ratio;
          String.concat "+" (List.map Insn.group_name fired) ])
    (Common.suite ());
  Support.Table.print t;
  (* Headline: mean overall time difference (paper: 8 %). *)
  let diffs =
    List.filter_map
      (fun b ->
        try
          let removable, _ = Common.removable_groups ~arch b in
          let r1 = Common.run_cached ~arch ~seed:1 Common.V_normal b in
          let r2 =
            Common.run_cached ~arch ~seed:1 (Common.V_no_checks removable) b
          in
          Some (1.0 -. (r2.Harness.total_cycles /. r1.Harness.total_cycles))
        with Support.Fault.Fault _ -> None)
      (Common.suite ())
    |> Array.of_list
  in
  if Array.length diffs > 0 then
    Printf.printf "mean overall time difference: %.1f%% (paper: 8%%)\n"
      (100.0 *. Support.Stats.mean diffs)
  else print_endline "mean overall time difference: n/a (all cells failed)"

let fig7 () =
  Plan.run (all_speedup_cells ());
  Support.Table.section
    "Fig 7: per-benchmark speedup estimates, both methods, 95% CIs";
  List.iter
    (fun arch ->
      let t =
        Support.Table.create
          ~title:
            (Printf.sprintf
               "%s  (x = statistically significant, + = practically significant > 2%%)"
               (Arch.name arch))
          ~columns:
            [ "benchmark"; "removal speedup"; "ci95"; "sampling speedup";
              "p-value"; "sig" ]
      in
      let n_practical = ref 0 and n_total = ref 0 in
      List.iter
        (fun b ->
          match speedups_for ~arch b with
          | exception Support.Fault.Fault err ->
            Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
              ~reason:(Support.Fault.class_name err)
          | s ->
          incr n_total;
          if s.s_sig.Support.Stats.practical then incr n_practical;
          let lo, hi = Support.Stats.ci95_mean s.s_removal in
          Support.Table.add_row t
            [ s.s_bench.Workloads.Suite.id
              ^ (if s.s_leftover then " *" else "");
              Support.Table.fmt_speedup (Support.Stats.mean s.s_removal);
              Printf.sprintf "[%.3f, %.3f]" lo hi;
              Support.Table.fmt_speedup s.s_sampling;
              Printf.sprintf "%.4f" s.s_sig.Support.Stats.p_value;
              (if s.s_sig.Support.Stats.practical then "x+"
               else if s.s_sig.Support.Stats.significant then "x"
               else "") ])
        (Common.suite ());
      Support.Table.print t;
      Printf.printf
        "%s: %d/%d benchmarks practically significant (paper: ~2/3 on ARM64)\n"
        (Arch.name arch) !n_practical !n_total)
    archs

let fig8 () =
  Plan.run (all_speedup_cells ());
  Support.Table.section "Fig 8: speedups by benchmark category";
  let t =
    Support.Table.create ~title:"geometric-mean speedups per category"
      ~columns:
        [ "category"; "x64 removal"; "x64 sampling"; "arm64 removal";
          "arm64 sampling" ]
  in
  List.iter
    (fun cat ->
      let benches =
        List.filter
          (fun (b : Workloads.Suite.benchmark) ->
            b.Workloads.Suite.category = cat)
          (Common.suite ())
      in
      if benches <> [] then begin
        let cells =
          List.concat_map
            (fun arch ->
              (* Failed cells drop out of the category mean; the cell
                 reads n/a only when every benchmark of the category
                 failed. *)
              let ok =
                List.filter_map
                  (fun b ->
                    match speedups_for ~arch b with
                    | s -> Some s
                    | exception Support.Fault.Fault _ -> None)
                  benches
              in
              let geo proj =
                match ok with
                | [] -> "n/a"
                | _ ->
                  Support.Table.fmt_speedup
                    (Support.Stats.geomean
                       (Array.of_list (List.map proj ok)))
              in
              [ geo (fun s -> Support.Stats.mean s.s_removal);
                geo (fun s -> s.s_sampling) ])
            archs
        in
        Support.Table.add_row t (Workloads.Suite.category_name cat :: cells)
      end)
    Workloads.Suite.categories;
  Support.Table.print t

let fig9 () =
  Plan.run (all_speedup_cells ());
  Support.Table.section
    "Fig 9: correlation of the two overhead estimators";
  let t =
    Support.Table.create ~title:"sampling-estimate vs removal-estimate"
      ~columns:[ "arch"; "slope"; "intercept"; "R^2"; "pearson r"; "p-value" ]
  in
  List.iter
    (fun arch ->
      let pts =
        List.filter_map
          (fun b ->
            match speedups_for ~arch b with
            | s -> Some (s.s_sampling, Support.Stats.mean s.s_removal)
            | exception Support.Fault.Fault _ -> None)
          (Common.suite ())
      in
      let xs = Array.of_list (List.map fst pts) in
      let ys = Array.of_list (List.map snd pts) in
      if Array.length xs < 3 then
        Support.Table.add_row t
          [ Arch.name arch; "n/a"; "n/a"; "n/a"; "n/a"; "(suite too small)" ]
      else begin
        let reg = Support.Stats.linear_regression xs ys in
        let r = Support.Stats.pearson xs ys in
        let p = Support.Stats.correlation_p_value ~n:(Array.length xs) ~r in
        Support.Table.add_row t
          [ Arch.name arch;
            Printf.sprintf "%.2f" reg.Support.Stats.slope;
            Printf.sprintf "%.2f" reg.Support.Stats.intercept;
            Printf.sprintf "%.2f" reg.Support.Stats.r2;
            Printf.sprintf "%.2f" r;
            Printf.sprintf "%.2g" p ]
      end)
    archs;
  Support.Table.print t;
  print_endline
    "(paper: R^2 = 0.51 / r = 0.71 on X64, R^2 = 0.36 / r = 0.60 on ARM64,\n\
    \ p < 1e-2 in both cases: the estimators are correlated)"
