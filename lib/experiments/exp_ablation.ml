let target (b : Workloads.Suite.benchmark) =
  b.Workloads.Suite.category = Workloads.Suite.Sparse
  || b.Workloads.Suite.category = Workloads.Suite.Crypto

let elements () =
  let arch = Arch.Arm64 in
  Plan.run
    (List.concat_map
       (fun b ->
         if target b then
           [ Plan.cell ~arch ~seed:1 Common.V_normal b;
             Plan.cell ~arch ~seed:1 Common.V_trust_elements b ]
         else [])
       (Common.suite ()));
  Support.Table.section
    "Ablation: re-checking SMI element loads vs trusting the elements kind";
  let t =
    Support.Table.create
      ~title:
        "sparse + crypto kernels, ARM64 (trust = propagate PACKED_SMI through loads)"
      ~columns:
        [ "benchmark"; "checks/100 (recheck)"; "checks/100 (trust)";
          "cycles ratio trust/recheck"; "Not-a-SMI freq delta" ]
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      if target b then begin
        match
          ( Common.run_cached ~arch ~seed:1 Common.V_normal b,
            Common.run_cached ~arch ~seed:1 Common.V_trust_elements b )
        with
        | exception Support.Fault.Fault err ->
          Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
            ~reason:(Support.Fault.class_name err)
        | r1, r2 ->
        if r1.Harness.error = None && r2.Harness.error = None then
          Support.Table.add_row t
            [ b.Workloads.Suite.id;
              Printf.sprintf "%.1f" (Harness.checks_per_100 r1);
              Printf.sprintf "%.1f" (Harness.checks_per_100 r2);
              Printf.sprintf "%.3f"
                (Harness.steady_state_cycles r2 /. Harness.steady_state_cycles r1);
              Printf.sprintf "%+.1f"
                (Harness.group_freq_per_100 r2 Insn.G_not_smi
                -. Harness.group_freq_per_100 r1 Insn.G_not_smi) ]
      end)
    (Common.suite ());
  Support.Table.print t;
  print_endline
    "(The default re-check reproduces the paper's Fig 3/11 code shape --\n\
    \ V8 9.2 emitted Not-a-SMI checks on SMI element loads, which is what\n\
    \ jsldrsmi fuses away.  Trusting the kind removes those checks in\n\
    \ software, shrinking the extension's target, which is why the paper\n\
    \ pairs the ISA proposal with the measured engine rather than an\n\
    \ idealized one.)"
