(** Ablation from DESIGN.md §5: element-load re-checking.

    The default configuration re-emits Not-a-SMI checks on values loaded
    from PACKED_SMI arrays (reproducing the paper's Fig 3 code shape);
    the ablation trusts the elements kind instead, as newer TurboFan
    type propagation would. *)

val elements : unit -> unit
