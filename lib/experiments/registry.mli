(** Experiment registry: id -> driver, for the CLI and the bench
    harness. *)

type entry = {
  id : string;
  title : string;
  run : unit -> unit;
}

val all : entry list
val find : string -> entry option
val run_all : unit -> unit
