(** Experiment registry: id -> driver, for the CLI and the bench
    harness. *)

type entry = {
  id : string;
  title : string;
  run : unit -> unit;
}

val all : entry list
val find : string -> entry option

val run_timed : entry -> unit
(** Run one figure under the {!Timing} wrapper (wall-clock recorded for
    BENCH_suite.json). *)

val run_all : unit -> unit
(** Every figure except the future-work prototype, each timed; writes
    the BENCH_suite.json timing report at the end. *)
