let tiers () =
  Support.Table.section
    "Tier ablation: interpreter / baseline (SparkPlug) / TurboProp / TurboFan";
  let arch = Arch.Arm64 in
  let iters = max 40 (Common.iterations () / 4) in
  let t =
    Support.Table.create
      ~title:
        "steady-state cycles per iteration, normalized to the optimizer (lower = faster)"
      ~columns:
        [ "benchmark"; "interp"; "baseline"; "turboprop"; "turbofan";
          "tp checks/100"; "tf checks/100" ]
  in
  let run b variant extra =
    let config = Common.config_for ~arch ~seed:1 variant in
    let config = extra config in
    Harness.run ~iterations:iters ~config b
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let interp = run b Common.V_interp_only Fun.id in
      let baseline =
        run b Common.V_interp_only (fun c ->
            { c with Engine.enable_baseline = true })
      in
      let turboprop = run b Common.V_turboprop Fun.id in
      let turbofan = run b Common.V_normal Fun.id in
      let s r = Harness.steady_state_cycles r in
      let base = s turbofan in
      if base > 0.0 then
        Support.Table.add_row t
          [ b.Workloads.Suite.id;
            Printf.sprintf "%.2fx" (s interp /. base);
            Printf.sprintf "%.2fx" (s baseline /. base);
            Printf.sprintf "%.2fx" (s turboprop /. base);
            "1.00x";
            Printf.sprintf "%.1f" (Harness.checks_per_100 turboprop);
            Printf.sprintf "%.1f" (Harness.checks_per_100 turbofan) ])
    (Common.suite ());
  Support.Table.print t;
  print_endline
    "(TurboProp skips the check-elimination/hoisting passes: same\n\
    \ speculation, more checks -- the paper's mid-tier description.)"
