let variants =
  [ Common.V_interp_only; Common.V_baseline; Common.V_turboprop;
    Common.V_normal ]

let tiers () =
  let arch = Arch.Arm64 in
  let iters = max 40 (Common.iterations () / 4) in
  Plan.run
    (List.concat_map
       (fun b ->
         List.map (fun v -> Plan.cell ~iters ~arch ~seed:1 v b) variants)
       (Common.suite ()));
  Support.Table.section
    "Tier ablation: interpreter / baseline (SparkPlug) / TurboProp / TurboFan";
  let t =
    Support.Table.create
      ~title:
        "steady-state cycles per iteration, normalized to the optimizer (lower = faster)"
      ~columns:
        [ "benchmark"; "interp"; "baseline"; "turboprop"; "turbofan";
          "tp checks/100"; "tf checks/100" ]
  in
  let run b variant =
    Common.run_cached ~iterations:iters ~arch ~seed:1 variant b
  in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      match
        ( run b Common.V_interp_only, run b Common.V_baseline,
          run b Common.V_turboprop, run b Common.V_normal )
      with
      | exception Support.Fault.Fault err ->
        Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
          ~reason:(Support.Fault.class_name err)
      | interp, baseline, turboprop, turbofan ->
      let s r = Harness.steady_state_cycles r in
      let base = s turbofan in
      if base > 0.0 then
        Support.Table.add_row t
          [ b.Workloads.Suite.id;
            Printf.sprintf "%.2fx" (s interp /. base);
            Printf.sprintf "%.2fx" (s baseline /. base);
            Printf.sprintf "%.2fx" (s turboprop /. base);
            "1.00x";
            Printf.sprintf "%.1f" (Harness.checks_per_100 turboprop);
            Printf.sprintf "%.1f" (Harness.checks_per_100 turbofan) ])
    (Common.suite ());
  Support.Table.print t;
  print_endline
    "(TurboProp skips the check-elimination/hoisting passes: same\n\
    \ speculation, more checks -- the paper's mid-tier description.)"
