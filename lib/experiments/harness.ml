type result = {
  bench : Workloads.Suite.benchmark;
  arch : Arch.t;
  iterations : int;
  checksum : float;
  error : string option;
  iter_cycles : float array;
  iter_deopts : int array;
  counters : Perf.counters;
  total_cycles : float;
  jit_samples : int;
  total_samples : int;
  window_check_samples : int array;
  truth_check_samples : int array;
  static_checks : int;
  static_insns : int;
  compiles : int;
  gc_runs : int;
}

let with_seed (cfg : Engine.config) seed = { cfg with Engine.seed }

(* Watchdog fuel: a per-entry (setup or single benchmark iteration)
   cycle budget, read per run so tests can flip the env var.  The
   total allowance of a run therefore scales with its iteration count.
   The default is ~3 orders of magnitude above the costliest legitimate
   iteration in the suite, so only a genuinely non-terminating code
   object trips it. *)
let max_cycles_per_call () =
  match Sys.getenv_opt "VSPEC_MAX_CYCLES" with
  | Some ("" | "0" | "off" | "none") -> infinity
  | Some v -> (
    match float_of_string_opt v with
    | Some f when f > 0.0 -> f
    | _ -> 2e8)
  | None -> 2e8

let watchdog eng ~calls =
  Cpu.arm_watchdog (Engine.cpu eng)
    ~cycles:(max_cycles_per_call () *. float_of_int (max 1 calls))

(* Sample attribution over one code object.

   Window heuristic (paper Section III-A): every PC sample that lands on
   a deopt branch, or within [Arch.check_window] non-pseudo instructions
   before it, counts toward the branch's check group.

   Ground truth: instruction provenance recorded by the code
   generator.

   Both attributions index by *instruction* PC, which the decoded
   engine preserves even when it fuses adjacent micro-ops into one
   dispatch slot: a fused closure updates the sampler's attribution PC
   between its two halves, so samples still land on the individual
   instruction (never on a synthetic "pair" PC) and the window
   back-walk below needs no knowledge of fusion. *)
let check_window_map (code : Code.t) =
  let insns = code.Code.insns in
  let w = Arch.check_window code.Code.arch in
  let n = Array.length insns in
  (* Mark window membership. *)
  let window_group = Array.make n (-1) in
  for i = 0 to n - 1 do
    let mark_from group =
      window_group.(i) <- group;
      (* Walk back over up to [w] preceding non-pseudo instructions. *)
      let remaining = ref w in
      let j = ref (i - 1) in
      while !remaining > 0 && !j >= 0 do
        if not (Insn.is_pseudo insns.(!j).Insn.kind) then begin
          if window_group.(!j) < 0 then window_group.(!j) <- group;
          decr remaining
        end;
        decr j
      done
    in
    match insns.(i).Insn.kind with
    | Insn.Deopt_if (_, dp) ->
      let reason = code.Code.deopts.(dp).Code.reason in
      mark_from (Insn.group_index (Insn.group_of_reason reason))
    | Insn.Js_ldr_smi { deopt; _ } ->
      let reason = code.Code.deopts.(deopt).Code.reason in
      window_group.(i) <- Insn.group_index (Insn.group_of_reason reason)
    | _ -> ()
  done;
  window_group

let attribute_code_with ~window_map ~(code : Code.t) ~(samples : int array)
    ~window_acc ~truth_acc =
  let insns = code.Code.insns in
  let n = Array.length insns in
  let window_group = window_map in
  let jit = ref 0 in
  for i = 0 to min (n - 1) (Array.length samples - 1) do
    let s = samples.(i) in
    if s > 0 then begin
      jit := !jit + s;
      if window_group.(i) >= 0 then
        window_acc.(window_group.(i)) <- window_acc.(window_group.(i)) + s;
      match insns.(i).Insn.prov with
      | Insn.Check { group; _ } ->
        let gi = Insn.group_index group in
        truth_acc.(gi) <- truth_acc.(gi) + s
      | Insn.Main_line | Insn.Shared -> ()
    end
  done;
  !jit

let attribute_code ~code ~samples ~window_acc ~truth_acc =
  attribute_code_with ~window_map:(check_window_map code) ~code ~samples
    ~window_acc ~truth_acc

let copy_counters c =
  let fresh = Perf.create_counters () in
  Perf.add_counters fresh c;
  fresh

let run ?(iterations = 300) ~(config : Engine.config) bench =
  Trace.span_wall ~cat:"experiments"
    ~arg:(Printf.sprintf "%s/%s" bench.Workloads.Suite.id (Arch.name config.Engine.arch))
    "harness" @@ fun () ->
  let eng = Engine.create config bench.Workloads.Suite.source in
  let cpu = Engine.cpu eng in
  let counters = cpu.Cpu.counters in
  let h = (Engine.runtime eng).Runtime.heap in
  let iter_cycles = Array.make iterations 0.0 in
  let iter_deopts = Array.make iterations 0 in
  let checksum = ref Float.nan in
  let error = ref None in
  let budget = max_cycles_per_call () in
  (try
     Cpu.arm_watchdog cpu ~cycles:budget;
     let _ = Engine.run_main eng in
     let i = ref 0 in
     while !i < iterations && !error = None do
       let c0 = Engine.cycles eng in
       let d0 = counters.Perf.deopt_events in
       Cpu.arm_watchdog cpu ~cycles:budget;
       (try
          let v = Engine.call_global eng "bench" [||] in
          checksum := Heap.number_value h v
        with
       | Support.Fault.Fault _ as e ->
         (* Watchdog trips and injected faults are containment events,
            not divergences: the cell as a whole fails, typed. *)
         raise e
       | Exec.Machine_fault m -> error := Some ("machine fault: " ^ m)
       | Builtins.Js_error m -> error := Some ("js error: " ^ m)
       | e ->
         (* Configurations that deliberately alter semantics (paper
            Fig 10 removes deopt branches) can corrupt downstream values
            arbitrarily; report, do not crash the experiment. *)
         error := Some ("runtime divergence: " ^ Printexc.to_string e));
       iter_cycles.(!i) <- Engine.cycles eng -. c0;
       iter_deopts.(!i) <- counters.Perf.deopt_events - d0;
       if !Trace.on then begin
         let ts = Engine.cycles eng in
         Trace.counter_at ~cat:"experiments" ~ts "iter_cycles"
           iter_cycles.(!i);
         Trace.counter_at ~cat:"experiments" ~ts "iter_deopts"
           (float_of_int iter_deopts.(!i))
       end;
       Engine.iteration_safepoint eng;
       incr i
     done
   with
  | Support.Fault.Fault _ as e -> raise e
  | Exec.Machine_fault m -> error := Some ("machine fault in setup: " ^ m)
  | Builtins.Js_error m -> error := Some ("js error in setup: " ^ m)
  | Heap.Out_of_memory -> error := Some "out of memory"
  | e -> error := Some ("setup divergence: " ^ Printexc.to_string e));
  (* Sample attribution.  The window back-walk is per code object, not
     per sample batch: precompute it once per code id and reuse it
     across attributions. *)
  let window_acc = Array.make 6 0 in
  let truth_acc = Array.make 6 0 in
  let jit_samples = ref 0 in
  let total_samples = ref 0 in
  let window_maps : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let window_map_for code_id code =
    match Hashtbl.find_opt window_maps code_id with
    | Some wm -> wm
    | None ->
      let wm = check_window_map code in
      Hashtbl.add window_maps code_id wm;
      wm
  in
  (match Engine.sampler eng with
  | None -> ()
  | Some s ->
    total_samples := Perf.total_samples s;
    List.iter
      (fun (code_id, code_total) ->
        if code_id >= 0 then begin
          match Engine.code_of_id eng code_id with
          | None -> ()
          | Some code ->
            let samples =
              Perf.samples_for s ~code_id ~size:(Array.length code.Code.insns)
            in
            let wm = window_map_for code_id code in
            jit_samples :=
              !jit_samples
              + attribute_code_with ~window_map:wm ~code ~samples ~window_acc
                  ~truth_acc;
            (* Folded-stack export of the PC sampler's per-check
               attribution: one frame per code object, leaf frames
               splitting main-line work from each check-group window. *)
            if !Trace.on then begin
              let leaf = Hashtbl.create 8 in
              Array.iteri
                (fun i c ->
                  if c > 0 && i < Array.length wm then begin
                    let frame =
                      if wm.(i) >= 0 then
                        "check:"
                        ^ Insn.group_name (List.nth Insn.all_groups wm.(i))
                      else "main"
                    in
                    Hashtbl.replace leaf frame
                      (c + Option.value ~default:0 (Hashtbl.find_opt leaf frame))
                  end)
                samples;
              Hashtbl.iter
                (fun frame c ->
                  Trace.sample
                    ~stack:
                      (Printf.sprintf "%s;%s;%s" bench.Workloads.Suite.id
                         code.Code.name frame)
                    c)
                leaf
            end
        end
        else if !Trace.on && code_id < 0 then begin
          let frame =
            if code_id = Perf.runtime_code_id then "runtime"
            else if code_id = Perf.builtin_code_id then "builtin"
            else if code_id = Perf.gc_code_id then "gc"
            else "other"
          in
          if code_total > 0 then
            Trace.sample
              ~stack:(bench.Workloads.Suite.id ^ ";" ^ frame)
              code_total
        end)
      (Perf.samples_by_code s));
  let static_checks, static_insns =
    List.fold_left
      (fun (c, n) code ->
        (c + Code.static_check_instructions code, n + Code.real_instructions code))
      (0, 0) (Engine.all_codes eng)
  in
  {
    bench;
    arch = config.Engine.arch;
    iterations;
    checksum = !checksum;
    error = !error;
    iter_cycles;
    iter_deopts;
    counters = copy_counters counters;
    total_cycles = Engine.cycles eng;
    jit_samples = !jit_samples;
    total_samples = !total_samples;
    window_check_samples = window_acc;
    truth_check_samples = truth_acc;
    static_checks;
    static_insns;
    compiles = Engine.compile_count eng;
    gc_runs = Heap.gc_count h;
  }

let calibrate_removable ?(iterations = 100) ~config bench =
  (* A normal run records which deopt reasons actually fire; their
     groups must keep their checks (paper Section III-B2). *)
  let eng_fired =
    let eng = Engine.create config bench.Workloads.Suite.source in
    let budget = max_cycles_per_call () in
    (try
       Cpu.arm_watchdog (Engine.cpu eng) ~cycles:budget;
       let _ = Engine.run_main eng in
       for _ = 1 to iterations do
         Cpu.arm_watchdog (Engine.cpu eng) ~cycles:budget;
         ignore (Engine.call_global eng "bench" [||])
       done
     with
    | Support.Fault.Fault _ as e -> raise e
    | _ -> ());
    Engine.deopt_counts eng
  in
  let fired_groups =
    List.sort_uniq compare
      (List.map (fun (reason, _) -> Insn.group_of_reason reason) eng_fired)
  in
  let removable =
    List.filter (fun g -> not (List.mem g fired_groups)) Insn.all_groups
  in
  (removable, fired_groups)

let overhead_window r =
  if r.jit_samples = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 r.window_check_samples)
    /. float_of_int r.jit_samples

let overhead_truth r =
  if r.jit_samples = 0 then 0.0
  else
    float_of_int (Array.fold_left ( + ) 0 r.truth_check_samples)
    /. float_of_int r.jit_samples

let checks_per_100 r =
  if r.counters.Perf.jit_instructions = 0 then 0.0
  else
    100.0
    *. float_of_int r.counters.Perf.check_instructions
    /. float_of_int r.counters.Perf.jit_instructions

let group_window_share r g =
  let total = Array.fold_left ( + ) 0 r.window_check_samples in
  if total = 0 then 0.0
  else
    float_of_int r.window_check_samples.(Insn.group_index g)
    /. float_of_int total

let group_freq_per_100 r g =
  if r.counters.Perf.jit_instructions = 0 then 0.0
  else
    100.0
    *. float_of_int r.counters.Perf.check_per_group.(Insn.group_index g)
    /. float_of_int r.counters.Perf.jit_instructions

let steady_state_cycles r =
  let n = Array.length r.iter_cycles in
  if n = 0 then 0.0
  else begin
    (* Tail mean in place: same summation order as Stats.mean over the
       Array.sub slice, without allocating it. *)
    let from = n - max 1 (n / 3) in
    let sum = ref 0.0 in
    for i = from to n - 1 do
      sum := !sum +. r.iter_cycles.(i)
    done;
    !sum /. float_of_int (n - from)
  end
