(** Check-removal experiments (paper Sections III-B and IV).

    - [fig6]: per-iteration relative execution time with checks and
      after calibrated check removal; deopt-event markers; leftover
      benchmarks flagged [*]; interpreter-vs-steady-state ratio.
    - [fig7]: per-benchmark speedups from both estimation methods with
      95 % CIs and Bonferroni-adjusted practical significance.
    - [fig8]: the same speedups aggregated by benchmark category.
    - [fig9]: statistical comparison of the two estimators — linear
      regression, R^2, Pearson correlation, zero-correlation p-value. *)

val fig6 : unit -> unit
val fig7 : unit -> unit
val fig8 : unit -> unit
val fig9 : unit -> unit

(** Shared computation: per-benchmark speedup estimates on one arch. *)
type speedups = {
  s_bench : Workloads.Suite.benchmark;
  s_removal : float array;      (** per repetition: cycles_with / cycles_without *)
  s_sampling : float;           (** (1 - overhead)^-1 from PC samples *)
  s_leftover : bool;
  s_sig : Support.Stats.significance;
}

val speedups_for : arch:Arch.t -> Workloads.Suite.benchmark -> speedups
