(** Shared experiment plumbing: engine-config variants, the process-wide
    result caches (figures share the expensive "normal run" of every
    benchmark), and the check-removal calibration cache.

    All memo tables are domain-safe with single-flight semantics: when
    the {!Plan} layer fans cells out across a {!Support.Pool}, each
    distinct simulation runs exactly once no matter how many domains
    ask for it.  Results are additionally persisted to an on-disk cache
    ([_build/.vspec-cache/] or [VSPEC_CACHE_DIR]; set to [off] to
    disable) keyed by a digest of benchmark source + full engine config
    + iteration count + a cache-format version, so re-runs skip
    already-simulated cells across processes.

    Fault containment: every cell computation runs under
    {!Support.Fault.guard} — transient faults (injected, corrupt cache
    entries) are retried with backoff; permanent failures land in the
    {!Support.Fault.Ledger} and in a process-wide negative cache so
    later reads of the same cell fail fast.  Corrupt disk-cache entries
    are quarantined as [<digest>.corrupt]; an unusable cache directory
    degrades to cache-off with a single warning. *)

type variant =
  | V_normal
  | V_no_checks of Insn.check_group list  (** groups short-circuited *)
  | V_no_branches
  | V_interp_only
  | V_baseline  (** interpreter + SparkPlug-style baseline tier *)
  | V_smi_ext
  | V_trust_elements
  | V_turboprop
  | V_fuse_maps  (** extended ISA + fused map checks (Section VII) *)

val variant_name : variant -> string

val config_for :
  ?cpu:Cpu.config -> arch:Arch.t -> seed:int -> variant -> Engine.config

val iterations : unit -> int
(** Default 200; override with VSPEC_ITERS. *)

val repetitions : unit -> int
(** Default 5 (paper: 30); override with VSPEC_REPS. *)

val run_result :
  ?cpu:Cpu.config -> ?iterations:int -> arch:Arch.t -> seed:int ->
  variant -> Workloads.Suite.benchmark ->
  (Harness.result, Support.Fault.error) result
(** Memoized {!Harness.run}: domain-safe, single-flight, disk-backed,
    fault-contained.  [Error] means the cell permanently failed (after
    transient retries); the failure is already ledgered and
    negative-cached, so repeated calls return the same [Error] without
    re-simulating. *)

val run_cached :
  ?cpu:Cpu.config -> ?iterations:int -> arch:Arch.t -> seed:int ->
  variant -> Workloads.Suite.benchmark -> Harness.result
(** {!run_result} for callers that handle failure by exception:
    raises [Support.Fault.Fault] on a failed cell. *)

val removable_groups_result :
  arch:Arch.t -> Workloads.Suite.benchmark ->
  (Insn.check_group list * Insn.check_group list, Support.Fault.error) result
(** Memoized calibration: (removable, leftover/fired), fault-contained
    like {!run_result}. *)

val removable_groups :
  arch:Arch.t -> Workloads.Suite.benchmark ->
  Insn.check_group list * Insn.check_group list
(** Raising variant of {!removable_groups_result}. *)

val reference_checksum : Workloads.Suite.benchmark -> float
(** Interpreter-only checksum used to validate every configuration
    (compared by the opt-in [VSPEC_VERIFY] pass for semantics-preserving
    variants). *)

val degraded : string -> (unit -> unit) -> unit
(** [degraded name f] runs [f]; a [Support.Fault.Fault] escaping it is
    printed as an inline degradation marker and ledgered under [name]
    instead of killing the process.  For figure drivers that touch the
    engine directly. *)

val resolve_cache_dir : string -> string option * string option
(** [(usable_dir, warning)] — create the directory (and parents) and
    probe writability.  [None, Some w] means the cache must be
    disabled; exposed for tests. *)

val suite : unit -> Workloads.Suite.benchmark list
(** The benchmark list, restricted by VSPEC_BENCH (comma-separated ids)
    if set. *)

val cache_stats : unit -> int * int
(** [(simulations, disk_hits)] since start/last {!clear_memo}: fresh
    simulations actually executed by this process vs results served
    from the on-disk cache. *)

val clear_memo : unit -> unit
(** Drop all in-memory memo entries, the negative failure cache, and
    reset {!cache_stats} (the disk cache is untouched).  For tests. *)
