(** Shared experiment plumbing: engine-config variants, a process-wide
    result cache (figures share the expensive "normal run" of every
    benchmark), and the check-removal calibration cache. *)

type variant =
  | V_normal
  | V_no_checks of Insn.check_group list  (** groups short-circuited *)
  | V_no_branches
  | V_interp_only
  | V_smi_ext
  | V_trust_elements
  | V_turboprop

val variant_name : variant -> string

val config_for :
  ?cpu:Cpu.config -> arch:Arch.t -> seed:int -> variant -> Engine.config

val iterations : unit -> int
(** Default 200; override with VSPEC_ITERS. *)

val repetitions : unit -> int
(** Default 5 (paper: 30); override with VSPEC_REPS. *)

val run_cached :
  ?cpu:Cpu.config -> ?iterations:int -> arch:Arch.t -> seed:int ->
  variant -> Workloads.Suite.benchmark -> Harness.result
(** Memoized {!Harness.run}. *)

val removable_groups :
  arch:Arch.t -> Workloads.Suite.benchmark ->
  Insn.check_group list * Insn.check_group list
(** Memoized calibration: (removable, leftover/fired). *)

val reference_checksum : Workloads.Suite.benchmark -> float
(** Interpreter-only checksum used to validate every configuration. *)

val suite : unit -> Workloads.Suite.benchmark list
(** The benchmark list, restricted by VSPEC_BENCH (comma-separated ids)
    if set. *)
