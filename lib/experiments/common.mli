(** Shared experiment plumbing: engine-config variants, the process-wide
    result caches (figures share the expensive "normal run" of every
    benchmark), and the check-removal calibration cache.

    All memo tables are domain-safe with single-flight semantics: when
    the {!Plan} layer fans cells out across a {!Support.Pool}, each
    distinct simulation runs exactly once no matter how many domains
    ask for it.  Results are additionally persisted to an on-disk cache
    ([_build/.vspec-cache/] or [VSPEC_CACHE_DIR]; set to [off] to
    disable) keyed by a digest of benchmark source + full engine config
    + iteration count + a cache-format version, so re-runs skip
    already-simulated cells across processes. *)

type variant =
  | V_normal
  | V_no_checks of Insn.check_group list  (** groups short-circuited *)
  | V_no_branches
  | V_interp_only
  | V_baseline  (** interpreter + SparkPlug-style baseline tier *)
  | V_smi_ext
  | V_trust_elements
  | V_turboprop
  | V_fuse_maps  (** extended ISA + fused map checks (Section VII) *)

val variant_name : variant -> string

val config_for :
  ?cpu:Cpu.config -> arch:Arch.t -> seed:int -> variant -> Engine.config

val iterations : unit -> int
(** Default 200; override with VSPEC_ITERS. *)

val repetitions : unit -> int
(** Default 5 (paper: 30); override with VSPEC_REPS. *)

val run_cached :
  ?cpu:Cpu.config -> ?iterations:int -> arch:Arch.t -> seed:int ->
  variant -> Workloads.Suite.benchmark -> Harness.result
(** Memoized {!Harness.run}: domain-safe, single-flight, disk-backed. *)

val removable_groups :
  arch:Arch.t -> Workloads.Suite.benchmark ->
  Insn.check_group list * Insn.check_group list
(** Memoized calibration: (removable, leftover/fired). *)

val reference_checksum : Workloads.Suite.benchmark -> float
(** Interpreter-only checksum used to validate every configuration. *)

val suite : unit -> Workloads.Suite.benchmark list
(** The benchmark list, restricted by VSPEC_BENCH (comma-separated ids)
    if set. *)

val cache_stats : unit -> int * int
(** [(simulations, disk_hits)] since start/last {!clear_memo}: fresh
    simulations actually executed by this process vs results served
    from the on-disk cache. *)

val clear_memo : unit -> unit
(** Drop all in-memory memo entries and reset {!cache_stats} (the disk
    cache is untouched).  For tests. *)
