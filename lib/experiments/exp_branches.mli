(** Fig 10: removing only the deopt branches (conditions kept).

    Reproduces the paper's Section IV-B result: a large reduction in
    retired branches with only a marginal speedup, because the
    never-taken check branches are predicted almost perfectly — the cost
    of a check is its condition computation. *)

val fig10 : unit -> unit
