let archs = [ Arch.X64; Arch.Arm64 ]

(* Fan the figure's full cell set out across the domain pool before the
   (sequential, deterministic) table-building body reads the caches. *)
let normal_cells () =
  List.concat_map
    (fun arch ->
      List.map
        (fun b -> Plan.cell ~arch ~seed:1 Common.V_normal b)
        (Common.suite ()))
    archs

let fig1 () =
  Plan.run (normal_cells ());
  Support.Table.section
    "Fig 1: deoptimization checks per 100 instructions (dynamic and static)";
  let t =
    Support.Table.create ~title:"checks per 100 instructions"
      ~columns:
        [ "benchmark"; "category"; "x64 dyn"; "x64 static"; "arm64 dyn";
          "arm64 static"; "" ]
  in
  let dyn_all = Hashtbl.create 4 in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      match
        List.concat_map
          (fun arch ->
            let r = Common.run_cached ~arch ~seed:1 Common.V_normal b in
            let dyn = Harness.checks_per_100 r in
            let stat =
              if r.Harness.static_insns = 0 then 0.0
              else
                100.0
                *. float_of_int r.Harness.static_checks
                /. float_of_int r.Harness.static_insns
            in
            Hashtbl.replace dyn_all (arch, b.Workloads.Suite.id) dyn;
            [ Printf.sprintf "%.1f" dyn; Printf.sprintf "%.1f" stat ])
          archs
      with
      | exception Support.Fault.Fault err ->
        Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
          ~reason:(Support.Fault.class_name err)
      | cells ->
        let x64_dyn = Hashtbl.find dyn_all (Arch.X64, b.Workloads.Suite.id) in
        Support.Table.add_row t
          ([ b.Workloads.Suite.id;
             Workloads.Suite.category_name b.Workloads.Suite.category ]
          @ cells
          @ [ Support.Table.bar ~width:16 ~max:25.0 x64_dyn ]))
    (Common.suite ());
  Support.Table.print t;
  List.iter
    (fun arch ->
      let vals =
        List.filter_map
          (fun (b : Workloads.Suite.benchmark) ->
            Hashtbl.find_opt dyn_all (arch, b.Workloads.Suite.id))
          (Common.suite ())
        |> Array.of_list
      in
      if Array.length vals > 1 then
        Printf.printf "%s: mean %.1f checks/100 (sd %.1f)\n" (Arch.name arch)
          (Support.Stats.mean vals) (Support.Stats.stddev vals))
    archs;
  print_newline ()

let fig3 () =
  Support.Table.section
    "Fig 3: annotated JIT code with PC-sample counts (SPMV-CSR-SMI, ARM64)";
  match Workloads.Suite.by_id "SPMV-CSR-SMI" with
  | None -> print_endline "benchmark missing"
  | Some b ->
    Common.degraded "fig3" @@ fun () ->
    let config = Common.config_for ~arch:Arch.Arm64 ~seed:1 Common.V_normal in
    let eng = Engine.create config b.Workloads.Suite.source in
    Harness.watchdog eng ~calls:121;
    let _ = Engine.run_main eng in
    for _ = 1 to 120 do
      ignore (Engine.call_global eng "bench" [||])
    done;
    (match Engine.sampler eng with
    | None -> print_endline "sampler disabled"
    | Some s ->
      (* Pick the code object with the most samples. *)
      let best =
        List.fold_left
          (fun acc (code_id, total) ->
            match acc with
            | Some (_, best_total) when best_total >= total -> acc
            | _ -> if code_id >= 0 then Some (code_id, total) else acc)
          None (Perf.samples_by_code s)
      in
      match best with
      | None -> print_endline "no JIT samples collected"
      | Some (code_id, total) -> (
        match Engine.code_of_id eng code_id with
        | None -> print_endline "code object missing"
        | Some code ->
          let samples =
            Perf.samples_for s ~code_id ~size:(Array.length code.Code.insns)
          in
          Printf.printf "hottest code: %s (%d samples)\n\n" code.Code.name total;
          print_string (Code.listing ~samples code)))

let fig4 () =
  Plan.run (normal_cells ());
  Support.Table.section
    "Fig 4: check-type breakdown -- frequency (checks/100 instr) and sampled overhead share";
  List.iter
    (fun arch ->
      let t =
        Support.Table.create
          ~title:
            (Printf.sprintf
               "%s: per-group frequency (f, checks/100) and overhead (o, %% of JIT samples)"
               (Arch.name arch))
          ~columns:
            ([ "benchmark" ]
            @ List.concat_map
                (fun g ->
                  [ "f:" ^ Insn.group_name g; "o:" ^ Insn.group_name g ])
                Insn.all_groups
            @ [ "total ovh" ])
      in
      List.iter
        (fun (b : Workloads.Suite.benchmark) ->
          match Common.run_cached ~arch ~seed:1 Common.V_normal b with
          | exception Support.Fault.Fault err ->
            Support.Table.add_missing_row t ~label:b.Workloads.Suite.id
              ~reason:(Support.Fault.class_name err)
          | r ->
            let cells =
              List.concat_map
                (fun g ->
                  let freq = Harness.group_freq_per_100 r g in
                  let share =
                    Harness.group_window_share r g *. Harness.overhead_window r
                  in
                  [ Printf.sprintf "%.1f" freq;
                    Printf.sprintf "%.1f%%" (100.0 *. share) ])
                Insn.all_groups
            in
            Support.Table.add_row t
              ([ b.Workloads.Suite.id ] @ cells
              @ [ Printf.sprintf "%.1f%%" (100.0 *. Harness.overhead_window r) ]))
        (Common.suite ());
      Support.Table.print t)
    archs;
  (* Validation the paper could not do: window heuristic vs provenance
     ground truth. *)
  let t2 =
    Support.Table.create
      ~title:"window heuristic vs ground-truth provenance (total overhead)"
      ~columns:[ "arch"; "mean window"; "mean truth"; "correlation" ]
  in
  List.iter
    (fun arch ->
      let pairs =
        List.filter_map
          (fun b ->
            match Common.run_cached ~arch ~seed:1 Common.V_normal b with
            | r -> Some (Harness.overhead_window r, Harness.overhead_truth r)
            | exception Support.Fault.Fault _ -> None)
          (Common.suite ())
      in
      if pairs = [] then
        Support.Table.add_missing_row t2 ~label:(Arch.name arch)
          ~reason:"all cells failed"
      else begin
        let w = Array.of_list (List.map fst pairs) in
        let tr = Array.of_list (List.map snd pairs) in
        Support.Table.add_row t2
          [ Arch.name arch;
            Support.Table.fmt_pct (Support.Stats.mean w);
            Support.Table.fmt_pct (Support.Stats.mean tr);
            (if Array.length w < 2 then "n/a"
             else Printf.sprintf "%.2f" (Support.Stats.pearson w tr)) ]
      end)
    archs;
  Support.Table.print t2

let fig5 () =
  Support.Table.section
    "Fig 5: short-circuiting checks in the graph (dead ancestors removed)";
  match Workloads.Suite.by_id "SPMV-CSR-SMI" with
  | None -> print_endline "benchmark missing"
  | Some b ->
    Common.degraded "fig5" @@ fun () ->
    let config = Common.config_for ~arch:Arch.Arm64 ~seed:1 Common.V_normal in
    let eng = Engine.create config b.Workloads.Suite.source in
    Harness.watchdog eng ~calls:31;
    let _ = Engine.run_main eng in
    for _ = 1 to 30 do
      ignore (Engine.call_global eng "bench" [||])
    done;
    let rt = Engine.runtime eng in
    (* Rebuild the graph of the hottest compiled function for each
       removal scenario. *)
    let hot_fid =
      let best = ref None in
      Array.iter
        (fun (f : Runtime.func_rt) ->
          if f.Runtime.code_ref >= 0 || f.Runtime.invocations > 8 then begin
            match !best with
            | Some (g : Runtime.func_rt) when g.Runtime.invocations >= f.Runtime.invocations -> ()
            | _ -> best := Some f
          end)
        rt.Runtime.funcs;
      !best
    in
    (match hot_fid with
    | None -> print_endline "no hot function"
    | Some f ->
      let build () =
        Turbofan.Graph_builder.build
          (Turbofan.Graph_builder.default_config Arch.Arm64)
          rt f
      in
      let t =
        Support.Table.create
          ~title:
            (Printf.sprintf "node counts for %s after short-circuiting"
               f.Runtime.info.Bytecode.name)
          ~columns:[ "removed group"; "checks removed"; "dead nodes"; "nodes left" ]
      in
      let g0 = build () in
      ignore (Turbofan.Reducer.run_dce g0);
      Support.Table.add_row t
        [ "(none)"; "0"; "0"; string_of_int (Turbofan.Son.node_count g0) ];
      List.iter
        (fun grp ->
          let g = build () in
          ignore (Turbofan.Reducer.run_dce g);
          let stats = Turbofan.Reducer.short_circuit_checks g ~groups:[ grp ] in
          Support.Table.add_row t
            [ Insn.group_name grp;
              string_of_int stats.Turbofan.Reducer.checks_removed;
              string_of_int stats.Turbofan.Reducer.nodes_dce_removed;
              string_of_int (Turbofan.Son.node_count g) ])
        Insn.all_groups;
      let g_all = build () in
      ignore (Turbofan.Reducer.run_dce g_all);
      let stats =
        Turbofan.Reducer.short_circuit_checks g_all ~groups:Insn.all_groups
      in
      Support.Table.add_row t
        [ "(all)";
          string_of_int stats.Turbofan.Reducer.checks_removed;
          string_of_int stats.Turbofan.Reducer.nodes_dce_removed;
          string_of_int (Turbofan.Son.node_count g_all) ];
      Support.Table.print t)
