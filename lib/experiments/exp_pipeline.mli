(** Fig 2: the engine's compilation pipeline and its code
    representations, shown on a concrete function: source, bytecode
    (Ignition tier), graph IR with checks (TurboFan tier), and final
    machine code. *)

val fig2 : unit -> unit
