type record = { figure : string; seconds : float; jobs : int }

let records : record list ref = ref []
let reset () = records := []

let timed figure f =
  let jobs = Support.Pool.default_jobs () in
  let sims0, hits0 = Common.cache_stats () in
  let t0 = Unix.gettimeofday () in
  Trace.span_wall ~cat:"experiments" ("figure:" ^ figure) f;
  let seconds = Unix.gettimeofday () -. t0 in
  let sims1, hits1 = Common.cache_stats () in
  records := { figure; seconds; jobs } :: !records;
  Printf.eprintf "[vspec] %-10s %7.2fs  jobs=%d  sims=%d  disk-hits=%d\n%!"
    figure seconds jobs (sims1 - sims0) (hits1 - hits0)

let report_path () =
  match Sys.getenv_opt "VSPEC_BENCH_OUT" with
  | Some ("off" | "none" | "0") -> None
  | Some "" | None -> Some "BENCH_suite.json"
  | Some p -> Some p

let write_report () =
  match (!records, report_path ()) with
  | [], _ | _, None -> ()
  | recs, Some path ->
    let recs = List.rev recs in
    let total = List.fold_left (fun a r -> a +. r.seconds) 0.0 recs in
    let jobs = Support.Pool.default_jobs () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "{\n  \"jobs\": %d,\n  \"total_seconds\": %.3f,\n  \"figures\": [\n"
         jobs total);
    List.iteri
      (fun i r ->
        Buffer.add_string buf
          (Printf.sprintf "    {\"figure\": %S, \"seconds\": %.3f, \"jobs\": %d}%s\n"
             r.figure r.seconds r.jobs
             (if i = List.length recs - 1 then "" else ",")))
      recs;
    Buffer.add_string buf "  ]\n}\n";
    (try
       let oc = open_out path in
       Buffer.output_buffer oc buf;
       close_out oc;
       Printf.eprintf "[vspec] suite: %.2fs total, report -> %s\n%!" total path
     with Sys_error m -> Printf.eprintf "[vspec] report not written: %s\n%!" m)
