(** Future-work prototype (paper Section VII): the paper suggests the
    [jsldrsmi] approach generalizes to other checks, "e.g. map and
    boundary checks".  This experiment implements fused map checks
    ([jschkmap]: map-word load + compare + branch-free bailout) and
    measures them on the object-heavy benchmarks where Type checks
    dominate.  Not part of the paper's evaluation; run explicitly with
    [vspec-experiments futurework]. *)

val futurework : unit -> unit
