(** Paper-vs-measured table for the headline scalar claims. *)

val run : unit -> unit
