(** Statistics used by the paper's analysis (Section IV).

    Implements the descriptive statistics, Pearson correlation, ordinary
    least-squares regression, Welch's t-test and the Bonferroni-adjusted
    significance procedure the paper applies to its overhead estimates.
    All special functions (log-gamma, incomplete beta, erf) are
    self-contained. *)

(** {1 Descriptive statistics} *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator). *)

val stddev : float array -> float
val median : float array -> float
val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation. *)

val quartiles : float array -> float * float * float
(** (q1, median, q3). *)

val min_max : float array -> float * float
val geomean : float array -> float
(** Geometric mean; all inputs must be positive. *)

val ci95_mean : float array -> float * float
(** 95 % confidence interval for the mean, Student-t based. *)

(** {1 Special functions} *)

val log_gamma : float -> float
val erf : float -> float
val normal_cdf : float -> float
val incomplete_beta : a:float -> b:float -> x:float -> float
(** Regularized incomplete beta function I_x(a,b). *)

val student_t_cdf : df:float -> float -> float
val student_t_inv : df:float -> float -> float
(** [student_t_inv ~df p] is the p-quantile of the t distribution,
    found by bisection. *)

(** {1 Tests and models} *)

type ttest = {
  t_stat : float;
  df : float;
  p_value : float;  (** two-sided *)
}

val welch_ttest : float array -> float array -> ttest
(** Welch's unequal-variance two-sample t-test. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient r. *)

val correlation_p_value : n:int -> r:float -> float
(** Two-sided p-value of the zero-correlation null hypothesis, using the
    t transform of r with n-2 degrees of freedom. *)

type regression = {
  slope : float;
  intercept : float;
  r2 : float;
  slope_ci95 : float * float;
}

val linear_regression : float array -> float array -> regression

val bonferroni : alpha:float -> tests:int -> float
(** Adjusted per-test significance threshold. *)

type significance = {
  significant : bool;  (** statistically significant at the adjusted level *)
  practical : bool;    (** significant and |effect| > the practical bound *)
  p_value : float;
}

val practical_significance :
  alpha:float -> tests:int -> min_effect:float ->
  baseline:float array -> variant:float array -> significance
(** The paper's procedure (Section IV-A): Welch test between the two
    populations, Bonferroni-adjusted threshold, practical significance
    when the relative difference of means exceeds [min_effect]
    (paper: 2 %). *)
