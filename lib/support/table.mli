(** Plain-text rendering of result tables and bar series.

    Every experiment driver prints its figure/table through this module
    so the bench output has one consistent look. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Rows must have as many cells as there are columns. *)

val add_missing_row : t -> label:string -> reason:string -> unit
(** Degraded-cell row: [label] in the first column, ["(missing:
    reason)"] in the second, ["-"] padding for the rest.  Used when a
    simulation cell failed permanently and the figure renders without
    it. *)

val render : t -> string
(** Box-drawn table with the title on top. *)

val print : t -> unit

(** {1 Cell formatting helpers} *)

val fmt_pct : float -> string
(** [fmt_pct 0.083] is ["8.3%"] — input is a fraction. *)

val fmt_f : ?digits:int -> float -> string
val fmt_speedup : float -> string
(** [fmt_speedup 1.083] is ["1.083x"]. *)

(** {1 Inline bar charts} *)

val bar : ?width:int -> max:float -> float -> string
(** Unicode bar proportional to [v /. max]. *)

val section : string -> unit
(** Prints a prominent section banner (used per figure). *)
