(** Fault taxonomy, deterministic fault injection, bounded retries, and
    the process-wide failure ledger.

    Long experiment sweeps must survive a bad cell: every failure is
    classified into one of five structured error classes; transient
    classes are retried with capped exponential backoff, permanent ones
    land in the {!Ledger} and the affected figure cell renders as
    missing.  A seeded injection layer ({!Inject}, [VSPEC_FAULTS]) can
    fire synthetic faults at the four fault sites deterministically so
    tests can drive every recovery path. *)

type exn_info = { exn_name : string; exn_msg : string }

type error =
  | Runaway of { what : string; limit : float }
      (** The simulation watchdog's cycle-fuel budget was exhausted
          ([what] = code-object or regex identifier). *)
  | Checksum_mismatch of { cell : string; expected : float; got : float }
      (** A run's checksum diverged from the interpreter-only reference
          ({!Experiments.Common.reference_checksum}). *)
  | Cache_corrupt of { path : string; reason : string }
      (** An on-disk cache entry failed to unmarshal; it has been
          quarantined as [<digest>.corrupt]. *)
  | Worker_crash of exn_info
      (** Any other exception escaping a pool job or a simulation. *)
  | Injected of { site : string; key : string }
      (** A synthetic fault from the {!Inject} layer. *)

exception Fault of error

type severity = Transient | Permanent

val classify : error -> severity
(** [Injected] and [Cache_corrupt] are transient (retry may clear
    them); everything else reproduces deterministically and is
    permanent. *)

val is_transient : error -> bool
val class_name : error -> string
(** Short stable identifier ("runaway", "cache-corrupt", ...). *)

val describe : error -> string
(** One-line human description. *)

val of_exn : exn -> error
(** [Fault e] unwraps to [e]; anything else becomes [Worker_crash]. *)

val runaway : what:string -> limit:float -> 'a
(** Raise [Fault (Runaway _)] (watchdog trip helper). *)

(** Deterministic seeded fault injection.

    Configured by [VSPEC_FAULTS], a comma-separated list of
    [site:rate:seed] or [site:rate:seed:keyfilter] rules with sites
    [cache-read], [cache-write], [worker], [sim].  Whether a rule fires
    is a pure hash of (seed, site, key, attempt): independent of domain
    scheduling, reproducible across runs, and re-rolled per retry
    attempt so sub-1.0 rates eventually clear.  The optional key filter
    restricts a rule to fault keys containing that substring (used to
    fail one specific cell permanently). *)
module Inject : sig
  type site = Cache_read | Cache_write | Worker | Sim

  val site_name : site -> string

  val set_spec : string -> unit
  (** Override the [VSPEC_FAULTS] spec programmatically (tests); [""]
      disables injection. *)

  val fires : site:site -> key:string -> attempt:int -> error option
  (** The injection decision, non-raising. *)

  val check : site:site -> key:string -> attempt:int -> unit
  (** Raise [Fault (Injected _)] if a rule fires. *)
end

val max_retries : unit -> int
(** Retry budget for transient faults ([VSPEC_RETRIES], default 2). *)

val backoff : int -> unit
(** Sleep the capped exponential backoff delay for retry [attempt]
    (base [VSPEC_RETRY_BACKOFF_MS], default 1 ms, doubled per attempt,
    capped at 50 ms). *)

val guard :
  ?retries:int ->
  ?inject:Inject.site * string ->
  (attempt:int -> 'a) ->
  ('a, error * int) result
(** [guard f] runs [f ~attempt:0]; on a transient error it backs off
    and retries (re-invoking [f] with the next attempt number) up to
    [retries] times, then returns [Error (e, attempts_used)].
    Permanent errors return immediately.  With [~inject:(site, key)],
    {!Inject.check} runs before each attempt.  Never raises. *)

(** Mutex-protected process-wide record of every cell failure.
    Permanent entries drive the degraded exit code (1); notes record
    recovered faults (quarantined cache entries, skipped writes). *)
module Ledger : sig
  type entry = {
    cell : string;
    err : error;
    attempts : int;
    permanent : bool;
  }

  val record : ?attempts:int -> ?permanent:bool -> cell:string -> error -> unit
  val note : cell:string -> error -> unit
  (** [record ~permanent:false]: recovered, does not affect the exit
      code. *)

  val entries : unit -> entry list
  (** In recording order. *)

  val permanent_count : unit -> int
  val clear : unit -> unit

  val exit_code : unit -> int
  (** 0 = clean, 1 = at least one permanent failure (degraded run). *)

  val report : out_channel -> unit
  (** Print the ledger (cell id, error class, attempts, description);
      prints nothing when the ledger is empty. *)
end
