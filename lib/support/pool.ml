let default_jobs () =
  match Sys.getenv_opt "VSPEC_JOBS" with
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 1 -> n
    | _ -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let map_array ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length xs in
  if jobs = 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)))
      done
    in
    let spawned =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))
let run ?jobs thunks = map ?jobs (fun f -> f ()) thunks
let iter ?jobs f xs = ignore (map ?jobs f xs)

(* Fault-contained variant: every job runs to an [Ok]/[Error] verdict,
   a failing job never halts the others, and transient fault classes
   are retried (with backoff) inside the job's slot, so one flaky cell
   cannot poison a whole figure sweep. *)
let map_array_result ?jobs ?retries f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length xs in
  let job i x =
    match
      Fault.guard ?retries
        ~inject:(Fault.Inject.Worker, string_of_int i)
        (fun ~attempt:_ -> f x)
    with
    | Ok v -> Ok v
    | Error (e, _attempts) -> Error e
  in
  if jobs = 1 || n <= 1 then Array.mapi job xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else results.(i) <- Some (job i xs.(i))
      done
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_result ?jobs ?retries f xs =
  Array.to_list (map_array_result ?jobs ?retries f (Array.of_list xs))

module Memo = struct
  type 'v entry = Published of 'v | In_flight

  type ('k, 'v) t = {
    mu : Mutex.t;
    cv : Condition.t;
    tbl : ('k, 'v entry) Hashtbl.t;
  }

  let create n =
    { mu = Mutex.create (); cv = Condition.create (); tbl = Hashtbl.create n }

  let find_or_compute t k f =
    Mutex.lock t.mu;
    let rec claim () =
      match Hashtbl.find_opt t.tbl k with
      | Some (Published v) ->
        Mutex.unlock t.mu;
        v
      | Some In_flight ->
        Condition.wait t.cv t.mu;
        claim ()
      | None ->
        Hashtbl.replace t.tbl k In_flight;
        Mutex.unlock t.mu;
        (match f () with
        | v ->
          Mutex.lock t.mu;
          Hashtbl.replace t.tbl k (Published v);
          Condition.broadcast t.cv;
          Mutex.unlock t.mu;
          v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.mu;
          Hashtbl.remove t.tbl k;
          Condition.broadcast t.cv;
          Mutex.unlock t.mu;
          Printexc.raise_with_backtrace e bt)
    in
    claim ()

  let find_opt t k =
    Mutex.lock t.mu;
    let r =
      match Hashtbl.find_opt t.tbl k with
      | Some (Published v) -> Some v
      | Some In_flight | None -> None
    in
    Mutex.unlock t.mu;
    r

  let length t =
    Mutex.lock t.mu;
    let n =
      Hashtbl.fold
        (fun _ e acc -> match e with Published _ -> acc + 1 | In_flight -> acc)
        t.tbl 0
    in
    Mutex.unlock t.mu;
    n

  let clear t =
    Mutex.lock t.mu;
    Hashtbl.reset t.tbl;
    Mutex.unlock t.mu
end
