(** Deterministic pseudo-random number generation.

    Every stochastic element of the reproduction (GC trigger jitter,
    sampling phase, workload data) draws from an explicit [t] so that any
    experiment is reproducible from its seed.  The generator is
    SplitMix64, which has good statistical quality for simulation use and
    a trivially seedable state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each benchmark repetition its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
