(* Structured fault taxonomy, deterministic fault injection, bounded
   retries, and the process-wide failure ledger.  See INTERNALS.md
   "Failure handling". *)

type exn_info = { exn_name : string; exn_msg : string }

type error =
  | Runaway of { what : string; limit : float }
  | Checksum_mismatch of { cell : string; expected : float; got : float }
  | Cache_corrupt of { path : string; reason : string }
  | Worker_crash of exn_info
  | Injected of { site : string; key : string }

exception Fault of error

type severity = Transient | Permanent

(* Simulations are deterministic, so a crash or a runaway reproduces on
   every retry: retrying them only burns time.  Injected faults model
   environmental flakes and corrupt cache entries disappear once
   quarantined, so those two classes are worth another attempt. *)
let classify = function
  | Injected _ | Cache_corrupt _ -> Transient
  | Runaway _ | Checksum_mismatch _ | Worker_crash _ -> Permanent

let is_transient e = classify e = Transient

let class_name = function
  | Runaway _ -> "runaway"
  | Checksum_mismatch _ -> "checksum-mismatch"
  | Cache_corrupt _ -> "cache-corrupt"
  | Worker_crash _ -> "worker-crash"
  | Injected _ -> "injected"

let describe = function
  | Runaway { what; limit } ->
    Printf.sprintf "runaway: %s exceeded the %.0f-cycle watchdog budget" what
      limit
  | Checksum_mismatch { cell; expected; got } ->
    Printf.sprintf "checksum mismatch: %s expected %g, got %g" cell expected
      got
  | Cache_corrupt { path; reason } ->
    Printf.sprintf "corrupt cache entry %s (%s)" path reason
  | Worker_crash { exn_name; exn_msg } ->
    Printf.sprintf "worker crash: %s (%s)" exn_name exn_msg
  | Injected { site; key } ->
    Printf.sprintf "injected fault at %s (%s)" site key

let of_exn = function
  | Fault e -> e
  | e ->
    Worker_crash
      { exn_name = Printexc.exn_slot_name e; exn_msg = Printexc.to_string e }

let runaway ~what ~limit = raise (Fault (Runaway { what; limit }))

(* ------------------------------------------------------------------ *)
(* Deterministic seeded fault injection                                *)
(* ------------------------------------------------------------------ *)

module Inject = struct
  type site = Cache_read | Cache_write | Worker | Sim

  let site_name = function
    | Cache_read -> "cache-read"
    | Cache_write -> "cache-write"
    | Worker -> "worker"
    | Sim -> "sim"

  let site_of_string = function
    | "cache-read" -> Cache_read
    | "cache-write" -> Cache_write
    | "worker" -> Worker
    | "sim" -> Sim
    | s -> invalid_arg (Printf.sprintf "VSPEC_FAULTS: unknown site %S" s)

  type rule = {
    r_site : site;
    r_rate : float;
    r_seed : int;
    r_key_filter : string option;  (* substring of the fault key *)
  }

  let rec parse_rule s =
    match String.split_on_char ':' (String.trim s) with
    | [ site; rate; seed ] | [ site; rate; seed; "" ] ->
      { r_site = site_of_string site;
        r_rate =
          (match float_of_string_opt rate with
          | Some r when r >= 0.0 && r <= 1.0 -> r
          | _ -> invalid_arg ("VSPEC_FAULTS: bad rate " ^ rate));
        r_seed =
          (match int_of_string_opt seed with
          | Some n -> n
          | None -> invalid_arg ("VSPEC_FAULTS: bad seed " ^ seed));
        r_key_filter = None }
    | [ site; rate; seed; filter ] ->
      { (parse_rule (String.concat ":" [ site; rate; seed ])) with
        r_key_filter = Some filter }
    | _ ->
      invalid_arg
        (Printf.sprintf "VSPEC_FAULTS: expected site:rate:seed[:key], got %S" s)

  let parse_spec s =
    if String.trim s = "" then []
    else List.map parse_rule (String.split_on_char ',' s)

  (* [None] = not yet resolved from the environment.  [set_spec]
     overrides (tests); the resolved list is immutable thereafter until
     the next override, so concurrent readers are safe. *)
  let rules : rule list option ref = ref None

  let set_spec s = rules := Some (parse_spec s)

  let current () =
    match !rules with
    | Some rs -> rs
    | None ->
      let rs =
        match Sys.getenv_opt "VSPEC_FAULTS" with
        | None | Some "" -> []
        | Some s -> parse_spec s
      in
      rules := Some rs;
      rs

  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0

  (* The injection decision is a pure hash of (seed, site, key,
     attempt): independent of domain scheduling and evaluation order,
     so injected runs are reproducible, and retries of the same key
     re-roll (the attempt is part of the hash), so transient injection
     below rate 1 eventually clears. *)
  let decision ~seed ~site ~key ~attempt =
    let d =
      Digest.string
        (Printf.sprintf "vspec-fault|%d|%s|%s|%d" seed (site_name site) key
           attempt)
    in
    let x = ref 0 in
    for i = 0 to 5 do
      x := (!x lsl 8) lor Char.code d.[i]
    done;
    float_of_int !x /. 281474976710656.0 (* / 2^48 -> uniform [0, 1) *)

  let fires ~site ~key ~attempt =
    let rec scan = function
      | [] -> None
      | r :: rest ->
        if
          r.r_site = site
          && (match r.r_key_filter with
             | None -> true
             | Some f -> contains ~sub:f key)
          && decision ~seed:r.r_seed ~site ~key ~attempt < r.r_rate
        then Some (Injected { site = site_name site; key })
        else scan rest
    in
    match current () with [] -> None | rs -> scan rs

  let check ~site ~key ~attempt =
    match fires ~site ~key ~attempt with
    | None -> ()
    | Some e -> raise (Fault e)
end

(* ------------------------------------------------------------------ *)
(* Retry policy                                                        *)
(* ------------------------------------------------------------------ *)

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> (
    match int_of_string_opt v with Some i when i >= 0 -> i | _ -> default)
  | None -> default

let max_retries () = env_int "VSPEC_RETRIES" 2

let backoff_cap = 0.050 (* seconds *)

let backoff attempt =
  let base = float_of_int (env_int "VSPEC_RETRY_BACKOFF_MS" 1) /. 1000.0 in
  let d = Float.min backoff_cap (base *. (2.0 ** float_of_int attempt)) in
  if d > 0.0 then Unix.sleepf d

let guard ?retries ?inject f =
  let retries = match retries with Some r -> max 0 r | None -> max_retries () in
  let rec go attempt =
    let outcome =
      match
        (match inject with
        | Some (site, key) -> Inject.check ~site ~key ~attempt
        | None -> ());
        f ~attempt
      with
      | v -> Ok v
      | exception e -> Error (of_exn e)
    in
    match outcome with
    | Ok v -> Ok v
    | Error e when is_transient e && attempt < retries ->
      backoff attempt;
      go (attempt + 1)
    | Error e -> Error (e, attempt + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Process-wide failure ledger                                         *)
(* ------------------------------------------------------------------ *)

module Ledger = struct
  type entry = {
    cell : string;
    err : error;
    attempts : int;
    permanent : bool;
  }

  let mu = Mutex.create ()
  let items : entry list ref = ref []

  let record ?(attempts = 1) ?(permanent = true) ~cell err =
    Mutex.lock mu;
    items := { cell; err; attempts; permanent } :: !items;
    Mutex.unlock mu

  let note ~cell err = record ~permanent:false ~cell err

  let entries () =
    Mutex.lock mu;
    let es = List.rev !items in
    Mutex.unlock mu;
    es

  let permanent_count () =
    List.length (List.filter (fun e -> e.permanent) (entries ()))

  let clear () =
    Mutex.lock mu;
    items := [];
    Mutex.unlock mu

  let exit_code () = if permanent_count () > 0 then 1 else 0

  let report oc =
    let es = entries () in
    if es <> [] then begin
      let perm = List.filter (fun e -> e.permanent) es in
      Printf.fprintf oc
        "[vspec] failure ledger: %d permanent failure(s), %d recovered/noted\n"
        (List.length perm)
        (List.length es - List.length perm);
      List.iter
        (fun e ->
          Printf.fprintf oc "  %s cell %s: %s (attempts=%d) -- %s\n"
            (if e.permanent then "FAILED " else "note   ")
            e.cell (class_name e.err) e.attempts (describe e.err))
        es
    end
end
