type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- row :: t.rows

let add_missing_row t ~label ~reason =
  let n = List.length t.columns in
  let row =
    match n with
    | 0 -> []
    | 1 -> [ label ]
    | _ ->
      label
      :: Printf.sprintf "(missing: %s)" reason
      :: List.init (n - 2) (fun _ -> "-")
  in
  t.rows <- row :: t.rows

(* Display width: count UTF-8 code points, not bytes, so bar glyphs align. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad width s =
  let w = display_width s in
  if w >= width then s else s ^ String.make (width - w) ' '

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row -> max acc (display_width (List.nth row i)))
          (display_width header) rows)
      t.columns
  in
  let buf = Buffer.create 1024 in
  let hline sep =
    Buffer.add_string buf
      (sep ^ String.concat sep (List.map (fun w -> String.make (w + 2) '-') widths) ^ sep ^ "\n")
  in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf (pad (List.nth widths i) cell))
      cells;
    Buffer.add_string buf " |\n"
  in
  Buffer.add_string buf (t.title ^ "\n");
  hline "+";
  emit_row t.columns;
  hline "+";
  List.iter emit_row rows;
  hline "+";
  Buffer.contents buf

let print t = print_string (render t)

let fmt_pct v = Printf.sprintf "%.1f%%" (v *. 100.0)

let fmt_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let fmt_speedup v = Printf.sprintf "%.3fx" v

let bar ?(width = 24) ~max v =
  if max <= 0.0 then String.make width ' '
  else begin
    let frac = Float.min 1.0 (Float.max 0.0 (v /. max)) in
    let eighths = int_of_float (Float.round (frac *. float_of_int (width * 8))) in
    let full = eighths / 8 and rem = eighths mod 8 in
    let partials = [| ""; "\xe2\x96\x8f"; "\xe2\x96\x8e"; "\xe2\x96\x8d";
                      "\xe2\x96\x8c"; "\xe2\x96\x8b"; "\xe2\x96\x8a"; "\xe2\x96\x89" |]
    in
    let b = Buffer.create width in
    for _ = 1 to full do
      Buffer.add_string b "\xe2\x96\x88"
    done;
    Buffer.add_string b partials.(rem);
    let used = full + if rem > 0 then 1 else 0 in
    Buffer.add_string b (String.make (width - used) ' ');
    Buffer.contents b
  end

let section title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line
