(** Fixed-size domain pool for embarrassingly parallel work.

    Each job is an independent computation; the pool fans jobs out
    across OCaml 5 domains and collects results in submission order, so
    a parallel run is observationally identical to the sequential one.
    Exceptions raised by a job are captured and re-raised (with their
    backtrace) in the calling domain after all workers have stopped.

    The pool size defaults to the [VSPEC_JOBS] environment variable,
    falling back to [Domain.recommended_domain_count () - 1] (the
    calling domain participates as a worker).  [jobs = 1] is an exact
    sequential fallback: every job runs in the calling domain, in
    order, with no domain spawned. *)

val default_jobs : unit -> int
(** [VSPEC_JOBS] if set to a positive integer, otherwise
    [max 1 (Domain.recommended_domain_count () - 1)]. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f xs] like [Array.map f xs] but parallel; [results.(i)]
    corresponds to [xs.(i)].  Scheduling is dynamic (work stealing via
    a shared index), so per-job cost imbalance is absorbed.  If any
    job raises, the first exception (in completion order) is re-raised
    after the pool drains. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}; results keep list order. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** Run thunks in parallel, results in submission order. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

val map_array_result :
  ?jobs:int -> ?retries:int -> ('a -> 'b) -> 'a array ->
  ('b, Fault.error) result array
(** Fault-contained {!map_array}: each job yields [Ok v] or
    [Error e] in place, and a failing job never aborts the rest of the
    batch.  Exceptions are classified through {!Fault.of_exn};
    transient classes are retried inside the job slot with capped
    exponential backoff ([retries] defaults to {!Fault.max_retries}).
    The [worker] injection site fires per job index, before each
    attempt.  Never raises. *)

val map_result :
  ?jobs:int -> ?retries:int -> ('a -> 'b) -> 'a list ->
  ('b, Fault.error) result list
(** List version of {!map_array_result}. *)

(** Thread-safe single-flight memo table.

    [find_or_compute t k f] returns the cached value for [k] or runs
    [f ()] to produce it.  When several domains ask for the same absent
    key concurrently, exactly one runs [f]; the others block until the
    value is published (single flight — one simulation per key, ever).
    If the producing [f] raises, the key is released (waiters retry,
    one of them becoming the new producer) and the exception propagates
    to the original caller. *)
module Memo : sig
  type ('k, 'v) t

  val create : int -> ('k, 'v) t
  (** [create n] with initial capacity hint [n]. *)

  val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  val find_opt : ('k, 'v) t -> 'k -> 'v option
  (** [None] also while a producer is in flight. *)

  val length : ('k, 'v) t -> int
  (** Number of published (completed) entries. *)

  val clear : ('k, 'v) t -> unit
end
