let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let median xs = percentile xs 50.0
let quartiles xs = (percentile xs 25.0, percentile xs 50.0, percentile xs 75.0)

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

(* Lanczos approximation, g=7, n=9. *)
let lanczos_coef =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos_coef.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Abramowitz & Stegun 7.1.26, max error 1.5e-7. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    ((((1.061405429 *. t -. 1.453152027) *. t +. 1.421413741) *. t
      -. 0.284496736)
     *. t
    +. 0.254829592)
    *. t
  in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let normal_cdf x = 0.5 *. (1.0 +. erf (x /. sqrt 2.0))

(* Continued fraction for the incomplete beta function (Numerical
   Recipes betacf). *)
let betacf a b x =
  let max_iter = 200 and eps = 3e-12 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then finished := true;
    incr m
  done;
  !h

let incomplete_beta ~a ~b ~x =
  if x < 0.0 || x > 1.0 then invalid_arg "Stats.incomplete_beta: x out of range";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)
  end

let student_t_cdf ~df t =
  let x = df /. (df +. (t *. t)) in
  let p = 0.5 *. incomplete_beta ~a:(df /. 2.0) ~b:0.5 ~x in
  if t > 0.0 then 1.0 -. p else p

let student_t_inv ~df p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Stats.student_t_inv: p out of range";
  let rec bisect lo hi iter =
    if iter = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if student_t_cdf ~df mid < p then bisect mid hi (iter - 1)
      else bisect lo mid (iter - 1)
    end
  in
  bisect (-1e3) 1e3 200

let ci95_mean xs =
  let n = Array.length xs in
  check_nonempty "Stats.ci95_mean" xs;
  let m = mean xs in
  if n < 2 then (m, m)
  else begin
    let se = stddev xs /. sqrt (float_of_int n) in
    let t = student_t_inv ~df:(float_of_int (n - 1)) 0.975 in
    (m -. (t *. se), m +. (t *. se))
  end

type ttest = { t_stat : float; df : float; p_value : float }

let welch_ttest xs ys =
  let nx = float_of_int (Array.length xs)
  and ny = float_of_int (Array.length ys) in
  if nx < 2.0 || ny < 2.0 then invalid_arg "Stats.welch_ttest: need >= 2 samples";
  let vx = variance xs /. nx and vy = variance ys /. ny in
  let denom = sqrt (vx +. vy) in
  if denom = 0.0 then { t_stat = 0.0; df = nx +. ny -. 2.0; p_value = 1.0 }
  else begin
    let t = (mean xs -. mean ys) /. denom in
    let df =
      ((vx +. vy) ** 2.0)
      /. ((vx ** 2.0 /. (nx -. 1.0)) +. (vy ** 2.0 /. (ny -. 1.0)))
    in
    let p = 2.0 *. (1.0 -. student_t_cdf ~df (Float.abs t)) in
    { t_stat = t; df; p_value = Float.min 1.0 (Float.max 0.0 p) }
  end

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n < 2 then invalid_arg "Stats.pearson: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let correlation_p_value ~n ~r =
  if n < 3 then 1.0
  else begin
    let df = float_of_int (n - 2) in
    let denom = 1.0 -. (r *. r) in
    if denom <= 0.0 then 0.0
    else begin
      let t = r *. sqrt (df /. denom) in
      let p = 2.0 *. (1.0 -. student_t_cdf ~df (Float.abs t)) in
      Float.min 1.0 (Float.max 0.0 p)
    end
  end

type regression = {
  slope : float;
  intercept : float;
  r2 : float;
  slope_ci95 : float * float;
}

let linear_regression xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_regression: length mismatch";
  if n < 3 then invalid_arg "Stats.linear_regression: need >= 3 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_regression: degenerate x";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  for i = 0 to n - 1 do
    let fit = intercept +. (slope *. xs.(i)) in
    ss_res := !ss_res +. ((ys.(i) -. fit) ** 2.0);
    ss_tot := !ss_tot +. ((ys.(i) -. my) ** 2.0)
  done;
  let r2 = if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  let df = float_of_int (n - 2) in
  let se_slope = sqrt (!ss_res /. df /. !sxx) in
  let t = student_t_inv ~df 0.975 in
  {
    slope;
    intercept;
    r2;
    slope_ci95 = (slope -. (t *. se_slope), slope +. (t *. se_slope));
  }

let bonferroni ~alpha ~tests =
  if tests <= 0 then invalid_arg "Stats.bonferroni: tests must be positive";
  alpha /. float_of_int tests

type significance = { significant : bool; practical : bool; p_value : float }

let practical_significance ~alpha ~tests ~min_effect ~baseline ~variant =
  let ({ p_value; _ } : ttest) = welch_ttest baseline variant in
  let threshold = bonferroni ~alpha ~tests in
  let mb = mean baseline and mv = mean variant in
  let effect = if mb = 0.0 then 0.0 else Float.abs ((mb -. mv) /. mb) in
  let significant = p_value < threshold in
  { significant; practical = significant && effect > min_effect; p_value }
