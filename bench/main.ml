(* The full reproduction harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (fig1..fig14 plus the paper-vs-measured summary) through the
   experiment registry.

   Part 2 is a Bechamel micro-benchmark suite of the reproduction's own
   moving parts — one Test.make per experiment-relevant component
   (interpreter iteration, optimized iteration per ISA, graph building,
   GC) — so regressions in the simulator itself are visible.

   Knobs: VSPEC_ITERS (default 200), VSPEC_REPS (default 5), VSPEC_BENCH
   (comma-separated ids), VSPEC_SKIP_MICRO=1 to skip the Bechamel part,
   VSPEC_JOBS (domain-pool size), VSPEC_CACHE_DIR (persistent result
   cache, "off" to disable), VSPEC_BENCH_OUT (timing report path). *)

open Bechamel
open Toolkit

let engine_for ?(opt = true) ?(arch = Arch.Arm64) src =
  let cfg = Engine.default_config ~arch () in
  let cfg = { cfg with Engine.enable_optimizer = opt } in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  eng

let warmed ?(arch = Arch.Arm64) src =
  let eng = engine_for ~arch src in
  for _ = 1 to 12 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  eng

let micro_tests () =
  let dp = (Option.get (Workloads.Suite.by_id "DP")).Workloads.Suite.source in
  let rich = (Option.get (Workloads.Suite.by_id "RICH")).Workloads.Suite.source in
  let interp_engine = engine_for ~opt:false dp in
  let jit_arm = warmed dp in
  let jit_x64 = warmed ~arch:Arch.X64 dp in
  let jit_ext = warmed ~arch:Arch.Arm64_smi_ext dp in
  let jit_rich = warmed rich in
  let compile_engine = warmed dp in
  let rt = Engine.runtime compile_engine in
  let dot_f =
    let h = rt.Runtime.heap in
    let v = Heap.cell_value h (Heap.global_cell h "dot") in
    Runtime.func rt (Heap.function_id_of h v)
  in
  let gc_heap = Heap.create ~size_words:(1 lsl 18) () in
  Test.make_grouped ~name:"vspec"
    [
      Test.make ~name:"interp-iteration-DP"
        (Staged.stage (fun () -> Engine.call_global interp_engine "bench" [||]));
      Test.make ~name:"jit-iteration-DP-arm64"
        (Staged.stage (fun () -> Engine.call_global jit_arm "bench" [||]));
      Test.make ~name:"jit-iteration-DP-x64"
        (Staged.stage (fun () -> Engine.call_global jit_x64 "bench" [||]));
      Test.make ~name:"jit-iteration-DP-smiext"
        (Staged.stage (fun () -> Engine.call_global jit_ext "bench" [||]));
      Test.make ~name:"jit-iteration-RICH-arm64"
        (Staged.stage (fun () -> Engine.call_global jit_rich "bench" [||]));
      Test.make ~name:"graph-build-DP"
        (Staged.stage (fun () ->
             Turbofan.Graph_builder.build
               (Turbofan.Graph_builder.default_config Arch.Arm64)
               rt dot_f));
      Test.make ~name:"mark-sweep-gc"
        (Staged.stage (fun () ->
             for _ = 1 to 50 do
               ignore (Heap.alloc_string gc_heap "transient garbage payload")
             done;
             Heap.gc gc_heap));
    ]

let run_micro () =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Support.Table.section "Simulator micro-benchmarks (host-side, Bechamel)";
  let t =
    Support.Table.create ~title:"nanoseconds per call (OLS estimate)"
      ~columns:[ "component"; "ns/run" ]
  in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      Support.Table.add_row t [ name; est ])
    results;
  Support.Table.print t

let () =
  print_endline
    "vspec reproduction harness: 'The Cost of Speculation' (IISWC 2021)";
  Printf.printf "iterations=%d repetitions=%d benchmarks=%d\n"
    (Experiments.Common.iterations ())
    (Experiments.Common.repetitions ())
    (List.length (Experiments.Common.suite ()));
  Printf.eprintf "[vspec] jobs=%d\n%!" (Support.Pool.default_jobs ());
  Experiments.Registry.run_all ();
  if Sys.getenv_opt "VSPEC_SKIP_MICRO" = None then run_micro ()
