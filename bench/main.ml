(* The full reproduction harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (fig1..fig14 plus the paper-vs-measured summary) through the
   experiment registry.

   Part 2 is a Bechamel micro-benchmark suite of the reproduction's own
   moving parts — one Test.make per experiment-relevant component
   (interpreter iteration, optimized iteration per ISA, graph building,
   GC) — so regressions in the simulator itself are visible.

   Knobs: VSPEC_ITERS (default 200), VSPEC_REPS (default 5), VSPEC_BENCH
   (comma-separated ids), VSPEC_SKIP_MICRO=1 to skip the Bechamel part,
   VSPEC_JOBS (domain-pool size), VSPEC_CACHE_DIR (persistent result
   cache, "off" to disable), VSPEC_BENCH_OUT (timing report path). *)

open Bechamel
open Toolkit

let engine_for ?(opt = true) ?(arch = Arch.Arm64) src =
  let cfg = Engine.default_config ~arch () in
  let cfg = { cfg with Engine.enable_optimizer = opt } in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  eng

let warmed ?(arch = Arch.Arm64) src =
  let eng = engine_for ~arch src in
  for _ = 1 to 12 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  eng

let micro_tests () =
  let dp = (Option.get (Workloads.Suite.by_id "DP")).Workloads.Suite.source in
  let rich = (Option.get (Workloads.Suite.by_id "RICH")).Workloads.Suite.source in
  let interp_engine = engine_for ~opt:false dp in
  let jit_arm = warmed dp in
  let jit_x64 = warmed ~arch:Arch.X64 dp in
  let jit_ext = warmed ~arch:Arch.Arm64_smi_ext dp in
  let jit_rich = warmed rich in
  let compile_engine = warmed dp in
  let rt = Engine.runtime compile_engine in
  let dot_f =
    let h = rt.Runtime.heap in
    let v = Heap.cell_value h (Heap.global_cell h "dot") in
    Runtime.func rt (Heap.function_id_of h v)
  in
  let gc_heap = Heap.create ~size_words:(1 lsl 18) () in
  Test.make_grouped ~name:"vspec"
    [
      Test.make ~name:"interp-iteration-DP"
        (Staged.stage (fun () -> Engine.call_global interp_engine "bench" [||]));
      Test.make ~name:"jit-iteration-DP-arm64"
        (Staged.stage (fun () -> Engine.call_global jit_arm "bench" [||]));
      Test.make ~name:"jit-iteration-DP-x64"
        (Staged.stage (fun () -> Engine.call_global jit_x64 "bench" [||]));
      Test.make ~name:"jit-iteration-DP-smiext"
        (Staged.stage (fun () -> Engine.call_global jit_ext "bench" [||]));
      Test.make ~name:"jit-iteration-RICH-arm64"
        (Staged.stage (fun () -> Engine.call_global jit_rich "bench" [||]));
      Test.make ~name:"graph-build-DP"
        (Staged.stage (fun () ->
             Turbofan.Graph_builder.build
               (Turbofan.Graph_builder.default_config Arch.Arm64)
               rt dot_f));
      Test.make ~name:"mark-sweep-gc"
        (Staged.stage (fun () ->
             for _ = 1 to 50 do
               ignore (Heap.alloc_string gc_heap "transient garbage payload")
             done;
             Heap.gc gc_heap));
    ]

let run_micro () =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Support.Table.section "Simulator micro-benchmarks (host-side, Bechamel)";
  let t =
    Support.Table.create ~title:"nanoseconds per call (OLS estimate)"
      ~columns:[ "component"; "ns/run" ]
  in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      Support.Table.add_row t [ name; est ])
    results;
  Support.Table.print t

(* ------------------------------------------------------------------ *)
(* Execution-engine micro-benchmarks (`--exec`, `make bench-exec`)     *)
(*                                                                     *)
(* Five synthetic code objects stress the hot shapes of JIT code —     *)
(* pure ALU dependency chains, load/store traffic, deopt-check         *)
(* sequences, and the two fusion-targeted patterns (check+branch       *)
(* pairs, load+untag pairs) — and run them through both executors,     *)
(* reporting simulated-instructions-per-second, the decoded/direct     *)
(* speedup, and the decoded engine's fusion coverage.  Results go to   *)
(* BENCH_exec.json; bench/guard.ml compares a fresh run against the    *)
(* committed file.                                                     *)
(* ------------------------------------------------------------------ *)

let exec_iters = 2000

let exec_codes () =
  let mk ?(deopts = [||]) insns =
    Code.assemble ~code_id:0 ~name:"xbench" ~arch:Arch.Arm64 ~deopts
      ~gp_slots:4 ~fp_slots:4 ~base_addr:0x100 insns
  in
  let i k = Insn.make k in
  let add ~dst ~src rhs =
    i (Insn.Alu { op = Insn.Add; dst; src; rhs; set_flags = false })
  in
  let loop_tail =
    [ add ~dst:0 ~src:0 (Insn.Imm 1);
      i (Insn.Cmp (0, Insn.Imm exec_iters));
      i (Insn.Bcond (Insn.Lt, 0));
      i (Insn.Mov (0, Insn.Reg 2));
      i Insn.Ret ]
  in
  let alu =
    (* 12 ALU ops per iteration: a dependent accumulator chain
       interleaved with independent work. *)
    mk
      ([ i (Insn.Mov (0, Insn.Imm 0));
         i (Insn.Mov (2, Insn.Imm 0));
         i (Insn.Mov (3, Insn.Imm 1));
         i (Insn.Label 0) ]
      @ List.concat
          (List.init 4 (fun _ ->
               [ add ~dst:2 ~src:2 (Insn.Reg 3);
                 i (Insn.Alu { op = Insn.Eor; dst = 4; src = 2;
                               rhs = Insn.Imm 21; set_flags = false });
                 add ~dst:5 ~src:4 (Insn.Reg 3) ]))
      @ loop_tail)
  in
  let loads =
    (* Two loads + a store + address arithmetic per iteration over a
       small working set (all L1 hits after warmup). *)
    mk
      ([ i (Insn.Mov (0, Insn.Imm 0));
         i (Insn.Mov (1, Insn.Imm 16)) (* word 8 *);
         i (Insn.Mov (2, Insn.Imm 0));
         i (Insn.Label 0);
         i (Insn.Ldr (3, Insn.mk_addr 1));
         i (Insn.Ldr (4, Insn.mk_addr ~offset:2 1));
         add ~dst:2 ~src:3 (Insn.Reg 4);
         i (Insn.Str (Insn.mk_addr ~offset:4 1, 2));
         i (Insn.Ldr (5, Insn.mk_addr ~offset:6 1)) ]
      @ loop_tail)
  in
  let checks =
    (* Four never-taken deopt checks per iteration, carrying Check
       provenance so the per-group counter path is exercised. *)
    let deopts =
      [| { Code.dp_id = 0; reason = Insn.Not_a_smi; bc_pc = 0; frame = [||];
           accumulator = Code.Fv_dead } |]
    in
    let cprov role =
      Insn.Check { group = Insn.G_not_smi; role }
    in
    mk ~deopts
      ([ i (Insn.Mov (0, Insn.Imm 0));
         i (Insn.Mov (2, Insn.Imm 2)) (* even: Tst.Ne never fires *);
         i (Insn.Mov (3, Insn.Imm 1));
         i (Insn.Label 0) ]
      @ List.concat
          (List.init 4 (fun _ ->
               [ Insn.make ~prov:(cprov Insn.Role_condition)
                   (Insn.Tst (2, Insn.Imm 1));
                 Insn.make ~prov:(cprov Insn.Role_branch)
                   (Insn.Deopt_if (Insn.Ne, 0));
                 add ~dst:2 ~src:2 (Insn.Imm 2) ]))
      @ loop_tail)
  in
  let checkbr =
    (* Check+branch-heavy: four tst/deopt_if pairs and the loop's
       cmp/b.cond back to back, all on one i-cache line, so every
       check in the loop body fuses into a single dispatch slot. *)
    let deopts =
      [| { Code.dp_id = 0; reason = Insn.Not_a_smi; bc_pc = 0; frame = [||];
           accumulator = Code.Fv_dead } |]
    in
    let cprov role = Insn.Check { group = Insn.G_not_smi; role } in
    mk ~deopts
      ([ i (Insn.Mov (0, Insn.Imm 0));
         i (Insn.Mov (2, Insn.Imm 2)) (* even: Tst.Ne never fires *);
         i (Insn.Label 0) ]
      @ List.concat
          (List.init 4 (fun _ ->
               [ Insn.make ~prov:(cprov Insn.Role_condition)
                   (Insn.Tst (2, Insn.Imm 1));
                 Insn.make ~prov:(cprov Insn.Role_branch)
                   (Insn.Deopt_if (Insn.Ne, 0)) ]))
      @ loop_tail)
  in
  let smiload =
    (* Load+untag-heavy: four ldr/asr pairs per iteration — the
       software shape the ARM64 [jsldrsmi] extension fuses in
       hardware, fused in the decoded engine's dispatch instead. *)
    mk
      ([ i (Insn.Mov (0, Insn.Imm 0));
         i (Insn.Mov (1, Insn.Imm 16)) (* word 8 *);
         i (Insn.Mov (2, Insn.Imm 0));
         i (Insn.Label 0) ]
      @ List.concat
          (List.init 4 (fun k ->
               [ i (Insn.Ldr (3 + k, Insn.mk_addr ~offset:(2 * k) 1));
                 i (Insn.Alu { op = Insn.Asr; dst = 3 + k; src = 3 + k;
                               rhs = Insn.Imm 1; set_flags = false }) ]))
      @ loop_tail)
  in
  [ ("alu", alu); ("loads", loads); ("checks", checks);
    ("checkbr", checkbr); ("smiload", smiload) ]

let exec_reps () =
  match Sys.getenv_opt "VSPEC_EXEC_REPS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 60)
  | None -> 60

type exec_meas = {
  m_rate : float;  (* simulated instructions / host second *)
  m_insns : int;  (* simulated instructions retired in the timed reps *)
  m_fused : int;  (* of which retired inside fused pairs *)
  m_by_kind : int array;  (* fused-pair executions per Perf fuse kind *)
  m_blocks : int;  (* block-granular counter charges taken *)
}

let measure_exec ?(decoded = false) run code =
  let cpu = Cpu.create Cpu.fast_arm64 in
  let host =
    { Exec.memory = Array.make 64 0;
      call_builtin = (fun _ _ -> 0);
      call_js = (fun _ _ -> 0) }
  in
  let reps = exec_reps () in
  (* Warm the decode cache explicitly, then one untimed run warms the
     memory hierarchy and predictor — the timed region measures steady
     dispatch, not one-time decode cost. *)
  if decoded then Decode.warm code;
  ignore (run cpu ~host ~code ~args:[||]);
  let insns0 = cpu.Cpu.counters.Perf.jit_instructions in
  let fs = cpu.Cpu.fstats in
  let fused0 = fs.Perf.fused_retired in
  let kind0 = Array.copy fs.Perf.fused_by_kind in
  let blocks0 = fs.Perf.batched_blocks in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (run cpu ~host ~code ~args:[||])
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let insns = cpu.Cpu.counters.Perf.jit_instructions - insns0 in
  {
    m_rate = float_of_int insns /. (if dt > 0.0 then dt else 1e-9);
    m_insns = insns;
    m_fused = fs.Perf.fused_retired - fused0;
    m_by_kind = Array.mapi (fun k v -> v - kind0.(k)) fs.Perf.fused_by_kind;
    m_blocks = fs.Perf.batched_blocks - blocks0;
  }

let exec_report_path () =
  match Sys.getenv_opt "VSPEC_EXEC_BENCH_OUT" with
  | Some ("off" | "none" | "0") -> None
  | Some "" | None -> Some "BENCH_exec.json"
  | Some p -> Some p

(* Committed floor on the suite's fused-retired coverage, checked by
   bench/guard.ml against every fresh run.  The measured suite-wide
   coverage sits around 45–50%; anything under the floor means the
   fusion pass stopped matching the hot patterns.  (Coverage is a
   ratio of simulated-instruction counts, so it is deterministic —
   the floor guards against decode regressions, not host noise.) *)
let fusion_floor_pct = 50.0

(* Committed ceiling on the tracing-off overhead, checked by
   bench/guard.ml.  The zero-cost-when-disabled contract says every
   instrumentation site is a single load-and-branch when tracing is
   off; the probe below times a hot loop with a guarded emit per
   iteration against the same loop without one and reports the extra
   cost as a percentage. *)
let trace_overhead_limit_pct = 1.0

let measure_trace_overhead () =
  Trace.disable ();
  let iters = 1_000_000 in
  (* ~50ns of integer work per iteration, comparable to one decoded
     dispatch step, so the guarded emit is measured against a
     realistic hot-loop body rather than an empty loop. *)
  let work_step acc i =
    let a = (acc * 1103515245 + i) land 0x3FFFFFFF in
    let a = a lxor (a lsr 7) in
    let a = (a * 29 + 17) land 0x3FFFFFFF in
    a lxor (a lsl 3) land 0x3FFFFFFF
  in
  let plain () =
    let acc = ref 1 in
    for i = 1 to iters do
      acc := work_step !acc i
    done;
    !acc
  in
  let traced () =
    let acc = ref 1 in
    for i = 1 to iters do
      acc := work_step !acc i;
      (* The standard call-site idiom: guard keeps the argument
         construction off the disabled path. *)
      if !Trace.on then
        Trace.instant ~cat:"bench" ~arg:(string_of_int !acc) "tick"
    done;
    !acc
  in
  let time f =
    (* CPU time, not wall time: immune to scheduler preemption on a
       shared host, and the loops allocate nothing. *)
    let t0 = Sys.time () in
    let r = f () in
    (Sys.time () -. t0, r)
  in
  (* Keep results live so the loops cannot be optimised away. *)
  let sink = ref 0 in
  ignore (plain ());
  ignore (traced ());
  (* Paired design: each pair times both loops back to back (order
     alternating to cancel drift) and contributes one traced/plain
     ratio; adjacent legs share ambient host load, and the median
     discards pairs disturbed by a contention spike. *)
  let measure () =
    let ratios =
      Array.init 15 (fun k ->
          if k land 1 = 0 then begin
            let t_off, r1 = time plain in
            let t_on, r2 = time traced in
            sink := !sink lxor r1 lxor r2;
            t_on /. t_off
          end
          else begin
            let t_on, r2 = time traced in
            let t_off, r1 = time plain in
            sink := !sink lxor r1 lxor r2;
            t_on /. t_off
          end)
    in
    100.0 *. (Support.Stats.median ratios -. 1.0)
  in
  (* A sustained noise window can bias a whole measurement, so retry
     up to twice and keep the minimum: a transient spike cannot
     survive three attempts, while a real regression shows in all of
     them.  Stop early once comfortably under the ceiling. *)
  let rec attempt best remaining =
    let best = Float.min best (measure ()) in
    if remaining = 0 || best <= 0.5 *. trace_overhead_limit_pct then best
    else attempt best (remaining - 1)
  in
  let overhead = attempt infinity 2 in
  if !sink = max_int then print_char ' ';
  Float.max 0.0 overhead

let pct part whole =
  if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let run_exec_bench () =
  Support.Table.section
    "Execution-engine micro-benchmarks (simulated insns/sec)";
  let rows =
    List.map
      (fun (name, code) ->
        let direct = measure_exec Exec.run_direct code in
        let decoded = measure_exec ~decoded:true Decode.run code in
        (name, direct, decoded, decoded.m_rate /. direct.m_rate))
      (exec_codes ())
  in
  let t =
    Support.Table.create ~title:"pre-decoded engine vs direct interpreter"
      ~columns:[ "bench"; "direct Mi/s"; "decoded Mi/s"; "speedup"; "fused%" ]
  in
  List.iter
    (fun (name, direct, decoded, speedup) ->
      Support.Table.add_row t
        [ name;
          Printf.sprintf "%.1f" (direct.m_rate /. 1e6);
          Printf.sprintf "%.1f" (decoded.m_rate /. 1e6);
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.1f" (pct decoded.m_fused decoded.m_insns) ])
    rows;
  Support.Table.print t;
  let suite_insns =
    List.fold_left (fun a (_, _, d, _) -> a + d.m_insns) 0 rows
  in
  let suite_fused =
    List.fold_left (fun a (_, _, d, _) -> a + d.m_fused) 0 rows
  in
  Printf.printf "suite fused-retired coverage: %.1f%% (floor %.1f%%)\n"
    (pct suite_fused suite_insns) fusion_floor_pct;
  let trace_overhead = measure_trace_overhead () in
  Printf.printf "tracing-off overhead (guarded emit vs none): %.2f%% (limit %.1f%%)\n"
    trace_overhead trace_overhead_limit_pct;
  match exec_report_path () with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "{\n  \"reps\": %d,\n  \"iters\": %d,\n"
         (exec_reps ()) exec_iters);
    Buffer.add_string buf
      (Printf.sprintf
         "  \"suite_fused_retired_pct\": %.1f,\n  \"fusion_floor_pct\": %.1f,\n\
         \  \"trace_overhead_pct\": %.2f,\n\
         \  \"trace_overhead_limit_pct\": %.1f,\n\
         \  \"benches\": [\n"
         (pct suite_fused suite_insns) fusion_floor_pct trace_overhead
         trace_overhead_limit_pct);
    List.iteri
      (fun idx (name, direct, decoded, speedup) ->
        let pairs =
          String.concat ", "
            (List.init Perf.num_fuse_kinds (fun k ->
                 Printf.sprintf "%S: %d" (Perf.fuse_kind_name k)
                   decoded.m_by_kind.(k)))
        in
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"bench\": %S, \"direct_insns_per_sec\": %.0f, \
              \"decoded_insns_per_sec\": %.0f, \"speedup\": %.3f, \
              \"fused_retired_pct\": %.1f, \"blocks\": %d, \
              \"fused_pairs\": {%s}}%s\n"
             name direct.m_rate decoded.m_rate speedup
             (pct decoded.m_fused decoded.m_insns)
             decoded.m_blocks pairs
             (if idx = List.length rows - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    (try
       let oc = open_out path in
       Buffer.output_buffer oc buf;
       close_out oc;
       Printf.eprintf "[vspec] exec bench report -> %s\n%!" path
     with Sys_error m ->
       Printf.eprintf "[vspec] exec bench report not written: %s\n%!" m)

let () =
  if Array.exists (fun a -> a = "--exec") Sys.argv then begin
    run_exec_bench ();
    exit 0
  end;
  print_endline
    "vspec reproduction harness: 'The Cost of Speculation' (IISWC 2021)";
  Printf.printf "iterations=%d repetitions=%d benchmarks=%d\n"
    (Experiments.Common.iterations ())
    (Experiments.Common.repetitions ())
    (List.length (Experiments.Common.suite ()));
  Printf.eprintf "[vspec] jobs=%d\n%!" (Support.Pool.default_jobs ());
  Experiments.Registry.run_all ();
  if Sys.getenv_opt "VSPEC_SKIP_MICRO" = None then begin
    run_micro ();
    run_exec_bench ()
  end
