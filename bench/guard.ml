(* Performance regression guard for the execution-engine benchmarks.

   Compares a freshly generated BENCH_exec.json against the committed
   one and fails (exit 1) when the decoded engine's speedup on any
   committed bench drops by more than the tolerance — default 10%,
   overridable with VSPEC_PERF_TOLERANCE (a fraction, e.g. 0.15) —
   or when the fresh suite-wide fused-retired coverage falls below
   the committed fusion floor.  Speedups are decoded/direct ratios
   measured in the same process, so they are robust to host speed;
   coverage is a ratio of simulated-instruction counts, so it is
   exact.  Wired into `dune build @perf` / `make perf`.

   Usage: guard.exe --fresh FILE [--committed FILE] *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tolerance () =
  match Sys.getenv_opt "VSPEC_PERF_TOLERANCE" with
  | None | Some "" -> 0.10
  | Some s -> (
    match float_of_string_opt s with
    | Some v when v >= 0.0 -> v
    | _ ->
      Printf.eprintf "[guard] bad VSPEC_PERF_TOLERANCE %S, using 0.10\n" s;
      0.10)

let bench_re =
  Str.regexp "{\"bench\": \"\\([^\"]+\\)\"[^}]*\"speedup\": \\([0-9.]+\\)"

(* [(bench, speedup)] in file order. *)
let benches text =
  let rec go pos acc =
    match Str.search_forward bench_re text pos with
    | exception Not_found -> List.rev acc
    | p ->
      let name = Str.matched_group 1 text in
      let speedup = float_of_string (Str.matched_group 2 text) in
      go (p + 1) ((name, speedup) :: acc)
  in
  go 0 []

let float_field name text =
  match
    Str.search_forward
      (Str.regexp ("\"" ^ Str.quote name ^ "\": \\([0-9.]+\\)"))
      text 0
  with
  | exception Not_found -> None
  | _ -> float_of_string_opt (Str.matched_group 1 text)

let () =
  let fresh_path = ref "" in
  let committed_path = ref "BENCH_exec.json" in
  let rec parse = function
    | "--fresh" :: p :: rest ->
      fresh_path := p;
      parse rest
    | "--committed" :: p :: rest ->
      committed_path := p;
      parse rest
    | [] -> ()
    | a :: _ ->
      Printf.eprintf "[guard] unknown argument %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !fresh_path = "" then begin
    Printf.eprintf "usage: guard.exe --fresh FILE [--committed FILE]\n";
    exit 2
  end;
  let fresh = read_file !fresh_path in
  let committed = read_file !committed_path in
  let tol = tolerance () in
  let fresh_benches = benches fresh in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun (name, committed_speedup) ->
      match List.assoc_opt name fresh_benches with
      | None -> fail "bench %S missing from fresh run" name
      | Some fresh_speedup ->
        let floor = committed_speedup *. (1.0 -. tol) in
        Printf.printf "[guard] %-8s speedup %.3fx (committed %.3fx, floor %.3fx)%s\n"
          name fresh_speedup committed_speedup floor
          (if fresh_speedup < floor then "  << REGRESSION" else "");
        if fresh_speedup < floor then
          fail "bench %S speedup regressed: %.3fx < %.3fx (committed %.3fx - %.0f%%)"
            name fresh_speedup floor committed_speedup (100.0 *. tol))
    (benches committed);
  (match
     ( float_field "fusion_floor_pct" committed,
       float_field "suite_fused_retired_pct" fresh )
   with
  | Some floor, Some coverage ->
    Printf.printf "[guard] suite fusion coverage %.1f%% (floor %.1f%%)%s\n"
      coverage floor
      (if coverage < floor then "  << REGRESSION" else "");
    if coverage < floor then
      fail "suite fused-retired coverage %.1f%% fell below the floor %.1f%%"
        coverage floor
  | None, _ ->
    Printf.printf "[guard] committed file has no fusion floor; skipping\n"
  | _, None -> fail "fresh run reports no suite_fused_retired_pct");
  (match
     ( float_field "trace_overhead_limit_pct" committed,
       float_field "trace_overhead_pct" fresh )
   with
  | Some limit, Some overhead ->
    Printf.printf "[guard] tracing overhead %.2f%% (limit %.1f%%)%s\n" overhead
      limit
      (if overhead > limit then "  << REGRESSION" else "");
    if overhead > limit then
      fail "tracing overhead %.2f%% exceeds the %.1f%% limit" overhead limit
  | None, _ ->
    Printf.printf "[guard] committed file has no tracing limit; skipping\n"
  | _, None -> fail "fresh run reports no trace_overhead_pct");
  match !failures with
  | [] -> Printf.printf "[guard] OK (tolerance %.0f%%)\n" (100.0 *. tol)
  | fs ->
    List.iter (fun m -> Printf.eprintf "[guard] FAIL: %s\n" m) (List.rev fs);
    exit 1
