(* Quickstart: embed the engine, run JavaScript on the simulated CPU,
   watch it tier up, and read the performance counters.

     dune exec examples/quickstart.exe
*)

let source =
  {|
function fib(n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm2 = function() { return this.x * this.x + this.y * this.y; };

function bench() {
  var p = new Point(3, 4);
  return fib(15) + p.norm2();
}

print("fib(15) + |(3,4)|^2 =", bench());
|}

let () =
  (* 1. Build an engine: pick an ISA and (optionally) tune the config. *)
  let config = Engine.default_config ~arch:Arch.Arm64 () in
  let engine = Engine.create config source in

  (* 2. Run the top-level script (defines globals, prints once). *)
  let _ = Engine.run_main engine in
  print_string (Engine.output engine);

  (* 3. Call a global function repeatedly: the engine interprets first,
     collects type feedback, and optimizes once it is hot. *)
  for i = 1 to 12 do
    let v = Engine.call_global engine "bench" [||] in
    if i mod 4 = 0 then
      Printf.printf "iteration %2d -> %d (compiled functions so far: %d)\n" i
        (v asr 1) (* untag the SMI *)
        (Engine.compile_count engine)
  done;

  (* 4. Hardware-style counters from the simulated CPU. *)
  let c = (Engine.cpu engine).Cpu.counters in
  Printf.printf
    "\nsimulated CPU: %.0f cycles, %d instructions (%d in JIT code)\n"
    (Engine.cycles engine) c.Perf.instructions c.Perf.jit_instructions;
  Printf.printf
    "deopt checks executed: %d (%.1f per 100 JIT instructions), deopt events: %d\n"
    c.Perf.check_instructions
    (100.0 *. float_of_int c.Perf.check_instructions
     /. float_of_int (max 1 c.Perf.jit_instructions))
    c.Perf.deopt_events;

  (* 5. Look at the machine code of a hot function. *)
  match Engine.compile_now engine "fib" with
  | Ok code ->
    Printf.printf "\noptimized code for fib (%d instructions, %d checks):\n\n"
      (Code.real_instructions code)
      (Code.static_check_instructions code);
    print_string (Code.listing code)
  | Error m -> Printf.printf "fib did not compile: %s\n" m
