(* Anatomy of deoptimization checks in one function (paper Figs 3-5):

   1. compile a property-heavy kernel and dump the annotated listing
      with PC-sample counts and ground-truth check provenance;
   2. break the speculation at runtime and watch it deoptimize and
      recompile;
   3. short-circuit check groups in the graph and measure how much code
      each one drags out with it.

     dune exec examples/check_anatomy.exe
*)

let source =
  {|
function Particle(x, v) { this.x = x; this.v = v; }
var ps = [];
for (var i = 0; i < 16; i++) ps.push(new Particle(i, 16 - i));
function step(bound) {
  var energy = 0;
  for (var i = 0; i < ps.length; i++) {
    var p = ps[i];
    p.x = (p.x + p.v) % bound;
    energy = (energy + p.x * p.x) % 1000003;
  }
  return energy;
}
function bench() { return step(977); }
|}

let () =
  let config = Engine.default_config ~arch:Arch.Arm64 () in
  let eng = Engine.create config source in
  let _ = Engine.run_main eng in
  for _ = 1 to 150 do
    ignore (Engine.call_global eng "bench" [||])
  done;

  (* 1. Annotated listing: sample counts on the left, provenance tags on
     the right. *)
  let h = (Engine.runtime eng).Runtime.heap in
  let step_fn = Heap.cell_value h (Heap.global_cell h "step") in
  let fid = Heap.function_id_of h step_fn in
  (match (Engine.code_of_fid eng fid, Engine.sampler eng) with
  | Some code, Some sampler ->
    let samples =
      Perf.samples_for sampler ~code_id:code.Code.code_id
        ~size:(Array.length code.Code.insns)
    in
    print_endline "=== step() with PC-sample counts (cf. paper Fig 3) ===\n";
    print_string (Code.listing ~samples code)
  | _ -> print_endline "step() not compiled?");

  (* 2. Break the speculation: make one particle's x a double. *)
  let ps = Heap.cell_value h (Heap.global_cell h "ps") in
  let p0 = Heap.array_get h ps 0 in
  Heap.set_property h p0 "x" (Heap.alloc_heap_number h 0.5);
  ignore (Engine.call_global eng "bench" [||]);
  print_endline "\n=== after poisoning ps[0].x with a double ===";
  List.iter
    (fun (r, n) -> Printf.printf "deopt %-16s fired %d time(s)\n" (Insn.reason_name r) n)
    (Engine.deopt_counts eng);
  Printf.printf "compilations so far: %d (the function recompiled with wider feedback)\n"
    (Engine.compile_count eng);

  (* 3. Short-circuit each check group in the optimizer graph. *)
  let rt = Engine.runtime eng in
  let f = Runtime.func rt fid in
  print_endline "\n=== graph-level check removal (cf. paper Fig 5) ===";
  List.iter
    (fun grp ->
      let g =
        Turbofan.Graph_builder.build
          (Turbofan.Graph_builder.default_config Arch.Arm64)
          rt f
      in
      ignore (Turbofan.Reducer.run_dce g);
      let before = Turbofan.Son.node_count g in
      let st = Turbofan.Reducer.short_circuit_checks g ~groups:[ grp ] in
      Printf.printf
        "%-12s: %2d checks removed, %2d dead ancestor nodes, %3d -> %3d nodes\n"
        (Insn.group_name grp) st.Turbofan.Reducer.checks_removed
        st.Turbofan.Reducer.nodes_dce_removed before
        (Turbofan.Son.node_count g))
    Insn.all_groups
