(* The jsldrsmi ISA extension end to end (paper Section V): compile the
   SMI dot-product kernel for plain ARM64 and for the extended ISA,
   diff the generated code, and time both on an in-order and an
   out-of-order core.

     dune exec examples/isa_extension.exe
*)

let dp = Option.get (Workloads.Suite.by_id "DP")

let compile arch =
  let config = Engine.default_config ~arch () in
  let eng = Engine.create config dp.Workloads.Suite.source in
  let _ = Engine.run_main eng in
  for _ = 1 to 20 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  match Engine.compile_now eng "dot" with
  | Ok code -> code
  | Error m -> failwith ("compile failed: " ^ m)

let time arch (cpu : Cpu.config) =
  let config =
    { (Engine.default_config ~arch ()) with Engine.cpu }
  in
  let r = Experiments.Harness.run ~iterations:60 ~config dp in
  Experiments.Harness.steady_state_cycles r

let () =
  let plain = compile Arch.Arm64 in
  let ext = compile Arch.Arm64_smi_ext in
  Printf.printf
    "dot() on plain ARM64: %d instructions, %d check instructions\n"
    (Code.real_instructions plain)
    (Code.static_check_instructions plain);
  Printf.printf
    "dot() with jsldrsmi:  %d instructions, %d check instructions\n\n"
    (Code.real_instructions ext)
    (Code.static_check_instructions ext);
  print_endline "--- extended-ISA inner loop (note the fused loads and the";
  print_endline "    REG_BA prologue replacing explicit tst+b.ne checks) ---\n";
  print_string (Code.listing ext);
  let table =
    Support.Table.create ~title:"steady-state cycles per iteration"
      ~columns:[ "CPU model"; "default ISA"; "jsldrsmi"; "speedup" ]
  in
  List.iter
    (fun cpu ->
      let base = time Arch.Arm64 cpu in
      let fused = time Arch.Arm64_smi_ext cpu in
      Support.Table.add_row table
        [ cpu.Cpu.cfg_name;
          Printf.sprintf "%.0f" base;
          Printf.sprintf "%.0f" fused;
          Support.Table.fmt_speedup (base /. fused) ])
    [ Cpu.inorder_a55; Cpu.o3_kpg ];
  Support.Table.print table
