(* The paper's motivating SpMV study (Sections II-C, III-B3): the same
   CSR sparse matrix-vector kernel over three element types — SMIs,
   large integers, doubles — with checks enabled and removed.

   The paper's finding: with checks, the SMI variant can be *slower*
   than the double variant despite 31-bit integer arithmetic being the
   conceptually cheapest, because SMI arithmetic needs Not-a-SMI and
   overflow checks everywhere.

     dune exec examples/spmv_types.exe
*)

let iterations = 120

let run variant (b : Workloads.Suite.benchmark) =
  let config =
    Experiments.Common.config_for ~arch:Arch.Arm64 ~seed:1 variant
  in
  Experiments.Harness.run ~iterations ~config b

let () =
  let table =
    Support.Table.create
      ~title:"SpMV-CSR steady-state cycles per iteration (ARM64)"
      ~columns:
        [ "element type"; "with checks"; "checks removed"; "check cost";
          "checks/100 instr" ]
  in
  List.iter
    (fun id ->
      let b = Option.get (Workloads.Suite.by_id id) in
      let removable, _ =
        Experiments.Common.removable_groups ~arch:Arch.Arm64 b
      in
      let with_checks = run Experiments.Common.V_normal b in
      let without = run (Experiments.Common.V_no_checks removable) b in
      let s1 = Experiments.Harness.steady_state_cycles with_checks in
      let s2 = Experiments.Harness.steady_state_cycles without in
      Support.Table.add_row table
        [ id;
          Printf.sprintf "%.0f" s1;
          Printf.sprintf "%.0f" s2;
          Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (s2 /. s1)));
          Printf.sprintf "%.1f" (Experiments.Harness.checks_per_100 with_checks) ])
    [ "SPMV-CSR-SMI"; "SPMV-CSR-INT"; "SPMV-CSR-FLOAT" ];
  Support.Table.print table;
  print_endline
    "\nThe SMI variant pays for overflow and Not-a-SMI checks that the\n\
     double variant does not need -- the paper's argument for optimizing\n\
     check conditions (and the jsldrsmi extension) rather than the\n\
     deoptimization path."
