(* A D8-style shell for the engine: run a JS file (or inline source) on
   the simulated CPU, optionally dumping bytecode, optimized code and
   performance counters. *)

let run_file path inline arch_name no_opt baseline dump_code dump_stats iterations entry trace_path =
  (* Tracing first, so the parse/compile of the script itself is
     captured.  A bad destination degrades to an untraced run with a
     one-line warning (Support.Fault containment style), not a crash. *)
  (match Trace.setup ?path:trace_path () with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "d8: warning: %s\n%!" msg);
  let source =
    match (path, inline) with
    | Some p, _ ->
      let ic = open_in_bin p in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    | None, Some s -> s
    | None, None ->
      prerr_endline "d8: provide a file or -e source";
      exit 2
  in
  let arch =
    match Machine.Arch.of_name arch_name with
    | Some a -> a
    | None ->
      Printf.eprintf "d8: unknown arch %s (x64, arm64, arm64+smi)\n" arch_name;
      exit 2
  in
  let cfg = Engine.default_config ~arch () in
  let cfg =
    { cfg with
      Engine.enable_optimizer = not no_opt;
      enable_baseline = baseline }
  in
  let eng = Engine.create cfg source in
  (try
     let _ = Engine.run_main eng in
     (match entry with
     | None -> ()
     | Some name ->
       for _ = 1 to iterations do
         ignore (Engine.call_global eng name [||])
       done)
   with
  | Jsvm.Builtins.Js_error m ->
    print_string (Engine.output eng);
    Printf.eprintf "JS error: %s\n" m;
    exit 1
  | Jsvm.Parser.Parse_error m | Jsvm.Lexer.Lex_error m ->
    Printf.eprintf "parse error: %s\n" m;
    exit 1);
  print_string (Engine.output eng);
  if dump_code then
    List.iter
      (fun code -> print_string (Machine.Code.listing code))
      (Engine.all_codes eng);
  if dump_stats then begin
    let c = (Engine.cpu eng).Machine.Cpu.counters in
    Printf.printf
      "-- stats: cycles=%.0f instructions=%d jit=%d checks=%d branches=%d \
       mispredicts=%d deopts=%d compiles=%d gcs=%d\n"
      (Engine.cycles eng) c.Machine.Perf.instructions
      c.Machine.Perf.jit_instructions c.Machine.Perf.check_instructions
      c.Machine.Perf.branches c.Machine.Perf.mispredicts
      c.Machine.Perf.deopt_events
      (Engine.compile_count eng)
      (Jsvm.Heap.gc_count (Engine.runtime eng).Jsvm.Runtime.heap)
  end

open Cmdliner

let path =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"JavaScript file to run.")

let inline =
  Arg.(value & opt (some string) None & info [ "e" ] ~docv:"SRC" ~doc:"Inline source.")

let arch =
  Arg.(value & opt string "arm64" & info [ "arch" ] ~docv:"ARCH" ~doc:"Target ISA: x64, arm64, arm64+smi.")

let no_opt =
  Arg.(value & flag & info [ "no-opt" ] ~doc:"Interpreter only (no optimizing JIT).")

let baseline =
  Arg.(value & flag & info [ "baseline" ] ~doc:"Enable the SparkPlug-style baseline tier.")

let dump_code =
  Arg.(value & flag & info [ "print-code" ] ~doc:"Dump optimized machine code.")

let dump_stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print CPU counters at exit.")

let iterations =
  Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Iterations of --entry.")

let entry =
  Arg.(value & opt (some string) None & info [ "entry" ] ~docv:"FN" ~doc:"Global function to call N times after the script runs.")

let trace_path =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc:"Write an execution trace to $(docv) at exit (format from the extension: .json Chrome/Perfetto, .folded flamegraph, .csv counters). Defaults to $(b,VSPEC_TRACE) when set.")

let cmd =
  let doc = "run JavaScript on the simulated V8-style engine" in
  Cmd.v (Cmd.info "vspec-d8" ~doc)
    Term.(const run_file $ path $ inline $ arch $ no_opt $ baseline $ dump_code $ dump_stats $ iterations $ entry $ trace_path)

let () = exit (Cmd.eval cmd)
