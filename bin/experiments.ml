(* CLI for the paper-reproduction experiments: run one figure or all.

   Environment knobs: VSPEC_ITERS (iterations per run), VSPEC_REPS
   (repetitions for the statistical figures), VSPEC_BENCH
   (comma-separated benchmark ids to restrict the suite), VSPEC_JOBS
   (domain-pool size; 1 = sequential), VSPEC_CACHE_DIR (persistent
   result cache location, "off" to disable), VSPEC_BENCH_OUT (timing
   report path, default BENCH_suite.json).

   Fault-handling knobs: VSPEC_MAX_CYCLES (watchdog cycle budget per
   engine entry, "off" to disable), VSPEC_RETRIES / VSPEC_RETRY_BACKOFF_MS
   (transient-fault retry policy), VSPEC_FAULTS (deterministic fault
   injection, site:rate:seed[:keyfilter] comma-list), VSPEC_VERIFY
   (checksum cells against the interpreter-only reference),
   VSPEC_REGEX_STEPS (regex backtracking budget).

   Tracing knobs: --trace PATH / VSPEC_TRACE (execution trace written
   at exit; .json Chrome/Perfetto, .folded flamegraph, .csv counter
   timelines), VSPEC_TRACE_BUF (ring-buffer event capacity).

   Exit codes: 0 = clean; 1 = degraded (at least one cell permanently
   failed -- the failure report on stderr lists each cell, its error
   class and attempt count, and the affected figure cells render as
   missing); 2 = unknown experiment id. *)

let list_experiments () =
  print_endline "available experiments:";
  List.iter
    (fun (e : Experiments.Registry.entry) ->
      Printf.printf "  %-8s %s\n" e.Experiments.Registry.id
        e.Experiments.Registry.title)
    Experiments.Registry.all

let run_ids ids =
  if ids = [] then begin
    list_experiments ();
    print_endline "\n(running everything; pass ids to restrict)";
    Experiments.Registry.run_all ()
  end
  else begin
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | Some e -> Experiments.Registry.run_timed e
        | None ->
          Printf.eprintf "unknown experiment %s\n" id;
          list_experiments ();
          exit 2)
      ids;
    Experiments.Timing.write_report ()
  end;
  (* Degraded-run contract: every permanent cell failure was contained
     (its figure cells render as missing), reported here, and turned
     into exit code 1 so CI can tell a degraded run from a clean one. *)
  Support.Fault.Ledger.report stderr;
  exit (Support.Fault.Ledger.exit_code ())

open Cmdliner

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (fig1..fig14, summary).")

let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let trace_path =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc:"Write an execution trace to $(docv) at exit (format from the extension: .json Chrome/Perfetto, .folded flamegraph, .csv counters). Defaults to $(b,VSPEC_TRACE) when set.")

let main list_only trace_path ids =
  (match Trace.setup ?path:trace_path () with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "vspec: warning: %s\n%!" msg);
  if list_only then list_experiments () else run_ids ids

let cmd =
  let doc = "reproduce the paper's tables and figures" in
  Cmd.v
    (Cmd.info "vspec-experiments" ~doc)
    Term.(const main $ list_flag $ trace_path $ ids)

let () = exit (Cmd.eval cmd)
