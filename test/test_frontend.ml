(* Lexer, parser, bytecode compiler and regex engine tests. *)

(* ---------------- Lexer ---------------- *)

let toks src =
  Array.to_list (Array.map (fun t -> t.Lexer.tok) (Lexer.tokenize src))

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6 (List.length (toks "var x = 1 ;"));
  (match toks "1.5e3" with
  | [ Lexer.Tnum f; Lexer.Teof ] ->
    Alcotest.(check bool) "float" true (f = 1500.0)
  | _ -> Alcotest.fail "expected one number");
  (match toks "0xFF" with
  | [ Lexer.Tnum f; Lexer.Teof ] -> Alcotest.(check bool) "hex" true (f = 255.0)
  | _ -> Alcotest.fail "expected hex number")

let test_lexer_strings () =
  match toks {|"a\nb" 'c\'d'|} with
  | [ Lexer.Tstr a; Lexer.Tstr b; Lexer.Teof ] ->
    Alcotest.(check string) "escapes" "a\nb" a;
    Alcotest.(check string) "single quotes" "c'd" b
  | _ -> Alcotest.fail "expected two strings"

let test_lexer_comments () =
  Alcotest.(check int) "comments skipped" 2
    (List.length (toks "// line\n/* block\nmore */ x"))

let test_lexer_multichar_ops () =
  match toks ">>> === >>>= <=" with
  | [ Lexer.Tpunct a; Lexer.Tpunct b; Lexer.Tpunct c; Lexer.Tpunct d; Lexer.Teof ] ->
    Alcotest.(check (list string)) "ops" [ ">>>"; "==="; ">>>="; "<=" ] [ a; b; c; d ]
  | _ -> Alcotest.fail "expected four punctuators"

let test_lexer_error () =
  Alcotest.(check bool) "bad char raises" true
    (try
       ignore (Lexer.tokenize "var # = 1");
       false
     with Lexer.Lex_error _ -> true)

(* ---------------- Parser ---------------- *)

let expr s = Ast.expr_to_string (Parser.parse_expression s)

let test_parser_precedence () =
  Alcotest.(check string) "mul binds tighter" "(1 + (2 * 3))" (expr "1 + 2 * 3");
  Alcotest.(check string) "parens" "((1 + 2) * 3)" (expr "(1 + 2) * 3");
  Alcotest.(check string) "compare vs arith" "((1 + 2) < (3 * 4))"
    (expr "1 + 2 < 3 * 4");
  Alcotest.(check string) "logical" "((a && b) || c)" (expr "a && b || c");
  Alcotest.(check string) "shift" "((1 << 2) + 3)" (expr "(1 << 2) + 3")

let test_parser_unary_postfix () =
  Alcotest.(check string) "unary minus" "(1 - -2)" (expr "1 - -2");
  Alcotest.(check string) "typeof" "(typeof x == \"number\")"
    (expr {|typeof x == "number"|});
  Alcotest.(check string) "postfix" "x++" (expr "x++");
  Alcotest.(check string) "prefix" "++x" (expr "++x")

let test_parser_calls_members () =
  Alcotest.(check string) "chain" "a.b.c" (expr "a.b.c");
  Alcotest.(check string) "index" "a[(i + 1)]" (expr "a[i+1]");
  Alcotest.(check string) "method" "a.f(1, 2)" (expr "a.f(1,2)");
  Alcotest.(check string) "new" "new F(1)" (expr "new F(1)");
  Alcotest.(check string) "ternary" "(c ? 1 : 2)" (expr "c ? 1 : 2")

let test_parser_statements () =
  let p = Parser.parse "function f(a) { if (a) return 1; else return 2; } var x = f(0);" in
  Alcotest.(check int) "two statements" 2 (List.length p);
  (match p with
  | [ Ast.Func_decl f; Ast.Var_decl [ ("x", Some _) ] ] ->
    Alcotest.(check (option string)) "name" (Some "f") f.Ast.fname;
    Alcotest.(check (list string)) "params" [ "a" ] f.Ast.params
  | _ -> Alcotest.fail "unexpected shape")

let test_parser_loops () =
  match Parser.parse "for (var i = 0; i < 3; i++) { s += i; } while (x) x--; do y++; while (y < 5)" with
  | [ Ast.For (Some _, Some _, Some _, _); Ast.While (_, _); Ast.Do_while (_, _) ] ->
    ()
  | _ -> Alcotest.fail "loop shapes"

let test_parser_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (try
           ignore (Parser.parse src);
           false
         with Parser.Parse_error _ | Lexer.Lex_error _ -> true))
    [ "var"; "if (x"; "function () {}"; "1 +"; "a["; "return}}" ]

(* ---------------- Bytecode compiler ---------------- *)

let compile src = Bcompiler.compile src

let test_compile_jump_targets_valid () =
  (* All workload programs: every jump target lands inside the code and
     every feedback slot is within the vector. *)
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let u = compile b.Workloads.Suite.source in
      Array.iter
        (fun (f : Bytecode.func_info) ->
          let n = Array.length f.Bytecode.code in
          Array.iter
            (fun op ->
              (match op with
              | Bytecode.Jump t | Bytecode.Jump_if_false t | Bytecode.Jump_if_true t ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s: jump in range" b.Workloads.Suite.id
                     f.Bytecode.name)
                  true (t >= 0 && t <= n)
              | _ -> ());
              match Bytecode.is_feedback_site op with
              | Some fb ->
                Alcotest.(check bool) "feedback slot in range" true
                  (fb >= 0 && fb < f.Bytecode.n_feedback)
              | None -> ())
            f.Bytecode.code)
        u.Bcompiler.functions)
    Workloads.Suite.all

let test_compile_closure_capture () =
  let u = compile "function outer() { var c = 0; return function() { c = c + 1; return c; }; }" in
  let outer =
    Array.to_list u.Bcompiler.functions
    |> List.find (fun (f : Bytecode.func_info) -> f.Bytecode.name = "outer")
  in
  Alcotest.(check bool) "captured var -> context slot" true
    (outer.Bytecode.context_slots > 0)

let test_compile_no_capture_no_context () =
  let u = compile "function f(x) { return x + 1; }" in
  let f =
    Array.to_list u.Bcompiler.functions
    |> List.find (fun (f : Bytecode.func_info) -> f.Bytecode.name = "f")
  in
  Alcotest.(check int) "no context" 0 f.Bytecode.context_slots

let test_disassemble_runs () =
  let u = compile "function f(a, b) { return a * b + 1; }" in
  Array.iter
    (fun f ->
      let d = Bytecode.disassemble f in
      Alcotest.(check bool) "non-empty" true (String.length d > 0))
    u.Bcompiler.functions

(* ---------------- Regex ---------------- *)

let test_regex_literal () =
  let re = Regex.compile "abc" in
  Alcotest.(check bool) "match" true (Regex.test re "xxabcxx");
  Alcotest.(check bool) "no match" false (Regex.test re "abd")

let test_regex_classes () =
  let re = Regex.compile "[a-c]+[0-9]" in
  Alcotest.(check bool) "match" true (Regex.test re "zzabc7");
  Alcotest.(check bool) "no match" false (Regex.test re "abcx");
  let neg = Regex.compile "[^0-9]+" in
  Alcotest.(check bool) "negated" true (Regex.test neg "abc");
  Alcotest.(check bool) "negated no match" false (Regex.test neg "123")

let test_regex_escapes () =
  Alcotest.(check bool) "\\d" true (Regex.test (Regex.compile "\\d\\d") "a42");
  Alcotest.(check bool) "\\w" true (Regex.test (Regex.compile "\\w+") "x_1");
  Alcotest.(check bool) "\\s" true (Regex.test (Regex.compile "a\\sb") "a b")

let test_regex_anchors () =
  Alcotest.(check bool) "^ match" true (Regex.test (Regex.compile "^ab") "abc");
  Alcotest.(check bool) "^ no match" false (Regex.test (Regex.compile "^bc") "abc");
  Alcotest.(check bool) "$ match" true (Regex.test (Regex.compile "bc$") "abc")

let test_regex_quantifiers () =
  Alcotest.(check bool) "star" true (Regex.test (Regex.compile "ab*c") "ac");
  Alcotest.(check bool) "plus" false (Regex.test (Regex.compile "ab+c") "ac");
  Alcotest.(check bool) "opt" true (Regex.test (Regex.compile "ab?c") "abc");
  Alcotest.(check bool) "{2,3}" true (Regex.test (Regex.compile "a{2,3}") "baaa");
  Alcotest.(check bool) "{4}" false (Regex.test (Regex.compile "^a{4}$") "aaa")

let test_regex_alternation_groups () =
  let re = Regex.compile "(foo|ba(r|z))+" in
  (match Regex.exec re "xxfoobazyy" 0 with
  | Some m ->
    Alcotest.(check int) "start" 2 m.Regex.m_start;
    Alcotest.(check int) "end" 8 m.Regex.m_end
  | None -> Alcotest.fail "should match");
  let d = Regex.compile "(\\d+)-(\\d+)" in
  match Regex.exec d "on 2021-06 ok" 0 with
  | Some m ->
    Alcotest.(check (option (pair int int))) "group 1" (Some (3, 7)) m.Regex.captures.(1);
    Alcotest.(check (option (pair int int))) "group 2" (Some (8, 10)) m.Regex.captures.(2)
  | None -> Alcotest.fail "should match"

let test_regex_lazy () =
  let greedy = Regex.compile "<.+>" in
  let lazy_ = Regex.compile "<.+?>" in
  (match Regex.exec greedy "<a><b>" 0 with
  | Some m -> Alcotest.(check int) "greedy spans" 6 m.Regex.m_end
  | None -> Alcotest.fail "greedy");
  match Regex.exec lazy_ "<a><b>" 0 with
  | Some m -> Alcotest.(check int) "lazy stops" 3 m.Regex.m_end
  | None -> Alcotest.fail "lazy"

let test_regex_errors () =
  List.iter
    (fun pat ->
      Alcotest.(check bool) ("rejects " ^ pat) true
        (try
           ignore (Regex.compile pat);
           false
         with Regex.Regex_error _ -> true))
    [ "("; "[a"; "*x"; "a{2"; "a\\" ]

let prop_regex_self_match =
  (* A literal pattern always matches itself (alphanumeric only, to
     avoid metacharacters). *)
  let alnum =
    QCheck.Gen.(string_size ~gen:(oneof [ char_range 'a' 'z'; char_range '0' '9' ]) (int_range 1 12))
  in
  QCheck.Test.make ~name:"regex: literal self-match" ~count:300
    (QCheck.make alnum) (fun s -> Regex.test (Regex.compile s) s)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "strings" `Quick test_lexer_strings;
        Alcotest.test_case "comments" `Quick test_lexer_comments;
        Alcotest.test_case "multichar ops" `Quick test_lexer_multichar_ops;
        Alcotest.test_case "errors" `Quick test_lexer_error;
      ] );
    ( "parser",
      [
        Alcotest.test_case "precedence" `Quick test_parser_precedence;
        Alcotest.test_case "unary/postfix" `Quick test_parser_unary_postfix;
        Alcotest.test_case "calls/members" `Quick test_parser_calls_members;
        Alcotest.test_case "statements" `Quick test_parser_statements;
        Alcotest.test_case "loops" `Quick test_parser_loops;
        Alcotest.test_case "errors" `Quick test_parser_errors;
      ] );
    ( "bcompiler",
      [
        Alcotest.test_case "suite jump targets valid" `Quick test_compile_jump_targets_valid;
        Alcotest.test_case "closure capture" `Quick test_compile_closure_capture;
        Alcotest.test_case "no capture no context" `Quick test_compile_no_capture_no_context;
        Alcotest.test_case "disassemble" `Quick test_disassemble_runs;
      ] );
    ( "regex",
      [
        Alcotest.test_case "literal" `Quick test_regex_literal;
        Alcotest.test_case "classes" `Quick test_regex_classes;
        Alcotest.test_case "escapes" `Quick test_regex_escapes;
        Alcotest.test_case "anchors" `Quick test_regex_anchors;
        Alcotest.test_case "quantifiers" `Quick test_regex_quantifiers;
        Alcotest.test_case "alternation/groups" `Quick test_regex_alternation_groups;
        Alcotest.test_case "lazy" `Quick test_regex_lazy;
        Alcotest.test_case "errors" `Quick test_regex_errors;
        q prop_regex_self_match;
      ] );
  ]
