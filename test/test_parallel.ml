(* End-to-end determinism of the parallel experiment layer: a
   VSPEC_JOBS=4 plan must produce results bit-identical (checksums,
   counters, sample attributions — the whole marshaled result) to
   VSPEC_JOBS=1, and the jobs=1 path must be identical to calling the
   harness directly (the pre-plan sequential path). *)

(* The on-disk cache must not leak state between the two runs. *)
let () = Unix.putenv "VSPEC_CACHE_DIR" "off"

let iters = 12
let bench ids = List.filter_map Workloads.Suite.by_id ids
let benches () = bench [ "DP"; "HASH" ]

let digest (r : Experiments.Harness.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))

let plan_cells bs =
  List.concat_map
    (fun b ->
      [ Experiments.Plan.cell ~iters ~arch:Arch.Arm64 ~seed:1
          Experiments.Common.V_normal b;
        Experiments.Plan.cell ~iters ~arch:Arch.X64 ~seed:2
          Experiments.Common.V_normal b;
        Experiments.Plan.removal_cell ~iters ~arch:Arch.Arm64 ~seed:1 b ])
    bs

(* Read every planned result (and the calibration it depends on) back
   out of the warm caches as stable digests. *)
let snapshot bs =
  List.concat_map
    (fun b ->
      let removable, fired =
        Experiments.Common.removable_groups ~arch:Arch.Arm64 b
      in
      let r1 =
        Experiments.Common.run_cached ~iterations:iters ~arch:Arch.Arm64
          ~seed:1 Experiments.Common.V_normal b
      in
      let r2 =
        Experiments.Common.run_cached ~iterations:iters ~arch:Arch.X64 ~seed:2
          Experiments.Common.V_normal b
      in
      let r3 =
        Experiments.Common.run_cached ~iterations:iters ~arch:Arch.Arm64
          ~seed:1
          (Experiments.Common.V_no_checks removable)
          b
      in
      [ String.concat "+" (List.map Insn.group_name removable);
        String.concat "+" (List.map Insn.group_name fired);
        digest r1; digest r2; digest r3 ])
    bs

let run_plan ~jobs bs =
  Experiments.Common.clear_memo ();
  Experiments.Plan.run ~jobs (plan_cells bs);
  let sims_after_plan, _ = Experiments.Common.cache_stats () in
  let snap = snapshot bs in
  let sims_after_snap, _ = Experiments.Common.cache_stats () in
  (snap, sims_after_plan, sims_after_snap)

let test_parallel_matches_sequential () =
  let bs = benches () in
  let seq, seq_plan_sims, seq_total_sims = run_plan ~jobs:1 bs in
  let par, par_plan_sims, par_total_sims = run_plan ~jobs:4 bs in
  Alcotest.(check (list string)) "jobs=4 identical to jobs=1" seq par;
  (* The plan covered the driver's whole cell set: reading results back
     costs zero new simulations, sequential or parallel. *)
  Alcotest.(check int) "no extra sims after sequential plan" seq_plan_sims
    seq_total_sims;
  Alcotest.(check int) "no extra sims after parallel plan" par_plan_sims
    par_total_sims;
  Alcotest.(check int) "same simulation count" seq_total_sims par_total_sims

let test_jobs1_matches_direct_harness () =
  let b = Option.get (Workloads.Suite.by_id "DP") in
  Experiments.Common.clear_memo ();
  Experiments.Plan.run ~jobs:1
    [ Experiments.Plan.cell ~iters ~arch:Arch.Arm64 ~seed:1
        Experiments.Common.V_normal b ];
  let cached =
    Experiments.Common.run_cached ~iterations:iters ~arch:Arch.Arm64 ~seed:1
      Experiments.Common.V_normal b
  in
  let direct =
    Experiments.Harness.run ~iterations:iters
      ~config:
        (Experiments.Common.config_for ~arch:Arch.Arm64 ~seed:1
           Experiments.Common.V_normal)
      b
  in
  Alcotest.(check string) "plan result = direct harness run" (digest direct)
    (digest cached)

let test_single_flight_under_duplication () =
  (* The same cell listed many times still simulates once. *)
  let b = Option.get (Workloads.Suite.by_id "DP") in
  Experiments.Common.clear_memo ();
  let cell () =
    Experiments.Plan.cell ~iters ~arch:Arch.Arm64 ~seed:7
      Experiments.Common.V_normal b
  in
  Experiments.Plan.run ~jobs:4 (List.init 12 (fun _ -> cell ()));
  let sims, _ = Experiments.Common.cache_stats () in
  Alcotest.(check int) "one simulation for twelve duplicate cells" 1 sims

let suite =
  [
    ( "parallel-determinism",
      [
        Alcotest.test_case "jobs=4 = jobs=1 (full results)" `Quick
          test_parallel_matches_sequential;
        Alcotest.test_case "jobs=1 = direct harness" `Quick
          test_jobs1_matches_direct_harness;
        Alcotest.test_case "duplicate cells single-flight" `Quick
          test_single_flight_under_duplication;
      ] );
  ]
