(* Unit and property tests for the support library: deterministic RNG
   and the statistics used by the paper's analysis. *)

let approx ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let check_float name ?(eps = 1e-6) expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8f, got %.8f" name expected actual)
    true (approx ~eps expected actual)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Support.Rng.create 42 and b = Support.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Support.Rng.int a 1000) (Support.Rng.int b 1000)
  done

let test_rng_seed_differs () =
  let a = Support.Rng.create 1 and b = Support.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Support.Rng.int a 1_000_000 = Support.Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independent () =
  let a = Support.Rng.create 7 in
  let c = Support.Rng.split a in
  let xs = Array.init 20 (fun _ -> Support.Rng.int a 100) in
  let ys = Array.init 20 (fun _ -> Support.Rng.int c 100) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_in () =
  let r = Support.Rng.create 3 in
  for _ = 1 to 200 do
    let v = Support.Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_shuffle_permutes () =
  let r = Support.Rng.create 9 in
  let a = Array.init 50 Fun.id in
  let b = Array.copy a in
  Support.Rng.shuffle r b;
  Alcotest.(check bool) "same multiset" true
    (List.sort compare (Array.to_list b) = Array.to_list a);
  Alcotest.(check bool) "actually shuffled" true (a <> b)

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng: int in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Support.Rng.create seed in
      let v = Support.Rng.int r bound in
      v >= 0 && v < bound)

let prop_gaussian_finite =
  QCheck.Test.make ~name:"rng: gaussian finite" ~count:200 QCheck.small_int
    (fun seed ->
      let r = Support.Rng.create seed in
      let v = Support.Rng.gaussian r ~mu:0.0 ~sigma:1.0 in
      Float.is_finite v)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Support.Stats.mean xs);
  check_float "variance" (32.0 /. 7.0) (Support.Stats.variance xs);
  check_float "stddev" (sqrt (32.0 /. 7.0)) (Support.Stats.stddev xs)

let test_median_percentile () =
  check_float "median odd" 3.0 (Support.Stats.median [| 1.0; 3.0; 5.0 |]);
  check_float "median even" 2.5 (Support.Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p0" 1.0 (Support.Stats.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check_float "p100" 3.0 (Support.Stats.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  let q1, m, q3 = Support.Stats.quartiles [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "q1" 2.0 q1;
  check_float "median" 3.0 m;
  check_float "q3" 4.0 q3

(* Degenerate sample sizes (the counter-timeline exporter summarizes
   arbitrary, possibly single-event, series): n=1 must return the lone
   element at every p, and n=2 must interpolate linearly between the
   two order statistics (rank = p/100 * (n-1)). *)
let test_percentile_edge_cases () =
  let one = [| 42.0 |] in
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "n=1 p%g" p)
        42.0
        (Support.Stats.percentile one p))
    [ 0.0; 25.0; 50.0; 75.0; 100.0 ];
  let q1, m, q3 = Support.Stats.quartiles one in
  check_float "n=1 q1" 42.0 q1;
  check_float "n=1 median" 42.0 m;
  check_float "n=1 q3" 42.0 q3;
  let two = [| 10.0; 20.0 |] in
  check_float "n=2 p0" 10.0 (Support.Stats.percentile two 0.0);
  check_float "n=2 p25" 12.5 (Support.Stats.percentile two 25.0);
  check_float "n=2 p50" 15.0 (Support.Stats.percentile two 50.0);
  check_float "n=2 p75" 17.5 (Support.Stats.percentile two 75.0);
  check_float "n=2 p100" 20.0 (Support.Stats.percentile two 100.0);
  (* Order independence: percentile sorts internally. *)
  check_float "n=2 unsorted p25" 12.5
    (Support.Stats.percentile [| 20.0; 10.0 |] 25.0);
  let q1, m, q3 = Support.Stats.quartiles two in
  check_float "n=2 q1" 12.5 q1;
  check_float "n=2 median" 15.0 m;
  check_float "n=2 q3" 17.5 q3;
  let lo, hi = Support.Stats.min_max one in
  check_float "n=1 min" 42.0 lo;
  check_float "n=1 max" 42.0 hi

let test_geomean () =
  check_float "geomean" 4.0 (Support.Stats.geomean [| 2.0; 8.0 |])

let test_erf_normal () =
  check_float ~eps:1e-4 "erf(0)" 0.0 (Support.Stats.erf 0.0);
  check_float ~eps:1e-4 "erf(1)" 0.8427008 (Support.Stats.erf 1.0);
  check_float ~eps:1e-4 "erf(-1)" (-0.8427008) (Support.Stats.erf (-1.0));
  check_float ~eps:1e-4 "Phi(0)" 0.5 (Support.Stats.normal_cdf 0.0);
  check_float ~eps:1e-3 "Phi(1.96)" 0.975 (Support.Stats.normal_cdf 1.96)

let test_log_gamma () =
  (* ln((n-1)!) *)
  check_float ~eps:1e-9 "lgamma(1)" 0.0 (Support.Stats.log_gamma 1.0);
  check_float ~eps:1e-9 "lgamma(2)" 0.0 (Support.Stats.log_gamma 2.0);
  check_float ~eps:1e-6 "lgamma(5)" (log 24.0) (Support.Stats.log_gamma 5.0);
  check_float ~eps:1e-6 "lgamma(0.5)" (log (sqrt Float.pi))
    (Support.Stats.log_gamma 0.5)

let test_student_t () =
  (* Large df approaches the normal distribution. *)
  check_float ~eps:2e-3 "t-cdf df=1000 at 1.96" 0.975
    (Support.Stats.student_t_cdf ~df:1000.0 1.96);
  (* Symmetry. *)
  check_float ~eps:1e-9 "t-cdf symmetry" 1.0
    (Support.Stats.student_t_cdf ~df:7.0 1.3
    +. Support.Stats.student_t_cdf ~df:7.0 (-1.3));
  (* Known quantile: t_{0.975, df=10} = 2.228. *)
  check_float ~eps:2e-3 "t-inv df=10" 2.228
    (Support.Stats.student_t_inv ~df:10.0 0.975)

let test_welch () =
  let a = [| 27.5; 21.0; 19.0; 23.6; 17.0; 17.9; 16.9; 20.1; 21.9; 22.6; 23.1; 19.6; 19.0; 21.7; 21.4 |] in
  let b = [| 27.1; 22.0; 20.8; 23.4; 23.4; 23.5; 25.8; 22.0; 24.8; 20.2; 21.9; 22.1; 22.9; 30.5; 31.3 |] in
  let t = Support.Stats.welch_ttest a b in
  Alcotest.(check bool) "t negative" true (t.Support.Stats.t_stat < 0.0);
  Alcotest.(check bool) "p in (0,1)" true
    (t.Support.Stats.p_value > 0.0 && t.Support.Stats.p_value < 1.0);
  (* Identical samples: no significance. *)
  let same = Support.Stats.welch_ttest a a in
  check_float ~eps:1e-9 "identical p=1" 1.0 same.Support.Stats.p_value

let test_pearson_regression () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0; 10.0 |] in
  check_float "perfect correlation" 1.0 (Support.Stats.pearson xs ys);
  let reg = Support.Stats.linear_regression xs ys in
  check_float "slope" 2.0 reg.Support.Stats.slope;
  check_float "intercept" 0.0 reg.Support.Stats.intercept;
  check_float "r2" 1.0 reg.Support.Stats.r2;
  let anti = Array.map (fun y -> -.y) ys in
  check_float "anti correlation" (-1.0) (Support.Stats.pearson xs anti)

let test_correlation_p () =
  (* Strong correlation on many points: tiny p. *)
  let p = Support.Stats.correlation_p_value ~n:50 ~r:0.9 in
  Alcotest.(check bool) "strong corr significant" true (p < 1e-6);
  let p2 = Support.Stats.correlation_p_value ~n:10 ~r:0.05 in
  Alcotest.(check bool) "weak corr not significant" true (p2 > 0.5)

let test_bonferroni () =
  check_float "bonferroni" 0.001 (Support.Stats.bonferroni ~alpha:0.05 ~tests:50)

let test_practical_significance () =
  let baseline = Array.init 30 (fun i -> 100.0 +. (0.1 *. float_of_int (i mod 5))) in
  let faster = Array.map (fun x -> x *. 0.9) baseline in
  let s =
    Support.Stats.practical_significance ~alpha:0.05 ~tests:10 ~min_effect:0.02
      ~baseline ~variant:faster
  in
  Alcotest.(check bool) "10% faster is practical" true s.Support.Stats.practical;
  let noise = Array.map (fun x -> x *. 1.001) baseline in
  let s2 =
    Support.Stats.practical_significance ~alpha:0.05 ~tests:10 ~min_effect:0.02
      ~baseline ~variant:noise
  in
  Alcotest.(check bool) "0.1% diff is not practical" false s2.Support.Stats.practical

let prop_percentile_bounds =
  QCheck.Test.make ~name:"stats: percentile within min/max" ~count:300
    QCheck.(pair (array_of_size (Gen.int_range 1 40) (float_range (-1e6) 1e6)) (float_range 0.0 100.0))
    (fun (xs, p) ->
      let v = Support.Stats.percentile xs p in
      let lo, hi = Support.Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_mean_bounds =
  QCheck.Test.make ~name:"stats: mean within min/max" ~count:300
    QCheck.(array_of_size (Gen.int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let m = Support.Stats.mean xs in
      let lo, hi = Support.Stats.min_max xs in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"stats: variance >= 0" ~count:300
    QCheck.(array_of_size (Gen.int_range 2 40) (float_range (-1e3) 1e3))
    (fun xs -> Support.Stats.variance xs >= 0.0)

let prop_t_inv_roundtrip =
  QCheck.Test.make ~name:"stats: t_cdf (t_inv p) = p" ~count:100
    QCheck.(pair (float_range 0.05 0.95) (int_range 2 60))
    (fun (p, df) ->
      let df = float_of_int df in
      let t = Support.Stats.student_t_inv ~df p in
      Float.abs (Support.Stats.student_t_cdf ~df t -. p) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t = Support.Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Support.Table.add_row t [ "x"; "yyyy" ];
  let s = Support.Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "contains cell" true
    (String.length s > 0
    &&
    let re = Str.regexp_string "yyyy" in
    try
      ignore (Str.search_forward re s 0);
      true
    with Not_found -> false)

let test_table_bad_row () =
  let t = Support.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Support.Table.add_row t [ "only one" ])

let test_bar () =
  let full = Support.Table.bar ~width:4 ~max:10.0 10.0 in
  let empty = Support.Table.bar ~width:4 ~max:10.0 0.0 in
  Alcotest.(check bool) "full bar longer than empty" true
    (String.length full > String.length (String.trim empty))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seed_differs;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "int_in range" `Quick test_rng_int_in;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        q prop_rng_bounds;
        q prop_gaussian_finite;
      ] );
    ( "stats",
      [
        Alcotest.test_case "mean/var" `Quick test_mean_var;
        Alcotest.test_case "median/percentile" `Quick test_median_percentile;
        Alcotest.test_case "percentile n=1/n=2 edges" `Quick
          test_percentile_edge_cases;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "erf/normal" `Quick test_erf_normal;
        Alcotest.test_case "log_gamma" `Quick test_log_gamma;
        Alcotest.test_case "student t" `Quick test_student_t;
        Alcotest.test_case "welch" `Quick test_welch;
        Alcotest.test_case "pearson/regression" `Quick test_pearson_regression;
        Alcotest.test_case "correlation p" `Quick test_correlation_p;
        Alcotest.test_case "bonferroni" `Quick test_bonferroni;
        Alcotest.test_case "practical significance" `Quick test_practical_significance;
        q prop_percentile_bounds;
        q prop_mean_bounds;
        q prop_variance_nonneg;
        q prop_t_inv_roundtrip;
      ] );
    ( "table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "bad row" `Quick test_table_bad_row;
        Alcotest.test_case "bar" `Quick test_bar;
      ] );
  ]
