(* Unit tests for the optimizing compiler's pieces: speculative
   lowering shapes, check hoisting, the reducer passes, register
   allocation well-formedness, and the baseline compiler's structure. *)

(* Run a source under the interpreter only, so feedback exists but we
   control graph building ourselves. *)
let warm_rt ?(calls = 8) src entry =
  let cfg =
    { (Engine.default_config ~arch:Arch.Arm64 ()) with
      Engine.enable_optimizer = false }
  in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  (* Warm through bench() so [entry]'s feedback reflects real inputs. *)
  for _ = 1 to calls do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let rt = Engine.runtime eng in
  let h = rt.Runtime.heap in
  let fobj = Heap.cell_value h (Heap.global_cell h entry) in
  (rt, Runtime.func rt (Heap.function_id_of h fobj))

let build ?(arch = Arch.Arm64) ?(trust = false) ?(turboprop = false) rt f =
  let g =
    Turbofan.Graph_builder.build
      { Turbofan.Graph_builder.arch; trust_elements_kind = trust; turboprop }
      rt f
  in
  ignore (Turbofan.Reducer.run_dce g);
  g

let count_ops g pred =
  let n = ref 0 in
  for b = 0 to g.Turbofan.Son.n_blocks - 1 do
    List.iter
      (fun i -> if pred (Turbofan.Son.node g i).Turbofan.Son.op then incr n)
      (Turbofan.Son.block g b).Turbofan.Son.body
  done;
  !n

let count_checks g reason =
  count_ops g (function
    | Turbofan.Son.N_check { reason = r; _ } -> r = reason
    | _ -> false)

(* ---------------- Lowering shapes ---------------- *)

let smi_add_src =
  {|
function add(a, b) { return a + b; }
function bench() { return add(2, 3); }
|}

let test_smi_feedback_lowers_checked_add () =
  let rt, f = warm_rt smi_add_src "add" in
  (* Call add directly a few times with SMIs via bench. *)
  let g = build rt f in
  Alcotest.(check int) "one checked smi add" 1
    (count_ops g (fun o -> o = Turbofan.Son.N_smi_add_checked));
  Alcotest.(check bool) "params get Not-a-SMI checks" true
    (count_checks g Insn.Not_a_smi >= 2);
  Alcotest.(check int) "no float ops" 0
    (count_ops g (function Turbofan.Son.N_float_binop _ -> true | _ -> false))

let float_add_src =
  {|
function fadd(a, b) { return a + b; }
function bench() { return fadd(2.5, 3.25); }
|}

let test_number_feedback_lowers_float () =
  let rt, f = warm_rt float_add_src "fadd" in
  let g = build rt f in
  Alcotest.(check int) "float add present" 1
    (count_ops g (function
      | Turbofan.Son.N_float_binop Insn.Fadd -> true
      | _ -> false));
  Alcotest.(check bool) "checked conversions present" true
    (count_ops g (fun o -> o = Turbofan.Son.N_to_float) >= 2);
  Alcotest.(check int) "no checked smi add" 0
    (count_ops g (fun o -> o = Turbofan.Son.N_smi_add_checked))

let prop_load_src =
  {|
function getx(o) { return o.x; }
var obj = { x: 7, y: 8 };
function bench() { return getx(obj); }
|}

let test_mono_property_load_has_map_check () =
  let rt, f = warm_rt prop_load_src "getx" in
  let g = build rt f in
  Alcotest.(check int) "one map check" 1 (count_checks g Insn.Wrong_map);
  Alcotest.(check bool) "receiver smi check" true
    (count_checks g Insn.Smi >= 1);
  Alcotest.(check bool) "a field load" true
    (count_ops g (function Turbofan.Son.N_load _ -> true | _ -> false) >= 1)

let keyed_src =
  {|
var xs = [10, 20, 30, 40];
function get(i) { return xs[i] + 1; }
function bench() { return get(1) + get(2); }
|}

let test_keyed_load_bounds_and_smi () =
  let rt, f = warm_rt keyed_src "get" in
  let g = build rt f in
  Alcotest.(check int) "bounds check" 1 (count_checks g Insn.Out_of_bounds);
  (* Default config re-checks the loaded element (paper Fig 3 shape). *)
  Alcotest.(check bool) "element Not-a-SMI check" true
    (count_checks g Insn.Not_a_smi >= 1);
  (* Ablation: trusting the elements kind removes element re-checks. *)
  let g2 = build ~trust:true rt f in
  Alcotest.(check bool) "trust-elements removes checks" true
    (count_checks g2 Insn.Not_a_smi < count_checks g Insn.Not_a_smi)

let loop_src =
  {|
var data = [];
for (var i = 0; i < 50; i++) data.push(i % 13);
function total() {
  var s = 0;
  for (var i = 0; i < data.length; i++) s = s + data[i];
  return s;
}
function bench() { return total(); }
|}

let test_loop_invariant_checks_hoisted () =
  let rt, f = warm_rt loop_src "total" in
  let g = build rt f in
  (* The map check on the (loop-invariant) array is hoisted: exactly one
     per receiver, not one per iteration-visible block. *)
  Alcotest.(check bool) "map checks hoisted" true
    (count_checks g Insn.Wrong_map <= 2);
  (* TurboProp skips hoisting/elimination: strictly more checks. *)
  let g2 = build ~turboprop:true rt f in
  let total g = count_ops g (function Turbofan.Son.N_check _ -> true | _ -> false) in
  Alcotest.(check bool) "turboprop emits more checks" true (total g2 > total g)

let test_uninitialized_site_soft_deopts () =
  let src =
    {|
function maybe(flag, x) {
  if (flag) return x + 1;
  return x * 2;  // never executed during warmup
}
function bench() { return maybe(true, 5); }
|}
  in
  let rt, f = warm_rt src "maybe" in
  let g = build rt f in
  Alcotest.(check bool) "soft deopt on the cold arm" true
    (count_ops g (function Turbofan.Son.N_soft_deopt _ -> true | _ -> false)
     >= 1)

let test_x64_folds_memory_operands () =
  let rt, f = warm_rt keyed_src "get" in
  let gx = build ~arch:Arch.X64 rt f in
  let ga = build ~arch:Arch.Arm64 rt f in
  let folded g =
    count_ops g (function
      | Turbofan.Son.N_check { ckind = Turbofan.Son.C_cmp_mem _; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "x64 uses cmp-with-memory" true (folded gx >= 1);
  Alcotest.(check int) "arm64 never does" 0 (folded ga)

(* ---------------- Reducer ---------------- *)

let test_fusion_on_ext_arch () =
  let rt, f = warm_rt loop_src "total" in
  let g = build ~arch:Arch.Arm64_smi_ext rt f in
  let before = count_checks g Insn.Not_a_smi in
  let fused = Turbofan.Reducer.fuse_smi_loads g in
  Alcotest.(check bool) "some loads fused" true (fused >= 1);
  Alcotest.(check bool) "explicit Not-a-SMI checks reduced" true
    (count_checks g Insn.Not_a_smi < before);
  Alcotest.(check bool) "fused nodes present" true
    (count_ops g (function Turbofan.Son.N_js_ldr_smi _ -> true | _ -> false)
     >= 1)

let test_short_circuit_group_isolation () =
  let rt, f = warm_rt loop_src "total" in
  let g = build rt f in
  let arith_before = count_checks g Insn.Overflow in
  let st = Turbofan.Reducer.short_circuit_checks g ~groups:[ Insn.G_boundary ] in
  Alcotest.(check bool) "boundary checks removed" true
    (st.Turbofan.Reducer.checks_removed >= 1);
  Alcotest.(check int) "boundary gone" 0 (count_checks g Insn.Out_of_bounds);
  Alcotest.(check int) "arithmetic untouched" arith_before
    (count_checks g Insn.Overflow)

(* ---------------- Register allocation ---------------- *)

let test_regalloc_well_formed () =
  let rt, f = warm_rt loop_src "total" in
  List.iter
    (fun arch ->
      let g = build ~arch rt f in
      if Arch.has_smi_load arch then ignore (Turbofan.Reducer.fuse_smi_loads g);
      let alloc = Turbofan.Regalloc.allocate g in
      Array.iteri
        (fun i loc ->
          match loc with
          | Turbofan.Regalloc.L_reg r ->
            Alcotest.(check bool)
              (Printf.sprintf "node %d gp reg below scratch" i)
              true
              (r >= 0 && r < Turbofan.Regalloc.first_scratch)
          | Turbofan.Regalloc.L_freg fr ->
            Alcotest.(check bool) "fp reg below scratch" true
              (fr >= 0 && fr < Turbofan.Regalloc.num_alloc_fp)
          | Turbofan.Regalloc.L_slot sl ->
            Alcotest.(check bool) "slot above reserved frame area" true (sl >= 3)
          | Turbofan.Regalloc.L_fslot sl ->
            Alcotest.(check bool) "fslot nonneg" true (sl >= 0)
          | Turbofan.Regalloc.L_const _ | Turbofan.Regalloc.L_fconst _
          | Turbofan.Regalloc.L_none ->
            ())
        alloc.Turbofan.Regalloc.loc;
      Alcotest.(check bool) "gp frame covers reserved slots" true
        (alloc.Turbofan.Regalloc.gp_slots >= 3))
    [ Arch.X64; Arch.Arm64; Arch.Arm64_smi_ext ]

let test_constants_rematerialized () =
  let rt, f = warm_rt smi_add_src "add" in
  let g = build rt f in
  let alloc = Turbofan.Regalloc.allocate g in
  for b = 0 to g.Turbofan.Son.n_blocks - 1 do
    List.iter
      (fun i ->
        match (Turbofan.Son.node g i).Turbofan.Son.op with
        | Turbofan.Son.N_const c ->
          Alcotest.(check bool) "const location is L_const" true
            (alloc.Turbofan.Regalloc.loc.(i) = Turbofan.Regalloc.L_const c)
        | _ -> ())
      (Turbofan.Son.block g b).Turbofan.Son.body
  done

(* ---------------- Baseline compiler ---------------- *)

let test_sparkplug_structure () =
  let rt, f = warm_rt loop_src "total" in
  let code =
    Turbofan.Sparkplug.compile ~code_id:99 ~base_addr:0x4000 ~arch:Arch.Arm64
      rt f
  in
  Alcotest.(check int) "no deopt points" 0 (Array.length code.Code.deopts);
  Alcotest.(check int) "no check instructions" 0
    (Code.static_check_instructions code);
  (* Every semantic op is a builtin call. *)
  let calls =
    Array.fold_left
      (fun acc i ->
        match i.Insn.kind with Insn.Call (Insn.Builtin _, _) -> acc + 1 | _ -> acc)
      0 code.Code.insns
  in
  Alcotest.(check bool) "generic builtin calls present" true (calls >= 4)

let test_sparkplug_context_function () =
  (* Functions that allocate contexts are baseline-compilable even
     though the optimizer refuses them. *)
  let src =
    {|
function mk() { var c = 0; return function() { c = c + 1; return c; }; }
var counter = mk();
function bench() { return counter(); }
|}
  in
  let rt, f = warm_rt src "mk" in
  Alcotest.(check bool) "mk allocates a context" true
    (f.Runtime.info.Bytecode.context_slots > 0);
  let code =
    Turbofan.Sparkplug.compile ~code_id:98 ~base_addr:0x5000 ~arch:Arch.Arm64
      rt f
  in
  Alcotest.(check bool) "compiles" true (Code.real_instructions code > 0)

let suite =
  [
    ( "lowering",
      [
        Alcotest.test_case "smi add" `Quick test_smi_feedback_lowers_checked_add;
        Alcotest.test_case "float add" `Quick test_number_feedback_lowers_float;
        Alcotest.test_case "mono property load" `Quick test_mono_property_load_has_map_check;
        Alcotest.test_case "keyed load" `Quick test_keyed_load_bounds_and_smi;
        Alcotest.test_case "loop hoisting" `Quick test_loop_invariant_checks_hoisted;
        Alcotest.test_case "soft deopt on cold code" `Quick test_uninitialized_site_soft_deopts;
        Alcotest.test_case "x64 memory operands" `Quick test_x64_folds_memory_operands;
      ] );
    ( "reducer",
      [
        Alcotest.test_case "smi-load fusion" `Quick test_fusion_on_ext_arch;
        Alcotest.test_case "group isolation" `Quick test_short_circuit_group_isolation;
      ] );
    ( "regalloc",
      [
        Alcotest.test_case "well-formed locations" `Quick test_regalloc_well_formed;
        Alcotest.test_case "constants rematerialized" `Quick test_constants_rematerialized;
      ] );
    ( "sparkplug",
      [
        Alcotest.test_case "structure" `Quick test_sparkplug_structure;
        Alcotest.test_case "context functions" `Quick test_sparkplug_context_function;
      ] );
  ]
