(* Engine-level behavior: GC under pressure, reproducibility, counter
   sanity, the extended-ISA bailout path, and print output. *)

let tree_src = (Option.get (Workloads.Suite.by_id "TREE")).Workloads.Suite.source

let test_gc_stress_correct () =
  (* A heap barely big enough forces many collections mid-benchmark;
     results must not change. *)
  let small =
    { (Engine.default_config ~arch:Arch.Arm64 ()) with
      Engine.heap_size = 1 lsl 16;
      gc_threshold_words = 1 lsl 13 }
  in
  let big = Engine.default_config ~arch:Arch.Arm64 () in
  let run cfg =
    let eng = Engine.create cfg tree_src in
    let _ = Engine.run_main eng in
    let h = (Engine.runtime eng).Runtime.heap in
    let v = ref 0 in
    for _ = 1 to 40 do
      v := Engine.call_global eng "bench" [||];
      Engine.maybe_gc eng
    done;
    (Heap.number_value h !v, Heap.gc_count h)
  in
  let v_small, gcs_small = run small in
  let v_big, _ = run big in
  Alcotest.(check bool) "collections happened" true (gcs_small > 0);
  Alcotest.(check bool) "results equal under GC pressure" true (v_small = v_big)

let test_determinism_same_seed () =
  let src = (Option.get (Workloads.Suite.by_id "RICH")).Workloads.Suite.source in
  let run seed =
    let cfg = { (Engine.default_config ~arch:Arch.Arm64 ()) with Engine.seed } in
    let eng = Engine.create cfg src in
    let _ = Engine.run_main eng in
    for _ = 1 to 10 do
      ignore (Engine.call_global eng "bench" [||]);
      Engine.iteration_safepoint eng
    done;
    Engine.cycles eng
  in
  Alcotest.(check bool) "same seed, same cycles" true (run 7 = run 7);
  Alcotest.(check bool) "different seed, different cycles" true (run 7 <> run 8)

let test_counter_sanity () =
  let src = (Option.get (Workloads.Suite.by_id "DP")).Workloads.Suite.source in
  let eng = Engine.create (Engine.default_config ~arch:Arch.Arm64 ()) src in
  let _ = Engine.run_main eng in
  for _ = 1 to 10 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let c = (Engine.cpu eng).Cpu.counters in
  Alcotest.(check bool) "taken <= branches" true
    (c.Perf.taken_branches <= c.Perf.branches);
  Alcotest.(check bool) "mispredicts <= branches" true
    (c.Perf.mispredicts <= c.Perf.branches);
  Alcotest.(check bool) "branches <= instructions" true
    (c.Perf.branches <= c.Perf.instructions);
  Alcotest.(check bool) "jit <= instructions" true
    (c.Perf.jit_instructions <= c.Perf.instructions);
  Alcotest.(check bool) "checks <= jit instructions" true
    (c.Perf.check_instructions <= c.Perf.jit_instructions);
  Alcotest.(check bool) "cycles positive" true (Engine.cycles eng > 0.0);
  Alcotest.(check bool) "stall counters nonnegative" true
    (c.Perf.frontend_stall >= 0.0 && c.Perf.backend_stall >= 0.0)

let test_smi_ext_bailout_roundtrip () =
  (* jsldrsmi's REG_BA bailout must resume with interpreter semantics. *)
  let src =
    {|
var data = [2, 4, 6, 8];
function pick(i) { return data[i] * 3; }
function bench() { return pick(0) + pick(1) + pick(2) + pick(3); }
|}
  in
  let cfg = Engine.default_config ~arch:Arch.Arm64_smi_ext () in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  let h = (Engine.runtime eng).Runtime.heap in
  for _ = 1 to 10 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let data = Heap.cell_value h (Heap.global_cell h "data") in
  Heap.array_set h data 2 (Heap.alloc_heap_number h 6.5);
  let v = Engine.call_global eng "bench" [||] in
  Alcotest.(check bool) "correct after fused-load bailout" true
    (Heap.number_value h v = (2. +. 4. +. 6.5 +. 8.) *. 3.);
  Alcotest.(check bool) "a not-a-smi deopt fired" true
    (List.exists
       (fun (r, n) -> r = Insn.Not_a_smi && n > 0)
       (Engine.deopt_counts eng))

let test_print_output () =
  let eng =
    Engine.create
      (Engine.default_config ~arch:Arch.Arm64 ())
      {|print("a", 1, 2.5, true, null, [1,2]); print("second");|}
  in
  let _ = Engine.run_main eng in
  Alcotest.(check string) "print formatting"
    "a 1 2.5 true null 1,2\nsecond\n" (Engine.output eng)

let test_compile_now_unknown () =
  let eng =
    Engine.create (Engine.default_config ~arch:Arch.Arm64 ()) "var x = 1;"
  in
  let _ = Engine.run_main eng in
  (match Engine.compile_now eng "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compiling a non-function should fail");
  match Engine.compile_now eng "print" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compiling a builtin should fail"

let base_suite =
  [
    ( "engine",
      [
        Alcotest.test_case "gc stress correctness" `Quick test_gc_stress_correct;
        Alcotest.test_case "seeded determinism" `Quick test_determinism_same_seed;
        Alcotest.test_case "counter sanity" `Quick test_counter_sanity;
        Alcotest.test_case "smi-ext bailout roundtrip" `Quick test_smi_ext_bailout_roundtrip;
        Alcotest.test_case "print output" `Quick test_print_output;
        Alcotest.test_case "compile_now errors" `Quick test_compile_now_unknown;
      ] );
  ]

let test_map_fuse_correct_and_bails () =
  (* The future-work fused map check: correct results, and the bailout
     resumes the interpreter when the shape changes. *)
  let src =
    {|
function Box(v) { this.v = v; }
var boxes = [];
for (var i = 0; i < 8; i++) boxes.push(new Box(i * 3));
function total() {
  var s = 0;
  for (var i = 0; i < boxes.length; i++) s = s + boxes[i].v;
  return s;
}
function bench() { return total(); }
|}
  in
  let cfg =
    { (Engine.default_config ~arch:Arch.Arm64_smi_ext ()) with
      Engine.fuse_map_checks = true }
  in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  let h = (Engine.runtime eng).Runtime.heap in
  let v = ref 0 in
  for _ = 1 to 10 do
    v := Engine.call_global eng "bench" [||]
  done;
  Alcotest.(check bool) "sum correct" true (Heap.number_value h !v = 84.0);
  (* Fused map checks actually present in the hot code. *)
  let has_fused =
    List.exists
      (fun (code : Code.t) ->
        Array.exists
          (fun i ->
            match i.Insn.kind with Insn.Js_chk_map _ -> true | _ -> false)
          code.Code.insns)
      (Engine.all_codes eng)
  in
  Alcotest.(check bool) "jschkmap emitted" true has_fused;
  (* Change one box's shape: the fused check must bail, not misread. *)
  let boxes = Heap.cell_value h (Heap.global_cell h "boxes") in
  let b3 = Heap.array_get h boxes 3 in
  Heap.set_property h b3 "extra" (Value.smi 1);
  let v2 = Engine.call_global eng "bench" [||] in
  Alcotest.(check bool) "still correct after shape change" true
    (Heap.number_value h v2 = 84.0);
  Alcotest.(check bool) "wrong-map deopt fired" true
    (List.exists
       (fun (r, n) -> r = Insn.Wrong_map && n > 0)
       (Engine.deopt_counts eng))

let extra_engine_suite =
  [ ( "map-fuse",
      [ Alcotest.test_case "correct + bails" `Quick test_map_fuse_correct_and_bails ] ) ]

let suite = base_suite @ extra_engine_suite
