(* Vspec.Trace: exporter goldens, ring-wrap semantics, zero-perturbation.

   The golden tests drive the Trace API with a fixed, scripted event
   sequence (sim-domain only, so no wall-clock nondeterminism) and
   compare the rendered exporter output byte-for-byte.  The
   determinism test extends test_exec_determinism's bit-identity
   contract: a full harness run must digest identically with tracing
   off, on, and with a ring buffer small enough to wrap. *)

let () = Unix.putenv "VSPEC_CACHE_DIR" "off"

let with_tracing ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:Trace.disable f

let test_format_of_path () =
  Alcotest.(check bool)
    "json -> Chrome" true
    (Trace.format_of_path "a/b/trace.json" = Trace.Chrome);
  Alcotest.(check bool)
    "no extension -> Chrome" true
    (Trace.format_of_path "trace" = Trace.Chrome);
  Alcotest.(check bool)
    "folded" true
    (Trace.format_of_path "x.folded" = Trace.Folded);
  Alcotest.(check bool) "csv" true (Trace.format_of_path "x.csv" = Trace.Csv)

(* The fixed workload: three sim-domain events, one per exporter shape. *)
let scripted_events () =
  Trace.complete_at ~arg:"f" ~cat:"jsvm" ~ts:10.0 ~dur:5.0 "tier-up:optimize";
  Trace.instant_at ~cat:"machine" ~ts:12.0 "watchdog:arm";
  Trace.counter_at ~cat:"experiments" ~ts:20.0 "iter_cycles" 123.0

let chrome_golden =
  "{\"traceEvents\":[\n\
   {\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"simulated clock (1 cycle = 1us)\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"wall clock\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"jsvm\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"jsvm\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"turbofan\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"turbofan\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"machine\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"tid\":3,\"name\":\"thread_name\",\"args\":{\"name\":\"machine\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":4,\"name\":\"thread_name\",\"args\":{\"name\":\"experiments\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"tid\":4,\"name\":\"thread_name\",\"args\":{\"name\":\"experiments\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":5,\"name\":\"thread_name\",\"args\":{\"name\":\"support\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"tid\":5,\"name\":\"thread_name\",\"args\":{\"name\":\"support\"}},\n\
   {\"ph\":\"M\",\"pid\":0,\"tid\":6,\"name\":\"thread_name\",\"args\":{\"name\":\"misc\"}},\n\
   {\"ph\":\"M\",\"pid\":1,\"tid\":6,\"name\":\"thread_name\",\"args\":{\"name\":\"misc\"}},\n\
   {\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":10.000,\"name\":\"tier-up:optimize\",\"cat\":\"jsvm\",\"dur\":5.000,\"args\":{\"detail\":\"f\"}},\n\
   {\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":3,\"ts\":12.000,\"name\":\"watchdog:arm\",\"cat\":\"machine\",\"args\":{\"detail\":\"\"}},\n\
   {\"ph\":\"C\",\"pid\":0,\"tid\":4,\"ts\":20.000,\"name\":\"iter_cycles\",\"cat\":\"experiments\",\"args\":{\"value\":123}}\n\
   ]}\n"

let test_chrome_golden () =
  with_tracing (fun () ->
      scripted_events ();
      let buf = Buffer.create 256 in
      Trace.render Trace.Chrome buf;
      Alcotest.(check string) "chrome export" chrome_golden (Buffer.contents buf))

let test_folded_golden () =
  with_tracing (fun () ->
      Trace.sample ~stack:"DP;bench;main" 5;
      Trace.sample ~stack:"DP;bench;check:not-smi" 2;
      Trace.sample ~stack:"DP;bench;main" 3;
      let buf = Buffer.create 64 in
      Trace.render Trace.Folded buf;
      Alcotest.(check string)
        "folded export (merged, sorted)"
        "DP;bench;check:not-smi 2\nDP;bench;main 8\n"
        (Buffer.contents buf))

let test_csv_golden () =
  with_tracing (fun () ->
      List.iteri
        (fun i v ->
          Trace.counter_at ~cat:"experiments"
            ~ts:(float_of_int (i + 1))
            "iter_cycles" v)
        [ 1.0; 2.0; 3.0; 4.0 ];
      let buf = Buffer.create 64 in
      Trace.render Trace.Csv buf;
      Alcotest.(check string)
        "csv export with quartile footer"
        "ts,domain,category,name,value\n\
         1.000,sim,experiments,iter_cycles,1\n\
         2.000,sim,experiments,iter_cycles,2\n\
         3.000,sim,experiments,iter_cycles,3\n\
         4.000,sim,experiments,iter_cycles,4\n\
         # summary,experiments/iter_cycles,n=4,min=1,q1=1.75,median=2.5,q3=3.25,max=4\n"
        (Buffer.contents buf))

let test_ring_wrap () =
  with_tracing ~capacity:16 (fun () ->
      for i = 0 to 39 do
        Trace.instant_at ~cat:"machine" ~ts:(float_of_int i) "tick"
      done;
      Alcotest.(check int) "capacity" 16 (Trace.capacity ());
      Alcotest.(check int) "emitted counts all" 40 (Trace.emitted ());
      Alcotest.(check int) "dropped = overwritten" 24 (Trace.dropped ());
      let evs = Trace.events () in
      Alcotest.(check int) "live events" 16 (List.length evs);
      Alcotest.(check (float 0.0))
        "oldest surviving first" 24.0
        (List.hd evs).Trace.ev_ts;
      Alcotest.(check (float 0.0))
        "newest last" 39.0
        (List.nth evs 15).Trace.ev_ts)

let test_capacity_clamp () =
  with_tracing ~capacity:3 (fun () ->
      Alcotest.(check int) "clamped to >= 16" 16 (Trace.capacity ()))

let test_span_on_exception () =
  with_tracing (fun () ->
      (try Trace.span ~cat:"jsvm" "doomed" (fun () -> raise Exit)
       with Exit -> ());
      match Trace.events () with
      | [ e ] ->
        Alcotest.(check bool) "span kind" true (e.Trace.ev_kind = Trace.Span);
        Alcotest.(check string) "span name" "doomed" e.Trace.ev_name
      | evs ->
        Alcotest.failf "expected exactly one event, got %d" (List.length evs))

let test_off_is_silent () =
  Trace.disable ();
  Trace.instant ~cat:"jsvm" "ignored";
  Trace.counter ~cat:"jsvm" "ignored" 1.0;
  Alcotest.(check bool) "inactive" false (Trace.active ());
  Alcotest.(check int) "nothing recorded" 0 (Trace.emitted ());
  Alcotest.(check int)
    "span runs its thunk untraced" 3
    (Trace.span ~cat:"jsvm" "s" (fun () -> 3))

let test_unwritable_path () =
  (match Trace.configure ~path:"/nonexistent-vspec-dir/sub/trace.json" () with
  | Ok () -> Alcotest.fail "configure accepted an unwritable path"
  | Error msg ->
    Alcotest.(check bool)
      "degradation message names the path" true
      (try
         ignore (Str.search_forward (Str.regexp_string "nonexistent") msg 0);
         true
       with Not_found -> false));
  Alcotest.(check bool) "tracing stayed off" false (Trace.active ());
  (* No --trace flag and no VSPEC_TRACE: setup is a no-op. *)
  Unix.putenv "VSPEC_TRACE" "";
  match Trace.setup () with
  | Ok enabled -> Alcotest.(check bool) "setup without path" false enabled
  | Error m -> Alcotest.fail m

let test_write_and_finalize () =
  let path = Filename.temp_file "vspec-trace" ".json" in
  (match Trace.configure ~path () with
  | Error m -> Alcotest.fail m
  | Ok () -> ());
  scripted_events ();
  (match Trace.finalize () with
  | Ok (Some (p, n)) ->
    Alcotest.(check string) "finalize path" path p;
    Alcotest.(check int) "finalize count" 3 n
  | Ok None -> Alcotest.fail "finalize lost the configured path"
  | Error m -> Alcotest.fail m);
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file is a chrome trace" true
    (String.length text > 0
    && String.sub text 0 15 = "{\"traceEvents\":");
  Alcotest.(check bool) "finalize disabled tracing" false (Trace.active ());
  match Trace.finalize () with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "finalize is not idempotent"
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Zero-perturbation: the determinism contract with tracing on         *)
(* ------------------------------------------------------------------ *)

let digest (r : Experiments.Harness.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))

let harness_run () =
  let bench = Option.get (Workloads.Suite.by_id "DP") in
  let config = Experiments.Common.config_for ~arch:Arch.Arm64 ~seed:1
      Experiments.Common.V_normal in
  Experiments.Harness.run ~iterations:20 ~config bench

let test_determinism_on_off_wrapped () =
  Trace.disable ();
  let d_off = digest (harness_run ()) in
  Trace.enable ();
  let d_on = digest (harness_run ()) in
  let events_on = Trace.emitted () in
  Trace.disable ();
  (* Capacity 16 wraps thousands of times over a 20-iteration run. *)
  Trace.enable ~capacity:16 ();
  let d_wrapped = digest (harness_run ()) in
  let dropped = Trace.dropped () in
  Trace.disable ();
  Alcotest.(check bool) "tracing produced events" true (events_on > 0);
  Alcotest.(check bool) "wrapped ring dropped events" true (dropped > 0);
  Alcotest.(check string) "digest on == off" d_off d_on;
  Alcotest.(check string) "digest wrapped == off" d_off d_wrapped

let test_all_layers_present () =
  Trace.enable ();
  ignore (harness_run ());
  let cats =
    List.sort_uniq compare
      (List.map (fun e -> e.Trace.ev_cat) (Trace.events ()))
  in
  Trace.disable ();
  List.iter
    (fun layer ->
      Alcotest.(check bool)
        (Printf.sprintf "layer %s traced" layer)
        true (List.mem layer cats))
    [ "jsvm"; "turbofan"; "machine"; "experiments" ]

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "format from path" `Quick test_format_of_path;
        Alcotest.test_case "chrome golden" `Quick test_chrome_golden;
        Alcotest.test_case "folded golden" `Quick test_folded_golden;
        Alcotest.test_case "csv golden" `Quick test_csv_golden;
        Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
        Alcotest.test_case "capacity clamp" `Quick test_capacity_clamp;
        Alcotest.test_case "span emits on exception" `Quick
          test_span_on_exception;
        Alcotest.test_case "off is silent" `Quick test_off_is_silent;
        Alcotest.test_case "unwritable path degrades" `Quick
          test_unwritable_path;
        Alcotest.test_case "write and finalize" `Quick test_write_and_finalize;
        Alcotest.test_case "determinism on/off/wrapped" `Quick
          test_determinism_on_off_wrapped;
        Alcotest.test_case "all layers traced" `Quick test_all_layers_present;
      ] );
  ]
