(* Unit tests for the Support.Pool domain pool and its single-flight
   memo table: result ordering, exception propagation, the jobs=1
   sequential fallback, and single-flight semantics under contention. *)

let test_map_ordering () =
  let xs = Array.init 100 Fun.id in
  let ys = Support.Pool.map_array ~jobs:4 (fun i -> i * i) xs in
  Alcotest.(check (array int)) "ordered results"
    (Array.init 100 (fun i -> i * i))
    ys;
  let zs = Support.Pool.map ~jobs:3 string_of_int [ 3; 1; 2 ] in
  Alcotest.(check (list string)) "list order" [ "3"; "1"; "2" ] zs

let test_run_ordering () =
  let rs = Support.Pool.run ~jobs:4 (List.init 20 (fun i () -> i + 100)) in
  Alcotest.(check (list int)) "thunk order" (List.init 20 (fun i -> i + 100)) rs

let test_uneven_costs () =
  (* Dynamic scheduling: wildly uneven job costs still produce ordered
     results. *)
  let xs = Array.init 24 (fun i -> if i mod 7 = 0 then 30000 else 10) in
  let ys =
    Support.Pool.map_array ~jobs:4
      (fun n ->
        let acc = ref 0 in
        for k = 1 to n do
          acc := !acc + k
        done;
        !acc)
      xs
  in
  Array.iteri
    (fun i n ->
      Alcotest.(check int) "sum" (n * (n + 1) / 2) ys.(i))
    xs

let test_jobs1_sequential () =
  (* jobs = 1 runs everything in the calling domain, in order. *)
  let self = (Domain.self () :> int) in
  let order = ref [] in
  let ys =
    Support.Pool.map ~jobs:1
      (fun i ->
        order := i :: !order;
        (Domain.self () :> int))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int)) "in calling domain" [ self; self; self; self; self ] ys;
  Alcotest.(check (list int)) "submission order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_exception_propagation () =
  Alcotest.check_raises "propagates the job's exception" (Failure "boom")
    (fun () ->
      ignore
        (Support.Pool.map ~jobs:3
           (fun i -> if i = 25 then failwith "boom" else i)
           (List.init 50 Fun.id)))

let test_exception_jobs1 () =
  Alcotest.check_raises "sequential fallback too" (Failure "seq")
    (fun () ->
      ignore
        (Support.Pool.map ~jobs:1
           (fun i -> if i = 3 then failwith "seq" else i)
           (List.init 8 Fun.id)))

let test_default_jobs_env () =
  Unix.putenv "VSPEC_JOBS" "3";
  Alcotest.(check int) "VSPEC_JOBS wins" 3 (Support.Pool.default_jobs ());
  Unix.putenv "VSPEC_JOBS" "not-a-number";
  Alcotest.(check bool) "garbage falls back to >= 1" true
    (Support.Pool.default_jobs () >= 1);
  Unix.putenv "VSPEC_JOBS" "1"

let test_memo_single_flight () =
  let m : (string, int) Support.Pool.Memo.t = Support.Pool.Memo.create 4 in
  let computed = Atomic.make 0 in
  let rs =
    Support.Pool.run ~jobs:4
      (List.init 16 (fun _ () ->
           Support.Pool.Memo.find_or_compute m "key" (fun () ->
               Atomic.incr computed;
               (* Widen the race window so concurrent domains really do
                  contend for the same in-flight key. *)
               Unix.sleepf 0.02;
               42)))
  in
  Alcotest.(check (list int)) "all callers get the value"
    (List.init 16 (fun _ -> 42))
    rs;
  Alcotest.(check int) "computed exactly once" 1 (Atomic.get computed);
  Alcotest.(check int) "one published entry" 1 (Support.Pool.Memo.length m)

let test_memo_failure_releases_key () =
  let m : (string, int) Support.Pool.Memo.t = Support.Pool.Memo.create 4 in
  let attempts = ref 0 in
  let compute () =
    incr attempts;
    if !attempts = 1 then failwith "first try fails" else 7
  in
  Alcotest.check_raises "failure propagates" (Failure "first try fails")
    (fun () -> ignore (Support.Pool.Memo.find_or_compute m "k" compute));
  Alcotest.(check (option int)) "failed key not published" None
    (Support.Pool.Memo.find_opt m "k");
  Alcotest.(check int) "retry recomputes" 7
    (Support.Pool.Memo.find_or_compute m "k" compute);
  Alcotest.(check (option int)) "now published" (Some 7)
    (Support.Pool.Memo.find_opt m "k")

let test_memo_failure_multi_domain () =
  (* A producer that dies while other domains are parked on its key
     must release the key: exactly one caller sees the crash, every
     other caller re-runs the compute and gets the value. *)
  let m : (string, int) Support.Pool.Memo.t = Support.Pool.Memo.create 4 in
  let attempts = Atomic.make 0 in
  let compute () =
    let n = Atomic.fetch_and_add attempts 1 in
    (* Hold the key long enough for the other domains to pile up. *)
    Unix.sleepf 0.01;
    if n = 0 then failwith "producer dies" else 99
  in
  let rs =
    Support.Pool.map_result ~jobs:4 ~retries:0
      (fun _ -> Support.Pool.Memo.find_or_compute m "k" compute)
      (List.init 8 Fun.id)
  in
  let crashed, ok =
    List.partition (function Error _ -> true | Ok _ -> false) rs
  in
  Alcotest.(check int) "exactly one caller crashes" 1 (List.length crashed);
  (match crashed with
  | [ Error (Support.Fault.Worker_crash _) ] -> ()
  | _ -> Alcotest.fail "crash must classify as Worker_crash");
  Alcotest.(check (list int)) "survivors all get the recomputed value"
    (List.init 7 (fun _ -> 99))
    (List.map (function Ok v -> v | Error _ -> -1) ok);
  Alcotest.(check int) "recomputed exactly once after the failure" 2
    (Atomic.get attempts);
  Alcotest.(check int) "one published entry" 1 (Support.Pool.Memo.length m)

let test_memo_distinct_keys () =
  let m : (int, int) Support.Pool.Memo.t = Support.Pool.Memo.create 16 in
  let rs =
    Support.Pool.map ~jobs:4
      (fun i -> Support.Pool.Memo.find_or_compute m (i mod 5) (fun () -> i mod 5))
      (List.init 40 Fun.id)
  in
  Alcotest.(check (list int)) "values match keys"
    (List.init 40 (fun i -> i mod 5))
    rs;
  Alcotest.(check int) "five entries" 5 (Support.Pool.Memo.length m);
  Support.Pool.Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Support.Pool.Memo.length m)

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "map ordering" `Quick test_map_ordering;
        Alcotest.test_case "run ordering" `Quick test_run_ordering;
        Alcotest.test_case "uneven job costs" `Quick test_uneven_costs;
        Alcotest.test_case "jobs=1 sequential fallback" `Quick test_jobs1_sequential;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "exception (jobs=1)" `Quick test_exception_jobs1;
        Alcotest.test_case "VSPEC_JOBS knob" `Quick test_default_jobs_env;
      ] );
    ( "pool-memo",
      [
        Alcotest.test_case "single flight" `Quick test_memo_single_flight;
        Alcotest.test_case "failure releases key" `Quick test_memo_failure_releases_key;
        Alcotest.test_case "failure releases key (multi-domain)" `Quick
          test_memo_failure_multi_domain;
        Alcotest.test_case "distinct keys" `Quick test_memo_distinct_keys;
      ] );
  ]
