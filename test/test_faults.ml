(* Fault-tolerance suite: error taxonomy, deterministic injection,
   retry policy, pool containment, the simulation watchdog in both
   execution engines, cache quarantine/degradation, and the end-to-end
   degraded-figure contract (failed cells render as missing, the ledger
   reports them, and the exit code flips to 1).

   Run alone with [test_main.exe test faults] (the @faults alias). *)

module Fault = Support.Fault

(* Every test here mutates process-global state (env knobs, injection
   spec, ledger, memo tables); reset to a clean baseline around each
   body so ordering cannot leak between tests. *)
let isolated f () =
  let reset () =
    Fault.Inject.set_spec "";
    Unix.putenv "VSPEC_CACHE_DIR" "off";
    Unix.putenv "VSPEC_MAX_CYCLES" "";
    Unix.putenv "VSPEC_RETRIES" "";
    Experiments.Common.clear_memo ();
    Fault.Ledger.clear ()
  in
  reset ();
  Fun.protect ~finally:reset f

let bench id = Option.get (Workloads.Suite.by_id id)

(* ---------------- taxonomy ---------------- *)

let test_taxonomy () =
  let runaway = Fault.Runaway { what = "x"; limit = 1.0 } in
  let corrupt = Fault.Cache_corrupt { path = "p"; reason = "r" } in
  let injected = Fault.Injected { site = "sim"; key = "k" } in
  let crash = Fault.of_exn (Failure "boom") in
  Alcotest.(check bool) "runaway permanent" false (Fault.is_transient runaway);
  Alcotest.(check bool) "corrupt transient" true (Fault.is_transient corrupt);
  Alcotest.(check bool) "injected transient" true (Fault.is_transient injected);
  Alcotest.(check bool) "crash permanent" false (Fault.is_transient crash);
  Alcotest.(check string) "class name" "runaway" (Fault.class_name runaway);
  (match crash with
  | Fault.Worker_crash { exn_name = _; exn_msg } ->
    Alcotest.(check bool) "crash keeps the message" true
      (String.length exn_msg > 0)
  | _ -> Alcotest.fail "Failure must classify as Worker_crash");
  (* [of_exn] unwraps an already-typed fault instead of re-wrapping. *)
  Alcotest.(check bool) "Fault unwraps" true
    (Fault.of_exn (Fault.Fault runaway) = runaway)

(* ---------------- deterministic injection ---------------- *)

let fires site key attempt =
  Fault.Inject.fires ~site ~key ~attempt <> None

let test_injection_deterministic () =
  Fault.Inject.set_spec "sim:0.5:42";
  let a = List.init 64 (fun i -> fires Fault.Inject.Sim (string_of_int i) 0) in
  let b = List.init 64 (fun i -> fires Fault.Inject.Sim (string_of_int i) 0) in
  Alcotest.(check (list bool)) "same spec, same decisions" a b;
  Alcotest.(check bool) "rate 0.5 fires sometimes" true (List.mem true a);
  Alcotest.(check bool) "rate 0.5 passes sometimes" true (List.mem false a);
  Fault.Inject.set_spec "sim:0.5:43";
  let c = List.init 64 (fun i -> fires Fault.Inject.Sim (string_of_int i) 0) in
  Alcotest.(check bool) "different seed, different decisions" true (a <> c)

let test_injection_rates_and_sites () =
  Fault.Inject.set_spec "sim:0.0:1";
  Alcotest.(check bool) "rate 0 never fires" false
    (List.exists (fun i -> fires Fault.Inject.Sim (string_of_int i) 0)
       (List.init 64 Fun.id));
  Fault.Inject.set_spec "sim:1.0:1";
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all (fun i -> fires Fault.Inject.Sim (string_of_int i) 0)
       (List.init 64 Fun.id));
  Alcotest.(check bool) "other sites untouched" false
    (fires Fault.Inject.Worker "k" 0);
  Fault.Inject.set_spec "sim:1.0:1:HASH";
  Alcotest.(check bool) "key filter matches" true
    (fires Fault.Inject.Sim "HASH|arm64|normal" 0);
  Alcotest.(check bool) "key filter rejects" false
    (fires Fault.Inject.Sim "DP|arm64|normal" 0);
  Alcotest.(check bool) "garbage spec rejected loudly" true
    (match Fault.Inject.set_spec "bogus-spec,;;;" with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "rejected spec left the previous one active" true
    (fires Fault.Inject.Sim "HASH|arm64|normal" 0)

(* ---------------- retry policy ---------------- *)

let test_guard_retries_transient () =
  let calls = ref 0 in
  let r =
    Fault.guard ~retries:3 (fun ~attempt ->
        incr calls;
        if attempt < 2 then
          raise (Fault.Fault (Fault.Injected { site = "sim"; key = "k" }))
        else 17)
  in
  Alcotest.(check bool) "recovers after transient retries" true (r = Ok 17);
  Alcotest.(check int) "three attempts" 3 !calls

let test_guard_permanent_no_retry () =
  let calls = ref 0 in
  let r =
    Fault.guard ~retries:3 (fun ~attempt:_ ->
        incr calls;
        Fault.runaway ~what:"spin" ~limit:1.0)
  in
  (match r with
  | Error (Fault.Runaway { what = "spin"; _ }, attempts) ->
    Alcotest.(check int) "one attempt only" 1 attempts
  | _ -> Alcotest.fail "permanent error must not retry");
  Alcotest.(check int) "called once" 1 !calls

let test_guard_exhaustion () =
  let r =
    Fault.guard ~retries:2 (fun ~attempt:_ ->
        raise (Fault.Fault (Fault.Injected { site = "sim"; key = "k" })))
  in
  match r with
  | Error (Fault.Injected _, 3) -> ()
  | _ -> Alcotest.fail "transient exhaustion must report all attempts"

(* ---------------- pool containment ---------------- *)

let test_pool_containment () =
  let rs =
    Support.Pool.map_result ~jobs:4 ~retries:0
      (fun i -> if i = 5 then failwith "job dies" else i * 10)
      (List.init 12 Fun.id)
  in
  Alcotest.(check int) "all jobs complete" 12 (List.length rs);
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "value in place" (i * 10) v
      | Error (Fault.Worker_crash _) ->
        Alcotest.(check int) "only the crashing job fails" 5 i
      | Error e -> Alcotest.fail ("unexpected class: " ^ Fault.class_name e))
    rs

let test_pool_injection_transparent () =
  (* Sub-1.0 worker-site injection with a retry budget must be fully
     absorbed: same values as a clean run. *)
  Fault.Inject.set_spec "worker:0.25:5";
  let rs =
    Support.Pool.map_result ~jobs:4 ~retries:8
      (fun i -> i + 1)
      (List.init 32 Fun.id)
  in
  Alcotest.(check (list int)) "all values intact"
    (List.init 32 (fun i -> i + 1))
    (List.map (function Ok v -> v | Error _ -> -1) rs)

(* ---------------- simulation watchdog ---------------- *)

let mk_code ?(deopts = [||]) insns =
  Code.assemble ~code_id:0 ~name:"spin" ~arch:Arch.Arm64 ~deopts ~gp_slots:4
    ~fp_slots:4 ~base_addr:0x100
    (List.map (fun k -> Insn.make k) insns)

let null_host memory =
  { Exec.memory; call_builtin = (fun _ _ -> 0); call_js = (fun _ _ -> 0) }

let spin_code () = mk_code [ Insn.Label 0; Insn.B 0 ]

let run_spin engine =
  Exec.set_engine (Some engine);
  Fun.protect
    ~finally:(fun () -> Exec.set_engine None)
    (fun () ->
      let cpu = Cpu.create Cpu.fast_arm64 in
      Cpu.arm_watchdog cpu ~cycles:10_000.0;
      ignore
        (Exec.run cpu ~host:(null_host (Array.make 8 0)) ~code:(spin_code ())
           ~args:[||]))

let test_watchdog_both_engines () =
  List.iter
    (fun engine ->
      Alcotest.check_raises "non-terminating code trips the watchdog"
        (Fault.Fault (Fault.Runaway { what = "spin"; limit = 10_000.0 }))
        (fun () -> run_spin engine))
    [ Exec.Direct; Exec.Decoded ]

(* One long straight-line accounting block per loop iteration: eight
   ALU ops (which pairwise fuse on disjoint registers) and an
   unconditional back-edge.  Under block batching the fuel check runs
   once per block entry, so this is the worst case for overshoot. *)
let straight_spin () =
  mk_code
    ([ Insn.Label 0 ]
    @ List.init 8 (fun k ->
          Insn.Alu
            {
              op = Insn.Add;
              dst = k mod 4;
              src = k mod 4;
              rhs = Insn.Imm 1;
              set_flags = false;
            })
    @ [ Insn.B 0 ])

let run_spin_config ~fuse ~batch code =
  Exec.set_engine (Some Exec.Decoded);
  Decode.set_fuse (Some fuse);
  Decode.set_batch (Some batch);
  Fun.protect
    ~finally:(fun () ->
      Exec.set_engine None;
      Decode.set_fuse None;
      Decode.set_batch None)
    (fun () ->
      let cpu = Cpu.create Cpu.fast_arm64 in
      Cpu.arm_watchdog cpu ~cycles:10_000.0;
      match
        Exec.run cpu ~host:(null_host (Array.make 8 0)) ~code ~args:[||]
      with
      | _ -> Alcotest.fail "watchdog did not trip"
      | exception e -> (cpu, e))

let test_watchdog_batched_payload () =
  (* Mid-block fuel exhaustion must raise the exact same typed fault —
     same [what], same [limit] — in every engine configuration. *)
  List.iter
    (fun (fuse, batch) ->
      let _, e = run_spin_config ~fuse ~batch (straight_spin ()) in
      Alcotest.(check bool)
        (Printf.sprintf "exact Runaway payload (fuse=%b batch=%b)" fuse batch)
        true
        (e = Fault.Fault (Fault.Runaway { what = "spin"; limit = 10_000.0 })))
    [ (true, true); (false, true); (true, false); (false, false) ]

let test_watchdog_overshoot_bounded () =
  (* The block-entry fuel check runs before the block's charge, so the
     dispatch pointer can pass the ceiling by at most one straight-line
     block — ten micro-ops here, well under 32 cycles on the fast ARM64
     model — never by an unbounded amount. *)
  List.iter
    (fun (fuse, batch) ->
      let cpu, _ = run_spin_config ~fuse ~batch (straight_spin ()) in
      let now = cpu.Cpu.clk.Cpu.now in
      Alcotest.(check bool)
        (Printf.sprintf "overshoot within one block (fuse=%b batch=%b)" fuse
           batch)
        true
        (now > 0.0 && now <= 10_000.0 +. 32.0))
    [ (true, true); (true, false) ]

let test_watchdog_disarmed_is_free () =
  (* A terminating code object under an armed watchdog is unaffected. *)
  let cpu = Cpu.create Cpu.fast_arm64 in
  Cpu.arm_watchdog cpu ~cycles:1e9;
  (match
     Exec.run cpu
       ~host:(null_host (Array.make 8 0))
       ~code:(mk_code [ Insn.Mov (0, Insn.Imm 7); Insn.Ret ])
       ~args:[||]
   with
  | Exec.Done v -> Alcotest.(check int) "result intact" 7 v
  | _ -> Alcotest.fail "expected Done");
  Cpu.disarm_watchdog cpu;
  Alcotest.(check bool) "disarm resets the ceiling" true
    (cpu.Cpu.clk.Cpu.fuel_limit = infinity)

let test_pool_survives_runaway () =
  (* A runaway job must come back as a typed error without hanging or
     poisoning its pool siblings. *)
  let rs =
    Support.Pool.map_result ~jobs:2 ~retries:0
      (fun spin ->
        if spin then (
          run_spin Exec.Decoded;
          -1)
        else 42)
      [ true; false ]
  in
  match rs with
  | [ Error (Fault.Runaway { what = "spin"; _ }); Ok 42 ] -> ()
  | _ -> Alcotest.fail "expected [runaway; Ok 42]"

let test_harness_watchdog () =
  (* An absurdly small per-call budget makes any real benchmark trip as
     soon as its JIT code runs; Harness.run must surface it as a typed
     Fault, not loop or report a soft error. *)
  Unix.putenv "VSPEC_MAX_CYCLES" "1";
  match
    Experiments.Harness.run ~iterations:30
      ~config:
        (Experiments.Common.config_for ~arch:Arch.Arm64 ~seed:1
           Experiments.Common.V_normal)
      (bench "DP")
  with
  | _ -> Alcotest.fail "watchdog did not trip"
  | exception Fault.Fault (Fault.Runaway _) -> ()

(* ---------------- regex backtracking bail-out ---------------- *)

let test_regex_runaway_typed () =
  Regex.set_step_limit 500;
  Fun.protect
    ~finally:(fun () -> Regex.set_step_limit 0)
    (fun () ->
      let re = Regex.compile "(a+)+b" in
      Alcotest.check_raises "catastrophic backtracking is a watchdog event"
        (Fault.Fault (Fault.Runaway { what = "regex:(a+)+b"; limit = 500.0 }))
        (fun () -> ignore (Regex.exec re (String.make 30 'a') 0)));
  (* Parse errors keep their own exception: they are user-input errors,
     not containment events. *)
  Alcotest.(check bool) "parse error still Regex_error" true
    (match Regex.compile "(" with
    | exception Regex.Regex_error _ -> true
    | _ -> false)

(* ---------------- disk cache: quarantine + degradation ---------------- *)

let temp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vspec-%s-%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let digest (r : Experiments.Harness.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))

let run_dp () =
  Experiments.Common.run_cached ~iterations:8 ~arch:Arch.Arm64 ~seed:1
    Experiments.Common.V_normal (bench "DP")

let test_corrupt_entry_quarantined () =
  let dir = temp_dir "quarantine" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      Unix.putenv "VSPEC_CACHE_DIR" dir;
      let r1 = digest (run_dp ()) in
      let bins =
        List.filter
          (fun f -> Filename.check_suffix f ".bin")
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check bool) "entry persisted" true (bins <> []);
      List.iter
        (fun f ->
          let oc = open_out_bin (Filename.concat dir f) in
          output_string oc "not a marshal stream";
          close_out oc)
        bins;
      Experiments.Common.clear_memo ();
      let r2 = digest (run_dp ()) in
      Alcotest.(check string) "recomputed bit-identical" r1 r2;
      Alcotest.(check bool) "corrupt entry quarantined" true
        (List.exists
           (fun f -> Filename.check_suffix f ".corrupt")
           (Array.to_list (Sys.readdir dir)));
      Alcotest.(check bool) "quarantine is ledgered as a note" true
        (List.exists
           (fun (e : Fault.Ledger.entry) -> not e.Fault.Ledger.permanent)
           (Fault.Ledger.entries ()));
      Alcotest.(check int) "recovered faults keep the run clean" 0
        (Fault.Ledger.exit_code ()))

let test_unusable_cache_dir_degrades () =
  let dir = temp_dir "badcache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* A path *under a regular file* cannot be created on any OS or
         uid (root ignores permission bits in containers), so this
         deterministically exercises the degradation path. *)
      let file = Filename.concat dir "plainfile" in
      let oc = open_out file in
      close_out oc;
      let bad = Filename.concat file "sub" in
      (match Experiments.Common.resolve_cache_dir bad with
      | None, Some _ -> ()
      | _ -> Alcotest.fail "expected (None, warning)");
      Unix.putenv "VSPEC_CACHE_DIR" bad;
      ignore (run_dp ());
      Alcotest.(check int) "simulated, not aborted" 1
        (fst (Experiments.Common.cache_stats ()));
      Experiments.Common.clear_memo ();
      ignore (run_dp ());
      Alcotest.(check int) "cache really off: recomputed" 1
        (fst (Experiments.Common.cache_stats ())))

(* ---------------- ledger + exit-code contract ---------------- *)

let test_ledger_exit_codes () =
  Alcotest.(check int) "clean run exits 0" 0 (Fault.Ledger.exit_code ());
  Fault.Ledger.note ~cell:"c1" (Fault.Injected { site = "cache-read"; key = "k" });
  Alcotest.(check int) "recovered notes exit 0" 0 (Fault.Ledger.exit_code ());
  Fault.Ledger.record ~attempts:3 ~cell:"c2"
    (Fault.Runaway { what = "w"; limit = 1.0 });
  Alcotest.(check int) "permanent failure exits 1" 1 (Fault.Ledger.exit_code ());
  Alcotest.(check int) "permanent count" 1 (Fault.Ledger.permanent_count ());
  Alcotest.(check int) "both entries kept" 2
    (List.length (Fault.Ledger.entries ()))

(* ---------------- end-to-end degraded figure ---------------- *)

let with_captured_stdout f =
  let tmp = Filename.temp_file "vspec-faults" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close fd)
    f;
  let ic = open_in_bin tmp in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  s

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_degraded_figure_end_to_end () =
  (* Permanently fail every HASH sim cell; DP must still complete, the
     figure must render HASH as missing, and the process-level verdict
     must be "degraded" (exit code 1). *)
  Fault.Inject.set_spec "sim:1.0:9:HASH";
  Unix.putenv "VSPEC_BENCH" "DP,HASH";
  Unix.putenv "VSPEC_ITERS" "10";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "VSPEC_BENCH" "";
      Unix.putenv "VSPEC_ITERS" "")
    (fun () ->
      Experiments.Plan.run ~jobs:2
        (List.map
           (fun b -> Experiments.Plan.cell ~arch:Arch.Arm64 ~seed:1 Experiments.Common.V_normal b)
           (Experiments.Common.suite ()));
      (match
         Experiments.Common.run_result ~arch:Arch.Arm64 ~seed:1
           Experiments.Common.V_normal (bench "DP")
       with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("DP should survive: " ^ Fault.class_name e));
      (match
         Experiments.Common.run_result ~arch:Arch.Arm64 ~seed:1
           Experiments.Common.V_normal (bench "HASH")
       with
      | Error (Fault.Injected _) -> ()
      | Ok _ -> Alcotest.fail "HASH cell should fail permanently"
      | Error e -> Alcotest.fail ("wrong class: " ^ Fault.class_name e));
      let out = with_captured_stdout (fun () -> Experiments.Exp_checks.fig1 ()) in
      Alcotest.(check bool) "failed cell rendered as missing" true
        (contains ~sub:"(missing" out);
      Alcotest.(check bool) "surviving cell still rendered" true
        (contains ~sub:"DP" out);
      Alcotest.(check bool) "ledger has the permanent failures" true
        (Fault.Ledger.permanent_count () >= 1);
      Alcotest.(check int) "degraded exit code" 1 (Fault.Ledger.exit_code ()))

let tc name f = Alcotest.test_case name `Quick (isolated f)

let suite =
  [
    ( "faults",
      [
        tc "taxonomy" test_taxonomy;
        tc "injection determinism" test_injection_deterministic;
        tc "injection rates, sites, filters" test_injection_rates_and_sites;
        tc "guard retries transient" test_guard_retries_transient;
        tc "guard permanent no-retry" test_guard_permanent_no_retry;
        tc "guard exhaustion" test_guard_exhaustion;
        tc "pool containment" test_pool_containment;
        tc "pool injection transparency" test_pool_injection_transparent;
        tc "watchdog trips both engines" test_watchdog_both_engines;
        tc "watchdog payload identical under batching"
          test_watchdog_batched_payload;
        tc "watchdog overshoot bounded by one block"
          test_watchdog_overshoot_bounded;
        tc "watchdog arm/disarm" test_watchdog_disarmed_is_free;
        tc "pool survives runaway job" test_pool_survives_runaway;
        tc "harness-level watchdog" test_harness_watchdog;
        tc "regex runaway typed" test_regex_runaway_typed;
        tc "corrupt cache entry quarantined" test_corrupt_entry_quarantined;
        tc "unusable cache dir degrades" test_unusable_cache_dir_degrades;
        tc "ledger exit-code contract" test_ledger_exit_codes;
        tc "degraded figure end-to-end" test_degraded_figure_end_to_end;
      ] );
  ]
