(* Cross-cutting checks: conversions, workload-suite hygiene, assembler
   error handling, instruction printing, and the whole-suite baseline
   differential. *)

(* ---------------- Conv ---------------- *)

let test_number_to_string () =
  let cases =
    [ (1.0, "1"); (-42.0, "-42"); (2.5, "2.5"); (0.0, "0");
      (1e21, "1e+21"); (Float.nan, "NaN"); (Float.infinity, "Infinity");
      (Float.neg_infinity, "-Infinity") ]
  in
  List.iter
    (fun (f, want) ->
      Alcotest.(check string)
        (Printf.sprintf "number_to_string %g" f)
        want (Conv.number_to_string f))
    cases

let test_to_number_strings () =
  let h = Heap.create ~size_words:(1 lsl 16) () in
  let num s = Conv.to_number h (Heap.alloc_string h s) in
  Alcotest.(check bool) "int" true (num "42" = 42.0);
  Alcotest.(check bool) "float" true (num "2.5" = 2.5);
  Alcotest.(check bool) "trimmed" true (num "  7 " = 7.0);
  Alcotest.(check bool) "empty is zero" true (num "" = 0.0);
  Alcotest.(check bool) "garbage is NaN" true (Float.is_nan (num "4x"));
  Alcotest.(check bool) "undefined is NaN" true
    (Float.is_nan (Conv.to_number h (Heap.undefined h)));
  Alcotest.(check bool) "null is zero" true
    (Conv.to_number h (Heap.null_value h) = 0.0);
  Alcotest.(check bool) "true is one" true
    (Conv.to_number h (Heap.true_value h) = 1.0)

(* ---------------- Workload suite hygiene ---------------- *)

let test_suite_ids_unique () =
  let ids = List.map (fun (b : Workloads.Suite.benchmark) -> b.Workloads.Suite.id) Workloads.Suite.all in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_suite_sources_compile () =
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let u = Bcompiler.compile b.Workloads.Suite.source in
      Alcotest.(check bool)
        (b.Workloads.Suite.id ^ " has functions")
        true
        (Array.length u.Bcompiler.functions > 1))
    Workloads.Suite.all

let test_suite_bench_defined () =
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let cfg =
        { (Engine.default_config ~arch:Arch.Arm64 ()) with
          Engine.enable_optimizer = false }
      in
      let eng = Engine.create cfg b.Workloads.Suite.source in
      let _ = Engine.run_main eng in
      let h = (Engine.runtime eng).Runtime.heap in
      let v = Heap.cell_value h (Heap.global_cell h "bench") in
      Alcotest.(check bool)
        (b.Workloads.Suite.id ^ " defines bench()")
        true (Heap.is_function h v))
    Workloads.Suite.all

let test_smi_kernels_exist () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " exists") true
        (Workloads.Suite.by_id id <> None))
    Workloads.Suite.smi_kernels

let test_categories_nonempty () =
  List.iter
    (fun cat ->
      Alcotest.(check bool)
        (Workloads.Suite.category_name cat ^ " populated")
        true
        (Workloads.Suite.by_category cat <> []))
    Workloads.Suite.categories

(* ---------------- Assembler / printing ---------------- *)

let test_assemble_unknown_label () =
  Alcotest.(check bool) "unknown label rejected" true
    (try
       ignore
         (Code.assemble ~code_id:0 ~name:"bad" ~arch:Arch.Arm64 ~deopts:[||]
            ~gp_slots:1 ~fp_slots:0 ~base_addr:0
            [ Insn.make (Insn.B 5); Insn.make Insn.Ret ]);
       false
     with Invalid_argument _ -> true)

let test_insn_printing_total () =
  (* Every instruction form prints on every arch without raising. *)
  let addr = Insn.mk_addr ~index:2 ~scale:2 ~offset:3 1 in
  let samples =
    [ Insn.Mov (0, Insn.Imm 5); Insn.Ldr (0, addr); Insn.Str (addr, 0);
      Insn.Ldr_f (1, addr); Insn.Str_f (addr, 1);
      Insn.Alu { op = Insn.Add; dst = 0; src = 1; rhs = Insn.Reg 2; set_flags = true };
      Insn.Alu_mem { op = Insn.Sub; dst = 0; src = 1; mem = addr };
      Insn.Cmp (0, Insn.Imm 7); Insn.Cmp_mem (0, addr); Insn.Tst (0, Insn.Imm 1);
      Insn.Fmov (0, 1); Insn.Fmov_imm (0, 2.5);
      Insn.Falu { op = Insn.Fmul; dst = 0; a = 1; b = 2 };
      Insn.Fcmp (0, 1); Insn.Scvtf (0, 1); Insn.Fcvtzs (0, 1);
      Insn.B 3; Insn.Bcond (Insn.Lo, 3); Insn.Deopt_if (Insn.Vs, 0);
      Insn.Checkpoint 0; Insn.Call (Insn.Builtin 7, 2);
      Insn.Call (Insn.Js_code 3, 4); Insn.Ret; Insn.Spill (2, 0);
      Insn.Reload (0, 2); Insn.Spill_f (1, 0); Insn.Reload_f (0, 1);
      Insn.Js_ldr_smi { dst = 0; mem = addr; deopt = 0 };
      Insn.Msr (Insn.Reg_ba, 0); Insn.Mrs (0, Insn.Reg_re); Insn.Label 3;
      Insn.Nop ]
  in
  List.iter
    (fun arch ->
      List.iter
        (fun k ->
          let s = Insn.to_string arch (Insn.make k) in
          Alcotest.(check bool) "prints" true (String.length s > 0))
        samples)
    Arch.all

let test_negate_cond_involutive () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "double negation" true
        (Insn.negate_cond (Insn.negate_cond c) = c))
    [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Le; Insn.Gt; Insn.Ge; Insn.Vs; Insn.Vc;
      Insn.Hs; Insn.Lo ]

(* ---------------- Whole-suite baseline differential ---------------- *)

let test_whole_suite_baseline () =
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let run baseline =
        let cfg =
          { (Engine.default_config ~arch:Arch.Arm64 ()) with
            Engine.enable_optimizer = false;
            enable_baseline = baseline }
        in
        let eng = Engine.create cfg b.Workloads.Suite.source in
        let _ = Engine.run_main eng in
        let h = (Engine.runtime eng).Runtime.heap in
        let v = ref 0 in
        for _ = 1 to 6 do
          v := Engine.call_global eng "bench" [||]
        done;
        Heap.number_value h !v
      in
      let interp = run false and baseline = run true in
      Alcotest.(check bool)
        (Printf.sprintf "%s baseline=%f interp=%f" b.Workloads.Suite.id
           baseline interp)
        true
        (Float.abs (baseline -. interp) < 1e-9))
    Workloads.Suite.all

let base_suite =
  [
    ( "conv",
      [
        Alcotest.test_case "number_to_string" `Quick test_number_to_string;
        Alcotest.test_case "to_number" `Quick test_to_number_strings;
      ] );
    ( "workloads",
      [
        Alcotest.test_case "ids unique" `Quick test_suite_ids_unique;
        Alcotest.test_case "sources compile" `Quick test_suite_sources_compile;
        Alcotest.test_case "bench() defined" `Quick test_suite_bench_defined;
        Alcotest.test_case "smi kernels exist" `Quick test_smi_kernels_exist;
        Alcotest.test_case "categories populated" `Quick test_categories_nonempty;
      ] );
    ( "machine-misc",
      [
        Alcotest.test_case "unknown label" `Quick test_assemble_unknown_label;
        Alcotest.test_case "printing total" `Quick test_insn_printing_total;
        Alcotest.test_case "negate_cond involutive" `Quick test_negate_cond_involutive;
      ] );
    ( "baseline-suite",
      [ Alcotest.test_case "whole suite" `Slow test_whole_suite_baseline ] );
  ]

(* ------------------------------------------------------------------ *)
(* Property tests: builtins against OCaml reference implementations    *)
(* ------------------------------------------------------------------ *)

let eval_js src =
  let u = Bcompiler.compile ("var __r = (" ^ src ^ ");") in
  let rt = Runtime.create ~heap_size:(1 lsl 20) u in
  Builtins.install_globals rt;
  let _ = Interpreter.run_main rt in
  let h = rt.Runtime.heap in
  (h, Heap.cell_value h (Heap.global_cell h "__r"))

let js_quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let gen_word =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 14))

let prop_index_of_matches =
  QCheck.Test.make ~name:"builtin: indexOf matches reference" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_word gen_word))
    (fun (hay, needle) ->
      let _, v = eval_js (js_quote hay ^ ".indexOf(" ^ js_quote needle ^ ")") in
      let reference =
        if needle = "" then 0
        else begin
          let n = String.length hay and m = String.length needle in
          let rec go i =
            if i + m > n then -1
            else if String.sub hay i m = needle then i
            else go (i + 1)
          in
          go 0
        end
      in
      Value.is_smi v && Value.smi_value v = reference)

let prop_substring_matches =
  QCheck.Test.make ~name:"builtin: substring clamps like JS" ~count:200
    (QCheck.make QCheck.Gen.(triple gen_word (int_range (-5) 20) (int_range (-5) 20)))
    (fun (s, a, b) ->
      let h, v =
        eval_js (Printf.sprintf "%s.substring(%d, %d)" (js_quote s) a b)
      in
      let n = String.length s in
      let clamp x = max 0 (min x n) in
      let a' = clamp a and b' = clamp b in
      let lo = min a' b' and hi = max a' b' in
      Heap.string_value h v = String.sub s lo (hi - lo))

let prop_split_join_roundtrip =
  QCheck.Test.make ~name:"builtin: split/join roundtrip" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_range 1 6) gen_word))
    (fun parts ->
      let joined = String.concat "," parts in
      let h, v = eval_js (js_quote joined ^ {|.split(",").join(",")|}) in
      Heap.string_value h v = joined)

let prop_from_char_code_roundtrip =
  QCheck.Test.make ~name:"builtin: fromCharCode/charCodeAt roundtrip"
    ~count:150
    (QCheck.make QCheck.Gen.(int_range 32 126))
    (fun c ->
      let _, v =
        eval_js (Printf.sprintf "String.fromCharCode(%d).charCodeAt(0)" c)
      in
      Value.is_smi v && Value.smi_value v = c)

(* JS ToInt32 reference. *)
let to_int32_ref f =
  if Float.is_nan f || Float.abs f = Float.infinity then 0
  else begin
    let m = Float.rem (Float.trunc f) 4294967296.0 in
    let w = Int64.to_int (Int64.of_float m) land 0xFFFFFFFF in
    if w >= 0x80000000 then w - 0x100000000 else w
  end

let prop_bitops_match_toint32 =
  QCheck.Test.make ~name:"interp: bitops follow ToInt32" ~count:300
    (QCheck.make
       QCheck.Gen.(
         triple
           (oneof [ map float_of_int (int_range (-3000000000) 3000000000);
                    map (fun i -> float_of_int i +. 0.75) (int_range (-1000) 1000) ])
           (int_range 0 40)
           (oneofl [ "&"; "|"; "^"; "<<"; ">>"; ">>>" ])))
    (fun (a, b, op) ->
      let h, v = eval_js (Printf.sprintf "(%.17g) %s %d" a op b) in
      let x = to_int32_ref a and y = b land 31 in
      let reference =
        match op with
        | "&" -> x land to_int32_ref (float_of_int b)
        | "|" -> x lor to_int32_ref (float_of_int b)
        | "^" -> x lxor to_int32_ref (float_of_int b)
        | "<<" ->
          let w = (x lsl y) land 0xFFFFFFFF in
          if w >= 0x80000000 then w - 0x100000000 else w
        | ">>" -> x asr y
        | _ -> (x land 0xFFFFFFFF) lsr y
      in
      Heap.number_value h v = float_of_int reference)

let prop_suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "builtin-props",
      [
        q prop_index_of_matches;
        q prop_substring_matches;
        q prop_split_join_roundtrip;
        q prop_from_char_code_roundtrip;
        q prop_bitops_match_toint32;
      ] );
  ]

(* ---------------- New builtins ---------------- *)

let test_extra_builtins () =
  let check name want src =
    let h, v = eval_js src in
    Alcotest.(check string) name want (Conv.to_js_string h v)
  in
  check "trim" "x y" {|"  x y  ".trim()|};
  check "repeat" "ababab" {|"ab".repeat(3)|};
  check "repeat zero" "" {|"ab".repeat(0)|};
  check "concat" "1,2,3,4" "[1,2].concat([3,4]).join(\",\")";
  check "reverse" "3,2,1" "[1,2,3].reverse().join(\",\")";
  check "reverse in place" "3,2,1" "(function(){var a=[1,2,3];a.reverse();return a.join(\",\");})()";
  check "tan(0)" "0" "Math.tan(0)";
  check "asin(1)" "true" "Math.abs(Math.asin(1) - Math.PI/2) < 1e-9";
  check "acos(1)" "0" "Math.acos(1)";
  check "log2(8)" "3" "Math.log2(8)"

let extra_suite =
  [ ("builtins-extra", [ Alcotest.test_case "extras" `Quick test_extra_builtins ]) ]

let suite = base_suite @ prop_suite @ extra_suite
