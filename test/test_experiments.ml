(* Tests for the measurement harness: the PC-sample attribution window
   heuristic (paper Section III-A), calibration, and the baseline
   tier. *)

let mk_code ?(arch = Arch.Arm64) insns =
  let deopts =
    [| { Code.dp_id = 0; reason = Insn.Out_of_bounds; bc_pc = 0; frame = [||];
         accumulator = Code.Fv_dead } |]
  in
  Code.assemble ~code_id:0 ~name:"t" ~arch ~deopts ~gp_slots:4 ~fp_slots:0
    ~base_addr:0 insns

let test_window_attribution_arm64 () =
  (* ldr; cmp; b.hs deopt: ARM64 window = 2 -> all three attributed. *)
  let prov = Insn.Check { group = Insn.G_boundary; role = Insn.Role_condition } in
  let code =
    mk_code
      [ Insn.make (Insn.Mov (0, Insn.Imm 1));
        Insn.make ~prov (Insn.Ldr (1, Insn.mk_addr 0));
        Insn.make ~prov (Insn.Cmp (0, Insn.Reg 1));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Hs, 0));
        Insn.make Insn.Ret ]
  in
  let samples = [| 10; 10; 10; 10; 10 |] in
  let window = Array.make 6 0 and truth = Array.make 6 0 in
  let total = Experiments.Harness.attribute_code ~code ~samples
      ~window_acc:window ~truth_acc:truth in
  Alcotest.(check int) "total" 50 total;
  let gi = Insn.group_index Insn.G_boundary in
  Alcotest.(check int) "window covers branch + 2 before" 30 window.(gi);
  Alcotest.(check int) "truth covers the 3 tagged insns" 30 truth.(gi);
  (* The mov before the window is main line in both estimates. *)
  Alcotest.(check int) "other groups empty" 0
    (Array.fold_left ( + ) 0 window - window.(gi))

let test_window_attribution_x64 () =
  (* X64 window = 1: only cmp + branch are attributed by the window. *)
  let code =
    mk_code ~arch:Arch.X64
      [ Insn.make (Insn.Mov (0, Insn.Imm 1));
        Insn.make (Insn.Mov (1, Insn.Imm 2));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_condition })
          (Insn.Cmp_mem (0, Insn.mk_addr ~offset:1 1));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Hs, 0));
        Insn.make Insn.Ret ]
  in
  let samples = [| 5; 5; 5; 5; 5 |] in
  let window = Array.make 6 0 and truth = Array.make 6 0 in
  ignore
    (Experiments.Harness.attribute_code ~code ~samples ~window_acc:window
       ~truth_acc:truth);
  let gi = Insn.group_index Insn.G_boundary in
  Alcotest.(check int) "x64 window = branch + 1" 10 window.(gi)

let test_window_skips_pseudos () =
  (* Labels between condition and branch do not consume window slots. *)
  let prov = Insn.Check { group = Insn.G_not_smi; role = Insn.Role_condition } in
  let code =
    mk_code
      [ Insn.make ~prov (Insn.Ldr (1, Insn.mk_addr 0));
        Insn.make (Insn.Label 0);
        Insn.make ~prov (Insn.Tst (1, Insn.Imm 1));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_not_smi; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Ne, 0));
        Insn.make Insn.Ret ]
  in
  let samples = [| 7; 7; 7; 7; 7 |] in
  let window = Array.make 6 0 and truth = Array.make 6 0 in
  ignore
    (Experiments.Harness.attribute_code ~code ~samples ~window_acc:window
       ~truth_acc:truth);
  (* The window group comes from the deopt table's reason (boundary in
     this fixture); the provenance tags feed only the truth buckets. *)
  let gi = Insn.group_index Insn.G_boundary in
  Alcotest.(check int) "window spans over the label" 21 window.(gi);
  Alcotest.(check int) "truth uses provenance" 21
    truth.(Insn.group_index Insn.G_not_smi)

let test_window_near_code_start () =
  (* A deopt branch within the first [w] instructions: the backward walk
     hits the start of the code object and must stop cleanly. *)
  let code =
    mk_code
      [ Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Hs, 0));
        Insn.make Insn.Ret ]
  in
  let wm = Experiments.Harness.check_window_map code in
  let gi = Insn.group_index Insn.G_boundary in
  Alcotest.(check (array int)) "branch at index 0 maps alone" [| gi; -1 |] wm;
  (* One predecessor available, window wants two (ARM64). *)
  let code2 =
    mk_code
      [ Insn.make (Insn.Cmp (0, Insn.Imm 1));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Hs, 0));
        Insn.make Insn.Ret ]
  in
  let wm2 = Experiments.Harness.check_window_map code2 in
  Alcotest.(check (array int)) "partial window near start" [| gi; gi; -1 |] wm2

let test_window_pseudo_dense_prefix () =
  (* Pseudo instructions between the check and its predecessors do not
     consume window slots: the window reaches across them to the [w]
     nearest real instructions. *)
  let code =
    mk_code
      [ Insn.make (Insn.Mov (0, Insn.Imm 1));
        Insn.make (Insn.Label 0);
        Insn.make (Insn.Label 1);
        Insn.make (Insn.Cmp (0, Insn.Imm 2));
        Insn.make (Insn.Label 2);
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Hs, 0));
        Insn.make Insn.Ret ]
  in
  let wm = Experiments.Harness.check_window_map code in
  let gi = Insn.group_index Insn.G_boundary in
  Alcotest.(check (array int)) "window crosses pseudo-dense prefix"
    [| gi; -1; -1; gi; -1; gi; -1 |]
    wm

let test_window_overlapping_checks () =
  (* Two adjacent checks with overlapping windows: instructions already
     claimed by the earlier check keep its group (first-marked wins),
     but claimed slots still consume the later window's budget. *)
  let deopts =
    [| { Code.dp_id = 0; reason = Insn.Out_of_bounds; bc_pc = 0; frame = [||];
         accumulator = Code.Fv_dead };
       { Code.dp_id = 1; reason = Insn.Not_a_smi; bc_pc = 0; frame = [||];
         accumulator = Code.Fv_dead } |]
  in
  let code =
    Code.assemble ~code_id:0 ~name:"t" ~arch:Arch.Arm64 ~deopts ~gp_slots:4
      ~fp_slots:0 ~base_addr:0
      [ Insn.make (Insn.Mov (0, Insn.Imm 1));
        Insn.make (Insn.Cmp (0, Insn.Imm 2));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_boundary; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Hs, 0));
        Insn.make (Insn.Tst (0, Insn.Imm 1));
        Insn.make
          ~prov:(Insn.Check { group = Insn.G_not_smi; role = Insn.Role_branch })
          (Insn.Deopt_if (Insn.Ne, 1));
        Insn.make Insn.Ret ]
  in
  let wm = Experiments.Harness.check_window_map code in
  let b = Insn.group_index Insn.G_boundary in
  let s = Insn.group_index Insn.G_not_smi in
  (* The second window (w=2) reaches the first branch but cannot steal
     it; the slot still uses up one of its two window entries. *)
  Alcotest.(check (array int)) "overlap resolves to earlier check"
    [| b; b; b; s; s; -1 |]
    wm

let test_harness_run_basic () =
  let b = Option.get (Workloads.Suite.by_id "DP") in
  let config = Engine.default_config ~arch:Arch.Arm64 () in
  let r = Experiments.Harness.run ~iterations:20 ~config b in
  Alcotest.(check (option string)) "no error" None r.Experiments.Harness.error;
  Alcotest.(check bool) "cycles recorded" true
    (Array.for_all (fun c -> c > 0.0) r.Experiments.Harness.iter_cycles);
  Alcotest.(check bool) "jit samples seen" true (r.Experiments.Harness.jit_samples > 0);
  Alcotest.(check bool) "overhead in [0,1]" true
    (let o = Experiments.Harness.overhead_window r in
     o >= 0.0 && o <= 1.0);
  Alcotest.(check bool) "truth <= 1" true
    (Experiments.Harness.overhead_truth r <= 1.0)

let test_calibration_finds_fired_groups () =
  (* A benchmark that always deopts on overflow during warmup. *)
  let src =
    {|
var phase = 0;
function f(x) { return x + x; }
function bench() {
  var s = 0;
  for (var i = 0; i < 20; i++) s = (s + f(i)) % 100003;
  phase = phase + 1;
  if (phase == 8) s = s + f(900000000) % 7;
  return s % 100003;
}
|}
  in
  let b =
    { Workloads.Suite.id = "synthetic"; category = Workloads.Suite.Math;
      description = "overflowing"; source = src }
  in
  let config = Engine.default_config ~arch:Arch.Arm64 () in
  let removable, fired =
    Experiments.Harness.calibrate_removable ~iterations:30 ~config b
  in
  Alcotest.(check bool) "arithmetic group fired" true
    (List.mem Insn.G_arith fired);
  Alcotest.(check bool) "arith not removable" false
    (List.mem Insn.G_arith removable)

let test_baseline_tier () =
  let src =
    (Option.get (Workloads.Suite.by_id "HASH")).Workloads.Suite.source
  in
  let cfg =
    { (Engine.default_config ~arch:Arch.Arm64 ()) with
      Engine.enable_optimizer = false;
      enable_baseline = true }
  in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  let h = (Engine.runtime eng).Runtime.heap in
  let v = ref 0 in
  for _ = 1 to 8 do
    v := Engine.call_global eng "bench" [||]
  done;
  (* Correctness vs the interpreter. *)
  let cfg2 = { cfg with Engine.enable_baseline = false } in
  let eng2 = Engine.create cfg2 src in
  let _ = Engine.run_main eng2 in
  let v2 = ref 0 in
  for _ = 1 to 8 do
    v2 := Engine.call_global eng2 "bench" [||]
  done;
  Alcotest.(check bool) "baseline result matches interpreter" true
    (Heap.number_value h !v
    = Heap.number_value (Engine.runtime eng2).Runtime.heap !v2);
  (* Structure: baseline code exists, has no checks, never deopts. *)
  let fid =
    Heap.function_id_of h (Heap.cell_value h (Heap.global_cell h "djb2"))
  in
  Alcotest.(check bool) "tier recorded" true
    (Engine.tier_of_fid eng fid = Some `Baseline);
  (match Engine.code_of_fid eng fid with
  | Some code ->
    Alcotest.(check int) "no checks in baseline code" 0
      (Code.static_check_instructions code);
    Alcotest.(check int) "no deopt points" 0 (Array.length code.Code.deopts)
  | None -> Alcotest.fail "baseline code missing");
  Alcotest.(check (list (pair bool int))) "no deopt events" []
    (List.map (fun (_, n) -> (true, n)) (Engine.deopt_counts eng))

let test_baseline_then_optimize () =
  let src = (Option.get (Workloads.Suite.by_id "DP")).Workloads.Suite.source in
  let cfg =
    { (Engine.default_config ~arch:Arch.Arm64 ()) with
      Engine.enable_baseline = true }
  in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  for _ = 1 to 12 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let h = (Engine.runtime eng).Runtime.heap in
  let fid =
    Heap.function_id_of h (Heap.cell_value h (Heap.global_cell h "dot"))
  in
  Alcotest.(check bool) "tiered up to the optimizer" true
    (Engine.tier_of_fid eng fid = Some `Optimized)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "window attribution (arm64)" `Quick test_window_attribution_arm64;
        Alcotest.test_case "window attribution (x64)" `Quick test_window_attribution_x64;
        Alcotest.test_case "window skips pseudos" `Quick test_window_skips_pseudos;
        Alcotest.test_case "window near code start" `Quick test_window_near_code_start;
        Alcotest.test_case "pseudo-dense prefix" `Quick test_window_pseudo_dense_prefix;
        Alcotest.test_case "overlapping windows" `Quick test_window_overlapping_checks;
        Alcotest.test_case "run basics" `Quick test_harness_run_basic;
        Alcotest.test_case "calibration" `Quick test_calibration_finds_fired_groups;
      ] );
    ( "baseline-tier",
      [
        Alcotest.test_case "correct + checkless" `Quick test_baseline_tier;
        Alcotest.test_case "tiers up" `Quick test_baseline_then_optimize;
      ] );
  ]
