(* Unit and property tests for the tagged-value model and the heap:
   SMI tagging, object layouts, hidden-class transitions, elements-kind
   transitions, and the mark-sweep collector. *)

let mk () = Heap.create ~size_words:(1 lsl 18) ()

(* ---------------- Value tagging ---------------- *)

let test_smi_roundtrip () =
  List.iter
    (fun v ->
      let t = Value.smi v in
      Alcotest.(check bool) "is smi" true (Value.is_smi t);
      Alcotest.(check int) "roundtrip" v (Value.smi_value t))
    [ 0; 1; -1; 42; Value.smi_min; Value.smi_max ]

let test_smi_out_of_range () =
  Alcotest.check_raises "too big"
    (Invalid_argument (Printf.sprintf "Value.smi: %d out of range" (Value.smi_max + 1)))
    (fun () -> ignore (Value.smi (Value.smi_max + 1)))

let test_pointer_tagging () =
  let p = Value.pointer 123 in
  Alcotest.(check bool) "is pointer" true (Value.is_pointer p);
  Alcotest.(check bool) "not smi" false (Value.is_smi p);
  Alcotest.(check int) "index" 123 (Value.pointer_index p)

let prop_smi_roundtrip =
  QCheck.Test.make ~name:"value: smi roundtrip" ~count:1000
    QCheck.(int_range Value.smi_min Value.smi_max)
    (fun v -> Value.smi_value (Value.smi v) = v)

let prop_smi_pointer_disjoint =
  QCheck.Test.make ~name:"value: smi and pointer tags disjoint" ~count:1000
    QCheck.(pair (int_range Value.smi_min Value.smi_max) (int_range 0 1_000_000))
    (fun (v, idx) -> Value.smi v <> Value.pointer idx)

(* ---------------- Numbers ---------------- *)

let test_heap_number_roundtrip () =
  let h = mk () in
  List.iter
    (fun f ->
      let p = Heap.alloc_heap_number h f in
      let f' = Heap.heap_number_value h p in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %.17g" f)
        true
        (Int64.bits_of_float f = Int64.bits_of_float f'))
    [ 0.0; -0.0; 1.5; -3.25; Float.pi; 1e300; -1e-300; Float.nan;
      Float.infinity; Float.neg_infinity ]

let test_number_smi_or_boxed () =
  let h = mk () in
  Alcotest.(check bool) "integral small -> smi" true (Value.is_smi (Heap.number h 7.0));
  Alcotest.(check bool) "fractional -> boxed" true
    (Value.is_pointer (Heap.number h 7.5));
  Alcotest.(check bool) "large -> boxed" true
    (Value.is_pointer (Heap.number h 2e9));
  Alcotest.(check bool) "-0 -> boxed" true
    (Value.is_pointer (Heap.number h (-0.0)))

let prop_heap_number_roundtrip =
  QCheck.Test.make ~name:"heap: double roundtrip bits" ~count:500 QCheck.float
    (fun f ->
      let h = mk () in
      let p = Heap.alloc_heap_number h f in
      Int64.bits_of_float (Heap.heap_number_value h p) = Int64.bits_of_float f)

(* ---------------- Strings ---------------- *)

let test_string_roundtrip () =
  let h = mk () in
  List.iter
    (fun s ->
      let p = Heap.alloc_string h s in
      Alcotest.(check string) "roundtrip" s (Heap.string_value h p);
      Alcotest.(check int) "length" (String.length s) (Heap.string_length h p))
    [ ""; "a"; "hello world"; String.make 300 'x' ]

let test_intern_identity () =
  let h = mk () in
  let a = Heap.intern h "foo" and b = Heap.intern h "foo" in
  Alcotest.(check int) "interned strings share" a b;
  let c = Heap.alloc_string h "foo" in
  Alcotest.(check bool) "alloc_string is fresh" true (a <> c)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"heap: string roundtrip" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
      (* Chars are stored as 8-bit codes. *)
      let h = mk () in
      Heap.string_value h (Heap.alloc_string h s) = s)

(* ---------------- Objects and maps ---------------- *)

let test_object_properties () =
  let h = mk () in
  let o = Heap.alloc_empty_object h in
  Alcotest.(check (option int)) "missing" None (Heap.get_property h o "x");
  Heap.set_property h o "x" (Value.smi 1);
  Heap.set_property h o "y" (Value.smi 2);
  Alcotest.(check (option int)) "x" (Some (Value.smi 1)) (Heap.get_property h o "x");
  Alcotest.(check (option int)) "y" (Some (Value.smi 2)) (Heap.get_property h o "y");
  Heap.set_property h o "x" (Value.smi 9);
  Alcotest.(check (option int)) "x updated" (Some (Value.smi 9))
    (Heap.get_property h o "x")

let test_map_transitions_shared () =
  let h = mk () in
  let o1 = Heap.alloc_empty_object h in
  let o2 = Heap.alloc_empty_object h in
  Heap.set_property h o1 "a" (Value.smi 1);
  Heap.set_property h o2 "a" (Value.smi 2);
  (* Same shape -> same hidden class (paper Section II-B: maps). *)
  Alcotest.(check int) "same map" (Heap.map_of h o1).Heap.map_id
    (Heap.map_of h o2).Heap.map_id;
  Heap.set_property h o2 "b" (Value.smi 3);
  Alcotest.(check bool) "shape diverges" true
    ((Heap.map_of h o1).Heap.map_id <> (Heap.map_of h o2).Heap.map_id)

let test_many_properties_out_of_line () =
  let h = mk () in
  let o = Heap.alloc_empty_object h in
  for i = 0 to 19 do
    Heap.set_property h o (Printf.sprintf "p%d" i) (Value.smi i)
  done;
  for i = 0 to 19 do
    Alcotest.(check (option int))
      (Printf.sprintf "p%d" i)
      (Some (Value.smi i))
      (Heap.get_property h o (Printf.sprintf "p%d" i))
  done

let test_prototype_chain () =
  let h = mk () in
  let proto = Heap.alloc_empty_object h in
  Heap.set_property h proto "shared" (Value.smi 7);
  let map_id = Heap.new_object_map h ~prototype:proto in
  let o = Heap.alloc_object h ~map_id in
  Alcotest.(check (option int)) "inherited" (Some (Value.smi 7))
    (Heap.get_property h o "shared");
  Heap.set_property h o "shared" (Value.smi 8);
  Alcotest.(check (option int)) "own shadows proto" (Some (Value.smi 8))
    (Heap.get_property h o "shared");
  Alcotest.(check (option int)) "proto unchanged" (Some (Value.smi 7))
    (Heap.get_property h proto "shared")

(* ---------------- Arrays ---------------- *)

let test_array_basics () =
  let h = mk () in
  let a = Heap.alloc_array h Heap.Packed_smi ~capacity:2 in
  Alcotest.(check int) "empty" 0 (Heap.array_length h a);
  Heap.array_push h a (Value.smi 10);
  Heap.array_push h a (Value.smi 20);
  Heap.array_push h a (Value.smi 30);
  Alcotest.(check int) "length" 3 (Heap.array_length h a);
  Alcotest.(check int) "get 1" (Value.smi 20) (Heap.array_get h a 1);
  Alcotest.(check int) "pop" (Value.smi 30) (Heap.array_pop h a);
  Alcotest.(check int) "length after pop" 2 (Heap.array_length h a)

let kind =
  Alcotest.testable
    (fun fmt k ->
      Format.pp_print_string fmt
        (match k with
        | Heap.Packed_smi -> "smi"
        | Heap.Packed_double -> "double"
        | Heap.Packed_tagged -> "tagged"))
    ( = )

let test_elements_kind_transitions () =
  let h = mk () in
  let a = Heap.alloc_array h Heap.Packed_smi ~capacity:4 in
  Heap.array_push h a (Value.smi 1);
  Alcotest.(check kind) "starts smi" Heap.Packed_smi (Heap.array_elements_kind h a);
  (* Storing a double transitions SMI -> DOUBLE. *)
  Heap.array_push h a (Heap.alloc_heap_number h 1.5);
  Alcotest.(check kind) "to double" Heap.Packed_double (Heap.array_elements_kind h a);
  Alcotest.(check bool) "old smi readable" true
    (Heap.number_value h (Heap.array_get h a 0) = 1.0);
  Alcotest.(check bool) "double readable" true
    (Heap.number_value h (Heap.array_get h a 1) = 1.5);
  (* Storing a string transitions DOUBLE -> TAGGED. *)
  Heap.array_push h a (Heap.alloc_string h "s");
  Alcotest.(check kind) "to tagged" Heap.Packed_tagged (Heap.array_elements_kind h a);
  Alcotest.(check bool) "all preserved" true
    (Heap.number_value h (Heap.array_get h a 0) = 1.0
    && Heap.number_value h (Heap.array_get h a 1) = 1.5
    && Heap.string_value h (Heap.array_get h a 2) = "s")

let test_array_growth () =
  let h = mk () in
  let a = Heap.alloc_array h Heap.Packed_smi ~capacity:1 in
  for i = 0 to 199 do
    Heap.array_push h a (Value.smi i)
  done;
  let ok = ref true in
  for i = 0 to 199 do
    if Heap.array_get h a i <> Value.smi i then ok := false
  done;
  Alcotest.(check bool) "200 pushes preserved" true !ok

let test_array_oob_read () =
  let h = mk () in
  let a = Heap.alloc_array h Heap.Packed_smi ~capacity:2 in
  Heap.array_push h a (Value.smi 1);
  Alcotest.(check int) "oob read is undefined" (Heap.undefined h)
    (Heap.array_get h a 5)

let prop_array_pushes =
  QCheck.Test.make ~name:"heap: array pushes readable" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range (-1000) 1000))
    (fun xs ->
      let h = mk () in
      let a = Heap.alloc_array h Heap.Packed_smi ~capacity:2 in
      List.iter (fun v -> Heap.array_push h a (Value.smi v)) xs;
      List.for_all2
        (fun i v -> Heap.array_get h a i = Value.smi v)
        (List.init (List.length xs) Fun.id)
        xs)

(* ---------------- Contexts and cells ---------------- *)

let test_contexts () =
  let h = mk () in
  let parent = Heap.alloc_context h ~parent:(Heap.undefined h) ~slots:2 in
  let child = Heap.alloc_context h ~parent ~slots:1 in
  Heap.context_set h parent 0 (Value.smi 5);
  Heap.context_set h child 0 (Value.smi 9);
  Alcotest.(check int) "parent link" parent (Heap.context_parent h child);
  Alcotest.(check int) "parent slot" (Value.smi 5) (Heap.context_get h parent 0);
  Alcotest.(check int) "child slot" (Value.smi 9) (Heap.context_get h child 0)

let test_global_cells () =
  let h = mk () in
  let c = Heap.global_cell h "g" in
  Alcotest.(check int) "initially undefined" (Heap.undefined h) (Heap.cell_value h c);
  Heap.set_cell_value h c (Value.smi 3);
  Alcotest.(check int) "stable cell" c (Heap.global_cell h "g");
  Alcotest.(check int) "value" (Value.smi 3) (Heap.cell_value h c)

(* ---------------- GC ---------------- *)

let test_gc_preserves_roots () =
  let h = mk () in
  let kept = ref [] in
  Heap.add_root_provider h (fun () -> !kept);
  let a = Heap.alloc_array h Heap.Packed_tagged ~capacity:4 in
  Heap.array_push h a (Heap.alloc_string h "live");
  Heap.array_push h a (Heap.alloc_heap_number h 2.5);
  let o = Heap.alloc_empty_object h in
  Heap.set_property h o "arr" a;
  kept := [ o ];
  (* Garbage. *)
  for _ = 1 to 1000 do
    ignore (Heap.alloc_string h "garbage garbage garbage")
  done;
  let before = Heap.words_in_use h in
  Heap.gc h;
  let after = Heap.words_in_use h in
  Alcotest.(check bool) "collected something" true (after < before);
  (* Live graph intact. *)
  let a' = Option.get (Heap.get_property h o "arr") in
  Alcotest.(check int) "array ptr stable (non-moving)" a a';
  Alcotest.(check string) "string survives" "live"
    (Heap.string_value h (Heap.array_get h a' 0));
  Alcotest.(check bool) "double survives" true
    (Heap.number_value h (Heap.array_get h a' 1) = 2.5)

let test_gc_reuses_space () =
  let h = mk () in
  Heap.gc h;
  let baseline = Heap.words_in_use h in
  for _ = 1 to 50 do
    for _ = 1 to 100 do
      ignore (Heap.alloc_heap_number h 1.0)
    done;
    Heap.gc h
  done;
  Alcotest.(check bool) "no unbounded growth" true
    (Heap.words_in_use h < baseline + 4096)

let test_gc_on_full_hook () =
  let h = Heap.create ~size_words:4096 () in
  let collected = ref 0 in
  Heap.set_on_full h (fun () ->
      incr collected;
      Heap.gc h;
      true);
  (* Far more garbage than the heap holds: must trigger the hook. *)
  for _ = 1 to 5000 do
    ignore (Heap.alloc_heap_number h 3.0)
  done;
  Alcotest.(check bool) "on_full ran" true (!collected > 0)

let test_object_sizes () =
  let h = mk () in
  Alcotest.(check int) "heap number" 3
    (Heap.object_size h (Heap.alloc_heap_number h 1.0));
  Alcotest.(check int) "string" (3 + 5)
    (Heap.object_size h (Heap.alloc_string h "hello"));
  Alcotest.(check int) "function" 4
    (Heap.object_size h
       (Heap.alloc_function h ~function_id:0 ~context:(Heap.undefined h)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "value",
      [
        Alcotest.test_case "smi roundtrip" `Quick test_smi_roundtrip;
        Alcotest.test_case "smi out of range" `Quick test_smi_out_of_range;
        Alcotest.test_case "pointer tagging" `Quick test_pointer_tagging;
        q prop_smi_roundtrip;
        q prop_smi_pointer_disjoint;
      ] );
    ( "heap-numbers",
      [
        Alcotest.test_case "roundtrip" `Quick test_heap_number_roundtrip;
        Alcotest.test_case "smi or boxed" `Quick test_number_smi_or_boxed;
        q prop_heap_number_roundtrip;
      ] );
    ( "heap-strings",
      [
        Alcotest.test_case "roundtrip" `Quick test_string_roundtrip;
        Alcotest.test_case "interning" `Quick test_intern_identity;
        q prop_string_roundtrip;
      ] );
    ( "heap-objects",
      [
        Alcotest.test_case "properties" `Quick test_object_properties;
        Alcotest.test_case "map transitions shared" `Quick test_map_transitions_shared;
        Alcotest.test_case "out-of-line properties" `Quick test_many_properties_out_of_line;
        Alcotest.test_case "prototype chain" `Quick test_prototype_chain;
      ] );
    ( "heap-arrays",
      [
        Alcotest.test_case "basics" `Quick test_array_basics;
        Alcotest.test_case "elements-kind transitions" `Quick test_elements_kind_transitions;
        Alcotest.test_case "growth" `Quick test_array_growth;
        Alcotest.test_case "oob read" `Quick test_array_oob_read;
        q prop_array_pushes;
      ] );
    ( "heap-misc",
      [
        Alcotest.test_case "contexts" `Quick test_contexts;
        Alcotest.test_case "global cells" `Quick test_global_cells;
        Alcotest.test_case "object sizes" `Quick test_object_sizes;
      ] );
    ( "gc",
      [
        Alcotest.test_case "preserves live graph" `Quick test_gc_preserves_roots;
        Alcotest.test_case "reuses space" `Quick test_gc_reuses_space;
        Alcotest.test_case "on_full hook" `Quick test_gc_on_full_hook;
      ] );
  ]
