(* Bit-identity of the pre-decoded threaded-code engine against the
   direct interpreter: whole harness results (checksums, cycle counts,
   every counter, PC-sample attributions) must digest equal for the
   fig7-style cell axes — both ISAs, the SMI extension, check removal,
   and a benchmark that actually deoptimizes. *)

(* The on-disk cache must not serve one engine's results to the other. *)
let () = Unix.putenv "VSPEC_CACHE_DIR" "off"

let iters = 25

let digest (r : Experiments.Harness.result) =
  Digest.to_hex (Digest.string (Marshal.to_string r []))

(* Always deopts once mid-run: iteration 8 overflows an int32 add. *)
let deopting_bench =
  {
    Workloads.Suite.id = "synthetic-overflow";
    category = Workloads.Suite.Math;
    description = "deopts on arithmetic overflow mid-run";
    source =
      {|
var phase = 0;
function f(x) { return x + x; }
function bench() {
  var s = 0;
  for (var i = 0; i < 20; i++) s = (s + f(i)) % 100003;
  phase = phase + 1;
  if (phase == 8) s = s + f(900000000) % 7;
  return s % 100003;
}
|};
  }

let run_with ?fuse ?batch engine ~arch ~seed variant b =
  Exec.set_engine (Some engine);
  Decode.set_fuse fuse;
  Decode.set_batch batch;
  Fun.protect
    ~finally:(fun () ->
      Exec.set_engine None;
      Decode.set_fuse None;
      Decode.set_batch None)
    (fun () ->
      let config = Experiments.Common.config_for ~arch ~seed variant in
      Experiments.Harness.run ~iterations:iters ~config b)

(* Every decoded-engine configuration — fused+batched (the default),
   fusion only, batching only, and both escape hatches engaged — must
   digest-equal the direct interpreter. *)
let decoded_configs =
  [
    ("decoded", true, true);
    ("decoded-nofuse", false, true);
    ("decoded-nobatch", true, false);
    ("decoded-plain", false, false);
  ]

let check_cell ?(expect_deopts = false) ~arch ~seed variant b =
  let label =
    Printf.sprintf "%s@%s/%s" b.Workloads.Suite.id (Arch.name arch)
      (Experiments.Common.variant_name variant)
  in
  let direct = run_with Exec.Direct ~arch ~seed variant b in
  List.iter
    (fun (cname, fuse, batch) ->
      let decoded =
        run_with ~fuse ~batch Exec.Decoded ~arch ~seed variant b
      in
      Alcotest.(check string)
        (Printf.sprintf "%s: direct and %s results digest-equal" label cname)
        (digest direct) (digest decoded);
      Alcotest.(check (option string))
        (Printf.sprintf "%s: no error (%s)" label cname)
        None decoded.Experiments.Harness.error;
      if expect_deopts then
        Alcotest.(check bool)
          (Printf.sprintf "%s: benchmark deopted (%s)" label cname)
          true
          (decoded.Experiments.Harness.counters.Perf.deopt_events > 0))
    decoded_configs

let bench id = Option.get (Workloads.Suite.by_id id)

let test_normal_cells () =
  List.iter
    (fun arch ->
      List.iter
        (fun id ->
          check_cell ~arch ~seed:1 Experiments.Common.V_normal (bench id))
        [ "DP"; "HASH" ])
    [ Arch.X64; Arch.Arm64 ]

let test_deopting_cells () =
  List.iter
    (fun arch ->
      check_cell ~expect_deopts:true ~arch ~seed:1 Experiments.Common.V_normal
        deopting_bench)
    [ Arch.X64; Arch.Arm64 ]

let test_removal_cells () =
  (* The fig7 removal leg: checks of a group disabled at codegen. *)
  List.iter
    (fun arch ->
      check_cell ~arch ~seed:2
        (Experiments.Common.V_no_checks [ Insn.G_boundary ])
        (bench "DP"))
    [ Arch.X64; Arch.Arm64 ]

let test_smi_ext_cell () =
  (* Arm64_smi_ext exercises the fused [jsldrsmi] micro-op. *)
  check_cell ~arch:Arch.Arm64 ~seed:1 Experiments.Common.V_smi_ext
    (bench "SPMV-CSR-SMI");
  check_cell ~expect_deopts:true ~arch:Arch.Arm64 ~seed:1
    Experiments.Common.V_smi_ext deopting_bench

let test_injection_transparent () =
  (* Transient fault injection at a fixed seed, absorbed by retries,
     must leave results bit-identical to a clean run: the injector
     lives entirely outside the simulated machine. *)
  let digest_of () =
    Experiments.Common.clear_memo ();
    digest
      (Experiments.Common.run_cached ~iterations:10 ~arch:Arch.Arm64 ~seed:1
         Experiments.Common.V_normal (bench "DP"))
  in
  let clean = digest_of () in
  Support.Fault.Inject.set_spec
    "sim:0.5:11,worker:0.5:11,cache-read:0.7:11,cache-write:0.7:11";
  Unix.putenv "VSPEC_RETRIES" "8";
  Fun.protect
    ~finally:(fun () ->
      Support.Fault.Inject.set_spec "";
      Unix.putenv "VSPEC_RETRIES" "";
      Experiments.Common.clear_memo ();
      Support.Fault.Ledger.clear ())
    (fun () ->
      Alcotest.(check string) "injected run digests equal to clean run" clean
        (digest_of ()))

let suite =
  [
    ( "exec-determinism",
      [
        Alcotest.test_case "normal cells (X64 + ARM64)" `Quick
          test_normal_cells;
        Alcotest.test_case "deopting benchmark" `Quick test_deopting_cells;
        Alcotest.test_case "check-removal variant" `Quick test_removal_cells;
        Alcotest.test_case "smi-ext variant" `Quick test_smi_ext_cell;
        Alcotest.test_case "fault injection is transparent" `Quick
          test_injection_transparent;
      ] );
  ]
