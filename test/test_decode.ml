(* Decode-cache and fusion-pass coverage: flag-keyed cache behavior
   (hits, recompiles on escape-hatch toggles, invalidation through
   fresh code objects), exact static pairing on a known snippet that
   exercises all four fuse kinds, dynamic fusion/batching counters,
   and a golden-model test of the branch predictor's hot path. *)

let () = Unix.putenv "VSPEC_CACHE_DIR" "off"

let with_flags ?fuse ?batch f =
  Decode.set_fuse fuse;
  Decode.set_batch batch;
  Fun.protect
    ~finally:(fun () ->
      Decode.set_fuse None;
      Decode.set_batch None)
    f

(* A 15-instruction snippet (one i-cache line at base 0x100) whose loop
   body contains exactly one statically fusible pair of each kind:

     mov r0, #0            ; uop 0   singleton
     mov r1, #16           ; uop 1   singleton
     mov r5, #2            ; uop 2   singleton (even: Tst.Ne never fires)
   L0:
     tst r5, #1            ; uop 3 \  check_deopt pair
     deopt_if ne, dp0      ; uop 4 /
     ldr r2, [r1]          ; uop 5 \  load_untag pair
     asr r2, r2, #1        ; uop 6 /
     add r3, r0, #5        ; uop 7 \  alu_alu pair (disjoint regs)
     eor r4, r1, #9        ; uop 8 /
     add r0, r0, #1        ; uop 9   singleton (next uop is a Cmp)
     cmp r0, #4            ; uop 10 \  cmp_bcond pair
     b.lt L0               ; uop 11 /
     mov r0, r3            ; uop 12  singleton
     ret                   ; uop 13  singleton

   Leaders are uops {0, 3, 12} (entry, loop target, Bcond successor),
   so batching yields 3 accounting blocks; 14 uops - 4 pairs = 10
   dispatch slots.  The loop runs 4 iterations and returns r3 = 8. *)
let snippet () =
  let i k = Insn.make k in
  let alu ~op ~dst ~src rhs =
    i (Insn.Alu { op; dst; src; rhs; set_flags = false })
  in
  let cprov role = Insn.Check { group = Insn.G_not_smi; role } in
  let deopts =
    [| { Code.dp_id = 0; reason = Insn.Not_a_smi; bc_pc = 0; frame = [||];
         accumulator = Code.Fv_dead } |]
  in
  Code.assemble ~code_id:0 ~name:"fusemix" ~arch:Arch.Arm64 ~deopts
    ~gp_slots:8 ~fp_slots:4 ~base_addr:0x100
    [ i (Insn.Mov (0, Insn.Imm 0));
      i (Insn.Mov (1, Insn.Imm 16));
      i (Insn.Mov (5, Insn.Imm 2));
      i (Insn.Label 0);
      Insn.make ~prov:(cprov Insn.Role_condition) (Insn.Tst (5, Insn.Imm 1));
      Insn.make ~prov:(cprov Insn.Role_branch) (Insn.Deopt_if (Insn.Ne, 0));
      i (Insn.Ldr (2, Insn.mk_addr 1));
      alu ~op:Insn.Asr ~dst:2 ~src:2 (Insn.Imm 1);
      alu ~op:Insn.Add ~dst:3 ~src:0 (Insn.Imm 5);
      alu ~op:Insn.Eor ~dst:4 ~src:1 (Insn.Imm 9);
      alu ~op:Insn.Add ~dst:0 ~src:0 (Insn.Imm 1);
      i (Insn.Cmp (0, Insn.Imm 4));
      i (Insn.Bcond (Insn.Lt, 0));
      i (Insn.Mov (0, Insn.Reg 3));
      i Insn.Ret ]

let null_host () =
  { Exec.memory = Array.make 64 0;
    call_builtin = (fun _ _ -> 0);
    call_js = (fun _ _ -> 0) }

let test_static_pairing () =
  with_flags ~fuse:true ~batch:true (fun () ->
      let st = Decode.stats (Decode.compile (snippet ())) in
      Alcotest.(check int) "micro-ops" 14 st.Decode.st_uops;
      Alcotest.(check int) "slots = uops - pairs" 10 st.Decode.st_slots;
      Alcotest.(check int) "accounting blocks" 3 st.Decode.st_blocks;
      Alcotest.(check (array int)) "one static pair of each kind"
        [| 1; 1; 1; 1 |] st.Decode.st_fused);
  with_flags ~fuse:true ~batch:false (fun () ->
      let st = Decode.stats (Decode.compile (snippet ())) in
      Alcotest.(check int) "batch off: one block per slot" 10
        st.Decode.st_blocks);
  with_flags ~fuse:false ~batch:true (fun () ->
      let st = Decode.stats (Decode.compile (snippet ())) in
      Alcotest.(check int) "fuse off: one slot per uop" 14 st.Decode.st_slots;
      Alcotest.(check (array int)) "fuse off: no static pairs"
        [| 0; 0; 0; 0 |] st.Decode.st_fused;
      Alcotest.(check int) "fuse off: same blocks" 3 st.Decode.st_blocks)

let test_cache_hit_and_flag_recompile () =
  let code = snippet () in
  with_flags (fun () ->
      let p1 = Decode.get code in
      Alcotest.(check bool) "second get is a cache hit" true
        (p1 == Decode.get code);
      Decode.set_fuse (Some false);
      let p2 = Decode.get code in
      Alcotest.(check bool) "flag flip recompiles" true (p2 != p1);
      Alcotest.(check int) "recompiled without fusion" 14
        (Decode.stats p2).Decode.st_slots;
      Alcotest.(check bool) "new program is cached in turn" true
        (p2 == Decode.get code);
      Decode.set_fuse None;
      let p3 = Decode.get code in
      Alcotest.(check bool) "restoring flags recompiles again" true
        (p3 != p2);
      Alcotest.(check int) "fusion is back" 10 (Decode.stats p3).Decode.st_slots)

let test_fresh_code_invalidation () =
  (* Recompilation always builds a fresh [Code.t], so a stale program
     cannot be served; the fresh object re-runs the fusion pass from
     scratch and reaches the same static coverage. *)
  with_flags (fun () ->
      let c1 = snippet () in
      let p1 = Decode.get c1 in
      let c2 = snippet () in
      let p2 = Decode.get c2 in
      Alcotest.(check bool) "fresh code object, fresh program" true (p2 != p1);
      Alcotest.(check (array int)) "fusion re-ran on the fresh body"
        (Decode.stats p1).Decode.st_fused (Decode.stats p2).Decode.st_fused;
      Alcotest.(check int) "same slot count" (Decode.stats p1).Decode.st_slots
        (Decode.stats p2).Decode.st_slots)

let test_dynamic_coverage () =
  (* 4 loop iterations x 4 fused pairs = 16 pair executions (32 fused
     retired instructions); blocks charged: prologue + 4 loop bodies +
     epilogue = 6. *)
  with_flags ~fuse:true ~batch:true (fun () ->
      let cpu = Cpu.create Cpu.fast_arm64 in
      (match Decode.run cpu ~host:(null_host ()) ~code:(snippet ()) ~args:[||]
       with
      | Exec.Done v -> Alcotest.(check int) "fused semantics intact" 8 v
      | _ -> Alcotest.fail "expected Done");
      let fs = cpu.Cpu.fstats in
      Alcotest.(check int) "fused retired" 32 fs.Perf.fused_retired;
      Alcotest.(check (array int)) "pair executions by kind"
        [| 4; 4; 4; 4 |] fs.Perf.fused_by_kind;
      Alcotest.(check int) "batched block charges" 6 fs.Perf.batched_blocks);
  with_flags ~fuse:true ~batch:false (fun () ->
      let cpu = Cpu.create Cpu.fast_arm64 in
      ignore (Decode.run cpu ~host:(null_host ()) ~code:(snippet ()) ~args:[||]);
      Alcotest.(check int) "batch off: no batched charges" 0
        cpu.Cpu.fstats.Perf.batched_blocks;
      Alcotest.(check int) "batch off: fusion still live" 32
        cpu.Cpu.fstats.Perf.fused_retired)

(* ---------------- predictor hot path ---------------- *)

let test_predictor_golden () =
  (* Pin the optimized int-only gshare path against an independently
     written reference model over a deterministic pseudo-random
     (pc, taken) stream. *)
  let bits = 6 in
  let t = Predictor.create ~bits () in
  let size = 1 lsl bits in
  let mask = size - 1 in
  let tab = Array.make size 2 in
  let ghr = ref 0 in
  let reference ~pc ~taken =
    let idx = (pc lxor !ghr) land mask in
    let c = tab.(idx) in
    let hit = c >= 2 = taken in
    tab.(idx) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
    ghr := ((!ghr lsl 1) lor (if taken then 1 else 0)) land mask;
    hit
  in
  let state = ref 12345 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for step = 1 to 500 do
    let pc = next () land 1023 in
    let taken = next () land 3 <> 0 in
    Alcotest.(check bool)
      (Printf.sprintf "step %d (pc=%d taken=%b)" step pc taken)
      (reference ~pc ~taken)
      (Predictor.predict_and_update t ~pc ~taken)
  done

let test_predictor_converges () =
  (* Counters initialize weakly-taken, so an always-taken loop branch
     predicts correctly from the first execution — the property the
     paper leans on for rarely-taken check branches being near-free. *)
  let t = Predictor.create ~bits:10 () in
  let hits = ref 0 in
  for _ = 1 to 64 do
    if Predictor.predict_and_update t ~pc:0x40 ~taken:true then incr hits
  done;
  Alcotest.(check int) "always-taken branch never mispredicts" 64 !hits

let suite =
  [
    ( "decode",
      [
        Alcotest.test_case "static pairing on a known snippet" `Quick
          test_static_pairing;
        Alcotest.test_case "cache hit + flag-keyed recompile" `Quick
          test_cache_hit_and_flag_recompile;
        Alcotest.test_case "fresh code object invalidates" `Quick
          test_fresh_code_invalidation;
        Alcotest.test_case "dynamic fusion/batching counters" `Quick
          test_dynamic_coverage;
        Alcotest.test_case "predictor matches golden model" `Quick
          test_predictor_golden;
        Alcotest.test_case "predictor converges on taken loop" `Quick
          test_predictor_converges;
      ] );
  ]
