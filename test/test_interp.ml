(* Interpreter semantics tests: the result of evaluating small programs,
   feedback collection, builtins and runtime errors. *)

let eval_src src =
  let u = Bcompiler.compile ("var __r = (" ^ src ^ ");") in
  let rt = Runtime.create ~heap_size:(1 lsl 20) u in
  Builtins.install_globals rt;
  let _ = Interpreter.run_main rt in
  let h = rt.Runtime.heap in
  (rt, Heap.cell_value h (Heap.global_cell h "__r"))

let eval_str src =
  let rt, v = eval_src src in
  Conv.to_js_string rt.Runtime.heap v

let eval_prog src =
  (* Full program; result = value of global __r. *)
  let u = Bcompiler.compile src in
  let rt = Runtime.create ~heap_size:(1 lsl 20) u in
  Builtins.install_globals rt;
  let _ = Interpreter.run_main rt in
  rt

let prog_str src =
  let rt = eval_prog src in
  let h = rt.Runtime.heap in
  Conv.to_js_string h (Heap.cell_value h (Heap.global_cell h "__r"))

let check_eval name expected src =
  Alcotest.(check string) name expected (eval_str src)

let test_arithmetic () =
  check_eval "add" "5" "2 + 3";
  check_eval "precedence" "14" "2 + 3 * 4";
  check_eval "div" "2.5" "5 / 2";
  check_eval "exact div" "3" "6 / 2";
  check_eval "mod" "1" "7 % 2";
  check_eval "neg mod" "-1" "-7 % 2";
  check_eval "float" "0.75" "0.5 + 0.25";
  check_eval "neg" "-4" "-(2 + 2)";
  check_eval "nan" "NaN" "0 / 0";
  check_eval "infinity" "Infinity" "1 / 0"

let test_smi_overflow () =
  let rt, v = eval_src "1073741823 + 1" in
  Alcotest.(check string) "value" "1073741824" (Conv.to_js_string rt.Runtime.heap v);
  Alcotest.(check bool) "overflows to heap number" true (Value.is_pointer v);
  let rt2, v2 = eval_src "-1073741824 - 1" in
  Alcotest.(check string) "negative overflow" "-1073741825"
    (Conv.to_js_string rt2.Runtime.heap v2);
  Alcotest.(check bool) "boxed" true (Value.is_pointer v2)

let test_minus_zero () =
  (* -0 must be a double: 1/-0 = -Infinity. *)
  check_eval "-0 via mul" "-Infinity" "1 / (0 * -1)";
  check_eval "-0 via neg" "-Infinity" "1 / -0"

let test_bitops () =
  check_eval "and" "4" "12 & 6";
  check_eval "or" "14" "12 | 6";
  check_eval "xor" "10" "12 ^ 6";
  check_eval "shl" "48" "12 << 2";
  check_eval "sar" "-2" "-8 >> 2";
  check_eval "ushr" "1073741822" "-8 >>> 2";
  check_eval "bitnot" "-13" "~12";
  check_eval "int32 wrap" "0" "4294967296 | 0";
  check_eval "negative wrap" "-294967296" "4000000000 | 0"

let test_comparisons () =
  check_eval "lt" "true" "1 < 2";
  check_eval "string lt" "true" {|"abc" < "abd"|};
  check_eval "eq coerce" "true" {|1 == "1"|};
  check_eval "strict no coerce" "false" {|1 === "1"|};
  check_eval "string value eq" "true" {|"ab" + "c" === "a" + "bc"|};
  check_eval "null undefined" "true" "null == undefined";
  check_eval "null not strict undefined" "false" "null === undefined";
  check_eval "nan neq" "false" "(0/0) == (0/0)";
  check_eval "float int eq" "true" "1 == 1.0"

let test_strings () =
  check_eval "concat" "ab1" {|"a" + "b" + 1|};
  check_eval "number left" "1a" {|1 + "a"|};
  check_eval "length" "5" {|"hello".length|};
  check_eval "charCodeAt" "104" {|"hello".charCodeAt(0)|};
  check_eval "indexOf" "2" {|"hello".indexOf("ll")|};
  check_eval "substring" "ell" {|"hello".substring(1, 4)|};
  check_eval "toUpperCase" "HELLO" {|"hello".toUpperCase()|};
  check_eval "fromCharCode" "AB" "String.fromCharCode(65, 66)";
  check_eval "array coercion" "1,2,3" "[1,2,3] + \"\"";
  check_eval "split" "3" {|"a,b,c".split(",").length|}

let test_truthiness () =
  check_eval "zero falsy" "no" {|0 ? "yes" : "no"|};
  check_eval "empty string falsy" "no" {|"" ? "yes" : "no"|};
  check_eval "nan falsy" "no" {|(0/0) ? "yes" : "no"|};
  check_eval "object truthy" "yes" {|({}) ? "yes" : "no"|};
  check_eval "and value" "2" "1 && 2";
  check_eval "or value" "1" "1 || 2";
  check_eval "and shortcircuit" "0" "0 && 2"

let test_typeof () =
  check_eval "number" "number" "typeof 1";
  check_eval "float" "number" "typeof 1.5";
  check_eval "string" "string" {|typeof "x"|};
  check_eval "boolean" "boolean" "typeof true";
  check_eval "undefined" "undefined" "typeof undefined";
  check_eval "object" "object" "typeof null";
  check_eval "function" "function" "typeof print"

let test_control_flow () =
  Alcotest.(check string) "while"
    "45"
    (prog_str "var s = 0; var i = 0; while (i < 10) { s += i; i++; } var __r = s;");
  Alcotest.(check string) "for with break/continue" "25"
    (prog_str
       "var s = 0;\n\
        for (var i = 0; i < 100; i++) {\n\
       \  if (i % 2 == 0) continue;\n\
       \  if (i > 9) break;\n\
       \  s += i;\n\
        }\n\
        var __r = s;");
  Alcotest.(check string) "do-while" "1" (prog_str "var i = 0; do { i++; } while (false); var __r = i;")

let test_functions_closures () =
  Alcotest.(check string) "recursion" "120"
    (prog_str "function fact(n) { if (n < 2) return 1; return n * fact(n - 1); } var __r = fact(5);");
  Alcotest.(check string) "closure counter" "3"
    (prog_str
       "function mk() { var c = 0; return function() { c++; return c; }; }\n\
        var f = mk(); f(); f(); var __r = f();");
  Alcotest.(check string) "closures independent" "1"
    (prog_str
       "function mk() { var c = 0; return function() { c++; return c; }; }\n\
        var f = mk(); var g = mk(); f(); f(); var __r = g();");
  Alcotest.(check string) "missing args are undefined" "true"
    (prog_str "function f(a, b) { return b == undefined; } var __r = f(1);")

let test_objects_prototypes () =
  Alcotest.(check string) "constructor + method" "25"
    (prog_str
       "function P(x) { this.x = x; }\n\
        P.prototype.sq = function() { return this.x * this.x; };\n\
        var __r = new P(5).sq();");
  Alcotest.(check string) "object literal" "3"
    (prog_str "var o = { a: 1, b: 2 }; var __r = o.a + o.b;");
  Alcotest.(check string) "dynamic property" "7"
    (prog_str "var o = {}; o.later = 7; var __r = o.later;");
  Alcotest.(check string) "missing property" "undefined"
    (prog_str "var o = {}; var __r = o.nope;");
  Alcotest.(check string) "string key access" "2"
    (prog_str {|var o = { k1: 1, k2: 2 }; var __r = o["k" + 2];|})

let test_arrays_js () =
  Alcotest.(check string) "literal + index" "20" (prog_str "var a = [10, 20, 30]; var __r = a[1];");
  Alcotest.(check string) "push/length" "4"
    (prog_str "var a = [1]; a.push(2); a.push(3); a.push(4); var __r = a.length;");
  Alcotest.(check string) "pop" "3" (prog_str "var a = [1, 2, 3]; var __r = a.pop();");
  Alcotest.(check string) "join" "1-2-3" (prog_str {|var __r = [1,2,3].join("-");|});
  Alcotest.(check string) "indexOf" "2" (prog_str "var __r = [5,6,7].indexOf(7);");
  Alcotest.(check string) "new Array(n)" "5" (prog_str "var __r = new Array(5).length;");
  Alcotest.(check string) "oob read" "undefined" (prog_str "var a = [1]; var __r = a[10];")

let test_math_builtins () =
  check_eval "floor" "2" "Math.floor(2.9)";
  check_eval "floor negative" "-3" "Math.floor(-2.1)";
  check_eval "sqrt" "4" "Math.sqrt(16)";
  check_eval "abs" "3" "Math.abs(-3)";
  check_eval "min" "1" "Math.min(1, 2)";
  check_eval "max" "2" "Math.max(1, 2)";
  check_eval "pow" "8" "Math.pow(2, 3)";
  check_eval "PI" "true" "Math.PI > 3.14 && Math.PI < 3.15"

let test_parse_builtins () =
  check_eval "parseInt" "42" {|parseInt("42", 10)|};
  check_eval "parseInt prefix" "42" {|parseInt("42px", 10)|};
  check_eval "parseInt hex radix" "255" {|parseInt("ff", 16)|};
  check_eval "parseInt garbage" "NaN" {|parseInt("x", 10)|};
  check_eval "parseFloat" "2.5" {|parseFloat("2.5")|};
  check_eval "isNaN" "true" "isNaN(0/0)"

let test_regexp_js () =
  Alcotest.(check string) "test" "true"
    (prog_str {|var re = new RegExp("b+c"); var __r = re.test("abbbc");|});
  Alcotest.(check string) "exec index" "2"
    (prog_str {|var re = new RegExp("c(d+)"); var m = re.exec("abcdde"); var __r = m.index;|});
  Alcotest.(check string) "exec group" "dd"
    (prog_str {|var re = new RegExp("c(d+)"); var m = re.exec("abcdde"); var __r = m[1];|});
  Alcotest.(check string) "exec null" "true"
    (prog_str {|var re = new RegExp("zz"); var __r = re.exec("abc") == null;|})

let test_js_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("raises: " ^ src) true
        (try
           ignore (eval_prog src);
           false
         with Builtins.Js_error _ -> true))
    [ "undefined.x"; "null.f()"; "var x = 1; x();"; "var o = {}; o.m();" ]

let test_feedback_recording () =
  let u = Bcompiler.compile
      "function add(a, b) { return a + b; }\n\
       add(1, 2); add(3, 4);"
  in
  let rt = Runtime.create ~heap_size:(1 lsl 20) u in
  Builtins.install_globals rt;
  let _ = Interpreter.run_main rt in
  let add =
    Array.to_list rt.Runtime.funcs
    |> List.find (fun (f : Runtime.func_rt) -> f.Runtime.info.Bytecode.name = "add")
  in
  (* The binop site saw only SMIs. *)
  let saw_smi = ref false in
  Array.iteri
    (fun i _ ->
      match Feedback.binop_type add.Runtime.feedback i with
      | Feedback.Ot_smi -> saw_smi := true
      | _ -> ())
    add.Runtime.feedback;
  Alcotest.(check bool) "smi feedback recorded" true !saw_smi;
  Alcotest.(check int) "invocations" 2 add.Runtime.invocations

let test_feedback_widening () =
  let u = Bcompiler.compile
      "function add(a, b) { return a + b; }\n\
       add(1, 2); add(1.5, 2.5);"
  in
  let rt = Runtime.create ~heap_size:(1 lsl 20) u in
  Builtins.install_globals rt;
  let _ = Interpreter.run_main rt in
  let add =
    Array.to_list rt.Runtime.funcs
    |> List.find (fun (f : Runtime.func_rt) -> f.Runtime.info.Bytecode.name = "add")
  in
  let saw_number = ref false in
  Array.iteri
    (fun i _ ->
      match Feedback.binop_type add.Runtime.feedback i with
      | Feedback.Ot_number -> saw_number := true
      | _ -> ())
    add.Runtime.feedback;
  Alcotest.(check bool) "smi+double joins to number" true !saw_number

let base_suite =
  [
    ( "interp-numeric",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "smi overflow" `Quick test_smi_overflow;
        Alcotest.test_case "minus zero" `Quick test_minus_zero;
        Alcotest.test_case "bitops" `Quick test_bitops;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
      ] );
    ( "interp-values",
      [
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "truthiness" `Quick test_truthiness;
        Alcotest.test_case "typeof" `Quick test_typeof;
      ] );
    ( "interp-control",
      [
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "functions/closures" `Quick test_functions_closures;
        Alcotest.test_case "objects/prototypes" `Quick test_objects_prototypes;
        Alcotest.test_case "arrays" `Quick test_arrays_js;
      ] );
    ( "interp-builtins",
      [
        Alcotest.test_case "math" `Quick test_math_builtins;
        Alcotest.test_case "parse" `Quick test_parse_builtins;
        Alcotest.test_case "regexp" `Quick test_regexp_js;
        Alcotest.test_case "errors" `Quick test_js_errors;
      ] );
    ( "feedback",
      [
        Alcotest.test_case "recording" `Quick test_feedback_recording;
        Alcotest.test_case "widening" `Quick test_feedback_widening;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: random arithmetic expressions evaluated by    *)
(* the engine vs directly in OCaml (JS numbers are IEEE doubles, so    *)
(* must agree bit-for-bit on add/sub/mul).                             *)
(* ------------------------------------------------------------------ *)

type rexpr =
  | R_num of float
  | R_bin of Ast.binop * rexpr * rexpr
  | R_neg of rexpr

let rec rexpr_to_ast = function
  | R_num f -> if f < 0.0 then Ast.Unary (Ast.Neg, Ast.Number (-.f)) else Ast.Number f
  | R_bin (op, a, b) -> Ast.Binary (op, rexpr_to_ast a, rexpr_to_ast b)
  | R_neg e -> Ast.Unary (Ast.Neg, rexpr_to_ast e)

let rec reval = function
  | R_num f -> f
  | R_neg e -> -.reval e
  | R_bin (op, a, b) -> (
    let x = reval a and y = reval b in
    match op with
    | Ast.Add -> x +. y
    | Ast.Sub -> x -. y
    | Ast.Mul -> x *. y
    | _ -> assert false)

let gen_rexpr =
  let open QCheck.Gen in
  let num =
    oneof
      [ map float_of_int (int_range (-1000) 1000);
        map (fun i -> float_of_int i +. 0.5) (int_range (-100) 100);
        map (fun i -> float_of_int i *. 1048576.0) (int_range (-1000) 1000) ]
  in
  let op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul ] in
  fix
    (fun self depth ->
      if depth <= 0 then map (fun f -> R_num f) num
      else
        frequency
          [ (1, map (fun f -> R_num f) num);
            (1, map (fun e -> R_neg e) (self (depth - 1)));
            (3,
             map3 (fun o a b -> R_bin (o, a, b)) op (self (depth - 1))
               (self (depth - 1))) ])
    6

let prop_random_expressions =
  QCheck.Test.make ~name:"interp: random arithmetic matches OCaml floats"
    ~count:150 (QCheck.make gen_rexpr)
    (fun e ->
      let ast_prog = [ Ast.Var_decl [ ("__r", Some (rexpr_to_ast e)) ] ] in
      let u = Bcompiler.compile_program ast_prog in
      let rt = Runtime.create ~heap_size:(1 lsl 20) u in
      Builtins.install_globals rt;
      let _ = Interpreter.run_main rt in
      let h = rt.Runtime.heap in
      let got = Heap.number_value h (Heap.cell_value h (Heap.global_cell h "__r")) in
      let want = reval e in
      Int64.bits_of_float got = Int64.bits_of_float want)

(* The same expressions through the optimizing JIT: wrap in a function
   and call it until it tiers up. *)
let prop_random_expressions_jit =
  QCheck.Test.make ~name:"jit: random arithmetic matches OCaml floats"
    ~count:60 (QCheck.make gen_rexpr)
    (fun e ->
      let fn =
        { Ast.fname = Some "k"; params = [];
          body = [ Ast.Return (Some (rexpr_to_ast e)) ] }
      in
      let prog = [ Ast.Func_decl fn ] in
      let u = Bcompiler.compile_program prog in
      let rt = Runtime.create ~heap_size:(1 lsl 20) u in
      ignore rt;
      (* Run through the engine for tier-up. *)
      let src_unavailable = () in
      ignore src_unavailable;
      let cfg = Engine.default_config ~arch:Arch.Arm64 () in
      (* The engine API takes source text; rebuild via the compiled unit
         is not exposed, so print the expression as JS. *)
      let rec to_js = function
        | R_num f -> Printf.sprintf "(%.17g)" f
        | R_neg x -> Printf.sprintf "(-%s)" (to_js x)
        | R_bin (op, a, b) ->
          Printf.sprintf "(%s %s %s)" (to_js a)
            (match op with
            | Ast.Add -> "+"
            | Ast.Sub -> "-"
            | Ast.Mul -> "*"
            | _ -> assert false)
            (to_js b)
      in
      let src = Printf.sprintf "function k() { return %s; } " (to_js e) in
      let eng = Engine.create cfg src in
      let _ = Engine.run_main eng in
      let h = (Engine.runtime eng).Runtime.heap in
      let ok = ref true in
      for _ = 1 to 8 do
        let v = Engine.call_global eng "k" [||] in
        if Int64.bits_of_float (Heap.number_value h v)
           <> Int64.bits_of_float (reval e)
        then ok := false
      done;
      !ok)

let fuzz_suite =
  let q = QCheck_alcotest.to_alcotest in
  [ ("fuzz-arith", [ q prop_random_expressions; q prop_random_expressions_jit ]) ]

let suite = base_suite @ fuzz_suite
