(* JIT integration tests: differential correctness against the
   interpreter, deoptimization round trips, check-removal soundness, the
   ISA extension, and structural invariants of graphs and generated
   code. *)

let engine_config ?(arch = Arch.Arm64) ?(opt = true)
    ?(checks = Engine.checks_on) ?(trust = false) ?(turboprop = false) () =
  let cfg = Engine.default_config ~arch () in
  { cfg with
    Engine.enable_optimizer = opt;
    checks;
    trust_elements_kind = trust;
    turboprop }

let run_n cfg src n =
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  let h = (Engine.runtime eng).Runtime.heap in
  let last = ref Float.nan in
  for _ = 1 to n do
    let v = Engine.call_global eng "bench" [||] in
    last := Heap.number_value h v
  done;
  (!last, eng)

let differential ?(n = 10) name src =
  let jit, _ = run_n (engine_config ()) src n in
  let interp, _ = run_n (engine_config ~opt:false ()) src n in
  Alcotest.(check bool)
    (Printf.sprintf "%s: jit=%f interp=%f" name jit interp)
    true
    (jit = interp || Float.abs (jit -. interp) < 1e-9)

let test_diff_smi_arith () =
  differential "smi arithmetic"
    {|
function f(a, b) { return (a * b + a - b) % 9973; }
function bench() {
  var s = 0;
  for (var i = 1; i < 200; i++) s = (s + f(i, i + 3)) % 999983;
  return s;
}
|}

let test_diff_overflow_deopt () =
  (* Speculation trained on small values, then an overflowing input:
     the add must deopt and still produce the correct boxed result. *)
  differential "overflow deopt"
    {|
var limit = 10;
function grow(x) { return x + x; }
function bench() {
  var s = 0;
  for (var i = 0; i < 30; i++) s = s + grow(i);
  if (limit < 100) { limit = 1000; s = s + grow(900000000); }
  return s % 100000007;
}
|}

let test_diff_map_change_deopt () =
  differential "map-change deopt"
    {|
function get_x(o) { return o.x; }
function bench() {
  var s = 0;
  for (var i = 0; i < 40; i++) s = s + get_x({ x: i });
  // Different shape at the same site: wrong-map deopt, then generic.
  s = s + get_x({ y: 1, x: 100 });
  return s;
}
|}

let test_diff_elements_transition () =
  differential "elements-kind transition deopt"
    {|
var arr = [1, 2, 3, 4];
function sum() {
  var s = 0;
  for (var i = 0; i < arr.length; i++) s = s + arr[i];
  return s;
}
var phase = 0;
function bench() {
  var r = sum();
  phase = phase + 1;
  if (phase == 25) arr[1] = 2.5;  // SMI array becomes DOUBLE
  return Math.floor(r * 4);
}
|}

let test_diff_polymorphic_call () =
  differential "polymorphic then megamorphic calls"
    {|
function a(x) { return x + 1; }
function b(x) { return x + 2; }
function c(x) { return x + 3; }
var fs = [a, b, c];
function bench() {
  var s = 0;
  for (var i = 0; i < 60; i++) s = s + fs[i % 3](i);
  return s;
}
|}

let test_diff_float_kernel () =
  differential "float kernel"
    {|
var a = [0.5, 1.5, 2.5, 3.5, 4.5];
function bench() {
  var s = 0.0;
  for (var r = 0; r < 20; r++) {
    for (var i = 0; i < a.length; i++) s = s + a[i] * 1.25 - 0.125;
  }
  return Math.floor(s * 1000);
}
|}

let test_diff_string_builtins () =
  differential "string builtins from jit code"
    {|
var words = ["alpha", "beta", "gamma", "delta"];
function bench() {
  var h = 0;
  for (var i = 0; i < words.length; i++) {
    var w = words[i];
    for (var j = 0; j < w.length; j++) h = ((h * 31) + w.charCodeAt(j)) & 0xFFFFFF;
  }
  return h;
}
|}

let test_diff_constructors () =
  differential "constructors + methods"
    {|
function Pt(x, y) { this.x = x; this.y = y; }
Pt.prototype.m = function() { return this.x * 3 + this.y; };
function bench() {
  var s = 0;
  for (var i = 0; i < 50; i++) s = (s + new Pt(i, i + 1).m()) % 100003;
  return s;
}
|}

let test_whole_suite_differential () =
  (* Every workload: 6 iterations JIT vs interpreter. *)
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let src = b.Workloads.Suite.source in
      let jit, _ = run_n (engine_config ()) src 6 in
      let interp, _ = run_n (engine_config ~opt:false ()) src 6 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jit=%f interp=%f" b.Workloads.Suite.id jit interp)
        true
        (Float.abs (jit -. interp) < 1e-9))
    Workloads.Suite.all

let test_deopt_resume_mid_loop () =
  (* Poison a value the compiled loop speculates on and verify the
     bailout resumes with exact interpreter semantics. *)
  let src =
    {|
var xs = [1, 2, 3, 4, 5, 6, 7, 8];
function total() {
  var s = 0;
  for (var i = 0; i < xs.length; i++) s = s + xs[i];
  return s;
}
function bench() { return total(); }
|}
  in
  let cfg = engine_config () in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  let h = (Engine.runtime eng).Runtime.heap in
  for _ = 1 to 10 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  (* Mid-steady-state type change. *)
  let xs = Heap.cell_value h (Heap.global_cell h "xs") in
  Heap.array_set h xs 3 (Heap.alloc_heap_number h 4.5);
  let v = Engine.call_global eng "bench" [||] in
  Alcotest.(check bool) "sum after poisoning" true
    (Heap.number_value h v = 36.5);
  Alcotest.(check bool) "a deopt fired" true
    (List.exists (fun (_, n) -> n > 0) (Engine.deopt_counts eng))

let variant_preserves name mk_cfg =
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let src = b.Workloads.Suite.source in
      let reference, _ = run_n (engine_config ~opt:false ()) src 5 in
      let got, _ = run_n (mk_cfg b) src 5 in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: got=%f want=%f" name b.Workloads.Suite.id got reference)
        true
        (Float.abs (got -. reference) < 1e-9))
    [ Option.get (Workloads.Suite.by_id "DP");
      Option.get (Workloads.Suite.by_id "HASH");
      Option.get (Workloads.Suite.by_id "RICH");
      Option.get (Workloads.Suite.by_id "NS");
      Option.get (Workloads.Suite.by_id "SPMV-CSR-SMI") ]

let test_calibrated_removal_sound () =
  variant_preserves "check removal" (fun b ->
      let config = engine_config () in
      let removable, _ =
        Experiments.Harness.calibrate_removable ~iterations:30 ~config b
      in
      engine_config
        ~checks:{ Engine.disabled_groups = removable; remove_branches = false }
        ())

let test_branch_removal_sound () =
  (* Removing deopt branches is only behavior-preserving when no check
     would have fired (the paper's Fig 10 shares this caveat): restrict
     to benchmarks whose calibration shows no firing deopts. *)
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let config = engine_config () in
      let _, fired =
        Experiments.Harness.calibrate_removable ~iterations:30 ~config b
      in
      if fired = [] then begin
        let src = b.Workloads.Suite.source in
        let reference, _ = run_n (engine_config ~opt:false ()) src 5 in
        let got, _ =
          run_n
            (engine_config
               ~checks:{ Engine.disabled_groups = []; remove_branches = true }
               ())
            src 5
        in
        Alcotest.(check bool)
          (Printf.sprintf "branch removal/%s" b.Workloads.Suite.id)
          true
          (Float.abs (got -. reference) < 1e-9)
      end)
    [ Option.get (Workloads.Suite.by_id "DP");
      Option.get (Workloads.Suite.by_id "HASH");
      Option.get (Workloads.Suite.by_id "NS");
      Option.get (Workloads.Suite.by_id "RICH");
      Option.get (Workloads.Suite.by_id "SPMV-CSR-SMI") ]

let test_smi_ext_sound () =
  variant_preserves "smi extension" (fun _ ->
      engine_config ~arch:Arch.Arm64_smi_ext ())

let test_x64_sound () =
  variant_preserves "x64 backend" (fun _ -> engine_config ~arch:Arch.X64 ())

let test_turboprop_sound () =
  variant_preserves "turboprop" (fun _ -> engine_config ~turboprop:true ())

let test_trust_elements_sound () =
  variant_preserves "trust-elements ablation" (fun _ ->
      engine_config ~trust:true ())

(* ---------------- Structural invariants ---------------- *)

let hot_graph_and_code arch src entry =
  let cfg = engine_config ~arch () in
  let eng = Engine.create cfg src in
  let _ = Engine.run_main eng in
  for _ = 1 to 20 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  match Engine.compile_now eng entry with
  | Ok code ->
    let h = (Engine.runtime eng).Runtime.heap in
    let f = Heap.cell_value h (Heap.global_cell h entry) in
    let fid = Heap.function_id_of h f in
    (Option.get (Engine.graph_of_fid eng fid), code)
  | Error m -> Alcotest.fail ("compile failed: " ^ m)

let dp_src = (Option.get (Workloads.Suite.by_id "DP")).Workloads.Suite.source

let test_graph_invariants () =
  let g, _ = hot_graph_and_code Arch.Arm64 dp_src "dot" in
  for b = 0 to g.Turbofan.Son.n_blocks - 1 do
    let blk = Turbofan.Son.block g b in
    List.iter
      (fun i ->
        let n = Turbofan.Son.node g i in
        (match n.Turbofan.Son.op with
        | Turbofan.Son.N_phi ->
          Alcotest.(check int)
            (Printf.sprintf "phi %d inputs = preds" i)
            (List.length blk.Turbofan.Son.preds)
            (Array.length n.Turbofan.Son.inputs)
        | Turbofan.Son.N_check _ | Turbofan.Son.N_soft_deopt _
        | Turbofan.Son.N_js_ldr_smi _ ->
          Alcotest.(check bool)
            (Printf.sprintf "check %d has frame state" i)
            true
            (n.Turbofan.Son.fs <> None)
        | _ -> ());
        Array.iter
          (fun v ->
            Alcotest.(check bool) "input ids valid" true
              (v >= 0 && v < g.Turbofan.Son.n_nodes))
          n.Turbofan.Son.inputs)
      blk.Turbofan.Son.body
  done

let check_code_invariants (code : Code.t) =
  let n_deopts = Array.length code.Code.deopts in
  Array.iter
    (fun insn ->
      (match insn.Insn.kind with
      | Insn.Deopt_if (_, dp) ->
        Alcotest.(check bool) "deopt id in table" true (dp >= 0 && dp < n_deopts)
      | Insn.Js_ldr_smi { deopt; _ } ->
        Alcotest.(check bool) "fused deopt id in table" true
          (deopt >= 0 && deopt < n_deopts);
        Alcotest.(check bool) "jsldrsmi only on ext arch" true
          (Arch.has_smi_load code.Code.arch)
      | Insn.Alu_mem _ | Insn.Cmp_mem _ ->
        Alcotest.(check bool) "memory operands only on x64" true
          (Arch.can_fold_memory_operand code.Code.arch)
      | _ -> ());
      List.iter
        (fun r ->
          Alcotest.(check bool) "register index valid" true
            (r >= 0 && r < Insn.num_gp_regs))
        (Insn.reads insn.Insn.kind @ Insn.writes insn.Insn.kind))
    code.Code.insns

let test_code_invariants_all_arches () =
  List.iter
    (fun arch ->
      let _, code = hot_graph_and_code arch dp_src "dot" in
      check_code_invariants code)
    [ Arch.X64; Arch.Arm64; Arch.Arm64_smi_ext ]

let test_short_circuit_removes_ancestors () =
  let cfg = engine_config () in
  let eng = Engine.create cfg dp_src in
  let _ = Engine.run_main eng in
  for _ = 1 to 20 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let rt = Engine.runtime eng in
  let h = rt.Runtime.heap in
  let f = Heap.cell_value h (Heap.global_cell h "dot") in
  let fr = Runtime.func rt (Heap.function_id_of h f) in
  let build () =
    Turbofan.Graph_builder.build
      (Turbofan.Graph_builder.default_config Arch.Arm64)
      rt fr
  in
  let g = build () in
  ignore (Turbofan.Reducer.run_dce g);
  let before = Turbofan.Son.node_count g in
  let stats =
    Turbofan.Reducer.short_circuit_checks g ~groups:[ Insn.G_boundary ]
  in
  Alcotest.(check bool) "bounds checks removed" true
    (stats.Turbofan.Reducer.checks_removed > 0);
  (* The array-length loads that fed the checks die too (paper Fig 5). *)
  Alcotest.(check bool) "dead ancestors removed" true
    (stats.Turbofan.Reducer.nodes_dce_removed > 0);
  Alcotest.(check bool) "node count shrank" true
    (Turbofan.Son.node_count g
     < before - stats.Turbofan.Reducer.checks_removed)

let test_fusion_reduces_checks () =
  let _, plain = hot_graph_and_code Arch.Arm64 dp_src "dot" in
  let _, fused = hot_graph_and_code Arch.Arm64_smi_ext dp_src "dot" in
  let has_fused = ref false in
  Array.iter
    (fun i ->
      match i.Insn.kind with Insn.Js_ldr_smi _ -> has_fused := true | _ -> ())
    fused.Code.insns;
  Alcotest.(check bool) "jsldrsmi emitted" true !has_fused;
  Alcotest.(check bool) "fewer instructions with the extension" true
    (Code.real_instructions fused < Code.real_instructions plain)

let test_remove_branches_removes_deopt_if () =
  let cfg =
    engine_config
      ~checks:{ Engine.disabled_groups = []; remove_branches = true }
      ()
  in
  let eng = Engine.create cfg dp_src in
  let _ = Engine.run_main eng in
  for _ = 1 to 20 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  List.iter
    (fun (code : Code.t) ->
      Array.iter
        (fun i ->
          match i.Insn.kind with
          | Insn.Deopt_if _ -> Alcotest.fail "deopt branch survived removal"
          | _ -> ())
        code.Code.insns)
    (Engine.all_codes eng)

let test_deopt_counters_move () =
  let cfg = engine_config () in
  let eng = Engine.create cfg
      {|
function f(x) { return x + 1; }
function bench() {
  var s = 0;
  for (var i = 0; i < 30; i++) s = s + f(i);
  return s;
}
|}
  in
  let _ = Engine.run_main eng in
  for _ = 1 to 10 do
    ignore (Engine.call_global eng "bench" [||])
  done;
  let c = (Engine.cpu eng).Cpu.counters in
  Alcotest.(check bool) "jit instructions retired" true
    (c.Perf.jit_instructions > 0);
  Alcotest.(check bool) "checks committed" true (c.Perf.check_instructions > 0);
  Alcotest.(check bool) "check branches <= checks" true
    (c.Perf.check_branches <= c.Perf.check_instructions);
  Alcotest.(check int) "per-group sums to total" c.Perf.check_instructions
    (Array.fold_left ( + ) 0 c.Perf.check_per_group)

let suite =
  [
    ( "jit-differential",
      [
        Alcotest.test_case "smi arithmetic" `Quick test_diff_smi_arith;
        Alcotest.test_case "overflow deopt" `Quick test_diff_overflow_deopt;
        Alcotest.test_case "map-change deopt" `Quick test_diff_map_change_deopt;
        Alcotest.test_case "elements transition" `Quick test_diff_elements_transition;
        Alcotest.test_case "polymorphic calls" `Quick test_diff_polymorphic_call;
        Alcotest.test_case "float kernel" `Quick test_diff_float_kernel;
        Alcotest.test_case "string builtins" `Quick test_diff_string_builtins;
        Alcotest.test_case "constructors" `Quick test_diff_constructors;
        Alcotest.test_case "whole suite" `Slow test_whole_suite_differential;
      ] );
    ( "jit-deopt",
      [
        Alcotest.test_case "resume mid-loop" `Quick test_deopt_resume_mid_loop;
        Alcotest.test_case "counters" `Quick test_deopt_counters_move;
      ] );
    ( "jit-variants",
      [
        Alcotest.test_case "calibrated removal sound" `Slow test_calibrated_removal_sound;
        Alcotest.test_case "branch removal sound" `Slow test_branch_removal_sound;
        Alcotest.test_case "smi ext sound" `Slow test_smi_ext_sound;
        Alcotest.test_case "x64 sound" `Slow test_x64_sound;
        Alcotest.test_case "turboprop sound" `Slow test_turboprop_sound;
        Alcotest.test_case "trust-elements sound" `Slow test_trust_elements_sound;
      ] );
    ( "jit-structure",
      [
        Alcotest.test_case "graph invariants" `Quick test_graph_invariants;
        Alcotest.test_case "code invariants (3 arches)" `Quick test_code_invariants_all_arches;
        Alcotest.test_case "short-circuit kills ancestors" `Quick
          test_short_circuit_removes_ancestors;
        Alcotest.test_case "fusion reduces instructions" `Quick test_fusion_reduces_checks;
        Alcotest.test_case "branch removal removes Deopt_if" `Quick
          test_remove_branches_removes_deopt_if;
      ] );
  ]
