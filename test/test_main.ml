let () =
  Alcotest.run "vspec"
    (Test_support.suite @ Test_pool.suite @ Test_heap.suite
   @ Test_frontend.suite @ Test_interp.suite @ Test_machine.suite
   @ Test_jit.suite @ Test_turbofan.suite @ Test_experiments.suite
   @ Test_parallel.suite @ Test_exec_determinism.suite @ Test_decode.suite
   @ Test_engine.suite @ Test_misc.suite @ Test_faults.suite
   @ Test_trace.suite)
