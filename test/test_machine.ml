(* Machine substrate tests: the executor's instruction semantics,
   deoptimization paths, the fused SMI load, the cache model, the branch
   predictor, and the timing model's basic invariants. *)

let mk_code ?(deopts = [||]) ?(gp_slots = 4) insns =
  Code.assemble ~code_id:0 ~name:"test" ~arch:Arch.Arm64 ~deopts ~gp_slots
    ~fp_slots:4 ~base_addr:0x100
    (List.map (fun k -> Insn.make k) insns)

let null_host memory =
  {
    Exec.memory;
    call_builtin = (fun _ _ -> 0);
    call_js = (fun _ _ -> 0);
  }

let run ?(memory = Array.make 64 0) ?(args = [||]) insns =
  let cpu = Cpu.create Cpu.fast_arm64 in
  (cpu, Exec.run cpu ~host:(null_host memory) ~code:(mk_code insns) ~args)

let expect_done name expected outcome =
  match outcome with
  | Exec.Done v -> Alcotest.(check int) name expected v
  | Exec.Deopt _ -> Alcotest.fail (name ^ ": unexpected deopt")

let test_mov_alu () =
  let _, r =
    run
      [ Insn.Mov (0, Insn.Imm 20);
        Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 22; set_flags = false };
        Insn.Ret ]
  in
  expect_done "add imm" 42 r;
  let _, r2 =
    run
      [ Insn.Mov (0, Insn.Imm 7);
        Insn.Mov (1, Insn.Imm 3);
        Insn.Alu { op = Insn.Mul; dst = 0; src = 0; rhs = Insn.Reg 1; set_flags = false };
        Insn.Ret ]
  in
  expect_done "mul" 21 r2

let test_shifts_32bit () =
  let _, r =
    run
      [ Insn.Mov (0, Insn.Imm (-8));
        Insn.Alu { op = Insn.Asr; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
        Insn.Ret ]
  in
  expect_done "asr sign extends" (-4) r;
  let _, r2 =
    run
      [ Insn.Mov (0, Insn.Imm (-8));
        Insn.Alu { op = Insn.Lsr; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
        Insn.Ret ]
  in
  expect_done "lsr is 32-bit logical" 0x7FFFFFFC r2

let test_conditions () =
  (* r0 = (a < b) ? 1 : 0 for several conds via Bcond. *)
  let check_cond name cond a b expected =
    let _, r =
      run
        [ Insn.Mov (1, Insn.Imm a);
          Insn.Cmp (1, Insn.Imm b);
          Insn.Mov (0, Insn.Imm 1);
          Insn.Bcond (cond, 0);
          Insn.Mov (0, Insn.Imm 0);
          Insn.Label 0;
          Insn.Ret ]
    in
    expect_done name expected r
  in
  check_cond "lt true" Insn.Lt 1 2 1;
  check_cond "lt false" Insn.Lt 2 1 0;
  check_cond "ge eq" Insn.Ge 2 2 1;
  check_cond "eq" Insn.Eq 5 5 1;
  check_cond "ne" Insn.Ne 5 5 0;
  (* Unsigned: -1 is huge. *)
  check_cond "hs unsigned" Insn.Hs (-1) 1 1;
  check_cond "lo unsigned" Insn.Lo (-1) 1 0

let test_overflow_flag () =
  let max32 = 0x7FFFFFFF in
  let _, r =
    run
      [ Insn.Mov (1, Insn.Imm max32);
        Insn.Alu { op = Insn.Add; dst = 1; src = 1; rhs = Insn.Imm 1; set_flags = true };
        Insn.Mov (0, Insn.Imm 1);
        Insn.Bcond (Insn.Vs, 0);
        Insn.Mov (0, Insn.Imm 0);
        Insn.Label 0;
        Insn.Ret ]
  in
  expect_done "32-bit add overflow sets V" 1 r

let test_loads_stores () =
  let memory = Array.make 64 0 in
  memory.(10) <- 1234;
  let _, r =
    run ~memory
      [ Insn.Mov (1, Insn.Imm 20) (* address 20 = word 10 *);
        Insn.Ldr (0, Insn.mk_addr 1);
        Insn.Str (Insn.mk_addr ~offset:2 1, 0) (* word 11 *);
        Insn.Ret ]
  in
  expect_done "load" 1234 r;
  Alcotest.(check int) "store" 1234 memory.(11)

let test_indexed_addressing () =
  let memory = Array.make 64 0 in
  memory.(8) <- 7;
  memory.(9) <- 8;
  let _, r =
    run ~memory
      [ Insn.Mov (1, Insn.Imm 16) (* base: word 8 *);
        Insn.Mov (2, Insn.Imm 2) (* tagged smi 1 *);
        Insn.Ldr (0, Insn.mk_addr ~index:2 ~scale:1 1);
        Insn.Ret ]
  in
  expect_done "indexed tagged-scale load" 8 r

let test_float_ops () =
  let memory = Array.make 64 0 in
  let bits = Int64.bits_of_float 2.5 in
  memory.(4) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  memory.(5) <- Int64.to_int (Int64.shift_right_logical bits 32);
  let _, r =
    run ~memory
      [ Insn.Mov (1, Insn.Imm 8);
        Insn.Ldr_f (0, Insn.mk_addr 1);
        Insn.Fmov_imm (1, 1.5);
        Insn.Falu { op = Insn.Fadd; dst = 0; a = 0; b = 1 };
        Insn.Fcvtzs (0, 0);
        Insn.Ret ]
  in
  expect_done "2.5 + 1.5 truncated" 4 r

let test_fcmp_nan () =
  (* NaN comparisons: all ordered conds false, Ne true. *)
  let run_cond cond =
    let _, r =
      run
        [ Insn.Fmov_imm (0, Float.nan);
          Insn.Fmov_imm (1, 1.0);
          Insn.Fcmp (0, 1);
          Insn.Mov (0, Insn.Imm 1);
          Insn.Bcond (cond, 0);
          Insn.Mov (0, Insn.Imm 0);
          Insn.Label 0;
          Insn.Ret ]
    in
    match r with Exec.Done v -> v | _ -> -1
  in
  Alcotest.(check int) "nan lt false" 0 (run_cond Insn.Lt);
  Alcotest.(check int) "nan gt false" 0 (run_cond Insn.Gt);
  Alcotest.(check int) "nan eq false" 0 (run_cond Insn.Eq);
  Alcotest.(check int) "nan ne true" 1 (run_cond Insn.Ne)

let test_deopt_path () =
  let deopts =
    [| { Code.dp_id = 0; reason = Insn.Not_a_smi; bc_pc = 7;
         frame = [| Code.Fv_reg 1; Code.Fv_const 99 |];
         accumulator = Code.Fv_reg 0 } |]
  in
  let code =
    mk_code ~deopts
      [ Insn.Mov (0, Insn.Imm 41);
        Insn.Mov (1, Insn.Imm 5);
        Insn.Tst (1, Insn.Imm 1);
        Insn.Deopt_if (Insn.Ne, 0);
        Insn.Ret ]
  in
  let cpu = Cpu.create Cpu.fast_arm64 in
  match Exec.run cpu ~host:(null_host (Array.make 8 0)) ~code ~args:[||] with
  | Exec.Done _ -> Alcotest.fail "expected deopt"
  | Exec.Deopt { deopt_id; reason; snapshot; via_smi_ext } ->
    Alcotest.(check int) "deopt id" 0 deopt_id;
    Alcotest.(check bool) "reason" true (reason = Insn.Not_a_smi);
    Alcotest.(check bool) "not via ext" false via_smi_ext;
    let mat = Exec.frame_value snapshot ~materialize_double:(fun _ -> -1) in
    Alcotest.(check int) "frame reg" 5 (mat deopts.(0).Code.frame.(0));
    Alcotest.(check int) "frame const" 99 (mat deopts.(0).Code.frame.(1));
    Alcotest.(check int) "acc" 41 (mat deopts.(0).Code.accumulator)

let test_jsldrsmi_fast_and_fail () =
  let deopts =
    [| { Code.dp_id = 0; reason = Insn.Not_a_smi; bc_pc = 0;
         frame = [||]; accumulator = Code.Fv_dead } |]
  in
  let mk word =
    let memory = Array.make 16 0 in
    memory.(4) <- word;
    let code =
      mk_code ~deopts
        [ Insn.Mov (1, Insn.Imm 0x200) (* REG_BA *);
          Insn.Msr (Insn.Reg_ba, 1);
          Insn.Mov (1, Insn.Imm 8);
          Insn.Js_ldr_smi { dst = 0; mem = Insn.mk_addr 1; deopt = 0 };
          Insn.Ret ]
    in
    let cpu = Cpu.create Cpu.fast_arm64 in
    Exec.run cpu ~host:(null_host memory) ~code ~args:[||]
  in
  (match mk (Value.smi 21) with
  | Exec.Done v -> Alcotest.(check int) "untagged result" 21 v
  | Exec.Deopt _ -> Alcotest.fail "smi load should succeed");
  match mk (Value.pointer 3) with
  | Exec.Done _ -> Alcotest.fail "pointer should fail the check"
  | Exec.Deopt { via_smi_ext; reason; _ } ->
    Alcotest.(check bool) "bails via REG_BA" true via_smi_ext;
    Alcotest.(check bool) "reason" true (reason = Insn.Not_a_smi)

let test_spill_reload () =
  let _, r =
    run
      [ Insn.Mov (0, Insn.Imm 17);
        Insn.Spill (2, 0);
        Insn.Mov (0, Insn.Imm 0);
        Insn.Reload (0, 2);
        Insn.Ret ]
  in
  expect_done "spill/reload" 17 r

let test_builtin_call_convention () =
  let got = ref [||] in
  let host =
    { Exec.memory = Array.make 8 0;
      call_builtin =
        (fun b argv ->
          Alcotest.(check int) "builtin id" 9 b;
          got := Array.copy argv;
          777);
      call_js = (fun _ _ -> 0) }
  in
  let code =
    mk_code
      [ Insn.Mov (0, Insn.Imm 1);
        Insn.Mov (1, Insn.Imm 2);
        Insn.Mov (2, Insn.Imm 3);
        Insn.Call (Insn.Builtin 9, 3);
        Insn.Ret ]
  in
  let cpu = Cpu.create Cpu.fast_arm64 in
  (match Exec.run cpu ~host ~code ~args:[||] with
  | Exec.Done v -> Alcotest.(check int) "result in r0" 777 v
  | _ -> Alcotest.fail "deopt");
  Alcotest.(check (array int)) "args r0..r2" [| 1; 2; 3 |] !got

let test_machine_fault () =
  Alcotest.(check bool) "unaligned faults" true
    (try
       ignore
         (run
            [ Insn.Mov (1, Insn.Imm 3) (* odd address *);
              Insn.Ldr (0, Insn.mk_addr 1);
              Insn.Ret ]);
       false
     with Exec.Machine_fault _ -> true);
  Alcotest.(check bool) "out of range faults" true
    (try
       ignore
         (run
            [ Insn.Mov (1, Insn.Imm 100000);
              Insn.Ldr (0, Insn.mk_addr 1);
              Insn.Ret ]);
       false
     with Exec.Machine_fault _ -> true)

(* ---------------- Cache ---------------- *)

let test_cache_basics () =
  let c = Cache.create ~name:"t" ~size_words:1024 ~assoc:2 ~line_words:16 ~hit_latency:3 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "warm hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 15);
  Alcotest.(check bool) "next line miss" false (Cache.access c 16);
  Alcotest.(check int) "stats" 2 (Cache.hits c)

let test_cache_eviction () =
  (* Direct-mapped-ish: 2-way, force 3 lines into one set. *)
  let c = Cache.create ~name:"t" ~size_words:64 ~assoc:2 ~line_words:16 ~hit_latency:1 in
  (* sets = 64/16/2 = 2; lines 0, 2, 4 all map to set 0. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 32);
  ignore (Cache.access c 64);
  Alcotest.(check bool) "lru evicted" false (Cache.access c 0)

let test_hierarchy_latency () =
  let h = Cache.default_hierarchy () in
  let cold = Cache.data_latency h 4096 in
  let warm = Cache.data_latency h 4096 in
  Alcotest.(check bool) "cold slower than warm" true (cold > warm);
  Alcotest.(check int) "warm = L1 hit" (Cache.hit_latency h.Cache.l1d) warm

(* ---------------- Predictor ---------------- *)

let test_predictor_learns_loop () =
  let p = Predictor.create () in
  (* A branch taken 50 times then not taken: mispredicts should be a
     handful, not ~50. *)
  let wrong = ref 0 in
  for _ = 1 to 50 do
    if not (Predictor.predict_and_update p ~pc:100 ~taken:true) then incr wrong
  done;
  Alcotest.(check bool) "learns taken branch" true (!wrong <= 3);
  Alcotest.(check bool) "exit mispredicted" false
    (Predictor.predict_and_update p ~pc:100 ~taken:false)

let test_predictor_never_taken () =
  let p = Predictor.create () in
  let wrong = ref 0 in
  for _ = 1 to 200 do
    if not (Predictor.predict_and_update p ~pc:64 ~taken:false) then incr wrong
  done;
  (* Deopt-style never-taken branches are essentially free. *)
  Alcotest.(check bool) "never-taken ~perfect" true (!wrong <= 2)

(* ---------------- Timing ---------------- *)

let test_timing_monotonic_and_counts () =
  let cpu, _ =
    run
      [ Insn.Mov (0, Insn.Imm 1);
        Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
        Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
        Insn.Ret ]
  in
  Alcotest.(check bool) "cycles positive" true (Cpu.cycles cpu > 0.0);
  Alcotest.(check int) "retired count" 4 cpu.Cpu.counters.Perf.instructions

let test_dependent_chain_slower () =
  (* Same instruction count; one is a dependency chain, one is parallel. *)
  let chain =
    List.init 32 (fun _ ->
        Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false })
  in
  let parallel =
    List.init 32 (fun i ->
        Insn.Alu { op = Insn.Add; dst = 1 + (i mod 8); src = 9; rhs = Insn.Imm 1;
                   set_flags = false })
  in
  let time insns =
    let cpu, _ = run ([ Insn.Mov (0, Insn.Imm 0); Insn.Mov (9, Insn.Imm 0) ] @ insns @ [ Insn.Ret ]) in
    Cpu.cycles cpu
  in
  Alcotest.(check bool) "O3: chain slower than parallel" true
    (time chain > time parallel)

let test_inorder_slower_than_o3 () =
  let insns =
    [ Insn.Mov (1, Insn.Imm 8) ]
    @ List.concat
        (List.init 16 (fun _ ->
             [ Insn.Ldr (2, Insn.mk_addr 1);
               Insn.Alu { op = Insn.Add; dst = 3; src = 3; rhs = Insn.Imm 1; set_flags = false } ]))
    @ [ Insn.Mov (0, Insn.Reg 3); Insn.Ret ]
  in
  let time cfg =
    let cpu = Cpu.create cfg in
    let memory = Array.make 64 0 in
    ignore (Exec.run cpu ~host:(null_host memory) ~code:(mk_code insns) ~args:[||]);
    Cpu.cycles cpu
  in
  Alcotest.(check bool) "in-order slower" true
    (time Cpu.inorder_a55 > time Cpu.o3_kpg)

let test_counters_branches () =
  let cpu, _ =
    run
      [ Insn.Mov (0, Insn.Imm 0);
        Insn.Label 1;
        Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
        Insn.Cmp (0, Insn.Imm 10);
        Insn.Bcond (Insn.Lt, 1);
        Insn.Ret ]
  in
  Alcotest.(check int) "branch count" (10 + 1)
    cpu.Cpu.counters.Perf.branches (* 10 loop branches + ret *);
  Alcotest.(check int) "loop result" 10
    (match
       run
         [ Insn.Mov (0, Insn.Imm 0);
           Insn.Label 1;
           Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
           Insn.Cmp (0, Insn.Imm 10);
           Insn.Bcond (Insn.Lt, 1);
           Insn.Ret ]
     with
    | _, Exec.Done v -> v
    | _ -> -1)

let test_sampler () =
  let s = Perf.create_sampler ~period:10.0 ~seed:1 in
  let cpu = Cpu.create ~sampler:s Cpu.fast_arm64 in
  let insns =
    [ Insn.Mov (0, Insn.Imm 0); Insn.Label 1;
      Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Imm 1; set_flags = false };
      Insn.Cmp (0, Insn.Imm 2000);
      Insn.Bcond (Insn.Lt, 1);
      Insn.Ret ]
  in
  ignore (Exec.run cpu ~host:(null_host (Array.make 8 0)) ~code:(mk_code insns) ~args:[||]);
  Alcotest.(check bool) "samples collected" true (Perf.total_samples s > 10);
  let per_insn = Perf.samples_for s ~code_id:0 ~size:6 in
  Alcotest.(check int) "attributed to code 0" (Perf.total_samples s)
    (Array.fold_left ( + ) 0 per_insn)

let prop_alu_matches_reference =
  (* Executor ALU semantics vs a 32-bit reference model. *)
  let sext32 x =
    let w = x land 0xFFFFFFFF in
    if w >= 0x80000000 then w - 0x100000000 else w
  in
  QCheck.Test.make ~name:"exec: alu matches 32-bit reference" ~count:300
    QCheck.(triple (int_range (-1000000) 1000000) (int_range (-1000000) 1000000)
              (int_range 0 5))
    (fun (a, b, opi) ->
      let op, reference =
        match opi with
        | 0 -> (Insn.Add, sext32 (a + b))
        | 1 -> (Insn.Sub, sext32 (a - b))
        | 2 -> (Insn.And, sext32 (a land b))
        | 3 -> (Insn.Orr, sext32 (a lor b))
        | 4 -> (Insn.Eor, sext32 (a lxor b))
        | _ -> (Insn.Mul, sext32 (a * b))
      in
      let _, r =
        run
          [ Insn.Mov (0, Insn.Imm a);
            Insn.Mov (1, Insn.Imm b);
            Insn.Alu { op; dst = 0; src = 0; rhs = Insn.Reg 1; set_flags = false };
            Insn.Ret ]
      in
      match r with Exec.Done v -> v = reference | _ -> false)

let base_suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ( "exec",
      [
        Alcotest.test_case "mov/alu" `Quick test_mov_alu;
        Alcotest.test_case "32-bit shifts" `Quick test_shifts_32bit;
        Alcotest.test_case "conditions" `Quick test_conditions;
        Alcotest.test_case "overflow flag" `Quick test_overflow_flag;
        Alcotest.test_case "loads/stores" `Quick test_loads_stores;
        Alcotest.test_case "indexed addressing" `Quick test_indexed_addressing;
        Alcotest.test_case "float ops" `Quick test_float_ops;
        Alcotest.test_case "fcmp NaN" `Quick test_fcmp_nan;
        Alcotest.test_case "deopt path" `Quick test_deopt_path;
        Alcotest.test_case "jsldrsmi fast/fail" `Quick test_jsldrsmi_fast_and_fail;
        Alcotest.test_case "spill/reload" `Quick test_spill_reload;
        Alcotest.test_case "builtin call convention" `Quick test_builtin_call_convention;
        Alcotest.test_case "machine faults" `Quick test_machine_fault;
        q prop_alu_matches_reference;
      ] );
    ( "cache",
      [
        Alcotest.test_case "basics" `Quick test_cache_basics;
        Alcotest.test_case "eviction" `Quick test_cache_eviction;
        Alcotest.test_case "hierarchy latency" `Quick test_hierarchy_latency;
      ] );
    ( "predictor",
      [
        Alcotest.test_case "learns loops" `Quick test_predictor_learns_loop;
        Alcotest.test_case "never-taken free" `Quick test_predictor_never_taken;
      ] );
    ( "timing",
      [
        Alcotest.test_case "monotonic + counts" `Quick test_timing_monotonic_and_counts;
        Alcotest.test_case "dependency chains cost" `Quick test_dependent_chain_slower;
        Alcotest.test_case "in-order vs O3" `Quick test_inorder_slower_than_o3;
        Alcotest.test_case "branch counters" `Quick test_counters_branches;
        Alcotest.test_case "pc sampler" `Quick test_sampler;
      ] );
  ]

let test_jschkmap_fast_and_fail () =
  let deopts =
    [| { Code.dp_id = 0; reason = Insn.Wrong_map; bc_pc = 0; frame = [||];
         accumulator = Code.Fv_dead } |]
  in
  let mk map_word =
    let memory = Array.make 16 0 in
    memory.(4) <- map_word (* object header at word 4, address 8 *);
    let code =
      mk_code ~deopts
        [ Insn.Mov (1, Insn.Imm 0x200);
          Insn.Msr (Insn.Reg_ba, 1);
          Insn.Mov (1, Insn.Imm 9) (* tagged pointer to word 4 *);
          Insn.Js_chk_map
            { mem = Insn.mk_addr ~offset:(-1) 1; expected = 77; deopt = 0 };
          Insn.Mov (0, Insn.Imm 1);
          Insn.Ret ]
    in
    let cpu = Cpu.create Cpu.fast_arm64 in
    Exec.run cpu ~host:(null_host memory) ~code ~args:[||]
  in
  (match mk 77 with
  | Exec.Done v -> Alcotest.(check int) "matching map passes" 1 v
  | Exec.Deopt _ -> Alcotest.fail "matching map should pass");
  match mk 99 with
  | Exec.Done _ -> Alcotest.fail "wrong map should bail"
  | Exec.Deopt { reason; via_smi_ext; _ } ->
    Alcotest.(check bool) "wrong-map reason" true (reason = Insn.Wrong_map);
    Alcotest.(check bool) "branch-free bailout" true via_smi_ext

(* ---------------- Engine parity ---------------- *)

let with_engine engine f =
  Exec.set_engine (Some engine);
  Fun.protect ~finally:(fun () -> Exec.set_engine None) f

(* A float access whose FIRST word is in range but whose second is not
   must fault like any other wild access on both engines (historically
   the second word escaped the bounds check and surfaced as a raw
   [Invalid_argument]). *)
let test_float_mem_second_word_bounds () =
  let last_word_addr = 2 * 63 (* memory is 64 words; word 64 is OOB *) in
  let ldr_f =
    [ Insn.Mov (1, Insn.Imm last_word_addr);
      Insn.Ldr_f (0, Insn.mk_addr 1);
      Insn.Ret ]
  in
  let str_f =
    [ Insn.Fmov_imm (0, 1.5);
      Insn.Mov (1, Insn.Imm last_word_addr);
      Insn.Str_f (Insn.mk_addr 1, 0);
      Insn.Ret ]
  in
  List.iter
    (fun (engine, ename) ->
      with_engine engine (fun () ->
          List.iter
            (fun (name, insns) ->
              match ignore (run insns) with
              | () -> Alcotest.fail (name ^ ": second word escaped bounds")
              | exception Exec.Machine_fault msg ->
                Alcotest.(check string)
                  (Printf.sprintf "%s/%s fault message" name ename)
                  "test: address 128 out of range" msg)
            [ ("ldr_f", ldr_f); ("str_f", str_f) ]))
    [ (Exec.Direct, "direct"); (Exec.Decoded, "decoded") ]

(* Same program, fresh CPUs: both engines must agree on the outcome and
   on the complete timing/counter state. *)
let test_engines_bit_identical () =
  let insns =
    [ Insn.Mov (0, Insn.Imm 0);
      Insn.Mov (1, Insn.Imm 0) (* address cursor *);
      Insn.Mov (2, Insn.Imm 40) (* iterations *);
      Insn.Label 0;
      Insn.Ldr (3, Insn.mk_addr 1);
      Insn.Alu { op = Insn.Add; dst = 0; src = 0; rhs = Insn.Reg 3; set_flags = false };
      Insn.Str (Insn.mk_addr ~offset:2 1, 0);
      Insn.Alu { op = Insn.Add; dst = 1; src = 1; rhs = Insn.Imm 4; set_flags = false };
      Insn.Alu { op = Insn.Sub; dst = 2; src = 2; rhs = Insn.Imm 1; set_flags = true };
      Insn.Bcond (Insn.Ne, 0);
      Insn.Ret ]
  in
  let measure engine =
    with_engine engine (fun () ->
        let memory = Array.init 256 (fun i -> (i * 7) land 0xFF) in
        let cpu, outcome = run ~memory insns in
        ( outcome,
          Cpu.cycles cpu,
          Digest.string (Marshal.to_string cpu.Cpu.counters []),
          Digest.string (Marshal.to_string memory []) ))
  in
  let o1, c1, k1, m1 = measure Exec.Direct in
  let o2, c2, k2, m2 = measure Exec.Decoded in
  Alcotest.(check bool) "same outcome" true (o1 = o2);
  Alcotest.(check (float 0.0)) "same cycle count" c1 c2;
  Alcotest.(check string) "same counters" (Digest.to_hex k1) (Digest.to_hex k2);
  Alcotest.(check string) "same memory" (Digest.to_hex m1) (Digest.to_hex m2)

let extra_suite =
  [ ( "jschkmap",
      [ Alcotest.test_case "fast/fail" `Quick test_jschkmap_fast_and_fail ] );
    ( "engines",
      [ Alcotest.test_case "float second-word bounds" `Quick
          test_float_mem_second_word_bounds;
        Alcotest.test_case "direct/decoded bit-identical" `Quick
          test_engines_bit_identical ] ) ]

let suite = base_suite @ extra_suite
