# Convenience entry points; dune is the source of truth.

.PHONY: all build test quick bench clean

all: build

build:
	dune build

test:
	dune runtest

# Smoke check: build + tier-1 tests + one fast figure under VSPEC_JOBS=2.
quick:
	dune build @quick

# Full figure suite + timing report (BENCH_suite.json).
bench:
	dune exec bench/main.exe

clean:
	dune clean
