# Convenience entry points; dune is the source of truth.

.PHONY: all build test quick bench bench-exec perf clean

all: build

build:
	dune build

test:
	dune runtest

# Smoke check: build + tier-1 tests + one fast figure under VSPEC_JOBS=2.
quick:
	dune build @quick

# Full figure suite + timing report (BENCH_suite.json).
bench:
	dune exec bench/main.exe

# Execution-engine micro-benchmarks only: insns/sec for the direct
# interpreter vs the pre-decoded threaded-code engine (BENCH_exec.json).
bench-exec:
	dune exec bench/main.exe -- --exec

# Determinism gate + exec micro-benchmarks (no report files written).
perf:
	dune build @perf

clean:
	dune clean
