# Convenience entry points; dune is the source of truth.

.PHONY: all build test quick bench bench-exec perf faults check clean

all: build

build:
	dune build

test:
	dune runtest

# Smoke check: build + tier-1 tests + one fast figure under VSPEC_JOBS=2.
quick:
	dune build @quick

# Full figure suite + timing report (BENCH_suite.json).
bench:
	dune exec bench/main.exe

# Execution-engine micro-benchmarks only: insns/sec for the direct
# interpreter vs the pre-decoded threaded-code engine (BENCH_exec.json).
bench-exec:
	dune exec bench/main.exe -- --exec

# Determinism + decode gates, then a fresh exec micro-benchmark run
# checked against the committed BENCH_exec.json by bench/guard.exe
# (speedup tolerance VSPEC_PERF_TOLERANCE, default 10%; plus the
# committed fusion-coverage floor).
perf:
	dune build @perf

# Fault-tolerance gate: fault unit suite + one figure under seeded
# injection asserting the degraded exit-code contract (exit 1).
faults:
	dune build @faults

# The pre-merge gate: smoke path + fault-tolerance gate.
check:
	dune build @quick @faults

clean:
	dune clean
