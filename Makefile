# Convenience entry points; dune is the source of truth.

.PHONY: all build test quick bench bench-exec perf faults trace check ci clean

all: build

build:
	dune build

test:
	dune runtest

# Smoke check: build + tier-1 tests + one fast figure under VSPEC_JOBS=2.
quick:
	dune build @quick

# Full figure suite + timing report (BENCH_suite.json).
bench:
	dune exec bench/main.exe

# Execution-engine micro-benchmarks only: insns/sec for the direct
# interpreter vs the pre-decoded threaded-code engine (BENCH_exec.json).
bench-exec:
	dune exec bench/main.exe -- --exec

# Determinism + decode gates, then a fresh exec micro-benchmark run
# checked against the committed BENCH_exec.json by bench/guard.exe
# (speedup tolerance VSPEC_PERF_TOLERANCE, default 10%; plus the
# committed fusion-coverage floor).
perf:
	dune build @perf

# Fault-tolerance gate: fault unit suite + one figure under seeded
# injection asserting the degraded exit-code contract (exit 1).
faults:
	dune build @faults

# Tracing quickstart: write a Perfetto-loadable trace of one figure to
# trace.json.  Open it at https://ui.perfetto.dev (or chrome://tracing).
# The tracing test gate itself is `dune build @trace` (part of `check`).
trace:
	VSPEC_TRACE=trace.json VSPEC_ITERS=40 VSPEC_BENCH=DP VSPEC_CACHE_DIR=off VSPEC_BENCH_OUT=off \
	  dune exec bin/experiments.exe -- fig1
	@echo "open trace.json in https://ui.perfetto.dev"

# The pre-merge gate: smoke path + fault-tolerance + tracing gates.
check:
	dune build @quick @faults @trace

# Minimal CI entry point: tier-1 build+tests, the smoke alias, and the
# perf guard (fresh exec micro-bench vs committed BENCH_exec.json).
ci:
	dune build
	dune runtest
	dune build @quick @trace
	dune build @perf

clean:
	dune clean
